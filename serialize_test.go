package privtree

import (
	"encoding/json"
	"math"
	"math/rand/v2"
	"testing"
)

func TestSpatialTreeJSONRoundTrip(t *testing.T) {
	pts := makeClusteredPoints(20000)
	orig, err := BuildSpatial(UnitCube(2), pts, 1.0, SpatialOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var restored SpatialTree
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Nodes() != orig.Nodes() || restored.Height() != orig.Height() {
		t.Fatalf("structure changed: %d/%d nodes, %d/%d height",
			restored.Nodes(), orig.Nodes(), restored.Height(), orig.Height())
	}
	if math.Abs(restored.Total()-orig.Total()) > 1e-9 {
		t.Fatalf("total changed: %v vs %v", restored.Total(), orig.Total())
	}
	// Queries must agree exactly.
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 50; trial++ {
		lo := Point{rng.Float64() * 0.7, rng.Float64() * 0.7}
		q := NewRect(lo, Point{lo[0] + 0.3, lo[1] + 0.3})
		a, b := orig.RangeCount(q), restored.RangeCount(q)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("query mismatch after round trip: %v vs %v", a, b)
		}
	}
}

func TestSpatialTreeJSONOnlyLeavesCarryCounts(t *testing.T) {
	pts := makeClusteredPoints(5000)
	tree, err := BuildSpatial(UnitCube(2), pts, 1.0, SpatialOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	var check func(node map[string]any)
	check = func(node map[string]any) {
		kids, hasKids := node["children"].([]any)
		_, hasCount := node["count"]
		if hasKids && hasCount {
			t.Fatal("internal node serialized a count; the release defines internal counts as leaf sums")
		}
		if !hasKids && !hasCount {
			t.Fatal("leaf without count")
		}
		for _, k := range kids {
			check(k.(map[string]any))
		}
	}
	check(raw["root"].(map[string]any))
}

func TestSpatialTreeUnmarshalRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"version": 2, "fanout": 4, "root": {"lo":[0],"hi":[1],"count":1}}`,                                    // bad version
		`{"version": 1, "fanout": 4, "root": {"lo":[0,0],"hi":[1,1]}}`,                                          // leaf without count
		`{"version": 1, "fanout": 4, "root": {"lo":[0],"hi":[1,1],"count":1}}`,                                  // bounds mismatch
		`{"version": 1, "fanout": 2, "root": {"lo":[0],"hi":[1],"children":[{"lo":[0],"hi":[0.5],"count":1}]}}`, // wrong child count
	}
	for i, blob := range cases {
		var tree SpatialTree
		if err := json.Unmarshal([]byte(blob), &tree); err == nil {
			t.Errorf("malformed blob %d accepted", i)
		}
	}
}

func TestSpatialTreeUnmarshalEscapingChildRejected(t *testing.T) {
	blob := `{"version":1,"fanout":2,"root":{"lo":[0],"hi":[1],"children":[
		{"lo":[0],"hi":[0.5],"count":1},
		{"lo":[0.5],"hi":[2],"count":1}
	]}}`
	var tree SpatialTree
	if err := json.Unmarshal([]byte(blob), &tree); err == nil {
		t.Fatal("child escaping parent region accepted")
	}
}

func TestSequenceModelJSONRoundTrip(t *testing.T) {
	seqs := makeClickstreams(10000)
	orig, err := BuildSequenceModel(6, seqs, 2.0, SequenceOptions{MaxLength: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var restored SequenceModel
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.MaxLength() != orig.MaxLength() || restored.Nodes() != orig.Nodes() {
		t.Fatalf("structure changed: lTop %d/%d, nodes %d/%d",
			restored.MaxLength(), orig.MaxLength(), restored.Nodes(), orig.Nodes())
	}
	// Frequency estimates must agree exactly for a basket of strings.
	for _, s := range []Sequence{{0}, {3}, {0, 1}, {2, 3, 4}, {5, 0, 1, 2}} {
		a, b := orig.EstimateFrequency(s), restored.EstimateFrequency(s)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("estimate(%v) changed: %v vs %v", s, a, b)
		}
	}
	// Top-k must agree as well.
	ta, tb := orig.TopK(20, 3), restored.TopK(20, 3)
	for i := range ta {
		if ta[i].Count != tb[i].Count {
			t.Fatalf("topk diverged at %d", i)
		}
	}
}

func TestSequenceModelUnmarshalRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"version":2,"alphabet":2,"ltop":5,"root":{"hist":[1,1,1]}}`,                               // version
		`{"version":1,"alphabet":0,"ltop":5,"root":{"hist":[1]}}`,                                   // alphabet
		`{"version":1,"alphabet":2,"ltop":5,"root":{"hist":[1,1]}}`,                                 // hist arity
		`{"version":1,"alphabet":2,"ltop":5,"root":{"hist":[1,1,1],"children":[{"hist":[1,1,1]}]}}`, // child arity
	}
	for i, blob := range cases {
		var m SequenceModel
		if err := json.Unmarshal([]byte(blob), &m); err == nil {
			t.Errorf("malformed model %d accepted", i)
		}
	}
}
