package privtree

import (
	"privtree/internal/store"
)

// Store is a crash-safe persistence root for one session: an append-only,
// fsync-on-debit write-ahead log of privacy-ledger events (debits,
// refunds, release commits) plus a content-addressed file store holding
// each release's wire envelope. Attach one to a fresh Session with
// WithStore — or use OpenSession — and the session's guarantee becomes
// durable: a debit reaches disk before its mechanism runs, a refund
// before its error returns, and a crash at ANY point recovers to a spent
// ε that covers every acknowledged debit. See the package documentation's
// "Durability and crash safety" section for the privacy argument.
//
// A Store is safe for concurrent use. Its directory layout (a WAL, a
// compaction snapshot, and an artifacts directory) is an implementation
// detail of internal/store.
type Store struct {
	inner *store.Store
}

// OpenStore opens (creating if needed) the store rooted at dir and
// recovers its state by one sequential pass: the compaction snapshot, the
// write-ahead log's valid record prefix (a torn tail from a crashed
// append is truncated away), and the artifact inventory.
func OpenStore(dir string) (*Store, error) {
	inner, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Store{inner: inner}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.inner.Dir() }

// SizeBytes returns the store's on-disk footprint (WAL + snapshot +
// artifacts); servers export it as a store-bytes gauge.
func (st *Store) SizeBytes() int64 { return st.inner.SizeBytes() }

// LastSeq returns the highest write-ahead-log sequence number issued so
// far (0 on a fresh store); servers export it as a WAL-seq gauge, and
// audit entries reference these numbers.
func (st *Store) LastSeq() uint64 { return st.inner.LastSeq() }

// SetFsyncObserver installs fn (nil to clear) to receive the duration,
// in seconds, of every WAL fsync — the hook servers point at a latency
// histogram. fn runs on the append path and must be cheap and must not
// call back into the store.
func (st *Store) SetFsyncObserver(fn func(seconds float64)) { st.inner.SetFsyncObserver(fn) }

// Compact folds the ledger history into a fresh snapshot and rotates the
// write-ahead log. State is preserved exactly; a crash during compaction
// recovers consistently (the snapshot becomes visible atomically, and
// stale WAL records are skipped by its sequence cursor).
func (st *Store) Compact() error { return st.inner.Compact() }

// WriterEpoch returns the highest writer epoch granted in the store's
// replicated history (0 before any promotion). Exactly one store per
// dataset may hold the current epoch as a live budget-writer; see the
// package documentation's "Replication and failover" section.
func (st *Store) WriterEpoch() uint64 { return st.inner.WriterEpoch() }

// FencedEpoch reports whether this store has been durably fenced — a
// writer at the returned epoch superseded it — in which case every local
// mutation fails with a fenced error, across restarts.
func (st *Store) FencedEpoch() (uint64, bool) { return st.inner.FencedEpoch() }

// Promote grants this store the next writer epoch via a durable,
// replicated WAL record and returns it. trace optionally links the grant
// to the request trace that caused the promotion. A fenced store cannot
// be promoted.
func (st *Store) Promote(trace string) (uint64, error) { return st.inner.Promote(trace) }

// Fence durably marks this store as superseded by a writer at epoch:
// every later append is rejected, across restarts. Fencing at an epoch
// the store itself holds (or lower) is refused, so a stray fence request
// cannot take down the live writer.
func (st *Store) Fence(epoch uint64) error { return st.inner.Fence(epoch) }

// WALFrames returns up to roughly maxBytes of CRC-framed ledger records
// with sequence numbers after afterSeq, exactly as they appear in the
// write-ahead log, plus the last sequence number included. It is the
// log-shipping read side: a replica applies the frames verbatim with
// Session.ApplyReplicated. maxBytes <= 0 selects a sensible default; when
// any record qualifies at least one frame is returned, so pulls always
// make progress.
func (st *Store) WALFrames(afterSeq uint64, maxBytes int) ([]byte, uint64, error) {
	return st.inner.FramesSince(afterSeq, maxBytes)
}

// LastSealedEpoch returns the newest stream epoch sealed into this
// store's history (0 before any seal); see Session.AppendSeal for the
// seal record's contract. Servers export it per dataset, and replicas
// compare it against the primary's to report epochs-behind.
func (st *Store) LastSealedEpoch() uint64 { return st.inner.LastSealedEpoch() }

// HasArtifact reports whether the envelope with the given hex SHA-256
// content address is already present in the artifact store.
func (st *Store) HasArtifact(shaHex string) bool { return st.inner.HasArtifact(shaHex) }

// PutArtifact stores envelope bytes under their hex SHA-256 content
// address, verifying the hash on receipt; mismatched bytes are rejected.
// Replicas call it for each artifact referenced by shipped commit records
// before applying the frames.
func (st *Store) PutArtifact(shaHex string, blob []byte) error {
	return st.inner.PutArtifact(shaHex, blob)
}

// Artifact loads a committed envelope by hex SHA-256 content address and
// verifies the bytes against it — the serving side of replicated artifact
// fetch.
func (st *Store) Artifact(shaHex string) ([]byte, error) { return st.inner.ArtifactByAddr(shaHex) }

// Close releases the store's file handles. Every acknowledged operation
// is already durable, so Close is never a flush barrier. Idempotent.
func (st *Store) Close() error { return st.inner.Close() }
