package privtree

import (
	"privtree/internal/store"
)

// Store is a crash-safe persistence root for one session: an append-only,
// fsync-on-debit write-ahead log of privacy-ledger events (debits,
// refunds, release commits) plus a content-addressed file store holding
// each release's wire envelope. Attach one to a fresh Session with
// WithStore — or use OpenSession — and the session's guarantee becomes
// durable: a debit reaches disk before its mechanism runs, a refund
// before its error returns, and a crash at ANY point recovers to a spent
// ε that covers every acknowledged debit. See the package documentation's
// "Durability and crash safety" section for the privacy argument.
//
// A Store is safe for concurrent use. Its directory layout (a WAL, a
// compaction snapshot, and an artifacts directory) is an implementation
// detail of internal/store.
type Store struct {
	inner *store.Store
}

// OpenStore opens (creating if needed) the store rooted at dir and
// recovers its state by one sequential pass: the compaction snapshot, the
// write-ahead log's valid record prefix (a torn tail from a crashed
// append is truncated away), and the artifact inventory.
func OpenStore(dir string) (*Store, error) {
	inner, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Store{inner: inner}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.inner.Dir() }

// SizeBytes returns the store's on-disk footprint (WAL + snapshot +
// artifacts); servers export it as a store-bytes gauge.
func (st *Store) SizeBytes() int64 { return st.inner.SizeBytes() }

// LastSeq returns the highest write-ahead-log sequence number issued so
// far (0 on a fresh store); servers export it as a WAL-seq gauge, and
// audit entries reference these numbers.
func (st *Store) LastSeq() uint64 { return st.inner.LastSeq() }

// SetFsyncObserver installs fn (nil to clear) to receive the duration,
// in seconds, of every WAL fsync — the hook servers point at a latency
// histogram. fn runs on the append path and must be cheap and must not
// call back into the store.
func (st *Store) SetFsyncObserver(fn func(seconds float64)) { st.inner.SetFsyncObserver(fn) }

// Compact folds the ledger history into a fresh snapshot and rotates the
// write-ahead log. State is preserved exactly; a crash during compaction
// recovers consistently (the snapshot becomes visible atomically, and
// stale WAL records are skipped by its sequence cursor).
func (st *Store) Compact() error { return st.inner.Compact() }

// Close releases the store's file handles. Every acknowledged operation
// is already durable, so Close is never a flush barrier. Idempotent.
func (st *Store) Close() error { return st.inner.Close() }
