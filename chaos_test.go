package privtree_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"privtree/client"
	"privtree/internal/faultnet"
	"privtree/internal/obs"
	"privtree/internal/server"
)

// TestChaosRetriesAreEpsilonSafe is the PR's acceptance test: a retrying
// client hammers register→release→query loops through a seeded
// fault-injection proxy (latency, mid-stream resets, truncated responses,
// blackholes) against a durable server with tight admission limits, and
// afterwards the ledger must balance to the bit:
//
//   - spent ε == ε_release × (committed releases): every debit has a
//     committed release behind it (mid-flight deaths were refunded) and
//     no release was paid for twice (retries dedup by fingerprint) —
//     no matter how aggressively the client retried.
//   - every acknowledged release is durable and refetches bit-identically,
//     including across a full server restart from the data dir.
//   - the admission gates leak no slots (in-flight gauges at rest == 0).
//
// The fault schedule is a pure function of the proxy seed, so a failure
// reproduces by re-running the same subtest.
func TestChaosRetriesAreEpsilonSafe(t *testing.T) {
	seeds := []uint64{7, 19, 83}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { chaosRun(t, seed) })
	}
}

const (
	chaosBudget     = 1.0
	chaosReleaseEps = 0.1
	chaosSeeds      = 8 // distinct release seeds the workload purchases
)

func chaosRun(t *testing.T, seed uint64) {
	dir := t.TempDir()
	srv, err := server.New(server.Options{
		Workers:              2,
		MaxConcurrentBuilds:  2,
		MaxConcurrentBatches: 2,
		AdmissionQueue:       2,
		BuildTimeout:         2 * time.Second,
		QueryTimeout:         2 * time.Second,
		DataDir:              dir,
		// Keep every completed trace: the post-hoc check below must find
		// a release by the trace ID recorded in its WAL debit entry.
		TraceRetain: 8192,
		TraceSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	backend := httptest.NewServer(srv)
	defer backend.Close()

	proxy, err := faultnet.New(backend.Listener.Addr().String(), faultnet.Options{
		Seed:          seed,
		LatencyProb:   0.10,
		ResetProb:     0.10,
		TruncateProb:  0.10,
		BlackholeProb: 0.05,
		Latency:       5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Keep-alives off: every request dials the proxy fresh and rolls an
	// independent fault. The 400ms timeout is what unhooks blackholes.
	faulty := client.New("http://"+proxy.Addr(),
		client.WithHTTPClient(&http.Client{
			Transport: &http.Transport{DisableKeepAlives: true},
			Timeout:   400 * time.Millisecond,
		}),
		client.WithRetryPolicy(client.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			BudgetRatio: -1, // unbounded retries: the point is to prove they're safe
		}))
	ctx := context.Background()

	// Register through the faulty path. Registration has no idempotency
	// key, so the client surfaces transport failures; the documented
	// recovery is exactly this loop — on a lost ack, a retry that hits
	// 409 conflict proves the registration landed.
	pts := chaosPoints(400)
	registered := false
	for attempt := 0; attempt < 50 && !registered; attempt++ {
		_, err := faulty.Register(ctx, client.RegisterRequest{Name: "chaos", Epsilon: chaosBudget, Points: pts})
		var apiErr *client.APIError
		switch {
		case err == nil:
			registered = true
		case errors.As(err, &apiErr) && apiErr.Code == client.CodeConflict:
			registered = true // earlier attempt landed, ack was lost
		case errors.As(err, &apiErr):
			t.Fatalf("register: unexpected API error %v", apiErr)
		default:
			// transport failure: fall through and try again
		}
	}
	if !registered {
		t.Fatal("registration never landed through the faulty network")
	}

	// The workload: concurrent workers loop over 8 distinct releases
	// (ε=0.1 each against a budget of 1.0) and query whatever they
	// acquire. Individual calls may exhaust their retries — that's fine;
	// the invariants below must hold regardless of which calls succeeded.
	var (
		mu    sync.Mutex
		acked = map[uint64]string{} // release seed -> acknowledged ID
	)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				relSeed := uint64(1 + (worker*6+round)%chaosSeeds)
				rel, err := faulty.CreateRelease(ctx, "chaos", client.ReleaseParams{
					Epsilon: chaosReleaseEps, Seed: relSeed})
				if err != nil {
					continue
				}
				mu.Lock()
				if prev, ok := acked[relSeed]; ok && prev != rel.ID {
					t.Errorf("seed %d acknowledged under two IDs: %s and %s", relSeed, prev, rel.ID)
				}
				acked[relSeed] = rel.ID
				mu.Unlock()
				q, err := faulty.Query(ctx, "chaos", rel.ID, client.QueryRequest{
					Queries: [][]float64{{0, 0, 1, 1}, {0.2, 0.2, 0.7, 0.7}, {0.5, 0.5, 0.6, 0.6}}})
				if err != nil {
					continue
				}
				if len(q.Counts) != 3 {
					t.Errorf("query returned %d counts, want 3", len(q.Counts))
				}
			}
		}(w)
	}
	wg.Wait()
	faults := proxy.Counts()
	proxy.Close()
	t.Logf("faults injected: %+v; acked %d/%d distinct releases", faults, len(acked), chaosSeeds)

	// Verification happens over the clean path.
	clean := client.New(backend.URL, client.WithHTTPClient(backend.Client()))
	verify := func(phase string, c *client.Client) {
		ds, err := c.Dataset(ctx, "chaos")
		if err != nil {
			t.Fatalf("%s: fetching dataset: %v", phase, err)
		}
		// The heart of the ε-safety claim: spent equals exactly one debit
		// per committed release. A lost refund would push spent above it;
		// a double-paid retry would add a debit with no release.
		want := chaosReleaseEps * float64(ds.NumReleases)
		if math.Abs(ds.EpsilonSpent-want) > 1e-9 {
			t.Fatalf("%s: spent ε = %v with %d releases, want exactly %v",
				phase, ds.EpsilonSpent, ds.NumReleases, want)
		}
		if ds.EpsilonSpent > chaosBudget+1e-9 {
			t.Fatalf("%s: spent ε %v exceeds budget %v", phase, ds.EpsilonSpent, chaosBudget)
		}
		if ds.NumReleases > chaosSeeds {
			t.Fatalf("%s: %d releases for %d distinct parameter sets — retries double-purchased",
				phase, ds.NumReleases, chaosSeeds)
		}
		if len(acked) > ds.NumReleases {
			t.Fatalf("%s: client holds %d acks but server has %d releases",
				phase, len(acked), ds.NumReleases)
		}
	}

	// verifyAudit cross-checks the accounting plane against itself: the
	// audit endpoint's net debits (refunds arrive negated) must equal
	// both the trail's own reported spent ε and the
	// privtree_dataset_epsilon_spent gauge scraped — and strictly
	// parsed — from the Prometheus exposition. After a chaos run this is
	// the strongest statement the server can make: every unit of spent ε
	// is explained by a WAL-sequenced, trace-tagged entry, and the
	// metrics plane agrees to the bit.
	verifyAudit := func(phase, baseURL string, c *client.Client) {
		trail, err := c.Audit(ctx, "chaos")
		if err != nil {
			t.Fatalf("%s: fetching audit trail: %v", phase, err)
		}
		var net float64
		for _, e := range trail.Entries {
			switch e.Kind {
			case "debit", "refund":
				net += e.Epsilon
				if e.Seq == 0 || e.TraceID == "" {
					t.Fatalf("%s: %s entry missing WAL seq or trace ID: %+v", phase, e.Kind, e)
				}
			}
		}
		if math.Abs(net-trail.EpsilonSpent) > 1e-9 {
			t.Fatalf("%s: audit net ε %v != reported spent %v", phase, net, trail.EpsilonSpent)
		}
		resp, err := http.Get(baseURL + "/metrics")
		if err != nil {
			t.Fatalf("%s: scraping /metrics: %v", phase, err)
		}
		defer resp.Body.Close()
		samples, err := obs.ParseText(resp.Body)
		if err != nil {
			t.Fatalf("%s: /metrics not strictly valid exposition: %v", phase, err)
		}
		found := false
		for _, s := range samples {
			if s.Name == "privtree_dataset_epsilon_spent" && s.Labels["dataset"] == "chaos" {
				found = true
				if math.Abs(net-s.Value) > 1e-9 {
					t.Fatalf("%s: audit net ε %v != spent-ε gauge %v", phase, net, s.Value)
				}
			}
		}
		if !found {
			t.Fatalf("%s: exposition missing spent-ε gauge for dataset", phase)
		}
	}
	verify("under-load", clean)
	verifyAudit("under-load", backend.URL, clean)

	// Post-hoc debuggability: pick a committed release's trace ID out of
	// the audit trail (the ID the client stamped on the winning attempt)
	// and pull the retained trace from the flight recorder. The span
	// breakdown must explain the release: budget debit, tree build, WAL
	// commit.
	trail, err := clean.Audit(ctx, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, e := range trail.Entries {
		if e.Kind != "debit" {
			continue
		}
		resp, err := http.Get(backend.URL + "/v1/traces/" + e.TraceID)
		if err != nil {
			t.Fatalf("trace lookup for debit %s: %v", e.TraceID, err)
		}
		var rec struct {
			Route string `json:"route"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		}
		err = json.NewDecoder(resp.Body).Decode(&rec)
		code := resp.StatusCode
		resp.Body.Close()
		if err != nil || code != http.StatusOK {
			t.Fatalf("debit trace %s not retained: status %d err %v", e.TraceID, code, err)
		}
		if rec.Route != "create_release" {
			t.Fatalf("debit trace %s retained as route %q", e.TraceID, rec.Route)
		}
		for _, want := range []string{"debit", "build", "wal_commit"} {
			found := false
			for _, sp := range rec.Spans {
				if sp.Name == want {
					found = true
				}
			}
			if !found {
				t.Fatalf("debit trace %s missing span %q: %+v", e.TraceID, want, rec.Spans)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no debit entries to cross-check against the flight recorder")
	}
	t.Logf("cross-checked %d debit trace IDs against the flight recorder", checked)

	// Every acknowledged release is durable and refetches bit-identically.
	payloads := map[uint64]string{}
	for relSeed, id := range acked {
		a, err := clean.Release(ctx, "chaos", id)
		if err != nil {
			t.Fatalf("acked release %s lost: %v", id, err)
		}
		payloads[relSeed] = string(a.Payload)
	}

	// The gates leaked nothing.
	m, err := clean.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["builds_in_flight"].(float64) != 0 || m["batches_in_flight"].(float64) != 0 {
		t.Fatalf("slot leak: builds_in_flight=%v batches_in_flight=%v",
			m["builds_in_flight"], m["batches_in_flight"])
	}

	// Restart from the data dir: the ledger balance and every acked
	// artifact must come back bit-identical.
	backend.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("draining shutdown: %v", err)
	}
	srv2, err := server.New(server.Options{DataDir: dir})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	backend2 := httptest.NewServer(srv2)
	defer backend2.Close()
	defer srv2.Close()
	clean2 := client.New(backend2.URL, client.WithHTTPClient(backend2.Client()))
	verify("post-restart", clean2)
	verifyAudit("post-restart", backend2.URL, clean2)
	for relSeed, id := range acked {
		a, err := clean2.Release(ctx, "chaos", id)
		if err != nil {
			t.Fatalf("post-restart: acked release %s lost: %v", id, err)
		}
		if string(a.Payload) != payloads[relSeed] {
			t.Fatalf("post-restart: release %s payload differs from pre-restart fetch", id)
		}
	}
}

// chaosPoints is a small deterministic 2-D dataset (no RNG dependency so
// the registered data is identical across runs and restarts).
func chaosPoints(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		x := float64(i%20)/20 + 0.025
		y := float64(i/20)/float64((n+19)/20) + 0.01
		out[i] = []float64{math.Mod(x, 1), math.Mod(y, 1)}
	}
	return out
}
