package privtree

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"

	"privtree/internal/store"
)

// Session-level crash injection: the parent re-executes this binary as a
// child that runs real releases through OpenSession with a SIGKILL armed
// at one store fault point, then recovers the directory and checks the
// end-to-end contract of the acceptance criteria:
//
//   - recovered spent ε ≥ the ε of every acknowledged debit;
//   - every acknowledged release's envelope is recovered and decodes
//     bit-identically through privtree.Decode;
//   - recovered releases are served as cache hits without re-debiting.
//
// The child acknowledges a debit by printing a line only after
// Session.Release returns, i.e. after the mechanism ran on a
// durably-debited ledger.

const (
	sessionCrashChildEnv = "PRIVTREE_SESSION_CRASH_CHILD"
	sessionCrashDirEnv   = "PRIVTREE_SESSION_CRASH_DIR"
	sessionCrashPointEnv = "PRIVTREE_SESSION_CRASH_POINT"
	sessionCrashHitEnv   = "PRIVTREE_SESSION_CRASH_HIT"
)

const sessionCrashBudget = 4.0

func TestSessionCrashHelper(t *testing.T) {
	if os.Getenv(sessionCrashChildEnv) != "1" {
		t.Skip("crash-harness child process only")
	}
	dir := os.Getenv(sessionCrashDirEnv)
	point := os.Getenv(sessionCrashPointEnv)
	hit, _ := strconv.Atoi(os.Getenv(sessionCrashHitEnv))
	var seen atomic.Int64
	store.SetCrashHook(func(p string) {
		if p != point {
			return
		}
		if int(seen.Add(1)) == hit {
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {}
		}
	})
	defer store.SetCrashHook(nil)

	data, err := NewSpatialData(UnitCube(2), sessionStorePoints(800))
	if err != nil {
		fmt.Printf("CHILD-ERROR data: %v\n", err)
		os.Exit(1)
	}
	s, err := OpenSession(dir, sessionCrashBudget)
	if err != nil {
		fmt.Printf("CHILD-ERROR open: %v\n", err)
		os.Exit(1)
	}
	for i := 0; i < 6; i++ {
		seed := uint64(i + 1)
		eps := float64(i+1) / 16
		m, err := NewSpatialMechanism(SpatialOptions{Seed: seed, Workers: 1})
		if err != nil {
			fmt.Printf("CHILD-ERROR mech %d: %v\n", i, err)
			os.Exit(1)
		}
		rel, cached, err := s.Release(m, data, eps)
		if err != nil {
			fmt.Printf("CHILD-ERROR release %d: %v\n", i, err)
			os.Exit(1)
		}
		if cached {
			fmt.Printf("CHILD-ERROR release %d unexpectedly cached\n", i)
			os.Exit(1)
		}
		env, err := rel.Envelope()
		if err != nil {
			fmt.Printf("CHILD-ERROR envelope %d: %v\n", i, err)
			os.Exit(1)
		}
		sha := sha256.Sum256(env)
		// Acknowledged: the debit was durable before the mechanism ran,
		// the envelope was committed before Release returned.
		fmt.Fprintf(os.Stdout, "ACK release seed=%d %.17g %s\n", seed, eps, hex.EncodeToString(sha[:]))

		if i == 2 {
			// One failed build after its debit: refund durable before the
			// error returned.
			bad, err := NewSpatialMechanism(SpatialOptions{Seed: 99, Fanout: 8})
			if err != nil {
				fmt.Printf("CHILD-ERROR bad mech: %v\n", err)
				os.Exit(1)
			}
			if _, _, err := s.Release(bad, data, 0.125); err == nil {
				fmt.Println("CHILD-ERROR unrealizable fanout built")
				os.Exit(1)
			}
			fmt.Fprintf(os.Stdout, "ACK refund %.17g\n", 0.125)
		}
	}
	fmt.Println("DONE")
}

type ackedRelease struct {
	seed uint64
	eps  float64
	sha  string
}

func TestSessionCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns one child process per fault point")
	}
	for _, point := range store.CrashPoints {
		if point == "snapshot.after_rename" {
			continue // the session workload never compacts; point unreachable
		}
		for _, hit := range []int{1, 3} {
			point, hit := point, hit
			t.Run(fmt.Sprintf("%s/hit%d", point, hit), func(t *testing.T) {
				dir := t.TempDir()
				cmd := exec.Command(os.Args[0], "-test.run", "^TestSessionCrashHelper$", "-test.v")
				cmd.Env = append(os.Environ(),
					sessionCrashChildEnv+"=1",
					sessionCrashDirEnv+"="+dir,
					sessionCrashPointEnv+"="+point,
					sessionCrashHitEnv+"="+strconv.Itoa(hit),
				)
				var stdout, stderr bytes.Buffer
				cmd.Stdout, cmd.Stderr = &stdout, &stderr
				runErr := cmd.Run()

				var acks []ackedRelease
				ackedEps, done := 0.0, false
				sc := bufio.NewScanner(bytes.NewReader(stdout.Bytes()))
				for sc.Scan() {
					line := sc.Text()
					switch {
					case strings.HasPrefix(line, "CHILD-ERROR"):
						t.Fatalf("child hit an unexpected error: %s\nstderr:\n%s", line, stderr.String())
					case line == "DONE":
						done = true
					case strings.HasPrefix(line, "ACK release "):
						f := strings.Fields(line)
						seed, _ := strconv.ParseUint(strings.TrimPrefix(f[2], "seed="), 10, 64)
						eps, _ := strconv.ParseFloat(f[3], 64)
						acks = append(acks, ackedRelease{seed: seed, eps: eps, sha: f[4]})
						ackedEps += eps
					case strings.HasPrefix(line, "ACK refund "):
						// The refund's debit+refund cancel; nothing to track.
					}
				}
				if runErr == nil && !done {
					t.Fatalf("child exited cleanly mid-workload\nstdout:\n%s", stdout.String())
				}

				// Recover in-process, as a restarted server would.
				s, err := OpenSession(dir, sessionCrashBudget)
				if err != nil {
					t.Fatalf("recovery failed: %v", err)
				}
				defer s.Close()

				// Invariant 1: spent never under-counts acknowledged debits.
				// (The in-flight release and the refund probe can add at most
				// their own debits ON TOP — never subtract.)
				if spent := s.Spent(); spent < ackedEps-1e-12 {
					t.Fatalf("recovered spent ε=%v under-counts acknowledged %v", spent, ackedEps)
				}

				// Invariant 2: every acknowledged release is recovered with
				// bit-identical envelope bytes, decodable via Decode.
				bySHA := make(map[string]*Release)
				for _, rr := range s.Restored() {
					env, err := rr.Release.Envelope()
					if err != nil {
						t.Fatalf("restored release has no envelope: %v", err)
					}
					sum := sha256.Sum256(env)
					bySHA[hex.EncodeToString(sum[:])] = rr.Release
				}
				data, err := NewSpatialData(UnitCube(2), sessionStorePoints(800))
				if err != nil {
					t.Fatal(err)
				}
				spentBefore := s.Spent()
				for _, ack := range acks {
					rel, ok := bySHA[ack.sha]
					if !ok {
						t.Fatalf("acknowledged release seed=%d LOST by recovery", ack.seed)
					}
					if rel.Epsilon() != ack.eps || rel.Seed() != ack.seed {
						t.Fatalf("recovered release provenance wrong: eps=%v seed=%d, want eps=%v seed=%d",
							rel.Epsilon(), rel.Seed(), ack.eps, ack.seed)
					}
					// Invariant 3: a repeat request is served from the store
					// without a new debit.
					m, err := NewSpatialMechanism(SpatialOptions{Seed: ack.seed, Workers: 1})
					if err != nil {
						t.Fatal(err)
					}
					got, cached, err := s.Release(m, data, ack.eps)
					if err != nil {
						t.Fatal(err)
					}
					if !cached {
						t.Fatalf("recovered release seed=%d was rebuilt (re-debited)", ack.seed)
					}
					gotEnv, err := got.Envelope()
					if err != nil {
						t.Fatal(err)
					}
					if sum := sha256.Sum256(gotEnv); hex.EncodeToString(sum[:]) != ack.sha {
						t.Fatalf("served envelope for seed=%d is not bit-identical", ack.seed)
					}
				}
				if got := s.Spent(); got != spentBefore {
					t.Fatalf("serving recovered releases re-debited: %v -> %v", spentBefore, got)
				}
			})
		}
	}
}
