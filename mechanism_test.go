package privtree

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
)

// The tentpole contract: every mechanism — spatial, sequence, hybrid, and
// all six Figure-5 baselines — is constructible by registry name and
// runnable through the ledger-backed Session path.

func testHybridSchema(t testing.TB) *HybridSchema {
	t.Helper()
	schema, err := NewHybridSchema(
		[]NumericAttr{{Label: "age", Lo: 0, Hi: 100}},
		map[string]*CategoryNode{
			"job": {Value: "any", Children: []*CategoryNode{
				{Value: "tech", Children: []*CategoryNode{{Value: "eng"}, {Value: "sci"}}},
				{Value: "care", Children: []*CategoryNode{{Value: "nurse"}, {Value: "doctor"}}},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func testHybridRecords(n int) []HybridRecord {
	jobs := []string{"eng", "sci", "nurse", "doctor"}
	out := make([]HybridRecord, n)
	for i := range out {
		out[i] = HybridRecord{Nums: []float64{float64(i % 100)}, Cats: []string{jobs[i%len(jobs)]}}
	}
	return out
}

func TestMechanismRegistryComplete(t *testing.T) {
	want := []string{
		"baseline/ag", "baseline/dawa", "baseline/hierarchy", "baseline/privelet",
		"baseline/simpletree", "baseline/ug", "hybrid", "sequence", "spatial",
	}
	if got := Mechanisms(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Mechanisms() = %v, want %v", got, want)
	}
}

func TestEveryMechanismViaRegistryAndSession(t *testing.T) {
	spatialData, err := NewSpatialData(UnitCube(2), makeClusteredPoints(5000))
	if err != nil {
		t.Fatal(err)
	}
	seqData, err := NewSequenceData(6, makeClickstreams(5000))
	if err != nil {
		t.Fatal(err)
	}
	hybridData, err := NewHybridData(testHybridSchema(t), testHybridRecords(5000))
	if err != nil {
		t.Fatal(err)
	}
	dataFor := map[ReleaseKind]*Data{
		KindSpatial:  spatialData,
		KindSequence: seqData,
		KindHybrid:   hybridData,
	}

	names := Mechanisms()
	session, err := NewSession(float64(len(names)) * 0.5)
	if err != nil {
		t.Fatal(err)
	}
	q := NewRect(Point{0.1, 0.1}, Point{0.6, 0.9})
	for _, name := range names {
		p := Params{Seed: 11}
		if name == "sequence" {
			p.MaxLength = 10
		}
		m, err := NewMechanism(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data := dataFor[KindSpatial]
		if name == "sequence" || name == "hybrid" {
			data = dataFor[m.Kind()]
		}
		rel, cached, err := session.Release(m, data, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cached {
			t.Fatalf("%s: fresh release reported as cached", name)
		}
		if rel.Mechanism() != name || rel.Epsilon() != 0.5 || rel.Seed() != 11 {
			t.Fatalf("%s: release metadata wrong: mech=%s eps=%v seed=%d", name, rel.Mechanism(), rel.Epsilon(), rel.Seed())
		}
		switch m.Kind() {
		case KindSpatial, KindBaseline:
			c, ok := rel.RangeCounter()
			if !ok {
				t.Fatalf("%s: release is not a RangeCounter", name)
			}
			if v := c.RangeCount(q); math.IsNaN(v) {
				t.Fatalf("%s: RangeCount answered NaN", name)
			}
			if v := rel.RangeCount(q); math.IsNaN(v) {
				t.Fatalf("%s: Release.RangeCount answered NaN", name)
			}
			if !math.IsNaN(rel.EstimateFrequency(Sequence{0})) {
				t.Fatalf("%s: EstimateFrequency should be NaN for non-sequence releases", name)
			}
		case KindSequence:
			mdl, ok := rel.Sequence()
			if !ok || mdl.Nodes() == 0 {
				t.Fatalf("%s: sequence payload missing", name)
			}
			if math.IsNaN(rel.EstimateFrequency(Sequence{0})) {
				t.Fatalf("%s: EstimateFrequency answered NaN", name)
			}
			if !math.IsNaN(rel.RangeCount(q)) {
				t.Fatalf("%s: RangeCount should be NaN for sequence releases", name)
			}
		case KindHybrid:
			h, ok := rel.Hybrid()
			if !ok || h.Total() == 0 {
				t.Fatalf("%s: hybrid payload missing", name)
			}
		}
	}
	if spent := session.Spent(); math.Abs(spent-float64(len(names))*0.5) > 1e-9 {
		t.Fatalf("session spent %v after %d releases of 0.5", spent, len(names))
	}
	if len(session.Releases()) != len(names) {
		t.Fatalf("session holds %d releases, want %d", len(session.Releases()), len(names))
	}
}

func TestSessionDedupRefundAndExhaustion(t *testing.T) {
	data, err := NewSpatialData(UnitCube(2), makeClusteredPoints(3000))
	if err != nil {
		t.Fatal(err)
	}
	session, err := NewSession(1.0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSpatialMechanism(SpatialOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	first, cached, err := session.Release(m, data, 0.4)
	if err != nil || cached {
		t.Fatalf("first release: cached=%v err=%v", cached, err)
	}
	// Identical request: cache hit, same object, no new debit.
	again, cached, err := session.Release(m, data, 0.4)
	if err != nil || !cached || again != first {
		t.Fatalf("identical request not deduped: cached=%v same=%v err=%v", cached, again == first, err)
	}
	if spent := session.Spent(); spent != 0.4 {
		t.Fatalf("spent %v after dedup, want 0.4", spent)
	}
	// Different seed: a new release, a new debit.
	m2, err := NewSpatialMechanism(SpatialOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, cached, err = session.Release(m2, data, 0.4); err != nil || cached {
		t.Fatalf("different-seed release: cached=%v err=%v", cached, err)
	}
	if spent := session.Spent(); spent != 0.8 {
		t.Fatalf("spent %v, want 0.8", spent)
	}

	// A failing build refunds its debit: fanout 3 passes static validation
	// (it is dimension-dependent) and fails inside the mechanism.
	bad, err := NewMechanism("spatial", Params{Seed: 1, Fanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := session.Release(bad, data, 0.2); err == nil {
		t.Fatal("unrealizable fanout accepted")
	}
	if spent := session.Spent(); spent != 0.8 {
		t.Fatalf("failed build leaked budget: spent %v, want 0.8", spent)
	}

	// Exhaustion: the remaining 0.2 cannot cover 0.5, and the rejection is
	// the structured *BudgetError.
	m3, err := NewSpatialMechanism(SpatialOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = session.Release(m3, data, 0.5)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("over-budget release: got %v, want *BudgetError", err)
	}
	if be.Requested != 0.5 || be.Total != 1.0 || math.Abs(be.Remaining-0.2) > 1e-9 {
		t.Fatalf("budget arithmetic wrong: %+v", be)
	}

	// The audit trail records every debit, including the refund as a
	// negative entry.
	hist := session.History()
	if len(hist) != 4 {
		t.Fatalf("audit trail has %d entries, want 4 (3 spends + 1 refund): %+v", len(hist), hist)
	}
	if hist[3].Epsilon != -0.2 {
		t.Fatalf("refund not recorded as negative debit: %+v", hist[3])
	}
}

func TestSessionConcurrentIdenticalRequestsDebitOnce(t *testing.T) {
	data, err := NewSpatialData(UnitCube(2), makeClusteredPoints(3000))
	if err != nil {
		t.Fatal(err)
	}
	session, err := NewSession(1.0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSpatialMechanism(SpatialOptions{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := session.Release(m, data, 0.25)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if spent := session.Spent(); spent != 0.25 {
		t.Fatalf("spent %v after %d identical requests, want one debit of 0.25", spent, goroutines)
	}
	if n := len(session.Releases()); n != 1 {
		t.Fatalf("%d releases cached, want 1", n)
	}
}

func TestSessionRejectsStaticErrorsWithoutDebit(t *testing.T) {
	seqData, err := NewSequenceData(4, []Sequence{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	session, err := NewSession(1.0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSpatialMechanism(SpatialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong data kind and bad ε are rejected before any ledger traffic.
	if _, _, err := session.Release(m, seqData, 0.5); err == nil {
		t.Fatal("spatial mechanism accepted sequence data")
	}
	spatialData, err := NewSpatialData(UnitCube(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, _, err := session.Release(m, spatialData, eps); err == nil {
			t.Fatalf("epsilon %v accepted", eps)
		}
	}
	if _, _, err := session.Release(nil, spatialData, 0.5); err == nil {
		t.Fatal("nil mechanism accepted")
	}
	if len(session.History()) != 0 {
		t.Fatalf("static failures reached the ledger: %+v", session.History())
	}
}

func TestMechanismRejectsInapplicableParams(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		{"spatial", Params{MaxLength: 5}},
		{"sequence", Params{Fanout: 4}},
		{"sequence", Params{Theta: 1}},
		{"sequence", Params{AffectedLeaves: 2}},
		{"hybrid", Params{MaxDepth: 3}},
		{"hybrid", Params{MaxLength: 3}},
		{"baseline/ug", Params{TreeBudgetFraction: 0.5}},
		{"baseline/simpletree", Params{Fanout: 4}},
	}
	for _, c := range cases {
		if _, err := NewMechanism(c.name, c.p); err == nil {
			t.Errorf("%s accepted inapplicable params %+v", c.name, c.p)
		}
	}
	if _, err := NewMechanism("nope", Params{}); err == nil {
		t.Error("unknown mechanism name accepted")
	}
	// Invalid applicable values are rejected at construction too.
	if _, err := NewMechanism("spatial", Params{Fanout: 1}); err == nil {
		t.Error("fanout 1 accepted")
	}
	if _, err := NewMechanism("spatial", Params{Theta: math.NaN()}); err == nil {
		t.Error("NaN theta accepted")
	}
	if _, err := NewMechanism("sequence", Params{MaxLength: -1}); err == nil {
		t.Error("negative max length accepted")
	}
	if _, err := NewMechanism("spatial", Params{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
}

// TestBuildWrappersDelegateToRegistry pins the back-compat contract: the
// legacy Build* entry points and the registry + Run path release identical
// artifacts for the same seed.
func TestBuildWrappersDelegateToRegistry(t *testing.T) {
	pts := makeClusteredPoints(5000)
	legacy, err := BuildSpatial(UnitCube(2), pts, 1.0, SpatialOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	data, err := NewSpatialData(UnitCube(2), pts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSpatialMechanism(SpatialOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := m.Run(data, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	viaRegistry, _ := rel.Spatial()
	if legacy.Nodes() != viaRegistry.Nodes() || legacy.Total() != viaRegistry.Total() {
		t.Fatalf("wrapper and registry diverged: %d/%d nodes, %v/%v total",
			legacy.Nodes(), viaRegistry.Nodes(), legacy.Total(), viaRegistry.Total())
	}

	seqs := makeClickstreams(5000)
	legacyM, err := BuildSequenceModel(6, seqs, 1.0, SequenceOptions{MaxLength: 12, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	seqData, err := NewSequenceData(6, seqs)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewSequenceMechanism(SequenceOptions{MaxLength: 12, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	seqRel, err := sm.Run(seqData, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	viaReg, _ := seqRel.Sequence()
	if legacyM.Nodes() != viaReg.Nodes() {
		t.Fatalf("sequence wrapper and registry diverged: %d vs %d nodes", legacyM.Nodes(), viaReg.Nodes())
	}
	for _, s := range []Sequence{{0}, {1, 2}, {3, 4, 5}} {
		if a, b := legacyM.EstimateFrequency(s), viaReg.EstimateFrequency(s); a != b {
			t.Fatalf("estimate(%v): %v vs %v", s, a, b)
		}
	}
}
