package privtree

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"privtree/internal/dataset"
)

// Params carries every client-settable knob of every registered mechanism
// in one wire-stable struct: the union of the typed option sets
// (SpatialOptions, SequenceOptions, the hybrid and baseline seeds). Each
// mechanism validates the fields that apply to it at construction time and
// rejects non-zero values for fields that do not — a knob silently ignored
// would let a caller spend irreversible ε on the wrong artifact.
//
// Params (minus Workers) is the release fingerprint input: two requests
// with equal Params, mechanism, and ε denote the same release.
type Params struct {
	// Seed fixes the mechanism's randomness; 0 picks the library default.
	// Applies to every mechanism.
	Seed uint64 `json:"seed,omitempty"`

	// Spatial knobs (see SpatialOptions).
	Fanout             int     `json:"fanout,omitempty"`
	Theta              float64 `json:"theta,omitempty"`
	TreeBudgetFraction float64 `json:"tree_budget_fraction,omitempty"`
	MaxDepth           int     `json:"max_depth,omitempty"`
	AffectedLeaves     int     `json:"affected_leaves,omitempty"`

	// Sequence knobs (see SequenceOptions).
	MaxLength int `json:"max_length,omitempty"`

	// Workers bounds build parallelism (0 = GOMAXPROCS, 1 = serial). It is
	// an execution detail, not a release parameter: the released artifact
	// is identical at every setting, so Workers is excluded from the
	// fingerprint and from the wire envelope.
	Workers int `json:"-"`
}

// fingerprint renders every artifact-determining field in a fixed order.
func (p Params) fingerprint() string {
	return fmt.Sprintf("seed=%d fanout=%d theta=%g frac=%g depth=%d leaves=%d maxlen=%d",
		p.Seed, p.Fanout, p.Theta, p.TreeBudgetFraction, p.MaxDepth, p.AffectedLeaves, p.MaxLength)
}

// dataID hands every Data a process-unique identity for session cache keys.
var dataID atomic.Uint64

// Data is a private dataset a mechanism consumes, created by one of
// NewSpatialData, NewSequenceData, or NewHybridData. The constructors
// validate eagerly (domain shape, points inside the domain, symbols inside
// the alphabet, records against the schema) so that a later release can
// only fail on release parameters. The raw contents are never exposed:
// only Releases built from the data are.
//
// The constructors retain the caller's slices by reference; the caller
// must not mutate them afterwards — the eager-validation contract and the
// Session cache (which keys on the Data's identity, not its contents)
// both assume the data is frozen at construction.
type Data struct {
	kind ReleaseKind
	id   uint64

	spatial *dataset.Spatial // KindSpatial

	alphabet int        // KindSequence
	seqs     []Sequence // KindSequence

	schema  *HybridSchema  // KindHybrid
	records []HybridRecord // KindHybrid
}

// NewSpatialData wraps a point set over domain for the spatial and
// baseline mechanisms. Every point must lie inside domain.
func NewSpatialData(domain Rect, points []Point) (*Data, error) {
	if err := domain.Validate(); err != nil {
		return nil, fmt.Errorf("privtree: invalid domain: %w", err)
	}
	ds, err := dataset.NewSpatial(domain, points)
	if err != nil {
		return nil, err
	}
	return &Data{kind: KindSpatial, id: dataID.Add(1), spatial: ds}, nil
}

// validateSequenceSymbols is NewSequenceData's eager data validation.
// (BuildSequenceModel skips it on purpose: corpus ingestion checks every
// symbol while copying, so a pre-pass there would scan the data twice.)
func validateSequenceSymbols(alphabet int, seqs []Sequence) error {
	if alphabet < 1 {
		return fmt.Errorf("privtree: alphabet size must be >= 1, got %d", alphabet)
	}
	for i, s := range seqs {
		for _, x := range s {
			if x < 0 || x >= alphabet {
				return fmt.Errorf("privtree: sequence %d has symbol %d outside [0,%d)", i, x, alphabet)
			}
		}
	}
	return nil
}

// NewSequenceData wraps behavioural sequences over a symbol alphabet
// [0, alphabet) for the sequence mechanism.
func NewSequenceData(alphabet int, seqs []Sequence) (*Data, error) {
	if err := validateSequenceSymbols(alphabet, seqs); err != nil {
		return nil, err
	}
	return &Data{kind: KindSequence, id: dataID.Add(1), alphabet: alphabet, seqs: seqs}, nil
}

// NewHybridData wraps mixed numeric/categorical records against a schema
// for the hybrid mechanism.
func NewHybridData(schema *HybridSchema, records []HybridRecord) (*Data, error) {
	if schema == nil {
		return nil, fmt.Errorf("privtree: nil hybrid schema")
	}
	for i, r := range records {
		if err := schema.inner.Validate(r); err != nil {
			return nil, fmt.Errorf("privtree: record %d: %w", i, err)
		}
	}
	return &Data{kind: KindHybrid, id: dataID.Add(1), schema: schema, records: records}, nil
}

// Kind returns the data family: KindSpatial data feeds the spatial and all
// baseline mechanisms, KindSequence the sequence mechanism, KindHybrid the
// hybrid mechanism.
func (d *Data) Kind() ReleaseKind { return d.kind }

// N returns the dataset cardinality (points, sequences, or records).
func (d *Data) N() int {
	switch d.kind {
	case KindSpatial:
		return d.spatial.N()
	case KindSequence:
		return len(d.seqs)
	default:
		return len(d.records)
	}
}

// Dims returns the spatial dimensionality (0 for non-spatial data).
func (d *Data) Dims() int {
	if d.kind == KindSpatial {
		return d.spatial.Dims()
	}
	return 0
}

// Alphabet returns the symbol alphabet size (0 for non-sequence data).
func (d *Data) Alphabet() int { return d.alphabet }

// mechanismSpec is one registry entry: the named family, the data kind it
// consumes, its data-independent parameter validation, and its build.
type mechanismSpec struct {
	name     string
	kind     ReleaseKind
	dataKind ReleaseKind
	validate func(p Params) error
	build    func(data *Data, eps float64, p Params) (*Release, error)
}

// mechanismRegistry maps name → spec. It is assembled once at package
// initialization and read-only afterwards, so lookups need no lock.
var mechanismRegistry = buildMechanismRegistry()

// Mechanisms returns the names of every registered mechanism, sorted:
// the PrivTree builds ("spatial", "sequence", "hybrid") and the paper's
// Figure-5 baseline lineup ("baseline/ug", "baseline/ag", ...).
func Mechanisms() []string {
	out := make([]string, 0, len(mechanismRegistry))
	for name := range mechanismRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Mechanism is a named ε-DP build with its parameters bound and validated:
// running it on Data produces a Release. Obtain one from the typed
// constructors (NewSpatialMechanism, NewSequenceMechanism,
// NewHybridMechanism, NewBaselineMechanism) or by registry name via
// NewMechanism. A Mechanism is immutable and safe for concurrent use.
type Mechanism struct {
	spec   *mechanismSpec
	params Params
}

// NewMechanism instantiates a registered mechanism by name from wire
// parameters. The parameters are validated for the named mechanism:
// invalid values and non-zero values for knobs the mechanism does not have
// are both rejected.
func NewMechanism(name string, p Params) (*Mechanism, error) {
	spec, ok := mechanismRegistry[name]
	if !ok {
		return nil, fmt.Errorf("privtree: unknown mechanism %q (have %v)", name, Mechanisms())
	}
	if err := spec.validate(p); err != nil {
		return nil, fmt.Errorf("privtree: mechanism %s: %w", name, err)
	}
	return &Mechanism{spec: spec, params: p}, nil
}

// NewSpatialMechanism instantiates the Section 3 spatial PrivTree build
// from its typed options.
func NewSpatialMechanism(opts SpatialOptions) (*Mechanism, error) {
	return NewMechanism("spatial", Params{
		Seed:               opts.Seed,
		Fanout:             opts.Fanout,
		Theta:              opts.Theta,
		TreeBudgetFraction: opts.TreeBudgetFraction,
		MaxDepth:           opts.MaxDepth,
		AffectedLeaves:     opts.AffectedLeaves,
		Workers:            opts.Workers,
	})
}

// NewSequenceMechanism instantiates the Section 4 prediction-suffix-tree
// build from its typed options.
func NewSequenceMechanism(opts SequenceOptions) (*Mechanism, error) {
	return NewMechanism("sequence", Params{
		Seed:      opts.Seed,
		MaxLength: opts.MaxLength,
		Workers:   opts.Workers,
	})
}

// NewHybridMechanism instantiates the Section 3.5 mixed-domain build.
func NewHybridMechanism(seed uint64) (*Mechanism, error) {
	return NewMechanism("hybrid", Params{Seed: seed})
}

// NewBaselineMechanism instantiates one of the paper's comparison methods.
func NewBaselineMechanism(b Baseline, seed uint64) (*Mechanism, error) {
	return NewMechanism("baseline/"+string(b), Params{Seed: seed})
}

// Name returns the registry name.
func (m *Mechanism) Name() string { return m.spec.name }

// Kind returns the release kind the mechanism produces.
func (m *Mechanism) Kind() ReleaseKind { return m.spec.kind }

// Params returns the bound parameters.
func (m *Mechanism) Params() Params { return m.params }

// precheck validates the data/budget pairing without running the build.
func (m *Mechanism) precheck(data *Data, eps float64) error {
	if data == nil {
		return fmt.Errorf("privtree: mechanism %s: nil data", m.spec.name)
	}
	if data.kind != m.spec.dataKind {
		return fmt.Errorf("privtree: mechanism %s consumes %s data, got %s", m.spec.name, m.spec.dataKind, data.kind)
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("privtree: epsilon must be positive and finite, got %v", eps)
	}
	return nil
}

// Run builds the release on data under total budget eps. Run does no
// budget accounting — it is the raw mechanism; use Session.Release to run
// mechanisms against a ledger.
func (m *Mechanism) Run(data *Data, eps float64) (*Release, error) {
	if err := m.precheck(data, eps); err != nil {
		return nil, err
	}
	rel, err := m.spec.build(data, eps, m.params)
	if err != nil {
		return nil, err
	}
	rel.kind = m.spec.kind
	rel.mechanism = m.spec.name
	rel.epsilon = eps
	rel.params = m.params
	rel.params.Workers = 0 // execution detail, not part of the release identity
	return rel, nil
}

// requireZero rejects a non-zero knob that the mechanism does not have.
func requireZero(mech, knob string, nonZero bool) error {
	if nonZero {
		return fmt.Errorf("%s mechanism has no %s parameter (must be zero)", mech, knob)
	}
	return nil
}

// validateSpatialParams is the data-independent half of the spatial
// parameter validation; fanout realizability (≤ 2^d) is checked at build
// time, where the dimensionality is known.
func validateSpatialParams(p Params) error {
	if p.Fanout != 0 && p.Fanout < 2 {
		return fmt.Errorf("fanout must be >= 2, got %d", p.Fanout)
	}
	if math.IsNaN(p.Theta) || math.IsInf(p.Theta, 0) {
		return fmt.Errorf("theta must be finite, got %v", p.Theta)
	}
	if p.TreeBudgetFraction != 0 && !(p.TreeBudgetFraction > 0 && p.TreeBudgetFraction < 1) {
		return fmt.Errorf("TreeBudgetFraction must be in (0,1), got %v", p.TreeBudgetFraction)
	}
	if p.MaxDepth < 0 {
		return fmt.Errorf("MaxDepth must be >= 0, got %d", p.MaxDepth)
	}
	if p.AffectedLeaves < 0 {
		return fmt.Errorf("AffectedLeaves must be >= 0, got %d", p.AffectedLeaves)
	}
	if p.Workers < 0 {
		return fmt.Errorf("Workers must be >= 0, got %d", p.Workers)
	}
	return requireZero("spatial", "max_length", p.MaxLength != 0)
}

// requireZeroSpatialKnobs rejects non-zero spatial-only knobs for
// mechanisms that do not have them.
func requireZeroSpatialKnobs(mech string, p Params) error {
	if err := requireZero(mech, "fanout", p.Fanout != 0); err != nil {
		return err
	}
	if err := requireZero(mech, "theta", p.Theta != 0); err != nil {
		return err
	}
	if err := requireZero(mech, "tree_budget_fraction", p.TreeBudgetFraction != 0); err != nil {
		return err
	}
	if err := requireZero(mech, "max_depth", p.MaxDepth != 0); err != nil {
		return err
	}
	return requireZero(mech, "affected_leaves", p.AffectedLeaves != 0)
}

func validateSequenceParams(p Params) error {
	if p.MaxLength < 0 {
		return fmt.Errorf("MaxLength must be >= 0, got %d", p.MaxLength)
	}
	if p.Workers < 0 {
		return fmt.Errorf("Workers must be >= 0, got %d", p.Workers)
	}
	return requireZeroSpatialKnobs("sequence", p)
}

// validateSeedOnlyParams covers the hybrid and baseline mechanisms, whose
// only release parameter is the seed.
func validateSeedOnlyParams(mech string) func(Params) error {
	return func(p Params) error {
		if p.Workers < 0 {
			return fmt.Errorf("Workers must be >= 0, got %d", p.Workers)
		}
		if err := requireZeroSpatialKnobs(mech, p); err != nil {
			return err
		}
		return requireZero(mech, "max_length", p.MaxLength != 0)
	}
}

// buildMechanismRegistry assembles the full mechanism lineup: the paper's
// three PrivTree pipelines plus every Figure-5 baseline.
func buildMechanismRegistry() map[string]*mechanismSpec {
	specs := []*mechanismSpec{
		{
			name: "spatial", kind: KindSpatial, dataKind: KindSpatial,
			validate: validateSpatialParams,
			build: func(data *Data, eps float64, p Params) (*Release, error) {
				t, err := buildSpatialTree(data.spatial, eps, p)
				if err != nil {
					return nil, err
				}
				return &Release{spatial: t}, nil
			},
		},
		{
			name: "sequence", kind: KindSequence, dataKind: KindSequence,
			validate: validateSequenceParams,
			build: func(data *Data, eps float64, p Params) (*Release, error) {
				m, err := buildSequenceModel(data.alphabet, data.seqs, eps, p)
				if err != nil {
					return nil, err
				}
				return &Release{model: m}, nil
			},
		},
		{
			name: "hybrid", kind: KindHybrid, dataKind: KindHybrid,
			validate: validateSeedOnlyParams("hybrid"),
			build: func(data *Data, eps float64, p Params) (*Release, error) {
				t, err := buildHybridTree(data.schema, data.records, eps, p.Seed)
				if err != nil {
					return nil, err
				}
				return &Release{hybrid: t}, nil
			},
		},
	}
	for _, b := range []Baseline{BaselineUG, BaselineAG, BaselineHierarchy, BaselinePrivelet, BaselineDAWA, BaselineSimpleTree} {
		b := b
		specs = append(specs, &mechanismSpec{
			name: "baseline/" + string(b), kind: KindBaseline, dataKind: KindSpatial,
			validate: validateSeedOnlyParams("baseline/" + string(b)),
			build: func(data *Data, eps float64, p Params) (*Release, error) {
				c, err := buildBaseline(b, data.spatial, eps, p.Seed)
				if err != nil {
					return nil, err
				}
				return &Release{counter: c}, nil
			},
		})
	}
	out := make(map[string]*mechanismSpec, len(specs))
	for _, s := range specs {
		out[s.name] = s
	}
	return out
}
