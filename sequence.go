package privtree

import (
	"fmt"
	"math"

	"privtree/internal/dp"
	"privtree/internal/markov"
	"privtree/internal/pst"
	"privtree/internal/sequence"
)

// Sequence is one behavioural sequence: symbol indices in [0, alphabet).
type Sequence []int

// SequenceOptions tunes BuildSequenceModel.
type SequenceOptions struct {
	// MaxLength is l⊤, the bound on sequence length (counting the
	// terminal marker). Longer sequences are truncated, as in Section
	// 4.2. 0 means the 95th length percentile is chosen privately with
	// 5% of the budget (the paper's recipe, footnote 2).
	MaxLength int
	// Seed makes the build reproducible; 0 picks a fixed default.
	Seed uint64
	// Workers bounds the goroutines used for PST construction: 0 means
	// GOMAXPROCS, 1 forces a serial build. Noise is drawn from per-node
	// splittable streams keyed by the context path, so the released model
	// is identical for every Workers setting — only build time changes.
	Workers int
}

// SequenceModel is a released private prediction suffix tree.
type SequenceModel struct {
	model *markov.Model
	lTop  int
}

// FrequentString is one mined string with its estimated occurrence count.
type FrequentString struct {
	Symbols []int
	Count   float64
}

// BuildSequenceModel constructs a differentially private Markov model (a
// prediction suffix tree) over the sequences under total budget eps,
// following Section 4: the split decisions use the monotone score of
// Equation (13) with ε/β of the budget, and the prediction histograms are
// released with the remaining ε·(β−1)/β, where β = alphabet+1.
//
// The sequences are ingested into one columnar symbol slab (O(1)
// allocations regardless of count), truncation is an in-place header
// update, and the PST is built as a flat arena — see README.md for the
// measured costs.
//
// BuildSequenceModel is a thin wrapper over the "sequence" registry
// mechanism: it runs the same validation and build implementation as
// NewSequenceData + NewSequenceMechanism + Run, skipping only the
// Data/Release boxing so the build stays allocation-lean. Use
// Session.Release to run the mechanism against a privacy-budget ledger.
func BuildSequenceModel(alphabet int, seqs []Sequence, eps float64, opts SequenceOptions) (*SequenceModel, error) {
	if alphabet < 1 {
		return nil, fmt.Errorf("privtree: alphabet size must be >= 1, got %d", alphabet)
	}
	// Symbol-range validation is left to the corpus ingestion inside
	// buildSequenceModel — it checks every symbol while copying anyway, so
	// a pre-pass here would scan the corpus twice.
	p := Params{Seed: opts.Seed, MaxLength: opts.MaxLength, Workers: opts.Workers}
	if err := validateSequenceParams(p); err != nil {
		return nil, fmt.Errorf("privtree: mechanism sequence: %w", err)
	}
	return buildSequenceModel(alphabet, seqs, eps, p)
}

// buildSequenceModel is the sequence mechanism implementation shared by
// the registry and the BuildSequenceModel wrapper. alphabet and seqs have
// been validated by NewSequenceData; p by validateSequenceParams.
func buildSequenceModel(alphabet int, seqs []Sequence, eps float64, p Params) (*SequenceModel, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("privtree: epsilon must be positive and finite, got %v", eps)
	}
	corpus, err := sequence.NewCorpus(sequence.NewAlphabet(alphabet), seqs)
	if err != nil {
		return nil, fmt.Errorf("privtree: %w", err)
	}
	rng := dp.NewRand(seedOrDefault(p.Seed))
	lTop := p.MaxLength
	budget := eps
	if lTop == 0 {
		// Spend 5% of the budget choosing l⊤ privately.
		quantEps := eps * 0.05
		budget = eps - quantEps
		lTop = sequence.PrivateLengthQuantileCorpus(corpus, 0.95, quantEps, corpus.MaxLen()+1, rng)
	}
	corpus.Truncate(lTop)
	model, err := markov.BuildCorpus(corpus, markov.Config{
		Epsilon: budget,
		LTop:    lTop,
		Workers: p.Workers,
	}, rng)
	if err != nil {
		return nil, err
	}
	return &SequenceModel{model: model, lTop: lTop}, nil
}

// MaxLength returns the l⊤ the model was built with.
func (m *SequenceModel) MaxLength() int { return m.lTop }

// EstimateFrequency returns the model's estimate of how many times the
// string occurs as a substring across the data (Equation 12). It performs
// no heap allocation: the query walks the model's arena directly, and
// symbols outside [0, alphabet) yield estimate 0 rather than a panic.
func (m *SequenceModel) EstimateFrequency(s Sequence) float64 {
	return pst.Estimate(&m.model.Tree, []int(s))
}

// TopK mines the k most frequent strings of length at most maxLen. The
// returned Symbols slices are handed over from the miner without an extra
// per-string copy.
func (m *SequenceModel) TopK(k, maxLen int) []FrequentString {
	mined := pst.MineTopK(&m.model.Tree, k, maxLen)
	out := make([]FrequentString, len(mined))
	for i, mn := range mined {
		out[i] = FrequentString{Symbols: mn.Syms, Count: mn.Count}
	}
	return out
}

// Generate samples n synthetic sequences from the model, each capped at
// the model's l⊤. All sampled symbols land in shared slabs (the returned
// Sequences are windows into them), so generation costs O(log n)
// allocations instead of two per sequence.
func (m *SequenceModel) Generate(n int, seed uint64) []Sequence {
	rng := dp.NewRand(seedOrDefault(seed))
	out := make([]Sequence, n)
	buf := make([]int, 0, m.lTop)
	slab := make([]int, 0, 16*n)
	for i := range out {
		buf, _ = pst.AppendSample(&m.model.Tree, rng, m.lTop, buf[:0])
		start := len(slab)
		slab = append(slab, buf...)
		out[i] = Sequence(slab[start:len(slab):len(slab)])
	}
	return out
}

// Nodes returns the number of nodes in the released PST.
func (m *SequenceModel) Nodes() int { return m.model.Size() }
