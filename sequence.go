package privtree

import (
	"fmt"
	"math"

	"privtree/internal/dp"
	"privtree/internal/markov"
	"privtree/internal/sequence"
)

// Sequence is one behavioural sequence: symbol indices in [0, alphabet).
type Sequence []int

// SequenceOptions tunes BuildSequenceModel.
type SequenceOptions struct {
	// MaxLength is l⊤, the bound on sequence length (counting the
	// terminal marker). Longer sequences are truncated, as in Section
	// 4.2. 0 means the 95th length percentile is chosen privately with
	// 5% of the budget (the paper's recipe, footnote 2).
	MaxLength int
	// Seed makes the build reproducible; 0 picks a fixed default.
	Seed uint64
}

// SequenceModel is a released private prediction suffix tree.
type SequenceModel struct {
	model *markov.Model
	lTop  int
}

// FrequentString is one mined string with its estimated occurrence count.
type FrequentString struct {
	Symbols []int
	Count   float64
}

// BuildSequenceModel constructs a differentially private Markov model (a
// prediction suffix tree) over the sequences under total budget eps,
// following Section 4: the split decisions use the monotone score of
// Equation (13) with ε/β of the budget, and the prediction histograms are
// released with the remaining ε·(β−1)/β, where β = alphabet+1.
func BuildSequenceModel(alphabet int, seqs []Sequence, eps float64, opts SequenceOptions) (*SequenceModel, error) {
	if alphabet < 1 {
		return nil, fmt.Errorf("privtree: alphabet size must be >= 1")
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("privtree: epsilon must be positive and finite, got %v", eps)
	}
	if opts.MaxLength < 0 {
		return nil, fmt.Errorf("privtree: MaxLength must be >= 0, got %d", opts.MaxLength)
	}
	ds := &sequence.Dataset{Alphabet: sequence.NewAlphabet(alphabet), Seqs: make([]sequence.Seq, len(seqs))}
	for i, s := range seqs {
		syms := make([]sequence.Symbol, len(s))
		for j, x := range s {
			if x < 0 || x >= alphabet {
				return nil, fmt.Errorf("privtree: sequence %d symbol %d out of range [0,%d)", i, x, alphabet)
			}
			syms[j] = sequence.Symbol(x)
		}
		ds.Seqs[i] = sequence.Seq{Syms: syms}
	}
	rng := dp.NewRand(seedOrDefault(opts.Seed))
	lTop := opts.MaxLength
	budget := eps
	if lTop == 0 {
		// Spend 5% of the budget choosing l⊤ privately.
		quantEps := eps * 0.05
		budget = eps - quantEps
		lTop = sequence.PrivateLengthQuantile(ds, 0.95, quantEps, ds.MaxLen()+1, rng)
	}
	trunc, _ := ds.Truncate(lTop)
	model, err := markov.Build(trunc, markov.Config{Epsilon: budget, LTop: lTop}, rng)
	if err != nil {
		return nil, err
	}
	return &SequenceModel{model: model, lTop: lTop}, nil
}

// MaxLength returns the l⊤ the model was built with.
func (m *SequenceModel) MaxLength() int { return m.lTop }

// EstimateFrequency returns the model's estimate of how many times the
// string occurs as a substring across the data (Equation 12).
func (m *SequenceModel) EstimateFrequency(s Sequence) float64 {
	syms := make([]sequence.Symbol, len(s))
	for i, x := range s {
		syms[i] = sequence.Symbol(x)
	}
	return m.model.EstimateFrequency(syms)
}

// TopK mines the k most frequent strings of length at most maxLen.
func (m *SequenceModel) TopK(k, maxLen int) []FrequentString {
	mined := m.model.TopK(k, maxLen)
	out := make([]FrequentString, len(mined))
	for i, sc := range mined {
		syms := make([]int, len(sc.Syms))
		for j, x := range sc.Syms {
			syms[j] = int(x)
		}
		out[i] = FrequentString{Symbols: syms, Count: sc.Count}
	}
	return out
}

// Generate samples n synthetic sequences from the model, each capped at
// the model's l⊤.
func (m *SequenceModel) Generate(n int, seed uint64) []Sequence {
	rng := dp.NewRand(seedOrDefault(seed))
	synth := m.model.Generate(n, m.lTop, rng)
	out := make([]Sequence, len(synth.Seqs))
	for i, s := range synth.Seqs {
		seq := make(Sequence, len(s.Syms))
		for j, x := range s.Syms {
			seq[j] = int(x)
		}
		out[i] = seq
	}
	return out
}

// Nodes returns the number of nodes in the released PST.
func (m *SequenceModel) Nodes() int { return m.model.Size() }
