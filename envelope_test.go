package privtree

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// buildTestReleases returns one release of each serializable kind, built
// deterministically via the registry.
func buildTestReleases(t testing.TB) map[ReleaseKind]*Release {
	t.Helper()
	out := make(map[ReleaseKind]*Release)

	data, err := NewSpatialData(UnitCube(2), makeClusteredPoints(2000))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSpatialMechanism(SpatialOptions{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if out[KindSpatial], err = m.Run(data, 0.7); err != nil {
		t.Fatal(err)
	}

	seqData, err := NewSequenceData(6, makeClickstreams(2000))
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewSequenceMechanism(SequenceOptions{MaxLength: 10, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if out[KindSequence], err = sm.Run(seqData, 0.7); err != nil {
		t.Fatal(err)
	}

	hData, err := NewHybridData(testHybridSchema(t), testHybridRecords(2000))
	if err != nil {
		t.Fatal(err)
	}
	hm, err := NewHybridMechanism(31)
	if err != nil {
		t.Fatal(err)
	}
	if out[KindHybrid], err = hm.Run(hData, 0.7); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEnvelopeRoundTripAllKinds(t *testing.T) {
	rels := buildTestReleases(t)
	for kind, rel := range rels {
		blob, err := json.Marshal(rel)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !bytes.Contains(blob, []byte(`"privtree_release":1`)) {
			t.Fatalf("%s: envelope missing version marker: %s", kind, blob[:min(len(blob), 120)])
		}
		dec, err := Decode(blob)
		if err != nil {
			t.Fatalf("%s: Decode: %v", kind, err)
		}
		if dec.Kind() != kind || dec.Mechanism() != rel.Mechanism() ||
			dec.Epsilon() != rel.Epsilon() || dec.Seed() != rel.Seed() || dec.Params() != rel.Params() {
			t.Fatalf("%s: metadata lost in round trip: %+v vs %+v", kind, dec, rel)
		}
		// Payloads must answer identically.
		switch kind {
		case KindSpatial:
			q := NewRect(Point{0.1, 0.2}, Point{0.7, 0.9})
			if a, b := rel.RangeCount(q), dec.RangeCount(q); a != b {
				t.Fatalf("spatial answers diverged: %v vs %v", a, b)
			}
		case KindSequence:
			for _, s := range []Sequence{{0}, {2, 3}, {5, 0, 1}} {
				if a, b := rel.EstimateFrequency(s), dec.EstimateFrequency(s); a != b {
					t.Fatalf("sequence answers diverged on %v: %v vs %v", s, a, b)
				}
			}
		case KindHybrid:
			h1, _ := rel.Hybrid()
			h2, _ := dec.Hybrid()
			q := HybridQuery{NumRanges: []*[2]float64{{10, 60}}, CatValues: []map[string]bool{{"eng": true, "sci": true}}}
			if a, b := h1.Count(q), h2.Count(q); a != b {
				t.Fatalf("hybrid answers diverged: %v vs %v", a, b)
			}
		}
		// json.Unmarshal into a Release must behave exactly like Decode.
		var viaUnmarshal Release
		if err := json.Unmarshal(blob, &viaUnmarshal); err != nil {
			t.Fatalf("%s: Unmarshal: %v", kind, err)
		}
		if viaUnmarshal.Kind() != kind {
			t.Fatalf("%s: Unmarshal lost kind", kind)
		}
	}
}

// TestDecodeLegacyV0Documents pins the compat shims: bare per-type
// documents (the pre-envelope wire formats) still load through Decode.
func TestDecodeLegacyV0Documents(t *testing.T) {
	rels := buildTestReleases(t)

	spatial, _ := rels[KindSpatial].Spatial()
	blob, err := json.Marshal(spatial)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(blob)
	if err != nil {
		t.Fatalf("legacy spatial doc rejected: %v", err)
	}
	if dec.Kind() != KindSpatial || dec.Mechanism() != "" || dec.Epsilon() != 0 {
		t.Fatalf("legacy spatial doc: kind=%s mech=%q eps=%v", dec.Kind(), dec.Mechanism(), dec.Epsilon())
	}
	q := NewRect(Point{0.1, 0.2}, Point{0.7, 0.9})
	if a, b := spatial.RangeCount(q), dec.RangeCount(q); a != b {
		t.Fatalf("legacy spatial answers diverged: %v vs %v", a, b)
	}

	model, _ := rels[KindSequence].Sequence()
	blob, err = json.Marshal(model)
	if err != nil {
		t.Fatal(err)
	}
	if dec, err = Decode(blob); err != nil {
		t.Fatalf("legacy sequence doc rejected: %v", err)
	}
	if dec.Kind() != KindSequence {
		t.Fatalf("legacy sequence doc decoded as %s", dec.Kind())
	}
	if a, b := model.EstimateFrequency(Sequence{0, 1}), dec.EstimateFrequency(Sequence{0, 1}); a != b {
		t.Fatalf("legacy sequence answers diverged: %v vs %v", a, b)
	}

	hybrid, _ := rels[KindHybrid].Hybrid()
	blob, err = json.Marshal(hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if dec, err = Decode(blob); err != nil {
		t.Fatalf("bare hybrid doc rejected: %v", err)
	}
	if dec.Kind() != KindHybrid {
		t.Fatalf("bare hybrid doc decoded as %s", dec.Kind())
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		blob string
	}{
		{"empty", ``},
		{"not json", `{`},
		{"no shape", `{"hello": "world"}`},
		{"future envelope version", `{"privtree_release":2,"kind":"spatial","payload":{}}`},
		{"unknown kind", `{"privtree_release":1,"kind":"tabular","payload":{}}`},
		{"baseline kind", `{"privtree_release":1,"kind":"baseline","payload":{}}`},
		{"missing payload", `{"privtree_release":1,"kind":"spatial"}`},
		{"corrupt payload", `{"privtree_release":1,"kind":"spatial","payload":{"version":1,"fanout":0,"root":{}}}`},
		{"kind/payload mismatch", `{"privtree_release":1,"kind":"sequence","payload":{"version":1,"fanout":2,"root":{"lo":[0],"hi":[1],"count":1}}}`},
		// Forged provenance: the envelope's metadata is validated too.
		{"negative epsilon", `{"privtree_release":1,"kind":"spatial","epsilon":-3,"payload":{"version":1,"fanout":2,"root":{"lo":[0],"hi":[1],"count":1}}}`},
		{"non-finite epsilon", `{"privtree_release":1,"kind":"spatial","epsilon":1e999,"payload":{"version":1,"fanout":2,"root":{"lo":[0],"hi":[1],"count":1}}}`},
		{"unknown mechanism name", `{"privtree_release":1,"kind":"spatial","mechanism":"magic","payload":{"version":1,"fanout":2,"root":{"lo":[0],"hi":[1],"count":1}}}`},
		{"mechanism/kind mismatch", `{"privtree_release":1,"kind":"spatial","mechanism":"sequence","payload":{"version":1,"fanout":2,"root":{"lo":[0],"hi":[1],"count":1}}}`},
		{"params no mechanism accepts", `{"privtree_release":1,"kind":"spatial","mechanism":"spatial","params":{"fanout":1},"payload":{"version":1,"fanout":2,"root":{"lo":[0],"hi":[1],"count":1}}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Decode([]byte(c.blob)); err == nil {
				t.Fatalf("Decode accepted %s", c.blob)
			}
		})
	}
}

func TestBaselineReleaseHasNoWireFormat(t *testing.T) {
	data, err := NewSpatialData(UnitCube(2), makeClusteredPoints(1000))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewBaselineMechanism(BaselineUG, 1)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := m.Run(data, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(rel); err == nil || !strings.Contains(err.Error(), "no wire format") {
		t.Fatalf("baseline release marshaled, want no-wire-format error, got %v", err)
	}
}

func TestEnvelopeOmitsWorkers(t *testing.T) {
	// Workers is an execution knob, not a release parameter: it must never
	// reach the wire or the fingerprint.
	data, err := NewSpatialData(UnitCube(2), makeClusteredPoints(1000))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSpatialMechanism(SpatialOptions{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSpatialMechanism(SpatialOptions{Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	relA, err := a.Run(data, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	relB, err := b.Run(data, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if relA.Fingerprint() != relB.Fingerprint() {
		t.Fatalf("workers leaked into the fingerprint: %q vs %q", relA.Fingerprint(), relB.Fingerprint())
	}
	blobA, err := json.Marshal(relA)
	if err != nil {
		t.Fatal(err)
	}
	blobB, err := json.Marshal(relB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blobA, blobB) {
		t.Fatal("workers setting changed the wire bytes")
	}
	if bytes.Contains(blobA, []byte("workers")) {
		t.Fatal("workers field reached the wire")
	}
}

func TestReleaseNaNForInapplicableQueries(t *testing.T) {
	rels := buildTestReleases(t)
	if !math.IsNaN(rels[KindHybrid].RangeCount(UnitCube(2))) {
		t.Fatal("hybrid release answered a range count")
	}
	if !math.IsNaN(rels[KindHybrid].EstimateFrequency(Sequence{0})) {
		t.Fatal("hybrid release answered a frequency estimate")
	}
	if _, ok := rels[KindSpatial].Sequence(); ok {
		t.Fatal("spatial release claims a sequence payload")
	}
	if _, ok := rels[KindSequence].Hybrid(); ok {
		t.Fatal("sequence release claims a hybrid payload")
	}
}
