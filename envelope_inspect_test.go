package privtree

import (
	"os"
	"path/filepath"
	"testing"
)

func TestInspectEnvelope(t *testing.T) {
	data, err := NewSpatialData(UnitCube(2), sessionStorePoints(500))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSpatialMechanism(SpatialOptions{Seed: 21, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := m.Run(data, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := rel.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	info, err := InspectEnvelope(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != EnvelopeVersion || info.Kind != KindSpatial || info.Mechanism != "spatial" {
		t.Fatalf("inspect identity wrong: %+v", info)
	}
	if info.Epsilon != 0.75 || info.Seed != 21 {
		t.Fatalf("inspect provenance wrong: eps=%v seed=%d", info.Epsilon, info.Seed)
	}
	if info.Fingerprint != rel.Fingerprint() {
		t.Fatalf("inspect fingerprint %q != release fingerprint %q", info.Fingerprint, rel.Fingerprint())
	}
	if info.PayloadBytes <= 0 {
		t.Fatal("payload size not reported")
	}
}

// TestInspectEnvelopeGolden pins inspect to the checked-in wire
// artifacts: every golden doc (envelope and legacy v0) must identify
// without a payload decode.
func TestInspectEnvelopeGolden(t *testing.T) {
	cases := []struct {
		file    string
		version int
		kind    ReleaseKind
	}{
		{"spatial_envelope.json", 1, KindSpatial},
		{"sequence_envelope.json", 1, KindSequence},
		{"hybrid_envelope.json", 1, KindHybrid},
		{"spatial_v0.json", 0, KindSpatial},
		{"sequence_v0.json", 0, KindSequence},
		{"hybrid_v0.json", 0, KindHybrid},
	}
	for _, c := range cases {
		blob, err := os.ReadFile(filepath.Join("testdata", c.file))
		if err != nil {
			t.Fatal(err)
		}
		info, err := InspectEnvelope(blob)
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		if info.Version != c.version || info.Kind != c.kind {
			t.Fatalf("%s: got version=%d kind=%s, want %d/%s", c.file, info.Version, info.Kind, c.version, c.kind)
		}
	}
}

// TestInspectEnvelopeDoesNotDecodePayload: a corrupt payload must not
// stop inspection — that is the point of the tool.
func TestInspectEnvelopeHostile(t *testing.T) {
	info, err := InspectEnvelope([]byte(
		`{"privtree_release":1,"kind":"spatial","mechanism":"spatial","epsilon":0.5,` +
			`"params":{"seed":3},"payload":{"totally":"broken"}}`))
	if err != nil {
		t.Fatalf("inspect refused a valid envelope with an undecodable payload: %v", err)
	}
	if info.Kind != KindSpatial || info.Epsilon != 0.5 || info.Seed != 3 {
		t.Fatalf("inspect metadata wrong: %+v", info)
	}

	for _, bad := range []string{
		``,
		`{}`,
		`{"privtree_release":2,"kind":"spatial","payload":{}}`,
		`{"privtree_release":1,"kind":"nope","payload":{}}`,
		`{"privtree_release":1,"kind":"spatial"}`,
		`{"privtree_release":1,"kind":"spatial","epsilon":-1,"payload":{}}`,
		`{"privtree_release":1,"kind":"spatial","mechanism":"no-such","payload":{}}`,
		`{"privtree_release":1,"kind":"sequence","mechanism":"spatial","payload":{}}`,
	} {
		if _, err := InspectEnvelope([]byte(bad)); err == nil {
			t.Fatalf("hostile document accepted: %s", bad)
		}
	}
}
