package privtree

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file compatibility gate: the files under testdata/ are serialized
// artifacts checked in at the moment the versioned envelope was
// introduced. Future changes to the decoders must keep loading them — a
// released artifact archived by a user must never become unreadable.
//
// Regenerate (only when intentionally revving the wire format) with:
//
//	PRIVTREE_UPDATE_GOLDEN=1 go test -run TestGolden .

// goldenReleases builds the deterministic releases the golden files were
// generated from.
func goldenReleases(t testing.TB) map[string]*Release {
	t.Helper()
	out := make(map[string]*Release)

	data, err := NewSpatialData(UnitCube(2), makeClusteredPoints(300))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSpatialMechanism(SpatialOptions{Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out["spatial"], err = m.Run(data, 0.5); err != nil {
		t.Fatal(err)
	}

	seqData, err := NewSequenceData(6, makeClickstreams(500))
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewSequenceMechanism(SequenceOptions{MaxLength: 8, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out["sequence"], err = sm.Run(seqData, 1.0); err != nil {
		t.Fatal(err)
	}

	hData, err := NewHybridData(testHybridSchema(t), testHybridRecords(300))
	if err != nil {
		t.Fatal(err)
	}
	hm, err := NewHybridMechanism(11)
	if err != nil {
		t.Fatal(err)
	}
	if out["hybrid"], err = hm.Run(hData, 1.0); err != nil {
		t.Fatal(err)
	}
	return out
}

// payloadBytes marshals just the kind-specific payload document (the
// legacy v0 wire format).
func payloadBytes(t testing.TB, rel *Release) []byte {
	t.Helper()
	var payload any
	switch rel.Kind() {
	case KindSpatial:
		payload, _ = rel.Spatial()
	case KindSequence:
		payload, _ = rel.Sequence()
	case KindHybrid:
		payload, _ = rel.Hybrid()
	}
	blob, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestGoldenArtifactsUpToDate(t *testing.T) {
	update := os.Getenv("PRIVTREE_UPDATE_GOLDEN") == "1"
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, rel := range goldenReleases(t) {
		v0 := payloadBytes(t, rel)
		envelope, err := json.Marshal(rel)
		if err != nil {
			t.Fatal(err)
		}
		for suffix, blob := range map[string][]byte{"_v0.json": v0, "_envelope.json": envelope} {
			path := filepath.Join("testdata", name+suffix)
			if update {
				if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with PRIVTREE_UPDATE_GOLDEN=1): %v", err)
			}
			if !bytes.Equal(bytes.TrimSuffix(want, []byte("\n")), blob) {
				t.Errorf("%s: serialization drifted from the checked-in golden bytes", path)
			}
		}
	}
}

// TestGoldenV0DecodesViaEnvelopeEntryPoint is the compat contract of the
// API redesign: privtree.Decode must load the checked-in v0 documents
// bit-for-bit equal to the legacy per-type decoders.
func TestGoldenV0DecodesViaEnvelopeEntryPoint(t *testing.T) {
	cases := []struct {
		file string
		kind ReleaseKind
	}{
		{"spatial_v0.json", KindSpatial},
		{"sequence_v0.json", KindSequence},
		{"hybrid_v0.json", KindHybrid},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			blob, err := os.ReadFile(filepath.Join("testdata", c.file))
			if err != nil {
				t.Fatal(err)
			}
			rel, err := Decode(blob)
			if err != nil {
				t.Fatalf("Decode rejected golden v0 artifact: %v", err)
			}
			if rel.Kind() != c.kind {
				t.Fatalf("decoded kind %s, want %s", rel.Kind(), c.kind)
			}
			// Legacy decoder path.
			var legacy []byte
			switch c.kind {
			case KindSpatial:
				var tr SpatialTree
				if err := json.Unmarshal(blob, &tr); err != nil {
					t.Fatal(err)
				}
				legacy, err = json.Marshal(&tr)
			case KindSequence:
				var m SequenceModel
				if err := json.Unmarshal(blob, &m); err != nil {
					t.Fatal(err)
				}
				legacy, err = json.Marshal(&m)
			case KindHybrid:
				var h HybridTree
				if err := json.Unmarshal(blob, &h); err != nil {
					t.Fatal(err)
				}
				legacy, err = json.Marshal(&h)
			}
			if err != nil {
				t.Fatal(err)
			}
			// Bit-for-bit: the artifact Decode reconstructed serializes to
			// exactly the bytes the legacy decoder's reconstruction does.
			if got := payloadBytes(t, rel); !bytes.Equal(got, legacy) {
				t.Fatal("Decode and the legacy decoder reconstruct different artifacts")
			}
		})
	}
}

// TestGoldenEnvelopesDecode pins the envelope metadata of the checked-in
// envelope files.
func TestGoldenEnvelopesDecode(t *testing.T) {
	for name, want := range map[string]ReleaseKind{
		"spatial_envelope.json":  KindSpatial,
		"sequence_envelope.json": KindSequence,
		"hybrid_envelope.json":   KindHybrid,
	} {
		blob, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		rel, err := Decode(blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rel.Kind() != want || rel.Seed() != 11 || rel.Epsilon() == 0 || rel.Mechanism() == "" {
			t.Fatalf("%s: metadata wrong: kind=%s mech=%q eps=%v seed=%d",
				name, rel.Kind(), rel.Mechanism(), rel.Epsilon(), rel.Seed())
		}
	}
}
