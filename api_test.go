package privtree

import (
	"math"
	"testing"
)

// The public build entry points must reject invalid parameters with errors,
// never panics: privtreed feeds them straight from untrusted HTTP input.

func TestBuildSpatialRejectsInvalidParams(t *testing.T) {
	pts := makeClusteredPoints(100)
	dom := UnitCube(2)
	cases := []struct {
		name   string
		domain Rect
		points []Point
		eps    float64
		opts   SpatialOptions
	}{
		{"zero epsilon", dom, pts, 0, SpatialOptions{}},
		{"negative epsilon", dom, pts, -1, SpatialOptions{}},
		{"NaN epsilon", dom, pts, math.NaN(), SpatialOptions{}},
		{"infinite epsilon", dom, pts, math.Inf(1), SpatialOptions{}},
		{"fanout 1", dom, pts, 1, SpatialOptions{Fanout: 1}},
		{"negative fanout", dom, pts, 1, SpatialOptions{Fanout: -4}},
		{"fanout not a power of two", dom, pts, 1, SpatialOptions{Fanout: 3}},
		{"fanout above 2^d", dom, pts, 1, SpatialOptions{Fanout: 8}},
		{"zero-dim domain", Rect{}, nil, 1, SpatialOptions{}},
		{"inverted domain", Rect{Lo: Point{1, 1}, Hi: Point{0, 0}}, nil, 1, SpatialOptions{}},
		{"empty-interval domain", Rect{Lo: Point{0, 0.5}, Hi: Point{1, 0.5}}, nil, 1, SpatialOptions{}},
		{"NaN domain bound", Rect{Lo: Point{0, math.NaN()}, Hi: Point{1, 1}}, nil, 1, SpatialOptions{}},
		{"infinite domain bound", Rect{Lo: Point{0, 0}, Hi: Point{1, math.Inf(1)}}, nil, 1, SpatialOptions{}},
		{"mismatched domain bounds", Rect{Lo: Point{0, 0}, Hi: Point{1}}, nil, 1, SpatialOptions{}},
		{"budget fraction 1", dom, pts, 1, SpatialOptions{TreeBudgetFraction: 1}},
		{"budget fraction negative", dom, pts, 1, SpatialOptions{TreeBudgetFraction: -0.5}},
		{"negative max depth", dom, pts, 1, SpatialOptions{MaxDepth: -1}},
		{"negative affected leaves", dom, pts, 1, SpatialOptions{AffectedLeaves: -2}},
		{"negative workers", dom, pts, 1, SpatialOptions{Workers: -1}},
		{"point outside domain", dom, []Point{{2, 2}}, 1, SpatialOptions{}},
		{"point dimension mismatch", dom, []Point{{0.5}}, 1, SpatialOptions{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("BuildSpatial panicked: %v", r)
				}
			}()
			if _, err := BuildSpatial(c.domain, c.points, c.eps, c.opts); err == nil {
				t.Fatalf("BuildSpatial accepted invalid parameters")
			}
		})
	}
}

func TestBuildSequenceModelRejectsInvalidParams(t *testing.T) {
	seqs := makeClickstreams(100)
	cases := []struct {
		name     string
		alphabet int
		seqs     []Sequence
		eps      float64
		opts     SequenceOptions
	}{
		{"zero alphabet", 0, seqs, 1, SequenceOptions{}},
		{"negative alphabet", -3, seqs, 1, SequenceOptions{}},
		{"zero epsilon", 6, seqs, 0, SequenceOptions{}},
		{"negative epsilon", 6, seqs, -2, SequenceOptions{}},
		{"NaN epsilon", 6, seqs, math.NaN(), SequenceOptions{}},
		{"infinite epsilon", 6, seqs, math.Inf(1), SequenceOptions{}},
		{"negative max length", 6, seqs, 1, SequenceOptions{MaxLength: -1}},
		{"symbol out of range", 6, []Sequence{{0, 6}}, 1, SequenceOptions{MaxLength: 10}},
		{"negative symbol", 6, []Sequence{{-1}}, 1, SequenceOptions{MaxLength: 10}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("BuildSequenceModel panicked: %v", r)
				}
			}()
			if _, err := BuildSequenceModel(c.alphabet, c.seqs, c.eps, c.opts); err == nil {
				t.Fatalf("BuildSequenceModel accepted invalid parameters")
			}
		})
	}
}

// Valid edge parameters must still succeed after the hardening.
func TestBuildSpatialAcceptsValidEdgeParams(t *testing.T) {
	pts := makeClusteredPoints(500)
	if _, err := BuildSpatial(UnitCube(2), pts, 0.1, SpatialOptions{Fanout: 2, TreeBudgetFraction: 0.9, MaxDepth: 5}); err != nil {
		t.Fatalf("valid parameters rejected: %v", err)
	}
	if _, err := BuildSpatial(UnitCube(2), nil, 1.0, SpatialOptions{}); err != nil {
		t.Fatalf("empty dataset rejected: %v", err)
	}
}
