package privtree

import (
	"context"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"privtree/internal/dp"
	"privtree/internal/obs"
	"privtree/internal/store"
	"privtree/internal/testhooks"
)

// Ledger is a concurrent-safe privacy-budget accountant enforcing
// sequential composition; see Session for the release workflow built on
// it. NewLedger constructs one directly for callers that only need the
// accounting.
type Ledger = dp.Ledger

// BudgetError is the structured rejection a Ledger returns when a spend
// would exceed its total budget.
type BudgetError = dp.BudgetError

// BudgetDebit is one recorded spend (or refund, with negative Epsilon and
// Kind "refund") in a ledger's audit trail.
type BudgetDebit = dp.Debit

// NewLedger returns a budget ledger with the given positive, finite total.
func NewLedger(total float64) (*Ledger, error) { return dp.NewLedger(total) }

// Session is a ledger-backed release workflow over private data: the
// paper's sequential-composition argument (Lemma 2.1) as an object. Every
// Session.Release debits the ledger before the mechanism runs, so the sum
// of debits bounds the privacy loss of everything the session ever
// produced; a request whose (mechanism, params, ε, data) matches an
// earlier release is served from cache without a new debit (re-publishing
// released bytes is post-processing); and a mechanism failure refunds its
// debit, which is sound because nothing was released.
//
// A Session is safe for concurrent use: identical concurrent requests
// cannot double-spend — one build runs, the rest wait and take the cache
// hit.
//
// # Durability
//
// An in-memory ledger forgets every debit when the process dies, so a
// restart would let the whole budget be spent again — an ε violation.
// OpenSession (or WithStore) attaches a crash-safe store that write-ahead
// logs every ledger event and persists every release envelope, with the
// invariant that a debit is durable (fsynced) BEFORE the mechanism runs
// and a refund is durable BEFORE the build error returns. On reopen the
// session recovers its spent ε, full audit trail, and previously
// committed releases; a request matching a recovered release is served
// from the persisted envelope, bit-identical, with no new debit.
type Session struct {
	ledger *dp.Ledger
	store  *store.Store // nil for purely in-memory sessions

	// mu guards the cache maps; builds run OUTSIDE it so concurrent
	// releases with different parameters proceed in parallel. pending marks
	// fingerprints whose build is in flight (the channel closes when the
	// build finishes).
	mu      sync.Mutex
	cache   map[string]*Release
	pending map[string]chan struct{}

	// restored maps release fingerprints recovered from the store to their
	// decoded releases; entries move into cache as they are requested.
	// restoredList is the immutable recovery inventory, for Restored.
	restored     map[string]*Release
	restoredList []RestoredRelease

	// seals is the in-memory stream-epoch seal log, used only when no
	// store is attached; store-backed sessions read seals from the WAL.
	seals []SealRecord
}

// RestoredRelease is one release recovered from a session's store: the
// decoded artifact plus its original commit time. Release.Envelope
// returns the exact persisted bytes.
type RestoredRelease struct {
	Release *Release
	At      time.Time
}

// NewSession returns a session whose ledger holds the given total privacy
// budget. The budget must be positive and finite. The session is
// in-memory; attach persistence with WithStore, or use OpenSession.
func NewSession(budget float64) (*Session, error) {
	ledger, err := dp.NewLedger(budget)
	if err != nil {
		return nil, err
	}
	return &Session{
		ledger:  ledger,
		cache:   make(map[string]*Release),
		pending: make(map[string]chan struct{}),
	}, nil
}

// OpenSession opens (creating if needed) the store directory and returns
// a session with that persistence attached and any prior state — spent ε,
// audit trail, committed releases — recovered. The directory belongs to
// ONE logical dataset and budget: reusing it for different data would
// serve another dataset's releases from cache. Close the session to
// release the store.
func OpenSession(dir string, budget float64) (*Session, error) {
	st, err := OpenStore(dir)
	if err != nil {
		return nil, err
	}
	s, err := NewSession(budget)
	if err != nil {
		st.Close()
		return nil, err
	}
	if err := s.WithStore(st); err != nil {
		st.Close()
		return nil, err
	}
	return s, nil
}

// WithStore attaches a crash-safe store to a fresh session and recovers
// the store's state: the ledger's spent ε and audit trail are rebuilt
// from the event log, and every committed release is decoded from its
// persisted envelope (available via Restored, and served as cache hits).
// The session must be pristine — no spends, no releases — and can hold
// only one store.
func (s *Session) WithStore(st *Store) error {
	if st == nil || st.inner == nil {
		return fmt.Errorf("privtree: nil store")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		return fmt.Errorf("privtree: session already has a store")
	}
	if len(s.cache) > 0 || len(s.pending) > 0 || len(s.ledger.History()) > 0 {
		return fmt.Errorf("privtree: WithStore requires a fresh session (no spends or releases yet)")
	}

	// Decode every committed release first, so a corrupt artifact fails
	// the attach before any session state changes.
	commits := st.inner.Commits()
	restored := make(map[string]*Release, len(commits))
	list := make([]RestoredRelease, 0, len(commits))
	for _, c := range commits {
		blob, err := st.inner.LoadArtifact(c.SHA)
		if err != nil {
			return fmt.Errorf("privtree: recovering release %q: %w", c.Key, err)
		}
		rel, err := Decode(blob)
		if err != nil {
			return fmt.Errorf("privtree: recovering release %q: %w", c.Key, err)
		}
		// Serve the exact persisted bytes, not a re-marshal.
		rel.wire.Store(&wireEnvelope{blob: blob})
		restored[c.Key] = rel
		list = append(list, RestoredRelease{Release: rel, At: c.At})
	}

	s.ledger.Restore(ledgerHistory(st.inner.Events()))
	s.store = st.inner
	s.restored = restored
	s.restoredList = list
	return nil
}

// ledgerHistory converts recovered store events into the ledger's audit
// trail form, preserving the WAL's arithmetic exactly.
func ledgerHistory(events []store.Event) []dp.Debit {
	hist := make([]dp.Debit, len(events))
	for i, e := range events {
		d := dp.Debit{Note: "release " + e.Key, At: e.At, TraceID: e.Trace}
		switch e.Kind {
		case store.EventRefund:
			d.Kind, d.Epsilon = dp.DebitKindRefund, -e.Epsilon
		default:
			d.Kind, d.Epsilon = dp.DebitKindSpend, e.Epsilon
		}
		hist[i] = d
	}
	return hist
}

// ApplyReplicated applies a batch of WAL frames shipped from a primary's
// Store.WALFrames to this read replica's session: the frames are
// strictly validated and appended to the local WAL verbatim (preserving
// the primary's sequence numbers, so the replica's history stays a
// bit-identical prefix of the primary's), the ledger's spent ε is rebuilt
// by replaying the full replicated history — replicated debits bypass the
// budget check, because the primary already enforced it and replay must
// reproduce its arithmetic exactly — and each newly shipped commit is
// decoded from its (previously fetched, hash-verified) artifact into a
// recovered release served bit-identically from the persisted bytes.
//
// Artifacts referenced by commit records in the batch must be present in
// the store (Store.PutArtifact) before the batch is applied; a commit
// naming a missing artifact rejects the whole batch with nothing applied.
// Returns the newly recovered releases in commit order.
func (s *Session) ApplyReplicated(frames []byte) ([]RestoredRelease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return nil, fmt.Errorf("privtree: ApplyReplicated requires a store-backed session")
	}
	applied, err := s.store.AppendReplicated(frames)
	if err != nil {
		return nil, err
	}
	if len(applied) == 0 {
		return nil, nil
	}
	var out []RestoredRelease
	for _, e := range applied {
		if e.Kind != store.EventCommit {
			continue
		}
		if _, dup := s.restored[e.Key]; dup {
			continue
		}
		blob, lerr := s.store.LoadArtifact(e.SHA)
		if lerr != nil {
			return out, fmt.Errorf("privtree: replicated release %q: %w", e.Key, lerr)
		}
		rel, derr := Decode(blob)
		if derr != nil {
			return out, fmt.Errorf("privtree: replicated release %q: %w", e.Key, derr)
		}
		// Serve the exact replicated bytes, not a re-marshal.
		rel.wire.Store(&wireEnvelope{blob: blob})
		s.restored[e.Key] = rel
		rr := RestoredRelease{Release: rel, At: e.At}
		s.restoredList = append(s.restoredList, rr)
		out = append(out, rr)
	}
	s.ledger.Restore(ledgerHistory(s.store.Events()))
	return out, nil
}

// Restored returns the releases recovered from the session's store at
// attach time, in their original commit order. Empty for in-memory
// sessions.
func (s *Session) Restored() []RestoredRelease {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RestoredRelease, len(s.restoredList))
	copy(out, s.restoredList)
	return out
}

// Close releases the session's store (if any). Every acknowledged debit,
// refund, and release is already durable, so Close never loses state;
// a session without a store has nothing to close.
func (s *Session) Close() error {
	s.mu.Lock()
	st := s.store
	s.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.Close()
}

// Ledger exposes the session's budget accountant (totals, remaining
// budget, and the audit trail).
func (s *Session) Ledger() *Ledger { return s.ledger }

// Total returns the session's configured total budget.
func (s *Session) Total() float64 { return s.ledger.Total() }

// Spent returns the budget consumed so far.
func (s *Session) Spent() float64 { return s.ledger.Spent() }

// Remaining returns the unspent budget (never negative).
func (s *Session) Remaining() float64 { return s.ledger.Remaining() }

// History returns the session's audit trail: one entry per debit, in spend
// order, with refunds recorded as explicit "refund" entries carrying
// negative ε. For sessions recovered from a store the trail includes
// every event of prior processes.
func (s *Session) History() []BudgetDebit { return s.ledger.History() }

// AuditEntry is one explainable row of a session's ε audit plane: a
// ledger debit, a refund, or a release commit, with the WAL sequence
// number that made it durable and the request trace that caused it.
// Summing Epsilon over the entries (with the ledger's clamp-at-zero
// refund rule) reproduces the session's spent ε exactly.
type AuditEntry struct {
	// Seq is the WAL sequence number (0 for in-memory sessions, which
	// have no WAL).
	Seq uint64
	// Kind is "debit", "refund", "commit", "epoch" (a writer-epoch grant
	// from a replication promotion; carries no ε), or "seal" (a stream
	// epoch sealed into the released window; carries no ε — the epoch's
	// spend is its own debit entry).
	Kind string
	// Epsilon is the budget moved: positive for debits, negative for
	// refunds, zero for commits.
	Epsilon float64
	// Key is the release fingerprint the entry belongs to.
	Key string
	// TraceID names the request trace that produced the entry ("" for
	// untraced work).
	TraceID string
	// SHA is the hex content address of the committed envelope (commits
	// only).
	SHA string
	// At is the wall-clock time of the event.
	At time.Time
}

// Audit returns the session's full audit plane in WAL order: every
// debit, refund, and release commit, each with its durable sequence
// number and originating trace ID. For store-backed sessions the rows
// come from the recovered-plus-appended WAL state, so they survive
// restarts; in-memory sessions fall back to the ledger's history with
// Seq 0.
func (s *Session) Audit() []AuditEntry {
	s.mu.Lock()
	st := s.store
	s.mu.Unlock()
	if st == nil {
		hist := s.ledger.History()
		out := make([]AuditEntry, len(hist))
		for i, d := range hist {
			out[i] = AuditEntry{
				Kind:    d.Kind,
				Epsilon: d.Epsilon,
				Key:     strings.TrimPrefix(d.Note, "release "),
				TraceID: d.TraceID,
				At:      d.At,
			}
		}
		return out
	}
	events, commits, epochs, seals := st.Events(), st.Commits(), st.Epochs(), st.Seals()
	out := make([]AuditEntry, 0, len(events)+len(commits)+len(epochs)+len(seals))
	for _, e := range events {
		eps := e.Epsilon
		if e.Kind == store.EventRefund {
			eps = -eps
		}
		out = append(out, AuditEntry{
			Seq: e.Seq, Kind: e.Kind.String(), Epsilon: eps,
			Key: e.Key, TraceID: e.Trace, At: e.At,
		})
	}
	for _, c := range commits {
		out = append(out, AuditEntry{
			Seq: c.Seq, Kind: c.Kind.String(), Key: c.Key,
			TraceID: c.Trace, SHA: hex.EncodeToString(c.SHA[:]), At: c.At,
		})
	}
	for _, e := range epochs {
		out = append(out, AuditEntry{
			Seq: e.Seq, Kind: e.Kind.String(), Key: e.Key,
			TraceID: e.Trace, At: e.At,
		})
	}
	for _, e := range seals {
		out = append(out, AuditEntry{
			Seq: e.Seq, Kind: e.Kind.String(), Key: e.Key,
			TraceID: e.Trace, At: e.At,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// SealRecord is one stream-epoch seal in a session's history: the binding
// of an epoch number to the release fingerprint that published it and the
// last ingest batch it covers. Seals carry no ε of their own — each
// epoch's spend is the ordinary debit of its release — but they are the
// durable record from which a restarted or replicated node re-derives the
// served sliding window.
type SealRecord struct {
	// Seq is the WAL sequence number (0 for in-memory sessions).
	Seq uint64
	// Epoch is the 1-based stream epoch the seal freezes.
	Epoch uint64
	// BatchSeq is the highest ingest batch sequence number included in
	// the epoch (0 when the producer does not number batches).
	BatchSeq uint64
	// Fingerprint is the release fingerprint of the epoch's release.
	Fingerprint string
	// At is the wall-clock seal time.
	At time.Time
}

// AppendSeal records that stream epoch number epoch was sealed and
// released as the release with the given fingerprint, covering ingest
// batches up to batchSeq. Epochs must be appended in order, strictly
// increasing from 1. With a store attached the seal is durable (fsynced
// into the WAL) before AppendSeal returns; the caller must append the
// seal only AFTER the epoch's release commit is durable, so that a WAL
// prefix ending before the seal record never names a release it does not
// contain.
func (s *Session) AppendSeal(epoch, batchSeq uint64, fingerprint, trace string) error {
	s.mu.Lock()
	st := s.store
	s.mu.Unlock()
	if st != nil {
		return st.AppendSeal(epoch, batchSeq, fingerprint, trace)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var last uint64
	if n := len(s.seals); n > 0 {
		last = s.seals[n-1].Epoch
	}
	if epoch == 0 || epoch <= last {
		return fmt.Errorf("privtree: seal epoch %d not after last sealed epoch %d", epoch, last)
	}
	s.seals = append(s.seals, SealRecord{
		Epoch: epoch, BatchSeq: batchSeq, Fingerprint: fingerprint, At: time.Now(),
	})
	return nil
}

// Seals returns the session's stream-epoch seal log in epoch order. For
// store-backed sessions the records come from the recovered-plus-appended
// WAL state — including seals applied through ApplyReplicated — so the
// log survives restarts and is identical on a caught-up replica.
func (s *Session) Seals() []SealRecord {
	s.mu.Lock()
	st := s.store
	s.mu.Unlock()
	if st == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		out := make([]SealRecord, len(s.seals))
		copy(out, s.seals)
		return out
	}
	events := st.Seals()
	out := make([]SealRecord, len(events))
	for i, e := range events {
		out[i] = SealRecord{
			Seq: e.Seq, Epoch: e.Epoch, BatchSeq: e.BatchSeq,
			Fingerprint: e.Key, At: e.At,
		}
	}
	return out
}

// Release runs mechanism m on data under budget eps against the session
// ledger. The ledger is debited before the build; over-budget requests are
// rejected with a *BudgetError and the mechanism never runs. The boolean
// reports a cache hit: a request identical to an earlier release (same
// mechanism, parameters, ε, and data) returns the cached Release with no
// new debit — including releases recovered from the session's store,
// which are served from their persisted envelopes. On build failure the
// debit is refunded.
//
// With a store attached, the debit is durable before the mechanism runs
// and the refund is durable before the error returns; see Session's
// Durability section for why that ordering is the privacy guarantee.
func (s *Session) Release(m *Mechanism, data *Data, eps float64) (*Release, bool, error) {
	return s.ReleaseContext(context.Background(), m, data, eps)
}

// ReleaseContext is Release with cooperative cancellation: when ctx is
// cancelled or its deadline passes, the request is abandoned and the
// returned error wraps ctx.Err(). Cancellation preserves every budget
// invariant:
//
//   - before the debit, cancellation is free — the ledger never saw the
//     request;
//   - after the debit, the build is abandoned and the debit refunded;
//     with a store attached the refund is durable BEFORE the error
//     returns (the same ordering as a failed build), so a crash right
//     after a cancelled request can only over-count spent ε, never
//     under-count it. Nothing the cancelled build computed is released,
//     cached, or persisted, which is what makes the refund sound.
//
// A caller that times out and retries the identical request therefore
// cannot be double-charged: either the first request was cancelled and
// refunded (the retry pays the only debit), or it completed server-side
// and the retry is a cache hit with no new debit.
func (s *Session) ReleaseContext(ctx context.Context, m *Mechanism, data *Data, eps float64) (*Release, bool, error) {
	if m == nil {
		return nil, false, fmt.Errorf("privtree: nil mechanism")
	}
	// Static failures (wrong data kind, bad ε) are rejected before any
	// ledger traffic, so the audit trail records only genuine spends.
	if err := m.precheck(data, eps); err != nil {
		return nil, false, err
	}
	fp := releaseFingerprint(m.spec.name, eps, m.params)
	key := fmt.Sprintf("data=%d %s", data.id, fp)
	note := "release " + fp
	// The request trace (if any) rides ctx from the HTTP handler; every
	// obs call below is a no-op without one, so direct library use pays
	// nothing. The trace ID is recorded on each ledger debit and persisted
	// in each WAL record, which is what makes the audit trail explain
	// every unit of spent ε end to end.
	tr := obs.FromContext(ctx)
	var done chan struct{}
	for {
		// A request that is already dead must not debit the ledger: the
		// caller has gone away, so nothing would ever be released.
		if err := ctx.Err(); err != nil {
			return nil, false, fmt.Errorf("privtree: release %s abandoned before debit: %w", fp, err)
		}
		s.mu.Lock()
		if rel, ok := s.cache[key]; ok {
			s.mu.Unlock()
			return rel, true, nil
		}
		if rel, ok := s.restored[fp]; ok {
			// A prior process already paid for this release: its debit was
			// recovered with the ledger and its envelope persisted, so
			// serving it is post-processing, not a new spend.
			delete(s.restored, fp)
			s.cache[key] = rel
			s.mu.Unlock()
			return rel, true, nil
		}
		if ch, ok := s.pending[key]; ok {
			// An identical build is in flight: wait for it and re-check.
			// (If it fails, the loop claims the key and tries afresh.)
			s.mu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				// Waiting debited nothing; walking away is free.
				return nil, false, fmt.Errorf("privtree: release %s abandoned while waiting for an identical build: %w", fp, ctx.Err())
			}
		}
		// Claim the key: debit inside the lock so the exhaustion check and
		// the claim are one atomic step.
		debitSpan := tr.Begin("debit")
		if err := s.ledger.SpendTraced(eps, note, tr.ID()); err != nil {
			s.mu.Unlock()
			return nil, false, err
		}
		debitSpan.End()
		done = make(chan struct{})
		s.pending[key] = done
		s.mu.Unlock()
		break
	}

	if s.store != nil {
		// THE durability invariant: the debit reaches stable storage before
		// the mechanism is allowed to run, so no noise can ever be released
		// whose debit a crash forgets. The fsync runs OUTSIDE s.mu — like
		// the build itself — so concurrent cache hits and unrelated
		// releases never stall behind a disk sync; the pending claim above
		// already guarantees only one debit per fingerprint.
		walSpan := tr.Begin("wal_debit")
		err := s.store.AppendDebitTraced(eps, fp, tr.ID())
		walSpan.End()
		if err != nil {
			// Nothing ran and the record did not land (or its durability is
			// unknown, in which case recovery can only over-count): the
			// in-memory refund is sound and the request fails.
			s.ledger.RefundTraced(eps, note, tr.ID())
			s.mu.Lock()
			delete(s.pending, key)
			s.mu.Unlock()
			close(done)
			return nil, false, fmt.Errorf("privtree: persisting debit: %w", err)
		}
	}

	buildSpan := tr.Begin("build")
	rel, err, cancelled := s.runBuild(ctx, m, data, eps, fp)
	buildSpan.End()
	if cancelled {
		// Cancelled mid-build: the debit has landed (durably, with a
		// store), so it must be refunded — durably BEFORE the error
		// returns, exactly like a failed build. The abandoned build's
		// result, if it ever materializes, is discarded unseen: nothing
		// is released, so the refund is sound.
		refunded := true
		if s.store != nil {
			if rerr := s.store.AppendRefundTraced(eps, fp, tr.ID()); rerr != nil {
				refunded = false
				err = fmt.Errorf("%w (and the refund could not be persisted, budget remains spent: %v)", err, rerr)
			}
		}
		if refunded {
			s.ledger.RefundTraced(eps, note, tr.ID())
		}
		s.mu.Lock()
		delete(s.pending, key)
		s.mu.Unlock()
		close(done)
		return nil, false, err
	}
	var persistErr error
	if err != nil {
		// Refund before waking waiters, so a retrying waiter sees the
		// credited ledger. Sound: the failed mechanism released nothing.
		// With a store, the refund must be durable BEFORE the error
		// returns; if it cannot be, the budget stays spent in memory too —
		// over-counting is the safe direction.
		refund := true
		if s.store != nil {
			if rerr := s.store.AppendRefundTraced(eps, fp, tr.ID()); rerr != nil {
				refund = false
				err = fmt.Errorf("%w (and the refund could not be persisted, budget remains spent: %v)", err, rerr)
			}
		}
		if refund {
			s.ledger.RefundTraced(eps, note, tr.ID())
		}
	} else if s.store != nil {
		envSpan := tr.Begin("envelope")
		blob, eerr := rel.Envelope()
		envSpan.End()
		if eerr == nil {
			commitSpan := tr.Begin("wal_commit")
			cerr := s.store.CommitReleaseTraced(fp, blob, tr.ID())
			commitSpan.End()
			if cerr != nil {
				// The debit is durable and the release was built; failing to
				// persist the envelope only means a future restart rebuilds
				// (and re-debits) it. Surface the degraded durability but
				// hand the caller the release it paid for.
				persistErr = fmt.Errorf("privtree: release built and budget spent, but envelope not persisted (a restart would re-debit): %w", cerr)
			}
		}
		// Baseline releases have no wire format: their debit is durable,
		// the artifact itself is memory-only by design.
	}
	s.mu.Lock()
	delete(s.pending, key)
	if err == nil {
		s.cache[key] = rel
	}
	s.mu.Unlock()
	close(done)
	if err != nil {
		return nil, false, err
	}
	if persistErr != nil {
		return rel, false, persistErr
	}
	return rel, false, nil
}

// buildResult carries a completed (or abandoned) build's outcome.
type buildResult struct {
	rel *Release
	err error
}

// runBuild runs the mechanism, abandoning it when ctx is cancelled first.
// The boolean reports abandonment: when true, the build may still be
// running in a goroutine, but its eventual result is delivered into a
// buffered channel nobody reads and is garbage — never cached, committed,
// or returned — so the caller's refund cannot race a release.
//
// Uncancellable contexts (Background) run the build inline: the common
// path pays no goroutine or channel overhead.
func (s *Session) runBuild(ctx context.Context, m *Mechanism, data *Data, eps float64, fp string) (*Release, error, bool) {
	run := func() (*Release, error) {
		if h := testhooks.BuildStart.Load(); h != nil {
			(*h)(fp)
		}
		return m.Run(data, eps)
	}
	if ctx.Done() == nil {
		rel, err := run()
		return rel, err, false
	}
	ch := make(chan buildResult, 1)
	go func() {
		rel, err := run()
		ch <- buildResult{rel, err}
	}()
	select {
	case res := <-ch:
		return res.rel, res.err, false
	case <-ctx.Done():
		return nil, fmt.Errorf("privtree: release %s cancelled mid-build (debit refunded): %w", fp, ctx.Err()), true
	}
}

// Releases returns every release the session has purchased so far, in
// unspecified order. Recovered releases appear once requested (or via
// Restored).
func (s *Session) Releases() []*Release {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Release, 0, len(s.cache))
	for _, r := range s.cache {
		out = append(out, r)
	}
	return out
}
