package privtree

import (
	"fmt"
	"sync"

	"privtree/internal/dp"
)

// Ledger is a concurrent-safe privacy-budget accountant enforcing
// sequential composition; see Session for the release workflow built on
// it. NewLedger constructs one directly for callers that only need the
// accounting.
type Ledger = dp.Ledger

// BudgetError is the structured rejection a Ledger returns when a spend
// would exceed its total budget.
type BudgetError = dp.BudgetError

// BudgetDebit is one recorded spend (or refund, with negative Epsilon) in
// a ledger's audit trail.
type BudgetDebit = dp.Debit

// NewLedger returns a budget ledger with the given positive, finite total.
func NewLedger(total float64) (*Ledger, error) { return dp.NewLedger(total) }

// Session is a ledger-backed release workflow over private data: the
// paper's sequential-composition argument (Lemma 2.1) as an object. Every
// Session.Release debits the ledger before the mechanism runs, so the sum
// of debits bounds the privacy loss of everything the session ever
// produced; a request whose (mechanism, params, ε, data) matches an
// earlier release is served from cache without a new debit (re-publishing
// released bytes is post-processing); and a mechanism failure refunds its
// debit, which is sound because nothing was released.
//
// A Session is safe for concurrent use: identical concurrent requests
// cannot double-spend — one build runs, the rest wait and take the cache
// hit.
type Session struct {
	ledger *dp.Ledger

	// mu guards the cache maps; builds run OUTSIDE it so concurrent
	// releases with different parameters proceed in parallel. pending marks
	// fingerprints whose build is in flight (the channel closes when the
	// build finishes).
	mu      sync.Mutex
	cache   map[string]*Release
	pending map[string]chan struct{}
}

// NewSession returns a session whose ledger holds the given total privacy
// budget. The budget must be positive and finite.
func NewSession(budget float64) (*Session, error) {
	ledger, err := dp.NewLedger(budget)
	if err != nil {
		return nil, err
	}
	return &Session{
		ledger:  ledger,
		cache:   make(map[string]*Release),
		pending: make(map[string]chan struct{}),
	}, nil
}

// Ledger exposes the session's budget accountant (totals, remaining
// budget, and the audit trail).
func (s *Session) Ledger() *Ledger { return s.ledger }

// Total returns the session's configured total budget.
func (s *Session) Total() float64 { return s.ledger.Total() }

// Spent returns the budget consumed so far.
func (s *Session) Spent() float64 { return s.ledger.Spent() }

// Remaining returns the unspent budget (never negative).
func (s *Session) Remaining() float64 { return s.ledger.Remaining() }

// History returns the session's audit trail: one entry per debit, in spend
// order, with refunds recorded as negative debits.
func (s *Session) History() []BudgetDebit { return s.ledger.History() }

// Release runs mechanism m on data under budget eps against the session
// ledger. The ledger is debited before the build; over-budget requests are
// rejected with a *BudgetError and the mechanism never runs. The boolean
// reports a cache hit: a request identical to an earlier release (same
// mechanism, parameters, ε, and data) returns the cached Release with no
// new debit. On build failure the debit is refunded.
func (s *Session) Release(m *Mechanism, data *Data, eps float64) (*Release, bool, error) {
	if m == nil {
		return nil, false, fmt.Errorf("privtree: nil mechanism")
	}
	// Static failures (wrong data kind, bad ε) are rejected before any
	// ledger traffic, so the audit trail records only genuine spends.
	if err := m.precheck(data, eps); err != nil {
		return nil, false, err
	}
	key := fmt.Sprintf("data=%d %s", data.id, releaseFingerprint(m.spec.name, eps, m.params))
	note := "release " + key
	var done chan struct{}
	for {
		s.mu.Lock()
		if rel, ok := s.cache[key]; ok {
			s.mu.Unlock()
			return rel, true, nil
		}
		if ch, ok := s.pending[key]; ok {
			// An identical build is in flight: wait for it and re-check.
			// (If it fails, the loop claims the key and tries afresh.)
			s.mu.Unlock()
			<-ch
			continue
		}
		// Claim the key: debit inside the lock so the exhaustion check and
		// the claim are one atomic step.
		if err := s.ledger.Spend(eps, note); err != nil {
			s.mu.Unlock()
			return nil, false, err
		}
		done = make(chan struct{})
		s.pending[key] = done
		s.mu.Unlock()
		break
	}

	rel, err := m.Run(data, eps)
	if err != nil {
		// Refund before waking waiters, so a retrying waiter sees the
		// credited ledger. Sound: the failed mechanism released nothing.
		s.ledger.Refund(eps, note)
	}
	s.mu.Lock()
	delete(s.pending, key)
	if err == nil {
		s.cache[key] = rel
	}
	s.mu.Unlock()
	close(done)
	if err != nil {
		return nil, false, err
	}
	return rel, false, nil
}

// Releases returns every release the session has purchased so far, in
// unspecified order.
func (s *Session) Releases() []*Release {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Release, 0, len(s.cache))
	for _, r := range s.cache {
		out = append(out, r)
	}
	return out
}
