package privtree_test

import (
	"fmt"
	"math/rand/v2"

	"privtree"
)

// ExampleBuildSpatial demonstrates the core pipeline: a private quadtree
// over clustered points answering a range-count query.
func ExampleBuildSpatial() {
	rng := rand.New(rand.NewPCG(1, 1))
	points := make([]privtree.Point, 50000)
	for i := range points {
		// A tight cluster at (0.25, 0.25).
		x := 0.25 + 0.02*rng.NormFloat64()
		y := 0.25 + 0.02*rng.NormFloat64()
		points[i] = privtree.Point{clamp(x), clamp(y)}
	}

	tree, err := privtree.BuildSpatial(privtree.UnitCube(2), points, 1.0, privtree.SpatialOptions{Seed: 7})
	if err != nil {
		panic(err)
	}
	q := privtree.NewRect(privtree.Point{0.2, 0.2}, privtree.Point{0.3, 0.3})
	got := tree.RangeCount(q)
	// ≈ 95% of the Gaussian mass lies within ±2σ ≈ the query box.
	fmt.Println(got > 40000 && got < 50500)
	// Output: true
}

// ExampleBuildSequenceModel demonstrates the Section 4 extension: a
// private Markov model mining the dominant pattern from sequence data.
func ExampleBuildSequenceModel() {
	// Half the users follow 0 → 1 → 2, half visit only 0, so the symbol
	// 0 is the strictly most frequent pattern.
	seqs := make([]privtree.Sequence, 20000)
	for i := range seqs {
		if i%2 == 0 {
			seqs[i] = privtree.Sequence{0, 1, 2}
		} else {
			seqs[i] = privtree.Sequence{0}
		}
	}
	model, err := privtree.BuildSequenceModel(3, seqs, 2.0, privtree.SequenceOptions{MaxLength: 5, Seed: 3})
	if err != nil {
		panic(err)
	}
	top := model.TopK(1, 2)
	fmt.Println(top[0].Symbols)
	// Output: [0]
}

// ExampleRequiredNoiseScale shows Corollary 1's constant noise scale: the
// quadtree (β=4) needs λ = 7/3 per unit ε, independent of tree height.
func ExampleRequiredNoiseScale() {
	fmt.Printf("%.4f\n", privtree.RequiredNoiseScale(4, 1.0))
	// Output: 2.3333
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return 0.999999
	}
	return x
}
