package privtree

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"privtree/internal/dp"
)

// sessionStorePoints is a small deterministic dataset for the
// persistence tests (big enough for real trees, small enough for many
// child processes).
func sessionStorePoints(n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		x := float64(i%97) / 97
		y := float64((i*31)%89) / 89
		pts[i] = Point{x, y}
	}
	return pts
}

func TestOpenSessionRecoversLedgerAndReleases(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "session-store")
	data, err := NewSpatialData(UnitCube(2), sessionStorePoints(2000))
	if err != nil {
		t.Fatal(err)
	}

	s1, err := OpenSession(dir, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewSpatialMechanism(SpatialOptions{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rel1, cached, err := s1.Release(m1, data, 0.5)
	if err != nil || cached {
		t.Fatalf("first release: cached=%v err=%v", cached, err)
	}
	env1, err := rel1.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	// A failed build: fanout 8 is unrealizable in 2-D, which fails at
	// build time (after the debit) and must leave a durable refund.
	mBad, err := NewSpatialMechanism(SpatialOptions{Seed: 7, Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.Release(mBad, data, 0.25); err == nil {
		t.Fatal("unrealizable fanout built")
	}
	spent1 := s1.Spent()
	if spent1 != 0.5 {
		t.Fatalf("spent after release+refund = %v, want 0.5", spent1)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// A new process: same directory, same data.
	s2, err := OpenSession(dir, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Spent(); got != spent1 {
		t.Fatalf("recovered spent = %v, want %v", got, spent1)
	}
	hist := s2.History()
	if len(hist) != 3 {
		t.Fatalf("recovered audit trail has %d entries, want 3 (debit, debit, refund): %+v", len(hist), hist)
	}
	if hist[2].Kind != dp.DebitKindRefund || hist[2].Epsilon != -0.25 {
		t.Fatalf("refund entry not recovered explicitly: %+v", hist[2])
	}
	restored := s2.Restored()
	if len(restored) != 1 {
		t.Fatalf("%d restored releases, want 1", len(restored))
	}
	env2, err := restored[0].Release.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env1, env2) {
		t.Fatal("recovered envelope is not bit-identical to the released one")
	}
	// And it decodes through the public entry point.
	decoded, err := Decode(env2)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Epsilon() != 0.5 || decoded.Mechanism() != "spatial" {
		t.Fatalf("decoded provenance wrong: eps=%v mech=%q", decoded.Epsilon(), decoded.Mechanism())
	}

	// Requesting the same release again is a cache hit from the store: no
	// new debit, and the SAME tree answers queries.
	rel2, cached, err := s2.Release(m1, data, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("recovered release rebuilt instead of served from store")
	}
	if got := s2.Spent(); got != spent1 {
		t.Fatalf("recovered cache hit re-debited: spent %v -> %v", spent1, got)
	}
	t1, _ := rel1.Spatial()
	t2, _ := rel2.Spatial()
	q := NewRect(Point{0.1, 0.1}, Point{0.8, 0.7})
	if c1, c2 := t1.RangeCount(q), t2.RangeCount(q); c1 != c2 {
		t.Fatalf("recovered tree answers differently: %v vs %v", c1, c2)
	}

	// The remaining budget is live: a fresh release debits it.
	m3, err := NewSpatialMechanism(SpatialOptions{Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.Release(m3, data, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := s2.Spent(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("spent after fresh release = %v, want 1.0", got)
	}
	// ... and exhaustion carries across the recovered debits.
	m4, err := NewSpatialMechanism(SpatialOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var be *BudgetError
	if _, _, err := s2.Release(m4, data, 0.25); !errors.As(err, &be) {
		t.Fatalf("over-budget release after recovery: got %v, want *BudgetError", err)
	}
}

func TestOpenSessionBudgetExhaustionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	data, err := NewSpatialData(UnitCube(2), sessionStorePoints(500))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := OpenSession(dir, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSpatialMechanism(SpatialOptions{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.Release(m, data, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// The attack the store exists to stop: bounce the process, try to
	// spend the budget again with different parameters.
	s2, err := OpenSession(dir, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m2, err := NewSpatialMechanism(SpatialOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var be *BudgetError
	if _, _, err := s2.Release(m2, data, 0.5); !errors.As(err, &be) {
		t.Fatalf("restart forgot the spent budget: got %v, want *BudgetError", err)
	}
}

func TestWithStoreRequiresFreshSession(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, err := NewSession(1.0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := NewSpatialData(UnitCube(2), sessionStorePoints(200))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSpatialMechanism(SpatialOptions{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Release(m, data, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := s.WithStore(st); err == nil {
		t.Fatal("WithStore accepted a session with prior spends")
	}
	fresh, err := NewSession(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.WithStore(st); err != nil {
		t.Fatal(err)
	}
	if err := fresh.WithStore(st); err == nil {
		t.Fatal("second WithStore accepted")
	}
	if err := fresh.WithStore(nil); err == nil {
		t.Fatal("nil store accepted")
	}
}

// TestSessionStoreCompaction exercises Compact through the public
// wrapper: state must be identical after fold + reopen.
func TestSessionStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	data, err := NewSpatialData(UnitCube(2), sessionStorePoints(500))
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WithStore(st); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		m, err := NewSpatialMechanism(SpatialOptions{Seed: seed, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Release(m, data, 0.25); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	spent := s.Spent()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSession(dir, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Spent(); got != spent {
		t.Fatalf("spent after compaction+reopen = %v, want %v", got, spent)
	}
	if n := len(s2.Restored()); n != 3 {
		t.Fatalf("%d restored releases after compaction, want 3", n)
	}
	if n := len(s2.History()); n != 3 {
		t.Fatalf("audit trail has %d entries after compaction, want 3", n)
	}
}
