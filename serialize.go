package privtree

import (
	"encoding/json"
	"fmt"
	"math"

	"privtree/internal/core"
	"privtree/internal/geom"
)

// This file serializes released artifacts. A serialized tree contains
// exactly what the mechanism released — regions and noisy counts — so the
// bytes carry the same ε-differential-privacy guarantee as the in-memory
// object and can be published or archived as-is.

// treeJSON is the wire form of a SpatialTree.
type treeJSON struct {
	Version int      `json:"version"`
	Fanout  int      `json:"fanout"`
	Root    nodeJSON `json:"root"`
}

type nodeJSON struct {
	Lo       []float64  `json:"lo"`
	Hi       []float64  `json:"hi"`
	Count    *float64   `json:"count,omitempty"` // leaves only; internal counts are reconstructed
	Children []nodeJSON `json:"children,omitempty"`
}

// MarshalJSON implements json.Marshaler for SpatialTree.
func (t *SpatialTree) MarshalJSON() ([]byte, error) {
	var conv func(n *core.Node) nodeJSON
	conv = func(n *core.Node) nodeJSON {
		out := nodeJSON{Lo: n.Region.Lo, Hi: n.Region.Hi}
		if n.IsLeaf() {
			c := n.Count
			out.Count = &c
			return out
		}
		out.Children = make([]nodeJSON, len(n.Children))
		for i, ch := range n.Children {
			out.Children[i] = conv(ch)
		}
		return out
	}
	return json.Marshal(treeJSON{Version: 1, Fanout: t.tree.Fanout, Root: conv(t.tree.Root)})
}

// UnmarshalJSON implements json.Unmarshaler for SpatialTree: internal
// counts are reconstructed as leaf sums, exactly as the release pipeline
// defines them.
func (t *SpatialTree) UnmarshalJSON(data []byte) error {
	var wire treeJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	if wire.Version != 1 {
		return fmt.Errorf("privtree: unsupported tree version %d", wire.Version)
	}
	var conv func(w nodeJSON, depth int) (*core.Node, float64, error)
	conv = func(w nodeJSON, depth int) (*core.Node, float64, error) {
		if len(w.Lo) != len(w.Hi) || len(w.Lo) == 0 {
			return nil, 0, fmt.Errorf("privtree: malformed node bounds")
		}
		n := &core.Node{Region: geom.NewRect(w.Lo, w.Hi), Depth: depth, Count: math.NaN()}
		if len(w.Children) == 0 {
			if w.Count == nil {
				return nil, 0, fmt.Errorf("privtree: leaf without count")
			}
			n.Count = *w.Count
			return n, n.Count, nil
		}
		if wire.Fanout != 0 && len(w.Children) != wire.Fanout {
			return nil, 0, fmt.Errorf("privtree: node has %d children, fanout is %d", len(w.Children), wire.Fanout)
		}
		n.Children = make([]*core.Node, len(w.Children))
		total := 0.0
		for i, cw := range w.Children {
			child, sum, err := conv(cw, depth+1)
			if err != nil {
				return nil, 0, err
			}
			if !n.Region.ContainsRect(child.Region) {
				return nil, 0, fmt.Errorf("privtree: child region escapes parent")
			}
			n.Children[i] = child
			total += sum
		}
		n.Count = total
		return n, total, nil
	}
	root, _, err := conv(wire.Root, 0)
	if err != nil {
		return err
	}
	t.tree = &core.Tree{Root: root, Fanout: wire.Fanout, HasCounts: true}
	return nil
}
