package privtree

import (
	"encoding/json"
	"fmt"

	"privtree/internal/core"
	"privtree/internal/geom"
)

// This file serializes released artifacts. A serialized tree contains
// exactly what the mechanism released — regions and noisy counts — so the
// bytes carry the same ε-differential-privacy guarantee as the in-memory
// object and can be published or archived as-is.

// treeJSON is the wire form of a SpatialTree.
type treeJSON struct {
	Version int      `json:"version"`
	Fanout  int      `json:"fanout"`
	Root    nodeJSON `json:"root"`
}

type nodeJSON struct {
	Lo       []float64  `json:"lo"`
	Hi       []float64  `json:"hi"`
	Count    *float64   `json:"count,omitempty"` // leaves only; internal counts are reconstructed
	Children []nodeJSON `json:"children,omitempty"`
}

// MarshalJSON implements json.Marshaler for SpatialTree.
func (t *SpatialTree) MarshalJSON() ([]byte, error) {
	var conv func(n core.NodeRef) nodeJSON
	conv = func(n core.NodeRef) nodeJSON {
		region := n.Region()
		out := nodeJSON{Lo: region.Lo, Hi: region.Hi}
		if n.IsLeaf() {
			c := n.Count()
			out.Count = &c
			return out
		}
		out.Children = make([]nodeJSON, n.NumChildren())
		for i := range out.Children {
			out.Children[i] = conv(n.Child(i))
		}
		return out
	}
	return json.Marshal(treeJSON{Version: 1, Fanout: t.tree.Fanout, Root: conv(t.tree.Root())})
}

// UnmarshalJSON implements json.Unmarshaler for SpatialTree: internal
// counts are reconstructed as leaf sums, exactly as the release pipeline
// defines them.
func (t *SpatialTree) UnmarshalJSON(data []byte) error {
	var wire treeJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	if wire.Version != 1 {
		return fmt.Errorf("privtree: unsupported tree version %d", wire.Version)
	}
	b := core.NewBuilder(wire.Fanout, 64)
	var conv func(w nodeJSON, idx int32) error
	conv = func(w nodeJSON, idx int32) error {
		if len(w.Children) == 0 {
			if w.Count == nil {
				return fmt.Errorf("privtree: leaf without count")
			}
			b.SetCount(idx, *w.Count)
			return nil
		}
		if wire.Fanout != 0 && len(w.Children) != wire.Fanout {
			return fmt.Errorf("privtree: node has %d children, fanout is %d", len(w.Children), wire.Fanout)
		}
		parentRegion := b.Node(idx).Region
		regions := make([]geom.Rect, len(w.Children))
		for i, cw := range w.Children {
			if len(cw.Lo) != len(cw.Hi) || len(cw.Lo) == 0 {
				return fmt.Errorf("privtree: malformed node bounds")
			}
			regions[i] = geom.NewRect(cw.Lo, cw.Hi)
			if !parentRegion.ContainsRect(regions[i]) {
				return fmt.Errorf("privtree: child region escapes parent")
			}
		}
		first := b.AddChildren(idx, regions)
		for i, cw := range w.Children {
			if err := conv(cw, first+int32(i)); err != nil {
				return err
			}
		}
		return nil
	}
	if len(wire.Root.Lo) != len(wire.Root.Hi) || len(wire.Root.Lo) == 0 {
		return fmt.Errorf("privtree: malformed node bounds")
	}
	b.AddRoot(geom.NewRect(wire.Root.Lo, wire.Root.Hi))
	if err := conv(wire.Root, 0); err != nil {
		return err
	}
	tree := b.Build(true)
	tree.SumInternalCounts()
	t.tree = tree
	return nil
}
