package privtree

import (
	"encoding/json"
	"fmt"
	"math"

	"privtree/internal/core"
	"privtree/internal/geom"
)

// This file serializes released artifacts. A serialized tree contains
// exactly what the mechanism released — regions and noisy counts — so the
// bytes carry the same ε-differential-privacy guarantee as the in-memory
// object and can be published or archived as-is.

// treeJSON is the wire form of a SpatialTree.
type treeJSON struct {
	Version int      `json:"version"`
	Fanout  int      `json:"fanout"`
	Root    nodeJSON `json:"root"`
}

type nodeJSON struct {
	Lo       []float64  `json:"lo"`
	Hi       []float64  `json:"hi"`
	Count    *float64   `json:"count,omitempty"` // leaves only; internal counts are reconstructed
	Children []nodeJSON `json:"children,omitempty"`
}

// MarshalJSON implements json.Marshaler for SpatialTree.
func (t *SpatialTree) MarshalJSON() ([]byte, error) {
	var conv func(n core.NodeRef) nodeJSON
	conv = func(n core.NodeRef) nodeJSON {
		region := n.Region()
		out := nodeJSON{Lo: region.Lo, Hi: region.Hi}
		if n.IsLeaf() {
			c := n.Count()
			out.Count = &c
			return out
		}
		out.Children = make([]nodeJSON, n.NumChildren())
		for i := range out.Children {
			out.Children[i] = conv(n.Child(i))
		}
		return out
	}
	return json.Marshal(treeJSON{Version: 1, Fanout: t.tree.Fanout, Root: conv(t.tree.Root())})
}

// wireRect validates one serialized node's bounds and returns the region.
// It goes through geom.MakeRect, never geom.NewRect: inverted intervals,
// non-finite coordinates, mismatched or empty bound slices are all
// reported as errors, so no untrusted byte stream can crash the
// deserializer.
func wireRect(lo, hi []float64) (geom.Rect, error) {
	r, err := geom.MakeRect(lo, hi)
	if err != nil {
		return geom.Rect{}, fmt.Errorf("privtree: malformed node bounds: %w", err)
	}
	return r, nil
}

// maxWireFanout bounds the fanout accepted from the wire; 2^20 is far
// beyond any realizable splitter and merely prevents absurd allocations.
const maxWireFanout = 1 << 20

// UnmarshalJSON implements json.Unmarshaler for SpatialTree: internal
// counts are reconstructed as leaf sums, exactly as the release pipeline
// defines them. Malformed input — truncated documents, inverted or
// non-finite bounds, children escaping their parent, wrong child arity,
// missing or non-finite leaf counts — is rejected with an error before any
// tree is exposed; t is left unmodified on failure.
func (t *SpatialTree) UnmarshalJSON(data []byte) error {
	var wire treeJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	if wire.Version != 1 {
		return fmt.Errorf("privtree: unsupported tree version %d", wire.Version)
	}
	if wire.Fanout < 2 || wire.Fanout > maxWireFanout {
		return fmt.Errorf("privtree: unusable fanout %d", wire.Fanout)
	}
	b := core.NewBuilder(wire.Fanout, 64)
	var conv func(w nodeJSON, idx int32) error
	conv = func(w nodeJSON, idx int32) error {
		if len(w.Children) == 0 {
			if w.Count == nil {
				return fmt.Errorf("privtree: leaf without count")
			}
			if math.IsNaN(*w.Count) || math.IsInf(*w.Count, 0) {
				return fmt.Errorf("privtree: non-finite leaf count")
			}
			b.SetCount(idx, *w.Count)
			return nil
		}
		if len(w.Children) != wire.Fanout {
			return fmt.Errorf("privtree: node has %d children, fanout is %d", len(w.Children), wire.Fanout)
		}
		parentRegion := b.Node(idx).Region
		regions := make([]geom.Rect, len(w.Children))
		for i, cw := range w.Children {
			r, err := wireRect(cw.Lo, cw.Hi)
			if err != nil {
				return err
			}
			regions[i] = r
			if !parentRegion.ContainsRect(regions[i]) {
				return fmt.Errorf("privtree: child region escapes parent")
			}
		}
		first := b.AddChildren(idx, regions)
		for i, cw := range w.Children {
			if err := conv(cw, first+int32(i)); err != nil {
				return err
			}
		}
		return nil
	}
	rootRegion, err := wireRect(wire.Root.Lo, wire.Root.Hi)
	if err != nil {
		return err
	}
	b.AddRoot(rootRegion)
	if err := conv(wire.Root, 0); err != nil {
		return err
	}
	tree := b.Build(true)
	tree.SumInternalCounts()
	t.tree = tree
	return nil
}
