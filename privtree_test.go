package privtree

import (
	"math"
	"math/rand/v2"
	"testing"
)

// makeClusteredPoints generates a skewed 2-D dataset for API tests and
// micro-benchmarks.
func makeClusteredPoints(n int) []Point {
	rng := rand.New(rand.NewPCG(100, 200))
	pts := make([]Point, n)
	for i := range pts {
		if i%4 == 0 {
			pts[i] = Point{rng.Float64(), rng.Float64()}
		} else {
			pts[i] = Point{clampTest(0.4 + 0.03*rng.NormFloat64()), clampTest(0.6 + 0.03*rng.NormFloat64())}
		}
	}
	return pts
}

// makeClickstreams generates sticky-chain sequences over a 6-symbol
// alphabet.
func makeClickstreams(n int) []Sequence {
	rng := rand.New(rand.NewPCG(300, 400))
	out := make([]Sequence, n)
	for i := range out {
		cur := rng.IntN(6)
		var s Sequence
		for {
			s = append(s, cur)
			if rng.Float64() < 0.3 || len(s) >= 15 {
				break
			}
			cur = (cur + 1) % 6
		}
		out[i] = s
	}
	return out
}

func clampTest(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return math.Nextafter(1, 0)
	}
	return x
}

func TestBuildSpatialEndToEnd(t *testing.T) {
	pts := makeClusteredPoints(50000)
	tree, err := BuildSpatial(UnitCube(2), pts, 1.0, SpatialOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tree.Total()-50000) > 2000 {
		t.Fatalf("total %v far from 50000", tree.Total())
	}
	q := NewRect(Point{0, 0}, Point{0.5, 1})
	exact := 0
	for _, p := range pts {
		if q.Contains(p) {
			exact++
		}
	}
	got := tree.RangeCount(q)
	if math.Abs(got-float64(exact))/float64(exact) > 0.1 {
		t.Fatalf("range count %v vs exact %d", got, exact)
	}
}

func TestBuildSpatialRejectsBadInput(t *testing.T) {
	if _, err := BuildSpatial(UnitCube(2), []Point{{2, 2}}, 1, SpatialOptions{}); err == nil {
		t.Fatal("out-of-domain point accepted")
	}
	if _, err := BuildSpatial(UnitCube(2), makeClusteredPoints(10), 1, SpatialOptions{Fanout: 3}); err == nil {
		t.Fatal("non-power-of-two fanout accepted")
	}
	if _, err := BuildSpatial(UnitCube(2), makeClusteredPoints(10), 1, SpatialOptions{Fanout: 8}); err == nil {
		t.Fatal("fanout above 2^d accepted")
	}
	if _, err := BuildSpatial(UnitCube(2), makeClusteredPoints(10), -1, SpatialOptions{}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

func TestBuildSpatialReducedFanout(t *testing.T) {
	pts := makeClusteredPoints(20000)
	tree, err := BuildSpatial(UnitCube(2), pts, 1.0, SpatialOptions{Fanout: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() < 3 {
		t.Fatal("binary-split tree did not grow")
	}
}

func TestBuildSpatialDeterministicForSeed(t *testing.T) {
	pts := makeClusteredPoints(5000)
	a, err := BuildSpatial(UnitCube(2), pts, 1, SpatialOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSpatial(UnitCube(2), pts, 1, SpatialOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes() != b.Nodes() || a.Total() != b.Total() {
		t.Fatal("same seed produced different trees")
	}
	c, err := BuildSpatial(UnitCube(2), pts, 1, SpatialOptions{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() == c.Total() {
		t.Fatal("different seeds produced identical noise (suspicious)")
	}
}

func TestLeavesPartitionDomain(t *testing.T) {
	pts := makeClusteredPoints(20000)
	tree, err := BuildSpatial(UnitCube(2), pts, 1, SpatialOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	vol := 0.0
	for _, leaf := range tree.Leaves() {
		vol += leaf.Region.Volume()
	}
	if math.Abs(vol-1) > 1e-9 {
		t.Fatalf("leaf volumes sum to %v, want 1", vol)
	}
}

func TestRequiredNoiseScaleCorollary1(t *testing.T) {
	// β=4, ε=1: λ = 7/3.
	if got := RequiredNoiseScale(4, 1); math.Abs(got-7.0/3) > 1e-12 {
		t.Fatalf("λ = %v, want 7/3", got)
	}
}

func TestAllBaselinesAnswerQueries(t *testing.T) {
	pts := makeClusteredPoints(20000)
	dom := UnitCube(2)
	q := NewRect(Point{0.2, 0.4}, Point{0.6, 0.8})
	exact := 0.0
	for _, p := range pts {
		if q.Contains(p) {
			exact++
		}
	}
	for _, b := range []Baseline{BaselineUG, BaselineAG, BaselineHierarchy, BaselinePrivelet, BaselineDAWA, BaselineSimpleTree} {
		m, err := BuildBaseline(b, dom, pts, 1.0, 4)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		got := m.RangeCount(q)
		if math.Abs(got-exact)/exact > 1.5 {
			t.Errorf("%s: estimate %v wildly off exact %v", b, got, exact)
		}
	}
}

func TestBaselineErrors(t *testing.T) {
	pts4 := make([]Point, 100)
	for i := range pts4 {
		pts4[i] = Point{0.5, 0.5, 0.5, 0.5}
	}
	if _, err := BuildBaseline(BaselineAG, UnitCube(4), pts4, 1, 1); err == nil {
		t.Fatal("AG on 4-D accepted")
	}
	if _, err := BuildBaseline(BaselineHierarchy, UnitCube(4), pts4, 1, 1); err == nil {
		t.Fatal("Hierarchy on 4-D accepted")
	}
	if _, err := BuildBaseline("nope", UnitCube(2), makeClusteredPoints(10), 1, 1); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

func TestPrivTreeBeatsSimpleTreeOnSkewedData(t *testing.T) {
	// The paper's core claim, end to end through the public API.
	pts := makeClusteredPoints(100000)
	dom := UnitCube(2)
	rng := rand.New(rand.NewPCG(5, 6))
	queries := make([]Rect, 100)
	for i := range queries {
		side := 0.05 + 0.1*rng.Float64()
		lo := Point{rng.Float64() * (1 - side), rng.Float64() * (1 - side)}
		queries[i] = NewRect(lo, Point{lo[0] + side, lo[1] + side})
	}
	exact := make([]float64, len(queries))
	for i, q := range queries {
		for _, p := range pts {
			if q.Contains(p) {
				exact[i]++
			}
		}
	}
	avgErr := func(m RangeCounter) float64 {
		total := 0.0
		for i, q := range queries {
			den := math.Max(exact[i], 100)
			total += math.Abs(m.RangeCount(q)-exact[i]) / den
		}
		return total / float64(len(queries))
	}
	const eps = 0.2
	pt, err := BuildSpatial(dom, pts, eps, SpatialOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st, err := BuildBaseline(BaselineSimpleTree, dom, pts, eps, 7)
	if err != nil {
		t.Fatal(err)
	}
	ePT, eST := avgErr(pt), avgErr(st)
	if ePT >= eST {
		t.Fatalf("PrivTree error %v not below SimpleTree %v at ε=%v", ePT, eST, eps)
	}
}

func TestBuildSequenceModelEndToEnd(t *testing.T) {
	seqs := makeClickstreams(20000)
	m, err := BuildSequenceModel(6, seqs, 2.0, SequenceOptions{MaxLength: 20, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxLength() != 20 {
		t.Fatalf("l⊤ = %d", m.MaxLength())
	}
	top := m.TopK(10, 3)
	if len(top) != 10 {
		t.Fatalf("topk returned %d", len(top))
	}
	// Unigram estimates should be near exact.
	exact := make([]float64, 6)
	for _, s := range seqs {
		for _, x := range s {
			exact[x]++
		}
	}
	for x := 0; x < 6; x++ {
		got := m.EstimateFrequency(Sequence{x})
		if math.Abs(got-exact[x])/exact[x] > 0.2 {
			t.Errorf("unigram %d: %v vs exact %v", x, got, exact[x])
		}
	}
	gen := m.Generate(1000, 9)
	if len(gen) != 1000 {
		t.Fatalf("generated %d", len(gen))
	}
	for _, s := range gen {
		if len(s) > 20 {
			t.Fatalf("generated sequence longer than l⊤: %d", len(s))
		}
	}
}

func TestBuildSequenceModelAutoLTop(t *testing.T) {
	seqs := makeClickstreams(5000)
	m, err := BuildSequenceModel(6, seqs, 2.0, SequenceOptions{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxLength() < 5 || m.MaxLength() > 17 {
		t.Fatalf("auto l⊤ = %d implausible for max length 15 data", m.MaxLength())
	}
}

func TestBuildSequenceModelRejectsBadInput(t *testing.T) {
	if _, err := BuildSequenceModel(0, nil, 1, SequenceOptions{}); err == nil {
		t.Fatal("alphabet 0 accepted")
	}
	if _, err := BuildSequenceModel(2, []Sequence{{0, 5}}, 1, SequenceOptions{MaxLength: 5}); err == nil {
		t.Fatal("out-of-alphabet symbol accepted")
	}
}

func TestAffectedLeavesScalesNoise(t *testing.T) {
	pts := makeClusteredPoints(30000)
	// With x=5 the tree must be coarser (noisier decisions) and the count
	// noise larger; the build must still succeed and roughly sum to n.
	plain, err := BuildSpatial(UnitCube(2), pts, 1.0, SpatialOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := BuildSpatial(UnitCube(2), pts, 1.0, SpatialOptions{Seed: 4, AffectedLeaves: 5})
	if err != nil {
		t.Fatal(err)
	}
	if guarded.Nodes() > plain.Nodes() {
		t.Fatalf("x=5 tree (%d nodes) larger than x=1 tree (%d)", guarded.Nodes(), plain.Nodes())
	}
	if math.Abs(guarded.Total()-30000) > 10000 {
		t.Fatalf("x=5 total %v implausible", guarded.Total())
	}
}
