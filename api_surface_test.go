package privtree

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// API-compatibility gate: testdata/api_surface.txt is a checked-in
// snapshot of every exported declaration of package privtree (the full
// public surface: types with their fields, funcs, methods, consts, vars).
// The test regenerates the snapshot from the source AST and diffs it, so a
// PR cannot silently break the Mechanism/Release/Session surface — any
// intentional change must update the snapshot in the same diff, where
// reviewers see it.
//
// Regenerate with:
//
//	PRIVTREE_UPDATE_API=1 go test -run TestPublicAPISurface .

// renderNode prints an AST node with single-space formatting.
func renderNode(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 1}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	// Collapse to one line so the snapshot diffs line-by-line per decl.
	return strings.Join(strings.Fields(buf.String()), " ")
}

// publicAPISurface parses the package source in dir and returns one line
// per exported declaration, sorted.
func publicAPISurface(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["privtree"]
	if !ok {
		t.Fatalf("package privtree not found in %s", dir)
	}
	var lines []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					// Methods on unexported receivers are not public API.
					recv := renderNode(fset, d.Recv.List[0].Type)
					base := strings.TrimLeft(recv, "*")
					if base != "" && !ast.IsExported(base) {
						continue
					}
					fn := *d
					fn.Body = nil
					fn.Doc = nil
					lines = append(lines, renderNode(fset, &fn))
					continue
				}
				fn := *d
				fn.Body = nil
				fn.Doc = nil
				lines = append(lines, renderNode(fset, &fn))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						ts := *s
						ts.Doc, ts.Comment = nil, nil
						kw := "type"
						lines = append(lines, kw+" "+renderNode(fset, &ts))
					case *ast.ValueSpec:
						exported := false
						for _, n := range s.Names {
							if n.IsExported() {
								exported = true
							}
						}
						if !exported {
							continue
						}
						vs := *s
						vs.Doc, vs.Comment = nil, nil
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						lines = append(lines, kw+" "+renderNode(fset, &vs))
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func TestPublicAPISurface(t *testing.T) {
	lines := publicAPISurface(t, ".")
	got := strings.Join(lines, "\n") + "\n"
	path := filepath.Join("testdata", "api_surface.txt")
	if os.Getenv("PRIVTREE_UPDATE_API") == "1" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing API snapshot (run with PRIVTREE_UPDATE_API=1): %v", err)
	}
	if string(want) == got {
		return
	}
	// Produce a readable diff: lines added to / removed from the surface.
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(strings.TrimRight(string(want), "\n"), "\n") {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool)
	for _, l := range lines {
		gotSet[l] = true
	}
	var sb strings.Builder
	for _, l := range lines {
		if !wantSet[l] {
			fmt.Fprintf(&sb, "+ %s\n", l)
		}
	}
	for l := range wantSet {
		if !gotSet[l] {
			fmt.Fprintf(&sb, "- %s\n", l)
		}
	}
	t.Fatalf("public API surface changed; if intentional, regenerate testdata/api_surface.txt with PRIVTREE_UPDATE_API=1\n%s", sb.String())
}
