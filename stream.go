package privtree

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrEmptyEpoch is returned by Stream.Seal when no records have been
// appended since the previous seal. Sealing an empty epoch would spend
// ε_epoch on a release of nothing; callers should skip the epoch instead
// (the continual-release scheduler does exactly that).
var ErrEmptyEpoch = errors.New("privtree: stream has no pending records to seal")

// Stream is an appendable, epoch-structured private dataset for continual
// release. Where Data is frozen at construction, a Stream accumulates
// arriving records into a pending buffer — Append is O(1) amortized over
// slab storage, mirroring the arena layout of the batch pipelines — and
// Seal freezes everything appended since the previous seal into an
// immutable *Data for exactly one epoch. The sealed Data owns the slab it
// was built over; the stream starts a fresh slab, so later appends can
// never mutate an already-released epoch.
//
// Validation is batch-atomic and eager, one step earlier than Data's
// constructors: AppendPoints and AppendSequences check every record
// (dimensionality, finite coordinates, domain containment, alphabet
// bounds) before buffering any of them, so a rejected batch leaves the
// pending buffer untouched and Seal can only fail on an empty epoch.
//
// A Stream holds raw private records between seals. Like Data, it never
// exposes them: only Releases built from sealed epochs are.
//
// Stream is safe for concurrent use.
type Stream struct {
	mu   sync.Mutex
	kind ReleaseKind

	domain Rect      // KindSpatial
	coords []float64 // KindSpatial: pending points, row-major slab

	alphabet int   // KindSequence
	syms     []int // KindSequence: pending symbols, one slab
	lens     []int // KindSequence: per-pending-sequence lengths

	epoch uint64 // seals so far; the next Seal freezes epoch+1
	total uint64 // records appended over the stream's lifetime
}

// NewSpatialStream returns an empty stream of points over domain.
func NewSpatialStream(domain Rect) (*Stream, error) {
	if err := domain.Validate(); err != nil {
		return nil, fmt.Errorf("privtree: invalid domain: %w", err)
	}
	return &Stream{kind: KindSpatial, domain: domain.Clone()}, nil
}

// NewSequenceStream returns an empty stream of sequences over the symbol
// alphabet [0, alphabet).
func NewSequenceStream(alphabet int) (*Stream, error) {
	if alphabet < 1 {
		return nil, fmt.Errorf("privtree: alphabet size must be >= 1, got %d", alphabet)
	}
	return &Stream{kind: KindSequence, alphabet: alphabet}, nil
}

// Kind returns the stream's data family: KindSpatial or KindSequence.
func (s *Stream) Kind() ReleaseKind { return s.kind }

// AppendPoints buffers a batch of points for the next epoch. The whole
// batch is validated first — every point must have the domain's
// dimensionality, finite coordinates, and lie inside the domain — and a
// validation error applies none of it. Points are copied into the
// stream's slab; the caller keeps ownership of pts.
func (s *Stream) AppendPoints(pts []Point) error {
	if s.kind != KindSpatial {
		return fmt.Errorf("privtree: AppendPoints on a %s stream", s.kind)
	}
	d := s.domain.Dims()
	for i, p := range pts {
		if len(p) != d {
			return fmt.Errorf("privtree: point %d has dim %d, domain has dim %d", i, len(p), d)
		}
		for _, x := range p {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("privtree: point %d has non-finite coordinate %v", i, x)
			}
		}
		if !s.domain.Contains(p) {
			return fmt.Errorf("privtree: point %d (%v) outside domain %v", i, p, s.domain)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range pts {
		s.coords = append(s.coords, p...)
	}
	s.total += uint64(len(pts))
	return nil
}

// AppendSequences buffers a batch of sequences for the next epoch. The
// whole batch is validated first — every symbol must lie in
// [0, alphabet) — and a validation error applies none of it. Symbols are
// copied into the stream's slab; the caller keeps ownership of seqs.
// Empty sequences are legal records, exactly as in NewSequenceData.
func (s *Stream) AppendSequences(seqs []Sequence) error {
	if s.kind != KindSequence {
		return fmt.Errorf("privtree: AppendSequences on a %s stream", s.kind)
	}
	if err := validateSequenceSymbols(s.alphabet, seqs); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, q := range seqs {
		s.syms = append(s.syms, q...)
		s.lens = append(s.lens, len(q))
	}
	s.total += uint64(len(seqs))
	return nil
}

// Pending returns the number of records buffered since the last seal.
func (s *Stream) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.kind == KindSpatial {
		if d := s.domain.Dims(); d > 0 {
			return len(s.coords) / d
		}
		return 0
	}
	return len(s.lens)
}

// Epoch returns the number of epochs sealed so far; the next successful
// Seal freezes epoch Epoch()+1.
func (s *Stream) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Total returns the number of records appended over the stream's
// lifetime, sealed and pending.
func (s *Stream) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Seal freezes the pending buffer into an immutable *Data — the dataset
// of exactly one epoch — and starts a fresh buffer. It returns
// ErrEmptyEpoch (and advances nothing) when no records are pending. The
// returned Data aliases the stream's old slab, which the stream abandons,
// so the Data honours the frozen-at-construction contract.
func (s *Stream) Seal() (*Data, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.kind {
	case KindSpatial:
		d := s.domain.Dims()
		if len(s.coords) == 0 {
			return nil, ErrEmptyEpoch
		}
		pts := make([]Point, 0, len(s.coords)/d)
		for off := 0; off+d <= len(s.coords); off += d {
			pts = append(pts, Point(s.coords[off:off+d:off+d]))
		}
		data, err := NewSpatialData(s.domain, pts)
		if err != nil {
			return nil, err
		}
		s.coords = nil
		s.epoch++
		return data, nil
	default:
		if len(s.lens) == 0 {
			return nil, ErrEmptyEpoch
		}
		seqs := make([]Sequence, 0, len(s.lens))
		off := 0
		for _, n := range s.lens {
			seqs = append(seqs, Sequence(s.syms[off:off+n:off+n]))
			off += n
		}
		data, err := NewSequenceData(s.alphabet, seqs)
		if err != nil {
			return nil, err
		}
		s.syms, s.lens = nil, nil
		s.epoch++
		return data, nil
	}
}
