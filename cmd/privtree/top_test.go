package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"privtree/internal/server"
)

// TestTopOnce renders one frame against a live in-process server: the
// node row must carry its role and ε accounting, and the trace section
// must surface a retained error trace with its ID.
func TestTopOnce(t *testing.T) {
	srv, err := server.New(server.Options{Workers: 1, TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(path string, body any, want int) {
		t.Helper()
		enc, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	post("/v1/datasets", map[string]any{
		"name": "topdemo", "epsilon": 2.0,
		"synthetic": map[string]any{"generator": "road", "n": 1000, "seed": 1},
	}, http.StatusCreated)
	post("/v1/datasets/topdemo/releases", map[string]any{"epsilon": 0.5, "seed": 3}, http.StatusCreated)
	// One error-class request, so the trace section has something to show.
	post("/v1/datasets/missing/releases", map[string]any{"epsilon": 0.1}, http.StatusNotFound)

	var out bytes.Buffer
	if err := runTop([]string{"-nodes", ts.URL, "-once", "-traces", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	frame := out.String()
	for _, want := range []string{"primary", "yes", "0.500/2.000", "error", "404", "create_release", "/v1/traces/"} {
		if !strings.Contains(frame, want) {
			t.Fatalf("top frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "DOWN") {
		t.Fatalf("live node rendered as DOWN:\n%s", frame)
	}
}

// TestTopDownNode keeps rendering when a node is unreachable.
func TestTopDownNode(t *testing.T) {
	var out bytes.Buffer
	err := runTop([]string{
		"-nodes", "http://127.0.0.1:1", "-once", "-timeout", (50 * time.Millisecond).String(),
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "DOWN") {
		t.Fatalf("unreachable node not rendered as DOWN:\n%s", out.String())
	}
}
