package main

import (
	"os"
	"path/filepath"
	"testing"

	"privtree/internal/store"
)

// seedStore creates a closed store at dir with one debit and one
// committed release, so the scrub has every record kind to verify.
func seedStore(t *testing.T, dir string) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDebit(0.5, "rel-1"); err != nil {
		t.Fatal(err)
	}
	if err := st.CommitRelease("rel-1", []byte(`{"privtree_release":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCleanStore(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	if err := runVerify([]string{dir}); err != nil {
		t.Fatalf("verify of a clean store: %v", err)
	}
}

func TestVerifyDataDirLayout(t *testing.T) {
	root := t.TempDir()
	seedStore(t, filepath.Join(root, "datasets", "a", "store"))
	seedStore(t, filepath.Join(root, "datasets", "b", "store"))
	if err := runVerify([]string{root}); err != nil {
		t.Fatalf("verify of a data dir: %v", err)
	}
}

// TestVerifyDetectsHostileEdits proves every class of tamper the scrub
// guards against turns into a non-zero verify result: flipped WAL bytes,
// artifact bytes that no longer match their content address, and a
// commit whose artifact was deleted.
func TestVerifyDetectsHostileEdits(t *testing.T) {
	t.Run("wal-bitflip", func(t *testing.T) {
		dir := t.TempDir()
		seedStore(t, dir)
		wal := filepath.Join(dir, "ledger.wal")
		blob, err := os.ReadFile(wal)
		if err != nil {
			t.Fatal(err)
		}
		blob[len(blob)/2] ^= 0xff
		if err := os.WriteFile(wal, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := runVerify([]string{dir}); err == nil {
			t.Fatal("verify accepted a WAL with a flipped byte")
		}
	})

	t.Run("artifact-tamper", func(t *testing.T) {
		dir := t.TempDir()
		seedStore(t, dir)
		arts, err := filepath.Glob(filepath.Join(dir, "artifacts", "*.json"))
		if err != nil || len(arts) != 1 {
			t.Fatalf("artifacts = %v, %v", arts, err)
		}
		if err := os.WriteFile(arts[0], []byte(`{"privtree_release":1,"edited":true}`), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := runVerify([]string{dir}); err == nil {
			t.Fatal("verify accepted an artifact that does not hash to its name")
		}
	})

	t.Run("missing-artifact", func(t *testing.T) {
		dir := t.TempDir()
		seedStore(t, dir)
		arts, _ := filepath.Glob(filepath.Join(dir, "artifacts", "*.json"))
		for _, a := range arts {
			if err := os.Remove(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := runVerify([]string{dir}); err == nil {
			t.Fatal("verify accepted a commit pointing at a deleted artifact")
		}
	})

	t.Run("not-a-store", func(t *testing.T) {
		if err := runVerify([]string{t.TempDir()}); err == nil {
			t.Fatal("verify accepted an empty directory")
		}
	})

	t.Run("usage", func(t *testing.T) {
		if err := runVerify(nil); err == nil {
			t.Fatal("verify accepted no arguments")
		}
	})
}
