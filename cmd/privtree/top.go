package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"privtree/internal/obs"
)

// The top subcommand: a polling live-ops view over a privtree cluster.
// Each tick it scrapes every node's /metrics (strictly parsed), /readyz,
// and /v1/traces, and renders one row per node — role, readiness,
// request rate, in-flight work, ε spend, replica lag, stream freshness —
// followed by the newest retained slow/error traces so "something is
// wrong" comes with trace IDs to pull. It reads only operational planes
// that replicas and fenced nodes serve too, so it works mid-incident.

// topNode is one node's scraped state for a single tick.
type topNode struct {
	addr  string
	err   error // scrape failure: node rendered as DOWN
	role  string
	ready bool
	note  string // why not ready

	reqs      float64 // privtree_requests_total (cumulative)
	qps       float64 // privtree_queries_per_second
	inflight  float64 // builds + batches in flight
	epsSpent  float64 // Σ datasets
	epsTotal  float64
	lagRecs   float64 // max replica lag, -1 when not a replica
	streamAge float64 // max seconds since seal, -1 without streams

	traces []topTrace
}

type topTrace struct {
	TraceID    string  `json:"trace_id"`
	Route      string  `json:"route"`
	Dataset    string  `json:"dataset"`
	Status     int     `json:"status"`
	DurationMS float64 `json:"duration_ms"`
	Retained   string  `json:"retained"`
}

// runTop implements `privtree top`. It writes rendered frames to w and
// returns after one frame in -once mode, else loops until the process is
// interrupted.
func runTop(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	nodes := fs.String("nodes", "http://localhost:8080", "comma-separated node base URLs")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	timeout := fs.Duration("timeout", 2*time.Second, "per-request scrape timeout")
	once := fs.Bool("once", false, "render one frame and exit (no screen clearing)")
	nTraces := fs.Int("traces", 3, "retained slow/error traces to show per node (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var addrs []string
	for _, a := range strings.Split(*nodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, strings.TrimRight(a, "/"))
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("top: -nodes is empty")
	}
	client := &http.Client{Timeout: *timeout}

	// prev holds last tick's cumulative request counters so the rate
	// column can be a real delta, not a lifetime average.
	prev := map[string]struct {
		reqs float64
		at   time.Time
	}{}
	for {
		now := time.Now()
		states := make([]topNode, len(addrs))
		for i, addr := range addrs {
			states[i] = scrapeNode(client, addr, *nTraces)
		}
		if !*once {
			fmt.Fprint(w, "\033[2J\033[H") // clear screen, home cursor
		}
		fmt.Fprintf(w, "privtree top — %d node(s) @ %s\n\n", len(addrs), now.Format("15:04:05"))
		fmt.Fprintf(w, "%-28s %-8s %-9s %9s %7s %5s %16s %8s %10s\n",
			"NODE", "ROLE", "READY", "REQ/S", "QPS", "INFL", "ε SPENT/TOTAL", "LAG", "STREAM AGE")
		for _, st := range states {
			renderNode(w, st, prev, now)
		}
		if *nTraces > 0 {
			renderTraces(w, states)
		}
		if *once {
			return nil
		}
		time.Sleep(*interval)
	}
}

func renderNode(w io.Writer, st topNode, prev map[string]struct {
	reqs float64
	at   time.Time
}, now time.Time) {
	if st.err != nil {
		fmt.Fprintf(w, "%-28s %-8s %s\n", trunc(st.addr, 28), "DOWN", st.err)
		return
	}
	rate := "-"
	if p, ok := prev[st.addr]; ok && now.After(p.at) {
		rate = fmt.Sprintf("%.1f", (st.reqs-p.reqs)/now.Sub(p.at).Seconds())
	}
	prev[st.addr] = struct {
		reqs float64
		at   time.Time
	}{st.reqs, now}
	ready := "yes"
	if !st.ready {
		ready = "NO"
		if st.note != "" {
			ready = "NO (" + trunc(st.note, 20) + ")"
		}
	}
	lag := "-"
	if st.lagRecs >= 0 {
		lag = fmt.Sprintf("%.0f rec", st.lagRecs)
	}
	age := "-"
	if st.streamAge >= 0 {
		age = fmt.Sprintf("%.1fs", st.streamAge)
	}
	fmt.Fprintf(w, "%-28s %-8s %-9s %9s %7.1f %5.0f %8.3f/%-7.3f %8s %10s\n",
		trunc(st.addr, 28), st.role, ready, rate, st.qps, st.inflight,
		st.epsSpent, st.epsTotal, lag, age)
}

func renderTraces(w io.Writer, states []topNode) {
	any := false
	for _, st := range states {
		for _, tr := range st.traces {
			if !any {
				fmt.Fprintf(w, "\nretained slow/error traces (newest first — `curl <node>/v1/traces/<id>` for spans):\n")
				any = true
			}
			fmt.Fprintf(w, "  %-28s %-6s %3d %8.1fms %-14s %-12s %s\n",
				trunc(st.addr, 28), tr.Retained, tr.Status, tr.DurationMS,
				trunc(tr.Route, 14), trunc(tr.Dataset, 12), tr.TraceID)
		}
	}
	if !any {
		fmt.Fprintf(w, "\nno retained slow/error traces\n")
	}
}

// scrapeNode pulls one node's three operational planes. Any failure on
// /metrics or /readyz marks the node DOWN; a missing trace plane (older
// node) just leaves the trace list empty.
func scrapeNode(client *http.Client, addr string, nTraces int) topNode {
	st := topNode{addr: addr, lagRecs: -1, streamAge: -1}

	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		st.err = err
		return st
	}
	samples, err := obs.ParseText(resp.Body)
	resp.Body.Close()
	if err != nil {
		st.err = fmt.Errorf("/metrics: %v", err)
		return st
	}
	for _, s := range samples {
		switch s.Name {
		case "privtree_requests_total":
			st.reqs = s.Value
		case "privtree_queries_per_second":
			st.qps = s.Value
		case "privtree_builds_in_flight", "privtree_batches_in_flight":
			st.inflight += s.Value
		case "privtree_dataset_epsilon_spent":
			st.epsSpent += s.Value
		case "privtree_dataset_epsilon_total":
			st.epsTotal += s.Value
		case "privtree_replica_lag_records":
			if s.Value > st.lagRecs {
				st.lagRecs = s.Value
			}
		case "privtree_stream_seconds_since_seal":
			if s.Value > st.streamAge {
				st.streamAge = s.Value
			}
		}
	}

	st.role, st.ready, st.note, err = scrapeReady(client, addr)
	if err != nil {
		st.err = err
		return st
	}
	if nTraces > 0 {
		st.traces = scrapeTraces(client, addr, nTraces)
	}
	return st
}

// scrapeReady distinguishes "node down" (error) from "node up but not
// ready" (503 with a structured body) — top must keep rendering both.
func scrapeReady(client *http.Client, addr string) (role string, ready bool, note string, err error) {
	resp, err := client.Get(addr + "/readyz")
	if err != nil {
		return "", false, "", err
	}
	defer resp.Body.Close()
	var doc struct {
		Ready bool   `json:"ready"`
		Role  string `json:"role"`
		Error *struct {
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", false, "", fmt.Errorf("/readyz: %v", err)
	}
	role = doc.Role
	if role == "" {
		role = "?"
	}
	if doc.Error != nil {
		note = doc.Error.Message
	}
	return role, doc.Ready, note, nil
}

func scrapeTraces(client *http.Client, addr string, n int) []topTrace {
	resp, err := client.Get(addr + "/v1/traces?limit=200")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return nil
	}
	defer resp.Body.Close()
	var doc struct {
		Traces []topTrace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil
	}
	// The listing is already newest first; keep the first n slow/error.
	var kept []topTrace
	for _, tr := range doc.Traces {
		if tr.Retained == "slow" || tr.Retained == "error" {
			kept = append(kept, tr)
		}
	}
	if len(kept) > n {
		kept = kept[:n]
	}
	return kept
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}
