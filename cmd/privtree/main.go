// Command privtree builds a differentially private spatial decomposition
// from a CSV of points and either dumps the released tree or answers
// range-count queries.
//
// Usage:
//
//	privtree -in points.csv -eps 1.0 -out tree.json
//	privtree -in points.csv -eps 1.0 -query "0.1,0.1,0.4,0.5"
//	privtree -demo -eps 0.5            # run on built-in synthetic data
//
// The CSV has one point per line, d comma-separated coordinates, all in
// [0,1) (use -domain to override). The released tree JSON contains leaf
// regions and noisy counts only — it is safe to publish under the chosen ε.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"privtree"
	"privtree/internal/dp"
	"privtree/internal/synth"
)

func main() {
	var (
		in     = flag.String("in", "", "input CSV of points (one point per line)")
		demo   = flag.Bool("demo", false, "use built-in synthetic road-like data instead of -in")
		eps    = flag.Float64("eps", 1.0, "total privacy budget ε")
		out    = flag.String("out", "", "write the released tree as JSON to this file (default stdout)")
		query  = flag.String("query", "", "answer one range query: comma-separated lo...hi coordinates")
		domain = flag.String("domain", "", "domain as lo...hi coordinates (default unit cube)")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var points []privtree.Point
	var err error
	switch {
	case *demo:
		data := synth.RoadLike(200000, dp.NewRand(*seed))
		points = data.Points
	case *in != "":
		points, err = readCSV(*in)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("either -in or -demo is required"))
	}
	if len(points) == 0 {
		fatal(fmt.Errorf("no points"))
	}
	d := len(points[0])

	dom := privtree.UnitCube(d)
	if *domain != "" {
		coords, err := parseFloats(*domain)
		if err != nil || len(coords) != 2*d {
			fatal(fmt.Errorf("-domain needs %d comma-separated values", 2*d))
		}
		dom = privtree.NewRect(coords[:d], coords[d:])
	}

	tree, err := privtree.BuildSpatial(dom, points, *eps, privtree.SpatialOptions{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "built ε=%g private tree: %d nodes, height %d, n≈%.0f\n",
		*eps, tree.Nodes(), tree.Height(), tree.Total())

	if *query != "" {
		coords, err := parseFloats(*query)
		if err != nil || len(coords) != 2*d {
			fatal(fmt.Errorf("-query needs %d comma-separated values (lo..., hi...)", 2*d))
		}
		q := privtree.NewRect(coords[:d], coords[d:])
		fmt.Printf("%.2f\n", tree.RangeCount(q))
		return
	}

	release := struct {
		Epsilon float64               `json:"epsilon"`
		Total   float64               `json:"total"`
		Leaves  []privtree.LeafRegion `json:"leaves"`
	}{Epsilon: *eps, Total: tree.Total(), Leaves: tree.Leaves()}
	enc, err := json.MarshalIndent(release, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Println(string(enc))
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func readCSV(path string) ([]privtree.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []privtree.Point
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		coords, err := parseFloats(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		out = append(out, coords)
	}
	return out, sc.Err()
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "privtree:", err)
	os.Exit(1)
}
