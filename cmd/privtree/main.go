// Command privtree builds a differentially private spatial decomposition
// from a CSV of points and either dumps the released tree or answers
// range-count queries; its inspect subcommand reads release provenance
// without decoding payloads.
//
// Usage:
//
//	privtree -in points.csv -eps 1.0 -out release.json
//	privtree -in points.csv -eps 1.0 -query "0.1,0.1,0.4,0.5"
//	privtree -in points.csv -eps 1.0 -queries rects.txt   # batch, one rect per line
//	cat rects.txt | privtree -demo -eps 0.5 -queries -    # batch from stdin
//	privtree inspect release.json                         # provenance, no payload decode
//	privtree inspect data/datasets/demo/store/artifacts/*.json
//	privtree verify /var/lib/privtreed                    # offline integrity scrub
//	privtree verify data/datasets/demo/store              # one store directory
//	privtree top -nodes http://a:8080,http://b:8080       # live cluster view
//	privtree top -nodes http://a:8080 -once               # one frame, scriptable
//
// inspect prints each file's kind, mechanism, ε, seed, and params
// fingerprint from the envelope metadata alone — it works on -out files
// and on privtreed store artifacts alike, and succeeds even when the
// payload would be expensive (or too damaged) to decode.
//
// verify scrubs a privtreed data directory (or a single dataset store)
// offline and read-only: WAL frame CRCs and sequence order, snapshot
// integrity, every artifact's bytes against its content-address filename,
// and every committed release against an existing artifact. Every finding
// is printed with its severity; the exit status is non-zero when any
// error-severity finding (real corruption, not benign crash leftovers)
// is present. Run it against a copy or a stopped server — it takes the
// store's exclusive lock, so it refuses to race a live one.
//
// top polls every node's /metrics, /readyz, and /v1/traces planes and
// renders one row per node — role, readiness, request rate, in-flight
// work, ε spend, replica lag, stream freshness — plus the newest
// retained slow/error traces with their IDs, ready to paste into
// `curl <node>/v1/traces/<id>` for the span breakdown. -once renders a
// single frame (no screen clearing) for scripts and tests.
//
// The CSV has one point per line, d comma-separated coordinates, all in
// [0,1) (use -domain to override). A -queries file has one query rectangle
// per line as comma-separated lo...hi coordinates (blank lines and
// #-comments skipped); the whole batch is answered against ONE released
// tree — the privacy cost is the single build's ε no matter how many
// queries follow, since queries are post-processing of the release.
//
// -out writes the release in the library's versioned wire envelope
// ({"privtree_release":1,...}), loadable with privtree.Decode; the default
// stdout dump is a human-readable summary of the released leaves. Both
// contain leaf regions and noisy counts only — safe to publish under the
// chosen ε.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"privtree"
	"privtree/internal/dp"
	"privtree/internal/store"
	"privtree/internal/synth"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "inspect" {
		if err := runInspect(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "verify" {
		if err := runVerify(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		if err := runTop(os.Args[2:], os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	var (
		in      = flag.String("in", "", "input CSV of points (one point per line)")
		demo    = flag.Bool("demo", false, "use built-in synthetic road-like data instead of -in")
		eps     = flag.Float64("eps", 1.0, "total privacy budget ε")
		out     = flag.String("out", "", "write the released tree as JSON to this file (default stdout)")
		query   = flag.String("query", "", "answer one range query: comma-separated lo...hi coordinates")
		queries = flag.String("queries", "", "answer a batch of range queries from this file, one rect per line ('-' for stdin)")
		domain  = flag.String("domain", "", "domain as lo...hi coordinates (default unit cube)")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var points []privtree.Point
	var err error
	switch {
	case *demo:
		data := synth.RoadLike(200000, dp.NewRand(*seed))
		points = data.Points
	case *in != "":
		points, err = readCSV(*in)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("either -in or -demo is required"))
	}
	if len(points) == 0 {
		fatal(fmt.Errorf("no points"))
	}
	if *query != "" && *queries != "" {
		fatal(fmt.Errorf("-query and -queries are mutually exclusive"))
	}
	d := len(points[0])

	dom := privtree.UnitCube(d)
	if *domain != "" {
		r, err := parseRect(*domain, d)
		if err != nil {
			fatal(fmt.Errorf("-domain: %v", err))
		}
		dom = r
	}
	// Parse the single query up front so a bad one fails before the build.
	var singleQ privtree.Rect
	if *query != "" {
		q, err := parseRect(*query, d)
		if err != nil {
			fatal(fmt.Errorf("-query: %v", err))
		}
		singleQ = q
	}

	// The build goes through the registry mechanism so the CLI exercises
	// the same Mechanism → Release path as the server and library callers.
	data, err := privtree.NewSpatialData(dom, points)
	if err != nil {
		fatal(err)
	}
	mech, err := privtree.NewSpatialMechanism(privtree.SpatialOptions{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	rel, err := mech.Run(data, *eps)
	if err != nil {
		fatal(err)
	}
	tree, _ := rel.Spatial()
	fmt.Fprintf(os.Stderr, "built ε=%g private tree: %d nodes, height %d, n≈%.0f\n",
		*eps, tree.Nodes(), tree.Height(), tree.Total())

	if *query != "" {
		fmt.Printf("%.2f\n", tree.RangeCount(singleQ))
		return
	}
	if *queries != "" {
		if err := answerBatch(tree, *queries, d); err != nil {
			fatal(err)
		}
		return
	}

	if *out != "" {
		// The archival format is the versioned envelope: self-describing,
		// records mechanism/ε/params, and loads through privtree.Decode.
		enc, err := json.Marshal(rel)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
		return
	}
	summary := struct {
		Epsilon float64               `json:"epsilon"`
		Total   float64               `json:"total"`
		Leaves  []privtree.LeafRegion `json:"leaves"`
	}{Epsilon: *eps, Total: tree.Total(), Leaves: tree.Leaves()}
	enc, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(enc))
}

// runInspect implements the inspect subcommand: print each file's
// envelope provenance without decoding (or validating) the payload.
func runInspect(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("usage: privtree inspect <release.json> [more files...]")
	}
	failed := 0
	for _, path := range paths {
		blob, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "privtree: %v\n", err)
			failed++
			continue
		}
		info, err := privtree.InspectEnvelope(blob)
		if err != nil {
			fmt.Fprintf(os.Stderr, "privtree: %s: %v\n", path, err)
			failed++
			continue
		}
		if len(paths) > 1 {
			fmt.Printf("%s:\n", path)
		}
		fmt.Printf("  version:       %d\n", info.Version)
		fmt.Printf("  kind:          %s\n", info.Kind)
		if info.Mechanism != "" {
			fmt.Printf("  mechanism:     %s\n", info.Mechanism)
		} else {
			fmt.Printf("  mechanism:     (not recorded)\n")
		}
		if info.Epsilon > 0 {
			fmt.Printf("  epsilon:       %g\n", info.Epsilon)
		} else {
			fmt.Printf("  epsilon:       (not recorded)\n")
		}
		fmt.Printf("  seed:          %d\n", info.Seed)
		if info.Version > 0 {
			fmt.Printf("  fingerprint:   %s\n", info.Fingerprint)
		}
		fmt.Printf("  payload_bytes: %d\n", info.PayloadBytes)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d file(s) failed to inspect", failed, len(paths))
	}
	return nil
}

// runVerify implements the verify subcommand: an offline, read-only
// integrity scrub of either one dataset store directory or a whole
// privtreed data dir (every datasets/*/store under it).
func runVerify(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: privtree verify <data-dir | store-dir>")
	}
	dirs, err := storeDirsUnder(args[0])
	if err != nil {
		return err
	}
	scrubErrors := 0
	for _, dir := range dirs {
		report, err := store.Scrub(dir)
		if err != nil {
			// The scrub could not even run (dir vanished, lock held by a
			// live server): report and keep sweeping the rest.
			fmt.Fprintf(os.Stderr, "privtree: %s: %v\n", dir, err)
			scrubErrors++
			continue
		}
		printReport(report)
		if !report.OK() {
			scrubErrors++
		}
	}
	if scrubErrors > 0 {
		return fmt.Errorf("%d of %d store(s) failed verification", scrubErrors, len(dirs))
	}
	fmt.Printf("OK: %d store(s) verified\n", len(dirs))
	return nil
}

// storeDirsUnder resolves the verify target: a directory holding a
// ledger.wal is itself a store; otherwise it must be a privtreed data dir
// whose datasets/<name>/store children are the stores.
func storeDirsUnder(root string) ([]string, error) {
	if _, err := os.Stat(filepath.Join(root, "ledger.wal")); err == nil {
		return []string{root}, nil
	}
	entries, err := os.ReadDir(filepath.Join(root, "datasets"))
	if err != nil {
		return nil, fmt.Errorf("%s is neither a store directory (no ledger.wal) nor a privtreed data dir (no datasets/): %v", root, err)
	}
	var dirs []string
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(root, "datasets", ent.Name(), "store")
		if _, err := os.Stat(dir); err == nil {
			dirs = append(dirs, dir)
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("%s: no dataset stores found under datasets/", root)
	}
	return dirs, nil
}

func printReport(r *store.ScrubReport) {
	status := "ok"
	if !r.OK() {
		status = "CORRUPT"
	}
	fmt.Printf("%s: %s (%d WAL records, %d commits, %d artifacts verified)\n",
		r.Dir, status, r.WALRecords, r.Commits, r.Artifacts)
	for _, f := range r.Findings {
		fmt.Printf("  [%s] %s: %s\n", f.Severity, f.Path, f.Detail)
	}
}

// answerBatch streams query rectangles from path ('-' = stdin) and prints
// one answer per line, all against the single already-released tree.
func answerBatch(tree *privtree.SpatialTree, path string, d int) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line, answered := 0, 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		q, err := parseRect(text, d)
		if err != nil {
			return fmt.Errorf("queries line %d: %v", line, err)
		}
		fmt.Fprintf(w, "%.2f\n", tree.RangeCount(q))
		answered++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "answered %d queries against one ε-release\n", answered)
	return nil
}

func readCSV(path string) ([]privtree.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []privtree.Point
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		coords, err := parseFloats(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		out = append(out, coords)
	}
	return out, sc.Err()
}

// parseRect parses comma-separated lo...hi coordinates into a validated
// d-dimensional rectangle: it returns errors — never panics — on wrong
// arity, non-finite coordinates, or inverted intervals.
func parseRect(s string, d int) (privtree.Rect, error) {
	coords, err := parseFloats(s)
	if err != nil {
		return privtree.Rect{}, err
	}
	if len(coords) != 2*d {
		return privtree.Rect{}, fmt.Errorf("got %d comma-separated values, want %d (lo..., hi...)", len(coords), 2*d)
	}
	return privtree.MakeRect(coords[:d], coords[d:])
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "privtree:", err)
	os.Exit(1)
}
