package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"privtree"
	"privtree/internal/obs"
	"privtree/internal/server"
	"privtree/internal/store"
)

// This file implements the -micro mode: it measures the repository's core
// micro-benchmarks (spatial build, range-count query, sequence-model
// build, and privtreed batched query throughput) with testing.Benchmark
// and writes the results as machine-readable JSON, so successive PRs can
// diff ns/op, B/op, allocs/op and queries/sec without parsing
// `go test -bench` text output.

// microResult is one benchmark row of BENCH.json.
type microResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// QueriesPerSec is set for batched-query server rows: the end-to-end
	// HTTP throughput of one batch divided by its wall-clock time.
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`
}

// microReport is the top-level BENCH.json document.
type microReport struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []microResult `json:"benchmarks"`
}

// microPoints mirrors the clustered dataset of the package micro-benches:
// 3/4 of the mass in a Gaussian blob, the rest uniform.
func microPoints(n int) []privtree.Point {
	rng := rand.New(rand.NewPCG(100, 200))
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x >= 1 {
			return 0.999999
		}
		return x
	}
	pts := make([]privtree.Point, n)
	for i := range pts {
		if i%4 == 0 {
			pts[i] = privtree.Point{rng.Float64(), rng.Float64()}
		} else {
			pts[i] = privtree.Point{clamp(0.4 + 0.03*rng.NormFloat64()), clamp(0.6 + 0.03*rng.NormFloat64())}
		}
	}
	return pts
}

// microSequences mirrors the sticky-chain clickstreams of the package
// micro-benches.
func microSequences(n int) []privtree.Sequence {
	rng := rand.New(rand.NewPCG(300, 400))
	out := make([]privtree.Sequence, n)
	for i := range out {
		cur := rng.IntN(6)
		var s privtree.Sequence
		for {
			s = append(s, cur)
			if rng.Float64() < 0.3 || len(s) >= 15 {
				break
			}
			cur = (cur + 1) % 6
		}
		out[i] = s
	}
	return out
}

// serverBatchSize is the number of range queries per privtreed batch
// request in the server-throughput benchmark.
const serverBatchSize = 10_000

// serverThroughputCase prepares a live privtreed instance (httptest
// transport, so the measurement includes HTTP, JSON and the goroutine
// fan-out) holding one released tree over the 100k-point dataset, and
// returns a benchmark case that answers a 10k-query batch per iteration.
func serverThroughputCase(pts []privtree.Point) (c struct {
	name string
	fn   func(b *testing.B)
}, batch int, closeFn func(), err error) {
	srv, err := server.New(server.Options{})
	if err != nil {
		return c, 0, nil, err
	}
	d, err := srv.Registry().AddSpatial("bench", privtree.UnitCube(2), pts, 8.0)
	if err != nil {
		return c, 0, nil, err
	}
	rel, _, err := d.Release(server.ReleaseParams{Epsilon: 1.0, Seed: 1}, 0)
	if err != nil {
		return c, 0, nil, err
	}
	ts := httptest.NewServer(srv)

	rng := rand.New(rand.NewPCG(500, 600))
	queries := make([][]float64, serverBatchSize)
	for i := range queries {
		lox, loy := rng.Float64()*0.8, rng.Float64()*0.8
		w, h := 0.02+rng.Float64()*0.18, 0.02+rng.Float64()*0.18
		queries[i] = []float64{lox, loy, lox + w, loy + h}
	}
	body, err := json.Marshal(map[string]any{"queries": queries})
	if err != nil {
		ts.Close()
		return c, 0, nil, err
	}
	url := ts.URL + "/v1/datasets/bench/releases/" + rel.ID + "/query"
	client := ts.Client()

	c.name = "ServerBatch10kQueries"
	c.fn = func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("batch query returned %d", resp.StatusCode)
			}
		}
	}
	return c, serverBatchSize, ts.Close, nil
}

// Saturated-admission benchmark shape: loadClients concurrent posters per
// op against a batch plane pinned to 2 slots + a 2-deep queue, so every
// op exercises admission (including 429 sheds and client-side retries),
// not just the fan-out.
const (
	loadClients   = 8
	loadBatchSize = 2_000
)

// serverBatchUnderLoadCase measures the batch plane while its admission
// gate is saturated: each op fires loadClients concurrent batches at a
// server allowing 2 in flight (+2 queued); the overflow is shed with 429
// and retried until answered. The row therefore prices the full overload
// path — gate accounting, structured shed responses, retry round-trips —
// on top of the query fan-out itself.
func serverBatchUnderLoadCase(pts []privtree.Point) (c struct {
	name string
	fn   func(b *testing.B)
}, closeFn func(), err error) {
	srv, err := server.New(server.Options{
		Workers:              2,
		MaxConcurrentBatches: 2,
		AdmissionQueue:       2,
	})
	if err != nil {
		return c, nil, err
	}
	d, err := srv.Registry().AddSpatial("bench-load", privtree.UnitCube(2), pts, 8.0)
	if err != nil {
		return c, nil, err
	}
	rel, _, err := d.Release(server.ReleaseParams{Epsilon: 1.0, Seed: 1}, 0)
	if err != nil {
		return c, nil, err
	}
	ts := httptest.NewServer(srv)

	rng := rand.New(rand.NewPCG(700, 800))
	queries := make([][]float64, loadBatchSize)
	for i := range queries {
		lox, loy := rng.Float64()*0.8, rng.Float64()*0.8
		w, h := 0.02+rng.Float64()*0.18, 0.02+rng.Float64()*0.18
		queries[i] = []float64{lox, loy, lox + w, loy + h}
	}
	body, err := json.Marshal(map[string]any{"queries": queries})
	if err != nil {
		ts.Close()
		return c, nil, err
	}
	url := ts.URL + "/v1/datasets/bench-load/releases/" + rel.ID + "/query"
	client := ts.Client()

	c.name = "ServerBatchUnderLoad"
	c.fn = func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for w := 0; w < loadClients; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Shed responses retry after a short spin: the admission
					// decision is instantaneous, and honoring the wire's
					// 1-second Retry-After here would measure sleep, not code.
					for {
						resp, err := client.Post(url, "application/json", bytes.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						switch resp.StatusCode {
						case http.StatusOK:
							return
						case http.StatusTooManyRequests:
							time.Sleep(200 * time.Microsecond)
						default:
							b.Errorf("batch under load returned %d", resp.StatusCode)
							return
						}
					}
				}()
			}
			wg.Wait()
		}
	}
	return c, ts.Close, nil
}

// Streaming-plane rows: IngestAppend prices one HTTP ingest batch
// end-to-end (pooled columnar decode, validation, slab append) against a
// live streaming dataset with no persistence, so the number is the
// codec-and-apply cost rather than the runner's fsync latency.
// StreamRelease10Epochs prices a full continual-release cycle: ten
// ingest-and-seal rounds, each sealing a 100-point epoch into a released
// tree through the epoch pipeline (freeze, debit, build, window advance).
const (
	ingestRowsPerOp   = 100
	streamEpochsPerOp = 10
)

func streamingBenchCases() (cases []struct {
	name string
	fn   func(b *testing.B)
}, closeFn func(), err error) {
	srv, err := server.New(server.Options{Workers: 1})
	if err != nil {
		return nil, nil, err
	}
	ts := httptest.NewServer(srv)
	client := ts.Client()
	register := func(name string) error {
		blob, err := json.Marshal(map[string]any{
			// A budget deep enough that the sealing row never exhausts it,
			// whatever b.N the harness picks.
			"name": name, "epsilon": 1e12,
			"domain": map[string]any{"lo": []float64{0, 0}, "hi": []float64{1, 1}},
			"stream": map[string]any{"epoch_epsilon": 0.125, "window": 5, "seed": 1},
		})
		if err != nil {
			return err
		}
		resp, err := client.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(blob))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("registering %s: %d", name, resp.StatusCode)
		}
		return nil
	}
	if err := register("bench-ingest"); err != nil {
		ts.Close()
		return nil, nil, err
	}
	if err := register("bench-epochs"); err != nil {
		ts.Close()
		return nil, nil, err
	}

	rng := rand.New(rand.NewPCG(900, 1000))
	rows := make([][]float64, ingestRowsPerOp)
	for i := range rows {
		rows[i] = []float64{rng.Float64(), rng.Float64()}
	}
	appendBody, err := json.Marshal(map[string]any{"points": rows})
	if err != nil {
		ts.Close()
		return nil, nil, err
	}
	sealBody, err := json.Marshal(map[string]any{"points": rows, "seal": true})
	if err != nil {
		ts.Close()
		return nil, nil, err
	}
	post := func(b *testing.B, name string, body []byte) {
		resp, err := client.Post(ts.URL+"/v1/datasets/"+name+"/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("ingest returned %d", resp.StatusCode)
		}
	}
	cases = append(cases,
		struct {
			name string
			fn   func(b *testing.B)
		}{"IngestAppend", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				post(b, "bench-ingest", appendBody)
			}
		}},
		struct {
			name string
			fn   func(b *testing.B)
		}{"StreamRelease10Epochs", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for e := 0; e < streamEpochsPerOp; e++ {
					post(b, "bench-epochs", sealBody)
				}
			}
		}},
	)
	return cases, ts.Close, nil
}

// runMicro measures the micro-benchmarks and writes BENCH.json to outPath.
// When comparePath is non-empty, the fresh run is additionally gated
// against that baseline (see compareReports) and an error is returned on
// regression.
func runMicro(outPath, comparePath string, nsHeadroom float64) error {
	dom := privtree.UnitCube(2)
	pts100k := microPoints(100_000)
	seqs := microSequences(20_000)

	queryTree, err := privtree.BuildSpatial(dom, pts100k, 1.0, privtree.SpatialOptions{Seed: 1})
	if err != nil {
		return err
	}
	q := privtree.NewRect(privtree.Point{0.2, 0.2}, privtree.Point{0.6, 0.6})
	queryModel, err := privtree.BuildSequenceModel(6, seqs, 1.0, privtree.SequenceOptions{MaxLength: 20, Seed: 1})
	if err != nil {
		return err
	}

	// A released artifact for the wire-envelope rows: Workers pinned to 1
	// and a fixed seed, so encode/decode allocs/op are machine-independent.
	envData, err := privtree.NewSpatialData(dom, pts100k)
	if err != nil {
		return err
	}
	envMech, err := privtree.NewSpatialMechanism(privtree.SpatialOptions{Seed: 1, Workers: 1})
	if err != nil {
		return err
	}
	envRelease, err := envMech.Run(envData, 1.0)
	if err != nil {
		return err
	}
	envBlob, err := json.Marshal(envRelease)
	if err != nil {
		return err
	}
	// Warm encoding/json's type caches so their one-time allocations don't
	// leak ±1 into the exact allocs/op gate at low iteration counts.
	if _, err := privtree.Decode(envBlob); err != nil {
		return err
	}

	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BuildSpatial100k", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := privtree.BuildSpatial(dom, pts100k, 1.0, privtree.SpatialOptions{Seed: uint64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"RangeCount", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				queryTree.RangeCount(q)
			}
		}},
		// Workers is pinned to 1 and the seed is fixed so allocs/op is
		// byte-deterministic regardless of machine or iteration count (a
		// per-iteration seed builds different-sized trees, shifting the
		// mean with b.N) — the zero-headroom CI allocs gate needs an exact
		// number.
		{"BuildSequenceModel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := privtree.BuildSequenceModel(6, seqs, 1.0, privtree.SequenceOptions{MaxLength: 20, Seed: 1, Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"EstimateFrequency", func(b *testing.B) {
			b.ReportAllocs()
			queries := []privtree.Sequence{{0}, {2, 3}, {5, 0, 1}, {1, 2, 3, 4}}
			for i := 0; i < b.N; i++ {
				queryModel.EstimateFrequency(queries[i%len(queries)])
			}
		}},
		{"TopK20x5", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				queryModel.TopK(20, 5)
			}
		}},
		{"EnvelopeEncode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := json.Marshal(envRelease); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"EnvelopeDecode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := privtree.Decode(envBlob); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// MetricsOverhead prices everything the observability plane adds to
		// one served request: a fresh trace with one timed span plus its ID
		// render (the X-Trace-Id header), the per-route request counter and
		// latency histogram, and the sliding throughput window. The counter,
		// histogram, and window observations are allocation-free by guard
		// test (internal/obs); the handful of allocations here is the trace
		// object itself, so the gate keeps per-request instrumentation cost
		// pinned.
		{"MetricsOverhead", func(b *testing.B) {
			reg := obs.NewRegistry()
			lbl := obs.Label{Name: "route", Value: "query"}
			reqs := reg.Counter("privtree_bench_requests_total", "bench: per-route requests.", lbl)
			lat := reg.Histogram("privtree_bench_request_seconds", "bench: per-route latency.", nil, lbl)
			win := obs.NewWindow()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := obs.NewTrace()
				_ = tr.ID()
				span := tr.Begin("build")
				reqs.Inc()
				win.Add(1)
				span.End()
				lat.Observe(2.5e-4)
			}
		}},
		// TraceRecord prices the flight recorder's retention decision plus
		// the ring write for one completed request (sampleN=1, so every op
		// takes the full copy path). The ring is warmed first because slot
		// span storage is reused in place: the steady state the gate pins
		// is allocation-free, exactly like the rest of the request-path
		// instrumentation.
		{"TraceRecord", func(b *testing.B) {
			rec := obs.NewFlightRecorder(512, 0, 1)
			tr := obs.NewTrace()
			for _, stage := range []string{"debit", "build", "wal_commit"} {
				sp := tr.Begin(stage)
				sp.End()
			}
			start := time.Now()
			for i := 0; i < 600; i++ { // fill every slot's span storage
				rec.Record(tr, "create_release", "bench", 200, start, time.Millisecond)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec.Record(tr, "create_release", "bench", 200, start, time.Millisecond)
			}
		}},
		// FlightRecorderLookup prices a trace pull from a full 512-slot
		// ring — the /v1/traces/{id} hot cost. The scan visits every slot
		// (duplicate IDs from retried calls mean it cannot early-exit) and
		// the hit is deep-copied, so the op is a full scan plus one span
		// clone.
		{"FlightRecorderLookup", func(b *testing.B) {
			rec := obs.NewFlightRecorder(512, 0, 1)
			start := time.Now()
			fill := func(id string) {
				tr := obs.NewTraceWithID(id)
				sp := tr.Begin("build")
				sp.End()
				rec.Record(tr, "create_release", "bench", 200, start, time.Millisecond)
			}
			for i := 0; i < 511; i++ {
				fill(fmt.Sprintf("bench-filler-%04d", i))
			}
			fill("bench-lookup-target")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := rec.Lookup("bench-lookup-target"); !ok {
					b.Fatal("lookup missed")
				}
			}
		}},
	}

	// Store rows: the durable-debit hot path (WAL append + fsync — the
	// latency every release pays before its mechanism may run) and a
	// 10k-record sequential recovery (the restart cost per dataset).
	storeDir, err := os.MkdirTemp("", "privtree-bench-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	debitStore, err := store.Open(filepath.Join(storeDir, "debit"))
	if err != nil {
		return err
	}
	defer debitStore.Close()
	recoverDir := filepath.Join(storeDir, "recover")
	seedStore, err := store.Open(recoverDir)
	if err != nil {
		return err
	}
	for i := 0; i < 10_000; i++ {
		if err := seedStore.AppendDebit(1e-9, "bench-debit"); err != nil {
			return err
		}
	}
	if err := seedStore.Close(); err != nil {
		return err
	}
	cases = append(cases,
		struct {
			name string
			fn   func(b *testing.B)
		}{"StoreDebit", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := debitStore.AppendDebit(1e-9, "bench-debit"); err != nil {
					b.Fatal(err)
				}
			}
		}},
		struct {
			name string
			fn   func(b *testing.B)
		}{"StoreRecover10k", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := store.Open(recoverDir)
				if err != nil {
					b.Fatal(err)
				}
				if n := len(st.Events()); n != 10_000 {
					b.Fatalf("recovered %d events, want 10000", n)
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}},
	)

	serverCase, _, closeServer, err := serverThroughputCase(pts100k)
	if err != nil {
		return err
	}
	defer closeServer()
	cases = append(cases, serverCase)

	loadCase, closeLoad, err := serverBatchUnderLoadCase(pts100k)
	if err != nil {
		return err
	}
	defer closeLoad()
	cases = append(cases, loadCase)

	ccCases, closeCluster, err := clusterCases()
	if err != nil {
		return err
	}
	defer closeCluster()
	cases = append(cases, ccCases...)

	streamCases, closeStream, err := streamingBenchCases()
	if err != nil {
		return err
	}
	defer closeStream()
	cases = append(cases, streamCases...)

	// batchedQueries maps throughput rows to the number of end-to-end
	// queries answered per op, so each gets a queries/sec figure.
	batchedQueries := map[string]float64{
		serverCase.name:       serverBatchSize,
		loadCase.name:         loadClients * loadBatchSize,
		"ClusterBatchOneNode": clusterReaders * clusterBatchSize,
		"ClusterBatch":        clusterReaders * clusterBatchSize,
	}

	report := microReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, c := range cases {
		r := testing.Benchmark(c.fn)
		row := microResult{
			Name:        c.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if q := batchedQueries[c.name]; q > 0 {
			row.QueriesPerSec = q / (row.NsPerOp / 1e9)
		}
		report.Benchmarks = append(report.Benchmarks, row)
		fmt.Printf("%-24s %12.0f ns/op %12d B/op %10d allocs/op",
			c.name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
		if row.QueriesPerSec > 0 {
			fmt.Printf(" %12.0f queries/s", row.QueriesPerSec)
		}
		fmt.Println()
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	if comparePath != "" {
		return compareReports(report, comparePath, nsHeadroom)
	}
	return nil
}

// guardedBenchmarks are the rows the regression gate enforces. Most run
// serially on fixed inputs, so allocs/op is exact and machine
// independent; ns/op is gated with 25% headroom. The build benchmarks
// with machine-dependent parallel fan-out (BuildSpatial100k, the clean
// server throughput row) are tracked in BENCH.json but not gated.
// ServerBatchUnderLoad is gated despite being concurrent — it exists to
// catch regressions in the admission/shed path — with a wide allocs
// slack to absorb its scheduling variance.
var guardedBenchmarks = map[string]bool{
	"RangeCount":            true,
	"BuildSequenceModel":    true,
	"EstimateFrequency":     true,
	"TopK20x5":              true,
	"EnvelopeEncode":        true,
	"EnvelopeDecode":        true,
	"MetricsOverhead":       true,
	"TraceRecord":           true,
	"FlightRecorderLookup":  true,
	"StoreDebit":            true,
	"StoreRecover10k":       true,
	"ServerBatchUnderLoad":  true,
	"IngestAppend":          true,
	"StreamRelease10Epochs": true,
}

// allocsSlack loosens the exact allocs/op gate for benchmarks whose op
// rides encoding/json: its pooled scanner states make the count
// nondeterministic by a hair (GC timing decides pool hits), while a real
// regression on these ~10k-alloc ops would move the number by far more.
var allocsSlack = map[string]int64{
	"EnvelopeEncode": 2,
	"EnvelopeDecode": 2,
	// The store rows touch the filesystem: the WAL append itself is
	// allocation-free in steady state, but file-handle plumbing (and, for
	// recovery, map growth over 10k events) can wobble by a handful of
	// allocations between runs.
	"StoreDebit":      2,
	"StoreRecover10k": 64,
	// The under-load row is deliberately concurrent: 8 clients racing an
	// admission gate means the number of sheds (each a full HTTP
	// round-trip) varies run to run. The slack absorbs scheduling
	// variance; a real regression (per-request allocations in the
	// admission or shed path) multiplies across 8 clients and blows
	// straight through it.
	"ServerBatchUnderLoad": 2048,
	// IngestAppend rides HTTP + encoding/json on the response side and an
	// amortized slab append; pool hits and slab doublings wobble by a few
	// allocations per op.
	"IngestAppend": 64,
	// Each op seals ten epochs whose trees depend on per-epoch noise
	// draws (the derived seed advances every seal), so split counts — and
	// with them allocations — can drift a little run to run around the
	// ~1.8k baseline. A per-row leak on a 10-build op clears this easily.
	"StreamRelease10Epochs": 256,
}

// nsExempt marks guarded rows whose ns/op is dominated by latency the
// code doesn't control — fsync for StoreDebit (a property of the disk
// under the runner), a single loopback HTTP round trip for IngestAppend
// (~100µs/op, where scheduler jitter alone swings runs past any sane
// headroom) — so the gate enforces only their (deterministic) allocs/op.
// StoreRecover10k stays ns-gated: recovery is parse-bound and reads the
// page cache. StreamRelease10Epochs stays ns-gated too: ten tree builds
// dominate its ~2ms op, amortizing the per-request jitter.
var nsExempt = map[string]bool{
	"StoreDebit":   true,
	"IngestAppend": true,
}

// compareReports gates a fresh micro run against a committed baseline:
// any allocs/op increase, or a ns/op regression beyond the headroom
// factor (default 1.25), on a guarded benchmark fails the run. The
// allocs/op gate is exact and machine-independent; the ns/op gate
// compares absolute times, so when the baseline was recorded on different
// hardware, widen -ns-headroom (or regenerate BENCH.json on the gating
// machine) rather than chasing phantom regressions.
func compareReports(fresh microReport, baselinePath string, nsHeadroom float64) error {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var baseline microReport
	if err := json.Unmarshal(blob, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	base := make(map[string]microResult, len(baseline.Benchmarks))
	for _, row := range baseline.Benchmarks {
		base[row.Name] = row
	}
	var violations []string
	for _, row := range fresh.Benchmarks {
		if !guardedBenchmarks[row.Name] {
			continue
		}
		b, ok := base[row.Name]
		if !ok {
			continue // new benchmark: nothing to regress against
		}
		if row.AllocsPerOp > b.AllocsPerOp+allocsSlack[row.Name] {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op %d > baseline %d (+%d slack)", row.Name, row.AllocsPerOp, b.AllocsPerOp, allocsSlack[row.Name]))
		}
		if !nsExempt[row.Name] && row.NsPerOp > b.NsPerOp*nsHeadroom {
			violations = append(violations, fmt.Sprintf(
				"%s: ns/op %.0f > baseline %.0f ×%.2f (same hardware? see -ns-headroom)",
				row.Name, row.NsPerOp, b.NsPerOp, nsHeadroom))
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "bench regression: %s\n", v)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(violations), baselinePath)
	}
	fmt.Printf("no regressions against %s\n", baselinePath)
	return nil
}
