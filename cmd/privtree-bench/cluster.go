package main

import (
	"bufio"
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"privtree/client"
	"privtree/internal/server"
)

// This file implements the multi-process cluster benchmark: a primary
// and a log-shipping replica run as real child processes (each with its
// own data directory, WAL, and HTTP listener), and a cluster client
// round-robins read batches across them. Two rows land in BENCH.json:
//
//	ClusterBatchOneNode  — all readers pinned to the primary
//	ClusterBatch         — readers round-robin primary + replica
//
// Comparing the two queries/sec figures shows what a second serving
// process buys for the read plane, and the answer is machine-honest
// because every node runs with Workers=1 and its default admission
// limits: four concurrent readers overrun one node's batch-admission
// plane (sheds and retry round-trips dominate), while two nodes absorb
// the same offered load — so the cluster row scales even on a
// single-CPU host, where the win is admission capacity rather than
// compute. On a multi-core host the extra process adds both. Neither
// row is regression-gated: wall-clock here depends on scheduling and
// retry timing, not on any code path the gate should pin.

// Child-mode environment: when PRIVTREE_BENCH_SERVE_NODE=1, the binary
// becomes one serving node instead of the benchmark driver.
const (
	serveNodeEnv      = "PRIVTREE_BENCH_SERVE_NODE"
	serveNodeDirEnv   = "PRIVTREE_BENCH_DATA_DIR"
	serveNodeUpstream = "PRIVTREE_BENCH_REPLICA_OF"
)

const (
	clusterReaders   = 4
	clusterBatchSize = 2_000
	clusterPoints    = 50_000
)

// serveNode runs the binary as one cluster node: a privtreed-equivalent
// server on a kernel-assigned port, printing "ADDR http://..." so the
// parent can find it. It serves until the parent kills the process.
func serveNode() {
	opts := server.Options{
		DataDir: os.Getenv(serveNodeDirEnv),
		Workers: 1,
	}
	if up := os.Getenv(serveNodeUpstream); up != "" {
		opts.ReplicaOf = up
		opts.ReplicaPoll = 25 * time.Millisecond
	}
	srv, err := server.New(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "privtree-bench serve-node: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "privtree-bench serve-node: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR http://%s\n", ln.Addr())
	if err := http.Serve(ln, srv); err != nil {
		fmt.Fprintf(os.Stderr, "privtree-bench serve-node: %v\n", err)
		os.Exit(1)
	}
}

// startNode launches one serve-node child and returns its base URL.
func startNode(dir, replicaOf string) (*exec.Cmd, string, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, "", err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		serveNodeEnv+"=1",
		serveNodeDirEnv+"="+dir,
		serveNodeUpstream+"="+replicaOf,
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
				addrCh <- rest
				return
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			_ = cmd.Process.Kill()
			return nil, "", fmt.Errorf("serve-node child exited before printing its address")
		}
		return cmd, addr, nil
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, "", fmt.Errorf("serve-node child did not print its address within 30s")
	}
}

// clusterCases builds the two read-scaling benchmark rows. It spawns the
// primary, registers and releases one spatial dataset over HTTP, spawns
// a replica, waits for it to report ready (fully caught up), and returns
// cases that answer clusterReaders concurrent query batches per op.
func clusterCases() (cases []struct {
	name string
	fn   func(b *testing.B)
}, closeFn func(), err error) {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "privtree-bench-cluster-")
	if err != nil {
		return nil, nil, err
	}
	var procs []*exec.Cmd
	cleanup := func() {
		for _, p := range procs {
			_ = p.Process.Kill()
			_, _ = p.Process.Wait()
		}
		os.RemoveAll(dir)
	}
	fail := func(err error) ([]struct {
		name string
		fn   func(b *testing.B)
	}, func(), error) {
		cleanup()
		return nil, nil, err
	}

	primary, primaryURL, err := startNode(dir+"/primary", "")
	if err != nil {
		return fail(err)
	}
	procs = append(procs, primary)

	cc := client.New(primaryURL)
	if _, err := cc.Register(ctx, client.RegisterRequest{
		Name: "cluster", Epsilon: 8.0,
		Synthetic: &client.Synthetic{Generator: "road", N: clusterPoints, Seed: 1},
	}); err != nil {
		return fail(fmt.Errorf("registering cluster dataset: %w", err))
	}
	rel, err := cc.CreateRelease(ctx, "cluster", client.ReleaseParams{Epsilon: 1.0, Seed: 1})
	if err != nil {
		return fail(fmt.Errorf("releasing cluster dataset: %w", err))
	}

	replica, replicaURL, err := startNode(dir+"/replica", primaryURL)
	if err != nil {
		return fail(err)
	}
	procs = append(procs, replica)
	rc := client.New(replicaURL)
	deadline := time.Now().Add(30 * time.Second)
	for rc.Ready(ctx) != nil {
		if time.Now().After(deadline) {
			return fail(fmt.Errorf("replica did not catch up within 30s"))
		}
		time.Sleep(20 * time.Millisecond)
	}

	rng := rand.New(rand.NewPCG(900, 1000))
	req := client.QueryRequest{Queries: make([][]float64, clusterBatchSize)}
	for i := range req.Queries {
		lox, loy := rng.Float64()*0.8, rng.Float64()*0.8
		w, h := 0.02+rng.Float64()*0.18, 0.02+rng.Float64()*0.18
		req.Queries[i] = []float64{lox, loy, lox + w, loy + h}
	}

	mkCase := func(name string, endpoints []string) (c struct {
		name string
		fn   func(b *testing.B)
	}) {
		c.name = name
		c.fn = func(b *testing.B) {
			cl, err := client.NewCluster(endpoints)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for r := 0; r < clusterReaders; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						res, err := cl.Query(ctx, "cluster", rel.ID, req)
						if err != nil {
							b.Error(err)
							return
						}
						if res.Queries != clusterBatchSize {
							b.Errorf("cluster batch answered %d queries, want %d", res.Queries, clusterBatchSize)
						}
					}()
				}
				wg.Wait()
			}
		}
		return c
	}
	cases = append(cases,
		mkCase("ClusterBatchOneNode", []string{primaryURL}),
		mkCase("ClusterBatch", []string{primaryURL, replicaURL}),
	)
	return cases, cleanup, nil
}
