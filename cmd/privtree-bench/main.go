// Command privtree-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	privtree-bench -exp fig5 [-scale 0.1] [-reps 5] [-queries 400] [-eps 0.05,0.1,...] [-seed N]
//	privtree-bench -exp all        # every experiment at the configured scale
//	privtree-bench -list           # list experiment ids
//	privtree-bench -micro [-benchout BENCH.json]   # core micro-benchmarks as JSON
//	privtree-bench -micro -compare BENCH.json      # gate a fresh run against the committed baseline
//
// Experiment ids follow DESIGN.md §3: fig2, tab2, fig5, tab3, fig6, fig7,
// lem51, tab4, fig8, fig9, fig10, fig11, fig12, lem32, abl-bias, abl-split,
// abl-theta, abl-depth.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"privtree/internal/experiments"
)

func main() {
	// Child mode for the multi-process cluster benchmark: the -micro
	// driver re-execs this binary as serving nodes (a primary and a
	// log-shipping replica) so the ClusterBatch rows measure real
	// process-per-node read scaling, not goroutines sharing one heap.
	if os.Getenv(serveNodeEnv) == "1" {
		serveNode()
		return
	}

	var (
		exp      = flag.String("exp", "", "experiment id (see -list)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		scale    = flag.Float64("scale", 0.1, "fraction of the paper's dataset cardinalities (1.0 = full size)")
		reps     = flag.Int("reps", 5, "repetitions per configuration (paper: 100)")
		queries  = flag.Int("queries", 400, "queries per query set (paper: 10000)")
		seed     = flag.Uint64("seed", 0, "random seed (0 = default)")
		epsList  = flag.String("eps", "", "comma-separated ε sweep (default: paper's 0.05..1.6)")
		ds       = flag.String("dataset", "road", "dataset for single-dataset experiments (lem32, ablations)")
		micro    = flag.Bool("micro", false, "run the core micro-benchmarks and write machine-readable results")
		benchOut = flag.String("benchout", "BENCH.json", "output path for -micro results")
		compare  = flag.String("compare", "", "baseline BENCH.json to gate -micro against: fail on ns/op regression beyond -ns-headroom or any allocs/op regression on guarded benchmarks")
		headroom = flag.Float64("ns-headroom", 1.25, "ns/op regression factor tolerated by -compare (raise when the baseline was measured on different hardware)")
	)
	flag.Parse()

	if *micro {
		if err := runMicro(*benchOut, *compare, *headroom); err != nil {
			fmt.Fprintf(os.Stderr, "privtree-bench: micro benchmarks failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ids := []string{
		"fig2", "tab2", "fig5", "tab3", "fig6", "fig7", "lem51", "tab4",
		"fig8", "fig9", "fig10", "fig11", "fig12", "lem32",
		"abl-bias", "abl-split", "abl-theta", "abl-depth", "abl-kd", "abl-consist",
	}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "privtree-bench: -exp is required (try -list)")
		os.Exit(2)
	}

	cfg := experiments.Config{
		Out:     os.Stdout,
		Scale:   *scale,
		Reps:    *reps,
		Queries: *queries,
		Seed:    *seed,
	}
	if *epsList != "" {
		for _, part := range strings.Split(*epsList, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "privtree-bench: bad -eps entry %q: %v\n", part, err)
				os.Exit(2)
			}
			cfg.Epsilons = append(cfg.Epsilons, v)
		}
	}

	run := func(id string) {
		switch id {
		case "fig2":
			experiments.Fig2(cfg)
		case "tab2":
			experiments.Table2(cfg)
		case "fig5":
			experiments.Fig5(cfg)
		case "tab3":
			experiments.Table3(cfg)
		case "fig6":
			experiments.Fig6(cfg)
		case "fig7":
			experiments.Fig7(cfg)
		case "lem51":
			experiments.SVTViolation(cfg, 0.5)
		case "tab4":
			experiments.Table4Spatial(cfg)
			experiments.Table4Sequence(cfg)
		case "fig8":
			experiments.Fig8(cfg)
		case "fig9":
			experiments.Fig9(cfg)
		case "fig10":
			experiments.Fig10(cfg)
		case "fig11":
			experiments.Fig11(cfg)
		case "fig12":
			experiments.Fig12(cfg)
		case "lem32":
			experiments.Lemma32Check(cfg, *ds, 1.0)
		case "abl-bias":
			experiments.AblBias(cfg, *ds)
		case "abl-split":
			experiments.AblSplit(cfg, *ds)
		case "abl-theta":
			experiments.AblTheta(cfg, *ds)
		case "abl-depth":
			experiments.AblDepth(cfg)
		case "abl-kd":
			experiments.AblKD(cfg, *ds)
		case "abl-consist":
			experiments.AblConsistency(cfg, *ds)
		default:
			fmt.Fprintf(os.Stderr, "privtree-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
	}

	if *exp == "all" {
		for _, id := range ids {
			run(id)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(id))
	}
}
