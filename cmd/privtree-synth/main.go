// Command privtree-synth emits the synthetic stand-in datasets used by the
// benchmark harness, as CSV (spatial: one point per line; sequence: one
// space-separated symbol sequence per line). It exists so the generated
// data can be inspected, plotted, or fed to other implementations for
// cross-validation.
//
// Usage:
//
//	privtree-synth -dataset road -n 100000 > road.csv
//	privtree-synth -dataset mooc -n 5000 -seed 7 > mooc.txt
//	privtree-synth -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"privtree/internal/dp"
	"privtree/internal/synth"
)

func main() {
	var (
		name = flag.String("dataset", "", "road | gowalla | nyc | beijing | mooc | msnbc")
		n    = flag.Int("n", 0, "cardinality (0 = the paper's full size)")
		seed = flag.Uint64("seed", 1, "random seed")
		list = flag.Bool("list", false, "list dataset names and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range synth.SpatialSpecs() {
			fmt.Printf("%-8s spatial   d=%d  paper n=%d\n", s.Name, s.Dim, s.N)
		}
		for _, s := range synth.SequenceSpecs() {
			fmt.Printf("%-8s sequence  |I|=%d paper n=%d l⊤=%d\n", s.Name, s.AlphabetSize, s.N, s.LTop)
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	rng := dp.NewRand(*seed)

	for _, s := range synth.SpatialSpecs() {
		if s.Name != *name {
			continue
		}
		size := *n
		if size == 0 {
			size = s.N
		}
		data := synth.SpatialByName(*name, size, rng)
		for _, p := range data.Points {
			for i, c := range p {
				if i > 0 {
					w.WriteByte(',')
				}
				w.WriteString(strconv.FormatFloat(c, 'g', -1, 64))
			}
			w.WriteByte('\n')
		}
		return
	}
	for _, s := range synth.SequenceSpecs() {
		if s.Name != *name {
			continue
		}
		size := *n
		if size == 0 {
			size = s.N
		}
		data := synth.SequenceByName(*name, size, rng)
		for _, seq := range data.Seqs {
			for i, x := range seq.Syms {
				if i > 0 {
					w.WriteByte(' ')
				}
				w.WriteString(strconv.Itoa(int(x)))
			}
			w.WriteByte('\n')
		}
		return
	}
	fmt.Fprintf(os.Stderr, "privtree-synth: unknown dataset %q (try -list)\n", *name)
	os.Exit(2)
}
