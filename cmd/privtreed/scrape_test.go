package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"privtree/internal/obs"
)

// TestDaemonScrape is the end-to-end exposition check: build the real
// privtreed binary, run it, drive traffic, and require that GET /metrics
// from the live process is strictly valid exposition — including the
// exemplar syntax on latency-histogram buckets — and that an exemplar's
// trace ID resolves via the daemon's own /v1/traces plane. This is what
// a real Prometheus scrape plus an on-call trace pull sees, not an
// httptest shortcut.
func TestDaemonScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	if runtime.GOOS == "windows" {
		t.Skip("relies on SIGTERM")
	}
	bin := filepath.Join(t.TempDir(), "privtreed")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Reserve a port, release it, and hand it to the daemon.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr

	var logs bytes.Buffer
	cmd := exec.Command(bin,
		"-addr", addr,
		"-data-dir", t.TempDir(),
		"-trace-sample", "1", // retain everything: the exemplar must resolve
		"-drain", "2s",
	)
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy; logs:\n%s", logs.String())
		}
		time.Sleep(25 * time.Millisecond)
	}

	post := func(path, body string, want int) {
		t.Helper()
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	post("/v1/datasets", `{"name":"demo","epsilon":1.0,"synthetic":{"generator":"road","n":2000,"seed":1}}`, http.StatusCreated)
	post("/v1/datasets/demo/releases", `{"epsilon":0.25,"seed":7}`, http.StatusCreated)

	// The scrape: strictly valid exposition, exemplars included.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("live /metrics is not strictly valid exposition: %v\n%s", err, raw)
	}
	var exID string
	for _, s := range samples {
		if s.Name == "privtree_http_request_seconds_bucket" &&
			s.Labels["route"] == "create_release" && s.Exemplar != nil {
			exID = s.Exemplar.Labels["trace_id"]
		}
	}
	if !obs.ValidTraceID(exID) {
		t.Fatalf("no resolvable exemplar on the create_release latency histogram:\n%s", raw)
	}

	// The exemplar's trace ID resolves against the live trace plane.
	trResp, err := client.Get(base + "/v1/traces/" + exID)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Route string `json:"route"`
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	err = json.NewDecoder(trResp.Body).Decode(&rec)
	code := trResp.StatusCode
	trResp.Body.Close()
	if err != nil || code != http.StatusOK || rec.Route != "create_release" {
		t.Fatalf("exemplar trace %s did not resolve: status %d err %v rec %+v", exID, code, err, rec)
	}
	names := make([]string, len(rec.Spans))
	for i, sp := range rec.Spans {
		names[i] = sp.Name
	}
	if !strings.Contains(fmt.Sprint(names), "debit") {
		t.Fatalf("resolved trace has no debit span: %v", names)
	}

	// Clean shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v\nlogs:\n%s", err, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon ignored SIGTERM; logs:\n%s", logs.String())
	}
}
