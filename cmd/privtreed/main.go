// Command privtreed serves differentially private releases over HTTP: a
// multi-tenant dataset registry with a per-dataset privacy-budget
// accountant, a release cache, and batched range-count / frequency query
// endpoints (see internal/server for the API).
//
// Usage:
//
//	privtreed -addr :8181
//	privtreed -addr :8181 -data-dir /var/lib/privtreed  # crash-safe budgets + releases
//	privtreed -addr :8181 -workers 8 -max-batch 1048576
//	privtreed -addr :8181 -max-builds 4 -build-timeout 10s  # overload knobs
//	privtreed -addr :8181 -pprof-addr localhost:6060   # opt-in net/http/pprof
//	privtreed -addr :8182 -data-dir /var/lib/privtreed-r1 -replica-of http://primary:8181  # read replica
//	privtreed -addr :8181 -slow-request 250ms -log-format json  # observability knobs
//	privtreed -addr :8181 -trace-retain 1024 -trace-slow 100ms -trace-sample 50  # flight recorder
//
// With -data-dir, every dataset's privacy ledger is write-ahead logged
// (fsync before the mechanism runs) and every release envelope is stored
// content-addressed, so a restart with the same -data-dir resumes with
// identical budget state and bit-identical cached artifacts. Without it,
// a restart forgets all spent ε — unacceptable when untrusted parties
// can make the process restart.
//
// Quick tour against a running server:
//
//	curl -s localhost:8181/v1/datasets -d '{"name":"demo","epsilon":1.0,"synthetic":{"generator":"road","n":200000,"seed":1}}'
//	curl -s localhost:8181/v1/datasets/demo/releases -d '{"epsilon":0.5,"seed":7}'
//	curl -s localhost:8181/v1/datasets/demo/releases/r1/query -d '{"queries":[[0.1,0.1,0.4,0.5]]}'
//	curl -s localhost:8181/v1/datasets/demo/audit   # ε accounting history with trace IDs
//	curl -s localhost:8181/metrics    # Prometheus text exposition, exemplars on latency buckets
//	curl -s localhost:8181/metricsz   # operational counters as JSON
//	curl -s localhost:8181/v1/traces?route=create_release   # retained traces, newest first
//	curl -s localhost:8181/v1/traces/<trace-id>             # one trace's span breakdown
//
// Every response carries an X-Trace-Id header (a well-formed inbound one
// is adopted, so callers can stamp their own); the flight recorder keeps
// every error, everything slower than -trace-slow, and 1-in--trace-sample
// of normal traffic, ring-buffered to the newest -trace-retain traces.
//
// Streaming datasets (registered with a "stream" spec instead of inline
// data) accept appends at POST /v1/datasets/{name}/ingest — journaled
// before acknowledgment, idempotent by batch_seq — and seal epochs by
// count (seal_every), wall clock (interval_ms), or an explicit
// {"seal":true}; the releases/latest alias serves the sliding window:
//
//	curl -s localhost:8181/v1/datasets -d '{"name":"taxi","epsilon":4.0,"domain":{"lo":[0,0],"hi":[1,1]},"stream":{"epoch_epsilon":0.125,"window":8,"seal_every":50000}}'
//	curl -s localhost:8181/v1/datasets/taxi/ingest -d '{"batch_seq":1,"points":[[0.1,0.2]]}'
//	curl -s localhost:8181/v1/datasets/taxi/releases/latest/query -d '{"queries":[[0,0,1,1]]}'
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get up to -drain to complete.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"privtree/internal/server"
)

func main() {
	var (
		addr           = flag.String("addr", ":8181", "listen address")
		workers        = flag.Int("workers", 0, "goroutines per build and per query batch (0 = GOMAXPROCS)")
		maxBatch       = flag.Int("max-batch", 0, "maximum queries per batch request (0 = 2^20)")
		maxBody        = flag.Int64("max-body", 0, "maximum request body bytes (0 = 256 MiB)")
		drain          = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		buildTimeout   = flag.Duration("build-timeout", 30*time.Second, "per-request deadline for release builds; past it the build is abandoned, its debit refunded durably, and the client gets 503 deadline_exceeded (0 = none)")
		queryTimeout   = flag.Duration("query-timeout", 30*time.Second, "per-request deadline for batched queries (0 = none)")
		maxBuilds      = flag.Int("max-builds", 0, "release builds admitted concurrently; excess queues briefly, then sheds as 429 overloaded (0 = GOMAXPROCS)")
		maxBatches     = flag.Int("max-batches", 0, "query batches admitted concurrently, same shed behavior (0 = GOMAXPROCS)")
		admitQueue     = flag.Int("admission-queue", 0, "bounded wait queue per admission plane (0 = 2x the plane's limit)")
		dataDir        = flag.String("data-dir", "", "directory for crash-safe persistence: privacy ledgers are write-ahead logged (fsync-on-debit) and release envelopes stored content-addressed; on restart every dataset resumes with its spent ε, audit trail, and cached releases intact (empty = in-memory only, budgets reset on restart)")
		replicaOf      = flag.String("replica-of", "", "start as a read replica of the primary at this base URL (e.g. http://10.0.0.1:8181): pull its WAL and artifacts continuously, serve reads from the replicated state, reject writes as read_only until promoted via POST /v1/admin/promote; requires -data-dir")
		replicaPoll    = flag.Duration("replica-poll", 0, "interval between replication sync passes (0 = 250ms)")
		replicaTimeout = flag.Duration("replica-timeout", 0, "per-request deadline for replication pulls, so a partitioned primary cannot wedge the sync loop (0 = 30s)")
		pprofAddr      = flag.String("pprof-addr", "", "listen address for net/http/pprof profiles (empty = disabled); bind it to localhost, profiles are not privacy-reviewed output")
		slowReq        = flag.Duration("slow-request", 0, "log any request slower than this, with its route, status, trace ID, and span breakdown (0 = disabled)")
		logFormat      = flag.String("log-format", "text", "structured log encoding: text or json")
		traceRetain    = flag.Int("trace-retain", 0, "completed traces retained by the in-process flight recorder, served at GET /v1/traces (0 = 512)")
		traceSlow      = flag.Duration("trace-slow", 0, "retain every trace at least this slow, regardless of sampling (0 = 250ms, negative = disable the slow class)")
		traceSample    = flag.Int("trace-sample", 0, "retain 1 in N normal traces — errors and slow traces are always kept (0 = 100, 1 = keep everything)")
	)
	flag.Parse()

	var logHandler slog.Handler
	switch *logFormat {
	case "text":
		logHandler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		logHandler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fatal(fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat))
	}
	logger := slog.New(logHandler)

	if *pprofAddr != "" {
		// Profiles ride a separate listener so the query plane's address
		// never exposes them, and the endpoint stays opt-in for production
		// profiling of the serving hot path.
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "privtreed: pprof listening on %s\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pprofMux); err != nil {
				fmt.Fprintf(os.Stderr, "privtreed: pprof listener failed: %v\n", err)
			}
		}()
	}

	handler, err := server.New(server.Options{
		Workers:              *workers,
		MaxBatch:             *maxBatch,
		MaxBodyBytes:         *maxBody,
		DataDir:              *dataDir,
		ReplicaOf:            *replicaOf,
		ReplicaPoll:          *replicaPoll,
		ReplicaTimeout:       *replicaTimeout,
		BuildTimeout:         *buildTimeout,
		QueryTimeout:         *queryTimeout,
		MaxConcurrentBuilds:  *maxBuilds,
		MaxConcurrentBatches: *maxBatches,
		AdmissionQueue:       *admitQueue,
		DrainTimeout:         *drain,
		SlowRequest:          *slowReq,
		Logger:               logger,
		TraceRetain:          *traceRetain,
		TraceSlow:            *traceSlow,
		TraceSample:          *traceSample,
	})
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "privtreed: recovered %d dataset(s) from %s\n",
			handler.Registry().Len(), *dataDir)
	}
	if *replicaOf != "" {
		fmt.Fprintf(os.Stderr, "privtreed: read replica of %s (writes rejected until promoted)\n", *replicaOf)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// ReadHeaderTimeout bounds slowloris-style header dribbling;
		// IdleTimeout reclaims keep-alive connections a dead client left
		// behind, so a fleet of crashed clients can't pin the listener's
		// file descriptors.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "privtreed: listening on %s\n", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	// Shutdown ordering matters: drain the HTTP listener FIRST — stop
	// accepting, let in-flight requests finish — and only then close the
	// registry and its stores. Closing the stores under live handlers
	// would fail acknowledged-looking requests mid-commit.
	fmt.Fprintln(os.Stderr, "privtreed: shutting down, draining in-flight requests")
	drainStart := time.Now()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "privtreed: drain incomplete after %v: %v\n",
			time.Since(drainStart).Round(time.Millisecond), err)
		_ = srv.Close()
		_ = handler.Close()
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "privtreed: drained in %v\n", time.Since(drainStart).Round(time.Millisecond))
	// Graceful restart: every acknowledged debit and artifact is already
	// durable; closing the stores is hygiene so a supervisor can relaunch
	// with the same -data-dir immediately. handler.Close also drains the
	// admission gates, but Shutdown already emptied them.
	if err := handler.Close(); err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "privtreed: state persisted under %s; restart with the same -data-dir to resume\n", *dataDir)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "privtreed:", err)
	os.Exit(1)
}
