package privtree

import (
	"encoding/json"
	"fmt"
	"math"

	"privtree/internal/markov"
	"privtree/internal/pst"
	"privtree/internal/sequence"
)

// Wire-format sanity bounds: far beyond any real model, tight enough that
// a hostile document cannot drive huge allocations before validation.
const (
	maxWireAlphabet = 1 << 20
	maxWireLTop     = 1 << 20
)

// modelJSON is the wire form of a SequenceModel: predictor-tree structure
// plus the released noisy histograms — the exact content of the ε-DP
// release.
type modelJSON struct {
	Version  int         `json:"version"`
	Alphabet int         `json:"alphabet"`
	LTop     int         `json:"ltop"`
	Root     pstNodeJSON `json:"root"`
}

type pstNodeJSON struct {
	Hist     []float64     `json:"hist"`
	Children []pstNodeJSON `json:"children,omitempty"`
}

// MarshalJSON implements json.Marshaler for SequenceModel. The nested wire
// shape is produced by one walk of the flat arena; histogram slices alias
// the model's shared slab (the encoder only reads them).
func (m *SequenceModel) MarshalJSON() ([]byte, error) {
	t := &m.model.Tree
	beta := t.Fanout()
	var conv func(i int32) pstNodeJSON
	conv = func(i int32) pstNodeJSON {
		out := pstNodeJSON{Hist: t.HistAt(i)}
		if fc := t.Nodes[i].FirstChild; fc != 0 {
			out.Children = make([]pstNodeJSON, beta)
			for x := 0; x < beta; x++ {
				out.Children[x] = conv(fc + int32(x))
			}
		}
		return out
	}
	return json.Marshal(modelJSON{
		Version:  1,
		Alphabet: t.Alphabet.Size,
		LTop:     m.lTop,
		Root:     conv(0),
	})
}

// UnmarshalJSON implements json.Unmarshaler for SequenceModel. Contexts
// are reconstructed from tree position (child i of a node prepends symbol
// i; the last child is the $-anchored one), so the wire format only
// carries structure and histograms.
//
// The document is fully validated before a model is handed back: version
// and alphabet shape, histogram arity at every node, finite non-negative
// counts (a released histogram is clamped ≥ 0; NaN/±Inf would poison every
// downstream estimate), children arity, no children under a $-anchored
// context, and depth within l⊤. Truncated or otherwise malformed documents
// leave the receiver untouched.
func (m *SequenceModel) UnmarshalJSON(data []byte) error {
	var wire modelJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	if wire.Version != 1 {
		return fmt.Errorf("privtree: unsupported model version %d", wire.Version)
	}
	if wire.Alphabet < 1 || wire.Alphabet > maxWireAlphabet {
		return fmt.Errorf("privtree: model alphabet %d invalid", wire.Alphabet)
	}
	if wire.LTop < 1 || wire.LTop > maxWireLTop {
		return fmt.Errorf("privtree: model max length %d invalid", wire.LTop)
	}
	k := wire.Alphabet
	beta := k + 1
	// Root arity first: it bounds every allocation that follows (a document
	// claiming a huge alphabet must actually carry β floats per node).
	if len(wire.Root.Hist) != beta {
		return fmt.Errorf("privtree: histogram arity %d, want |I|+1 = %d", len(wire.Root.Hist), beta)
	}

	nodes := make([]pst.Node, 1, 16)
	hists := make([]float64, beta) // grows with validated content only
	var fill func(idx int32, w *pstNodeJSON, depth int, anchored bool) error
	fill = func(idx int32, w *pstNodeJSON, depth int, anchored bool) error {
		if len(w.Hist) != beta {
			return fmt.Errorf("privtree: histogram arity %d, want |I|+1 = %d", len(w.Hist), beta)
		}
		for _, v := range w.Hist {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("privtree: non-finite histogram count %v", v)
			}
			if v < 0 {
				return fmt.Errorf("privtree: negative histogram count %v (releases are clamped >= 0)", v)
			}
		}
		copy(hists[int(idx)*beta:(int(idx)+1)*beta], w.Hist)
		if len(w.Children) == 0 {
			return nil
		}
		if len(w.Children) != beta {
			return fmt.Errorf("privtree: node has %d children, want |I|+1 = %d", len(w.Children), beta)
		}
		if anchored {
			return fmt.Errorf("privtree: $-anchored context cannot have children")
		}
		if depth >= wire.LTop {
			return fmt.Errorf("privtree: node at depth %d expanded beyond max length %d", depth, wire.LTop)
		}
		// Check every child's arity BEFORE the β²-sized arena append, so the
		// allocation below is always bounded by floats the document actually
		// carries — a hostile document claiming a huge alphabet cannot drive
		// an O(alphabet²) allocation off a few empty child objects.
		for x := range w.Children {
			if len(w.Children[x].Hist) != beta {
				return fmt.Errorf("privtree: histogram arity %d, want |I|+1 = %d", len(w.Children[x].Hist), beta)
			}
		}
		first := int32(len(nodes))
		for x := 0; x < beta; x++ {
			nodes = append(nodes, pst.Node{})
			for j := 0; j < beta; j++ {
				hists = append(hists, 0)
			}
		}
		nodes[idx].FirstChild = first
		for x := 0; x < beta; x++ {
			if err := fill(first+int32(x), &w.Children[x], depth+1, x == k); err != nil {
				return err
			}
		}
		return nil
	}
	if err := fill(0, &wire.Root, 0, false); err != nil {
		return err
	}
	t := pst.Tree{
		Alphabet: sequence.NewAlphabet(k),
		Nodes:    nodes,
		Hists:    hists,
		EndIndex: k,
	}
	t.Finalize()
	m.model = &markov.Model{Tree: t}
	m.lTop = wire.LTop
	return nil
}
