package privtree

import (
	"encoding/json"
	"fmt"

	"privtree/internal/markov"
	"privtree/internal/pst"
	"privtree/internal/sequence"
)

// modelJSON is the wire form of a SequenceModel: predictor-tree structure
// plus the released noisy histograms — the exact content of the ε-DP
// release.
type modelJSON struct {
	Version  int         `json:"version"`
	Alphabet int         `json:"alphabet"`
	LTop     int         `json:"ltop"`
	Root     pstNodeJSON `json:"root"`
}

type pstNodeJSON struct {
	Hist     []float64     `json:"hist"`
	Children []pstNodeJSON `json:"children,omitempty"`
}

// MarshalJSON implements json.Marshaler for SequenceModel.
func (m *SequenceModel) MarshalJSON() ([]byte, error) {
	var conv func(n *pst.Node) pstNodeJSON
	conv = func(n *pst.Node) pstNodeJSON {
		out := pstNodeJSON{Hist: n.Hist}
		if !n.IsLeaf() {
			out.Children = make([]pstNodeJSON, len(n.Children))
			for i, c := range n.Children {
				out.Children[i] = conv(c)
			}
		}
		return out
	}
	return json.Marshal(modelJSON{
		Version:  1,
		Alphabet: m.model.Alphabet.Size,
		LTop:     m.lTop,
		Root:     conv(m.model.Root),
	})
}

// UnmarshalJSON implements json.Unmarshaler for SequenceModel. Contexts
// are reconstructed from tree position (child i of a node prepends symbol
// i; the last child is the $-anchored one), so the wire format only
// carries structure and histograms.
func (m *SequenceModel) UnmarshalJSON(data []byte) error {
	var wire modelJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	if wire.Version != 1 {
		return fmt.Errorf("privtree: unsupported model version %d", wire.Version)
	}
	if wire.Alphabet < 1 {
		return fmt.Errorf("privtree: model alphabet %d invalid", wire.Alphabet)
	}
	k := wire.Alphabet
	var conv func(w pstNodeJSON, ctx pst.Context, depth int) (*pst.Node, error)
	conv = func(w pstNodeJSON, ctx pst.Context, depth int) (*pst.Node, error) {
		if len(w.Hist) != k+1 {
			return nil, fmt.Errorf("privtree: histogram arity %d, want |I|+1 = %d", len(w.Hist), k+1)
		}
		n := &pst.Node{Ctx: ctx, Depth: depth, Hist: w.Hist}
		if len(w.Children) == 0 {
			return n, nil
		}
		if len(w.Children) != k+1 {
			return nil, fmt.Errorf("privtree: node has %d children, want |I|+1 = %d", len(w.Children), k+1)
		}
		if ctx.Anchored {
			return nil, fmt.Errorf("privtree: $-anchored context cannot have children")
		}
		n.Children = make([]*pst.Node, k+1)
		for i, cw := range w.Children {
			cctx := pst.Context{Anchored: i == k}
			if i < k {
				cctx.Syms = append([]sequence.Symbol{sequence.Symbol(i)}, ctx.Syms...)
			} else {
				cctx.Syms = append([]sequence.Symbol(nil), ctx.Syms...)
			}
			child, err := conv(cw, cctx, depth+1)
			if err != nil {
				return nil, err
			}
			n.Children[i] = child
		}
		return n, nil
	}
	root, err := conv(wire.Root, pst.Context{}, 0)
	if err != nil {
		return err
	}
	m.model = &markov.Model{
		Tree: pst.Tree{
			Alphabet: sequence.NewAlphabet(k),
			Root:     root,
			EndIndex: k,
		},
	}
	m.lTop = wire.LTop
	return nil
}
