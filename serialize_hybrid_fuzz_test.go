package privtree

import (
	"encoding/json"
	"math"
	"testing"
)

// smallHybridBlob builds a small released hybrid tree and returns its wire
// bytes; deliberately tiny so the fuzz engine mutates it at full speed.
func smallHybridBlob(t testing.TB) []byte {
	t.Helper()
	tree, err := BuildHybrid(testHybridSchema(t), testHybridRecords(300), 1.0, 13)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestHybridTreeJSONRoundTrip(t *testing.T) {
	orig, err := BuildHybrid(testHybridSchema(t), testHybridRecords(5000), 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var restored HybridTree
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	if math.Abs(restored.Total()-orig.Total()) > 1e-9 {
		t.Fatalf("total changed: %v vs %v", restored.Total(), orig.Total())
	}
	queries := []HybridQuery{
		{},
		{NumRanges: []*[2]float64{{10, 40}}},
		{CatValues: []map[string]bool{{"eng": true}}},
		{NumRanges: []*[2]float64{{25, 80}}, CatValues: []map[string]bool{{"nurse": true, "doctor": true}}},
	}
	for i, q := range queries {
		a, b := orig.Count(q), restored.Count(q)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("query %d changed after round trip: %v vs %v", i, a, b)
		}
	}
}

func TestHybridTreeJSONOnlyLeavesCarryCounts(t *testing.T) {
	blob := smallHybridBlob(t)
	var raw map[string]any
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	var check func(node map[string]any)
	check = func(node map[string]any) {
		kids, hasKids := node["children"].([]any)
		_, hasCount := node["count"]
		if hasKids && hasCount {
			t.Fatal("internal node serialized a count; the release defines internal counts as leaf sums")
		}
		if !hasKids && !hasCount {
			t.Fatal("leaf without count")
		}
		for _, k := range kids {
			check(k.(map[string]any))
		}
	}
	check(raw["root"].(map[string]any))
}

// TestHybridTreeUnmarshalRejectsMalformed covers documents that are valid
// JSON but describe impossible schemas or trees.
func TestHybridTreeUnmarshalRejectsMalformed(t *testing.T) {
	const schemaPrefix = `{"version":1,"numeric":[{"name":"x","lo":0,"hi":1}],`
	cases := []struct {
		name string
		blob string
	}{
		{"bad version", `{"version":2,"numeric":[{"name":"x","lo":0,"hi":1}],"root":{"ranges":[[0,1]],"count":1}}`},
		{"no attributes", `{"version":1,"root":{"count":1}}`},
		{"inverted attribute bounds", `{"version":1,"numeric":[{"name":"x","lo":1,"hi":0}],"root":{"ranges":[[1,0]],"count":1}}`},
		{"NaN-free but infinite attribute", `{"version":1,"numeric":[{"name":"x","lo":0,"hi":1e999}],"root":{"ranges":[[0,1]],"count":1}}`},
		{"range arity mismatch", schemaPrefix + `"root":{"ranges":[[0,1],[0,1]],"count":1}}`},
		{"root range not the domain", schemaPrefix + `"root":{"ranges":[[0,0.5]],"count":1}}`},
		{"leaf without count", schemaPrefix + `"root":{"ranges":[[0,1]]}}`},
		{"non-finite count", schemaPrefix + `"root":{"ranges":[[0,1]],"count":1e999}}`},
		{"inverted child range", schemaPrefix + `"root":{"ranges":[[0,1]],"children":[
			{"ranges":[[0.5,0]],"count":1},{"ranges":[[0.5,1]],"count":1}]}}`},
		{"child escapes parent", schemaPrefix + `"root":{"ranges":[[0,1]],"children":[
			{"ranges":[[0,0.5]],"count":1},{"ranges":[[0.5,2]],"count":1}]}}`},
		{"duplicate taxonomy leaves", `{"version":1,"taxonomies":[{"name":"t","root":{"value":"any","children":[
			{"value":"a"},{"value":"a"}]}}],"root":{"cats":["any"],"count":1}}`},
		{"duplicate internal group labels", `{"version":1,"taxonomies":[{"name":"t","root":{"value":"any","children":[
			{"value":"g","children":[{"value":"a"},{"value":"b"}]},
			{"value":"g","children":[{"value":"c"},{"value":"d"}]}]}}],"root":{"cats":["any"],"count":1}}`},
		{"taxonomy without splits", `{"version":1,"taxonomies":[{"name":"t","root":{"value":"only"}}],"root":{"cats":["only"],"count":1}}`},
		{"root category not taxonomy root", `{"version":1,"taxonomies":[{"name":"t","root":{"value":"any","children":[
			{"value":"a"},{"value":"b"}]}}],"root":{"cats":["a"],"count":1}}`},
		{"child category outside parent group", `{"version":1,"taxonomies":[{"name":"t","root":{"value":"any","children":[
			{"value":"g1","children":[{"value":"a"},{"value":"b"}]},
			{"value":"g2","children":[{"value":"c"},{"value":"d"}]}]}}],
			"root":{"cats":["any"],"children":[
			{"cats":["g1"],"children":[{"cats":["c"],"count":1}]},
			{"cats":["g2"],"count":1}]}}`},
		{"cat arity mismatch", schemaPrefix + `"root":{"ranges":[[0,1]],"cats":["x"],"count":1}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("UnmarshalJSON panicked: %v", r)
				}
			}()
			var tree HybridTree
			if err := json.Unmarshal([]byte(c.blob), &tree); err == nil {
				t.Fatal("malformed hybrid doc accepted")
			}
			if tree.tree != nil {
				t.Fatal("failed unmarshal left a partial tree behind")
			}
		})
	}
}

// TestHybridTreeUnmarshalTruncated feeds every cut-off prefix of a real
// document to the decoder: all must error, none may panic or leave a
// partial tree.
func TestHybridTreeUnmarshalTruncated(t *testing.T) {
	blob := smallHybridBlob(t)
	for cut := 0; cut < len(blob); cut += 7 {
		var tree HybridTree
		if err := json.Unmarshal(blob[:cut], &tree); err == nil {
			t.Fatalf("truncated blob (%d of %d bytes) accepted", cut, len(blob))
		}
		if tree.tree != nil {
			t.Fatalf("truncated blob (%d bytes) left a partial tree behind", cut)
		}
	}
}

// FuzzHybridUnmarshal drives arbitrary bytes through the hybrid decoder:
// never panic, and any accepted document must round-trip with identical
// query answers.
func FuzzHybridUnmarshal(f *testing.F) {
	f.Add(smallHybridBlob(f))
	f.Add([]byte(`{"version":1,"numeric":[{"name":"x","lo":0,"hi":1}],"root":{"ranges":[[0,1]],"count":2.5}}`))
	f.Add([]byte(`{"version":1,"taxonomies":[{"name":"t","root":{"value":"any","children":[{"value":"a"},{"value":"b"}]}}],"root":{"cats":["any"],"children":[{"cats":["a"],"count":1},{"cats":["b"],"count":2}]}}`))
	f.Add([]byte(`{"version":1,"numeric":[{"name":"x","lo":1,"hi":0}],"root":{"ranges":[[1,0]],"count":1}}`))
	f.Add([]byte(`{"version":1,"root":{"count":1}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tree HybridTree
		if err := json.Unmarshal(data, &tree); err != nil {
			return
		}
		blob, err := json.Marshal(&tree)
		if err != nil {
			t.Fatalf("accepted tree failed to marshal: %v", err)
		}
		var again HybridTree
		if err := json.Unmarshal(blob, &again); err != nil {
			t.Fatalf("round-tripped bytes rejected: %v", err)
		}
		queries := []HybridQuery{{}}
		if n := len(tree.tree.Schema.Numeric); n > 0 {
			a := tree.tree.Schema.Numeric[0]
			mid := a.Lo + (a.Hi-a.Lo)/2
			ranges := make([]*[2]float64, n)
			ranges[0] = &[2]float64{a.Lo, mid}
			queries = append(queries, HybridQuery{NumRanges: ranges})
		}
		for i, q := range queries {
			a, b := tree.Count(q), again.Count(q)
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("round trip changed Count (query %d): %v vs %v", i, a, b)
			}
		}
	})
}
