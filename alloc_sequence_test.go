package privtree

import (
	"bytes"
	"encoding/json"
	"testing"
)

// This file locks in the sequence pipeline's allocation discipline and the
// determinism guarantee of the parallel PST build. The spatial pipeline's
// equivalents live in internal/core and internal/geom.

// TestEstimateFrequencyAllocationFree guards the public query hot path:
// the serving layer answers batched frequency queries through it, so a
// single allocation per call would show up at production scale.
func TestEstimateFrequencyAllocationFree(t *testing.T) {
	model, err := BuildSequenceModel(6, makeClickstreams(5000), 2.0, SequenceOptions{MaxLength: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Sequence{{0}, {2, 3}, {5, 0, 1}, {1, 2, 3, 4}}
	allocs := testing.AllocsPerRun(500, func() {
		for _, q := range queries {
			model.EstimateFrequency(q)
		}
	})
	if allocs != 0 {
		t.Fatalf("EstimateFrequency allocates %v per batch of %d, want 0", allocs, len(queries))
	}
}

// TestBuildSequenceModelAllocationBudget guards the arena build: the whole
// pipeline — columnar ingest, in-place truncation, PST arena construction,
// path-keyed noise, release post-processing — must stay within a fixed
// allocation budget regardless of dataset cardinality (the seed
// implementation cost ~21,600 allocations on this workload). Workers is
// pinned to 1 because parallel fan-out deliberately trades a few dozen
// per-subtree builder allocations for wall-clock time.
func TestBuildSequenceModelAllocationBudget(t *testing.T) {
	seqs := makeClickstreams(20000)
	var err error
	allocs := testing.AllocsPerRun(3, func() {
		_, err = BuildSequenceModel(6, seqs, 1.0, SequenceOptions{MaxLength: 20, Seed: 1, Workers: 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs > 300 {
		t.Fatalf("BuildSequenceModel allocates %v per build, budget is 300", allocs)
	}
}

// TestTopKAllocationProportionalToResults guards the miner: traversal must
// not allocate per visited node, only per retained candidate — so doubling
// the enumeration space (longer maxLen) must not explode allocations.
func TestTopKAllocationProportionalToResults(t *testing.T) {
	model, err := BuildSequenceModel(6, makeClickstreams(20000), 4.0, SequenceOptions{MaxLength: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		model.TopK(20, 5)
	})
	// 20 retained candidates + bound slice + result headers, with slack for
	// pruned-late candidates; the old implementation (map of every visited
	// string + key strings + parse-backs) sat in the thousands.
	if allocs > 400 {
		t.Fatalf("TopK(20, 5) allocates %v per call, budget is 400", allocs)
	}
}

// TestSequenceBuildSerializesIdenticallyAcrossWorkers is the acceptance
// determinism test: serial and parallel builds must not merely agree
// structurally — their released wire bytes must be byte-identical, because
// the release cache and clients key on exact artifacts.
func TestSequenceBuildSerializesIdenticallyAcrossWorkers(t *testing.T) {
	seqs := makeClickstreams(20000)
	serial, err := BuildSequenceModel(6, seqs, 2.0, SequenceOptions{MaxLength: 20, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	serialBlob, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := BuildSequenceModel(6, seqs, 2.0, SequenceOptions{MaxLength: 20, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(par)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serialBlob, blob) {
			t.Fatalf("workers=%d: serialized release differs from serial build", workers)
		}
	}
}

// TestGenerateSharesBackingSlabs verifies the zero-copy generation path
// still produces independent-looking sequences with correct caps.
func TestGenerateSharesBackingSlabs(t *testing.T) {
	model, err := BuildSequenceModel(6, makeClickstreams(5000), 2.0, SequenceOptions{MaxLength: 12, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	out := model.Generate(500, 7)
	if len(out) != 500 {
		t.Fatalf("generated %d sequences", len(out))
	}
	for i, s := range out {
		if len(s) > model.MaxLength() {
			t.Fatalf("sequence %d exceeds l⊤: %d", i, len(s))
		}
		for _, x := range s {
			if x < 0 || x >= 6 {
				t.Fatalf("sequence %d has out-of-alphabet symbol %d", i, x)
			}
		}
	}
}
