package privtree

import (
	"fmt"
	"math"

	"privtree/internal/dp"
	"privtree/internal/hybrid"
)

// This file exposes the Section 3.5 extension: PrivTree over mixed
// numeric/categorical domains, where categorical attributes split along a
// user-supplied taxonomy instead of by bisection.

// NumericAttr declares a real-valued attribute over [Lo, Hi).
type NumericAttr = hybrid.Numeric

// CategoryNode is one node of a category taxonomy: a concrete value when
// it has no children, a coarser grouping otherwise.
type CategoryNode = hybrid.TaxNode

// HybridRecord is one tuple: numeric values and category values in schema
// order.
type HybridRecord = hybrid.Record

// HybridQuery constrains any subset of attributes: a [lo, hi) interval per
// numeric attribute (nil = unconstrained) and a value set per categorical
// attribute (nil = unconstrained).
type HybridQuery = hybrid.Query

// HybridSchema describes a mixed-attribute domain.
type HybridSchema struct {
	inner hybrid.Schema
}

// NewHybridSchema builds a schema from numeric attributes and category
// taxonomies (name + root node each).
func NewHybridSchema(nums []NumericAttr, taxonomies map[string]*CategoryNode) (*HybridSchema, error) {
	s := hybrid.Schema{Numeric: nums}
	// Deterministic order: sort taxonomy names.
	names := make([]string, 0, len(taxonomies))
	for name := range taxonomies {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		tax, err := hybrid.NewTaxonomy(name, taxonomies[name])
		if err != nil {
			return nil, err
		}
		s.Categorical = append(s.Categorical, tax)
	}
	return &HybridSchema{inner: s}, nil
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// HybridTree is a released private decomposition over a hybrid domain.
type HybridTree struct {
	tree *hybrid.Tree
}

// BuildHybrid runs PrivTree over a mixed numeric/categorical dataset under
// total budget eps (ε/2 structure, ε/2 leaf counts). Categorical values in
// records refer to the corresponding taxonomy's leaf values; queries may
// constrain any grouping level through value sets.
//
// BuildHybrid is a thin wrapper over the "hybrid" registry mechanism: it
// is equivalent to NewHybridData + NewHybridMechanism + Run, without
// budget accounting. Use Session.Release to run the mechanism against a
// privacy-budget ledger.
func BuildHybrid(schema *HybridSchema, records []HybridRecord, eps float64, seed uint64) (*HybridTree, error) {
	if schema == nil {
		return nil, fmt.Errorf("privtree: nil hybrid schema")
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("privtree: epsilon must be positive and finite, got %v", eps)
	}
	// Record validation is left to hybrid.Build, which checks every record
	// against the schema anyway — NewHybridData here would validate twice.
	return buildHybridTree(schema, records, eps, seed)
}

// buildHybridTree is the hybrid mechanism implementation shared by the
// registry and the BuildHybrid wrapper.
func buildHybridTree(schema *HybridSchema, records []HybridRecord, eps float64, seed uint64) (*HybridTree, error) {
	t, err := hybrid.Build(schema.inner, records, eps, dp.NewRand(seedOrDefault(seed)))
	if err != nil {
		return nil, err
	}
	return &HybridTree{tree: t}, nil
}

// Count estimates the number of records matching q.
func (t *HybridTree) Count(q HybridQuery) float64 { return t.tree.Count(q) }

// Total returns the noisy estimate of the dataset cardinality.
func (t *HybridTree) Total() float64 { return t.tree.Root.Count }
