package privtree

import (
	"encoding/json"
	"fmt"
	"math"
)

// This file defines the versioned, self-describing wire envelope every
// serializable release travels in:
//
//	{
//	  "privtree_release": 1,
//	  "kind": "spatial" | "sequence" | "hybrid",
//	  "mechanism": "spatial",          // registry name, optional
//	  "epsilon": 0.5,                  // budget the release consumed, optional
//	  "params": { "seed": 7, ... },    // the Params the mechanism ran with
//	  "payload": { ... }               // the kind-specific artifact document
//	}
//
// Decode is the single entry point: it dispatches on "kind", and keeps
// loading the legacy per-type v0 documents (a bare SpatialTree,
// SequenceModel, or HybridTree JSON document with no envelope) through
// compat shims, so artifacts archived before the envelope existed remain
// readable. The payload documents themselves are unchanged — an envelope
// wraps exactly the bytes the per-type (Un)MarshalJSON implementations
// produce, so the ε-DP guarantee of the payload carries over verbatim.

// EnvelopeVersion is the wire-envelope version this library writes.
const EnvelopeVersion = 1

// envelopeJSON is the wire form of a Release.
type envelopeJSON struct {
	Version   int             `json:"privtree_release"`
	Kind      ReleaseKind     `json:"kind"`
	Mechanism string          `json:"mechanism,omitempty"`
	Epsilon   float64         `json:"epsilon,omitempty"`
	Params    *Params         `json:"params,omitempty"`
	Payload   json.RawMessage `json:"payload"`
}

// MarshalJSON implements json.Marshaler for Release: the versioned
// envelope around the kind-specific payload document, served from the
// Envelope cache so repeated marshals are bit-identical. Baseline
// releases are in-memory query structures with no wire format and return
// an error.
func (r *Release) MarshalJSON() ([]byte, error) {
	return r.Envelope()
}

// encodeEnvelope builds the envelope bytes; Envelope caches its result.
func (r *Release) encodeEnvelope() ([]byte, error) {
	var payload any
	switch {
	case r.spatial != nil:
		payload = r.spatial
	case r.model != nil:
		payload = r.model
	case r.hybrid != nil:
		payload = r.hybrid
	default:
		return nil, fmt.Errorf("privtree: %s release has no wire format", r.kind)
	}
	blob, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	p := r.params
	return json.Marshal(envelopeJSON{
		Version:   EnvelopeVersion,
		Kind:      r.kind,
		Mechanism: r.mechanism,
		Epsilon:   r.epsilon,
		Params:    &p,
		Payload:   blob,
	})
}

// UnmarshalJSON implements json.Unmarshaler for Release via Decode, so
// envelopes (and legacy v0 documents) load with plain json.Unmarshal too.
// The receiver is left untouched on failure. (Fields are copied one by
// one: the receiver's envelope cache is an atomic and must not be copied
// as a value.)
func (r *Release) UnmarshalJSON(data []byte) error {
	dec, err := Decode(data)
	if err != nil {
		return err
	}
	r.kind = dec.kind
	r.mechanism = dec.mechanism
	r.epsilon = dec.epsilon
	r.params = dec.params
	r.spatial, r.model, r.hybrid, r.counter = dec.spatial, dec.model, dec.hybrid, dec.counter
	// Take dec's cache even when it is nil: a reused receiver must not
	// keep serving a PREVIOUS document's envelope bytes.
	r.wire.Store(dec.wire.Load())
	return nil
}

// EnvelopeInfo is the provenance metadata of a serialized release,
// readable without decoding (or validating) the payload — see
// InspectEnvelope.
type EnvelopeInfo struct {
	// Version is the envelope version (0 for legacy bare documents).
	Version int
	// Kind is the artifact family the document carries.
	Kind ReleaseKind
	// Mechanism is the producing mechanism's registry name ("" when not
	// recorded).
	Mechanism string
	// Epsilon is the privacy budget the release consumed (0 when not
	// recorded).
	Epsilon float64
	// Seed is the mechanism seed.
	Seed uint64
	// Params are the recorded release parameters.
	Params Params
	// Fingerprint is the release-request identity string (mechanism, ε,
	// params) — the key the Session cache and the artifact store dedup on.
	Fingerprint string
	// PayloadBytes is the size of the (uninspected) payload document.
	PayloadBytes int
}

// InspectEnvelope reads a serialized release's provenance — kind,
// mechanism, ε, seed, params fingerprint — WITHOUT decoding the payload:
// inspecting a multi-megabyte artifact costs one metadata parse, and a
// payload too corrupt for Decode can still be identified. It accepts
// both versioned envelopes and legacy v0 documents (which carry no
// provenance and report Version 0). The provenance fields get the same
// plausibility screening as Decode; the payload gets none.
func InspectEnvelope(data []byte) (*EnvelopeInfo, error) {
	var probe struct {
		Envelope  *int            `json:"privtree_release"`
		Kind      ReleaseKind     `json:"kind"`
		Mechanism string          `json:"mechanism"`
		Epsilon   float64         `json:"epsilon"`
		Params    *Params         `json:"params"`
		Payload   json.RawMessage `json:"payload"`

		// Legacy v0 discriminator keys.
		Alphabet   *int            `json:"alphabet"`
		Fanout     *int            `json:"fanout"`
		Numeric    json.RawMessage `json:"numeric"`
		Taxonomies json.RawMessage `json:"taxonomies"`
		Root       json.RawMessage `json:"root"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, err
	}
	if probe.Envelope == nil {
		// Legacy v0: identify the kind from the document shape.
		info := &EnvelopeInfo{Version: 0, PayloadBytes: len(data)}
		switch {
		case probe.Alphabet != nil && probe.Root != nil:
			info.Kind = KindSequence
		case probe.Fanout != nil && probe.Root != nil:
			info.Kind = KindSpatial
		case probe.Numeric != nil || probe.Taxonomies != nil:
			info.Kind = KindHybrid
		default:
			return nil, fmt.Errorf("privtree: not a release document (no envelope and no recognizable v0 shape)")
		}
		return info, nil
	}
	if *probe.Envelope != EnvelopeVersion {
		return nil, fmt.Errorf("privtree: unsupported release envelope version %d", *probe.Envelope)
	}
	if len(probe.Payload) == 0 {
		return nil, fmt.Errorf("privtree: release envelope has no payload")
	}
	if math.IsNaN(probe.Epsilon) || math.IsInf(probe.Epsilon, 0) || probe.Epsilon < 0 {
		return nil, fmt.Errorf("privtree: release envelope has unusable epsilon %v", probe.Epsilon)
	}
	switch probe.Kind {
	case KindSpatial, KindSequence, KindHybrid:
	default:
		return nil, fmt.Errorf("privtree: release envelope carries unknown kind %q", probe.Kind)
	}
	info := &EnvelopeInfo{
		Version:      *probe.Envelope,
		Kind:         probe.Kind,
		Mechanism:    probe.Mechanism,
		Epsilon:      probe.Epsilon,
		PayloadBytes: len(probe.Payload),
	}
	if probe.Params != nil {
		info.Params = *probe.Params
	}
	info.Seed = info.Params.Seed
	if probe.Mechanism != "" {
		spec, ok := mechanismRegistry[probe.Mechanism]
		if !ok {
			return nil, fmt.Errorf("privtree: release envelope names unknown mechanism %q", probe.Mechanism)
		}
		if spec.kind != probe.Kind {
			return nil, fmt.Errorf("privtree: mechanism %q produces %s releases, envelope claims %s",
				probe.Mechanism, spec.kind, probe.Kind)
		}
	}
	info.Fingerprint = releaseFingerprint(info.Mechanism, info.Epsilon, info.Params)
	return info, nil
}

// Decode loads a serialized release: either a versioned envelope (see
// EnvelopeVersion) or one of the legacy v0 per-type documents, which are
// recognized by their distinguishing keys — "alphabet"+"root" (sequence),
// "fanout"+"root" (spatial), "numeric"/"taxonomies" (hybrid). The payload
// is fully validated by the kind-specific decoder before a Release is
// handed back.
//
// Releases decoded from v0 documents carry no mechanism name and ε = 0:
// the legacy formats never recorded them.
func Decode(data []byte) (*Release, error) {
	// One parse serves both dispatch and the envelope fields; only the
	// kind-specific payload document is parsed a second time, by its own
	// hardened decoder.
	var probe struct {
		Envelope  *int            `json:"privtree_release"`
		Kind      ReleaseKind     `json:"kind"`
		Mechanism string          `json:"mechanism"`
		Epsilon   float64         `json:"epsilon"`
		Params    *Params         `json:"params"`
		Payload   json.RawMessage `json:"payload"`

		// Legacy v0 discriminator keys.
		Alphabet   *int            `json:"alphabet"`
		Fanout     *int            `json:"fanout"`
		Numeric    json.RawMessage `json:"numeric"`
		Taxonomies json.RawMessage `json:"taxonomies"`
		Root       json.RawMessage `json:"root"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, err
	}
	if probe.Envelope != nil {
		if *probe.Envelope != EnvelopeVersion {
			return nil, fmt.Errorf("privtree: unsupported release envelope version %d", *probe.Envelope)
		}
		if len(probe.Payload) == 0 {
			return nil, fmt.Errorf("privtree: release envelope has no payload")
		}
		// The provenance fields are validated like everything else on the
		// wire: ε must be a plausible privacy cost (0 = not recorded), and
		// a named mechanism must exist, produce this kind, and accept these
		// params — a forged envelope must not smuggle provenance no
		// mechanism could have produced.
		if math.IsNaN(probe.Epsilon) || math.IsInf(probe.Epsilon, 0) || probe.Epsilon < 0 {
			return nil, fmt.Errorf("privtree: release envelope has unusable epsilon %v", probe.Epsilon)
		}
		rel := &Release{kind: probe.Kind, mechanism: probe.Mechanism, epsilon: probe.Epsilon}
		if probe.Params != nil {
			rel.params = *probe.Params
		}
		if probe.Mechanism != "" {
			spec, ok := mechanismRegistry[probe.Mechanism]
			if !ok {
				return nil, fmt.Errorf("privtree: release envelope names unknown mechanism %q", probe.Mechanism)
			}
			if spec.kind != probe.Kind {
				return nil, fmt.Errorf("privtree: mechanism %q produces %s releases, envelope claims %s",
					probe.Mechanism, spec.kind, probe.Kind)
			}
			if err := spec.validate(rel.params); err != nil {
				return nil, fmt.Errorf("privtree: release envelope params: %w", err)
			}
		}
		switch probe.Kind {
		case KindSpatial:
			var t SpatialTree
			if err := json.Unmarshal(probe.Payload, &t); err != nil {
				return nil, err
			}
			rel.spatial = &t
		case KindSequence:
			var m SequenceModel
			if err := json.Unmarshal(probe.Payload, &m); err != nil {
				return nil, err
			}
			rel.model = &m
		case KindHybrid:
			var t HybridTree
			if err := json.Unmarshal(probe.Payload, &t); err != nil {
				return nil, err
			}
			rel.hybrid = &t
		default:
			return nil, fmt.Errorf("privtree: release envelope carries unknown kind %q", probe.Kind)
		}
		return rel, nil
	}
	// Legacy v0 compat shims: a bare per-type document.
	switch {
	case probe.Alphabet != nil && probe.Root != nil:
		var m SequenceModel
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, err
		}
		return &Release{kind: KindSequence, model: &m}, nil
	case probe.Fanout != nil && probe.Root != nil:
		var t SpatialTree
		if err := json.Unmarshal(data, &t); err != nil {
			return nil, err
		}
		return &Release{kind: KindSpatial, spatial: &t}, nil
	case probe.Numeric != nil || probe.Taxonomies != nil:
		var t HybridTree
		if err := json.Unmarshal(data, &t); err != nil {
			return nil, err
		}
		return &Release{kind: KindHybrid, hybrid: &t}, nil
	}
	return nil, fmt.Errorf("privtree: not a release document (no envelope and no recognizable v0 shape)")
}
