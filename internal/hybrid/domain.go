// Package hybrid implements the first extension of Section 3.5: PrivTree
// over mixed numeric/categorical domains. Numeric attributes split by
// binary bisection; categorical attributes split along a user-supplied
// taxonomy (e.g. city → state → country). A node splits ONE attribute per
// level, rotating round-robin, so the fanout is bounded and the
// δ = λ·ln β parameterization applies with β equal to the largest
// per-attribute branching factor (a conservative choice: a smaller actual
// fanout only shrinks the true privacy cost).
package hybrid

import (
	"fmt"
	"math"
	"math/rand/v2"

	"privtree/internal/core"
	"privtree/internal/dp"
)

// Attribute describes one column of a hybrid record.
type Attribute interface {
	// Name labels the attribute in released output.
	Name() string
	// Branching returns the maximum number of children a split of this
	// attribute can produce (2 for numeric bisection, the taxonomy's max
	// fanout for categorical).
	Branching() int
}

// Numeric is a real-valued attribute over [Lo, Hi).
type Numeric struct {
	Label  string
	Lo, Hi float64
}

// Name implements Attribute.
func (n Numeric) Name() string { return n.Label }

// Branching implements Attribute: numeric attributes bisect.
func (n Numeric) Branching() int { return 2 }

// Taxonomy is a categorical attribute's hierarchy. Leaves are category
// values; internal nodes are coarser groupings. Children of the root
// partition all values.
type Taxonomy struct {
	Label    string
	Root     *TaxNode
	maxFan   int
	leafHome map[string]*TaxNode
}

// TaxNode is one taxonomy node: a named grouping with either children
// (internal) or none (a concrete category value).
type TaxNode struct {
	Value    string
	Children []*TaxNode
}

// NewTaxonomy validates and indexes a taxonomy: every node value —
// leaf or grouping — must be unique, because values are the identity
// groups are referenced by (in queries, released nodes, and on the wire).
func NewTaxonomy(label string, root *TaxNode) (*Taxonomy, error) {
	t := &Taxonomy{Label: label, Root: root, leafHome: map[string]*TaxNode{}}
	seen := map[string]bool{}
	var walk func(n *TaxNode) error
	walk = func(n *TaxNode) error {
		if seen[n.Value] {
			return fmt.Errorf("hybrid: duplicate category value %q", n.Value)
		}
		seen[n.Value] = true
		if len(n.Children) == 0 {
			t.leafHome[n.Value] = n
			return nil
		}
		if len(n.Children) > t.maxFan {
			t.maxFan = len(n.Children)
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	if t.maxFan < 2 {
		return nil, fmt.Errorf("hybrid: taxonomy %q has no splits", label)
	}
	return t, nil
}

// Name implements Attribute.
func (t *Taxonomy) Name() string { return t.Label }

// Branching implements Attribute.
func (t *Taxonomy) Branching() int { return t.maxFan }

// covers reports whether group is value itself or an ancestor grouping of
// it.
func (t *Taxonomy) covers(group *TaxNode, value string) bool {
	if len(group.Children) == 0 {
		return group.Value == value
	}
	for _, c := range group.Children {
		if t.covers(c, value) {
			return true
		}
	}
	return false
}

// Record is one tuple of a hybrid dataset: Nums[i] aligns with the i-th
// Numeric attribute, Cats[j] with the j-th Taxonomy attribute, in schema
// order.
type Record struct {
	Nums []float64
	Cats []string
}

// Schema is an ordered attribute list.
type Schema struct {
	Numeric     []Numeric
	Categorical []*Taxonomy
}

// Validate checks a record against the schema.
func (s Schema) Validate(r Record) error {
	if len(r.Nums) != len(s.Numeric) || len(r.Cats) != len(s.Categorical) {
		return fmt.Errorf("hybrid: record arity mismatch")
	}
	for i, a := range s.Numeric {
		if r.Nums[i] < a.Lo || r.Nums[i] >= a.Hi {
			return fmt.Errorf("hybrid: %s value %v outside [%v, %v)", a.Label, r.Nums[i], a.Lo, a.Hi)
		}
	}
	for j, tax := range s.Categorical {
		if _, ok := tax.leafHome[r.Cats[j]]; !ok {
			return fmt.Errorf("hybrid: unknown %s category %q", tax.Label, r.Cats[j])
		}
	}
	return nil
}

// attrCount returns the total number of attributes.
func (s Schema) attrCount() int { return len(s.Numeric) + len(s.Categorical) }

// maxBranching returns β for the PrivTree parameterization: the largest
// branching any single split can produce.
func (s Schema) maxBranching() int {
	beta := 2
	for _, t := range s.Categorical {
		if t.maxFan > beta {
			beta = t.maxFan
		}
	}
	return beta
}

// cell is one sub-domain: an interval per numeric attribute and a taxonomy
// node per categorical attribute.
type cell struct {
	lo, hi []float64
	groups []*TaxNode
}

func (s Schema) rootCell() cell {
	c := cell{
		lo:     make([]float64, len(s.Numeric)),
		hi:     make([]float64, len(s.Numeric)),
		groups: make([]*TaxNode, len(s.Categorical)),
	}
	for i, a := range s.Numeric {
		c.lo[i], c.hi[i] = a.Lo, a.Hi
	}
	for j, t := range s.Categorical {
		c.groups[j] = t.Root
	}
	return c
}

func (c cell) clone() cell {
	out := cell{
		lo:     append([]float64(nil), c.lo...),
		hi:     append([]float64(nil), c.hi...),
		groups: append([]*TaxNode(nil), c.groups...),
	}
	return out
}

// contains reports whether the record falls inside the cell.
func (s Schema) contains(c cell, r Record) bool {
	for i := range s.Numeric {
		if r.Nums[i] < c.lo[i] || r.Nums[i] >= c.hi[i] {
			return false
		}
	}
	for j, t := range s.Categorical {
		if !t.covers(c.groups[j], r.Cats[j]) {
			return false
		}
	}
	return true
}

// splitCell splits the cell along attribute index attr (numeric attributes
// first, then categorical, in schema order). A categorical attribute whose
// current group is already a leaf value cannot split; splitCell then
// returns nil and the caller rotates to the next attribute.
func (s Schema) splitCell(c cell, attr int) []cell {
	if attr < len(s.Numeric) {
		mid := (c.lo[attr] + c.hi[attr]) / 2
		if mid <= c.lo[attr] || mid >= c.hi[attr] {
			return nil // float-precision floor
		}
		left, right := c.clone(), c.clone()
		left.hi[attr] = mid
		right.lo[attr] = mid
		return []cell{left, right}
	}
	j := attr - len(s.Numeric)
	group := c.groups[j]
	if len(group.Children) == 0 {
		return nil
	}
	out := make([]cell, 0, len(group.Children))
	for _, child := range group.Children {
		cc := c.clone()
		cc.groups[j] = child
		out = append(out, cc)
	}
	return out
}

// Node is one released node of a hybrid decomposition.
type Node struct {
	// NumericRanges holds [lo, hi) per numeric attribute.
	NumericRanges [][2]float64
	// Categories holds the taxonomy group label per categorical attribute.
	Categories []string
	Depth      int
	Count      float64 // noisy count (leaves carry noise; internal = sums)
	Children   []*Node
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Tree is the released hybrid decomposition.
type Tree struct {
	Schema Schema
	Root   *Node
}

// Build runs PrivTree over the hybrid domain under total budget eps (ε/2
// structure + ε/2 leaf counts, as in the spatial pipeline). Attributes
// split round-robin by depth; attributes that can no longer split (leaf
// categories, exhausted float precision) are skipped in rotation, and a
// node with no splittable attribute becomes a leaf regardless of its
// count.
func Build(schema Schema, records []Record, eps float64, rng *rand.Rand) (*Tree, error) {
	for i, r := range records {
		if err := schema.Validate(r); err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
	}
	if schema.attrCount() == 0 {
		return nil, fmt.Errorf("hybrid: empty schema")
	}
	beta := schema.maxBranching()
	params := core.Params{Epsilon: eps / 2, Fanout: beta}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	dec := core.NewDecider(params, rng)
	mech := dp.LaplaceMechanism{Epsilon: eps / 2, Sensitivity: 1}

	var grow func(c cell, recs []Record, depth int) *Node
	grow = func(c cell, recs []Record, depth int) *Node {
		node := &Node{Depth: depth, Count: math.NaN()}
		node.NumericRanges = make([][2]float64, len(schema.Numeric))
		for i := range schema.Numeric {
			node.NumericRanges[i] = [2]float64{c.lo[i], c.hi[i]}
		}
		node.Categories = make([]string, len(schema.Categorical))
		for j := range schema.Categorical {
			node.Categories[j] = c.groups[j].Value
		}

		if dec.ShouldSplit(float64(len(recs)), depth) {
			// Rotate through attributes starting at depth mod #attrs and
			// take the first that can still split.
			total := schema.attrCount()
			for off := 0; off < total; off++ {
				attr := (depth + off) % total
				kids := schema.splitCell(c, attr)
				if kids == nil {
					continue
				}
				node.Children = make([]*Node, len(kids))
				buckets := make([][]Record, len(kids))
				for _, r := range recs {
					for ki, kc := range kids {
						if schema.contains(kc, r) {
							buckets[ki] = append(buckets[ki], r)
							break
						}
					}
				}
				for ki, kc := range kids {
					node.Children[ki] = grow(kc, buckets[ki], depth+1)
				}
				break
			}
		}
		if node.IsLeaf() {
			node.Count = mech.Release(rng, float64(len(recs)))
		}
		return node
	}
	root := grow(schema.rootCell(), records, 0)
	sumCounts(root)
	return &Tree{Schema: schema, Root: root}, nil
}

func sumCounts(n *Node) float64 {
	if n.IsLeaf() {
		return n.Count
	}
	total := 0.0
	for _, c := range n.Children {
		total += sumCounts(c)
	}
	n.Count = total
	return total
}

// Query describes a hybrid count query: an interval per numeric attribute
// (nil entry = unconstrained) and a set of acceptable category values per
// categorical attribute (nil = unconstrained).
type Query struct {
	NumRanges []*[2]float64
	CatValues []map[string]bool
}

// Count estimates the number of records matching q, with the uniformity
// assumption on partially covered leaves (numeric attributes contribute
// covered fraction; a categorical leaf group partially covered by the
// value set contributes the fraction of its leaf values included).
func (t *Tree) Count(q Query) float64 {
	var visit func(n *Node) float64
	visit = func(n *Node) float64 {
		frac := t.coverage(n, q)
		if frac == 0 {
			return 0
		}
		if frac == 1 || n.IsLeaf() {
			return n.Count * frac
		}
		total := 0.0
		for _, c := range n.Children {
			total += visit(c)
		}
		return total
	}
	return visit(t.Root)
}

// coverage returns the fraction of the node's domain volume that q covers
// (1 = fully contained, 0 = disjoint), treating attributes independently.
func (t *Tree) coverage(n *Node, q Query) float64 {
	frac := 1.0
	for i, r := range n.NumericRanges {
		if i < len(q.NumRanges) && q.NumRanges[i] != nil {
			qr := q.NumRanges[i]
			lo := math.Max(r[0], qr[0])
			hi := math.Min(r[1], qr[1])
			if hi <= lo {
				return 0
			}
			frac *= (hi - lo) / (r[1] - r[0])
		}
	}
	for j, tax := range t.Schema.Categorical {
		if j < len(q.CatValues) && q.CatValues[j] != nil {
			group := findGroup(tax.Root, n.Categories[j])
			if group == nil {
				return 0
			}
			leaves := leafValues(group)
			hit := 0
			for _, v := range leaves {
				if q.CatValues[j][v] {
					hit++
				}
			}
			if hit == 0 {
				return 0
			}
			frac *= float64(hit) / float64(len(leaves))
		}
	}
	return frac
}

func findGroup(n *TaxNode, value string) *TaxNode {
	if n.Value == value {
		return n
	}
	for _, c := range n.Children {
		if g := findGroup(c, value); g != nil {
			return g
		}
	}
	return nil
}

func leafValues(n *TaxNode) []string {
	if len(n.Children) == 0 {
		return []string{n.Value}
	}
	var out []string
	for _, c := range n.Children {
		out = append(out, leafValues(c)...)
	}
	return out
}
