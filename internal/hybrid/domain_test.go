package hybrid

import (
	"math"
	"testing"

	"privtree/internal/dp"
)

// testSchema: one numeric attribute (age ∈ [0, 100)) and one categorical
// attribute (region taxonomy: world → {north {a,b}, south {c,d,e}}).
func testSchema(t *testing.T) Schema {
	t.Helper()
	tax, err := NewTaxonomy("region", &TaxNode{
		Value: "world",
		Children: []*TaxNode{
			{Value: "north", Children: []*TaxNode{{Value: "a"}, {Value: "b"}}},
			{Value: "south", Children: []*TaxNode{{Value: "c"}, {Value: "d"}, {Value: "e"}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return Schema{
		Numeric:     []Numeric{{Label: "age", Lo: 0, Hi: 100}},
		Categorical: []*Taxonomy{tax},
	}
}

func makeRecords(n int) []Record {
	out := make([]Record, n)
	regions := []string{"a", "a", "a", "b", "c"} // region a dominates
	for i := range out {
		age := float64((i*7)%40) + 20 // ages 20..59
		out[i] = Record{Nums: []float64{age}, Cats: []string{regions[i%len(regions)]}}
	}
	return out
}

func TestTaxonomyValidation(t *testing.T) {
	if _, err := NewTaxonomy("x", &TaxNode{Value: "root", Children: []*TaxNode{
		{Value: "dup"}, {Value: "dup"},
	}}); err == nil {
		t.Fatal("duplicate leaf values accepted")
	}
	if _, err := NewTaxonomy("x", &TaxNode{Value: "only"}); err == nil {
		t.Fatal("split-free taxonomy accepted")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := testSchema(t)
	good := Record{Nums: []float64{50}, Cats: []string{"a"}}
	if err := s.Validate(good); err != nil {
		t.Fatal(err)
	}
	bad := []Record{
		{Nums: []float64{150}, Cats: []string{"a"}}, // out of range
		{Nums: []float64{50}, Cats: []string{"z"}},  // unknown category
		{Nums: []float64{50}, Cats: []string{}},     // arity
		{Nums: []float64{}, Cats: []string{"a"}},    // arity
		{Nums: []float64{-1}, Cats: []string{"a"}},  // below lo
	}
	for i, r := range bad {
		if err := s.Validate(r); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
}

func TestSchemaMaxBranching(t *testing.T) {
	s := testSchema(t)
	// south has 3 children > numeric's 2.
	if got := s.maxBranching(); got != 3 {
		t.Fatalf("β = %d, want 3", got)
	}
}

func TestSplitCellNumeric(t *testing.T) {
	s := testSchema(t)
	kids := s.splitCell(s.rootCell(), 0)
	if len(kids) != 2 {
		t.Fatalf("numeric split produced %d cells", len(kids))
	}
	if kids[0].hi[0] != 50 || kids[1].lo[0] != 50 {
		t.Fatalf("bisection not at midpoint: %v / %v", kids[0].hi[0], kids[1].lo[0])
	}
}

func TestSplitCellCategorical(t *testing.T) {
	s := testSchema(t)
	kids := s.splitCell(s.rootCell(), 1)
	if len(kids) != 2 {
		t.Fatalf("taxonomy root split produced %d cells", len(kids))
	}
	// Splitting north yields its two leaves; splitting a leaf yields nil.
	north := kids[0]
	grand := s.splitCell(north, 1)
	if len(grand) != 2 {
		t.Fatalf("north split produced %d", len(grand))
	}
	if s.splitCell(grand[0], 1) != nil {
		t.Fatal("leaf category split should be nil")
	}
}

func TestBuildProducesTree(t *testing.T) {
	s := testSchema(t)
	recs := makeRecords(50000)
	tree, err := Build(s, recs, 1.0, dp.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() {
		t.Fatal("root did not split on 50k records")
	}
	if math.Abs(tree.Root.Count-50000) > 2000 {
		t.Fatalf("root count %v far from 50000", tree.Root.Count)
	}
}

func TestBuildRejectsBadRecords(t *testing.T) {
	s := testSchema(t)
	if _, err := Build(s, []Record{{Nums: []float64{500}, Cats: []string{"a"}}}, 1, dp.NewRand(2)); err == nil {
		t.Fatal("invalid record accepted")
	}
	if _, err := Build(Schema{}, nil, 1, dp.NewRand(3)); err == nil {
		t.Fatal("empty schema accepted")
	}
}

func TestCountCategoricalQuery(t *testing.T) {
	s := testSchema(t)
	recs := makeRecords(50000)
	tree, err := Build(s, recs, 2.0, dp.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	// Exact: region "a" holds 3/5 of the records.
	q := Query{
		NumRanges: []*[2]float64{nil},
		CatValues: []map[string]bool{{"a": true}},
	}
	got := tree.Count(q)
	want := 30000.0
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("category count %v far from %v", got, want)
	}
}

func TestCountNumericRangeQuery(t *testing.T) {
	s := testSchema(t)
	recs := makeRecords(50000)
	tree, err := Build(s, recs, 2.0, dp.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	// Ages are uniform over {20..59}; [20,40) holds half.
	q := Query{
		NumRanges: []*[2]float64{{20, 40}},
		CatValues: []map[string]bool{nil},
	}
	got := tree.Count(q)
	want := 25000.0
	if math.Abs(got-want)/want > 0.2 {
		t.Fatalf("range count %v far from %v", got, want)
	}
}

func TestCountCombinedQuery(t *testing.T) {
	s := testSchema(t)
	recs := makeRecords(50000)
	tree, err := Build(s, recs, 2.0, dp.NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	// Region c (1/5 of records) AND age [20,40) (half): expect ~5000.
	q := Query{
		NumRanges: []*[2]float64{{20, 40}},
		CatValues: []map[string]bool{{"c": true}},
	}
	got := tree.Count(q)
	want := 5000.0
	if math.Abs(got-want)/want > 0.35 {
		t.Fatalf("combined count %v far from %v", got, want)
	}
}

func TestCountUnconstrainedIsTotal(t *testing.T) {
	s := testSchema(t)
	recs := makeRecords(20000)
	tree, err := Build(s, recs, 1.0, dp.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{NumRanges: []*[2]float64{nil}, CatValues: []map[string]bool{nil}}
	if got := tree.Count(q); math.Abs(got-tree.Root.Count) > 1e-6 {
		t.Fatalf("unconstrained query %v != root %v", got, tree.Root.Count)
	}
}

func TestLeafCountsSumToInternal(t *testing.T) {
	s := testSchema(t)
	recs := makeRecords(20000)
	tree, err := Build(s, recs, 1.0, dp.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node) float64
	walk = func(n *Node) float64 {
		if n.IsLeaf() {
			return n.Count
		}
		sum := 0.0
		for _, c := range n.Children {
			sum += walk(c)
		}
		if math.Abs(sum-n.Count) > 1e-6 {
			t.Fatalf("internal count %v != children sum %v", n.Count, sum)
		}
		return sum
	}
	walk(tree.Root)
}

func TestPureNumericSchemaWorks(t *testing.T) {
	s := Schema{Numeric: []Numeric{{Label: "x", Lo: 0, Hi: 1}, {Label: "y", Lo: 0, Hi: 1}}}
	recs := make([]Record, 10000)
	for i := range recs {
		recs[i] = Record{Nums: []float64{float64(i%100) / 100, float64(i%97) / 97}}
	}
	tree, err := Build(s, recs, 1.0, dp.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{NumRanges: []*[2]float64{{0, 0.5}, nil}}
	got := tree.Count(q)
	if math.Abs(got-5000)/5000 > 0.2 {
		t.Fatalf("half-space count %v", got)
	}
}

func TestPureCategoricalSchemaWorks(t *testing.T) {
	tax, err := NewTaxonomy("color", &TaxNode{Value: "all", Children: []*TaxNode{
		{Value: "warm", Children: []*TaxNode{{Value: "red"}, {Value: "orange"}}},
		{Value: "cool", Children: []*TaxNode{{Value: "blue"}, {Value: "green"}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s := Schema{Categorical: []*Taxonomy{tax}}
	recs := make([]Record, 8000)
	colors := []string{"red", "red", "blue", "green"}
	for i := range recs {
		recs[i] = Record{Cats: []string{colors[i%4]}}
	}
	tree, err := Build(s, recs, 1.0, dp.NewRand(10))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{CatValues: []map[string]bool{{"red": true}}}
	got := tree.Count(q)
	if math.Abs(got-4000)/4000 > 0.2 {
		t.Fatalf("red count %v, want ≈4000", got)
	}
}
