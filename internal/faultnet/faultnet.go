// Package faultnet is a seeded fault-injection TCP proxy for chaos
// testing: it sits between a client and a server and, per connection,
// rolls one fault from a deterministic PRNG — added latency, a mid-stream
// connection reset, a truncated response (clean FIN after a few bytes),
// a blackhole (accept, read, never reply), a one-way partition (the
// request reaches the server, the response is dropped), or a bandwidth
// throttle (the response dribbles out at a capped rate). Everything else
// is proxied byte-for-byte.
//
// Faults are rolled per *connection*, so a chaos client that disables
// HTTP keep-alives gets an independent roll for every request. The seed
// makes a failing chaos run reproducible: re-run with the logged seed and
// the same connection-order faults fire.
package faultnet

import (
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault is one injected failure mode.
type Fault int

const (
	// FaultNone proxies the connection untouched.
	FaultNone Fault = iota
	// FaultLatency delays the connection before proxying it.
	FaultLatency
	// FaultReset forwards a few response bytes, then resets the client
	// connection (RST via SO_LINGER=0) — the client sees a mid-body
	// connection reset, the canonical lost-acknowledgment failure.
	FaultReset
	// FaultTruncate forwards a few response bytes, then closes cleanly —
	// the client sees a well-formed TCP stream carrying a mangled reply.
	FaultTruncate
	// FaultBlackhole accepts and reads the request but never replies;
	// the client hangs until its own deadline fires.
	FaultBlackhole
	// FaultPartitionOneWay forwards the request to the server but drops
	// every response byte — a one-way partition. Unlike FaultBlackhole the
	// server DOES the work (debits budget, builds the release) and only
	// the acknowledgment is lost, the exact shape that tempts a client
	// into double-spending retries.
	FaultPartitionOneWay
	// FaultThrottle proxies both directions faithfully but limits the
	// response to ThrottleBytesPerSec — a congested or rate-limited link.
	// Requests succeed, slowly; catch-up streams stretch out.
	FaultThrottle
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultLatency:
		return "latency"
	case FaultReset:
		return "reset"
	case FaultTruncate:
		return "truncate"
	case FaultBlackhole:
		return "blackhole"
	case FaultPartitionOneWay:
		return "partition-one-way"
	case FaultThrottle:
		return "throttle"
	}
	return "unknown"
}

// Options tunes a Proxy. The probabilities are cumulative-independent:
// each connection rolls one uniform number and picks the first fault
// whose cumulative band it lands in; they must sum to at most 1, with
// the remainder proxied cleanly.
type Options struct {
	// Seed fixes the fault schedule; the same seed over the same
	// connection order injects the same faults.
	Seed uint64

	LatencyProb   float64
	ResetProb     float64
	TruncateProb  float64
	BlackholeProb float64
	PartitionProb float64
	ThrottleProb  float64

	// Latency is the injected delay for FaultLatency; 0 means 20ms.
	Latency time.Duration
	// CutAfter is how many response bytes FaultReset / FaultTruncate
	// forward before cutting; 0 means 12 — enough for the status line to
	// start, not enough to be useful.
	CutAfter int64
	// ThrottleBytesPerSec caps the response rate for FaultThrottle;
	// 0 means 64 KiB/s.
	ThrottleBytesPerSec int64
}

// Counts is a snapshot of injected faults by kind.
type Counts struct {
	Conns, None, Latency, Reset, Truncate, Blackhole, Partition, Throttle int64
}

// Proxy is a running fault-injection proxy. Close it to release the
// listener and every open connection.
type Proxy struct {
	opts   Options
	target string
	ln     net.Listener

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed atomic.Bool
	wg     sync.WaitGroup

	nConns, nNone, nLatency, nReset, nTruncate, nBlackhole atomic.Int64
	nPartition, nThrottle                                  atomic.Int64
}

// New starts a proxy on a fresh loopback port forwarding to target
// (host:port).
func New(target string, opts Options) (*Proxy, error) {
	if opts.Latency == 0 {
		opts.Latency = 20 * time.Millisecond
	}
	if opts.CutAfter == 0 {
		opts.CutAfter = 12
	}
	if opts.ThrottleBytesPerSec == 0 {
		opts.ThrottleBytesPerSec = 64 << 10
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		opts:   opts,
		target: target,
		ln:     ln,
		rng:    rand.New(rand.NewPCG(opts.Seed, 0x9e3779b97f4a7c15)),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (dial this instead of the
// target).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Counts reports how many connections got each fault so far.
func (p *Proxy) Counts() Counts {
	return Counts{
		Conns:     p.nConns.Load(),
		None:      p.nNone.Load(),
		Latency:   p.nLatency.Load(),
		Reset:     p.nReset.Load(),
		Truncate:  p.nTruncate.Load(),
		Blackhole: p.nBlackhole.Load(),
		Partition: p.nPartition.Load(),
		Throttle:  p.nThrottle.Load(),
	}
}

// Close stops accepting, severs every open connection (including
// blackholed ones), and waits for the proxy goroutines to exit.
func (p *Proxy) Close() error {
	p.closed.Store(true)
	err := p.ln.Close()
	p.connMu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.connMu.Unlock()
	p.wg.Wait()
	return err
}

// track registers a connection for Close-time severing; it reports false
// (and closes the conn) when the proxy is already closed.
func (p *Proxy) track(c net.Conn) bool {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	if p.closed.Load() {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.connMu.Lock()
	delete(p.conns, c)
	p.connMu.Unlock()
	c.Close()
}

// roll draws the next connection's fault from the seeded schedule.
func (p *Proxy) roll() Fault {
	p.mu.Lock()
	u := p.rng.Float64()
	p.mu.Unlock()
	cum := p.opts.LatencyProb
	if u < cum {
		return FaultLatency
	}
	if cum += p.opts.ResetProb; u < cum {
		return FaultReset
	}
	if cum += p.opts.TruncateProb; u < cum {
		return FaultTruncate
	}
	if cum += p.opts.BlackholeProb; u < cum {
		return FaultBlackhole
	}
	if cum += p.opts.PartitionProb; u < cum {
		return FaultPartitionOneWay
	}
	if cum += p.opts.ThrottleProb; u < cum {
		return FaultThrottle
	}
	return FaultNone
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !p.track(c) {
			return
		}
		p.nConns.Add(1)
		fault := p.roll()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer p.untrack(c)
			p.serve(c, fault)
		}()
	}
}

// serve proxies one client connection under its rolled fault.
func (p *Proxy) serve(client net.Conn, fault Fault) {
	if fault == FaultBlackhole {
		p.nBlackhole.Add(1)
		// Swallow the request and never answer; the client's deadline is
		// its only way out. Close severs this on proxy shutdown.
		_, _ = io.Copy(io.Discard, client)
		return
	}
	if fault == FaultLatency {
		p.nLatency.Add(1)
		time.Sleep(p.opts.Latency)
	}
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	if !p.track(server) {
		return
	}
	defer p.untrack(server)

	// Upstream: client -> server, full fidelity; half-close so the server
	// sees EOF exactly when the client stops sending.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		_, _ = io.Copy(server, client)
		if tc, ok := server.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()

	// Downstream: server -> client, where response faults are injected.
	switch fault {
	case FaultReset:
		p.nReset.Add(1)
		_, _ = io.CopyN(client, server, p.opts.CutAfter)
		if tc, ok := client.(*net.TCPConn); ok {
			// SO_LINGER=0: closing now sends RST, not FIN — the client
			// observes "connection reset by peer" mid-response.
			_ = tc.SetLinger(0)
		}
	case FaultTruncate:
		p.nTruncate.Add(1)
		_, _ = io.CopyN(client, server, p.opts.CutAfter)
	case FaultPartitionOneWay:
		p.nPartition.Add(1)
		// The server's reply is read and dropped: the work happened, the
		// acknowledgment is gone, the client waits out its deadline.
		_, _ = io.Copy(io.Discard, server)
	case FaultThrottle:
		p.nThrottle.Add(1)
		p.throttledCopy(client, server)
	default:
		if fault == FaultNone {
			p.nNone.Add(1)
		}
		_, _ = io.Copy(client, server)
	}
}

// throttledCopy relays src to dst in 50ms quanta capped at
// ThrottleBytesPerSec, so a response of B bytes takes about
// B/ThrottleBytesPerSec seconds to deliver.
func (p *Proxy) throttledCopy(dst io.Writer, src io.Reader) {
	quantum := p.opts.ThrottleBytesPerSec / 20
	if quantum < 1 {
		quantum = 1
	}
	for {
		n, err := io.CopyN(dst, src, quantum)
		if err != nil || n < quantum {
			return
		}
		if p.closed.Load() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}
