package faultnet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// backend returns a plain HTTP server echoing a fixed body, plus a client
// with keep-alives off so every request dials the proxy fresh (one fault
// roll per request).
func backend(t *testing.T) (*httptest.Server, *http.Client) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		_, _ = w.Write([]byte(strings.Repeat("payload!", 64)))
	}))
	t.Cleanup(ts.Close)
	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   2 * time.Second,
	}
	return ts, client
}

func mustProxy(t *testing.T, target string, opts Options) *Proxy {
	t.Helper()
	p, err := New(target, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestProxyPassthrough(t *testing.T) {
	ts, client := backend(t)
	p := mustProxy(t, ts.Listener.Addr().String(), Options{Seed: 1})
	for i := 0; i < 5; i++ {
		resp, err := client.Get("http://" + p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || len(body) != 512 {
			t.Fatalf("clean proxy: err=%v len=%d", err, len(body))
		}
	}
	if c := p.Counts(); c.None != 5 || c.Conns != 5 {
		t.Fatalf("counts = %+v, want 5 clean conns", c)
	}
}

func TestProxyReset(t *testing.T) {
	ts, client := backend(t)
	p := mustProxy(t, ts.Listener.Addr().String(), Options{Seed: 2, ResetProb: 1})
	resp, err := client.Get("http://" + p.Addr())
	if err == nil {
		// The cut lands mid-body: reading must fail even if headers parsed.
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("reset fault: request succeeded, want mid-stream failure")
	}
	if c := p.Counts(); c.Reset != 1 {
		t.Fatalf("counts = %+v, want one reset", c)
	}
}

func TestProxyTruncate(t *testing.T) {
	ts, client := backend(t)
	p := mustProxy(t, ts.Listener.Addr().String(), Options{Seed: 3, TruncateProb: 1, CutAfter: 9})
	resp, err := client.Get("http://" + p.Addr())
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("truncate fault: request succeeded, want short read failure")
	}
	if c := p.Counts(); c.Truncate != 1 {
		t.Fatalf("counts = %+v, want one truncate", c)
	}
}

func TestProxyBlackhole(t *testing.T) {
	ts, _ := backend(t)
	p := mustProxy(t, ts.Listener.Addr().String(), Options{Seed: 4, BlackholeProb: 1})
	client := &http.Client{Timeout: 150 * time.Millisecond}
	start := time.Now()
	_, err := client.Get("http://" + p.Addr())
	if err == nil {
		t.Fatal("blackholed request returned")
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("blackholed request failed after %v, want it to hang to the client deadline", elapsed)
	}
	if c := p.Counts(); c.Blackhole != 1 {
		t.Fatalf("counts = %+v, want one blackhole", c)
	}
}

func TestProxyLatency(t *testing.T) {
	ts, client := backend(t)
	p := mustProxy(t, ts.Listener.Addr().String(), Options{Seed: 5, LatencyProb: 1, Latency: 80 * time.Millisecond})
	start := time.Now()
	resp, err := client.Get("http://" + p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("latency fault: request completed in %v, want >= 80ms", elapsed)
	}
}

// TestProxyPartitionOneWay verifies the one-way partition delivers the
// request (the server does the work) while the client never hears back —
// the lost-acknowledgment shape, distinct from a blackhole where the
// server never sees the request.
func TestProxyPartitionOneWay(t *testing.T) {
	served := make(chan struct{}, 8)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		served <- struct{}{}
		_, _ = w.Write([]byte("acknowledged"))
	}))
	t.Cleanup(ts.Close)
	p := mustProxy(t, ts.Listener.Addr().String(), Options{Seed: 7, PartitionProb: 1})
	client := &http.Client{Timeout: 200 * time.Millisecond}
	start := time.Now()
	_, err := client.Get("http://" + p.Addr())
	if err == nil {
		t.Fatal("partitioned request returned a response")
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("partitioned request failed after %v, want it to hang to the client deadline", elapsed)
	}
	select {
	case <-served:
		// The defining property: the server processed the request.
	case <-time.After(2 * time.Second):
		t.Fatal("one-way partition never delivered the request to the server")
	}
	if c := p.Counts(); c.Partition != 1 {
		t.Fatalf("counts = %+v, want one partition", c)
	}
}

// TestProxyThrottle verifies a throttled response arrives intact but no
// faster than the configured rate.
func TestProxyThrottle(t *testing.T) {
	body := strings.Repeat("x", 4096)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	// 4 KiB body at 8 KiB/s in 50ms quanta: ~10 quanta, >= 400ms on the wire.
	p := mustProxy(t, ts.Listener.Addr().String(), Options{Seed: 8, ThrottleProb: 1, ThrottleBytesPerSec: 8 << 10})
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 10 * time.Second}
	start := time.Now()
	resp, err := client.Get("http://" + p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if err != nil || string(got) != body {
		t.Fatalf("throttled response corrupted: err=%v len=%d", err, len(got))
	}
	if elapsed < 300*time.Millisecond {
		t.Fatalf("throttled 4 KiB response arrived in %v, want >= 300ms at 8 KiB/s", elapsed)
	}
	if c := p.Counts(); c.Throttle != 1 {
		t.Fatalf("counts = %+v, want one throttle", c)
	}
}

// TestProxySeededScheduleIsDeterministic verifies two proxies with one
// seed roll identical fault sequences — the property that makes a chaos
// failure replayable.
func TestProxySeededScheduleIsDeterministic(t *testing.T) {
	opts := Options{Seed: 42, LatencyProb: 0.15, ResetProb: 0.15, TruncateProb: 0.15,
		BlackholeProb: 0.15, PartitionProb: 0.15, ThrottleProb: 0.15}
	ts, _ := backend(t)
	a := mustProxy(t, ts.Listener.Addr().String(), opts)
	b := mustProxy(t, ts.Listener.Addr().String(), opts)
	var sa, sb []Fault
	for i := 0; i < 64; i++ {
		sa = append(sa, a.roll())
		sb = append(sb, b.roll())
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("roll %d: %v vs %v — schedule not deterministic", i, sa[i], sb[i])
		}
	}
}

// TestProxyCloseSeversBlackhole verifies Close unblocks a client wedged
// in a blackholed connection instead of leaking it.
func TestProxyCloseSeversBlackhole(t *testing.T) {
	ts, _ := backend(t)
	p := mustProxy(t, ts.Listener.Addr().String(), Options{Seed: 6, BlackholeProb: 1})
	errc := make(chan error, 1)
	go func() {
		client := &http.Client{Timeout: 10 * time.Second}
		_, err := client.Get("http://" + p.Addr())
		errc <- err
	}()
	// Wait for the connection to reach the proxy, then shut it down.
	waitCond(t, func() bool { return p.Counts().Blackhole == 1 })
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("blackholed request succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not sever the blackholed connection")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return")
	}
}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
