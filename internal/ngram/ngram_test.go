package ngram

import (
	"testing"

	"privtree/internal/dp"
	"privtree/internal/sequence"
	"privtree/internal/synth"
)

func mk(xs ...int) sequence.Seq {
	syms := make([]sequence.Symbol, len(xs))
	for i, x := range xs {
		syms[i] = sequence.Symbol(x)
	}
	return sequence.Seq{Syms: syms}
}

func TestCountAllGramsIncludesTerminal(t *testing.T) {
	d := &sequence.Dataset{Alphabet: sequence.NewAlphabet(2), Seqs: []sequence.Seq{
		mk(0, 1), // with marker: 0 1 &
	}}
	end := sequence.Symbol(2)
	counts := countAllGrams(d, 3, end)
	if counts[sequence.Key([]sequence.Symbol{0, 1})] != 1 {
		t.Fatal("bigram 01 missing")
	}
	if counts[sequence.Key([]sequence.Symbol{1, end})] != 1 {
		t.Fatal("terminal bigram 1& missing")
	}
	if counts[sequence.Key([]sequence.Symbol{0, 1, end})] != 1 {
		t.Fatal("trigram 01& missing")
	}
	if counts[sequence.Key([]sequence.Symbol{end})] != 1 {
		t.Fatal("terminal unigram missing")
	}
}

func TestCountAllGramsOpenSequencesHaveNoTerminal(t *testing.T) {
	d := &sequence.Dataset{Alphabet: sequence.NewAlphabet(2), Seqs: []sequence.Seq{
		{Syms: []sequence.Symbol{0, 1}, Open: true},
	}}
	end := sequence.Symbol(2)
	counts := countAllGrams(d, 2, end)
	if counts[sequence.Key([]sequence.Symbol{1, end})] != 0 {
		t.Fatal("open sequence produced a terminal gram")
	}
}

func TestBuildRetainsFrequentGrams(t *testing.T) {
	// 1000 copies of 0101: the model must retain gram 01 at modest ε.
	seqs := make([]sequence.Seq, 1000)
	for i := range seqs {
		seqs[i] = mk(0, 1, 0, 1)
	}
	d := &sequence.Dataset{Alphabet: sequence.NewAlphabet(2), Seqs: seqs}
	m := Build(d, Config{Epsilon: 1, H: 3, LTop: 5}, dp.NewRand(1))
	if _, ok := m.Counts[sequence.Key([]sequence.Symbol{0, 1})]; !ok {
		t.Fatal("frequent bigram 01 not retained")
	}
	if est := m.EstimateFrequency([]sequence.Symbol{0, 1}); est < 1000 || est > 3000 {
		t.Fatalf("estimate(01) = %v, want ≈2000", est)
	}
}

func TestBuildPrunesRareGrams(t *testing.T) {
	seqs := make([]sequence.Seq, 1000)
	for i := range seqs {
		seqs[i] = mk(0, 0)
	}
	seqs[0] = mk(1, 1) // rare
	d := &sequence.Dataset{Alphabet: sequence.NewAlphabet(2), Seqs: seqs}
	m := Build(d, Config{Epsilon: 0.5, H: 3, LTop: 3}, dp.NewRand(2))
	if _, ok := m.Counts[sequence.Key([]sequence.Symbol{1, 1})]; ok {
		t.Fatal("rare gram 11 survived the noise threshold")
	}
}

func TestTopKPrecisionOnStructuredData(t *testing.T) {
	data := synth.MoocLike(20000, dp.NewRand(3))
	trunc, _ := data.Truncate(50)
	exact := sequence.TopK(data, 50, 4)
	m := Build(trunc, Config{Epsilon: 8, H: 5, LTop: 50}, dp.NewRand(4))
	p := sequence.Precision(exact, m.TopK(50, 4), 50)
	if p < 0.6 {
		t.Fatalf("N-gram precision %v < 0.6 at ε=8", p)
	}
}

func TestGenerateRespectsCapAndCount(t *testing.T) {
	data := synth.MSNBCLike(5000, dp.NewRand(5))
	trunc, _ := data.Truncate(20)
	m := Build(trunc, Config{Epsilon: 2, H: 4, LTop: 20}, dp.NewRand(6))
	out := m.Generate(500, 20, dp.NewRand(7))
	if out.N() != 500 {
		t.Fatalf("generated %d", out.N())
	}
	for _, s := range out.Seqs {
		if s.Len() > 20 {
			t.Fatalf("sample length %d exceeds cap", s.Len())
		}
	}
}

func TestGenerateLengthDistributionRoughlyMatches(t *testing.T) {
	data := synth.MSNBCLike(30000, dp.NewRand(8))
	trunc, _ := data.Truncate(20)
	m := Build(trunc, Config{Epsilon: 4, H: 5, LTop: 20}, dp.NewRand(9))
	out := m.Generate(30000, 20, dp.NewRand(10))
	tv := sequence.TotalVariation(trunc.LengthDistribution(25), out.LengthDistribution(25))
	if tv > 0.25 {
		t.Fatalf("TV %v too large at ε=4", tv)
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := &sequence.Dataset{Alphabet: sequence.NewAlphabet(2), Seqs: []sequence.Seq{mk(0)}}
	m := Build(d, Config{Epsilon: 1}, dp.NewRand(11))
	if m.H != 5 {
		t.Fatalf("default H = %d, want 5", m.H)
	}
}

func TestHigherHeightRetainsLongerGrams(t *testing.T) {
	seqs := make([]sequence.Seq, 2000)
	for i := range seqs {
		seqs[i] = mk(0, 1, 0, 1, 0, 1)
	}
	d := &sequence.Dataset{Alphabet: sequence.NewAlphabet(2), Seqs: seqs}
	shallow := Build(d, Config{Epsilon: 4, H: 2, LTop: 7}, dp.NewRand(12))
	deep := Build(d, Config{Epsilon: 4, H: 4, LTop: 7}, dp.NewRand(12))
	long := sequence.Key([]sequence.Symbol{0, 1, 0, 1})
	if _, ok := shallow.Counts[long]; ok {
		t.Fatal("H=2 model retained a 4-gram")
	}
	if _, ok := deep.Counts[long]; !ok {
		t.Fatal("H=4 model missed the dominant 4-gram")
	}
}
