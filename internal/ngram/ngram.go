// Package ngram implements the N-gram baseline (Chen, Acs & Castelluccia,
// CCS'12 style): a variable-length n-gram exploration tree of maximum
// height h (the paper uses nmax = 5), with per-level Laplace budgets and
// noise-floor pruning. It is the state-of-the-art competitor in the
// paper's sequence experiments (Figures 6, 7, 12).
package ngram

import (
	"math/rand/v2"

	"privtree/internal/dp"
	"privtree/internal/sequence"
)

// Config parameterizes the model.
type Config struct {
	Epsilon float64
	// H is the maximum gram length (the paper's nmax; default 5).
	H int
	// LTop bounds sequence length; the count of any gram changes by at
	// most l⊤ when one sequence is inserted, which calibrates the noise.
	LTop int
	// ThresholdFactor prunes grams whose noisy count is below
	// factor × noise scale; 0 means the default 2 (below twice the noise
	// scale a count is statistically indistinguishable from empty).
	ThresholdFactor float64
}

// Model is the released n-gram synopsis: noisy occurrence counts for every
// retained gram, where grams may end with the terminal marker & (encoded
// as symbol index |I|) so that synthetic generation can terminate.
type Model struct {
	Alphabet sequence.Alphabet
	H        int
	LTop     int
	// Counts maps sequence.Key(gram) → noisy count. Terminal grams use
	// the extended symbol |I| as their last element.
	Counts map[string]float64
	end    sequence.Symbol
}

// Build constructs the model under cfg.Epsilon total budget, ε/H per gram
// level (sequential composition across levels; within a level the counts
// of disjoint gram extensions change by at most l⊤ in total under one
// sequence insertion).
func Build(data *sequence.Dataset, cfg Config, rng *rand.Rand) *Model {
	if cfg.H == 0 {
		cfg.H = 5
	}
	if cfg.ThresholdFactor == 0 {
		cfg.ThresholdFactor = 2
	}
	if cfg.LTop == 0 {
		cfg.LTop = data.MaxLen() + 1
	}
	k := data.Alphabet.Size
	end := sequence.Symbol(k)
	m := &Model{
		Alphabet: data.Alphabet,
		H:        cfg.H,
		LTop:     cfg.LTop,
		Counts:   make(map[string]float64),
		end:      end,
	}
	epsLevel := cfg.Epsilon / float64(cfg.H)
	scale := float64(cfg.LTop) / epsLevel
	threshold := cfg.ThresholdFactor * scale

	// One pass over the data counts every gram up to length H (with the
	// terminal marker materialized), so exploration is pure map lookups.
	exactCounts := countAllGrams(data, cfg.H, end)

	// Level-synchronous exploration: candidates at level l are the
	// extensions of retained level-(l−1) grams (all unigrams at level 1).
	type gram struct {
		syms []sequence.Symbol
	}
	var frontier []gram
	for x := 0; x <= k; x++ { // include the terminal unigram "&"
		frontier = append(frontier, gram{[]sequence.Symbol{sequence.Symbol(x)}})
	}
	for level := 1; level <= cfg.H && len(frontier) > 0; level++ {
		var next []gram
		for _, g := range frontier {
			exact := exactCounts[sequence.Key(g.syms)]
			noisy := float64(exact) + dp.LapNoise(rng, scale)
			if noisy < threshold {
				continue
			}
			m.Counts[sequence.Key(g.syms)] = noisy
			// Terminal grams cannot be extended.
			if g.syms[len(g.syms)-1] == end || level == cfg.H {
				continue
			}
			for x := 0; x <= k; x++ {
				ext := append(append([]sequence.Symbol(nil), g.syms...), sequence.Symbol(x))
				next = append(next, gram{ext})
			}
		}
		frontier = next
	}
	return m
}

// countAllGrams counts every gram of length ≤ maxLen in one pass, treating
// the terminal marker (symbol index |I|) as a virtual symbol appended to
// every closed sequence.
func countAllGrams(data *sequence.Dataset, maxLen int, end sequence.Symbol) map[string]int {
	counts := make(map[string]int)
	buf := make([]sequence.Symbol, 0, 64)
	for _, s := range data.Seqs {
		buf = append(buf[:0], s.Syms...)
		if !s.Open {
			buf = append(buf, end)
		}
		for i := 0; i < len(buf); i++ {
			limit := maxLen
			if len(buf)-i < limit {
				limit = len(buf) - i
			}
			for l := 1; l <= limit; l++ {
				counts[sequence.Key(buf[i:i+l])]++
			}
		}
	}
	return counts
}

// EstimateFrequency returns the model's count estimate for a string over I
// (no terminal marker): the stored noisy count if the gram was retained,
// otherwise a Markov-chain extension from its longest retained suffix
// statistics, and 0 when nothing matches.
func (m *Model) EstimateFrequency(sq []sequence.Symbol) float64 {
	if c, ok := m.Counts[sequence.Key(sq)]; ok {
		return c
	}
	if len(sq) <= 1 {
		return 0
	}
	// Markov extension: estimate(s) ≈ estimate(s[:n-1]) · P(last | context)
	// where the conditional comes from the longest retained context.
	base := m.EstimateFrequency(sq[:len(sq)-1])
	if base <= 0 {
		return 0
	}
	p := m.conditional(sq[:len(sq)-1], sq[len(sq)-1])
	return base * p
}

// conditional estimates P(next | history) from the longest retained
// context gram.
func (m *Model) conditional(history []sequence.Symbol, next sequence.Symbol) float64 {
	k := m.Alphabet.Size
	for start := 0; start < len(history); start++ {
		ctx := history[start:]
		if len(ctx) >= m.H {
			continue
		}
		total := 0.0
		var hit float64
		found := false
		for x := 0; x <= k; x++ {
			ext := append(append([]sequence.Symbol(nil), ctx...), sequence.Symbol(x))
			if c, ok := m.Counts[sequence.Key(ext)]; ok && c > 0 {
				total += c
				found = true
				if sequence.Symbol(x) == next {
					hit = c
				}
			}
		}
		if found && total > 0 {
			return hit / total
		}
	}
	// Fall back to unigram frequencies.
	total := 0.0
	var hit float64
	for x := 0; x <= k; x++ {
		if c, ok := m.Counts[sequence.Key([]sequence.Symbol{sequence.Symbol(x)})]; ok && c > 0 {
			total += c
			if sequence.Symbol(x) == next {
				hit = c
			}
		}
	}
	if total <= 0 {
		return 0
	}
	return hit / total
}

// TopK returns the k most frequent strings of length ≤ maxLen according to
// the model (strings over I only; terminal grams are generation metadata).
func (m *Model) TopK(k, maxLen int) []sequence.StringCount {
	scored := make(map[string]float64)
	var expand func(prefix []sequence.Symbol)
	expand = func(prefix []sequence.Symbol) {
		if len(prefix) > 0 {
			if est := m.EstimateFrequency(prefix); est > 0 {
				scored[sequence.Key(prefix)] = est
			}
		}
		if len(prefix) >= maxLen {
			return
		}
		for x := 0; x < m.Alphabet.Size; x++ {
			next := append(append([]sequence.Symbol(nil), prefix...), sequence.Symbol(x))
			if m.EstimateFrequency(next) > 0 {
				expand(next)
			}
		}
	}
	expand(nil)
	return sequence.TopKOfFloat(scored, k)
}

// Sample draws one synthetic sequence from the model's Markov chain.
func (m *Model) Sample(rng *rand.Rand, maxLen int) sequence.Seq {
	k := m.Alphabet.Size
	var syms []sequence.Symbol
	for len(syms) < maxLen {
		// Distribution over next symbol (including &) from the longest
		// retained context.
		probs := make([]float64, k+1)
		total := 0.0
		for x := 0; x <= k; x++ {
			p := m.conditional(syms, sequence.Symbol(x))
			probs[x] = p
			total += p
		}
		if total <= 0 {
			break
		}
		u := rng.Float64() * total
		pick := k
		for x, p := range probs {
			u -= p
			if u <= 0 {
				pick = x
				break
			}
		}
		if pick == k {
			return sequence.Seq{Syms: syms}
		}
		syms = append(syms, sequence.Symbol(pick))
	}
	return sequence.Seq{Syms: syms, Open: true}
}

// Generate samples n synthetic sequences with length cap maxLen.
func (m *Model) Generate(n, maxLen int, rng *rand.Rand) *sequence.Dataset {
	seqs := make([]sequence.Seq, n)
	for i := range seqs {
		seqs[i] = m.Sample(rng, maxLen)
	}
	return &sequence.Dataset{Alphabet: m.Alphabet, Seqs: seqs}
}
