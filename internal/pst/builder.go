package pst

import "privtree/internal/sequence"

// Window is one node's set of prediction points: a view into the in-place
// partitioned occurrence array. Each point is the SLAB INDEX of the
// predicted symbol in the corpus (a boundary sentinel, value |I|, marks the
// terminal & of a closed sequence — which is exactly histogram slot |I|, so
// tallying needs no branch). Sibling windows are disjoint subranges of
// their parent's window, so subtree builds may run concurrently.
type Window struct {
	pts []int32
}

// Len returns the number of prediction points in the window.
func (w Window) Len() int { return len(w.pts) }

// levelScratch is the reusable per-recursion-level working set of Expand:
// a staging buffer for the counting sort, bucket boundary/cursor arrays,
// and the child-window headers. Allocated lazily, once per level, so a
// whole build costs O(height) scratch allocations rather than O(nodes).
type levelScratch struct {
	buf    []int32
	bounds []int32
	cursor []int32
	wins   []Window
}

// Scratch holds the per-level working sets of one goroutine's build
// recursion. The zero value is ready to use.
type Scratch struct {
	levels []levelScratch
}

func (sc *Scratch) level(depth, beta int) *levelScratch {
	for len(sc.levels) <= depth {
		sc.levels = append(sc.levels, levelScratch{})
	}
	ls := &sc.levels[depth]
	if ls.bounds == nil {
		ls.bounds = make([]int32, beta+1)
		ls.cursor = make([]int32, beta)
		ls.wins = make([]Window, beta)
	}
	return ls
}

// Builder assembles a Tree in arena form over one columnar corpus. All PST
// constructors — the private markov build, the exact build, and tests — go
// through a Builder, so they share the same allocation discipline: nodes
// land in a growing []Node, histograms in one growing []float64 slab, and
// prediction points are partitioned in place within one shared array.
type Builder struct {
	data *sequence.Corpus
	k    int // |I|
	beta int // |I|+1

	nodes []Node
	hists []float64
}

// NewBuilder prepares construction over the corpus. sizeHint, if positive,
// pre-sizes the node arena.
func NewBuilder(c *sequence.Corpus, sizeHint int) *Builder {
	if sizeHint < 1 {
		sizeHint = 16
	}
	k := c.Alphabet.Size
	return &Builder{
		data:  c,
		k:     k,
		beta:  k + 1,
		nodes: make([]Node, 0, sizeHint),
		hists: make([]float64, 0, sizeHint*(k+1)),
	}
}

// Hist returns node i's histogram row for in-place inspection or update
// during construction.
func (b *Builder) Hist(i int32) []float64 {
	return b.hists[int(i)*b.beta : (int(i)+1)*b.beta : (int(i)+1)*b.beta]
}

// FirstChild returns node i's child-block start (0 for leaves).
func (b *Builder) FirstChild(i int32) int32 { return b.nodes[i].FirstChild }

// Len returns the number of nodes added so far.
func (b *Builder) Len() int { return len(b.nodes) }

// appendNode adds one node with a zeroed histogram row.
func (b *Builder) appendNode() int32 {
	idx := int32(len(b.nodes))
	b.nodes = append(b.nodes, Node{})
	for x := 0; x < b.beta; x++ {
		b.hists = append(b.hists, 0)
	}
	return idx
}

// NewRoot places the root node (index 0) with its histogram and prediction
// points populated: the empty context matches before every position of
// every sequence, including the terminal slot of closed ones. The returned
// window owns the ONE occurrence array the whole build partitions in place.
func (b *Builder) NewRoot() (int32, Window) {
	if len(b.nodes) != 0 {
		panic("pst: Builder.NewRoot on a non-empty builder")
	}
	root := b.appendNode()
	pts := make([]int32, 0, b.data.PredictionPoints())
	for i := 0; i < b.data.N(); i++ {
		off, n, open := b.data.Head(i)
		limit := n
		if !open {
			limit++ // predicting & at the sentinel slot
		}
		for j := int32(0); j < limit; j++ {
			pts = append(pts, off+j)
		}
	}
	b.tally(b.Hist(root), pts)
	return root, Window{pts: pts}
}

// tally adds the predicted symbol of every point to hist. A point's
// predicted symbol is the slab entry it addresses; closed-sequence terminal
// points address the boundary sentinel, whose value |I| is the & slot.
func (b *Builder) tally(hist []float64, pts []int32) {
	slab := b.data.Slab()
	for _, p := range pts {
		hist[slab[p]]++
	}
}

// Expand materializes the β children of node idx, whose context has ctxLen
// symbols: the parent's prediction points are partitioned by the symbol
// preceding each context occurrence (a stable counting sort, in place via
// the level's staging buffer), child histograms are tallied over their
// buckets, and the children are appended as one contiguous block. It
// returns the first child's index and the β child windows (aliases into
// the level scratch, valid until the same level is expanded again).
//
// A node whose context is $-anchored cannot be expanded (condition C1 of
// Section 4.2); anchored nodes are the |I|-th child of their parent and the
// caller must not pass them back in.
func (b *Builder) Expand(idx int32, w Window, ctxLen int, sc *Scratch) (int32, []Window) {
	ls := sc.level(ctxLen, b.beta)
	slab := b.data.Slab()
	k := b.k
	shift := int32(ctxLen + 1)

	// Bucket = the symbol immediately before the context occurrence; a
	// boundary sentinel (value |I|) means the context starts at position 0,
	// i.e. the $ bucket — which IS bucket |I|, so no branch is needed.
	counts := ls.bounds
	for x := range counts {
		counts[x] = 0
	}
	for _, p := range w.pts {
		counts[slab[p-shift]]++
	}
	// Prefix-sum counts into bucket start offsets (bounds[x]..bounds[x+1]).
	total := int32(0)
	for x := 0; x <= k; x++ {
		c := counts[x]
		counts[x] = total
		ls.cursor[x] = total
		total += c
	}
	counts[k+1] = total

	if cap(ls.buf) < len(w.pts) {
		ls.buf = make([]int32, len(w.pts))
	}
	buf := ls.buf[:len(w.pts)]
	for _, p := range w.pts {
		s := slab[p-shift]
		buf[ls.cursor[s]] = p
		ls.cursor[s]++
	}
	copy(w.pts, buf)

	first := int32(len(b.nodes))
	for x := 0; x <= k; x++ {
		b.appendNode()
	}
	b.nodes[idx].FirstChild = first
	for x := 0; x <= k; x++ {
		ls.wins[x] = Window{pts: w.pts[counts[x]:counts[x+1]:counts[x+1]]}
		b.tally(b.Hist(first+int32(x)), ls.wins[x].pts)
	}
	return first, ls.wins
}

// NewSub returns a fresh builder over the same corpus seeded with a copy of
// node idx (structure and histogram), for building idx's subtree on another
// goroutine. Splicing sub-builders back in child order reproduces exactly
// the arena layout a serial build would have produced.
func (b *Builder) NewSub(idx int32) *Builder {
	sub := &Builder{
		data:  b.data,
		k:     b.k,
		beta:  b.beta,
		nodes: make([]Node, 0, 64),
		hists: make([]float64, 0, 64*b.beta),
	}
	sub.nodes = append(sub.nodes, b.nodes[idx])
	sub.hists = append(sub.hists, b.Hist(idx)...)
	return sub
}

// Splice grafts a subtree built in a separate Builder onto child node
// childIdx: sub's node 0 must describe childIdx itself (NewSub seeds it
// with a copy); its descendants are appended with child links rebased and
// its histogram rows appended to the shared slab.
func (b *Builder) Splice(childIdx int32, sub *Builder) {
	base := int32(len(b.nodes)) - 1 // sub index j ≥ 1 lands at base+j
	if fc := sub.nodes[0].FirstChild; fc != 0 {
		b.nodes[childIdx].FirstChild = fc + base
	}
	copy(b.Hist(childIdx), sub.hists[:b.beta])
	for _, n := range sub.nodes[1:] {
		if n.FirstChild != 0 {
			n.FirstChild += base
		}
		b.nodes = append(b.nodes, n)
	}
	b.hists = append(b.hists, sub.hists[b.beta:]...)
}

// Build finalizes the arena into a Tree. The builder must not be used
// afterwards. The caller runs any release post-processing
// (SumInternalHists/ClampHists) and then Finalize before querying.
func (b *Builder) Build() *Tree {
	return &Tree{
		Alphabet: b.data.Alphabet,
		Nodes:    b.nodes,
		Hists:    b.hists,
		EndIndex: b.k,
	}
}

// BuildExact grows the full PST non-privately: a node is expanded when its
// histogram magnitude exceeds minMagnitude and its depth is below maxDepth
// (the standard C1/C2 stopping rules; C3's entropy rule is subsumed by the
// private score in the markov package).
func BuildExact(data *sequence.Dataset, minMagnitude float64, maxDepth int) *Tree {
	c := sequence.CorpusOfDataset(data)
	b := NewBuilder(c, 64)
	root, w := b.NewRoot()
	var sc Scratch
	var grow func(idx int32, w Window, ctxLen, depth int, anchored bool)
	grow = func(idx int32, w Window, ctxLen, depth int, anchored bool) {
		if anchored || depth >= maxDepth {
			return
		}
		if mag(b.Hist(idx)) <= minMagnitude {
			return
		}
		first, wins := b.Expand(idx, w, ctxLen, &sc)
		for x := 0; x <= b.k; x++ {
			childCtx, childAnchored := ctxLen+1, false
			if x == b.k {
				childCtx, childAnchored = ctxLen, true
			}
			grow(first+int32(x), wins[x], childCtx, depth+1, childAnchored)
		}
	}
	grow(root, w, 0, 0, false)
	t := b.Build()
	t.Finalize()
	return t
}

func mag(h []float64) float64 {
	s := 0.0
	for _, v := range h {
		s += v
	}
	return s
}
