// Package pst implements prediction suffix trees (Ron, Singer & Tishby's
// variable-length Markov chains) — the sequence model PrivTree is extended
// to in Section 4. A node's predictor string dom(v) grows by PREPENDING a
// symbol from I ∪ {$}; its prediction histogram hist(v) counts, for every
// x ∈ I ∪ {&}, how often dom(v) is immediately followed by x in the data.
package pst

import (
	"math/rand/v2"

	"privtree/internal/sequence"
)

// Context is a predictor string: the symbols of dom(v) plus whether it is
// anchored at the sequence start ($-prefixed).
type Context struct {
	Syms     []sequence.Symbol
	Anchored bool // dom(v) starts with $
}

// Node is one PST node. Hist has length |I|+1: indices [0,|I|) count the
// alphabet symbols, index |I| counts the terminal &. Children, when
// expanded, has length |I|+1: Children[x] prepends symbol x for x < |I|,
// Children[|I|] prepends $.
type Node struct {
	Ctx      Context
	Depth    int
	Hist     []float64
	Children []*Node
	// points is construction-time state: the prediction positions this
	// context matches (see occurrence). Cleared after building.
	points []occurrence
}

// occurrence is a prediction point: the context matches seq Seqs[seq]
// ending just before position pos; the predicted symbol is Syms[pos], or &
// if pos == len(Syms) on a closed sequence.
type occurrence struct {
	seq int
	pos int
}

// IsLeaf reports whether the node has not been expanded.
func (n *Node) IsLeaf() bool { return n.Children == nil }

// Tree is a prediction suffix tree over a dataset's alphabet.
type Tree struct {
	Alphabet sequence.Alphabet
	Root     *Node
	// EndIndex is the histogram slot of the terminal symbol &.
	EndIndex int
}

// Fanout returns β = |I|+1, the number of children per expanded node.
func (t *Tree) Fanout() int { return t.Alphabet.Size + 1 }

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int {
	var walk func(*Node) int
	walk = func(n *Node) int {
		total := 1
		for _, c := range n.Children {
			if c != nil {
				total += walk(c)
			}
		}
		return total
	}
	return walk(t.Root)
}

// Leaves returns all unexpanded nodes.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			if c != nil {
				walk(c)
			}
		}
	}
	walk(t.Root)
	return out
}

// Builder constructs PSTs over one dataset, tracking per-node prediction
// points so that histograms at any depth are computed incrementally.
type Builder struct {
	Data *sequence.Dataset
	K    int // alphabet size |I|
}

// NewBuilder prepares construction over data.
func NewBuilder(data *sequence.Dataset) *Builder {
	return &Builder{Data: data, K: data.Alphabet.Size}
}

// NewRoot returns the root node (empty context) with its histogram and
// prediction points populated: the empty context matches before every
// position of every sequence, including the terminal slot of closed ones.
func (b *Builder) NewRoot() *Node {
	root := &Node{Ctx: Context{}, Depth: 0}
	for si, s := range b.Data.Seqs {
		limit := len(s.Syms)
		if !s.Open {
			limit++ // predicting & at position len
		}
		for pos := 0; pos < limit; pos++ {
			root.points = append(root.points, occurrence{seq: si, pos: pos})
		}
	}
	root.Hist = b.histOf(root.points)
	return root
}

// histOf tallies the predicted symbols at the given points.
func (b *Builder) histOf(points []occurrence) []float64 {
	hist := make([]float64, b.K+1)
	for _, o := range points {
		s := b.Data.Seqs[o.seq]
		if o.pos < len(s.Syms) {
			hist[s.Syms[o.pos]]++
		} else {
			hist[b.K]++
		}
	}
	return hist
}

// Expand materializes the |I|+1 children of n: child x (x < |I|) prepends
// symbol x to the context; child |I| prepends $ (anchoring the context at
// the sequence start). A node whose context is already anchored cannot be
// expanded (condition C1 of Section 4.2); Expand panics in that case.
func (b *Builder) Expand(n *Node) {
	if n.Ctx.Anchored {
		panic("pst: cannot expand a $-anchored context")
	}
	ctxLen := len(n.Ctx.Syms)
	n.Children = make([]*Node, b.K+1)
	buckets := make([][]occurrence, b.K+1)
	for _, o := range n.points {
		// The symbol immediately before the context occurrence sits at
		// pos − ctxLen − 1; if the context starts at position 0, the
		// "preceding symbol" is $.
		prev := o.pos - ctxLen - 1
		if prev < 0 {
			buckets[b.K] = append(buckets[b.K], o)
			continue
		}
		sym := b.Data.Seqs[o.seq].Syms[prev]
		buckets[sym] = append(buckets[sym], o)
	}
	for x := 0; x <= b.K; x++ {
		ctx := Context{Anchored: x == b.K}
		if x < b.K {
			ctx.Syms = append([]sequence.Symbol{sequence.Symbol(x)}, n.Ctx.Syms...)
		} else {
			ctx.Syms = append([]sequence.Symbol(nil), n.Ctx.Syms...)
		}
		child := &Node{Ctx: ctx, Depth: n.Depth + 1, points: buckets[x]}
		child.Hist = b.histOf(child.points)
		n.Children[x] = child
	}
}

// Release drops construction-time state from the whole subtree.
func Release(n *Node) {
	n.points = nil
	for _, c := range n.Children {
		if c != nil {
			Release(c)
		}
	}
}

// BuildExact grows the full PST non-privately: a node is expanded when its
// histogram magnitude exceeds minMagnitude and its depth is below maxDepth
// (the standard C1/C2 stopping rules; C3's entropy rule is subsumed by the
// private score in the markov package).
func BuildExact(data *sequence.Dataset, minMagnitude float64, maxDepth int) *Tree {
	b := NewBuilder(data)
	root := b.NewRoot()
	var grow func(*Node)
	grow = func(n *Node) {
		if n.Ctx.Anchored || n.Depth >= maxDepth {
			return
		}
		if mag(n.Hist) <= minMagnitude {
			return
		}
		b.Expand(n)
		for _, c := range n.Children {
			grow(c)
		}
	}
	grow(root)
	Release(root)
	return &Tree{Alphabet: data.Alphabet, Root: root, EndIndex: b.K}
}

func mag(h []float64) float64 {
	s := 0.0
	for _, v := range h {
		s += v
	}
	return s
}

// lookup returns the deepest tree node whose predictor string is a suffix
// of history (with anchored nodes matching only full histories starting at
// $). history is the sequence generated/observed so far; anchored reports
// whether history is complete back to the sequence start.
func (t *Tree) lookup(history []sequence.Symbol, anchored bool) *Node {
	n := t.Root
	best := n
	for !n.IsLeaf() {
		ctxLen := len(n.Ctx.Syms)
		prev := len(history) - ctxLen - 1
		var next *Node
		if prev >= 0 {
			next = n.Children[history[prev]]
		} else if anchored && prev == -1 {
			next = n.Children[t.Alphabet.Size] // the $ child
		}
		if next == nil {
			break
		}
		n = next
		if mag(n.Hist) > 0 {
			best = n
		}
		if n.Ctx.Anchored {
			break
		}
	}
	if mag(n.Hist) > 0 {
		return n
	}
	// Fall back to the deepest ancestor with a usable histogram, so the
	// probability estimate degrades gracefully instead of dividing by 0.
	return best
}

// EstimateFrequency implements the query of Section 4.1/Equation (12):
// the estimated number of occurrences of the string sq in the data.
func (t *Tree) EstimateFrequency(sq []sequence.Symbol) float64 {
	if len(sq) == 0 {
		return 0
	}
	ans := t.Root.Hist[sq[0]]
	for i := 1; i < len(sq); i++ {
		prefix := sq[:i]
		n := t.lookup(prefix, false)
		m := mag(n.Hist)
		if m <= 0 {
			return 0
		}
		ans *= n.Hist[sq[i]] / m
	}
	return ans
}

// ConditionalDist returns the model's next-symbol distribution (over
// I ∪ {&}, length |I|+1) after the given unanchored history, or nil when
// no context has usable mass. It is the one-step factor of Equation (12),
// exposed so that enumeration (e.g. top-k mining) can extend estimates in
// O(1) per symbol instead of re-walking the whole string.
func (t *Tree) ConditionalDist(history []sequence.Symbol) []float64 {
	n := t.lookup(history, false)
	m := mag(n.Hist)
	if m <= 0 {
		return nil
	}
	out := make([]float64, len(n.Hist))
	for i, c := range n.Hist {
		out[i] = c / m
	}
	return out
}

// Sample generates one synthetic sequence from the model (Section 4.1):
// starting from $, repeatedly look up the deepest matching context and draw
// the next symbol from its histogram until & is drawn or maxLen symbols
// accumulate.
func (t *Tree) Sample(rng *rand.Rand, maxLen int) sequence.Seq {
	var syms []sequence.Symbol
	for len(syms) < maxLen {
		n := t.lookup(syms, true)
		m := mag(n.Hist)
		if m <= 0 {
			break
		}
		u := rng.Float64() * m
		pick := len(n.Hist) - 1
		for x, c := range n.Hist {
			u -= c
			if u <= 0 {
				pick = x
				break
			}
		}
		if pick == t.EndIndex {
			return sequence.Seq{Syms: syms}
		}
		syms = append(syms, sequence.Symbol(pick))
	}
	return sequence.Seq{Syms: syms, Open: true}
}

// Generate samples n synthetic sequences.
func (t *Tree) Generate(n, maxLen int, rng *rand.Rand) *sequence.Dataset {
	seqs := make([]sequence.Seq, n)
	for i := range seqs {
		seqs[i] = t.Sample(rng, maxLen)
	}
	return &sequence.Dataset{Alphabet: t.Alphabet, Seqs: seqs}
}
