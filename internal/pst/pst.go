// Package pst implements prediction suffix trees (Ron, Singer & Tishby's
// variable-length Markov chains) — the sequence model PrivTree is extended
// to in Section 4. A node's predictor string dom(v) grows by PREPENDING a
// symbol from I ∪ {$}; its prediction histogram hist(v) counts, for every
// x ∈ I ∪ {&}, how often dom(v) is immediately followed by x in the data.
//
// The tree is stored as a flat arena, mirroring internal/core's spatial
// arena: nodes live in one []Node in depth-first order with each expanded
// node's β = |I|+1 children as a contiguous index block, and every node's
// prediction histogram is a β-wide window into ONE shared []float64 slab.
// Contexts are not stored at all — they are implied by tree position (child
// x prepends symbol x, child |I| prepends $) — so a node costs 4 bytes of
// structure plus its histogram row. Construction partitions a single
// prediction-point array in place (a counting sort per expansion), so the
// whole build performs O(height) scratch allocations instead of O(nodes),
// and query traversals (Estimate, MineTopK, AppendSample) allocate nothing
// beyond their results.
package pst

import (
	"math/rand/v2"
	"sort"

	"privtree/internal/sequence"
)

// Node is one PST node in the arena. FirstChild indexes the node's child
// block [FirstChild, FirstChild+β); 0 marks a leaf (the root occupies index
// 0 and is never anyone's child). Child x < |I| prepends symbol x to the
// context; child |I| prepends $, anchoring the context at the sequence
// start. Anchored nodes are never expanded (condition C1 of Section 4.2),
// so they are always leaves.
type Node struct {
	FirstChild int32
}

// IsLeaf reports whether the node has not been expanded.
func (n Node) IsLeaf() bool { return n.FirstChild == 0 }

// Tree is an immutable prediction suffix tree in arena form. Treat the
// exported slices as read-only outside this package except through Builder
// (they are exported so deserialization can reconstitute a tree).
type Tree struct {
	Alphabet sequence.Alphabet
	// Nodes is the arena; Nodes[0] is the root (empty context).
	Nodes []Node
	// Hists is the shared histogram slab: node i's histogram is
	// Hists[i*β : (i+1)*β], with slot |I| counting the terminal &.
	Hists []float64
	// Mags caches each node's histogram magnitude (L1 norm); Finalize
	// computes it so lookups never re-sum histograms.
	Mags []float64
	// EndIndex is the histogram slot of the terminal symbol & (= |I|).
	EndIndex int
}

// Fanout returns β = |I|+1, the number of children per expanded node.
func (t *Tree) Fanout() int { return t.Alphabet.Size + 1 }

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return len(t.Nodes) }

// NumLeaves returns the number of unexpanded nodes.
func (t *Tree) NumLeaves() int {
	n := 0
	for _, nd := range t.Nodes {
		if nd.IsLeaf() {
			n++
		}
	}
	return n
}

// HistAt returns node i's histogram row (a window into the shared slab).
func (t *Tree) HistAt(i int32) []float64 {
	beta := t.Fanout()
	return t.Hists[int(i)*beta : (int(i)+1)*beta : (int(i)+1)*beta]
}

// SumInternalHists recomputes every internal node's histogram as the sum of
// its children's (the release pipeline's post-processing). Children always
// follow their parent in the arena, so one reverse scan suffices; no
// allocation is performed.
func (t *Tree) SumInternalHists() {
	beta := t.Fanout()
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		fc := int(t.Nodes[i].FirstChild)
		if fc == 0 {
			continue
		}
		h := t.Hists[i*beta : (i+1)*beta]
		for x := range h {
			h[x] = 0
		}
		for c := fc; c < fc+beta; c++ {
			ch := t.Hists[c*beta : (c+1)*beta]
			for x, v := range ch {
				h[x] += v
			}
		}
	}
}

// ClampHists resets negative histogram entries to zero (applied AFTER
// internal sums, per the paper's post-processing order — clamping before
// summation would bias every internal count upward).
func (t *Tree) ClampHists() {
	for i, v := range t.Hists {
		if v < 0 {
			t.Hists[i] = 0
		}
	}
}

// Finalize computes the magnitude cache. It must be called after the
// histograms reach their released values and before any query.
func (t *Tree) Finalize() {
	beta := t.Fanout()
	if len(t.Mags) != len(t.Nodes) {
		t.Mags = make([]float64, len(t.Nodes))
	}
	for i := range t.Nodes {
		s := 0.0
		for _, v := range t.Hists[i*beta : (i+1)*beta] {
			s += v
		}
		t.Mags[i] = s
	}
}

// Equal reports whether two trees are identical releases: same alphabet
// size and node-for-node identical structure and histograms. Serial and
// parallel builds from the same seed must satisfy Equal exactly.
func Equal(a, b *Tree) bool {
	if a.Alphabet.Size != b.Alphabet.Size || len(a.Nodes) != len(b.Nodes) || len(a.Hists) != len(b.Hists) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	for i := range a.Hists {
		if a.Hists[i] != b.Hists[i] {
			return false
		}
	}
	return true
}

// lookup returns the arena index of the deepest node whose predictor string
// is a suffix of history (with anchored nodes matching only full histories
// starting at $), falling back to the deepest ancestor with usable mass so
// estimates degrade gracefully instead of dividing by zero. Symbols outside
// the alphabet simply fail to match (hostile queries cannot index out of
// the arena). It performs no allocation.
func lookup[T ~int](t *Tree, history []T, anchored bool) int32 {
	k := t.Alphabet.Size
	n, best := int32(0), int32(0)
	ctxLen := 0
	for {
		fc := t.Nodes[n].FirstChild
		if fc == 0 {
			break
		}
		prev := len(history) - ctxLen - 1
		var next int32
		switch {
		case prev >= 0:
			x := int(history[prev])
			if x < 0 || x >= k {
				// Out-of-alphabet symbol: no deeper context can match.
				if t.Mags[n] > 0 {
					return n
				}
				return best
			}
			next = fc + int32(x)
			ctxLen++
		case anchored && prev == -1:
			next = fc + int32(k) // the $ child; context length unchanged
		default:
			// History exhausted without anchoring.
			if t.Mags[n] > 0 {
				return n
			}
			return best
		}
		n = next
		if t.Mags[n] > 0 {
			best = n
		}
	}
	if t.Mags[n] > 0 {
		return n
	}
	return best
}

// Estimate implements the query of Section 4.1/Equation (12): the estimated
// number of occurrences of the string sq in the data. It is generic over
// any int-like symbol representation so public []int queries avoid a
// conversion copy, and it performs no heap allocation.
func Estimate[T ~int](t *Tree, sq []T) float64 {
	if len(sq) == 0 {
		return 0
	}
	k := t.Alphabet.Size
	beta := k + 1
	x0 := int(sq[0])
	if x0 < 0 || x0 >= k {
		return 0
	}
	ans := t.Hists[x0]
	for i := 1; i < len(sq); i++ {
		xi := int(sq[i])
		if xi < 0 || xi >= k {
			return 0
		}
		n := lookup(t, sq[:i], false)
		m := t.Mags[n]
		if m <= 0 {
			return 0
		}
		ans *= t.Hists[int(n)*beta+xi] / m
	}
	return ans
}

// EstimateFrequency is Estimate for []Symbol queries.
func (t *Tree) EstimateFrequency(sq []sequence.Symbol) float64 { return Estimate(t, sq) }

// AppendSample generates one synthetic sequence from the model (Section
// 4.1), appending its symbols to buf: starting from $, repeatedly look up
// the deepest matching context and draw the next symbol from its histogram
// until & is drawn or maxLen symbols accumulate. It returns the extended
// buffer and whether the sequence is open-ended (length cap hit or no
// usable context — & was never drawn). Beyond buf growth it allocates
// nothing.
func AppendSample[T ~int](t *Tree, rng *rand.Rand, maxLen int, buf []T) ([]T, bool) {
	for len(buf) < maxLen {
		n := lookup(t, buf, true)
		m := t.Mags[n]
		if m <= 0 {
			return buf, true
		}
		hist := t.HistAt(n)
		u := rng.Float64() * m
		pick := len(hist) - 1
		for x, c := range hist {
			u -= c
			if u <= 0 {
				pick = x
				break
			}
		}
		if pick == t.EndIndex {
			return buf, false
		}
		buf = append(buf, T(pick))
	}
	return buf, true
}

// Sample generates one synthetic sequence into a fresh buffer.
func (t *Tree) Sample(rng *rand.Rand, maxLen int) sequence.Seq {
	syms, open := AppendSample[sequence.Symbol](t, rng, maxLen, nil)
	return sequence.Seq{Syms: syms, Open: open}
}

// Generate samples n synthetic sequences.
func (t *Tree) Generate(n, maxLen int, rng *rand.Rand) *sequence.Dataset {
	seqs := make([]sequence.Seq, n)
	for i := range seqs {
		seqs[i] = t.Sample(rng, maxLen)
	}
	return &sequence.Dataset{Alphabet: t.Alphabet, Seqs: seqs}
}

// Mined is one mined string with its model frequency estimate. Symbols use
// plain ints so public API layers can share the slice without re-copying.
type Mined struct {
	Syms  []int
	Count float64
}

// MineTopK mines the k most frequent strings (length ≤ maxLen) by
// depth-first enumeration with pruning: the model's frequency estimate is
// monotone non-increasing under string extension (each step multiplies by a
// conditional probability ≤ 1), so branches below the current k-th best
// estimate are cut safely. The traversal reuses one prefix buffer and one
// bound slice; allocation is proportional to the candidates retained, never
// to the nodes visited. Ties are broken by ascending lexicographic order of
// the symbols, deterministically.
func MineTopK(t *Tree, k, maxLen int) []Mined {
	if k <= 0 || maxLen <= 0 {
		return nil
	}
	alpha := t.Alphabet.Size
	beta := alpha + 1
	// top tracks the k largest estimates seen so far (ascending), so the
	// pruning bound is top[0] once k candidates exist.
	top := make([]float64, 0, k+1)
	record := func(v float64) {
		lo, hi := 0, len(top)
		for lo < hi {
			mid := (lo + hi) / 2
			if top[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		top = append(top, 0)
		copy(top[lo+1:], top[lo:])
		top[lo] = v
		if len(top) > k {
			top = top[1:]
		}
	}
	var cands []Mined
	prefix := make([]int, 0, maxLen)
	var expand func(est float64)
	expand = func(est float64) {
		if len(prefix) > 0 {
			record(est)
			cands = append(cands, Mined{Syms: append([]int(nil), prefix...), Count: est})
		}
		if len(prefix) >= maxLen {
			return
		}
		bound := -1.0
		if len(top) == k {
			bound = top[0]
		}
		// Extend the estimate one symbol at a time (Equation 12): for an
		// empty prefix the estimate is the root histogram count, after that
		// est(prefix+x) = est(prefix)·P(x | prefix) from one shared lookup.
		var base int
		var m float64
		if len(prefix) > 0 {
			n := lookup(t, prefix, false)
			m = t.Mags[n]
			if m <= 0 {
				return
			}
			base = int(n) * beta
		}
		for x := 0; x < alpha; x++ {
			var e float64
			if len(prefix) == 0 {
				e = t.Hists[x]
			} else {
				e = est * t.Hists[base+x] / m
			}
			if e <= 0 || (bound >= 0 && e < bound) {
				continue
			}
			prefix = append(prefix, x)
			expand(e)
			prefix = prefix[:len(prefix)-1]
		}
	}
	expand(0)
	sortMined(cands)
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// sortMined orders candidates by descending count, ties by ascending
// lexicographic symbol order.
func sortMined(ms []Mined) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Count != ms[j].Count {
			return ms[i].Count > ms[j].Count
		}
		return lexLess(ms[i].Syms, ms[j].Syms)
	})
}

func lexLess(a, b []int) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
