package pst

import (
	"math"
	"testing"

	"privtree/internal/dp"
	"privtree/internal/sequence"
)

// paperDataset reproduces Figure 3 of the paper: I = {A, B} (A=0, B=1),
// s1=$B&, s2=$AB&, s3=$AAB&, s4=$AAAB&.
func paperDataset() *sequence.Dataset {
	mk := func(xs ...int) sequence.Seq {
		syms := make([]sequence.Symbol, len(xs))
		for i, x := range xs {
			syms[i] = sequence.Symbol(x)
		}
		return sequence.Seq{Syms: syms}
	}
	return &sequence.Dataset{
		Alphabet: sequence.NewAlphabet(2),
		Seqs: []sequence.Seq{
			mk(1),          // $B&
			mk(0, 1),       // $AB&
			mk(0, 0, 1),    // $AAB&
			mk(0, 0, 0, 1), // $AAAB&
		},
	}
}

func TestRootHistogramMatchesFigure3(t *testing.T) {
	b := NewBuilder(paperDataset())
	root := b.NewRoot()
	// v1: A:6, B:4, &:4.
	if root.Hist[0] != 6 || root.Hist[1] != 4 || root.Hist[2] != 4 {
		t.Fatalf("root hist = %v, want [6 4 4]", root.Hist)
	}
}

func TestExpandMatchesFigure3(t *testing.T) {
	b := NewBuilder(paperDataset())
	root := b.NewRoot()
	b.Expand(root)
	// Children of root: prepend A (v3), prepend B (v4), prepend $ (v2).
	vA := root.Children[0]
	vB := root.Children[1]
	vDollar := root.Children[2]
	// v3 (dom=A): A:3, B:3, &:0.
	if vA.Hist[0] != 3 || vA.Hist[1] != 3 || vA.Hist[2] != 0 {
		t.Fatalf("hist(A) = %v, want [3 3 0]", vA.Hist)
	}
	// v4 (dom=B): A:0, B:0, &:4.
	if vB.Hist[0] != 0 || vB.Hist[1] != 0 || vB.Hist[2] != 4 {
		t.Fatalf("hist(B) = %v, want [0 0 4]", vB.Hist)
	}
	// v2 (dom=$): A:3, B:1, &:0.
	if vDollar.Hist[0] != 3 || vDollar.Hist[1] != 1 || vDollar.Hist[2] != 0 {
		t.Fatalf("hist($) = %v, want [3 1 0]", vDollar.Hist)
	}
	if !vDollar.Ctx.Anchored {
		t.Fatal("$ child not anchored")
	}

	// Level 2 under A: dom=AA (v6), dom=BA (v7), dom=$A (v5).
	b.Expand(vA)
	vAA := vA.Children[0]
	vBA := vA.Children[1]
	vDA := vA.Children[2]
	// v6 (dom=AA): A:1, B:2, &:0.
	if vAA.Hist[0] != 1 || vAA.Hist[1] != 2 || vAA.Hist[2] != 0 {
		t.Fatalf("hist(AA) = %v, want [1 2 0]", vAA.Hist)
	}
	// v7 (dom=BA): all zero.
	if vBA.Hist[0] != 0 || vBA.Hist[1] != 0 || vBA.Hist[2] != 0 {
		t.Fatalf("hist(BA) = %v, want zeros", vBA.Hist)
	}
	// v5 (dom=$A): A:2, B:1, &:0.
	if vDA.Hist[0] != 2 || vDA.Hist[1] != 1 || vDA.Hist[2] != 0 {
		t.Fatalf("hist($A) = %v, want [2 1 0]", vDA.Hist)
	}
}

func TestChildHistogramsSumToParent(t *testing.T) {
	// Conservation: the prediction points of a node are partitioned among
	// its children, so child histograms must sum to the parent's.
	data := paperDataset()
	b := NewBuilder(data)
	root := b.NewRoot()
	b.Expand(root)
	for x := 0; x < 3; x++ {
		sum := 0.0
		for _, c := range root.Children {
			sum += c.Hist[x]
		}
		if sum != root.Hist[x] {
			t.Fatalf("symbol %d: children sum %v != parent %v", x, sum, root.Hist[x])
		}
	}
}

func TestExpandPanicsOnAnchored(t *testing.T) {
	b := NewBuilder(paperDataset())
	root := b.NewRoot()
	b.Expand(root)
	defer func() {
		if recover() == nil {
			t.Fatal("expanding a $-anchored node did not panic")
		}
	}()
	b.Expand(root.Children[2])
}

func TestEstimateFrequencyPaperExample(t *testing.T) {
	// The paper's worked example: query AB on the Figure 3 PST gives 3.
	tr := BuildExact(paperDataset(), 0, 2)
	got := tr.EstimateFrequency([]sequence.Symbol{0, 1})
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("estimate(AB) = %v, want 3 (the paper's example)", got)
	}
}

func TestEstimateFrequencyExactForModeledStrings(t *testing.T) {
	// On a deep-enough exact PST, length-2 estimates equal exact counts.
	data := paperDataset()
	tr := BuildExact(data, 0, 3)
	counts := sequence.CountOccurrences(data, 2)
	for _, s := range [][]sequence.Symbol{{0}, {1}, {0, 0}, {0, 1}} {
		want := float64(counts[sequence.Key(s)])
		got := tr.EstimateFrequency(s)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("estimate(%v) = %v, exact %v", s, got, want)
		}
	}
}

func TestEstimateFrequencyEmptyString(t *testing.T) {
	tr := BuildExact(paperDataset(), 0, 2)
	if got := tr.EstimateFrequency(nil); got != 0 {
		t.Fatalf("estimate of empty string = %v", got)
	}
}

func TestBuildExactStopsAtMagnitude(t *testing.T) {
	tr := BuildExact(paperDataset(), 3.5, 10)
	// Root magnitude 14 > 3.5: expanded. Node B magnitude 4 > 3.5:
	// expanded. Node AA magnitude 3 ≤ 3.5: leaf.
	if tr.Root.IsLeaf() {
		t.Fatal("root not expanded")
	}
	vA := tr.Root.Children[0]
	if vA.IsLeaf() {
		t.Fatal("high-magnitude node A not expanded")
	}
	vAA := vA.Children[0]
	if !vAA.IsLeaf() {
		t.Fatal("low-magnitude node AA expanded")
	}
}

func TestSampleTerminatesAndRespectsCap(t *testing.T) {
	tr := BuildExact(paperDataset(), 0, 3)
	rng := dp.NewRand(1)
	for i := 0; i < 200; i++ {
		s := tr.Sample(rng, 10)
		if s.Len() > 10 {
			t.Fatalf("sample exceeds cap: %d", s.Len())
		}
		if !s.Open && s.Len() == 0 {
			continue // "$&" style empty sequence is fine
		}
	}
}

func TestSampleDistributionMatchesModel(t *testing.T) {
	// First symbols of samples must follow hist($)/|hist($)| ≈ A:3/4, B:1/4
	// (the $-anchored context governs the first draw).
	tr := BuildExact(paperDataset(), 0, 2)
	rng := dp.NewRand(2)
	const n = 20000
	countA := 0
	for i := 0; i < n; i++ {
		s := tr.Sample(rng, 10)
		if s.Len() > 0 && s.Syms[0] == 0 {
			countA++
		}
	}
	frac := float64(countA) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("first-symbol P(A) = %v, want ≈0.75", frac)
	}
}

func TestGenerateCount(t *testing.T) {
	tr := BuildExact(paperDataset(), 0, 2)
	out := tr.Generate(57, 10, dp.NewRand(3))
	if out.N() != 57 {
		t.Fatalf("generated %d sequences", out.N())
	}
}

func TestConditionalDistNormalized(t *testing.T) {
	tr := BuildExact(paperDataset(), 0, 3)
	dist := tr.ConditionalDist([]sequence.Symbol{0})
	if dist == nil {
		t.Fatal("nil distribution for history A")
	}
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("conditional distribution sums to %v", sum)
	}
}

func TestTreeSizeAndLeaves(t *testing.T) {
	tr := BuildExact(paperDataset(), 0, 2)
	if tr.Fanout() != 3 {
		t.Fatalf("fanout = %d, want |I|+1 = 3", tr.Fanout())
	}
	leaves := tr.Leaves()
	size := tr.Size()
	if size < len(leaves) {
		t.Fatalf("size %d < leaves %d", size, len(leaves))
	}
	// A PST with fanout 3: size = 3·internal + 1.
	internal := size - len(leaves)
	if size != 3*internal+1 {
		t.Fatalf("size %d, internal %d: not a full ternary tree", size, internal)
	}
}
