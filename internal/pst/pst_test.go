package pst

import (
	"math"
	"testing"

	"privtree/internal/dp"
	"privtree/internal/sequence"
)

// paperDataset reproduces Figure 3 of the paper: I = {A, B} (A=0, B=1),
// s1=$B&, s2=$AB&, s3=$AAB&, s4=$AAAB&.
func paperDataset() *sequence.Dataset {
	mk := func(xs ...int) sequence.Seq {
		syms := make([]sequence.Symbol, len(xs))
		for i, x := range xs {
			syms[i] = sequence.Symbol(x)
		}
		return sequence.Seq{Syms: syms}
	}
	return &sequence.Dataset{
		Alphabet: sequence.NewAlphabet(2),
		Seqs: []sequence.Seq{
			mk(1),          // $B&
			mk(0, 1),       // $AB&
			mk(0, 0, 1),    // $AAB&
			mk(0, 0, 0, 1), // $AAAB&
		},
	}
}

func paperCorpus() *sequence.Corpus { return sequence.CorpusOfDataset(paperDataset()) }

func histEq(h []float64, want ...float64) bool {
	if len(h) != len(want) {
		return false
	}
	for i := range h {
		if h[i] != want[i] {
			return false
		}
	}
	return true
}

func TestRootHistogramMatchesFigure3(t *testing.T) {
	b := NewBuilder(paperCorpus(), 0)
	root, _ := b.NewRoot()
	// v1: A:6, B:4, &:4.
	if !histEq(b.Hist(root), 6, 4, 4) {
		t.Fatalf("root hist = %v, want [6 4 4]", b.Hist(root))
	}
}

func TestExpandMatchesFigure3(t *testing.T) {
	b := NewBuilder(paperCorpus(), 0)
	root, w := b.NewRoot()
	var sc Scratch
	first, wins := b.Expand(root, w, 0, &sc)
	// Children of root: prepend A (v3), prepend B (v4), prepend $ (v2).
	vA, vB, vDollar := first, first+1, first+2
	// v3 (dom=A): A:3, B:3, &:0.
	if !histEq(b.Hist(vA), 3, 3, 0) {
		t.Fatalf("hist(A) = %v, want [3 3 0]", b.Hist(vA))
	}
	// v4 (dom=B): A:0, B:0, &:4.
	if !histEq(b.Hist(vB), 0, 0, 4) {
		t.Fatalf("hist(B) = %v, want [0 0 4]", b.Hist(vB))
	}
	// v2 (dom=$): A:3, B:1, &:0.
	if !histEq(b.Hist(vDollar), 3, 1, 0) {
		t.Fatalf("hist($) = %v, want [3 1 0]", b.Hist(vDollar))
	}

	// Level 2 under A: dom=AA (v6), dom=BA (v7), dom=$A (v5).
	firstA, _ := b.Expand(vA, wins[0], 1, &sc)
	vAA, vBA, vDA := firstA, firstA+1, firstA+2
	// v6 (dom=AA): A:1, B:2, &:0.
	if !histEq(b.Hist(vAA), 1, 2, 0) {
		t.Fatalf("hist(AA) = %v, want [1 2 0]", b.Hist(vAA))
	}
	// v7 (dom=BA): all zero.
	if !histEq(b.Hist(vBA), 0, 0, 0) {
		t.Fatalf("hist(BA) = %v, want zeros", b.Hist(vBA))
	}
	// v5 (dom=$A): A:2, B:1, &:0.
	if !histEq(b.Hist(vDA), 2, 1, 0) {
		t.Fatalf("hist($A) = %v, want [2 1 0]", b.Hist(vDA))
	}
}

func TestChildHistogramsSumToParent(t *testing.T) {
	// Conservation: the prediction points of a node are partitioned among
	// its children, so child histograms must sum to the parent's.
	b := NewBuilder(paperCorpus(), 0)
	root, w := b.NewRoot()
	var sc Scratch
	first, _ := b.Expand(root, w, 0, &sc)
	for x := 0; x < 3; x++ {
		sum := 0.0
		for c := int32(0); c < 3; c++ {
			sum += b.Hist(first + c)[x]
		}
		if sum != b.Hist(root)[x] {
			t.Fatalf("symbol %d: children sum %v != parent %v", x, sum, b.Hist(root)[x])
		}
	}
}

func TestEstimateFrequencyPaperExample(t *testing.T) {
	// The paper's worked example: query AB on the Figure 3 PST gives 3.
	tr := BuildExact(paperDataset(), 0, 2)
	got := tr.EstimateFrequency([]sequence.Symbol{0, 1})
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("estimate(AB) = %v, want 3 (the paper's example)", got)
	}
}

func TestEstimateFrequencyExactForModeledStrings(t *testing.T) {
	// On a deep-enough exact PST, length-2 estimates equal exact counts.
	data := paperDataset()
	tr := BuildExact(data, 0, 3)
	counts := sequence.CountOccurrences(data, 2)
	for _, s := range [][]sequence.Symbol{{0}, {1}, {0, 0}, {0, 1}} {
		want := float64(counts[sequence.Key(s)])
		got := tr.EstimateFrequency(s)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("estimate(%v) = %v, exact %v", s, got, want)
		}
	}
}

func TestEstimateFrequencyEmptyString(t *testing.T) {
	tr := BuildExact(paperDataset(), 0, 2)
	if got := tr.EstimateFrequency(nil); got != 0 {
		t.Fatalf("estimate of empty string = %v", got)
	}
}

func TestEstimateFrequencyHostileSymbols(t *testing.T) {
	// Out-of-alphabet symbols must yield estimate 0, never an arena read
	// out of range.
	tr := BuildExact(paperDataset(), 0, 3)
	for _, s := range [][]sequence.Symbol{{5}, {-1}, {0, 9}, {0, 1, -3}, {97, 0, 1}} {
		if got := tr.EstimateFrequency(s); got != 0 {
			t.Fatalf("estimate(%v) = %v, want 0", s, got)
		}
	}
}

func TestBuildExactStopsAtMagnitude(t *testing.T) {
	tr := BuildExact(paperDataset(), 3.5, 10)
	// Root magnitude 14 > 3.5: expanded. Node A magnitude 6 > 3.5:
	// expanded. Node AA magnitude 3 ≤ 3.5: leaf.
	if tr.Nodes[0].IsLeaf() {
		t.Fatal("root not expanded")
	}
	vA := tr.Nodes[0].FirstChild
	if tr.Nodes[vA].IsLeaf() {
		t.Fatal("high-magnitude node A not expanded")
	}
	vAA := tr.Nodes[vA].FirstChild
	if !tr.Nodes[vAA].IsLeaf() {
		t.Fatal("low-magnitude node AA expanded")
	}
}

func TestAnchoredChildrenAreLeaves(t *testing.T) {
	// Condition C1: a $-anchored context is never expanded, at any depth.
	tr := BuildExact(paperDataset(), 0, 6)
	beta := tr.Fanout()
	for i, n := range tr.Nodes {
		if n.IsLeaf() {
			continue
		}
		anchored := n.FirstChild + int32(beta) - 1
		if !tr.Nodes[anchored].IsLeaf() {
			t.Fatalf("node %d's $ child %d was expanded", i, anchored)
		}
	}
}

func TestSampleTerminatesAndRespectsCap(t *testing.T) {
	tr := BuildExact(paperDataset(), 0, 3)
	rng := dp.NewRand(1)
	for i := 0; i < 200; i++ {
		s := tr.Sample(rng, 10)
		if s.Len() > 10 {
			t.Fatalf("sample exceeds cap: %d", s.Len())
		}
	}
}

func TestSampleDistributionMatchesModel(t *testing.T) {
	// First symbols of samples must follow hist($)/|hist($)| ≈ A:3/4, B:1/4
	// (the $-anchored context governs the first draw).
	tr := BuildExact(paperDataset(), 0, 2)
	rng := dp.NewRand(2)
	const n = 20000
	countA := 0
	for i := 0; i < n; i++ {
		s := tr.Sample(rng, 10)
		if s.Len() > 0 && s.Syms[0] == 0 {
			countA++
		}
	}
	frac := float64(countA) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("first-symbol P(A) = %v, want ≈0.75", frac)
	}
}

func TestGenerateCount(t *testing.T) {
	tr := BuildExact(paperDataset(), 0, 2)
	out := tr.Generate(57, 10, dp.NewRand(3))
	if out.N() != 57 {
		t.Fatalf("generated %d sequences", out.N())
	}
}

func TestTreeSizeAndLeaves(t *testing.T) {
	tr := BuildExact(paperDataset(), 0, 2)
	if tr.Fanout() != 3 {
		t.Fatalf("fanout = %d, want |I|+1 = 3", tr.Fanout())
	}
	leaves := tr.NumLeaves()
	size := tr.Size()
	if size < leaves {
		t.Fatalf("size %d < leaves %d", size, leaves)
	}
	// A PST with fanout 3: size = 3·internal + 1.
	internal := size - leaves
	if size != 3*internal+1 {
		t.Fatalf("size %d, internal %d: not a full ternary tree", size, internal)
	}
}

func TestEstimateAllocationFree(t *testing.T) {
	tr := BuildExact(paperDataset(), 0, 3)
	q := []sequence.Symbol{0, 0, 1}
	allocs := testing.AllocsPerRun(200, func() {
		tr.EstimateFrequency(q)
	})
	if allocs != 0 {
		t.Fatalf("EstimateFrequency allocates %v per query, want 0", allocs)
	}
}

// TestColumnarGroupingMatchesReference is the arena-invariant property
// test: the in-place window partition + slab tally must produce, at every
// node, exactly the histogram a naive per-slice reference implementation
// computes for the node's context, on random datasets.
func TestColumnarGroupingMatchesReference(t *testing.T) {
	rng := dp.NewRand(42)
	for trial := 0; trial < 30; trial++ {
		k := 2 + int(rng.Uint64()%4) // alphabet 2..5
		n := 1 + int(rng.Uint64()%60)
		d := &sequence.Dataset{Alphabet: sequence.NewAlphabet(k)}
		for i := 0; i < n; i++ {
			l := int(rng.Uint64() % 9)
			syms := make([]sequence.Symbol, l)
			for j := range syms {
				syms[j] = sequence.Symbol(rng.Uint64() % uint64(k))
			}
			d.Seqs = append(d.Seqs, sequence.Seq{Syms: syms, Open: rng.Uint64()%5 == 0})
		}
		tr := BuildExact(d, 0, 4)
		checkNodeHistsAgainstReference(t, tr, d)
	}
}

// checkNodeHistsAgainstReference recomputes every node's histogram by
// brute force over the per-slice dataset and compares.
func checkNodeHistsAgainstReference(t *testing.T, tr *Tree, d *sequence.Dataset) {
	t.Helper()
	k := tr.Alphabet.Size
	var walk func(idx int32, ctx []sequence.Symbol, anchored bool)
	walk = func(idx int32, ctx []sequence.Symbol, anchored bool) {
		want := referenceHist(d, k, ctx, anchored)
		got := tr.HistAt(idx)
		for x := range want {
			if got[x] != want[x] {
				t.Fatalf("ctx %v anchored=%v: hist %v, reference %v", ctx, anchored, got, want)
			}
		}
		fc := tr.Nodes[idx].FirstChild
		if fc == 0 {
			return
		}
		for x := 0; x <= k; x++ {
			if x < k {
				walk(fc+int32(x), append([]sequence.Symbol{sequence.Symbol(x)}, ctx...), false)
			} else {
				walk(fc+int32(x), ctx, true)
			}
		}
	}
	walk(0, nil, false)
}

// referenceHist is the old per-slice semantics: for every position of every
// sequence where ctx matches (ending just before the position, anchored
// contexts only at the sequence start), tally the predicted symbol (the
// one at the position, or & for the terminal slot of closed sequences).
func referenceHist(d *sequence.Dataset, k int, ctx []sequence.Symbol, anchored bool) []float64 {
	hist := make([]float64, k+1)
	for _, s := range d.Seqs {
		limit := len(s.Syms)
		if !s.Open {
			limit++
		}
		for pos := 0; pos < limit; pos++ {
			if pos < len(ctx) {
				continue // context cannot fit before pos
			}
			if anchored && pos != len(ctx) {
				continue // anchored contexts start at $
			}
			match := true
			for j, c := range ctx {
				if s.Syms[pos-len(ctx)+j] != c {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			if pos < len(s.Syms) {
				hist[s.Syms[pos]]++
			} else {
				hist[k]++
			}
		}
	}
	return hist
}
