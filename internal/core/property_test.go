package core

import (
	"math"
	"testing"
	"testing/quick"

	"privtree/internal/dp"
)

// Property tests on the core mechanism's invariants (testing/quick).

func TestBiasedScoreProperties(t *testing.T) {
	p := Params{Epsilon: 1, Fanout: 4}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecider(p, dp.NewRand(1))
	floor := p.Theta - p.Delta()

	// Monotone in score, non-increasing in depth, never below the floor.
	f := func(s1Raw, s2Raw float64, d1Sel, d2Sel uint8) bool {
		norm := func(v float64) float64 {
			if v != v {
				return 0
			}
			return math.Mod(math.Abs(v), 1e6)
		}
		s1, s2 := norm(s1Raw), norm(s2Raw)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		d1, d2 := int(d1Sel%40), int(d2Sel%40)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		b := dec.BiasedScore(s1, d1)
		if b < floor-1e-12 {
			return false // clamp violated
		}
		// Monotone in score at fixed depth.
		if dec.BiasedScore(s2, d1) < b-1e-12 {
			return false
		}
		// Non-increasing in depth at fixed score.
		if dec.BiasedScore(s1, d2) > b+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBiasedScoreGapProperty(t *testing.T) {
	// The load-bearing invariant of the Theorem 3.1 proof: along any path
	// where counts do not increase, consecutive UNCLAMPED biased scores
	// drop by at least δ — and the clamp can only keep them at the floor.
	p := Params{Epsilon: 0.5, Fanout: 8}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecider(p, dp.NewRand(2))
	delta := p.Delta()
	floor := p.Theta - delta
	f := func(cRaw float64, dropRaw float64, depthSel uint8) bool {
		c := math.Mod(math.Abs(cRaw), 1e6)
		drop := math.Mod(math.Abs(dropRaw), c+1)
		depth := int(depthSel % 30)
		parent := dec.BiasedScore(c, depth)
		child := dec.BiasedScore(c-drop, depth+1)
		// Either the child sits at the floor, or it is ≥ δ below parent.
		return child == floor || child <= parent-delta+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRhoUpperNonIncreasingProperty(t *testing.T) {
	f := func(aRaw, bRaw float64, thetaSel, lambdaSel uint8) bool {
		theta := float64(thetaSel%10) - 5
		lambda := 0.5 + float64(lambdaSel%20)/4
		norm := func(v float64) float64 {
			if v != v {
				return 0
			}
			return math.Mod(v, 100)
		}
		a, b := norm(aRaw), norm(bRaw)
		if a > b {
			a, b = b, a
		}
		return RhoUpper(b, theta, lambda) <= RhoUpper(a, theta, lambda)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLambdaMonotoneProperties(t *testing.T) {
	// λ decreases in ε and in β: more budget or higher fanout both reduce
	// the required noise scale.
	f := func(epsSel, betaSel uint8) bool {
		eps := 0.05 + float64(epsSel%100)/50
		beta := 2 + int(betaSel%30)
		l1 := LambdaForEpsilon(beta, eps)
		if LambdaForEpsilon(beta, eps*2) >= l1 {
			return false
		}
		if LambdaForEpsilon(beta+1, eps) >= l1 {
			return false
		}
		// And λ is always above the naive 1/ε (the constant-noise floor)
		// and at most 3/ε (the β=2 worst case).
		return l1 > 1/eps && l1 <= 3/eps+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitDecisionMonotoneInScore(t *testing.T) {
	// Statistically: a strictly larger score must split at least as often.
	p := Params{Epsilon: 1, Fanout: 4}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecider(p, dp.NewRand(3))
	const trials = 30000
	countSplits := func(score float64, depth int) int {
		n := 0
		for i := 0; i < trials; i++ {
			if dec.ShouldSplit(score, depth) {
				n++
			}
		}
		return n
	}
	lo := countSplits(2, 1)
	hi := countSplits(20, 1)
	if hi <= lo {
		t.Fatalf("split frequency not monotone: score 2 → %d, score 20 → %d", lo, hi)
	}
}
