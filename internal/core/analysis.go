package core

import (
	"math"

	"privtree/internal/dp"
)

// Rho is the per-node privacy cost function of Equation (5):
//
//	ρ(x) = ln( Pr[x + Lap(λ) > θ] / Pr[x−1 + Lap(λ) > θ] ).
//
// It is the exact log-ratio by which one tuple's presence shifts the
// probability that a node with count x splits. For x ≤ θ it equals 1/λ; for
// x ≥ θ+1 it decays exponentially — the observation PrivTree exploits.
func Rho(x, theta, lambda float64) float64 {
	l := dp.NewLaplace(0, lambda)
	// Pr[x + η > θ] = Pr[η > θ − x].
	num := l.Tail(theta - x)
	den := l.Tail(theta - x + 1)
	return math.Log(num / den)
}

// RhoUpper is the closed-form upper bound ρ⊤ of Lemma 3.1 / Equation (7):
//
//	ρ⊤(x) = 1/λ                         if x < θ+1
//	ρ⊤(x) = (1/λ)·exp((θ+1−x)/λ)        otherwise.
func RhoUpper(x, theta, lambda float64) float64 {
	if x < theta+1 {
		return 1 / lambda
	}
	return math.Exp((theta+1-x)/lambda) / lambda
}

// PrivacyCostBound returns the upper bound on the total privacy cost of an
// arbitrarily long root-to-leaf path when biased counts decrease by at
// least δ per level (the telescoped sum from the proof of Theorem 3.1):
//
//	Σ ρ⊤ ≤ (1/λ)·(2e^{δ/λ} − 1)/(e^{δ/λ} − 1).
func PrivacyCostBound(lambda, delta float64) float64 {
	g := delta / lambda
	eg := math.Exp(g)
	return (2*eg - 1) / (eg - 1) / lambda
}

// SplitProbabilityAtFloor returns the probability that a node whose biased
// count sits at the floor b(v) = θ−δ splits, i.e. Pr[Lap(λ) > δ]. With the
// paper's δ = λ·ln β this is exactly 1/(2β), which is what makes the
// expected subtree below a floor node have size ≤ 2 (Lemma 3.2).
func SplitProbabilityAtFloor(lambda, delta float64) float64 {
	return dp.NewLaplace(0, lambda).Tail(delta)
}

// EmpiricalPrivacyLoss estimates, by Monte Carlo over trials, the log-ratio
// ln(Pr[split | count=x] / Pr[split | count=x−1]) realized by a Decider at
// the given depth. It is used by tests to confirm the implementation's
// split decisions actually obey ρ⊤.
func EmpiricalPrivacyLoss(dec *Decider, x float64, depth, trials int) float64 {
	splitsHi, splitsLo := 0, 0
	for i := 0; i < trials; i++ {
		if dec.ShouldSplit(x, depth) {
			splitsHi++
		}
		if dec.ShouldSplit(x-1, depth) {
			splitsLo++
		}
	}
	if splitsLo == 0 {
		return math.Inf(1)
	}
	return math.Log(float64(splitsHi) / float64(splitsLo))
}
