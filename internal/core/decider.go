package core

import (
	"math/rand/v2"

	"privtree/internal/dp"
)

// Decider encapsulates lines 5–8 of Algorithm 2: given a node's exact score
// and depth it computes the biased count b(v) = max(θ−δ, c(v) − depth·δ),
// perturbs it with Lap(λ), and reports whether the node splits. The same
// decider drives both the spatial tree (score = point count) and the
// sequence PST (score = Eq. 13), which only differ in how scores and
// children are produced.
type Decider struct {
	Lambda   float64
	Theta    float64
	Delta    float64
	MaxDepth int
	rng      *rand.Rand
}

// NewDecider builds a decider from validated Params and a random source.
func NewDecider(p Params, rng *rand.Rand) *Decider {
	return &Decider{
		Lambda:   p.Lambda(),
		Theta:    p.Theta,
		Delta:    p.Delta(),
		MaxDepth: p.MaxDepth,
		rng:      rng,
	}
}

// BiasedScore returns b(v) for a node with the given exact score and depth
// (Equation 8).
func (d *Decider) BiasedScore(score float64, depth int) float64 {
	b := score - float64(depth)*d.Delta
	if floor := d.Theta - d.Delta; b < floor {
		b = floor
	}
	return b
}

// ShouldSplit draws the noisy biased score b̂(v) = b(v) + Lap(λ) and
// reports whether b̂(v) > θ. The depth guard is an engineering cap only
// (see DefaultMaxDepth); it refuses to split at MaxDepth-1 so the tree
// height never exceeds MaxDepth.
func (d *Decider) ShouldSplit(score float64, depth int) bool {
	if depth >= d.MaxDepth-1 {
		return false
	}
	noisy := d.BiasedScore(score, depth) + dp.LapNoise(d.rng, d.Lambda)
	return noisy > d.Theta
}

// ShouldSplitAt is the pure form of ShouldSplit used by the spatial tree
// builder: the Laplace noise comes from the node's own splittable stream
// instead of the shared sequential generator, so the decision for a node
// depends only on (seed, path, score, depth) — never on the order nodes
// are expanded. That independence is what lets the parallel build produce
// trees identical to the serial one. It performs no allocation.
func (d *Decider) ShouldSplitAt(score float64, depth int, s dp.Stream) bool {
	if depth >= d.MaxDepth-1 {
		return false
	}
	noisy := d.BiasedScore(score, depth) + s.Laplace(tagSplit, d.Lambda)
	return noisy > d.Theta
}
