package core

import (
	"math"
	"strings"
	"testing"

	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// shapeOf encodes a tree's split structure as a string, which is the
// entire output of Algorithm 2 (counts are removed).
func shapeOf(t *Tree) string {
	var b strings.Builder
	var walk func(n NodeRef)
	walk = func(n NodeRef) {
		if n.IsLeaf() {
			b.WriteByte('0')
			return
		}
		b.WriteByte('1')
		for i := 0; i < n.NumChildren(); i++ {
			walk(n.Child(i))
		}
	}
	walk(t.Root())
	return b.String()
}

// TestEndToEndDifferentialPrivacy is the repository's strongest privacy
// check: it runs the FULL Build pipeline tens of thousands of times on a
// pair of neighboring datasets over a tiny domain, histograms the released
// tree shapes, and verifies that every sufficiently-frequent shape's
// empirical log-probability ratio stays within ε plus sampling slack. A
// bug in the bias, the clamp, or the noise scale (e.g. using h-free noise
// where h-scaled noise is required) reliably trips this test.
func TestEndToEndDifferentialPrivacy(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo DP check skipped in -short mode")
	}
	const eps = 1.0
	const trials = 60000

	dom := geom.UnitCube(1)
	mk := func(coords ...float64) *dataset.Spatial {
		pts := make([]geom.Point, len(coords))
		for i, c := range coords {
			pts[i] = geom.Point{c}
		}
		ds, err := dataset.NewSpatial(dom, pts)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	// D' = D + one point inside the dense cluster (the worst case for the
	// split chain: the inserted tuple deepens the path it belongs to).
	base := []float64{0.1, 0.11, 0.12, 0.13, 0.14, 0.8}
	d1 := mk(base...)
	d2 := mk(append(append([]float64(nil), base...), 0.105)...)

	split := geom.FullBisect{Dim: 1}
	p := Params{Epsilon: eps, Fanout: 2, MaxDepth: 5}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	sample := func(ds *dataset.Spatial, seed uint64) map[string]int {
		rng := dp.NewRand(seed)
		out := make(map[string]int)
		for i := 0; i < trials; i++ {
			tree, err := Build(ds, split, p, rng)
			if err != nil {
				t.Fatal(err)
			}
			out[shapeOf(tree)]++
		}
		return out
	}
	h1 := sample(d1, 1)
	h2 := sample(d2, 2)

	// Compare shapes frequent enough that the sampling error of the log
	// ratio is well under the budget: with ≥ 800 hits the per-histogram
	// relative error is ≲ 3.5σ·√(1/800) ≈ 0.12.
	const minCount = 800
	const slack = 0.3
	checked := 0
	for shape, c1 := range h1 {
		c2 := h2[shape]
		if c1 < minCount || c2 < minCount {
			continue
		}
		checked++
		ratio := math.Log(float64(c1) / float64(c2))
		if math.Abs(ratio) > eps+slack {
			t.Errorf("shape %q: empirical privacy loss %.3f exceeds ε=%v (+slack %v); counts %d vs %d",
				shape, ratio, eps, slack, c1, c2)
		}
	}
	if checked < 2 {
		t.Fatalf("only %d shapes frequent enough to test; tighten the domain", checked)
	}
}

// TestEndToEndDPCatchesBrokenMechanism sanity-checks the detector: with
// the bias DISABLED (a deliberately broken PrivTree that uses the raw
// count at every depth and a constant-λ noise), the same measurement must
// find a shape whose loss clearly exceeds what the biased mechanism is
// charged for — demonstrating the test has power, and that the paper's
// bias term is load-bearing.
func TestEndToEndDPCatchesBrokenMechanism(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo power check skipped in -short mode")
	}
	const trials = 60000
	dom := geom.UnitCube(1)
	mk := func(coords ...float64) *dataset.Spatial {
		pts := make([]geom.Point, len(coords))
		for i, c := range coords {
			pts[i] = geom.Point{c}
		}
		ds, err := dataset.NewSpatial(dom, pts)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	// The differing point lands in an otherwise EMPTY region: every node
	// on its path has count 0 vs 1, which straddles θ at every depth, so
	// an unbiased mechanism's split probabilities differ at every level
	// of the chain and the losses accumulate.
	base := []float64{0.1, 0.11, 0.12, 0.13}
	d1 := mk(base...)
	d2 := mk(append(append([]float64(nil), base...), 0.9)...)

	split := geom.FullBisect{Dim: 1}
	const lambda = 1.0 // constant noise with NO bias: the broken variant
	const maxDepth = 7

	// Aggregate by the depth of the leaf containing the differing point
	// (0.9): a deterministic post-processing of the released structure,
	// so any log-ratio it exhibits lower-bounds the mechanism's loss.
	rightDepth := func(t *Tree) int {
		n := t.Root()
		for !n.IsLeaf() {
			moved := false
			for i := 0; i < n.NumChildren(); i++ {
				if c := n.Child(i); c.Region().Contains(geom.Point{0.9}) {
					n = c
					moved = true
					break
				}
			}
			if !moved {
				break
			}
		}
		return n.Depth()
	}
	sampleBroken := func(ds *dataset.Spatial, seed uint64) map[int]int {
		rng := dp.NewRand(seed)
		out := make(map[int]int)
		for i := 0; i < trials; i++ {
			b := NewBuilder(2, 16)
			b.AddRoot(dom)
			var grow func(idx int32, view dataset.View)
			grow = func(idx int32, view dataset.View) {
				n := b.Node(idx)
				if int(n.Depth) >= maxDepth-1 {
					return
				}
				// Raw count + Lap(λ) > θ=0.5 — no depth bias, no clamp.
				if float64(view.Len())+dp.LapNoise(rng, lambda) <= 0.5 {
					return
				}
				regions := split.Split(n.Region, int(n.Depth))
				views := view.PartitionInto(regions, make([]dataset.View, len(regions)))
				first := b.AddChildren(idx, regions)
				for ci := range regions {
					grow(first+int32(ci), views[ci])
				}
			}
			grow(0, *ds.NewView())
			out[rightDepth(b.Build(false))]++
		}
		return out
	}
	h1 := sampleBroken(d1, 3)
	h2 := sampleBroken(d2, 4)

	worst := 0.0
	for depth, c1 := range h1 {
		c2 := h2[depth]
		if c1 < 300 || c2 < 300 {
			continue
		}
		if r := math.Abs(math.Log(float64(c1) / float64(c2))); r > worst {
			worst = r
		}
	}
	// PrivTree at β=2, λ=1 would be charged ε = (2β−1)/((β−1)λ) = 3; the
	// broken mechanism must leak beyond a full-path cost > λ⁻¹·chain ≫ 1.
	if worst < 1.5 {
		t.Fatalf("broken mechanism leaked only %.3f; the detector has no power", worst)
	}
}
