package core

import (
	"math"

	"privtree/internal/geom"
)

// Node is one region of a spatial decomposition tree, stored in the tree's
// flat node arena. Count is the released noisy count: for leaves it is the
// directly perturbed value, for internal nodes the sum of their leaves'
// noisy counts (the paper's post-processing, Section 3.4). Count is NaN on
// trees built without count release.
//
// Children are identified by an index range into the arena rather than by
// pointers: a split appends all β children as one contiguous block, so the
// whole tree costs O(1) allocations per arena growth instead of O(1) per
// node, and traversals walk cache-friendly contiguous memory.
type Node struct {
	Region geom.Rect
	Count  float64
	Depth  int32
	// firstChild indexes the node's first child in the arena; 0 marks a
	// leaf (the root occupies index 0 and is never anyone's child).
	firstChild  int32
	numChildren int32
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.numChildren == 0 }

// NumChildren returns the node's child count (0 for leaves, β otherwise).
func (n *Node) NumChildren() int { return int(n.numChildren) }

// Tree is the output of PrivTree on spatial data: the decomposition plus,
// optionally, noisy counts. Nodes is the arena in depth-first order (each
// node's descendants follow it, children as contiguous blocks); Nodes[0] is
// the root. Treat the arena as read-only outside this package except
// through Builder.
type Tree struct {
	Nodes  []Node
	Fanout int
	// HasCounts records whether noisy counts were released onto nodes.
	HasCounts bool
}

// NodeRef is a handle to one node of a tree: a value type (tree pointer +
// arena index) so traversals allocate nothing. The zero NodeRef is invalid.
type NodeRef struct {
	t *Tree
	i int32
}

// Root returns a handle to the root node.
func (t *Tree) Root() NodeRef { return NodeRef{t: t, i: 0} }

// At returns a handle to the node at arena index i.
func (t *Tree) At(i int) NodeRef { return NodeRef{t: t, i: int32(i)} }

// Node returns the underlying arena node.
func (r NodeRef) Node() *Node { return &r.t.Nodes[r.i] }

// Index returns the node's arena index.
func (r NodeRef) Index() int { return int(r.i) }

// Region returns the node's region. The rectangle aliases the tree's
// storage and must not be mutated.
func (r NodeRef) Region() geom.Rect { return r.t.Nodes[r.i].Region }

// Count returns the node's released noisy count (NaN without counts).
func (r NodeRef) Count() float64 { return r.t.Nodes[r.i].Count }

// Depth returns the node's depth (root = 0).
func (r NodeRef) Depth() int { return int(r.t.Nodes[r.i].Depth) }

// IsLeaf reports whether the node has no children.
func (r NodeRef) IsLeaf() bool { return r.t.Nodes[r.i].numChildren == 0 }

// NumChildren returns the node's child count.
func (r NodeRef) NumChildren() int { return int(r.t.Nodes[r.i].numChildren) }

// Child returns a handle to the j-th child.
func (r NodeRef) Child(j int) NodeRef {
	n := &r.t.Nodes[r.i]
	if int32(j) < 0 || int32(j) >= n.numChildren {
		panic("core: child index out of range")
	}
	return NodeRef{t: r.t, i: n.firstChild + int32(j)}
}

// Size returns the total number of nodes.
func (t *Tree) Size() int { return len(t.Nodes) }

// Height returns the maximum depth over all nodes (root = 0).
func (t *Tree) Height() int {
	h := int32(0)
	for i := range t.Nodes {
		if t.Nodes[i].Depth > h {
			h = t.Nodes[i].Depth
		}
	}
	return int(h)
}

// Leaves returns handles to all leaf nodes in depth-first order.
func (t *Tree) Leaves() []NodeRef {
	nLeaves := 0
	for i := range t.Nodes {
		if t.Nodes[i].numChildren == 0 {
			nLeaves++
		}
	}
	out := make([]NodeRef, 0, nLeaves)
	t.appendLeaves(&out, 0)
	return out
}

func (t *Tree) appendLeaves(out *[]NodeRef, i int32) {
	n := &t.Nodes[i]
	if n.numChildren == 0 {
		*out = append(*out, NodeRef{t: t, i: i})
		return
	}
	for c := n.firstChild; c < n.firstChild+n.numChildren; c++ {
		t.appendLeaves(out, c)
	}
}

// SumInternalCounts recomputes every internal node's count as the sum of
// its leaves' counts (the release pipeline's definition). It relies on the
// arena invariant that children always follow their parent, so a single
// reverse scan suffices; it performs no allocation.
func (t *Tree) SumInternalCounts() {
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		n := &t.Nodes[i]
		if n.numChildren == 0 {
			continue
		}
		sum := 0.0
		for c := n.firstChild; c < n.firstChild+n.numChildren; c++ {
			sum += t.Nodes[c].Count
		}
		n.Count = sum
	}
}

// Equal reports whether two trees are identical releases: same fanout,
// count flag, and node-for-node identical arenas (regions, depths, counts
// — NaN counts compare equal — and child links). Serial and parallel
// builds from the same seed must satisfy Equal exactly.
func Equal(a, b *Tree) bool {
	if a.Fanout != b.Fanout || a.HasCounts != b.HasCounts || len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		na, nb := &a.Nodes[i], &b.Nodes[i]
		if na.Depth != nb.Depth || na.firstChild != nb.firstChild || na.numChildren != nb.numChildren {
			return false
		}
		if na.Count != nb.Count && !(math.IsNaN(na.Count) && math.IsNaN(nb.Count)) {
			return false
		}
		if len(na.Region.Lo) != len(nb.Region.Lo) {
			return false
		}
		for k := range na.Region.Lo {
			if na.Region.Lo[k] != nb.Region.Lo[k] || na.Region.Hi[k] != nb.Region.Hi[k] {
				return false
			}
		}
	}
	return true
}

// coordSlabFloats is the chunk size of the Builder's coordinate arena. At
// the quadtree default (d=2, 4 coords per node) one slab holds 1024 nodes'
// regions, so coordinate storage costs O(size/1024) allocations.
const coordSlabFloats = 4096

// Builder assembles a Tree into its arena form. All tree constructors in
// the repository — PrivTree itself, the SimpleTree baseline, the SVT
// demonstration tree, and JSON deserialization — go through a Builder, so
// they share the same allocation discipline: nodes land in a growing
// []Node, and region coordinates are copied into chunked float slabs (the
// caller may therefore reuse its scratch rectangles between AddChildren
// calls).
type Builder struct {
	nodes  []Node
	fanout int
	slab   []float64 // current coordinate slab, sliced down as it fills
}

// NewBuilder returns a builder for a tree of the given fanout. sizeHint, if
// positive, pre-sizes the node arena.
func NewBuilder(fanout, sizeHint int) *Builder {
	if sizeHint < 1 {
		sizeHint = 16
	}
	return &Builder{nodes: make([]Node, 0, sizeHint), fanout: fanout}
}

// copyRegion copies r into the coordinate arena and returns the copy.
func (b *Builder) copyRegion(r geom.Rect) geom.Rect {
	d := len(r.Lo)
	if len(b.slab) < 2*d {
		n := coordSlabFloats
		if n < 2*d {
			n = 2 * d
		}
		b.slab = make([]float64, n)
	}
	lo := b.slab[:d:d]
	hi := b.slab[d : 2*d : 2*d]
	b.slab = b.slab[2*d:]
	copy(lo, r.Lo)
	copy(hi, r.Hi)
	return geom.Rect{Lo: lo, Hi: hi}
}

// AddRoot places the root node (index 0) with the given region. It must be
// called exactly once, before any AddChildren.
func (b *Builder) AddRoot(region geom.Rect) int32 {
	if len(b.nodes) != 0 {
		panic("core: Builder.AddRoot on a non-empty builder")
	}
	b.nodes = append(b.nodes, Node{Region: b.copyRegion(region), Depth: 0, Count: math.NaN()})
	return 0
}

// AddChildren appends one child per region as a contiguous block, links
// them to the parent, and returns the first child's index. Child depths are
// parent depth + 1 and counts start at NaN. The regions are copied, so the
// caller may reuse the slice.
func (b *Builder) AddChildren(parent int32, regions []geom.Rect) int32 {
	first := int32(len(b.nodes))
	depth := b.nodes[parent].Depth + 1
	for _, r := range regions {
		b.nodes = append(b.nodes, Node{Region: b.copyRegion(r), Depth: depth, Count: math.NaN()})
	}
	b.nodes[parent].firstChild = first
	b.nodes[parent].numChildren = int32(len(regions))
	return first
}

// SetCount sets the count of node i (typically a leaf; internal counts are
// usually recomputed by Tree.SumInternalCounts).
func (b *Builder) SetCount(i int32, count float64) { b.nodes[i].Count = count }

// Node exposes node i for in-place inspection during construction.
func (b *Builder) Node(i int32) *Node { return &b.nodes[i] }

// Len returns the number of nodes added so far.
func (b *Builder) Len() int { return len(b.nodes) }

// Splice grafts a subtree built in a separate Builder onto child node
// childIdx: sub's node 0 must describe childIdx itself (the parallel build
// seeds it with a copy of that node); its descendants are appended to b
// with child links rebased. Appending sub-builders in child order
// reproduces exactly the arena layout a fully serial build would have
// produced, which is what makes parallel builds byte-identical to serial
// ones.
func (b *Builder) Splice(childIdx int32, sub *Builder) {
	base := int32(len(b.nodes)) - 1 // sub index j ≥ 1 lands at base+j
	root := sub.nodes[0]
	dst := &b.nodes[childIdx]
	dst.Count = root.Count
	if root.numChildren > 0 {
		dst.firstChild = root.firstChild + base
		dst.numChildren = root.numChildren
	}
	for _, n := range sub.nodes[1:] {
		if n.numChildren > 0 {
			n.firstChild += base
		}
		b.nodes = append(b.nodes, n)
	}
}

// Build finalizes the tree. The builder must not be used afterwards.
func (b *Builder) Build(hasCounts bool) *Tree {
	return &Tree{Nodes: b.nodes, Fanout: b.fanout, HasCounts: hasCounts}
}
