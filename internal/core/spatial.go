package core

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// Noise-stream tags: each tree node draws its split-decision noise and its
// count-release noise from the same path-derived dp.Stream under distinct
// tags, so the two draws are independent and neither depends on traversal
// order.
const (
	tagSplit = 1
	tagCount = 2
)

// parallelCutoff is the minimum number of points in a node's view before
// its child subtrees are worth fanning out to worker goroutines; below it
// the partition/expand work is cheaper than the handoff.
const parallelCutoff = 2048

// Build runs Algorithm 2 on the dataset: it releases the decomposition
// *structure* only (all point counts removed, as in line 11 of the
// algorithm), consuming p.Epsilon. Use BuildNoisy for the full pipeline
// with released counts.
//
// rng seeds a splittable per-node noise stream (one draw is taken from
// rng), so the result is a pure function of (data, p, seed) regardless of
// p.Workers: parallel and serial builds are identical.
func Build(data *dataset.Spatial, split geom.Splitter, p Params, rng *rand.Rand) (*Tree, error) {
	return build(data, split, p, 0, rng)
}

// build is the shared construction path; countScale > 0 additionally
// releases leaf counts at that Laplace scale and sums them bottom-up.
func build(data *dataset.Spatial, split geom.Splitter, p Params, countScale float64, rng *rand.Rand) (*Tree, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if split.Fanout() != p.Fanout {
		return nil, fmt.Errorf("core: splitter fanout %d disagrees with Params.Fanout %d", split.Fanout(), p.Fanout)
	}
	workers := p.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bc := &buildCtx{
		split:      split,
		dec:        NewDecider(p, nil),
		fanout:     p.Fanout,
		dims:       data.Dims(),
		countScale: countScale,
	}
	if workers > 1 {
		// Counting semaphore for extra subtree workers beyond this one.
		bc.sem = make(chan struct{}, workers-1)
	}
	b := NewBuilder(p.Fanout, 64)
	b.AddRoot(data.Domain)
	var scratch []levelScratch
	bc.expand(b, 0, *data.NewView(), dp.NewStream(rng.Uint64()), &scratch)
	t := b.Build(countScale > 0)
	if countScale > 0 {
		t.SumInternalCounts()
	}
	return t, nil
}

// levelScratch is the reusable per-recursion-level working set of expand:
// one rectangle buffer for SplitInto and one view buffer for
// PartitionInto. Allocated lazily, once per level, so a whole build costs
// O(height) scratch allocations rather than O(nodes).
type levelScratch struct {
	rects []geom.Rect
	views []dataset.View
}

// buildCtx carries the loop-invariant state of one tree construction.
type buildCtx struct {
	split      geom.Splitter
	dec        *Decider
	fanout     int
	dims       int
	countScale float64       // > 0: draw leaf counts inline
	sem        chan struct{} // non-nil: parallel fan-out permitted
}

func (c *buildCtx) level(scratch *[]levelScratch, depth int) *levelScratch {
	for len(*scratch) <= depth {
		*scratch = append(*scratch, levelScratch{})
	}
	ls := &(*scratch)[depth]
	if ls.rects == nil {
		ls.rects = geom.MakeRects(c.fanout, c.dims)
		ls.views = make([]dataset.View, c.fanout)
	}
	return ls
}

// expand grows the subtree rooted at node idx of b. The node's split
// decision, and (when counts are released) its leaf count, are drawn from
// stream; children recurse with stream.Child(i). When the semaphore has
// free slots and the view is large enough, child subtrees are built
// concurrently in per-subtree builders and spliced back in child order,
// which reproduces the serial arena layout exactly.
func (c *buildCtx) expand(b *Builder, idx int32, view dataset.View, stream dp.Stream, scratch *[]levelScratch) {
	depth := int(b.Node(idx).Depth)
	if !c.dec.ShouldSplitAt(float64(view.Len()), depth, stream) {
		if c.countScale > 0 {
			b.SetCount(idx, float64(view.Len())+stream.Laplace(tagCount, c.countScale))
		}
		return
	}
	region := b.Node(idx).Region
	ls := c.level(scratch, depth)
	regions := c.split.SplitInto(region, depth, ls.rects)
	ls.rects = regions
	views := view.PartitionInto(regions, ls.views)
	first := b.AddChildren(idx, regions)

	// Fan out only when the pool looks like it has a free slot; the check
	// is racy but purely a heuristic — both branches produce the identical
	// arena layout, so it affects wall-clock only, never the result. When
	// the pool is saturated, plain recursion below avoids the per-child
	// builder and splice-copy overhead.
	if c.sem != nil && view.Len() >= parallelCutoff && len(c.sem) < cap(c.sem) {
		// Every child subtree gets its own builder (even those expanded
		// inline on this goroutine), so splicing in child order recreates
		// the exact serial layout.
		subs := make([]*Builder, len(regions))
		var wg sync.WaitGroup
		for i := range regions {
			sub := NewBuilder(c.fanout, 64)
			sub.nodes = append(sub.nodes, b.nodes[first+int32(i)])
			subs[i] = sub
			childStream := stream.Child(i)
			childView := views[i]
			select {
			case c.sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-c.sem }()
					var sc []levelScratch
					c.expand(sub, 0, childView, childStream, &sc)
				}()
			default:
				c.expand(sub, 0, childView, childStream, scratch)
			}
		}
		wg.Wait()
		for i := range subs {
			b.Splice(first+int32(i), subs[i])
		}
		return
	}

	for i := range regions {
		c.expand(b, first+int32(i), views[i], stream.Child(i), scratch)
	}
}

// BuildNoisy runs the full PrivTree pipeline of Section 3.4 under total
// budget eps: the tree structure is built with ε/2, then each leaf's point
// count is released with Laplace scale 2/ε (leaf counts have sensitivity 1
// because every point lies in exactly one leaf), and internal counts are
// reconstituted as sums of their leaves' noisy counts. By sequential
// composition (Lemma 2.1) the whole release is ε-DP.
func BuildNoisy(data *dataset.Spatial, split geom.Splitter, eps float64, fanout int, rng *rand.Rand) (*Tree, error) {
	return BuildNoisySplit(data, split, eps, 0.5, fanout, rng)
}

// BuildNoisySplit is BuildNoisy with an explicit budget split: treeFrac of
// eps goes to the structure, the rest to the leaf counts. It exists for the
// abl-split ablation; the paper's choice is treeFrac = 0.5.
func BuildNoisySplit(data *dataset.Spatial, split geom.Splitter, eps, treeFrac float64, fanout int, rng *rand.Rand) (*Tree, error) {
	if !(treeFrac > 0 && treeFrac < 1) {
		return nil, fmt.Errorf("core: treeFrac must be in (0,1), got %v", treeFrac)
	}
	budget := dp.NewBudget(eps)
	epsTree := eps * treeFrac
	epsCount := eps - epsTree
	budget.MustSpend(epsTree)
	budget.MustSpend(epsCount)

	p := Params{Epsilon: epsTree, Fanout: fanout}
	return build(data, split, p, 1/epsCount, rng)
}

// BuildNoisyParams is the fully parameterized pipeline: the tree is built
// with the given Params (θ, γ, MaxDepth and the tree budget all explicit),
// then leaf counts are attached at budget epsCount. The total privacy cost
// is p.Epsilon + epsCount. It exists for ablations; BuildNoisy is the
// paper-default entry point.
func BuildNoisyParams(data *dataset.Spatial, split geom.Splitter, p Params, epsCount float64, rng *rand.Rand) (*Tree, error) {
	if !(epsCount > 0) {
		return nil, fmt.Errorf("core: epsCount must be positive, got %v", epsCount)
	}
	return build(data, split, p, 1/epsCount, rng)
}

// RangeCount answers a range-count query with the top-down traversal of
// Section 2.2: fully contained nodes contribute their noisy count, leaves
// that partially intersect contribute count · |q∩dom|/|dom| (uniformity
// assumption), disjoint nodes are skipped. It performs no heap allocation.
// It panics if the tree carries no counts.
func (t *Tree) RangeCount(q geom.Rect) float64 {
	if !t.HasCounts {
		panic("core: RangeCount on a tree without released counts")
	}
	return t.rangeCountAt(0, q)
}

func (t *Tree) rangeCountAt(i int32, q geom.Rect) float64 {
	n := &t.Nodes[i]
	iv := n.Region.IntersectionVolume(q)
	if iv == 0 {
		return 0
	}
	if q.ContainsRect(n.Region) {
		return n.Count
	}
	if n.numChildren == 0 {
		vol := n.Region.Volume()
		if vol == 0 {
			return 0
		}
		return n.Count * (iv / vol)
	}
	sum := 0.0
	for c := n.firstChild; c < n.firstChild+n.numChildren; c++ {
		sum += t.rangeCountAt(c, q)
	}
	return sum
}

// BuildExact runs Algorithm 2 with no noise and no bias (b̂(v) = c(v)),
// producing the tree T* of Lemma 3.2. It is used by the Lemma 3.2 property
// test and by utility diagnostics; it is NOT differentially private.
func BuildExact(data *dataset.Spatial, split geom.Splitter, theta float64, maxDepth int) *Tree {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	bc := &buildCtx{split: split, fanout: split.Fanout(), dims: data.Dims()}
	b := NewBuilder(bc.fanout, 64)
	b.AddRoot(data.Domain)
	var scratch []levelScratch
	var grow func(idx int32, view dataset.View)
	grow = func(idx int32, view dataset.View) {
		depth := int(b.Node(idx).Depth)
		if float64(view.Len()) <= theta || depth >= maxDepth-1 {
			return
		}
		region := b.Node(idx).Region
		ls := bc.level(&scratch, depth)
		regions := split.SplitInto(region, depth, ls.rects)
		ls.rects = regions
		views := view.PartitionInto(regions, ls.views)
		first := b.AddChildren(idx, regions)
		for i := range regions {
			grow(first+int32(i), views[i])
		}
	}
	grow(0, *data.NewView())
	return b.Build(false)
}
