package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// Node is one region of a spatial decomposition tree. Count is the released
// noisy count: for leaves it is the directly perturbed value, for internal
// nodes the sum of their leaves' noisy counts (the paper's post-processing,
// Section 3.4). Count is NaN on trees built without count release.
type Node struct {
	Region   geom.Rect
	Depth    int
	Children []*Node
	Count    float64
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Tree is the output of PrivTree on spatial data: the decomposition plus,
// optionally, noisy counts.
type Tree struct {
	Root   *Node
	Fanout int
	// HasCounts records whether noisy counts were released onto nodes.
	HasCounts bool
}

// Size returns the total number of nodes.
func (t *Tree) Size() int { return countNodes(t.Root) }

func countNodes(n *Node) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// Height returns the maximum depth over all nodes (root = 0).
func (t *Tree) Height() int { return maxDepth(t.Root) }

func maxDepth(n *Node) int {
	d := n.Depth
	for _, c := range n.Children {
		if cd := maxDepth(c); cd > d {
			d = cd
		}
	}
	return d
}

// Leaves returns all leaf nodes in depth-first order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// Build runs Algorithm 2 on the dataset: it releases the decomposition
// *structure* only (all point counts removed, as in line 11 of the
// algorithm), consuming p.Epsilon. Use BuildNoisy for the full pipeline
// with released counts.
func Build(data *dataset.Spatial, split geom.Splitter, p Params, rng *rand.Rand) (*Tree, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if split.Fanout() != p.Fanout {
		return nil, fmt.Errorf("core: splitter fanout %d disagrees with Params.Fanout %d", split.Fanout(), p.Fanout)
	}
	dec := NewDecider(p, rng)
	root := &Node{Region: data.Domain.Clone(), Depth: 0, Count: math.NaN()}
	expand(root, data.NewView(), split, dec)
	return &Tree{Root: root, Fanout: p.Fanout}, nil
}

// expand recursively applies the split decision. The view is partitioned
// among children so that counting is linear per level.
func expand(n *Node, view *dataset.View, split geom.Splitter, dec *Decider) {
	if !dec.ShouldSplit(float64(view.Len()), n.Depth) {
		return
	}
	regions := split.Split(n.Region, n.Depth)
	views := view.Partition(regions)
	n.Children = make([]*Node, len(regions))
	for i, r := range regions {
		child := &Node{Region: r, Depth: n.Depth + 1, Count: math.NaN()}
		n.Children[i] = child
		expand(child, views[i], split, dec)
	}
}

// BuildNoisy runs the full PrivTree pipeline of Section 3.4 under total
// budget eps: the tree structure is built with ε/2, then each leaf's point
// count is released with Laplace scale 2/ε (leaf counts have sensitivity 1
// because every point lies in exactly one leaf), and internal counts are
// reconstituted as sums of their leaves' noisy counts. By sequential
// composition (Lemma 2.1) the whole release is ε-DP.
func BuildNoisy(data *dataset.Spatial, split geom.Splitter, eps float64, fanout int, rng *rand.Rand) (*Tree, error) {
	return BuildNoisySplit(data, split, eps, 0.5, fanout, rng)
}

// BuildNoisySplit is BuildNoisy with an explicit budget split: treeFrac of
// eps goes to the structure, the rest to the leaf counts. It exists for the
// abl-split ablation; the paper's choice is treeFrac = 0.5.
func BuildNoisySplit(data *dataset.Spatial, split geom.Splitter, eps, treeFrac float64, fanout int, rng *rand.Rand) (*Tree, error) {
	if !(treeFrac > 0 && treeFrac < 1) {
		return nil, fmt.Errorf("core: treeFrac must be in (0,1), got %v", treeFrac)
	}
	budget := dp.NewBudget(eps)
	epsTree := eps * treeFrac
	epsCount := eps - epsTree
	budget.MustSpend(epsTree)
	budget.MustSpend(epsCount)

	p := Params{Epsilon: epsTree, Fanout: fanout}
	t, err := Build(data, split, p, rng)
	if err != nil {
		return nil, err
	}
	attachNoisyCounts(t, data, epsCount, rng)
	return t, nil
}

// BuildNoisyParams is the fully parameterized pipeline: the tree is built
// with the given Params (θ, γ, MaxDepth and the tree budget all explicit),
// then leaf counts are attached at budget epsCount. The total privacy cost
// is p.Epsilon + epsCount. It exists for ablations; BuildNoisy is the
// paper-default entry point.
func BuildNoisyParams(data *dataset.Spatial, split geom.Splitter, p Params, epsCount float64, rng *rand.Rand) (*Tree, error) {
	if !(epsCount > 0) {
		return nil, fmt.Errorf("core: epsCount must be positive, got %v", epsCount)
	}
	t, err := Build(data, split, p, rng)
	if err != nil {
		return nil, err
	}
	attachNoisyCounts(t, data, epsCount, rng)
	return t, nil
}

// attachNoisyCounts performs the post-processing step: noisy leaf counts at
// scale 1/epsCount, then bottom-up summation for internal nodes.
func attachNoisyCounts(t *Tree, data *dataset.Spatial, epsCount float64, rng *rand.Rand) {
	mech := dp.LaplaceMechanism{Epsilon: epsCount, Sensitivity: 1}
	view := data.NewView()
	var walk func(n *Node, v *dataset.View) float64
	walk = func(n *Node, v *dataset.View) float64 {
		if n.IsLeaf() {
			n.Count = mech.Release(rng, float64(v.Len()))
			return n.Count
		}
		regions := make([]geom.Rect, len(n.Children))
		for i, c := range n.Children {
			regions[i] = c.Region
		}
		views := v.Partition(regions)
		sum := 0.0
		for i, c := range n.Children {
			sum += walk(c, views[i])
		}
		n.Count = sum
		return sum
	}
	walk(t.Root, view)
	t.HasCounts = true
}

// RangeCount answers a range-count query with the top-down traversal of
// Section 2.2: fully contained nodes contribute their noisy count, leaves
// that partially intersect contribute count · |q∩dom|/|dom| (uniformity
// assumption), disjoint nodes are skipped. It panics if the tree carries no
// counts.
func (t *Tree) RangeCount(q geom.Rect) float64 {
	if !t.HasCounts {
		panic("core: RangeCount on a tree without released counts")
	}
	var visit func(n *Node) float64
	visit = func(n *Node) float64 {
		inter, ok := n.Region.Intersect(q)
		if !ok {
			return 0
		}
		if q.ContainsRect(n.Region) {
			return n.Count
		}
		if n.IsLeaf() {
			return n.Count * n.Region.OverlapFraction(inter)
		}
		sum := 0.0
		for _, c := range n.Children {
			sum += visit(c)
		}
		return sum
	}
	return visit(t.Root)
}

// BuildExact runs Algorithm 2 with no noise and no bias (b̂(v) = c(v)),
// producing the tree T* of Lemma 3.2. It is used by the Lemma 3.2 property
// test and by utility diagnostics; it is NOT differentially private.
func BuildExact(data *dataset.Spatial, split geom.Splitter, theta float64, maxDepth int) *Tree {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	root := &Node{Region: data.Domain.Clone(), Depth: 0, Count: math.NaN()}
	var grow func(n *Node, view *dataset.View)
	grow = func(n *Node, view *dataset.View) {
		if float64(view.Len()) <= theta || n.Depth >= maxDepth-1 {
			return
		}
		regions := split.Split(n.Region, n.Depth)
		views := view.Partition(regions)
		n.Children = make([]*Node, len(regions))
		for i, r := range regions {
			child := &Node{Region: r, Depth: n.Depth + 1, Count: math.NaN()}
			n.Children[i] = child
			grow(child, views[i])
		}
	}
	grow(root, data.NewView())
	return &Tree{Root: root, Fanout: split.Fanout()}
}
