package core

import (
	"testing"

	"privtree/internal/dp"
	"privtree/internal/geom"
)

// TestParallelBuildMatchesSerial is the determinism contract of the
// parallel build: for the same seed, every Workers setting must release
// the identical tree — same arena layout, same regions, same split
// decisions, same noisy counts.
func TestParallelBuildMatchesSerial(t *testing.T) {
	ds := clusteredData(60000, 21)
	split := geom.FullBisect{Dim: 2}
	for _, workers := range []int{2, 4, 8} {
		for seed := uint64(1); seed <= 5; seed++ {
			serialP := Params{Epsilon: 1.0, Fanout: 4, Workers: 1}
			parP := Params{Epsilon: 1.0, Fanout: 4, Workers: workers}

			serial, err := Build(ds, split, serialP, dp.NewRand(seed))
			if err != nil {
				t.Fatal(err)
			}
			par, err := Build(ds, split, parP, dp.NewRand(seed))
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(serial, par) {
				t.Fatalf("workers=%d seed=%d: parallel structure-only build differs from serial", workers, seed)
			}

			serialN, err := BuildNoisyParams(ds, split, serialP, 0.5, dp.NewRand(seed))
			if err != nil {
				t.Fatal(err)
			}
			parN, err := BuildNoisyParams(ds, split, parP, 0.5, dp.NewRand(seed))
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(serialN, parN) {
				t.Fatalf("workers=%d seed=%d: parallel noisy build differs from serial", workers, seed)
			}
		}
	}
}

// TestBuildOrderIndependentOfRNGSharing verifies the splittable-stream
// property that makes parallelism safe: the tree depends only on the one
// seed draw taken from rng, so interleaving unrelated draws between builds
// changes the NEXT tree, never the current one.
func TestBuildOrderIndependentOfRNGSharing(t *testing.T) {
	ds := clusteredData(5000, 22)
	split := geom.FullBisect{Dim: 2}
	p := Params{Epsilon: 1.0, Fanout: 4}

	rng := dp.NewRand(7)
	first, err := Build(ds, split, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild from a fresh generator with the same seed: identical.
	again, err := Build(ds, split, p, dp.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(first, again) {
		t.Fatal("same seed did not reproduce the same tree")
	}
	// A second build from the advanced generator must differ (new stream).
	second, err := Build(ds, split, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if Equal(first, second) {
		t.Fatal("consecutive builds from one rng produced identical trees")
	}
}

// TestRangeCountZeroAllocs pins the steady-state query cost: once a tree
// is built, answering a range-count query must not touch the heap.
func TestRangeCountZeroAllocs(t *testing.T) {
	ds := clusteredData(50000, 23)
	tree, err := BuildNoisy(ds, geom.FullBisect{Dim: 2}, 1.0, 4, dp.NewRand(24))
	if err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(geom.Point{0.1, 0.1}, geom.Point{0.6, 0.6})
	if allocs := testing.AllocsPerRun(100, func() {
		tree.RangeCount(q)
	}); allocs != 0 {
		t.Fatalf("RangeCount allocated %v times per query, want 0", allocs)
	}
}

// TestBuildAllocsBudget guards the construction allocation budget: the
// arena + per-level scratch design costs O(height) allocations, not
// O(nodes). 256 leaves generous headroom over the measured ~90 while
// still catching any regression to per-node allocation (which would be
// thousands here).
func TestBuildAllocsBudget(t *testing.T) {
	ds := clusteredData(50000, 25)
	split := geom.FullBisect{Dim: 2}
	p := Params{Epsilon: 1.0, Fanout: 4, Workers: 1}
	seed := uint64(0)
	allocs := testing.AllocsPerRun(5, func() {
		seed++
		if _, err := BuildNoisyParams(ds, split, p, 0.5, dp.NewRand(seed)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 256 {
		t.Fatalf("BuildNoisyParams allocated %v times, budget is 256 (O(height), not O(nodes))", allocs)
	}
}
