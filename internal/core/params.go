// Package core implements PrivTree (Algorithm 2 of Zhang, Xiao & Xie,
// SIGMOD 2016): differentially private hierarchical decomposition with no
// pre-defined recursion-depth limit. The split decision for every node uses
// a biased, clamped score b(v) = max(θ−δ, c(v) − depth(v)·δ) plus Laplace
// noise of a *constant* scale λ; the bias makes the per-level privacy costs
// telescope (Lemma 3.1), so λ = Θ(1/ε) independent of tree height
// (Theorem 3.1, Corollary 1).
package core

import (
	"fmt"
	"math"
)

// DefaultMaxDepth is the engineering guard on recursion depth. The
// algorithm itself needs no height limit — the decaying factor makes the
// expected tree size bounded (Lemma 3.2) — but float64 subdivision bottoms
// out near 52 halvings per axis, so we stop there. At the paper's
// parameterizations the cap never binds (see the abl-depth experiment).
const DefaultMaxDepth = 64

// Params configures a PrivTree invocation. Epsilon is the budget consumed
// by tree *construction* only; callers that also publish counts split their
// total budget first (see BuildNoisy).
type Params struct {
	// Epsilon is the differential-privacy budget for the split decisions.
	Epsilon float64
	// Fanout is β, the number of children per split. It must match the
	// splitter used to expand nodes.
	Fanout int
	// Theta is the split threshold θ. The paper recommends and uses 0
	// (Section 3.4): the negative bias already guarantees that split
	// nodes have large counts.
	Theta float64
	// Gamma is γ in δ = γ·λ. Zero means the paper's choice γ = ln β,
	// which makes a boundary node's expected subtree size 2 (Lemma 3.2).
	Gamma float64
	// Sensitivity is the score function's sensitivity: 1 for point
	// counts, l⊤ for the sequence-model score (Theorem 4.1).
	Sensitivity float64
	// MaxDepth guards the recursion; 0 means DefaultMaxDepth.
	MaxDepth int
	// Workers bounds the goroutines used to build the tree: 0 means
	// GOMAXPROCS, 1 forces a serial build. Because every node draws its
	// noise from a path-keyed splittable stream, the released tree is
	// identical for every Workers value — the knob trades wall-clock time
	// only, never reproducibility.
	Workers int
}

// Validate normalizes defaults and rejects unusable configurations.
func (p *Params) Validate() error {
	if !(p.Epsilon > 0) {
		return fmt.Errorf("core: Epsilon must be positive, got %v", p.Epsilon)
	}
	if p.Fanout < 2 {
		return fmt.Errorf("core: Fanout must be >= 2, got %d", p.Fanout)
	}
	if p.Gamma == 0 {
		p.Gamma = math.Log(float64(p.Fanout))
	}
	if !(p.Gamma > 0) {
		return fmt.Errorf("core: Gamma must be positive, got %v", p.Gamma)
	}
	if p.Sensitivity == 0 {
		p.Sensitivity = 1
	}
	if !(p.Sensitivity > 0) {
		return fmt.Errorf("core: Sensitivity must be positive, got %v", p.Sensitivity)
	}
	if p.MaxDepth == 0 {
		p.MaxDepth = DefaultMaxDepth
	}
	if p.MaxDepth < 1 {
		return fmt.Errorf("core: MaxDepth must be >= 1, got %d", p.MaxDepth)
	}
	if p.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", p.Workers)
	}
	return nil
}

// Lambda returns the minimal noise scale that makes the construction
// ε-differentially private: λ = (2e^γ − 1)/(e^γ − 1) · S/ε (Theorem 3.1,
// generalized to score sensitivity S per Section 3.5/Theorem 4.1). With the
// default γ = ln β this is Corollary 1's (2β−1)/(β−1) · S/ε.
func (p Params) Lambda() float64 {
	eg := math.Exp(p.Gamma)
	return (2*eg - 1) / (eg - 1) * p.Sensitivity / p.Epsilon
}

// Delta returns the decaying factor δ = γ·λ (δ = λ·ln β at the default γ).
func (p Params) Delta() float64 { return p.Gamma * p.Lambda() }

// LambdaForEpsilon is the standalone form of Corollary 1: the minimum noise
// scale for a fanout-β PrivTree at budget ε with unit sensitivity.
func LambdaForEpsilon(beta int, eps float64) float64 {
	b := float64(beta)
	return (2*b - 1) / (b - 1) / eps
}
