package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

func clusteredData(n int, seed uint64) *dataset.Spatial {
	rng := rand.New(rand.NewPCG(seed, 3))
	pts := make([]geom.Point, n)
	for i := range pts {
		if i%10 == 0 {
			pts[i] = geom.Point{rng.Float64(), rng.Float64()}
		} else {
			// Dense cluster near (0.2, 0.2).
			x := 0.2 + 0.02*rng.NormFloat64()
			y := 0.2 + 0.02*rng.NormFloat64()
			pts[i] = geom.Point{clamp01(x), clamp01(y)}
		}
	}
	ds, err := dataset.NewSpatial(geom.UnitCube(2), pts)
	if err != nil {
		panic(err)
	}
	return ds
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return math.Nextafter(1, 0)
	}
	return x
}

func TestParamsValidateDefaults(t *testing.T) {
	p := Params{Epsilon: 1, Fanout: 4}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Gamma-math.Log(4)) > 1e-12 {
		t.Errorf("default gamma = %v, want ln 4", p.Gamma)
	}
	if p.Sensitivity != 1 || p.MaxDepth != DefaultMaxDepth {
		t.Errorf("defaults not applied: %+v", p)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	bad := []Params{
		{Epsilon: 0, Fanout: 4},
		{Epsilon: -1, Fanout: 4},
		{Epsilon: 1, Fanout: 1},
		{Epsilon: 1, Fanout: 4, Gamma: -2},
		{Epsilon: 1, Fanout: 4, Sensitivity: -1},
		{Epsilon: 1, Fanout: 4, MaxDepth: -5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestLambdaMatchesCorollary1(t *testing.T) {
	// With γ = ln β, λ = (2β−1)/(β−1)·1/ε.
	for _, beta := range []int{2, 4, 8, 16} {
		for _, eps := range []float64{0.05, 0.5, 1.6} {
			p := Params{Epsilon: eps, Fanout: beta}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			want := LambdaForEpsilon(beta, eps)
			if got := p.Lambda(); math.Abs(got-want)/want > 1e-12 {
				t.Errorf("β=%d ε=%v: λ=%v, corollary says %v", beta, eps, got, want)
			}
		}
	}
}

func TestDeltaIsGammaLambda(t *testing.T) {
	p := Params{Epsilon: 1, Fanout: 4}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Delta()-p.Gamma*p.Lambda()) > 1e-12 {
		t.Fatal("delta != gamma·lambda")
	}
}

func TestRhoEqualsInverseLambdaBelowThreshold(t *testing.T) {
	// Equation (3): for x ≤ θ, ρ(x) = 1/λ exactly.
	const theta, lambda = 10.0, 2.0
	for _, x := range []float64{-5, 0, 5, 9, 10} {
		if got := Rho(x, theta, lambda); math.Abs(got-1/lambda) > 1e-9 {
			t.Errorf("ρ(%v) = %v, want %v", x, got, 1/lambda)
		}
	}
}

func TestRhoDecaysAboveThreshold(t *testing.T) {
	const theta, lambda = 0.0, 1.0
	prev := Rho(theta+1, theta, lambda)
	for x := theta + 2; x < theta+15; x++ {
		cur := Rho(x, theta, lambda)
		if cur >= prev {
			t.Fatalf("ρ not decreasing at x=%v: %v >= %v", x, cur, prev)
		}
		prev = cur
	}
	// Exponential decay: ρ(θ+10) should be tiny.
	if got := Rho(theta+10, theta, lambda); got > 2e-4 {
		t.Errorf("ρ(θ+10) = %v, expected exponential decay", got)
	}
}

func TestRhoUpperBoundsRho(t *testing.T) {
	// Lemma 3.1: ρ(x) ≤ ρ⊤(x) everywhere.
	f := func(xRaw float64, thetaSel, lambdaSel uint8) bool {
		theta := float64(thetaSel%20) - 5
		lambda := 0.2 + float64(lambdaSel%40)/8
		x := math.Mod(xRaw, 50)
		if x != x {
			x = 0
		}
		return Rho(x, theta, lambda) <= RhoUpper(x, theta, lambda)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRhoUpperTightAtThreshold(t *testing.T) {
	// ρ⊤ is within a small factor of ρ right above θ+1.
	const theta, lambda = 0.0, 1.5
	x := theta + 1.0
	r, ru := Rho(x, theta, lambda), RhoUpper(x, theta, lambda)
	if ru < r || ru > 3*r {
		t.Fatalf("bound too loose at θ+1: ρ=%v ρ⊤=%v", r, ru)
	}
}

func TestPrivacyCostBoundMatchesTheorem(t *testing.T) {
	// With δ = λ·ln β, the bound is (2β−1)/(β−1)·(1/λ).
	lambda := 3.0
	beta := 4.0
	delta := lambda * math.Log(beta)
	want := (2*beta - 1) / (beta - 1) / lambda
	if got := PrivacyCostBound(lambda, delta); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("bound = %v, want %v", got, want)
	}
}

func TestTheorem31PrivacyLossOnPaths(t *testing.T) {
	// Theorem 3.1, checked analytically: for ANY root-to-leaf path of
	// non-increasing counts (the nodes whose counts change when one point
	// is inserted), the exact log-ratio of split/non-split probabilities
	// between neighboring datasets stays within ±ε when λ is set per
	// Corollary 1.
	const beta = 4
	for _, eps := range []float64{0.1, 0.5, 2.0} {
		p := Params{Epsilon: eps, Fanout: beta}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		dec := NewDecider(p, dp.NewRand(99))
		l := dp.NewLaplace(0, p.Lambda())
		pathLoss := func(counts []float64) float64 {
			loss := 0.0
			for i, c := range counts {
				b := dec.BiasedScore(c, i)
				bp := dec.BiasedScore(c-1, i)
				if i == len(counts)-1 {
					// The leaf does not split on either dataset.
					loss += math.Log(l.CDF(p.Theta-b) / l.CDF(p.Theta-bp))
				} else {
					loss += math.Log(l.Tail(p.Theta-b) / l.Tail(p.Theta-bp))
				}
			}
			return loss
		}
		rng := rand.New(rand.NewPCG(42, uint64(eps*1000)))
		for trial := 0; trial < 300; trial++ {
			depth := 1 + rng.IntN(40)
			counts := make([]float64, depth)
			c := float64(rng.IntN(1_000_000) + 1)
			for i := range counts {
				counts[i] = c
				// Counts shrink arbitrarily (including not at all).
				c = math.Floor(c * rng.Float64())
				if c < 1 {
					c = 1
				}
			}
			loss := pathLoss(counts)
			if loss > eps+1e-9 || loss < -eps-1e-9 {
				t.Fatalf("ε=%v path %v: privacy loss %v outside ±ε", eps, counts[:min(5, len(counts))], loss)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSplitProbabilityAtFloor(t *testing.T) {
	// Lemma 3.2 setup: Pr[Lap(λ) > λ·ln β] = 1/(2β).
	for _, beta := range []float64{2, 4, 16} {
		lambda := 1.7
		got := SplitProbabilityAtFloor(lambda, lambda*math.Log(beta))
		want := 1 / (2 * beta)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("β=%v: floor split prob %v, want %v", beta, got, want)
		}
	}
}

func TestDeciderBiasedScore(t *testing.T) {
	p := Params{Epsilon: 1, Fanout: 4}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecider(p, dp.NewRand(1))
	delta := p.Delta()
	// Equation (8): b = max(θ−δ, c − depth·δ).
	if got := dec.BiasedScore(100, 0); got != 100 {
		t.Errorf("depth 0 biased score = %v, want 100", got)
	}
	if got := dec.BiasedScore(100, 3); math.Abs(got-(100-3*delta)) > 1e-12 {
		t.Errorf("depth 3 biased score = %v, want %v", got, 100-3*delta)
	}
	if got := dec.BiasedScore(0, 50); got != -delta {
		t.Errorf("floor = %v, want θ−δ = %v", got, -delta)
	}
}

func TestDeciderRespectsMaxDepth(t *testing.T) {
	p := Params{Epsilon: 10, Fanout: 4, MaxDepth: 5}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecider(p, dp.NewRand(2))
	for trial := 0; trial < 100; trial++ {
		if dec.ShouldSplit(1e9, 4) {
			t.Fatal("split allowed at MaxDepth-1")
		}
	}
}

func TestDeciderSplitsHugeCounts(t *testing.T) {
	p := Params{Epsilon: 1, Fanout: 4}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecider(p, dp.NewRand(3))
	// A node with count far above depth·δ should essentially always split.
	for trial := 0; trial < 100; trial++ {
		if !dec.ShouldSplit(1e7, 3) {
			t.Fatal("huge count did not split")
		}
	}
}

func TestBuildProducesValidTree(t *testing.T) {
	ds := clusteredData(20000, 1)
	p := Params{Epsilon: 1.0, Fanout: 4}
	tree, err := Build(ds, geom.FullBisect{Dim: 2}, p, dp.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() < 5 {
		t.Fatalf("tree suspiciously small: %d nodes", tree.Size())
	}
	// Structural invariants: children tile parents, depths increment.
	var walk func(n NodeRef)
	walk = func(n NodeRef) {
		if n.IsLeaf() {
			return
		}
		if n.NumChildren() != 4 {
			t.Fatalf("fanout violated: %d children", n.NumChildren())
		}
		vol := 0.0
		for i := 0; i < n.NumChildren(); i++ {
			c := n.Child(i)
			if c.Depth() != n.Depth()+1 {
				t.Fatalf("depth not incremented")
			}
			if !n.Region().ContainsRect(c.Region()) {
				t.Fatalf("child escapes parent")
			}
			vol += c.Region().Volume()
			walk(c)
		}
		if math.Abs(vol-n.Region().Volume()) > 1e-9 {
			t.Fatalf("children do not tile parent")
		}
	}
	walk(tree.Root())
}

func TestBuildAdaptsToSkew(t *testing.T) {
	// The tree must be deeper inside the dense cluster than in sparse space.
	ds := clusteredData(50000, 2)
	p := Params{Epsilon: 1.0, Fanout: 4}
	tree, err := Build(ds, geom.FullBisect{Dim: 2}, p, dp.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	depthAt := func(x, y float64) int {
		n := tree.Root()
		for !n.IsLeaf() {
			for i := 0; i < n.NumChildren(); i++ {
				if c := n.Child(i); c.Region().Contains(geom.Point{x, y}) {
					n = c
					break
				}
			}
		}
		return n.Depth()
	}
	dense := depthAt(0.2, 0.2)
	sparse := depthAt(0.9, 0.9)
	if dense <= sparse {
		t.Fatalf("dense leaf depth %d not greater than sparse %d", dense, sparse)
	}
}

func TestBuildRemovesCounts(t *testing.T) {
	ds := clusteredData(1000, 3)
	p := Params{Epsilon: 1.0, Fanout: 4}
	tree, err := Build(ds, geom.FullBisect{Dim: 2}, p, dp.NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	if tree.HasCounts {
		t.Fatal("Build released counts")
	}
	for i := range tree.Nodes {
		if !math.IsNaN(tree.Nodes[i].Count) {
			t.Fatalf("node carries count %v; Algorithm 2 removes all counts", tree.Nodes[i].Count)
		}
	}
}

func TestBuildRejectsFanoutMismatch(t *testing.T) {
	ds := clusteredData(100, 4)
	p := Params{Epsilon: 1, Fanout: 8} // splitter below is fanout 4
	if _, err := Build(ds, geom.FullBisect{Dim: 2}, p, dp.NewRand(7)); err == nil {
		t.Fatal("fanout mismatch accepted")
	}
}

func TestBuildNoisyInternalCountsAreLeafSums(t *testing.T) {
	ds := clusteredData(20000, 5)
	tree, err := BuildNoisy(ds, geom.FullBisect{Dim: 2}, 1.0, 4, dp.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	if !tree.HasCounts {
		t.Fatal("BuildNoisy did not release counts")
	}
	var walk func(n NodeRef) float64
	walk = func(n NodeRef) float64 {
		if n.IsLeaf() {
			return n.Count()
		}
		sum := 0.0
		for i := 0; i < n.NumChildren(); i++ {
			sum += walk(n.Child(i))
		}
		if math.Abs(sum-n.Count()) > 1e-6 {
			t.Fatalf("internal count %v != leaf sum %v", n.Count(), sum)
		}
		return sum
	}
	walk(tree.Root())
}

func TestBuildNoisyRootNearN(t *testing.T) {
	ds := clusteredData(50000, 6)
	tree, err := BuildNoisy(ds, geom.FullBisect{Dim: 2}, 1.0, 4, dp.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tree.Root().Count()-50000) > 2000 {
		t.Fatalf("root noisy count %v too far from 50000", tree.Root().Count())
	}
}

func TestRangeCountAccuracyOnClusteredData(t *testing.T) {
	ds := clusteredData(50000, 7)
	tree, err := BuildNoisy(ds, geom.FullBisect{Dim: 2}, 1.0, 4, dp.NewRand(10))
	if err != nil {
		t.Fatal(err)
	}
	idx := dataset.NewGridIndex(ds, 32)
	rng := rand.New(rand.NewPCG(11, 11))
	worst := 0.0
	for trial := 0; trial < 50; trial++ {
		lo := geom.Point{rng.Float64() * 0.7, rng.Float64() * 0.7}
		q := geom.NewRect(lo, geom.Point{lo[0] + 0.3, lo[1] + 0.3})
		exact := float64(idx.RangeCount(q))
		got := tree.RangeCount(q)
		re := math.Abs(got-exact) / math.Max(exact, 50)
		if re > worst {
			worst = re
		}
	}
	if worst > 0.6 {
		t.Fatalf("worst relative error %v too large at ε=1 on 9%%-volume queries", worst)
	}
}

func TestRangeCountFullDomain(t *testing.T) {
	ds := clusteredData(10000, 8)
	tree, err := BuildNoisy(ds, geom.FullBisect{Dim: 2}, 1.0, 4, dp.NewRand(12))
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.RangeCount(ds.Domain); math.Abs(got-tree.Root().Count()) > 1e-6 {
		t.Fatalf("full-domain query %v != root count %v", got, tree.Root().Count())
	}
}

func TestRangeCountPanicsWithoutCounts(t *testing.T) {
	ds := clusteredData(100, 9)
	p := Params{Epsilon: 1, Fanout: 4}
	tree, _ := Build(ds, geom.FullBisect{Dim: 2}, p, dp.NewRand(13))
	defer func() {
		if recover() == nil {
			t.Fatal("RangeCount without counts did not panic")
		}
	}()
	tree.RangeCount(ds.Domain)
}

func TestBuildNoisySplitValidation(t *testing.T) {
	ds := clusteredData(100, 10)
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		if _, err := BuildNoisySplit(ds, geom.FullBisect{Dim: 2}, 1, frac, 4, dp.NewRand(14)); err == nil {
			t.Errorf("treeFrac=%v accepted", frac)
		}
	}
}

func TestBuildExactSplitsAboveTheta(t *testing.T) {
	ds := clusteredData(10000, 11)
	tree := BuildExact(ds, geom.FullBisect{Dim: 2}, 100, 0)
	// Every leaf must have ≤ θ points OR be at max depth; every internal
	// node must have > θ points.
	var walk func(n NodeRef, view *dataset.View)
	walk = func(n NodeRef, view *dataset.View) {
		if n.IsLeaf() {
			if float64(view.Len()) > 100 && n.Depth() < DefaultMaxDepth-1 {
				t.Fatalf("leaf with %d > θ points at depth %d", view.Len(), n.Depth())
			}
			return
		}
		if view.Len() <= 100 {
			t.Fatalf("internal node with %d <= θ points", view.Len())
		}
		regions := make([]geom.Rect, n.NumChildren())
		for i := range regions {
			regions[i] = n.Child(i).Region()
		}
		views := view.Partition(regions)
		for i := range regions {
			walk(n.Child(i), views[i])
		}
	}
	walk(tree.Root(), ds.NewView())
}

func TestLemma32ExpectedTreeSize(t *testing.T) {
	// E[|T|] ≤ 2·|T*| when δ = λ·ln β and |T*| > 1. We average tree sizes
	// over repeated private builds at θ chosen so T* is nontrivial.
	ds := clusteredData(20000, 12)
	split := geom.FullBisect{Dim: 2}
	exact := BuildExact(ds, split, 0, 0) // θ=0 matches PrivTree's default
	star := exact.Size()
	if star <= 1 {
		t.Fatalf("T* degenerate: %d nodes", star)
	}
	rng := dp.NewRand(15)
	const reps = 30
	total := 0
	for r := 0; r < reps; r++ {
		p := Params{Epsilon: 1.0, Fanout: 4}
		tree, err := Build(ds, split, p, rng)
		if err != nil {
			t.Fatal(err)
		}
		total += tree.Size()
	}
	avg := float64(total) / reps
	// Allow slack for Monte-Carlo noise on top of the factor-2 bound.
	if avg > 2.2*float64(star) {
		t.Fatalf("E[|T|] ≈ %v exceeds 2·|T*| = %v (Lemma 3.2)", avg, 2*star)
	}
}

func TestEmpiricalPrivacyLossWithinRhoUpper(t *testing.T) {
	// The realized split-decision privacy loss at any score must stay
	// under ρ⊤ of the biased score (plus Monte-Carlo slack).
	p := Params{Epsilon: 0.5, Fanout: 4}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecider(p, dp.NewRand(16))
	lambda, delta := p.Lambda(), p.Delta()
	for _, score := range []float64{0, 5, 3 * delta, 10 * delta} {
		for _, depth := range []int{0, 2, 5} {
			loss := EmpiricalPrivacyLoss(dec, score, depth, 400000)
			b := dec.BiasedScore(score, depth)
			bound := RhoUpper(b, p.Theta, lambda)
			if loss > bound+0.02 {
				t.Errorf("score=%v depth=%d: loss %v > ρ⊤ %v", score, depth, loss, bound)
			}
		}
	}
}

func TestTreeAccessors(t *testing.T) {
	ds := clusteredData(5000, 13)
	tree, err := BuildNoisy(ds, geom.FullBisect{Dim: 2}, 1.0, 4, dp.NewRand(17))
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	if len(leaves) == 0 {
		t.Fatal("no leaves")
	}
	internal := tree.Size() - len(leaves)
	// For a full fanout-4 tree: nodes = 4·internal + 1.
	if tree.Size() != 4*internal+1 {
		t.Fatalf("size %d, internal %d: not a full quadtree", tree.Size(), internal)
	}
	if tree.Height() < 1 {
		t.Fatal("height 0 on 5000 points")
	}
}
