package experiments

import (
	"fmt"
	"time"

	"privtree/internal/em"
	"privtree/internal/markov"
	"privtree/internal/ngram"
	"privtree/internal/sequence"
	"privtree/internal/synth"
)

// topKMaxLen bounds the string length enumerated in the frequent-string
// task; substring counts are monotone under extension, so the true top-k
// for the evaluated k always consist of short strings.
const topKMaxLen = 5

// seqEnv bundles a generated sequence dataset with its truncation and the
// exact answers.
type seqEnv struct {
	name  string
	lTop  int
	data  *sequence.Dataset // original
	trunc *sequence.Dataset // truncated at lTop
}

func (c Config) newSeqEnv(spec synth.SequenceSpec) *seqEnv {
	rng := c.rng(hashName(spec.Name))
	data := synth.SequenceByName(spec.Name, c.scaledN(spec.N), rng)
	trunc, _ := data.Truncate(spec.LTop)
	return &seqEnv{name: spec.Name, lTop: spec.LTop, data: data, trunc: trunc}
}

// Table3 prints the sequence dataset characteristics at the configured
// scale, including the truncation statistics of the paper's Table 3.
func Table3(cfg Config) {
	cfg = cfg.normalize()
	fmt.Fprintf(cfg.Out, "\n== Table 3: sequence datasets (scale %.3g) ==\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-8s %5s %10s %10s %6s %12s\n", "name", "|I|", "n", "avg len", "l⊤", "# truncated")
	for _, spec := range synth.SequenceSpecs() {
		env := cfg.newSeqEnv(spec)
		_, truncated := env.data.Truncate(spec.LTop)
		fmt.Fprintf(cfg.Out, "%-8s %5d %10d %10.2f %6d %12d\n",
			spec.Name, spec.AlphabetSize, env.data.N(), env.data.AvgLen(), spec.LTop, truncated)
	}
}

// Fig6 reproduces Figure 6: top-k frequent-string precision for
// k ∈ {50, 100, 200} on both sequence datasets, comparing Truncate (the
// non-private upper reference), PrivTree, N-gram, and EM.
func Fig6(cfg Config) []Result {
	cfg = cfg.normalize()
	var results []Result
	ks := []int{50, 100, 200}
	maxK := ks[len(ks)-1]
	for _, spec := range synth.SequenceSpecs() {
		env := cfg.newSeqEnv(spec)
		// Ground truth is mined from the ORIGINAL data; Truncate answers
		// from the truncated data without privacy. Models are built once
		// per (ε, rep), mined at the largest k, and every smaller k is
		// scored from the prefix of the same ranked answer list.
		exactAll := sequence.TopK(env.data, maxK, topKMaxLen)
		truncAll := sequence.TopK(env.trunc, maxK, topKMaxLen)

		panels := make([]Result, len(ks))
		series := make([][]Series, len(ks)) // [k][method]
		for ki, k := range ks {
			panels[ki] = Result{
				Title:    fmt.Sprintf("Fig6 %s - top%d (precision)", spec.Name, k),
				Epsilons: cfg.Epsilons,
			}
			series[ki] = []Series{
				{Label: "Truncate", Values: map[float64]float64{}},
				{Label: "PrivTree", Values: map[float64]float64{}},
				{Label: "N-gram", Values: map[float64]float64{}},
				{Label: "EM", Values: map[float64]float64{}},
			}
		}
		precisionAt := func(k int, answer []sequence.StringCount) float64 {
			if len(answer) > k {
				answer = answer[:k]
			}
			return sequence.Precision(exactAll[:k], answer, k)
		}
		for _, eps := range cfg.Epsilons {
			sums := make([][]float64, len(ks)) // [k][method 1..3]
			for ki := range ks {
				sums[ki] = make([]float64, 3)
			}
			for rep := 0; rep < cfg.Reps; rep++ {
				salt := uint64(rep+1)*53 ^ uint64(eps*1e6)

				model, err := markov.Build(env.trunc, markov.Config{
					Epsilon: eps, LTop: spec.LTop,
				}, cfg.rng(salt^1))
				if err != nil {
					panic(err)
				}
				privAns := model.TopK(maxK, topKMaxLen)

				ngm := ngram.Build(env.trunc, ngram.Config{
					Epsilon: eps, H: 5, LTop: spec.LTop,
				}, cfg.rng(salt^2))
				ngAns := ngm.TopK(maxK, topKMaxLen)

				for ki, k := range ks {
					sums[ki][0] += precisionAt(k, privAns)
					sums[ki][1] += precisionAt(k, ngAns)
					// EM is interactive — its per-selection budget is
					// ε/k — so it must be re-run for every k.
					emAns := em.TopK(env.trunc, k, spec.LTop, eps, cfg.rng(salt^uint64(4+ki)))
					sums[ki][2] += precisionAt(k, emAns)
				}
			}
			for ki, k := range ks {
				series[ki][0].Values[eps] = precisionAt(k, truncAll)
				series[ki][1].Values[eps] = sums[ki][0] / float64(cfg.Reps)
				series[ki][2].Values[eps] = sums[ki][1] / float64(cfg.Reps)
				series[ki][3].Values[eps] = sums[ki][2] / float64(cfg.Reps)
			}
		}
		for ki := range ks {
			panels[ki].Series = series[ki]
			panels[ki].Print(cfg.Out)
			results = append(results, panels[ki])
		}
	}
	return results
}

// Fig7 reproduces Figure 7: total variation distance between the original
// and synthetic sequence-length distributions, for Truncate, PrivTree and
// N-gram.
func Fig7(cfg Config) []Result {
	cfg = cfg.normalize()
	var results []Result
	for _, spec := range synth.SequenceSpecs() {
		env := cfg.newSeqEnv(spec)
		maxLen := spec.LTop + 5
		origDist := env.data.LengthDistribution(maxLen)
		truncTV := sequence.TotalVariation(origDist, env.trunc.LengthDistribution(maxLen))
		genN := env.data.N()

		res := Result{
			Title:    fmt.Sprintf("Fig7 %s - sequence length TV distance", spec.Name),
			Epsilons: cfg.Epsilons,
		}
		trunc := Series{Label: "Truncate", Values: map[float64]float64{}}
		priv := Series{Label: "PrivTree", Values: map[float64]float64{}}
		ng := Series{Label: "N-gram", Values: map[float64]float64{}}
		for _, eps := range cfg.Epsilons {
			trunc.Values[eps] = truncTV
			var tvPriv, tvNg []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				salt := uint64(rep+1)*59 ^ uint64(eps*1e6)

				model, err := markov.Build(env.trunc, markov.Config{
					Epsilon: eps, LTop: spec.LTop,
				}, cfg.rng(salt^4))
				if err != nil {
					panic(err)
				}
				synthetic := model.Generate(genN, spec.LTop, cfg.rng(salt^5))
				tvPriv = append(tvPriv, sequence.TotalVariation(origDist, synthetic.LengthDistribution(maxLen)))

				ngm := ngram.Build(env.trunc, ngram.Config{Epsilon: eps, H: 5, LTop: spec.LTop}, cfg.rng(salt^6))
				ngSynth := ngm.Generate(genN, spec.LTop, cfg.rng(salt^7))
				tvNg = append(tvNg, sequence.TotalVariation(origDist, ngSynth.LengthDistribution(maxLen)))
			}
			priv.Values[eps] = mean(tvPriv)
			ng.Values[eps] = mean(tvNg)
		}
		res.Series = []Series{trunc, priv, ng}
		res.Print(cfg.Out)
		results = append(results, res)
	}
	return results
}

// Fig12 reproduces Figure 12: N-gram's top-k precision as its height h
// varies over {3..7}.
func Fig12(cfg Config) []Result {
	cfg = cfg.normalize()
	var results []Result
	heights := []int{3, 4, 5, 6, 7}
	for _, spec := range synth.SequenceSpecs() {
		env := cfg.newSeqEnv(spec)
		for _, k := range []int{50, 100, 200} {
			exact := sequence.TopK(env.data, k, topKMaxLen)
			res := Result{
				Title:    fmt.Sprintf("Fig12 %s - top%d: N-gram height (precision)", spec.Name, k),
				Epsilons: cfg.Epsilons,
			}
			for _, h := range heights {
				s := Series{Label: fmt.Sprintf("h=%d", h), Values: map[float64]float64{}}
				for _, eps := range cfg.Epsilons {
					var ps []float64
					for rep := 0; rep < cfg.Reps; rep++ {
						salt := uint64(h*1000+k) ^ uint64(rep+1)*61 ^ uint64(eps*1e6)
						ngm := ngram.Build(env.trunc, ngram.Config{Epsilon: eps, H: h, LTop: spec.LTop}, cfg.rng(salt))
						ps = append(ps, sequence.Precision(exact, ngm.TopK(k, topKMaxLen), k))
					}
					s.Values[eps] = mean(ps)
				}
				res.Series = append(res.Series, s)
			}
			res.Print(cfg.Out)
			results = append(results, res)
		}
	}
	return results
}

// Table4Sequence reproduces the sequence rows of Table 4: PrivTree (PST
// variant) build time per dataset × ε.
func Table4Sequence(cfg Config) Result {
	cfg = cfg.normalize()
	res := Result{
		Title:    fmt.Sprintf("Table 4 (sequence rows): PrivTree PST build time in seconds at scale %.3g", cfg.Scale),
		Epsilons: cfg.Epsilons,
	}
	for _, spec := range synth.SequenceSpecs() {
		env := cfg.newSeqEnv(spec)
		s := Series{Label: spec.Name, Values: map[float64]float64{}}
		for _, eps := range cfg.Epsilons {
			var total time.Duration
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := cfg.rng(uint64(rep+1)*67 ^ uint64(eps*1e6))
				start := time.Now()
				if _, err := markov.Build(env.trunc, markov.Config{Epsilon: eps, LTop: spec.LTop}, rng); err != nil {
					panic(err)
				}
				total += time.Since(start)
			}
			s.Values[eps] = total.Seconds() / float64(cfg.Reps)
		}
		res.Series = append(res.Series, s)
	}
	res.Print(cfg.Out)
	return res
}
