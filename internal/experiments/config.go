// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section 6 and Appendix C), plus the ablations called
// out in DESIGN.md. Each runner prints the same rows/series the paper
// reports, using the synthetic stand-in datasets from internal/synth.
package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"

	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/synth"
	"privtree/internal/workload"
)

// PaperEpsilons is the privacy-budget sweep used throughout Section 6.
var PaperEpsilons = []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.6}

// Config controls the scale/fidelity trade-off of every runner.
type Config struct {
	// Out receives the printed tables; defaults to io.Discard when nil.
	Out io.Writer
	// Seed makes every run reproducible.
	Seed uint64
	// Scale multiplies the paper's dataset cardinalities (1.0 = full
	// size). The default 0.1 keeps a full Figure 5 sweep within minutes.
	Scale float64
	// Reps is the number of repetitions averaged per configuration (the
	// paper uses 100).
	Reps int
	// Queries is the per-class query-set size (the paper uses 10,000).
	Queries int
	// Epsilons overrides the ε sweep; nil means PaperEpsilons.
	Epsilons []float64
}

// normalize fills defaults.
func (c Config) normalize() Config {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Seed == 0 {
		c.Seed = 20160115 // the paper's arXiv date
	}
	if c.Scale == 0 {
		c.Scale = 0.1
	}
	if c.Reps == 0 {
		c.Reps = 5
	}
	if c.Queries == 0 {
		c.Queries = 400
	}
	if c.Epsilons == nil {
		c.Epsilons = PaperEpsilons
	}
	return c
}

// scaledN applies the config scale to a paper cardinality with a floor so
// tiny scales still exercise the algorithms.
func (c Config) scaledN(paperN int) int {
	n := int(float64(paperN) * c.Scale)
	if n < 2000 {
		n = 2000
	}
	return n
}

// rng derives a deterministic generator for a named sub-experiment.
func (c Config) rng(salt uint64) *rand.Rand {
	return dp.NewRand(c.Seed ^ salt*0x9e3779b97f4a7c15)
}

// spatialEnv bundles a generated dataset with its exact-count oracle and
// the three query-set evaluators.
type spatialEnv struct {
	name  string
	data  *dataset.Spatial
	index *dataset.GridIndex
	evals map[workload.SizeClass]*workload.Evaluator
}

// newSpatialEnv generates the named dataset at config scale and
// precomputes evaluators for all three size classes.
func (c Config) newSpatialEnv(name string, paperN int) *spatialEnv {
	rng := c.rng(hashName(name))
	data := synth.SpatialByName(name, c.scaledN(paperN), rng)
	res := 256
	if data.Dims() == 4 {
		res = 20
	}
	idx := dataset.NewGridIndex(data, res)
	env := &spatialEnv{name: name, data: data, index: idx,
		evals: make(map[workload.SizeClass]*workload.Evaluator)}
	for _, class := range []workload.SizeClass{workload.Small, workload.Medium, workload.Large} {
		qs := workload.Queries(data.Domain, class, c.Queries, rng)
		env.evals[class] = workload.NewEvaluator(idx, qs)
	}
	return env
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Series is one printed curve: a metric per ε.
type Series struct {
	Label  string
	Values map[float64]float64 // ε → metric
}

// Result is one printed figure/table panel.
type Result struct {
	Title    string
	Epsilons []float64
	Series   []Series
}

// Print renders the panel as a fixed-width text table.
func (r Result) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", r.Title)
	fmt.Fprintf(w, "%-22s", "method \\ ε")
	for _, e := range r.Epsilons {
		fmt.Fprintf(w, "%12.3g", e)
	}
	fmt.Fprintln(w)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%-22s", s.Label)
		for _, e := range r.Epsilons {
			if v, ok := s.Values[e]; ok {
				fmt.Fprintf(w, "%12.4g", v)
			} else {
				fmt.Fprintf(w, "%12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// BestPerEpsilon returns, for each ε, the label of the series with the
// smallest metric (used by tests asserting "who wins").
func (r Result) BestPerEpsilon() map[float64]string {
	best := make(map[float64]string)
	for _, e := range r.Epsilons {
		bestV := 0.0
		first := true
		for _, s := range r.Series {
			v, ok := s.Values[e]
			if !ok {
				continue
			}
			if first || v < bestV {
				bestV, best[e], first = v, s.Label, false
			}
		}
	}
	return best
}

// SeriesByLabel returns the named series, or nil.
func (r Result) SeriesByLabel(label string) *Series {
	for i := range r.Series {
		if r.Series[i].Label == label {
			return &r.Series[i]
		}
	}
	return nil
}

// mean returns the arithmetic mean.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// sortedKeys returns a map's float keys in increasing order.
func sortedKeys(m map[float64]float64) []float64 {
	out := make([]float64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Float64s(out)
	return out
}
