package experiments

import (
	"fmt"

	"privtree/internal/baseline"
	"privtree/internal/core"
	"privtree/internal/geom"
	"privtree/internal/synth"
	"privtree/internal/workload"
)

// AblBias contrasts PrivTree against SimpleTree (Algorithm 1) at matched
// total budget across a sweep of SimpleTree heights — the paper's central
// claim is that no height works well, while PrivTree needs none.
func AblBias(cfg Config, datasetName string) Result {
	cfg = cfg.normalize()
	env := cfg.spatialEnvByName(datasetName)
	d := env.data.Dims()
	split := geom.FullBisect{Dim: d}
	res := Result{
		Title:    fmt.Sprintf("abl-bias %s - medium queries: PrivTree vs SimpleTree(h)", datasetName),
		Epsilons: cfg.Epsilons,
	}
	pt := Series{Label: "PrivTree", Values: map[float64]float64{}}
	for _, eps := range cfg.Epsilons {
		var errs []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			t, err := core.BuildNoisy(env.data, split, eps, split.Fanout(), cfg.rng(uint64(rep+1)*73^uint64(eps*1e6)))
			if err != nil {
				panic(err)
			}
			errs = append(errs, env.evals[workload.Medium].AvgRelativeError(t))
		}
		pt.Values[eps] = mean(errs)
	}
	res.Series = append(res.Series, pt)
	for _, h := range []int{4, 8, 12, 16} {
		s := Series{Label: fmt.Sprintf("SimpleTree h=%d", h), Values: map[float64]float64{}}
		for _, eps := range cfg.Epsilons {
			var errs []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				st := baseline.NewSimpleTree(env.data, split, eps, 0, h, cfg.rng(uint64(h)^uint64(rep+1)*79^uint64(eps*1e6)))
				errs = append(errs, env.evals[workload.Medium].AvgRelativeError(st))
			}
			s.Values[eps] = mean(errs)
		}
		res.Series = append(res.Series, s)
	}
	res.Print(cfg.Out)
	return res
}

// AblSplit sweeps the tree/count budget split ratio around the paper's
// ε/2–ε/2 choice.
func AblSplit(cfg Config, datasetName string) Result {
	cfg = cfg.normalize()
	env := cfg.spatialEnvByName(datasetName)
	d := env.data.Dims()
	split := geom.FullBisect{Dim: d}
	res := Result{
		Title:    fmt.Sprintf("abl-split %s - medium queries: tree-budget fraction", datasetName),
		Epsilons: cfg.Epsilons,
	}
	for _, frac := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
		s := Series{Label: fmt.Sprintf("treeFrac=%.2f", frac), Values: map[float64]float64{}}
		for _, eps := range cfg.Epsilons {
			var errs []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				t, err := core.BuildNoisySplit(env.data, split, eps, frac, split.Fanout(),
					cfg.rng(uint64(frac*100)^uint64(rep+1)*83^uint64(eps*1e6)))
				if err != nil {
					panic(err)
				}
				errs = append(errs, env.evals[workload.Medium].AvgRelativeError(t))
			}
			s.Values[eps] = mean(errs)
		}
		res.Series = append(res.Series, s)
	}
	res.Print(cfg.Out)
	return res
}

// AblTheta sweeps the split threshold θ around the paper's default 0.
func AblTheta(cfg Config, datasetName string) Result {
	cfg = cfg.normalize()
	env := cfg.spatialEnvByName(datasetName)
	d := env.data.Dims()
	split := geom.FullBisect{Dim: d}
	res := Result{
		Title:    fmt.Sprintf("abl-theta %s - medium queries: split threshold", datasetName),
		Epsilons: cfg.Epsilons,
	}
	// Negative θ is excluded: with θ < 0 every node's exact count exceeds
	// the threshold (counts are non-negative), so the noise-free tree T*
	// is unbounded and Lemma 3.2's E[|T|] ≤ 2·|T*| guarantees nothing —
	// empirically the build exhausts memory. θ = 0 is the smallest safe
	// choice, which is precisely the paper's recommendation.
	for _, theta := range []float64{0, 50, 200, 1000, 5000} {
		s := Series{Label: fmt.Sprintf("θ=%g", theta), Values: map[float64]float64{}}
		for _, eps := range cfg.Epsilons {
			var errs []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := cfg.rng(uint64(int64(theta)+2000)*89 ^ uint64(rep+1)*97 ^ uint64(eps*1e6))
				p := core.Params{Epsilon: eps / 2, Fanout: split.Fanout(), Theta: theta}
				t, err := core.BuildNoisyParams(env.data, split, p, eps/2, rng)
				if err != nil {
					panic(err)
				}
				errs = append(errs, env.evals[workload.Medium].AvgRelativeError(t))
			}
			s.Values[eps] = mean(errs)
		}
		res.Series = append(res.Series, s)
	}
	res.Print(cfg.Out)
	return res
}

// AblDepth reports how deep PrivTree actually recurses at the paper's
// parameterizations, confirming the engineering MaxDepth cap never binds.
func AblDepth(cfg Config) {
	cfg = cfg.normalize()
	fmt.Fprintf(cfg.Out, "\n== abl-depth: realized PrivTree heights (cap=%d) ==\n", core.DefaultMaxDepth)
	fmt.Fprintf(cfg.Out, "%-10s %8s %8s\n", "dataset", "ε", "height")
	for _, spec := range synth.SpatialSpecs() {
		data := synth.SpatialByName(spec.Name, cfg.scaledN(spec.N), cfg.rng(hashName(spec.Name)))
		d := data.Dims()
		split := geom.FullBisect{Dim: d}
		for _, eps := range cfg.Epsilons {
			p := core.Params{Epsilon: eps / 2, Fanout: split.Fanout()}
			t, err := core.Build(data, split, p, cfg.rng(uint64(eps*1e6)))
			if err != nil {
				panic(err)
			}
			fmt.Fprintf(cfg.Out, "%-10s %8.3g %8d\n", spec.Name, eps, t.Height())
		}
	}
}

// AblKD compares the private k-d tree (Xiao et al.) against UG, AG and
// PrivTree — the related-work claim that k-d trees are inferior to the
// grid methods ([41], quoted in Section 7).
func AblKD(cfg Config, datasetName string) Result {
	cfg = cfg.normalize()
	env := cfg.spatialEnvByName(datasetName)
	d := env.data.Dims()
	split := geom.FullBisect{Dim: d}
	res := Result{
		Title:    fmt.Sprintf("abl-kd %s - medium queries: k-d tree vs grids vs PrivTree", datasetName),
		Epsilons: cfg.Epsilons,
	}
	type m struct {
		label string
		build func(eps float64, salt uint64) workload.Method
	}
	methods := []m{
		{"PrivTree", func(eps float64, salt uint64) workload.Method {
			t, err := core.BuildNoisy(env.data, split, eps, split.Fanout(), cfg.rng(salt))
			if err != nil {
				panic(err)
			}
			return t
		}},
		{"UG", func(eps float64, salt uint64) workload.Method {
			return baseline.NewUG(env.data, eps, cfg.rng(salt))
		}},
		{"KD-tree", func(eps float64, salt uint64) workload.Method {
			return baseline.NewKDTree(env.data, eps, cfg.rng(salt))
		}},
	}
	if d == 2 {
		methods = append(methods, m{"AG", func(eps float64, salt uint64) workload.Method {
			return baseline.NewAG(env.data, eps, cfg.rng(salt))
		}})
	}
	for _, method := range methods {
		s := Series{Label: method.label, Values: map[float64]float64{}}
		for _, eps := range cfg.Epsilons {
			var errs []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				mm := method.build(eps, hashName(method.label)^uint64(rep+1)*101^uint64(eps*1e6))
				errs = append(errs, env.evals[workload.Medium].AvgRelativeError(mm))
			}
			s.Values[eps] = mean(errs)
		}
		res.Series = append(res.Series, s)
	}
	res.Print(cfg.Out)
	return res
}

// AblConsistency quantifies how much Hay et al.'s constrained inference
// improves Hierarchy — one of the Section 3.1 heuristics — and whether it
// closes the gap to PrivTree (the paper's answer: no).
func AblConsistency(cfg Config, datasetName string) Result {
	cfg = cfg.normalize()
	env := cfg.spatialEnvByName(datasetName)
	if env.data.Dims() != 2 {
		panic("experiments: abl-consist needs a 2-D dataset")
	}
	split := geom.FullBisect{Dim: 2}
	res := Result{
		Title:    fmt.Sprintf("abl-consist %s - medium queries: Hierarchy ± constrained inference", datasetName),
		Epsilons: cfg.Epsilons,
	}
	type m struct {
		label string
		build func(eps float64, salt uint64) workload.Method
	}
	for _, method := range []m{
		{"Hierarchy", func(eps float64, salt uint64) workload.Method {
			return baseline.NewHierarchyH(env.data, eps, 3, cfg.rng(salt))
		}},
		{"Hierarchy+consist", func(eps float64, salt uint64) workload.Method {
			return baseline.NewHierarchyConsistent(env.data, eps, 3, cfg.rng(salt))
		}},
		{"PrivTree", func(eps float64, salt uint64) workload.Method {
			t, err := core.BuildNoisy(env.data, split, eps, split.Fanout(), cfg.rng(salt))
			if err != nil {
				panic(err)
			}
			return t
		}},
	} {
		s := Series{Label: method.label, Values: map[float64]float64{}}
		for _, eps := range cfg.Epsilons {
			var errs []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				mm := method.build(eps, hashName(method.label)^uint64(rep+1)*103^uint64(eps*1e6))
				errs = append(errs, env.evals[workload.Medium].AvgRelativeError(mm))
			}
			s.Values[eps] = mean(errs)
		}
		res.Series = append(res.Series, s)
	}
	res.Print(cfg.Out)
	return res
}

// spatialEnvByName builds the evaluation environment for a named dataset.
func (c Config) spatialEnvByName(name string) *spatialEnv {
	for _, spec := range synth.SpatialSpecs() {
		if spec.Name == name {
			return c.newSpatialEnv(spec.Name, spec.N)
		}
	}
	panic("experiments: unknown dataset " + name)
}
