package experiments

import (
	"fmt"
	"time"

	"privtree/internal/baseline"
	"privtree/internal/core"
	"privtree/internal/dataset"
	"privtree/internal/geom"
	"privtree/internal/synth"
	"privtree/internal/workload"
)

// spatialMethod names one range-count method and how to build it.
type spatialMethod struct {
	name  string
	dims  []int // dimensionalities the method supports; nil = all
	build func(c Config, data *dataset.Spatial, eps float64, salt uint64) workload.Method
}

func privTreeSplitter(d int) geom.Splitter { return geom.FullBisect{Dim: d} }

// spatialMethods returns the Figure 5 lineup.
func spatialMethods() []spatialMethod {
	return []spatialMethod{
		{name: "PrivTree", build: func(c Config, data *dataset.Spatial, eps float64, salt uint64) workload.Method {
			d := data.Dims()
			t, err := core.BuildNoisy(data, privTreeSplitter(d), eps, 1<<d, c.rng(salt))
			if err != nil {
				panic(err)
			}
			return t
		}},
		{name: "UG", build: func(c Config, data *dataset.Spatial, eps float64, salt uint64) workload.Method {
			return baseline.NewUG(data, eps, c.rng(salt))
		}},
		{name: "AG", dims: []int{2}, build: func(c Config, data *dataset.Spatial, eps float64, salt uint64) workload.Method {
			return baseline.NewAG(data, eps, c.rng(salt))
		}},
		{name: "Hierarchy", dims: []int{2}, build: func(c Config, data *dataset.Spatial, eps float64, salt uint64) workload.Method {
			return baseline.NewHierarchy(data, eps, c.rng(salt))
		}},
		{name: "Privelet*", build: func(c Config, data *dataset.Spatial, eps float64, salt uint64) workload.Method {
			return baseline.NewPrivelet(data, eps, c.rng(salt))
		}},
		{name: "DAWA", build: func(c Config, data *dataset.Spatial, eps float64, salt uint64) workload.Method {
			return baseline.NewDAWA(data, eps, c.rng(salt))
		}},
	}
}

func supportsDim(m spatialMethod, d int) bool {
	if m.dims == nil {
		return true
	}
	for _, x := range m.dims {
		if x == d {
			return true
		}
	}
	return false
}

// Fig5 reproduces Figure 5: average relative error of range-count queries
// per dataset × size class × ε for all six methods. It returns one Result
// per (dataset, class) panel, in the paper's panel order.
func Fig5(cfg Config) []Result {
	cfg = cfg.normalize()
	var results []Result
	classes := []workload.SizeClass{workload.Small, workload.Medium, workload.Large}
	for _, spec := range synth.SpatialSpecs() {
		env := cfg.newSpatialEnv(spec.Name, spec.N)
		// One panel per size class; each synopsis is built once per
		// (method, ε, rep) and evaluated on all three query sets.
		panels := make([]Result, len(classes))
		for ci, class := range classes {
			panels[ci] = Result{
				Title:    fmt.Sprintf("Fig5 %s - %s queries (avg relative error)", spec.Name, class),
				Epsilons: cfg.Epsilons,
			}
		}
		for _, m := range spatialMethods() {
			if !supportsDim(m, env.data.Dims()) {
				continue
			}
			series := make([]Series, len(classes))
			for ci := range classes {
				series[ci] = Series{Label: m.name, Values: map[float64]float64{}}
			}
			for _, eps := range cfg.Epsilons {
				sums := make([]float64, len(classes))
				for rep := 0; rep < cfg.Reps; rep++ {
					salt := hashName(m.name) ^ uint64(rep+1)*7919 ^ uint64(eps*1e6)
					method := m.build(cfg, env.data, eps, salt)
					for ci, class := range classes {
						sums[ci] += env.evals[class].AvgRelativeError(method)
					}
				}
				for ci := range classes {
					series[ci].Values[eps] = sums[ci] / float64(cfg.Reps)
				}
			}
			for ci := range classes {
				panels[ci].Series = append(panels[ci].Series, series[ci])
			}
		}
		for _, res := range panels {
			res.Print(cfg.Out)
			results = append(results, res)
		}
	}
	return results
}

// Table2 prints the spatial dataset characteristics at the configured
// scale alongside the paper's full-size cardinalities.
func Table2(cfg Config) {
	cfg = cfg.normalize()
	fmt.Fprintf(cfg.Out, "\n== Table 2: spatial datasets (scale %.3g) ==\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-10s %5s %12s %12s\n", "name", "d", "paper n", "generated n")
	for _, spec := range synth.SpatialSpecs() {
		data := synth.SpatialByName(spec.Name, cfg.scaledN(spec.N), cfg.rng(hashName(spec.Name)))
		fmt.Fprintf(cfg.Out, "%-10s %5d %12d %12d\n", spec.Name, spec.Dim, spec.N, data.N())
	}
}

// Fig8 reproduces Figure 8: PrivTree's error under fanouts 2^d, 2^{d/2}
// and (for 4-D) 2^{d/4}, per dataset × size class.
func Fig8(cfg Config) []Result {
	cfg = cfg.normalize()
	var results []Result
	for _, spec := range synth.SpatialSpecs() {
		env := cfg.newSpatialEnv(spec.Name, spec.N)
		d := env.data.Dims()
		type variant struct {
			label string
			split geom.Splitter
		}
		variants := []variant{{fmt.Sprintf("β=2^%d (full)", d), geom.FullBisect{Dim: d}}}
		if d >= 2 {
			variants = append(variants, variant{fmt.Sprintf("β=2^%d (rr)", d/2), geom.RoundRobinBisect{Dim: d, PerStep: d / 2}})
		}
		if d >= 4 {
			variants = append(variants, variant{fmt.Sprintf("β=2^%d (rr)", d/4), geom.RoundRobinBisect{Dim: d, PerStep: d / 4}})
		}
		for _, class := range []workload.SizeClass{workload.Small, workload.Medium, workload.Large} {
			res := Result{
				Title:    fmt.Sprintf("Fig8 %s - %s queries: impact of fanout", spec.Name, class),
				Epsilons: cfg.Epsilons,
			}
			for _, v := range variants {
				s := Series{Label: v.label, Values: map[float64]float64{}}
				for _, eps := range cfg.Epsilons {
					errs := make([]float64, 0, cfg.Reps)
					for rep := 0; rep < cfg.Reps; rep++ {
						rng := cfg.rng(hashName(v.label) ^ uint64(rep+1)*104729 ^ uint64(eps*1e6))
						t, err := core.BuildNoisy(env.data, v.split, eps, v.split.Fanout(), rng)
						if err != nil {
							panic(err)
						}
						errs = append(errs, env.evals[class].AvgRelativeError(t))
					}
					s.Values[eps] = mean(errs)
				}
				res.Series = append(res.Series, s)
			}
			res.Print(cfg.Out)
			results = append(results, res)
		}
	}
	return results
}

// fig9n10Scales is the r sweep of Figures 9 and 10.
var fig9n10Scales = []float64{1.0 / 9, 1.0 / 3, 1, 3, 9}

// Fig9 reproduces Figure 9: UG's error when its cell count is scaled by r.
func Fig9(cfg Config) []Result {
	cfg = cfg.normalize()
	var results []Result
	for _, spec := range synth.SpatialSpecs() {
		env := cfg.newSpatialEnv(spec.Name, spec.N)
		for _, class := range []workload.SizeClass{workload.Small, workload.Medium, workload.Large} {
			res := Result{
				Title:    fmt.Sprintf("Fig9 %s - %s queries: UG grid scale", spec.Name, class),
				Epsilons: cfg.Epsilons,
			}
			for _, r := range fig9n10Scales {
				s := Series{Label: fmt.Sprintf("r=%.3g", r), Values: map[float64]float64{}}
				for _, eps := range cfg.Epsilons {
					errs := make([]float64, 0, cfg.Reps)
					for rep := 0; rep < cfg.Reps; rep++ {
						rng := cfg.rng(uint64(r*1e4) ^ uint64(rep+1)*31 ^ uint64(eps*1e6))
						ug := baseline.NewUGScaled(env.data, eps, r, rng)
						errs = append(errs, env.evals[class].AvgRelativeError(ug))
					}
					s.Values[eps] = mean(errs)
				}
				res.Series = append(res.Series, s)
			}
			res.Print(cfg.Out)
			results = append(results, res)
		}
	}
	return results
}

// Fig10 reproduces Figure 10: AG's error under grid scaling (2-D datasets
// only, as in the paper).
func Fig10(cfg Config) []Result {
	cfg = cfg.normalize()
	var results []Result
	for _, spec := range synth.SpatialSpecs() {
		if spec.Dim != 2 {
			continue
		}
		env := cfg.newSpatialEnv(spec.Name, spec.N)
		for _, class := range []workload.SizeClass{workload.Small, workload.Medium, workload.Large} {
			res := Result{
				Title:    fmt.Sprintf("Fig10 %s - %s queries: AG grid scale", spec.Name, class),
				Epsilons: cfg.Epsilons,
			}
			for _, r := range fig9n10Scales {
				s := Series{Label: fmt.Sprintf("r=%.3g", r), Values: map[float64]float64{}}
				for _, eps := range cfg.Epsilons {
					errs := make([]float64, 0, cfg.Reps)
					for rep := 0; rep < cfg.Reps; rep++ {
						rng := cfg.rng(uint64(r*1e4) ^ uint64(rep+1)*37 ^ uint64(eps*1e6))
						ag := baseline.NewAGScaled(env.data, eps, r, rng)
						errs = append(errs, env.evals[class].AvgRelativeError(ag))
					}
					s.Values[eps] = mean(errs)
				}
				res.Series = append(res.Series, s)
			}
			res.Print(cfg.Out)
			results = append(results, res)
		}
	}
	return results
}

// Fig11 reproduces Figure 11: Hierarchy's error for h ∈ {3..8} (2-D).
func Fig11(cfg Config) []Result {
	cfg = cfg.normalize()
	var results []Result
	heights := []int{3, 4, 5, 6, 7, 8}
	for _, spec := range synth.SpatialSpecs() {
		if spec.Dim != 2 {
			continue
		}
		env := cfg.newSpatialEnv(spec.Name, spec.N)
		for _, class := range []workload.SizeClass{workload.Small, workload.Medium, workload.Large} {
			res := Result{
				Title:    fmt.Sprintf("Fig11 %s - %s queries: Hierarchy height", spec.Name, class),
				Epsilons: cfg.Epsilons,
			}
			for _, h := range heights {
				s := Series{Label: fmt.Sprintf("h=%d", h), Values: map[float64]float64{}}
				for _, eps := range cfg.Epsilons {
					errs := make([]float64, 0, cfg.Reps)
					for rep := 0; rep < cfg.Reps; rep++ {
						rng := cfg.rng(uint64(h) ^ uint64(rep+1)*41 ^ uint64(eps*1e6))
						hier := baseline.NewHierarchyH(env.data, eps, h, rng)
						errs = append(errs, env.evals[class].AvgRelativeError(hier))
					}
					s.Values[eps] = mean(errs)
				}
				res.Series = append(res.Series, s)
			}
			res.Print(cfg.Out)
			results = append(results, res)
		}
	}
	return results
}

// Table4Spatial reproduces the spatial rows of Table 4: PrivTree's running
// time (seconds) per dataset × ε, averaged over reps.
func Table4Spatial(cfg Config) Result {
	cfg = cfg.normalize()
	res := Result{
		Title:    fmt.Sprintf("Table 4 (spatial rows): PrivTree build time in seconds at scale %.3g", cfg.Scale),
		Epsilons: cfg.Epsilons,
	}
	for _, spec := range synth.SpatialSpecs() {
		data := synth.SpatialByName(spec.Name, cfg.scaledN(spec.N), cfg.rng(hashName(spec.Name)))
		d := data.Dims()
		s := Series{Label: spec.Name, Values: map[float64]float64{}}
		for _, eps := range cfg.Epsilons {
			var total time.Duration
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := cfg.rng(uint64(rep+1)*43 ^ uint64(eps*1e6))
				start := time.Now()
				if _, err := core.BuildNoisy(data, privTreeSplitter(d), eps, 1<<d, rng); err != nil {
					panic(err)
				}
				total += time.Since(start)
			}
			s.Values[eps] = total.Seconds() / float64(cfg.Reps)
		}
		res.Series = append(res.Series, s)
	}
	res.Print(cfg.Out)
	return res
}
