package experiments

import (
	"bytes"
	"strings"
	"testing"

	"privtree/internal/workload"
)

// tinyConfig keeps experiment-level tests fast; the assertions target the
// SHAPE of the results (who wins, what trends hold), not absolute values.
func tinyConfig() Config {
	return Config{
		Scale:    0.05,
		Reps:     2,
		Queries:  120,
		Epsilons: []float64{0.1, 1.6},
	}
}

func TestFig2RhoBelowUpperBound(t *testing.T) {
	xs, rho, rhoUpper := Fig2(Config{})
	if len(xs) == 0 {
		t.Fatal("no curve produced")
	}
	for i := range xs {
		if rho[i] > rhoUpper[i]+1e-9 {
			t.Fatalf("ρ(%v)=%v above ρ⊤=%v", xs[i], rho[i], rhoUpper[i])
		}
	}
	// Left of θ+1 the two curves coincide at 1/λ.
	if rho[0] != rhoUpper[0] {
		t.Fatal("curves should coincide below θ+1")
	}
	// Far right, ρ has decayed by orders of magnitude.
	if rho[len(rho)-1] > rho[0]/100 {
		t.Fatalf("ρ did not decay: %v vs %v", rho[len(rho)-1], rho[0])
	}
}

func TestTable2Prints(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig()
	cfg.Out = &buf
	Table2(cfg)
	out := buf.String()
	for _, name := range []string{"road", "gowalla", "nyc", "beijing"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 2 output missing %s:\n%s", name, out)
		}
	}
}

func TestFig5ShapePrivTreeWinsOnRoad(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig5 sweep in -short mode")
	}
	cfg := tinyConfig()
	results := Fig5(cfg)
	if len(results) != 12 {
		t.Fatalf("expected 12 panels, got %d", len(results))
	}
	// On the highly skewed road data, PrivTree must beat UG, Hierarchy
	// and Privelet* at every ε; DAWA may come close (the paper's story).
	for _, res := range results[:3] {
		pt := res.SeriesByLabel("PrivTree")
		for _, eps := range res.Epsilons {
			for _, rival := range []string{"UG", "Hierarchy", "Privelet*"} {
				rv := res.SeriesByLabel(rival)
				if rv == nil {
					continue
				}
				if pt.Values[eps] >= rv.Values[eps] {
					t.Errorf("%s ε=%v: PrivTree %v not below %s %v",
						res.Title, eps, pt.Values[eps], rival, rv.Values[eps])
				}
			}
		}
	}
	// Errors must fall as ε grows for PrivTree on every panel.
	for _, res := range results {
		pt := res.SeriesByLabel("PrivTree")
		if pt.Values[1.6] >= pt.Values[0.1] {
			t.Errorf("%s: PrivTree error did not fall with ε (%v → %v)",
				res.Title, pt.Values[0.1], pt.Values[1.6])
		}
	}
}

func TestFig8FullBisectBestOverall(t *testing.T) {
	if testing.Short() {
		t.Skip("fanout sweep in -short mode")
	}
	cfg := tinyConfig()
	cfg.Reps = 3
	cfg.Epsilons = []float64{0.8}
	results := Fig8(cfg)
	// The paper's conclusion is that β=2^d is the preferable choice
	// OVERALL (β=2^{d/2} occasionally wins individual panels on the 4-D
	// datasets), so we compare the mean error across all panels.
	var fullSum, altSum float64
	var fullN, altN int
	for _, res := range results {
		for _, s := range res.Series {
			if strings.Contains(s.Label, "full") {
				fullSum += s.Values[0.8]
				fullN++
			} else {
				altSum += s.Values[0.8]
				altN++
			}
		}
	}
	if fullN == 0 || altN == 0 {
		t.Fatal("missing variants")
	}
	if fullSum/float64(fullN) >= altSum/float64(altN) {
		t.Fatalf("full bisection mean error %v not below round-robin mean %v",
			fullSum/float64(fullN), altSum/float64(altN))
	}
}

func TestFig9DefaultScaleCompetitive(t *testing.T) {
	if testing.Short() {
		t.Skip("UG scale sweep in -short mode")
	}
	cfg := tinyConfig()
	cfg.Epsilons = []float64{0.8}
	results := Fig9(cfg)
	// r=1 need not win every panel, but it must never be the worst — the
	// paper concludes the recommended granularity is near-optimal.
	for _, res := range results {
		base := res.SeriesByLabel("r=1").Values[0.8]
		worse := 0
		for _, s := range res.Series {
			if s.Values[0.8] > base {
				worse++
			}
		}
		if worse == 0 && len(res.Series) > 1 {
			// r=1 is the single worst choice on this panel.
			t.Errorf("%s: r=1 is the worst grid scale", res.Title)
		}
	}
}

func TestSVTViolationShape(t *testing.T) {
	rows := SVTViolation(Config{}, 0.5)
	if len(rows) < 3 {
		t.Fatal("too few rows")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].BinaryLoss <= rows[i-1].BinaryLoss {
			t.Fatal("binary SVT loss not increasing in k")
		}
		if rows[i].VanillaLoss <= rows[i-1].VanillaLoss {
			t.Fatal("vanilla SVT loss not increasing in k")
		}
	}
	last := rows[len(rows)-1]
	if last.BinaryLoss <= last.AllowedTwoEps {
		t.Fatal("binary SVT loss does not exceed its claimed bound")
	}
	if last.ImprovedLoss > last.AllowedTwoEps {
		t.Fatal("improved SVT violates its proven bound")
	}
}

func TestLemma32CheckHolds(t *testing.T) {
	cfg := tinyConfig()
	cfg.Reps = 10
	avgT, tStar := Lemma32Check(cfg, "gowalla", 1.0)
	if tStar <= 1 {
		t.Fatal("degenerate T*")
	}
	if avgT > 2.3*float64(tStar) {
		t.Fatalf("E[|T|]≈%v breaches 2·|T*|=%d beyond Monte-Carlo slack", avgT, 2*tStar)
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{
		Epsilons: []float64{0.1, 1.0},
		Series: []Series{
			{Label: "a", Values: map[float64]float64{0.1: 2, 1.0: 1}},
			{Label: "b", Values: map[float64]float64{0.1: 1, 1.0: 3}},
		},
	}
	best := r.BestPerEpsilon()
	if best[0.1] != "b" || best[1.0] != "a" {
		t.Fatalf("best = %v", best)
	}
	if r.SeriesByLabel("a") == nil || r.SeriesByLabel("zz") != nil {
		t.Fatal("SeriesByLabel broken")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "a") || !strings.Contains(buf.String(), "b") {
		t.Fatal("Print missing series")
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	c := Config{}.normalize()
	if c.Scale != 0.1 || c.Reps != 5 || c.Queries != 400 {
		t.Fatalf("defaults: %+v", c)
	}
	if len(c.Epsilons) != 6 {
		t.Fatalf("default ε sweep has %d points", len(c.Epsilons))
	}
	if c.scaledN(1000) != 2000 {
		t.Fatal("cardinality floor not applied")
	}
}

func TestSpatialEnvEvaluators(t *testing.T) {
	cfg := tinyConfig().normalize()
	env := cfg.newSpatialEnv("gowalla", 107091)
	for _, class := range []workload.SizeClass{workload.Small, workload.Medium, workload.Large} {
		ev := env.evals[class]
		if ev == nil || len(ev.Queries) != cfg.Queries {
			t.Fatalf("%v evaluator missing or wrong size", class)
		}
	}
}

func TestMeanAndSortedKeys(t *testing.T) {
	if mean(nil) != 0 {
		t.Fatal("mean(nil)")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	keys := sortedKeys(map[float64]float64{3: 0, 1: 0, 2: 0})
	if keys[0] != 1 || keys[2] != 3 {
		t.Fatalf("sortedKeys = %v", keys)
	}
}

func TestFig6ShapePrivTreeBeatsEM(t *testing.T) {
	if testing.Short() {
		t.Skip("sequence experiment in -short mode")
	}
	cfg := tinyConfig()
	cfg.Epsilons = []float64{0.4}
	results := Fig6(cfg)
	if len(results) != 6 {
		t.Fatalf("expected 6 panels, got %d", len(results))
	}
	for _, res := range results {
		pt := res.SeriesByLabel("PrivTree")
		em := res.SeriesByLabel("EM")
		tr := res.SeriesByLabel("Truncate")
		if pt.Values[0.4] <= em.Values[0.4] {
			t.Errorf("%s: PrivTree %v not above EM %v", res.Title, pt.Values[0.4], em.Values[0.4])
		}
		if tr.Values[0.4] < 0.9 {
			t.Errorf("%s: Truncate precision %v below 0.9", res.Title, tr.Values[0.4])
		}
	}
}

func TestFig7ShapePrivTreeBeatsNGram(t *testing.T) {
	if testing.Short() {
		t.Skip("sequence experiment in -short mode")
	}
	cfg := tinyConfig()
	cfg.Epsilons = []float64{0.8}
	results := Fig7(cfg)
	if len(results) != 2 {
		t.Fatalf("expected 2 panels, got %d", len(results))
	}
	for _, res := range results {
		pt := res.SeriesByLabel("PrivTree")
		ng := res.SeriesByLabel("N-gram")
		if pt.Values[0.8] >= ng.Values[0.8] {
			t.Errorf("%s: PrivTree TV %v not below N-gram %v", res.Title, pt.Values[0.8], ng.Values[0.8])
		}
	}
}

func TestAblKDTreeTrailsGrids(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	cfg := tinyConfig()
	cfg.Epsilons = []float64{0.8}
	res := AblKD(cfg, "road")
	kd := res.SeriesByLabel("KD-tree")
	pt := res.SeriesByLabel("PrivTree")
	if kd.Values[0.8] <= pt.Values[0.8] {
		t.Errorf("k-d tree %v not worse than PrivTree %v", kd.Values[0.8], pt.Values[0.8])
	}
}

func TestAblBiasNoSimpleTreeHeightWorksEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	// The paper's dilemma is NOT that SimpleTree loses at every single ε
	// (a well-tuned h can statistically tie at one point); it is that no
	// height h works across the sweep. Assert that every height is
	// substantially worse than PrivTree at one of the endpoints.
	cfg := tinyConfig()
	// The dilemma needs enough data that the ideal tree outgrows any
	// fixed h: at n≈80k a lucky h=8 nearly suffices, at n≈200k none does.
	cfg.Scale = 0.12
	cfg.Epsilons = []float64{0.1, 1.6}
	res := AblBias(cfg, "road")
	pt := res.SeriesByLabel("PrivTree")
	for _, s := range res.Series {
		if s.Label == "PrivTree" {
			continue
		}
		badSomewhere := false
		for _, eps := range cfg.Epsilons {
			if s.Values[eps] > 1.3*pt.Values[eps] {
				badSomewhere = true
			}
		}
		if !badSomewhere {
			t.Errorf("%s matches PrivTree across the sweep (%v vs %v) — the height dilemma did not manifest",
				s.Label, s.Values, pt.Values)
		}
	}
}
