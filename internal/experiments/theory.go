package experiments

import (
	"fmt"

	"privtree/internal/core"
	"privtree/internal/geom"
	"privtree/internal/svt"
	"privtree/internal/synth"
)

// Fig2 reproduces Figure 2: the privacy-cost function ρ(x) and its upper
// bound ρ⊤(x) around the threshold, printed as two series over x. Returns
// (xs, rho, rhoUpper).
func Fig2(cfg Config) (xs, rho, rhoUpper []float64) {
	cfg = cfg.normalize()
	const theta, lambda = 10.0, 1.0
	fmt.Fprintf(cfg.Out, "\n== Fig2: ρ(x) vs ρ⊤(x)  (θ=%.3g, λ=%.3g) ==\n", theta, lambda)
	fmt.Fprintf(cfg.Out, "%10s %14s %14s\n", "x", "ρ(x)·λ", "ρ⊤(x)·λ")
	for x := theta - 5; x <= theta+12; x += 0.5 {
		r := core.Rho(x, theta, lambda)
		ru := core.RhoUpper(x, theta, lambda)
		xs = append(xs, x)
		rho = append(rho, r)
		rhoUpper = append(rhoUpper, ru)
		fmt.Fprintf(cfg.Out, "%10.2f %14.6g %14.6g\n", x, r*lambda, ru*lambda)
	}
	return xs, rho, rhoUpper
}

// SVTViolationRow is one line of the Lemma 5.1 / Claim 2 demonstration.
type SVTViolationRow struct {
	K             int
	BinaryLoss    float64 // realized loss of Algorithm 3
	VanillaLoss   float64 // realized loss of Algorithm 4 (t=1)
	ImprovedLoss  float64 // realized loss of Algorithm 6 on the same instance
	AllowedTwoEps float64 // 2ε, the bound an ε-DP algorithm must satisfy
}

// SVTViolation reproduces the negative results of Section 5 and Appendix A:
// at the claimed λ = 2/ε, the privacy loss of the binary and vanilla SVTs
// on the counterexample instances grows linearly with the number of
// queries k, while the improved SVT stays below its bound.
func SVTViolation(cfg Config, eps float64) []SVTViolationRow {
	cfg = cfg.normalize()
	lambda := 2 / eps
	fmt.Fprintf(cfg.Out, "\n== Lemma 5.1 / Claim 2: SVT privacy loss at claimed λ=2/ε (ε=%.3g) ==\n", eps)
	fmt.Fprintf(cfg.Out, "%6s %14s %14s %14s %10s\n", "k", "binary", "vanilla", "improved", "2ε bound")
	var rows []SVTViolationRow
	for _, k := range []int{2, 4, 8, 16, 32} {
		bLoss, _ := svt.BinaryCounterexample{K: k, Lambda: lambda}.Loss()
		vLoss, _ := svt.VanillaCounterexample{K: k, Lambda: lambda}.Loss()
		iLoss := svt.ImprovedCounterexampleLoss(k, lambda)
		row := SVTViolationRow{K: k, BinaryLoss: bLoss, VanillaLoss: vLoss, ImprovedLoss: iLoss, AllowedTwoEps: 2 * eps}
		rows = append(rows, row)
		fmt.Fprintf(cfg.Out, "%6d %14.4f %14.4f %14.4f %10.4f\n", k, bLoss, vLoss, iLoss, 2*eps)
	}
	return rows
}

// Lemma32Check empirically verifies Lemma 3.2 on a generated dataset:
// the average private tree size over reps stays within 2·|T*| (plus
// Monte-Carlo slack). Returns (avg |T|, |T*|).
func Lemma32Check(cfg Config, datasetName string, eps float64) (avgT float64, tStar int) {
	cfg = cfg.normalize()
	var paperN int
	for _, spec := range synth.SpatialSpecs() {
		if spec.Name == datasetName {
			paperN = spec.N
		}
	}
	data := synth.SpatialByName(datasetName, cfg.scaledN(paperN), cfg.rng(hashName(datasetName)))
	d := data.Dims()
	split := geom.FullBisect{Dim: d}
	// A positive θ makes the bound informative: at θ=0 the noise-free tree
	// T* splits every nonempty node to the depth cap and the factor-2
	// bound is trivially slack.
	const theta = 50.0
	exact := core.BuildExact(data, split, theta, 0)
	tStar = exact.Size()
	total := 0
	for rep := 0; rep < cfg.Reps; rep++ {
		p := core.Params{Epsilon: eps, Fanout: split.Fanout(), Theta: theta}
		t, err := core.Build(data, split, p, cfg.rng(uint64(rep+1)*71))
		if err != nil {
			panic(err)
		}
		total += t.Size()
	}
	avgT = float64(total) / float64(cfg.Reps)
	fmt.Fprintf(cfg.Out, "\n== Lemma 3.2 on %s (ε=%.3g): E[|T|]≈%.1f, 2·|T*|=%d ==\n",
		datasetName, eps, avgT, 2*tStar)
	return avgT, tStar
}
