package baseline

import (
	"math"
	"math/rand/v2"

	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// DAWA is a data-aware baseline in the spirit of Li et al. (PVLDB'14). The
// original has three stages: (1) private L1-optimal partitioning of the
// flattened domain into near-uniform buckets, (2) noisy bucket counts,
// (3) a workload-driven matrix-mechanism refinement. We implement stages 1
// and 2 faithfully — the cells are flattened along a locality-preserving
// Morton (Z-order) curve, the partition dynamic program restricts bucket
// widths to powers of two (the same restriction the original uses for
// efficiency). Stage 3 is omitted: it requires the query
// workload in advance and only improves DAWA, so our variant is a slightly
// conservative stand-in (noted in EXPERIMENTS.md).
//
// Budget split follows the original's default: 25% to partitioning, 75% to
// bucket counts.
type DAWA struct {
	grid *Grid
}

// DAWAGridRes returns the per-axis resolution of the discretized domain
// DAWA operates on. The paper discretizes to 2^20 cells; we default to
// 2^14 (128² for 2-D, 2^12 = 8⁴ for 4-D) so per-cell counts stay above the
// stage-1 noise floor at the evaluated ε — on a finer grid the partition
// sees pure noise and the data-awareness that defines DAWA is lost.
func DAWAGridRes(d int) int {
	if d <= 2 {
		return 1 << (14 / d)
	}
	return 1 << (12 / d)
}

// NewDAWA builds the synopsis under total budget eps.
func NewDAWA(data *dataset.Spatial, eps float64, rng *rand.Rand) *DAWA {
	d := data.Dims()
	m := DAWAGridRes(d)
	g := NewGrid(data.Domain, UniformRes(d, m))
	g.CountData(data)

	eps1 := 0.25 * eps
	eps2 := eps - eps1

	// Flatten the grid along a Morton curve so buckets are spatially
	// coherent blocks rather than raster rows.
	order := mortonOrder(d, m)
	flat := make([]float64, len(g.Cells))
	for pos, cell := range order {
		flat[pos] = g.Cells[cell]
	}

	// Stage 1: noisy counts at ε₁ drive the partition DP.
	scale1 := dp.LaplaceMechanism{Epsilon: eps1, Sensitivity: 1}.Scale()
	noisy := make([]float64, len(flat))
	for i, c := range flat {
		noisy[i] = c + dp.LapNoise(rng, scale1)
	}
	// The per-bucket penalty is calibrated at twice the stage-1 noise
	// scale: a pure-noise region has per-cell deviation ≈ scale1, so this
	// penalty makes the DP merge exactly the stretches whose structure is
	// below the noise floor while keeping genuine density changes split.
	bounds := dawaPartition(noisy, scale1, 2*scale1)

	// Stage 2: noisy bucket totals at ε₂, expanded uniformly over each
	// bucket's cells, written back through the Morton permutation.
	scale2 := dp.LaplaceMechanism{Epsilon: eps2, Sensitivity: 1}.Scale()
	for bi := 0; bi+1 < len(bounds); bi++ {
		lo, hi := bounds[bi], bounds[bi+1]
		total := 0.0
		for i := lo; i < hi; i++ {
			total += flat[i]
		}
		total += dp.LapNoise(rng, scale2)
		per := total / float64(hi-lo)
		for i := lo; i < hi; i++ {
			g.Cells[order[i]] = per
		}
	}
	g.prefix = nil
	return &DAWA{grid: g}
}

// mortonOrder returns, for a d-dimensional grid of power-of-two per-axis
// resolution m, the cell indices in Z-order: order[pos] = flat row-major
// cell index of the pos-th cell along the curve.
func mortonOrder(d, m int) []int {
	bits := 0
	for 1<<bits < m {
		bits++
	}
	total := 1
	for i := 0; i < d; i++ {
		total *= m
	}
	order := make([]int, total)
	co := make([]int, d)
	for pos := 0; pos < total; pos++ {
		// De-interleave pos into per-axis coordinates.
		for a := range co {
			co[a] = 0
		}
		for b := 0; b < bits; b++ {
			for a := 0; a < d; a++ {
				bit := (pos >> (b*d + a)) & 1
				co[a] |= bit << b
			}
		}
		flat := 0
		for a := 0; a < d; a++ {
			flat = flat*m + co[a]
		}
		order[pos] = flat
	}
	return order
}

// dawaPartition runs the partitioning DP over noisy cell values: the cost
// of a bucket is its L1 deviation from uniformity plus the per-bucket
// penalty; bucket widths are powers of two (plus any width-1 tail).
// Returns bucket boundary indices [0, …, n].
func dawaPartition(x []float64, noiseScale, perBucket float64) []int {
	n := len(x)
	prefix := make([]float64, n+1)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v
	}
	widths := []int{1}
	for w := 2; w <= n; w *= 2 {
		widths = append(widths, w)
	}
	const inf = math.MaxFloat64 / 4
	best := make([]float64, n+1)
	from := make([]int, n+1)
	for i := 1; i <= n; i++ {
		best[i] = inf
	}
	// dev(lo,hi): L1 deviation from the bucket mean on the NOISY values,
	// sampled for wide buckets (deviation is a smooth statistic; stride
	// sampling preserves the partition structure). No noise-bias
	// correction is applied: the noise contributes ≈ noiseScale per cell
	// to every candidate bucket, so it sums to the same total for every
	// partition of the array and cancels out of the comparison — exactly
	// the observation the original DAWA relies on.
	_ = noiseScale
	dev := func(lo, hi int) float64 {
		w := hi - lo
		if w == 1 {
			return 0
		}
		meanV := (prefix[hi] - prefix[lo]) / float64(w)
		stride := 1
		if w > 64 {
			stride = w / 64
		}
		sum := 0.0
		cnt := 0
		for i := lo; i < hi; i += stride {
			sum += math.Abs(x[i] - meanV)
			cnt++
		}
		return sum / float64(cnt) * float64(w)
	}
	for i := 1; i <= n; i++ {
		for _, w := range widths {
			if w > i {
				break
			}
			lo := i - w
			c := best[lo] + dev(lo, i) + perBucket
			if c < best[i] {
				best[i] = c
				from[i] = lo
			}
		}
	}
	var rev []int
	for i := n; i > 0; i = from[i] {
		rev = append(rev, i)
	}
	bounds := make([]int, 0, len(rev)+1)
	bounds = append(bounds, 0)
	for i := len(rev) - 1; i >= 0; i-- {
		bounds = append(bounds, rev[i])
	}
	return bounds
}

// RangeCount implements workload.Method.
func (d *DAWA) RangeCount(q geom.Rect) float64 { return d.grid.RangeCount(q) }

// Cells returns the synopsis size.
func (d *DAWA) Cells() int { return d.grid.TotalCells() }

// NewDAWADebug builds DAWA and returns the number of buckets chosen by the
// stage-1 partition (diagnostic helper used by tests).
func NewDAWADebug(data *dataset.Spatial, eps float64, rng *rand.Rand) int {
	d := data.Dims()
	m := DAWAGridRes(d)
	g := NewGrid(data.Domain, UniformRes(d, m))
	g.CountData(data)
	eps1 := 0.25 * eps
	order := mortonOrder(d, m)
	flat := make([]float64, len(g.Cells))
	for pos, cell := range order {
		flat[pos] = g.Cells[cell]
	}
	scale1 := dp.LaplaceMechanism{Epsilon: eps1, Sensitivity: 1}.Scale()
	noisy := make([]float64, len(flat))
	for i, c := range flat {
		noisy[i] = c + dp.LapNoise(rng, scale1)
	}
	bounds := dawaPartition(noisy, scale1, 2*scale1)
	return len(bounds) - 1
}
