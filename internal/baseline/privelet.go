package baseline

import (
	"math"
	"math/rand/v2"

	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// Privelet is the wavelet baseline (Xiao, Wang & Gehrke, TKDE'11, the
// Privelet* variant for multi-dimensional data): the domain is discretized
// into a 2^20-cell grid (1024² for d=2, 32⁴ for d=4, as in Section 6.1),
// the count grid is taken through a per-axis Haar transform, each wavelet
// coefficient receives Laplace noise inversely proportional to its support
// (generalized sensitivity ρ = Π(log₂ mᵢ + 1)), and the inverse transform
// yields the released synopsis.
type Privelet struct {
	grid *Grid
}

// PriveletGridRes returns the per-axis power-of-two resolution whose total
// cell count is 2^20 (or as close as d divides): 1024 for d=2, 32 for d=4.
func PriveletGridRes(d int) int {
	return 1 << (20 / d)
}

// NewPrivelet builds the Privelet* synopsis under budget eps.
func NewPrivelet(data *dataset.Spatial, eps float64, rng *rand.Rand) *Privelet {
	d := data.Dims()
	m := PriveletGridRes(d)
	g := NewGrid(data.Domain, UniformRes(d, m))
	g.CountData(data)

	// Forward Haar along every axis.
	for axis := 0; axis < d; axis++ {
		forEachLine(g, axis, haarForward)
	}

	// Generalized sensitivity ρ = Π(log₂ mᵢ + 1).
	rho := 1.0
	for axis := 0; axis < d; axis++ {
		rho *= math.Log2(float64(g.Res[axis])) + 1
	}

	// Per-coefficient noise Lap(ρ / (ε·W)) where W is the product of the
	// coefficient's per-axis supports.
	addCoefficientNoise(g, rho/eps, rng)

	// Inverse Haar restores (noisy) cell counts.
	for axis := d - 1; axis >= 0; axis-- {
		forEachLine(g, axis, haarInverse)
	}
	g.prefix = nil
	return &Privelet{grid: g}
}

// RangeCount implements workload.Method.
func (p *Privelet) RangeCount(q geom.Rect) float64 { return p.grid.RangeCount(q) }

// Cells returns the synopsis size.
func (p *Privelet) Cells() int { return p.grid.TotalCells() }

// haarForward applies the in-place averages Haar analysis: after it, a[0]
// is the overall average, and positions [2^t, 2^{t+1}) hold the detail
// coefficients of support n/2^t.
func haarForward(a []float64, tmp []float64) {
	for l := len(a); l > 1; l /= 2 {
		half := l / 2
		for i := 0; i < half; i++ {
			tmp[i] = (a[2*i] + a[2*i+1]) / 2
			tmp[half+i] = (a[2*i] - a[2*i+1]) / 2
		}
		copy(a[:l], tmp[:l])
	}
}

// haarInverse undoes haarForward.
func haarInverse(a []float64, tmp []float64) {
	for l := 2; l <= len(a); l *= 2 {
		half := l / 2
		for i := 0; i < half; i++ {
			tmp[2*i] = a[i] + a[half+i]
			tmp[2*i+1] = a[i] - a[half+i]
		}
		copy(a[:l], tmp[:l])
	}
}

// support returns the number of leaf cells under the coefficient at
// position p of an n-length transformed line.
func support(p, n int) int {
	if p <= 1 {
		return n
	}
	// p in [2^t, 2^{t+1}) has support n / 2^t.
	t := 0
	for q := p; q > 1; q >>= 1 {
		t++
	}
	return n >> t
}

// addCoefficientNoise perturbs every coefficient with Lap(base / W(c)),
// where W(c) is the product of per-axis supports.
func addCoefficientNoise(g *Grid, base float64, rng *rand.Rand) {
	d := len(g.Res)
	co := make([]int, d)
	for flat := range g.Cells {
		rem := flat
		w := 1.0
		for axis := d - 1; axis >= 0; axis-- {
			co[axis] = rem % g.Res[axis]
			rem /= g.Res[axis]
			w *= float64(support(co[axis], g.Res[axis]))
		}
		g.Cells[flat] += dp.LapNoise(rng, base/w)
	}
}

// forEachLine applies fn to every 1-D line of the grid along the given
// axis. Lines are gathered into a contiguous buffer, transformed, and
// scattered back, so fn can assume a plain slice.
func forEachLine(g *Grid, axis int, fn func(line, tmp []float64)) {
	d := len(g.Res)
	n := g.Res[axis]
	stride := 1
	for a := d - 1; a > axis; a-- {
		stride *= g.Res[a]
	}
	total := len(g.Cells)
	lineBuf := make([]float64, n)
	tmp := make([]float64, n)
	// Enumerate every flat index with coordinate 0 on `axis`: iterate over
	// all flat indices and keep those whose axis coordinate is 0.
	block := stride * n // size of one contiguous block spanned by the axis
	for base := 0; base < total; base += block {
		for off := 0; off < stride; off++ {
			start := base + off
			for i := 0; i < n; i++ {
				lineBuf[i] = g.Cells[start+i*stride]
			}
			fn(lineBuf, tmp)
			for i := 0; i < n; i++ {
				g.Cells[start+i*stride] = lineBuf[i]
			}
		}
	}
}
