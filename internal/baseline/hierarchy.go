package baseline

import (
	"math"
	"math/rand/v2"

	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// Hierarchy is the multi-level decomposition baseline of Qardaji et al.
// (PVLDB'13): a balanced tree of height h over a uniform leaf grid, with an
// independent noisy count released for every non-root node at per-level
// budget ε/(h−1). Queries are answered top-down: fully covered nodes
// contribute their noisy count, partially covered leaves contribute a
// uniform fraction.
//
// The heuristics in the original paper pick β=64 (8×8 per split) and h=3
// for 2-D data, i.e. a 64×64 leaf grid; NewHierarchy uses exactly that.
// For the height study (Figure 11) the leaf resolution is held near 64 per
// axis while the per-level branching adapts to the requested h — with a
// fixed branching of 8 the leaf level at h=8 would hold 8¹⁴ cells, which
// (as the paper itself notes for 4-D) cannot be materialized.
type Hierarchy struct {
	domain geom.Rect
	dims   int
	branch int // per-axis branching factor per level
	height int // number of levels including the root
	// counts[L] holds the noisy counts of level L (root = level 0, exact
	// sum of children is NOT enforced — counts are independent, as in the
	// original method). counts[0] is unused (the root releases nothing).
	counts [][]float64
}

// HierarchyDefaultHeight is the heuristic height for 2-D data.
const HierarchyDefaultHeight = 3

// NewHierarchy builds the baseline at the recommended 2-D setting
// (β=64, h=3).
func NewHierarchy(data *dataset.Spatial, eps float64, rng *rand.Rand) *Hierarchy {
	return NewHierarchyH(data, eps, HierarchyDefaultHeight, rng)
}

// NewHierarchyConsistent builds the default Hierarchy and then applies Hay
// et al.'s constrained inference so every parent equals the sum of its
// children (the heuristic improvement the paper's Section 3.1 cites).
func NewHierarchyConsistent(data *dataset.Spatial, eps float64, h int, rng *rand.Rand) *Hierarchy {
	hier := NewHierarchyH(data, eps, h, rng)
	enforceConsistency2D(hier.counts, hier.branch)
	return hier
}

// NewHierarchyH builds the baseline with height h ≥ 2. The per-axis
// branching is chosen so the leaf grid stays near 64 cells per axis:
// b = max(2, round(64^{1/(h−1)})).
func NewHierarchyH(data *dataset.Spatial, eps float64, h int, rng *rand.Rand) *Hierarchy {
	if data.Dims() != 2 {
		panic("baseline: Hierarchy is materialized for two-dimensional data only (4-D trees exceed memory, as in the paper)")
	}
	if h < 2 {
		panic("baseline: Hierarchy height must be >= 2")
	}
	branch := int(math.Round(math.Pow(64, 1/float64(h-1))))
	if branch < 2 {
		branch = 2
	}
	hier := &Hierarchy{
		domain: data.Domain,
		dims:   2,
		branch: branch,
		height: h,
		counts: make([][]float64, h),
	}
	// Exact leaf counts, then aggregate upward, then perturb every level.
	leafRes := hier.resAt(h - 1)
	exact := make([][]float64, h)
	leafGrid := NewGrid(data.Domain, UniformRes(2, leafRes))
	leafGrid.CountData(data)
	exact[h-1] = leafGrid.Cells
	for level := h - 2; level >= 0; level-- {
		res := hier.resAt(level)
		cur := make([]float64, res*res)
		childRes := hier.resAt(level + 1)
		for ci := range exact[level+1] {
			row := ci / childRes
			col := ci % childRes
			cur[(row/branch)*res+(col/branch)] += exact[level+1][ci]
		}
		exact[level] = cur
	}
	scale := dp.LaplaceMechanism{Epsilon: eps / float64(h-1), Sensitivity: 1}.Scale()
	for level := 1; level < h; level++ {
		noisy := make([]float64, len(exact[level]))
		for i, c := range exact[level] {
			noisy[i] = c + dp.LapNoise(rng, scale)
		}
		hier.counts[level] = noisy
	}
	return hier
}

// resAt returns the per-axis resolution of level L (root = 1 cell).
func (h *Hierarchy) resAt(level int) int {
	res := 1
	for i := 0; i < level; i++ {
		res *= h.branch
	}
	return res
}

// cellRect returns the region of cell (row, col) at the given level.
func (h *Hierarchy) cellRect(level, row, col int) geom.Rect {
	res := h.resAt(level)
	w0 := h.domain.Side(0) / float64(res)
	w1 := h.domain.Side(1) / float64(res)
	lo := geom.Point{h.domain.Lo[0] + float64(row)*w0, h.domain.Lo[1] + float64(col)*w1}
	hi := geom.Point{lo[0] + w0, lo[1] + w1}
	if row == res-1 {
		hi[0] = h.domain.Hi[0]
	}
	if col == res-1 {
		hi[1] = h.domain.Hi[1]
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// RangeCount implements workload.Method.
func (h *Hierarchy) RangeCount(q geom.Rect) float64 {
	var visit func(level, row, col int) float64
	visit = func(level, row, col int) float64 {
		rect := h.cellRect(level, row, col)
		inter, ok := rect.Intersect(q)
		if !ok {
			return 0
		}
		if level > 0 && q.ContainsRect(rect) {
			return h.counts[level][row*h.resAt(level)+col]
		}
		if level == h.height-1 {
			return h.counts[level][row*h.resAt(level)+col] * rect.OverlapFraction(inter)
		}
		sum := 0.0
		for dr := 0; dr < h.branch; dr++ {
			for dc := 0; dc < h.branch; dc++ {
				sum += visit(level+1, row*h.branch+dr, col*h.branch+dc)
			}
		}
		return sum
	}
	return visit(0, 0, 0)
}

// Branch returns the per-axis branching factor chosen for this tree.
func (h *Hierarchy) Branch() int { return h.branch }

// LeafRes returns the per-axis leaf resolution.
func (h *Hierarchy) LeafRes() int { return h.resAt(h.height - 1) }
