package baseline

import (
	"math"
	"math/rand/v2"

	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// UG is the uniform-grid method (Qardaji et al. / Su et al.): partition the
// domain into m^d equal cells with m = (nε/10)^{2/(d+2)} per axis, and
// release a noisy count per cell with Laplace scale 1/ε (each point lies in
// exactly one cell, so the vector of counts has sensitivity 1).
type UG struct {
	grid *Grid
}

// UGGranularity returns the per-axis cell count m = ⌈(nε/10)^{2/(d+2)}⌉,
// the setting recommended in the literature the paper cites ([48]).
func UGGranularity(n int, eps float64, d int) int {
	m := int(math.Ceil(math.Pow(float64(n)*eps/10, 2/float64(d+2))))
	if m < 1 {
		m = 1
	}
	return m
}

// NewUG builds the UG synopsis at the recommended granularity.
func NewUG(data *dataset.Spatial, eps float64, rng *rand.Rand) *UG {
	return NewUGScaled(data, eps, 1, rng)
}

// NewUGScaled builds UG with the total cell count scaled by r (Figure 9's
// sensitivity study: the per-axis resolution becomes ⌈r^(1/d)·m⌉).
func NewUGScaled(data *dataset.Spatial, eps, r float64, rng *rand.Rand) *UG {
	d := data.Dims()
	m := UGGranularity(data.N(), eps, d)
	m = scaleRes(m, r, d)
	g := NewGrid(data.Domain, UniformRes(d, m))
	g.CountData(data)
	g.AddLaplace(rng, dp.LaplaceMechanism{Epsilon: eps, Sensitivity: 1}.Scale())
	return &UG{grid: g}
}

// RangeCount implements workload.Method.
func (u *UG) RangeCount(q geom.Rect) float64 { return u.grid.RangeCount(q) }

// Cells returns the synopsis size, for diagnostics.
func (u *UG) Cells() int { return u.grid.TotalCells() }
