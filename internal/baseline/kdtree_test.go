package baseline

import (
	"math"
	"testing"

	"privtree/internal/dp"
	"privtree/internal/geom"
	"privtree/internal/synth"
)

func TestKDTreeBuildsAndAnswers(t *testing.T) {
	data := synth.GowallaLike(40000, dp.NewRand(1))
	kd := NewKDTree(data, 1.0, dp.NewRand(2))
	if kd.Size() < 10 {
		t.Fatalf("k-d tree suspiciously small: %d nodes", kd.Size())
	}
	got := kd.RangeCount(data.Domain)
	if math.Abs(got-40000) > 3000 {
		t.Fatalf("full-domain count %v far from 40000", got)
	}
}

func TestKDTreeInternalCountsAreChildSums(t *testing.T) {
	data := synth.GowallaLike(10000, dp.NewRand(3))
	kd := NewKDTreeH(data, 1.0, 6, dp.NewRand(4))
	var walk func(n *kdNode)
	walk = func(n *kdNode) {
		if len(n.children) == 0 {
			return
		}
		sum := n.children[0].count + n.children[1].count
		if math.Abs(sum-n.count) > 1e-6 {
			t.Fatalf("internal count %v != child sum %v", n.count, sum)
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(kd.root)
}

func TestKDTreeHalfSpaceQuery(t *testing.T) {
	data := uniformData(50000, 2, 5)
	kd := NewKDTree(data, 1.0, dp.NewRand(6))
	q := geom.NewRect(geom.Point{0, 0}, geom.Point{0.5, 1})
	got := kd.RangeCount(q)
	if math.Abs(got-25000)/25000 > 0.1 {
		t.Fatalf("half-space estimate %v", got)
	}
}

func TestKDTreePanicsOnBadHeight(t *testing.T) {
	data := uniformData(100, 2, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("h=1 did not panic")
		}
	}()
	NewKDTreeH(data, 1.0, 1, dp.NewRand(8))
}

func TestPrivateMedianNearTrueMedian(t *testing.T) {
	data := uniformData(20000, 2, 9)
	view := data.NewView()
	// Huge budget: selection should be essentially exact.
	split := privateMedian(view, data.Domain, 0, 100, dp.NewRand(10))
	if math.Abs(split-0.5) > 0.05 {
		t.Fatalf("private median %v far from 0.5 on uniform data", split)
	}
}

func TestKDTreeAdaptsSplitsToSkew(t *testing.T) {
	// With mass concentrated on the left, early vertical splits should
	// land left of center.
	data := skewedData(30000, 11)
	kd := NewKDTreeH(data, 4.0, 4, dp.NewRand(12))
	root := kd.root
	if len(root.children) == 0 {
		t.Fatal("root not split")
	}
	splitX := root.children[0].region.Hi[0]
	// The dense blob sits at x=0.25; the median must be pulled below 0.5.
	if splitX >= 0.5 {
		t.Fatalf("root split at %v; expected < 0.5 toward the dense blob", splitX)
	}
}

func TestHierarchyConsistentParentEqualsChildren(t *testing.T) {
	data := synth.GowallaLike(30000, dp.NewRand(13))
	h := NewHierarchyConsistent(data, 1.0, 3, dp.NewRand(14))
	// After constrained inference, each level must sum to the same total.
	var prev float64
	for li := 1; li < h.height; li++ {
		total := 0.0
		for _, c := range h.counts[li] {
			total += c
		}
		if li > 1 && math.Abs(total-prev) > 1e-6 {
			t.Fatalf("level %d total %v != level %d total %v", li, total, li-1, prev)
		}
		prev = total
	}
	// Spot-check one parent against its children block.
	branch := h.branch
	res1 := h.resAt(1)
	res2 := h.resAt(2)
	parent := h.counts[1][0]
	childSum := 0.0
	for dr := 0; dr < branch; dr++ {
		for dc := 0; dc < branch; dc++ {
			childSum += h.counts[2][dr*res2+dc]
		}
	}
	_ = res1
	if math.Abs(parent-childSum) > 1e-6 {
		t.Fatalf("parent %v != children %v after consistency", parent, childSum)
	}
}

func TestConsistencyImprovesOrMatchesAccuracy(t *testing.T) {
	// Averaged over seeds, constrained inference must not hurt large-query
	// accuracy (it is the minimum-variance estimator).
	data := synth.GowallaLike(50000, dp.NewRand(15))
	q := geom.NewRect(geom.Point{0.1, 0.1}, geom.Point{0.7, 0.7})
	exact := 0.0
	for _, p := range data.Points {
		if q.Contains(p) {
			exact++
		}
	}
	var rawErr, conErr float64
	const reps = 20
	for r := uint64(0); r < reps; r++ {
		raw := NewHierarchyH(data, 0.3, 3, dp.NewRand(100+r))
		con := NewHierarchyConsistent(data, 0.3, 3, dp.NewRand(100+r))
		rawErr += math.Abs(raw.RangeCount(q) - exact)
		conErr += math.Abs(con.RangeCount(q) - exact)
	}
	if conErr > rawErr*1.1 {
		t.Fatalf("consistency hurt accuracy: raw %v vs consistent %v", rawErr/reps, conErr/reps)
	}
}
