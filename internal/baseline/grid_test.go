package baseline

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"privtree/internal/dataset"
	"privtree/internal/geom"
)

func uniformData(n, d int, seed uint64) *dataset.Spatial {
	rng := rand.New(rand.NewPCG(seed, 17))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	ds, err := dataset.NewSpatial(geom.UnitCube(d), pts)
	if err != nil {
		panic(err)
	}
	return ds
}

func skewedData(n int, seed uint64) *dataset.Spatial {
	rng := rand.New(rand.NewPCG(seed, 19))
	pts := make([]geom.Point, n)
	for i := range pts {
		if i%5 == 0 {
			pts[i] = geom.Point{rng.Float64(), rng.Float64()}
		} else {
			x := 0.25 + 0.03*rng.NormFloat64()
			y := 0.75 + 0.03*rng.NormFloat64()
			pts[i] = geom.Point{clamp01(x), clamp01(y)}
		}
	}
	ds, err := dataset.NewSpatial(geom.UnitCube(2), pts)
	if err != nil {
		panic(err)
	}
	return ds
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return math.Nextafter(1, 0)
	}
	return x
}

func TestGridCountDataTotals(t *testing.T) {
	ds := uniformData(5000, 2, 1)
	g := NewGrid(ds.Domain, UniformRes(2, 10))
	g.CountData(ds)
	total := 0.0
	for _, c := range g.Cells {
		total += c
	}
	if total != 5000 {
		t.Fatalf("cell counts sum to %v, want 5000", total)
	}
}

func TestGridRangeCountExactOnAlignedQueries(t *testing.T) {
	ds := uniformData(4000, 2, 2)
	g := NewGrid(ds.Domain, UniformRes(2, 8))
	g.CountData(ds)
	// Cell-aligned query: the grid must answer exactly.
	q := geom.NewRect(geom.Point{0.25, 0.5}, geom.Point{0.75, 1})
	want := 0.0
	for _, p := range ds.Points {
		if q.Contains(p) {
			want++
		}
	}
	if got := g.RangeCount(q); math.Abs(got-want) > 1e-6 {
		t.Fatalf("aligned query: got %v, want %v", got, want)
	}
}

func TestGridRangeCountPartialCellUniformity(t *testing.T) {
	// One cell with 100 points; querying half the cell must yield 50.
	dom := geom.UnitCube(2)
	g := NewGrid(dom, UniformRes(2, 1))
	g.Cells[0] = 100
	q := geom.NewRect(geom.Point{0, 0}, geom.Point{0.5, 1})
	if got := g.RangeCount(q); math.Abs(got-50) > 1e-9 {
		t.Fatalf("half-cell query: got %v, want 50", got)
	}
	q2 := geom.NewRect(geom.Point{0.25, 0.25}, geom.Point{0.75, 0.75})
	if got := g.RangeCount(q2); math.Abs(got-25) > 1e-9 {
		t.Fatalf("quarter-cell query: got %v, want 25", got)
	}
}

func TestGridRangeCountMatchesDirectSum(t *testing.T) {
	// Property: prefix-sum answer equals the direct Σ count·fraction.
	ds := uniformData(2000, 2, 3)
	g := NewGrid(ds.Domain, UniformRes(2, 7))
	g.CountData(ds)
	direct := func(q geom.Rect) float64 {
		total := 0.0
		for i := range g.Cells {
			row := i / 7
			col := i % 7
			cell := geom.NewRect(
				geom.Point{float64(row) / 7, float64(col) / 7},
				geom.Point{float64(row+1) / 7, float64(col+1) / 7},
			)
			total += g.Cells[i] * cell.OverlapFraction(q)
		}
		return total
	}
	f := func(ax, ay, bx, by uint16) bool {
		x1 := float64(ax%1000) / 1000
		x2 := float64(bx%1000) / 1000
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		y1 := float64(ay%1000) / 1000
		y2 := float64(by%1000) / 1000
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		q := geom.NewRect(geom.Point{x1, y1}, geom.Point{x2, y2})
		got := g.RangeCount(q)
		want := direct(q)
		return math.Abs(got-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid4DRangeCount(t *testing.T) {
	ds := uniformData(3000, 4, 4)
	g := NewGrid(ds.Domain, UniformRes(4, 4))
	g.CountData(ds)
	if got := g.RangeCount(ds.Domain); math.Abs(got-3000) > 1e-6 {
		t.Fatalf("full-domain: %v", got)
	}
	q := geom.NewRect(geom.Point{0, 0, 0, 0}, geom.Point{0.5, 1, 1, 1})
	want := 0.0
	for _, p := range ds.Points {
		if q.Contains(p) {
			want++
		}
	}
	if got := g.RangeCount(q); math.Abs(got-want) > 1e-6 {
		t.Fatalf("aligned half-space: got %v, want %v", got, want)
	}
}

func TestUGGranularityFormula(t *testing.T) {
	// m = ⌈(nε/10)^{2/(d+2)}⌉.
	if got := UGGranularity(1000000, 1.0, 2); got != int(math.Ceil(math.Pow(100000, 0.5))) {
		t.Fatalf("2-D granularity = %d", got)
	}
	if got := UGGranularity(1000000, 1.0, 4); got != int(math.Ceil(math.Pow(100000, 1.0/3))) {
		t.Fatalf("4-D granularity = %d", got)
	}
	if got := UGGranularity(1, 0.001, 2); got < 1 {
		t.Fatalf("granularity must be >= 1, got %d", got)
	}
}

func TestUGUnbiasedOnUniformData(t *testing.T) {
	ds := uniformData(50000, 2, 5)
	var rng = rand.New(rand.NewPCG(6, 6))
	ug := NewUG(ds, 1.0, rng)
	q := geom.NewRect(geom.Point{0.1, 0.1}, geom.Point{0.6, 0.6})
	got := ug.RangeCount(q)
	want := 50000 * 0.25
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("UG estimate %v too far from %v", got, want)
	}
}

func TestUGScaledChangesCellCount(t *testing.T) {
	ds := uniformData(20000, 2, 7)
	rng := rand.New(rand.NewPCG(8, 8))
	small := NewUGScaled(ds, 1.0, 1.0/9, rng)
	big := NewUGScaled(ds, 1.0, 9, rng)
	if small.Cells() >= big.Cells() {
		t.Fatalf("r=1/9 cells %d !< r=9 cells %d", small.Cells(), big.Cells())
	}
}

func TestAGRefinesDenseCells(t *testing.T) {
	ds := skewedData(50000, 9)
	rng := rand.New(rand.NewPCG(10, 10))
	ag := NewAG(ds, 1.0, rng)
	// Sub-grid inside the dense blob must be finer than in empty space.
	denseIdx := -1
	for ci, sub := range ag.subgrids {
		r := agCellRect(ds.Domain, ag.m1, ci)
		if r.Contains(geom.Point{0.25, 0.75}) {
			denseIdx = ci
			_ = sub
		}
	}
	if denseIdx < 0 {
		t.Fatal("dense cell not found")
	}
	denseCells := ag.subgrids[denseIdx].TotalCells()
	// Compare against the average sub-grid.
	total := 0
	for _, sub := range ag.subgrids {
		total += sub.TotalCells()
	}
	avg := float64(total) / float64(len(ag.subgrids))
	if float64(denseCells) <= avg {
		t.Fatalf("dense cell grid %d not finer than average %.1f", denseCells, avg)
	}
}

func TestAGRangeCountReasonable(t *testing.T) {
	ds := skewedData(50000, 11)
	rng := rand.New(rand.NewPCG(12, 12))
	ag := NewAG(ds, 1.0, rng)
	q := geom.NewRect(geom.Point{0.15, 0.65}, geom.Point{0.35, 0.85})
	want := 0.0
	for _, p := range ds.Points {
		if q.Contains(p) {
			want++
		}
	}
	got := ag.RangeCount(q)
	if math.Abs(got-want)/want > 0.2 {
		t.Fatalf("AG estimate %v too far from exact %v", got, want)
	}
}

func TestAGPanicsOn4D(t *testing.T) {
	ds := uniformData(100, 4, 13)
	defer func() {
		if recover() == nil {
			t.Fatal("AG on 4-D data did not panic")
		}
	}()
	NewAG(ds, 1.0, rand.New(rand.NewPCG(1, 1)))
}

func TestHierarchyDefaultsMatchHeuristic(t *testing.T) {
	ds := uniformData(10000, 2, 14)
	rng := rand.New(rand.NewPCG(15, 15))
	h := NewHierarchy(ds, 1.0, rng)
	if h.Branch() != 8 {
		t.Fatalf("default branch = %d, want 8 (β=64)", h.Branch())
	}
	if h.LeafRes() != 64 {
		t.Fatalf("default leaf res = %d, want 64", h.LeafRes())
	}
}

func TestHierarchyRangeCountAccuracy(t *testing.T) {
	ds := uniformData(100000, 2, 16)
	rng := rand.New(rand.NewPCG(17, 17))
	h := NewHierarchy(ds, 1.0, rng)
	q := geom.NewRect(geom.Point{0, 0}, geom.Point{0.5, 0.5})
	got := h.RangeCount(q)
	want := 25000.0
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("Hierarchy estimate %v too far from %v", got, want)
	}
}

func TestHierarchyHeightsKeepLeafResNear64(t *testing.T) {
	ds := uniformData(5000, 2, 18)
	for _, h := range []int{3, 4, 5, 6, 7, 8} {
		rng := rand.New(rand.NewPCG(uint64(h), 19))
		hier := NewHierarchyH(ds, 1.0, h, rng)
		if hier.LeafRes() < 32 || hier.LeafRes() > 128 {
			t.Errorf("h=%d: leaf res %d outside [32,128]", h, hier.LeafRes())
		}
	}
}

func TestHierarchyPanics(t *testing.T) {
	ds := uniformData(100, 2, 20)
	rng := rand.New(rand.NewPCG(1, 1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("h=1 did not panic")
			}
		}()
		NewHierarchyH(ds, 1.0, 1, rng)
	}()
	ds4 := uniformData(100, 4, 21)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("4-D did not panic")
			}
		}()
		NewHierarchy(ds4, 1.0, rng)
	}()
}
