package baseline

import (
	"math"
	"math/rand/v2"

	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// AG is the adaptive-grid method of Qardaji et al. (ICDE'13), applicable to
// two-dimensional data only. It spends ε₁ = ε/2 on a coarse first-level
// grid, then refines each level-1 cell into a finer sub-grid whose
// granularity adapts to the cell's noisy count, spending ε₂ = ε/2 on the
// level-2 counts. Queries are answered from the level-2 cells.
type AG struct {
	domain geom.Rect
	m1     int
	// subgrids[i] is the refined grid inside level-1 cell i (row-major).
	subgrids []*Grid
}

// AGLevel1Granularity returns m1 = max(10, ⌈(1/4)·√(nε/10)⌉), the
// first-level granularity heuristic from the AG paper.
func AGLevel1Granularity(n int, eps float64) int {
	m1 := int(math.Ceil(math.Sqrt(float64(n)*eps/10) / 4))
	if m1 < 10 {
		m1 = 10
	}
	return m1
}

// NewAG builds the adaptive grid at the recommended granularities.
func NewAG(data *dataset.Spatial, eps float64, rng *rand.Rand) *AG {
	return NewAGScaled(data, eps, 1, rng)
}

// NewAGScaled builds AG with both level granularities scaled so the cell
// counts grow by factor r (Figure 10's sensitivity study).
func NewAGScaled(data *dataset.Spatial, eps, r float64, rng *rand.Rand) *AG {
	if data.Dims() != 2 {
		panic("baseline: AG is defined for two-dimensional data only")
	}
	eps1 := eps / 2
	eps2 := eps - eps1

	m1 := AGLevel1Granularity(data.N(), eps)
	m1 = scaleRes(m1, r, 2)

	// Level 1: coarse exact counts + Laplace(1/ε1).
	level1 := NewGrid(data.Domain, UniformRes(2, m1))
	level1.CountData(data)
	noisy1 := make([]float64, len(level1.Cells))
	scale1 := dp.LaplaceMechanism{Epsilon: eps1, Sensitivity: 1}.Scale()
	for i, c := range level1.Cells {
		noisy1[i] = c + dp.LapNoise(rng, scale1)
	}

	// Partition points among level-1 cells once.
	cellPoints := make([][]geom.Point, len(level1.Cells))
	for _, p := range data.Points {
		ci := level1.CellIndex(p)
		cellPoints[ci] = append(cellPoints[ci], p)
	}

	ag := &AG{domain: data.Domain, m1: m1, subgrids: make([]*Grid, len(level1.Cells))}
	scale2 := dp.LaplaceMechanism{Epsilon: eps2, Sensitivity: 1}.Scale()
	for ci := range level1.Cells {
		cellRect := agCellRect(data.Domain, m1, ci)
		// Adaptive refinement: m2 = ⌈√(max(0,ñ_c)·ε₂ / 5)⌉, clamped to ≥1.
		nc := noisy1[ci]
		if nc < 0 {
			nc = 0
		}
		m2 := int(math.Ceil(math.Sqrt(nc * eps2 / 5)))
		m2 = scaleRes(m2, r, 2)
		if m2 < 1 {
			m2 = 1
		}
		sub := NewGrid(cellRect, UniformRes(2, m2))
		for _, p := range cellPoints[ci] {
			sub.Cells[sub.CellIndex(p)]++
		}
		sub.AddLaplace(rng, scale2)
		ag.subgrids[ci] = sub
	}
	return ag
}

// agCellRect returns the rectangle of level-1 cell ci (row-major over m1²).
func agCellRect(domain geom.Rect, m1, ci int) geom.Rect {
	row := ci / m1
	col := ci % m1
	w0 := domain.Side(0) / float64(m1)
	w1 := domain.Side(1) / float64(m1)
	lo := geom.Point{domain.Lo[0] + float64(row)*w0, domain.Lo[1] + float64(col)*w1}
	hi := geom.Point{lo[0] + w0, lo[1] + w1}
	if row == m1-1 {
		hi[0] = domain.Hi[0]
	}
	if col == m1-1 {
		hi[1] = domain.Hi[1]
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// RangeCount implements workload.Method: it sums over the level-1 cells
// overlapping q, delegating to each cell's refined sub-grid.
func (a *AG) RangeCount(q geom.Rect) float64 {
	// Identify the level-1 cell range overlapping q.
	r0lo, r0hi := cellSpan(a.domain.Lo[0], a.domain.Hi[0], a.m1, q.Lo[0], q.Hi[0])
	r1lo, r1hi := cellSpan(a.domain.Lo[1], a.domain.Hi[1], a.m1, q.Lo[1], q.Hi[1])
	total := 0.0
	for row := r0lo; row <= r0hi; row++ {
		for col := r1lo; col <= r1hi; col++ {
			total += a.subgrids[row*a.m1+col].RangeCount(q)
		}
	}
	return total
}

// Cells returns the total number of level-2 cells, for diagnostics.
func (a *AG) Cells() int {
	total := 0
	for _, g := range a.subgrids {
		total += g.TotalCells()
	}
	return total
}

// cellSpan returns the inclusive range of cell indices on one axis whose
// cells overlap [qlo, qhi).
func cellSpan(dlo, dhi float64, m int, qlo, qhi float64) (int, int) {
	span := dhi - dlo
	lo := int((qlo - dlo) / span * float64(m))
	hi := int((qhi - dlo) / span * float64(m))
	if lo < 0 {
		lo = 0
	}
	if hi >= m {
		hi = m - 1
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}
