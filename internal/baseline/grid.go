// Package baseline implements the five comparison methods of Section 6.1 —
// UG, AG, Hierarchy, Privelet*, and DAWA — plus the paper's strawman
// SimpleTree (Algorithm 1). Every method answers range-count queries via
// the workload.Method interface so the experiment runners treat them and
// PrivTree uniformly.
package baseline

import (
	"math"
	"math/rand/v2"

	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// Grid is a d-dimensional histogram over a domain with per-axis resolution,
// holding (typically noisy) per-cell values and a prefix-sum array for O(2^d)
// range queries. Partial-cell coverage is handled by multilinear
// interpolation of the prefix sums, which is exactly the uniformity
// assumption applied at cell granularity.
type Grid struct {
	Domain geom.Rect
	Res    []int // cells per axis
	Cells  []float64
	prefix []float64 // (res[i]+1)-lattice prefix sums, built lazily
	stride []int     // strides for the prefix lattice
}

// NewGrid allocates a zeroed grid.
func NewGrid(domain geom.Rect, res []int) *Grid {
	if len(res) != domain.Dims() {
		panic("baseline: grid resolution dims mismatch")
	}
	total := 1
	for _, r := range res {
		if r < 1 {
			panic("baseline: grid resolution must be >= 1 per axis")
		}
		total *= r
	}
	return &Grid{Domain: domain, Res: append([]int(nil), res...), Cells: make([]float64, total)}
}

// UniformRes returns a d-length resolution slice of m cells per axis.
func UniformRes(d, m int) []int {
	res := make([]int, d)
	for i := range res {
		res[i] = m
	}
	return res
}

// CellIndex maps a point to its flattened cell index.
func (g *Grid) CellIndex(p geom.Point) int {
	idx := 0
	for axis, r := range g.Res {
		lo, hi := g.Domain.Lo[axis], g.Domain.Hi[axis]
		c := int((p[axis] - lo) / (hi - lo) * float64(r))
		if c < 0 {
			c = 0
		}
		if c >= r {
			c = r - 1
		}
		idx = idx*r + c
	}
	return idx
}

// CountData fills the grid's cells with the exact point counts of data.
func (g *Grid) CountData(data *dataset.Spatial) {
	for _, p := range data.Points {
		g.Cells[g.CellIndex(p)]++
	}
	g.prefix = nil
}

// AddLaplace perturbs every cell with Lap(scale) noise.
func (g *Grid) AddLaplace(rng *rand.Rand, scale float64) {
	for i := range g.Cells {
		g.Cells[i] += dp.LapNoise(rng, scale)
	}
	g.prefix = nil
}

// buildPrefix materializes the (r+1)^d prefix-sum lattice:
// prefix[i0,…,id] = Σ cells with index < i_k on every axis.
func (g *Grid) buildPrefix() {
	d := len(g.Res)
	g.stride = make([]int, d)
	total := 1
	for axis := d - 1; axis >= 0; axis-- {
		g.stride[axis] = total
		total *= g.Res[axis] + 1
	}
	g.prefix = make([]float64, total)

	// Scatter cell values into the lattice at (i+1) offsets…
	co := make([]int, d)
	for flat := range g.Cells {
		rem := flat
		for axis := d - 1; axis >= 0; axis-- {
			co[axis] = rem % g.Res[axis]
			rem /= g.Res[axis]
		}
		p := 0
		for axis := 0; axis < d; axis++ {
			p += (co[axis] + 1) * g.stride[axis]
		}
		g.prefix[p] = g.Cells[flat]
	}
	// …then accumulate along each axis in turn.
	for axis := 0; axis < d; axis++ {
		step := g.stride[axis]
		size := g.Res[axis] + 1
		outer := len(g.prefix) / (step * size)
		for o := 0; o < outer; o++ {
			for inner := 0; inner < step; inner++ {
				base := (o*size)*step + inner
				for i := 1; i < size; i++ {
					g.prefix[base+i*step] += g.prefix[base+(i-1)*step]
				}
			}
		}
	}
}

// prefixAt evaluates the prefix lattice at fractional per-axis cell
// coordinates by multilinear interpolation. This turns the piecewise
// constant cell density into a continuous cumulative function, so range
// sums with partial cells come out exactly as "count × covered fraction".
func (g *Grid) prefixAt(frac []float64) float64 {
	d := len(g.Res)
	base := make([]int, d)
	w := make([]float64, d)
	for axis := 0; axis < d; axis++ {
		f := frac[axis]
		if f < 0 {
			f = 0
		}
		if f > float64(g.Res[axis]) {
			f = float64(g.Res[axis])
		}
		i := int(f)
		if i >= g.Res[axis] {
			i = g.Res[axis] - 1
		}
		base[axis] = i
		w[axis] = f - float64(i)
	}
	sum := 0.0
	for corner := 0; corner < 1<<d; corner++ {
		weight := 1.0
		p := 0
		for axis := 0; axis < d; axis++ {
			if corner&(1<<axis) != 0 {
				weight *= w[axis]
				p += (base[axis] + 1) * g.stride[axis]
			} else {
				weight *= 1 - w[axis]
				p += base[axis] * g.stride[axis]
			}
		}
		if weight != 0 {
			sum += weight * g.prefix[p]
		}
	}
	return sum
}

// RangeCount returns the grid's estimate for the count inside q: the sum of
// cell values weighted by each cell's covered fraction.
func (g *Grid) RangeCount(q geom.Rect) float64 {
	if g.prefix == nil {
		g.buildPrefix()
	}
	d := len(g.Res)
	loF := make([]float64, d)
	hiF := make([]float64, d)
	for axis := 0; axis < d; axis++ {
		lo, hi := g.Domain.Lo[axis], g.Domain.Hi[axis]
		span := hi - lo
		loF[axis] = (q.Lo[axis] - lo) / span * float64(g.Res[axis])
		hiF[axis] = (q.Hi[axis] - lo) / span * float64(g.Res[axis])
		if hiF[axis] <= 0 || loF[axis] >= float64(g.Res[axis]) {
			return 0
		}
	}
	// Inclusion–exclusion over the 2^d query corners.
	total := 0.0
	frac := make([]float64, d)
	for corner := 0; corner < 1<<d; corner++ {
		sign := 1.0
		for axis := 0; axis < d; axis++ {
			if corner&(1<<axis) != 0 {
				frac[axis] = hiF[axis]
			} else {
				frac[axis] = loF[axis]
				sign = -sign
			}
		}
		total += sign * g.prefixAt(frac)
	}
	return total
}

// TotalCells returns the number of cells in the grid.
func (g *Grid) TotalCells() int { return len(g.Cells) }

// scaleRes applies the Figure 9/10 scale factor r to a per-axis resolution:
// the total cell count is multiplied by ~r, i.e. each axis by r^(1/d).
func scaleRes(m int, r float64, d int) int {
	scaled := int(math.Ceil(math.Pow(r, 1/float64(d)) * float64(m)))
	if scaled < 1 {
		scaled = 1
	}
	return scaled
}
