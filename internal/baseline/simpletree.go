package baseline

import (
	"math"
	"math/rand/v2"

	"privtree/internal/core"
	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// SimpleTree is Algorithm 1 of the paper: the classical private quadtree
// with a pre-defined height limit h. Every node's count is perturbed with
// Laplace scale λ = h/ε_tree (the sensitivity of all counts together is h,
// since an inserted point touches one node per level), and a node splits
// when its noisy count exceeds θ and the height limit permits.
//
// It exists as the ablation contrast for PrivTree: same pipeline, same
// budget split, but noise that grows with h instead of PrivTree's constant
// λ.
type SimpleTree struct {
	tree *core.Tree
}

// NewSimpleTree builds the full pipeline under total budget eps: tree
// construction with ε/2 (λ = h/(ε/2)), then leaf counts with ε/2, matching
// PrivTree's post-processing so the two methods differ only in the split
// mechanism. theta ≤ 0 selects the default θ = λ (a split threshold at the
// noise scale, the paper's cited heuristics use comparable settings).
func NewSimpleTree(data *dataset.Spatial, split geom.Splitter, eps, theta float64, h int, rng *rand.Rand) *SimpleTree {
	if h < 1 {
		panic("baseline: SimpleTree height must be >= 1")
	}
	epsTree := eps / 2
	epsCount := eps - epsTree
	lambda := float64(h) / epsTree
	if theta <= 0 {
		theta = lambda
	}

	root := &core.Node{Region: data.Domain.Clone(), Depth: 0, Count: math.NaN()}
	var grow func(n *core.Node, view *dataset.View)
	grow = func(n *core.Node, view *dataset.View) {
		noisy := float64(view.Len()) + dp.LapNoise(rng, lambda)
		if !(noisy > theta) || n.Depth >= h-1 {
			return
		}
		regions := split.Split(n.Region, n.Depth)
		views := view.Partition(regions)
		n.Children = make([]*core.Node, len(regions))
		for i, r := range regions {
			child := &core.Node{Region: r, Depth: n.Depth + 1, Count: math.NaN()}
			n.Children[i] = child
			grow(child, views[i])
		}
	}
	grow(root, data.NewView())

	t := &core.Tree{Root: root, Fanout: split.Fanout()}
	attachLeafCounts(t, data, epsCount, rng)
	return &SimpleTree{tree: t}
}

// attachLeafCounts mirrors PrivTree's post-processing: noisy leaf counts,
// internal nodes as sums.
func attachLeafCounts(t *core.Tree, data *dataset.Spatial, eps float64, rng *rand.Rand) {
	mech := dp.LaplaceMechanism{Epsilon: eps, Sensitivity: 1}
	var walk func(n *core.Node, v *dataset.View) float64
	walk = func(n *core.Node, v *dataset.View) float64 {
		if n.IsLeaf() {
			n.Count = mech.Release(rng, float64(v.Len()))
			return n.Count
		}
		regions := make([]geom.Rect, len(n.Children))
		for i, c := range n.Children {
			regions[i] = c.Region
		}
		views := v.Partition(regions)
		sum := 0.0
		for i, c := range n.Children {
			sum += walk(c, views[i])
		}
		n.Count = sum
		return sum
	}
	walk(t.Root, data.NewView())
	t.HasCounts = true
}

// RangeCount implements workload.Method.
func (s *SimpleTree) RangeCount(q geom.Rect) float64 { return s.tree.RangeCount(q) }

// Tree exposes the underlying decomposition for diagnostics.
func (s *SimpleTree) Tree() *core.Tree { return s.tree }
