package baseline

import (
	"math/rand/v2"

	"privtree/internal/core"
	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// SimpleTree is Algorithm 1 of the paper: the classical private quadtree
// with a pre-defined height limit h. Every node's count is perturbed with
// Laplace scale λ = h/ε_tree (the sensitivity of all counts together is h,
// since an inserted point touches one node per level), and a node splits
// when its noisy count exceeds θ and the height limit permits.
//
// It exists as the ablation contrast for PrivTree: same pipeline, same
// budget split, but noise that grows with h instead of PrivTree's constant
// λ.
type SimpleTree struct {
	tree *core.Tree
}

// NewSimpleTree builds the full pipeline under total budget eps: tree
// construction with ε/2 (λ = h/(ε/2)), then leaf counts with ε/2, matching
// PrivTree's post-processing so the two methods differ only in the split
// mechanism. theta ≤ 0 selects the default θ = λ (a split threshold at the
// noise scale, the paper's cited heuristics use comparable settings).
func NewSimpleTree(data *dataset.Spatial, split geom.Splitter, eps, theta float64, h int, rng *rand.Rand) *SimpleTree {
	if h < 1 {
		panic("baseline: SimpleTree height must be >= 1")
	}
	epsTree := eps / 2
	epsCount := eps - epsTree
	lambda := float64(h) / epsTree
	if theta <= 0 {
		theta = lambda
	}

	b := core.NewBuilder(split.Fanout(), 64)
	b.AddRoot(data.Domain)
	var grow func(idx int32, view dataset.View)
	grow = func(idx int32, view dataset.View) {
		n := b.Node(idx)
		noisy := float64(view.Len()) + dp.LapNoise(rng, lambda)
		if !(noisy > theta) || int(n.Depth) >= h-1 {
			return
		}
		regions := split.Split(n.Region, int(n.Depth))
		views := view.PartitionInto(regions, make([]dataset.View, len(regions)))
		first := b.AddChildren(idx, regions)
		for i := range regions {
			grow(first+int32(i), views[i])
		}
	}
	grow(0, *data.NewView())

	t := b.Build(false)
	attachLeafCounts(t, data, epsCount, rng)
	return &SimpleTree{tree: t}
}

// attachLeafCounts mirrors PrivTree's post-processing: noisy leaf counts,
// internal nodes as sums. Leaf views are recovered by re-partitioning the
// dataset down the released structure.
func attachLeafCounts(t *core.Tree, data *dataset.Spatial, eps float64, rng *rand.Rand) {
	mech := dp.LaplaceMechanism{Epsilon: eps, Sensitivity: 1}
	var walk func(n core.NodeRef, v dataset.View)
	walk = func(n core.NodeRef, v dataset.View) {
		if n.IsLeaf() {
			n.Node().Count = mech.Release(rng, float64(v.Len()))
			return
		}
		k := n.NumChildren()
		regions := make([]geom.Rect, k)
		for i := 0; i < k; i++ {
			regions[i] = n.Child(i).Region()
		}
		views := v.PartitionInto(regions, make([]dataset.View, k))
		for i := 0; i < k; i++ {
			walk(n.Child(i), views[i])
		}
	}
	walk(t.Root(), *data.NewView())
	t.SumInternalCounts()
	t.HasCounts = true
}

// RangeCount implements workload.Method.
func (s *SimpleTree) RangeCount(q geom.Rect) float64 { return s.tree.RangeCount(q) }

// Tree exposes the underlying decomposition for diagnostics.
func (s *SimpleTree) Tree() *core.Tree { return s.tree }
