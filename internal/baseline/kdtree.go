package baseline

import (
	"math"
	"math/rand/v2"
	"sort"

	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// KDTree is the private k-d tree of Xiao, Xiong & Yuan (SDM'10), included
// because the paper's related work cites it as an inferior alternative to
// the grid methods ("shown to be inferior to the UG and AG methods …, in
// terms of data utility [41]") — which the abl-kd experiment reproduces.
//
// Construction: split axes round-robin; each split point is a private
// median chosen by the exponential mechanism over candidate positions with
// quality −|rank(pos) − n/2| (sensitivity 1). Splitting stops at height h.
// Budget: ε/2 spread over the h−1 median levels, ε/2 on noisy leaf counts.
type KDTree struct {
	root *kdNode
}

type kdNode struct {
	region   geom.Rect
	count    float64 // noisy; leaves only carry noise, internal = sums
	children []*kdNode
}

// KDDefaultHeight follows the original's guidance of a modest fixed
// height.
const KDDefaultHeight = 10

// NewKDTree builds the private k-d tree with the default height.
func NewKDTree(data *dataset.Spatial, eps float64, rng *rand.Rand) *KDTree {
	return NewKDTreeH(data, eps, KDDefaultHeight, rng)
}

// NewKDTreeH builds the tree with height h ≥ 2.
func NewKDTreeH(data *dataset.Spatial, eps float64, h int, rng *rand.Rand) *KDTree {
	if h < 2 {
		panic("baseline: KDTree height must be >= 2")
	}
	epsSplit := eps / 2
	epsCount := eps - epsSplit
	// Each root-to-leaf path crosses h−1 median selections; sequential
	// composition along the path gives each selection ε/(2(h−1)).
	epsPerLevel := epsSplit / float64(h-1)
	mech := dp.LaplaceMechanism{Epsilon: epsCount, Sensitivity: 1}

	var grow func(region geom.Rect, view *dataset.View, depth int) *kdNode
	grow = func(region geom.Rect, view *dataset.View, depth int) *kdNode {
		n := &kdNode{region: region}
		if depth >= h-1 || view.Len() < 2 {
			n.count = mech.Release(rng, float64(view.Len()))
			return n
		}
		axis := depth % region.Dims()
		split := privateMedian(view, region, axis, epsPerLevel, rng)
		left := region.Clone()
		right := region.Clone()
		left.Hi[axis] = split
		right.Lo[axis] = split
		if left.Side(axis) <= 0 || right.Side(axis) <= 0 {
			n.count = mech.Release(rng, float64(view.Len()))
			return n
		}
		views := view.Partition([]geom.Rect{left, right})
		n.children = []*kdNode{
			grow(left, views[0], depth+1),
			grow(right, views[1], depth+1),
		}
		n.count = n.children[0].count + n.children[1].count
		return n
	}
	ds := data.NewView()
	return &KDTree{root: grow(data.Domain.Clone(), ds, 0)}
}

// privateMedian selects a split coordinate on the axis via the exponential
// mechanism over 32 evenly spaced candidates, scored by closeness of their
// rank to n/2 (sensitivity 1: one tuple moves any rank by at most 1).
func privateMedian(view *dataset.View, region geom.Rect, axis int, eps float64, rng *rand.Rand) float64 {
	const candidates = 32
	lo, hi := region.Lo[axis], region.Hi[axis]
	coords := make([]float64, view.Len())
	for i, p := range view.Points() {
		coords[i] = p[axis]
	}
	sort.Float64s(coords)
	n := float64(len(coords))
	scores := make([]float64, candidates)
	pos := make([]float64, candidates)
	for i := 0; i < candidates; i++ {
		x := lo + (hi-lo)*float64(i+1)/float64(candidates+1)
		pos[i] = x
		rank := float64(sort.SearchFloat64s(coords, x))
		scores[i] = -math.Abs(rank - n/2)
	}
	em := dp.ExponentialMechanism{Epsilon: eps, Sensitivity: 1}
	return pos[em.Select(rng, scores)]
}

// RangeCount implements workload.Method.
func (t *KDTree) RangeCount(q geom.Rect) float64 {
	var visit func(n *kdNode) float64
	visit = func(n *kdNode) float64 {
		inter, ok := n.region.Intersect(q)
		if !ok {
			return 0
		}
		if q.ContainsRect(n.region) {
			return n.count
		}
		if len(n.children) == 0 {
			return n.count * n.region.OverlapFraction(inter)
		}
		return visit(n.children[0]) + visit(n.children[1])
	}
	return visit(t.root)
}

// Size returns the number of nodes.
func (t *KDTree) Size() int {
	var walk func(n *kdNode) int
	walk = func(n *kdNode) int {
		total := 1
		for _, c := range n.children {
			total += walk(c)
		}
		return total
	}
	return walk(t.root)
}
