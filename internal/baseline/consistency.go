package baseline

import "math"

// This file implements the constrained-inference post-processing of Hay et
// al. (PVLDB'10), which the paper's Section 3.1 cites as one of the
// heuristics used to improve hierarchical methods ("exploiting
// correlations among the noisy counts to improve their accuracy [25]").
// Given independent noisy counts on a balanced tree, two linear passes
// produce the minimum-variance unbiased estimates that are CONSISTENT
// (every parent equals the sum of its children):
//
//  1. bottom-up: z(v) = α_l·x(v) + (1−α_l)·Σ z(children), with
//     α_l = (β^l − β^{l−1})/(β^l − 1) for a node whose subtree has l
//     levels (z = x at leaves);
//  2. top-down: h(v) = z(v) + (1/β)·[h(parent) − Σ_children z].
//
// Hierarchy exposes it as an option so the abl-consist experiment can
// quantify how much of the gap to PrivTree it closes (per the paper: not
// enough).

// enforceConsistency2D rewrites the per-level row-major noisy count grids
// of a balanced 2-D hierarchy (level L is a branch^L × branch^L grid; each
// node's children are the branch×branch block below it) so that every
// parent equals the sum of its children. levels[0] may be nil (the
// Hierarchy root releases no count); it is then synthesized from its
// children before the passes.
func enforceConsistency2D(levels [][]float64, branch int) {
	h := len(levels)
	if h < 2 {
		return
	}
	fanout := float64(branch * branch)
	if levels[0] == nil {
		root := 0.0
		for _, c := range levels[1] {
			root += c
		}
		levels[0] = []float64{root}
	}
	res := func(level int) int {
		r := 1
		for i := 0; i < level; i++ {
			r *= branch
		}
		return r
	}

	// Pass 1: bottom-up weighted estimates.
	z := make([][]float64, h)
	z[h-1] = append([]float64(nil), levels[h-1]...)
	for li := h - 2; li >= 0; li-- {
		l := h - li
		bl := math.Pow(fanout, float64(l))
		blm1 := math.Pow(fanout, float64(l-1))
		alpha := (bl - blm1) / (bl - 1)
		r := res(li)
		rc := res(li + 1)
		z[li] = make([]float64, len(levels[li]))
		for row := 0; row < r; row++ {
			for col := 0; col < r; col++ {
				childSum := 0.0
				for dr := 0; dr < branch; dr++ {
					for dc := 0; dc < branch; dc++ {
						childSum += z[li+1][(row*branch+dr)*rc+(col*branch+dc)]
					}
				}
				z[li][row*r+col] = alpha*levels[li][row*r+col] + (1-alpha)*childSum
			}
		}
	}

	// Pass 2: top-down residual distribution.
	out := make([][]float64, h)
	out[0] = append([]float64(nil), z[0]...)
	for li := 1; li < h; li++ {
		r := res(li)
		rp := res(li - 1)
		out[li] = make([]float64, len(z[li]))
		for prow := 0; prow < rp; prow++ {
			for pcol := 0; pcol < rp; pcol++ {
				childSum := 0.0
				for dr := 0; dr < branch; dr++ {
					for dc := 0; dc < branch; dc++ {
						childSum += z[li][(prow*branch+dr)*r+(pcol*branch+dc)]
					}
				}
				adjust := (out[li-1][prow*rp+pcol] - childSum) / fanout
				for dr := 0; dr < branch; dr++ {
					for dc := 0; dc < branch; dc++ {
						idx := (prow*branch+dr)*r + (pcol*branch + dc)
						out[li][idx] = z[li][idx] + adjust
					}
				}
			}
		}
	}
	copy(levels, out)
}
