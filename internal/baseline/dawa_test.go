package baseline

import (
	"math"
	"math/rand/v2"
	"testing"

	"privtree/internal/dp"
	"privtree/internal/geom"
	"privtree/internal/synth"
)

func TestDAWAPartitionAdaptsToBudget(t *testing.T) {
	// More budget ⇒ more signal in stage 1 ⇒ finer partitions.
	data := synth.RoadLike(100000, dp.NewRand(1))
	low := NewDAWADebug(data, 0.1, dp.NewRand(2))
	high := NewDAWADebug(data, 1.6, dp.NewRand(2))
	if low >= high {
		t.Fatalf("buckets at ε=0.1 (%d) not fewer than at ε=1.6 (%d)", low, high)
	}
	if low < 2 {
		t.Fatalf("degenerate single-bucket partition at ε=0.1")
	}
}

func TestDAWAMassConservation(t *testing.T) {
	// The full-domain query must recover ~n despite partitioning.
	data := synth.GowallaLike(50000, dp.NewRand(3))
	d := NewDAWA(data, 1.0, dp.NewRand(4))
	got := d.RangeCount(data.Domain)
	if math.Abs(got-50000) > 3000 {
		t.Fatalf("full-domain estimate %v far from 50000", got)
	}
}

func TestDAWA4D(t *testing.T) {
	data := synth.BeijingLike(20000, dp.NewRand(5))
	d := NewDAWA(data, 1.0, dp.NewRand(6))
	q := geom.NewRect(geom.Point{0, 0, 0, 0}, geom.Point{1, 1, 1, 0.5})
	want := 0.0
	for _, p := range data.Points {
		if q.Contains(p) {
			want++
		}
	}
	got := d.RangeCount(q)
	if math.Abs(got-want)/want > 0.3 {
		t.Fatalf("4-D half-space estimate %v vs exact %v", got, want)
	}
}

func TestMortonOrderIsPermutation(t *testing.T) {
	for _, tc := range []struct{ d, m int }{{1, 8}, {2, 8}, {2, 16}, {4, 4}} {
		order := mortonOrder(tc.d, tc.m)
		total := 1
		for i := 0; i < tc.d; i++ {
			total *= tc.m
		}
		if len(order) != total {
			t.Fatalf("d=%d m=%d: %d entries, want %d", tc.d, tc.m, len(order), total)
		}
		seen := make([]bool, total)
		for _, cell := range order {
			if cell < 0 || cell >= total || seen[cell] {
				t.Fatalf("d=%d m=%d: invalid or duplicate cell %d", tc.d, tc.m, cell)
			}
			seen[cell] = true
		}
	}
}

func TestMortonOrderPreservesLocality(t *testing.T) {
	// Consecutive positions along the curve must be spatially close on
	// average — far closer than a random permutation would be.
	const m = 32
	order := mortonOrder(2, m)
	dist := func(a, b int) float64 {
		ar, ac := a/m, a%m
		br, bc := b/m, b%m
		return math.Abs(float64(ar-br)) + math.Abs(float64(ac-bc))
	}
	sum := 0.0
	for i := 1; i < len(order); i++ {
		sum += dist(order[i-1], order[i])
	}
	avg := sum / float64(len(order)-1)
	if avg > 3 {
		t.Fatalf("average Z-order step distance %v too large", avg)
	}
}

func TestDawaPartitionMergesUniformRuns(t *testing.T) {
	// A flat array should collapse into few buckets; a spiky one should
	// keep its spikes isolated.
	flat := make([]float64, 256)
	for i := range flat {
		flat[i] = 10
	}
	bounds := dawaPartition(flat, 0.001, 1)
	if len(bounds)-1 > 8 {
		t.Fatalf("flat array split into %d buckets", len(bounds)-1)
	}

	spiky := make([]float64, 256)
	spiky[64] = 1000
	spiky[192] = 1000
	bounds = dawaPartition(spiky, 0.001, 1)
	if len(bounds)-1 < 3 {
		t.Fatalf("spiky array merged into %d buckets", len(bounds)-1)
	}
}

func TestDawaPartitionBoundsAreValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	x := make([]float64, 1000)
	for i := range x {
		x[i] = rng.Float64() * 100
	}
	bounds := dawaPartition(x, 1, 5)
	if bounds[0] != 0 || bounds[len(bounds)-1] != len(x) {
		t.Fatalf("bounds do not span the array: %v...%v", bounds[0], bounds[len(bounds)-1])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("non-increasing bounds at %d", i)
		}
	}
}

func TestPriveletTransformRoundTrip(t *testing.T) {
	// Forward + inverse Haar must reproduce the input exactly.
	rng := rand.New(rand.NewPCG(8, 8))
	line := make([]float64, 64)
	orig := make([]float64, 64)
	for i := range line {
		line[i] = rng.Float64() * 50
		orig[i] = line[i]
	}
	tmp := make([]float64, 64)
	haarForward(line, tmp)
	haarInverse(line, tmp)
	for i := range line {
		if math.Abs(line[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip broke at %d: %v vs %v", i, line[i], orig[i])
		}
	}
}

func TestPriveletMultiDimRoundTrip(t *testing.T) {
	// Per-axis transforms must also invert exactly on a 2-D grid.
	rng := rand.New(rand.NewPCG(9, 9))
	g := NewGrid(geom.UnitCube(2), UniformRes(2, 16))
	orig := make([]float64, len(g.Cells))
	for i := range g.Cells {
		g.Cells[i] = rng.Float64() * 10
		orig[i] = g.Cells[i]
	}
	for axis := 0; axis < 2; axis++ {
		forEachLine(g, axis, haarForward)
	}
	for axis := 1; axis >= 0; axis-- {
		forEachLine(g, axis, haarInverse)
	}
	for i := range g.Cells {
		if math.Abs(g.Cells[i]-orig[i]) > 1e-9 {
			t.Fatalf("2-D round trip broke at %d", i)
		}
	}
}

func TestPriveletSupports(t *testing.T) {
	// After the forward transform of length n: positions 0 and 1 have
	// support n; positions [2^t, 2^{t+1}) have support n/2^t.
	if support(0, 64) != 64 || support(1, 64) != 64 {
		t.Fatal("base/top supports wrong")
	}
	if support(2, 64) != 32 || support(3, 64) != 32 {
		t.Fatal("level-1 supports wrong")
	}
	if support(32, 64) != 2 || support(63, 64) != 2 {
		t.Fatal("finest supports wrong")
	}
}

func TestPriveletBaseCoefficientIsAverage(t *testing.T) {
	line := []float64{4, 8, 12, 16}
	tmp := make([]float64, 4)
	haarForward(line, tmp)
	if line[0] != 10 {
		t.Fatalf("base coefficient %v, want the average 10", line[0])
	}
}

func TestPriveletAccuracyScalesWithEps(t *testing.T) {
	data := synth.GowallaLike(60000, dp.NewRand(9))
	q := geom.NewRect(geom.Point{0.2, 0.2}, geom.Point{0.8, 0.8})
	want := 0.0
	for _, p := range data.Points {
		if q.Contains(p) {
			want++
		}
	}
	errAt := func(eps float64) float64 {
		p := NewPrivelet(data, eps, dp.NewRand(10))
		return math.Abs(p.RangeCount(q) - want)
	}
	lo, hi := errAt(0.05), errAt(5)
	if hi >= lo {
		t.Fatalf("error did not shrink with budget: ε=0.05→%v ε=5→%v", lo, hi)
	}
}

func TestSimpleTreeHeightCapBinds(t *testing.T) {
	data := synth.RoadLike(50000, dp.NewRand(11))
	st := NewSimpleTree(data, geom.FullBisect{Dim: 2}, 1.0, 0, 4, dp.NewRand(12))
	if h := st.Tree().Height(); h > 3 {
		t.Fatalf("SimpleTree height %d exceeds h-1=3", h)
	}
}

func TestSimpleTreeAnswersQueries(t *testing.T) {
	data := synth.RoadLike(50000, dp.NewRand(13))
	st := NewSimpleTree(data, geom.FullBisect{Dim: 2}, 1.0, 0, 8, dp.NewRand(14))
	got := st.RangeCount(data.Domain)
	if math.Abs(got-50000) > 3000 {
		t.Fatalf("full-domain %v far from 50000", got)
	}
}
