package dataset

import (
	"privtree/internal/geom"
)

// GridIndex buckets a dataset's points into a uniform grid so that exact
// range counts touch only the cells on the query boundary. It is the
// evaluation-side oracle for q(D): full interior cells contribute their
// pre-counted totals, boundary cells are scanned point by point.
type GridIndex struct {
	domain geom.Rect
	res    int // cells per axis
	dims   int
	cells  [][]geom.Point // flattened [res^dims] buckets
	counts []int          // per-cell counts (so interior cells need no scan)
	n      int
	// Per-axis cell boundaries, precomputed once so RangeCount never
	// rebuilds cell rectangles: cell c on an axis spans
	// [cellLo[axis][c], cellHi[axis][c]).
	cellLo [][]float64
	cellHi [][]float64
}

// gridMaxStackDims bounds the odometer state RangeCount keeps on the stack;
// datasets in this repository are at most 4-D, so queries above this
// dimensionality fall back to a heap-allocated odometer.
const gridMaxStackDims = 8

// NewGridIndex builds an index with res cells per axis. For d=2 a res of
// 256 keeps boundary scans tiny even at millions of points; for d=4 use a
// smaller res (e.g. 24) to bound the res^d memory.
func NewGridIndex(s *Spatial, res int) *GridIndex {
	if res < 1 {
		panic("dataset: GridIndex resolution must be >= 1")
	}
	d := s.Dims()
	total := 1
	for i := 0; i < d; i++ {
		total *= res
	}
	idx := &GridIndex{
		domain: s.Domain,
		res:    res,
		dims:   d,
		cells:  make([][]geom.Point, total),
		counts: make([]int, total),
		n:      s.N(),
		cellLo: make([][]float64, d),
		cellHi: make([][]float64, d),
	}
	for axis := 0; axis < d; axis++ {
		dlo, dhi := s.Domain.Lo[axis], s.Domain.Hi[axis]
		step := (dhi - dlo) / float64(res)
		lo := make([]float64, res)
		hi := make([]float64, res)
		for c := 0; c < res; c++ {
			lo[c] = dlo + float64(c)*step
			if c == res-1 {
				hi[c] = dhi
			} else {
				hi[c] = dlo + float64(c+1)*step
			}
		}
		idx.cellLo[axis] = lo
		idx.cellHi[axis] = hi
	}
	for _, p := range s.Points {
		c := idx.cellOf(p)
		idx.cells[c] = append(idx.cells[c], p)
		idx.counts[c]++
	}
	return idx
}

// N returns the indexed cardinality.
func (g *GridIndex) N() int { return g.n }

// cellOf maps a point to its flattened cell index.
func (g *GridIndex) cellOf(p geom.Point) int {
	idx := 0
	for axis := 0; axis < g.dims; axis++ {
		lo, hi := g.domain.Lo[axis], g.domain.Hi[axis]
		f := (p[axis] - lo) / (hi - lo)
		c := int(f * float64(g.res))
		if c < 0 {
			c = 0
		}
		if c >= g.res {
			c = g.res - 1
		}
		idx = idx*g.res + c
	}
	return idx
}

// RangeCount returns the exact number of indexed points inside q. The
// odometer walk classifies each cell against q using the precomputed
// per-axis cell boundaries: along an axis only the two extreme cells of the
// range can stick out of q, so full containment is a pair of precomputed
// booleans per axis rather than a fresh rectangle per cell. For queries of
// ≤ 8 dimensions the walk performs no heap allocation.
func (g *GridIndex) RangeCount(q geom.Rect) int {
	var stack [4 * gridMaxStackDims]int
	var loC, hiC, co, interior []int
	if g.dims <= gridMaxStackDims {
		loC = stack[0*g.dims : 1*g.dims]
		hiC = stack[1*g.dims : 2*g.dims]
		co = stack[2*g.dims : 3*g.dims]
		interior = stack[3*g.dims : 4*g.dims]
	} else {
		buf := make([]int, 4*g.dims)
		loC = buf[0*g.dims : 1*g.dims]
		hiC = buf[1*g.dims : 2*g.dims]
		co = buf[2*g.dims : 3*g.dims]
		interior = buf[3*g.dims : 4*g.dims]
	}
	// Per-axis range of cells overlapping q, plus whether the extreme cells
	// of the range lie fully inside q along that axis (bit 0: low end,
	// bit 1: high end).
	for axis := 0; axis < g.dims; axis++ {
		dlo, dhi := g.domain.Lo[axis], g.domain.Hi[axis]
		span := dhi - dlo
		lo := int((q.Lo[axis] - dlo) / span * float64(g.res))
		hi := int((q.Hi[axis] - dlo) / span * float64(g.res))
		if lo < 0 {
			lo = 0
		}
		if hi >= g.res {
			hi = g.res - 1
		}
		if lo > hi {
			return 0
		}
		loC[axis] = lo
		hiC[axis] = hi
		interior[axis] = 0
		if g.cellLo[axis][lo] >= q.Lo[axis] {
			interior[axis] |= 1
		}
		if g.cellHi[axis][hi] <= q.Hi[axis] {
			interior[axis] |= 2
		}
	}
	copy(co, loC)
	total := 0
	for {
		flat := 0
		contained := true
		for axis := 0; axis < g.dims; axis++ {
			c := co[axis]
			flat = flat*g.res + c
			if (c == loC[axis] && interior[axis]&1 == 0) ||
				(c == hiC[axis] && interior[axis]&2 == 0) {
				contained = false
			}
		}
		if contained {
			total += g.counts[flat]
		} else {
			// Boundary cell: scan its points. Cells in the odometer range
			// that only touch q on a shared face contribute nothing here,
			// exactly as the old rectangle-overlap test skipped them.
			for _, p := range g.cells[flat] {
				if q.Contains(p) {
					total++
				}
			}
		}
		// Odometer increment over [loC, hiC].
		axis := g.dims - 1
		for axis >= 0 {
			co[axis]++
			if co[axis] <= hiC[axis] {
				break
			}
			co[axis] = loC[axis]
			axis--
		}
		if axis < 0 {
			return total
		}
	}
}
