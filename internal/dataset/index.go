package dataset

import (
	"privtree/internal/geom"
)

// GridIndex buckets a dataset's points into a uniform grid so that exact
// range counts touch only the cells on the query boundary. It is the
// evaluation-side oracle for q(D): full interior cells contribute their
// pre-counted totals, boundary cells are scanned point by point.
type GridIndex struct {
	domain geom.Rect
	res    int // cells per axis
	dims   int
	cells  [][]geom.Point // flattened [res^dims] buckets
	counts []int          // per-cell counts (so interior cells need no scan)
	n      int
}

// NewGridIndex builds an index with res cells per axis. For d=2 a res of
// 256 keeps boundary scans tiny even at millions of points; for d=4 use a
// smaller res (e.g. 24) to bound the res^d memory.
func NewGridIndex(s *Spatial, res int) *GridIndex {
	if res < 1 {
		panic("dataset: GridIndex resolution must be >= 1")
	}
	d := s.Dims()
	total := 1
	for i := 0; i < d; i++ {
		total *= res
	}
	idx := &GridIndex{
		domain: s.Domain,
		res:    res,
		dims:   d,
		cells:  make([][]geom.Point, total),
		counts: make([]int, total),
		n:      s.N(),
	}
	for _, p := range s.Points {
		c := idx.cellOf(p)
		idx.cells[c] = append(idx.cells[c], p)
		idx.counts[c]++
	}
	return idx
}

// N returns the indexed cardinality.
func (g *GridIndex) N() int { return g.n }

// cellOf maps a point to its flattened cell index.
func (g *GridIndex) cellOf(p geom.Point) int {
	idx := 0
	for axis := 0; axis < g.dims; axis++ {
		lo, hi := g.domain.Lo[axis], g.domain.Hi[axis]
		f := (p[axis] - lo) / (hi - lo)
		c := int(f * float64(g.res))
		if c < 0 {
			c = 0
		}
		if c >= g.res {
			c = g.res - 1
		}
		idx = idx*g.res + c
	}
	return idx
}

// cellRect returns the rectangle of the cell with per-axis coordinates co.
func (g *GridIndex) cellRect(co []int) geom.Rect {
	lo := make(geom.Point, g.dims)
	hi := make(geom.Point, g.dims)
	for axis := 0; axis < g.dims; axis++ {
		dlo, dhi := g.domain.Lo[axis], g.domain.Hi[axis]
		step := (dhi - dlo) / float64(g.res)
		lo[axis] = dlo + float64(co[axis])*step
		if co[axis] == g.res-1 {
			hi[axis] = dhi
		} else {
			hi[axis] = dlo + float64(co[axis]+1)*step
		}
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// RangeCount returns the exact number of indexed points inside q.
func (g *GridIndex) RangeCount(q geom.Rect) int {
	// Per-axis range of cells overlapping q.
	loC := make([]int, g.dims)
	hiC := make([]int, g.dims)
	for axis := 0; axis < g.dims; axis++ {
		dlo, dhi := g.domain.Lo[axis], g.domain.Hi[axis]
		span := dhi - dlo
		lo := int((q.Lo[axis] - dlo) / span * float64(g.res))
		hi := int((q.Hi[axis] - dlo) / span * float64(g.res))
		if lo < 0 {
			lo = 0
		}
		if hi >= g.res {
			hi = g.res - 1
		}
		if lo > hi {
			return 0
		}
		loC[axis] = lo
		hiC[axis] = hi
	}
	co := make([]int, g.dims)
	copy(co, loC)
	total := 0
	for {
		flat := 0
		for axis := 0; axis < g.dims; axis++ {
			flat = flat*g.res + co[axis]
		}
		cr := g.cellRect(co)
		if q.ContainsRect(cr) {
			total += g.counts[flat]
		} else if cr.Overlaps(q) {
			for _, p := range g.cells[flat] {
				if q.Contains(p) {
					total++
				}
			}
		}
		// Odometer increment over [loC, hiC].
		axis := g.dims - 1
		for axis >= 0 {
			co[axis]++
			if co[axis] <= hiC[axis] {
				break
			}
			co[axis] = loC[axis]
			axis--
		}
		if axis < 0 {
			return total
		}
	}
}
