package dataset

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"privtree/internal/geom"
)

func randomDataset(n int, d int, seed uint64) *Spatial {
	rng := rand.New(rand.NewPCG(seed, 7))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	ds, err := NewSpatial(geom.UnitCube(d), pts)
	if err != nil {
		panic(err)
	}
	return ds
}

func TestNewSpatialRejectsOutOfDomain(t *testing.T) {
	dom := geom.UnitCube(2)
	if _, err := NewSpatial(dom, []geom.Point{{0.5, 1.5}}); err == nil {
		t.Fatal("point outside domain accepted")
	}
	if _, err := NewSpatial(dom, []geom.Point{{0.5}}); err == nil {
		t.Fatal("wrong-dimension point accepted")
	}
	if _, err := NewSpatial(dom, []geom.Point{{0.5, 0.5}}); err != nil {
		t.Fatalf("valid point rejected: %v", err)
	}
}

func TestViewPartitionConservesPoints(t *testing.T) {
	ds := randomDataset(1000, 2, 1)
	view := ds.NewView()
	kids := geom.FullBisect{Dim: 2}.Split(ds.Domain, 0)
	parts := view.Partition(kids)
	total := 0
	for i, part := range parts {
		total += part.Len()
		for _, p := range part.Points() {
			if i < len(parts)-1 && !kids[i].Contains(p) {
				t.Fatalf("point %v in wrong partition %d", p, i)
			}
		}
	}
	if total != 1000 {
		t.Fatalf("partition lost points: %d/1000", total)
	}
}

func TestViewPartitionMatchesScanCounts(t *testing.T) {
	ds := randomDataset(5000, 3, 2)
	view := ds.NewView()
	kids := geom.FullBisect{Dim: 3}.Split(ds.Domain, 0)
	// Count by scan BEFORE partition reorders.
	want := make([]int, len(kids))
	for i, k := range kids {
		want[i] = view.CountIn(k)
	}
	parts := view.Partition(kids)
	for i := range kids {
		if parts[i].Len() != want[i] {
			t.Errorf("child %d: partition %d, scan %d", i, parts[i].Len(), want[i])
		}
	}
}

func TestViewDoesNotMutateDataset(t *testing.T) {
	ds := randomDataset(100, 2, 3)
	first := append(geom.Point(nil), ds.Points[0]...)
	view := ds.NewView()
	view.Partition(geom.FullBisect{Dim: 2}.Split(ds.Domain, 0))
	if ds.Points[0][0] != first[0] || ds.Points[0][1] != first[1] {
		t.Fatal("partitioning a view reordered the dataset")
	}
}

func TestGridIndexMatchesBruteForce(t *testing.T) {
	ds := randomDataset(3000, 2, 4)
	idx := NewGridIndex(ds, 16)
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 100; trial++ {
		lo := geom.Point{rng.Float64() * 0.8, rng.Float64() * 0.8}
		hi := geom.Point{lo[0] + rng.Float64()*0.2, lo[1] + rng.Float64()*0.2}
		q := geom.NewRect(lo, hi)
		want := 0
		for _, p := range ds.Points {
			if q.Contains(p) {
				want++
			}
		}
		if got := idx.RangeCount(q); got != want {
			t.Fatalf("trial %d: index %d, brute force %d for %v", trial, got, want, q)
		}
	}
}

func TestGridIndex4D(t *testing.T) {
	ds := randomDataset(2000, 4, 6)
	idx := NewGridIndex(ds, 6)
	rng := rand.New(rand.NewPCG(8, 8))
	for trial := 0; trial < 50; trial++ {
		lo := make(geom.Point, 4)
		hi := make(geom.Point, 4)
		for i := range lo {
			lo[i] = rng.Float64() * 0.5
			hi[i] = lo[i] + 0.1 + rng.Float64()*0.4
		}
		q := geom.NewRect(lo, hi)
		want := 0
		for _, p := range ds.Points {
			if q.Contains(p) {
				want++
			}
		}
		if got := idx.RangeCount(q); got != want {
			t.Fatalf("trial %d: index %d, brute force %d", trial, got, want)
		}
	}
}

func TestGridIndexFullDomainQuery(t *testing.T) {
	ds := randomDataset(500, 2, 9)
	idx := NewGridIndex(ds, 8)
	if got := idx.RangeCount(ds.Domain); got != 500 {
		t.Fatalf("full-domain count = %d, want 500", got)
	}
}

func TestGridIndexEmptyQuery(t *testing.T) {
	ds := randomDataset(500, 2, 10)
	idx := NewGridIndex(ds, 8)
	q := geom.NewRect(geom.Point{0.0001, 0.0001}, geom.Point{0.0002, 0.0002})
	got := idx.RangeCount(q)
	want := 0
	for _, p := range ds.Points {
		if q.Contains(p) {
			want++
		}
	}
	if got != want {
		t.Fatalf("tiny query: %d vs %d", got, want)
	}
}

func TestGridIndexProperty(t *testing.T) {
	ds := randomDataset(800, 2, 11)
	idx := NewGridIndex(ds, 13) // odd resolution stresses cell alignment
	f := func(ax, ay, bx, by float64) bool {
		norm := func(v float64) float64 {
			if v != v || v > 1e300 || v < -1e300 { // NaN or overflow-prone
				return 0.5
			}
			v = math.Abs(math.Mod(v, 1))
			return v
		}
		x1, x2 := norm(ax), norm(bx)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		y1, y2 := norm(ay), norm(by)
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		q := geom.NewRect(geom.Point{x1, y1}, geom.Point{x2, y2})
		want := 0
		for _, p := range ds.Points {
			if q.Contains(p) {
				want++
			}
		}
		return idx.RangeCount(q) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGridIndexRangeCountZeroAllocs(t *testing.T) {
	ds := randomDataset(20000, 2, 31)
	idx := NewGridIndex(ds, 64)
	q := geom.NewRect(geom.Point{0.13, 0.22}, geom.Point{0.71, 0.68})
	if allocs := testing.AllocsPerRun(50, func() {
		idx.RangeCount(q)
	}); allocs != 0 {
		t.Fatalf("GridIndex.RangeCount allocated %v times per query, want 0", allocs)
	}
}

func TestPartitionIntoMatchesPartition(t *testing.T) {
	ds := randomDataset(5000, 2, 32)
	children := geom.FullBisect{Dim: 2}.Split(ds.Domain, 0)

	viaPtr := ds.NewView().Partition(children)
	viaInto := ds.NewView().PartitionInto(children, make([]View, len(children)))
	if len(viaPtr) != len(viaInto) {
		t.Fatalf("sub-view counts differ: %d vs %d", len(viaPtr), len(viaInto))
	}
	for i := range viaPtr {
		if viaPtr[i].Len() != viaInto[i].Len() {
			t.Fatalf("child %d: %d points via Partition, %d via PartitionInto", i, viaPtr[i].Len(), viaInto[i].Len())
		}
	}
	total := 0
	for _, v := range viaInto {
		total += v.Len()
	}
	if total != ds.N() {
		t.Fatalf("PartitionInto lost points: %d of %d", total, ds.N())
	}
}
