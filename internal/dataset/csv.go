package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"privtree/internal/geom"
)

// ReadCSV parses points from r: one point per line, comma-separated
// coordinates, blank lines and #-comments skipped. All points must share
// one dimensionality and lie inside domain; pass a zero-dim domain
// (geom.Rect{}) to infer the bounding unit cube of the first point's
// dimensionality instead.
func ReadCSV(r io.Reader, domain geom.Rect) (*Spatial, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var pts []geom.Point
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		p := make(geom.Point, len(parts))
		for i, part := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %w", line, err)
			}
			if v != v {
				return nil, fmt.Errorf("dataset: line %d: NaN coordinate", line)
			}
			p[i] = v
		}
		if len(pts) > 0 && len(p) != len(pts[0]) {
			return nil, fmt.Errorf("dataset: line %d: dimension %d, expected %d", line, len(p), len(pts[0]))
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("dataset: no points in input")
	}
	if domain.Dims() == 0 {
		domain = geom.UnitCube(len(pts[0]))
	}
	return NewSpatial(domain, pts)
}

// WriteCSV emits the dataset in the format ReadCSV parses.
func WriteCSV(w io.Writer, s *Spatial) error {
	bw := bufio.NewWriter(w)
	for _, p := range s.Points {
		for i, c := range p {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(c, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
