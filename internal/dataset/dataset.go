// Package dataset holds spatial point collections and the indexing
// machinery used to count points in sub-domains efficiently — both during
// decomposition-tree construction (in-place partitioning) and when computing
// exact range-count answers for evaluation (grid index).
package dataset

import (
	"fmt"

	"privtree/internal/geom"
)

// Spatial is a set of d-dimensional points together with their domain Ω.
// Algorithms never mutate the point coordinates; tree builders may reorder
// the slice via Partition (which is why builders take a fresh View).
type Spatial struct {
	Domain geom.Rect
	Points []geom.Point
}

// NewSpatial validates that every point lies inside domain and returns the
// dataset. Points outside Ω would silently vanish from every decomposition,
// so they are rejected loudly.
func NewSpatial(domain geom.Rect, points []geom.Point) (*Spatial, error) {
	for i, p := range points {
		if len(p) != domain.Dims() {
			return nil, fmt.Errorf("dataset: point %d has dim %d, domain has dim %d", i, len(p), domain.Dims())
		}
		if !domain.Contains(p) {
			return nil, fmt.Errorf("dataset: point %d (%v) outside domain %v", i, p, domain)
		}
	}
	return &Spatial{Domain: domain, Points: points}, nil
}

// N returns the dataset cardinality.
func (s *Spatial) N() int { return len(s.Points) }

// Dims returns the dataset dimensionality.
func (s *Spatial) Dims() int { return s.Domain.Dims() }

// View is a reorderable window onto a dataset's points, used by tree
// builders: splitting a node partitions its view into one sub-view per
// child, so counting at every tree level costs O(n) total per level.
type View struct {
	pts []geom.Point
}

// NewView returns a view over a copy of the dataset's point slice, so the
// builder's reordering never disturbs the caller's data.
func (s *Spatial) NewView() *View {
	pts := make([]geom.Point, len(s.Points))
	copy(pts, s.Points)
	return &View{pts: pts}
}

// Len returns the number of points in the view.
func (v View) Len() int { return len(v.pts) }

// Points exposes the underlying points (read-only by convention).
func (v View) Points() []geom.Point { return v.pts }

// Partition splits the view into one sub-view per child rectangle,
// reordering points in place so each sub-view is contiguous. Children must
// tile the parent region; a point falling in no child (possible only through
// float edge effects) is assigned to the last child rather than dropped, so
// counts always sum to the parent count.
func (v *View) Partition(children []geom.Rect) []*View {
	out := make([]*View, len(children))
	views := v.PartitionInto(children, make([]View, len(children)))
	for i := range views {
		out[i] = &views[i]
	}
	return out
}

// PartitionInto is the allocation-free form of Partition: it writes the
// sub-views into out (which must have len(children) entries) and returns
// out. View values are cheap window headers, so tree builders keep one
// scratch []View per recursion level and reuse it across siblings.
func (v View) PartitionInto(children []geom.Rect, out []View) []View {
	rest := v.pts
	for ci, child := range children {
		if ci == len(children)-1 {
			out[ci] = View{pts: rest}
			break
		}
		// Stable-free two-pointer partition: move points inside child to the front.
		k := 0
		for i := 0; i < len(rest); i++ {
			if child.Contains(rest[i]) {
				rest[k], rest[i] = rest[i], rest[k]
				k++
			}
		}
		out[ci] = View{pts: rest[:k]}
		rest = rest[k:]
	}
	return out
}

// CountIn returns the number of points in the view inside r by scanning.
func (v View) CountIn(r geom.Rect) int {
	n := 0
	for _, p := range v.pts {
		if r.Contains(p) {
			n++
		}
	}
	return n
}
