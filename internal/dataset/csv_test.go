package dataset

import (
	"bytes"
	"strings"
	"testing"

	"privtree/internal/geom"
)

func TestReadCSVBasic(t *testing.T) {
	in := "0.1,0.2\n# comment\n\n0.3,0.4\n"
	ds, err := ReadCSV(strings.NewReader(in), geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.Dims() != 2 {
		t.Fatalf("parsed %d points of dim %d", ds.N(), ds.Dims())
	}
	if ds.Points[1][1] != 0.4 {
		t.Fatalf("point values wrong: %v", ds.Points[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad float":      "0.1,abc\n",
		"NaN":            "0.1,NaN\n",
		"dim mismatch":   "0.1,0.2\n0.3\n",
		"empty input":    "\n# only comments\n",
		"outside domain": "1.5,0.5\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), geom.Rect{}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadCSVExplicitDomain(t *testing.T) {
	dom := geom.NewRect(geom.Point{-10, -10}, geom.Point{10, 10})
	ds, err := ReadCSV(strings.NewReader("-5,5\n"), dom)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 1 {
		t.Fatal("point lost")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := randomDataset(500, 3, 77)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, ds.Domain)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() {
		t.Fatalf("round trip lost points: %d vs %d", back.N(), ds.N())
	}
	for i := range ds.Points {
		for j := range ds.Points[i] {
			if back.Points[i][j] != ds.Points[i][j] {
				t.Fatalf("coordinate changed at %d/%d", i, j)
			}
		}
	}
}
