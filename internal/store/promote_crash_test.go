package store

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
)

// Promotion crash injection: the epoch bump is one WAL append, so a
// SIGKILL during it must leave the store in exactly one of two states —
// the old epoch (record never durable) or the new one (record landed) —
// and the store must reopen cleanly and accept a fresh promotion either
// way. A half-granted epoch would let two nodes both believe they hold
// the writer role, the one state fencing exists to prevent.

const (
	promoteCrashChildEnv = "PRIVTREE_PROMOTE_CRASH_CHILD"
	promoteCrashDirEnv   = "PRIVTREE_PROMOTE_CRASH_DIR"
	promoteCrashPointEnv = "PRIVTREE_PROMOTE_CRASH_POINT"
)

func TestPromoteCrashHelper(t *testing.T) {
	if os.Getenv(promoteCrashChildEnv) != "1" {
		t.Skip("crash-harness child process only")
	}
	dir := os.Getenv(promoteCrashDirEnv)
	point := os.Getenv(promoteCrashPointEnv)

	st, err := Open(dir)
	if err != nil {
		fmt.Printf("CHILD-ERROR open: %v\n", err)
		os.Exit(1)
	}
	// Pre-promotion history, fully acknowledged before the hook is armed:
	// the crash must not disturb it.
	if err := st.AppendDebit(0.25, "rel-0"); err != nil {
		fmt.Printf("CHILD-ERROR debit: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("ACK setup")

	SetCrashHook(func(p string) {
		if p == point {
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {}
		}
	})
	defer SetCrashHook(nil)
	epoch, err := st.Promote("crash-test")
	if err != nil {
		fmt.Printf("CHILD-ERROR promote: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ACK promote %d\n", epoch)
	fmt.Println("DONE")
}

func TestPromoteCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns one child process per fault point")
	}
	cases := []struct {
		point   string
		allowed []uint64 // writer epochs recovery may observe
	}{
		// Nothing written: the grant never happened.
		{"wal.before_write", []uint64{0}},
		// Bytes in the file, fsync unknown: either outcome is legal, but
		// nothing in between.
		{"wal.after_write", []uint64{0, 1}},
		// Durable before the kill: the grant must survive.
		{"wal.after_sync", []uint64{1}},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run", "^TestPromoteCrashHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				promoteCrashChildEnv+"=1",
				promoteCrashDirEnv+"="+dir,
				promoteCrashPointEnv+"="+tc.point,
			)
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			runErr := cmd.Run()
			out := stdout.String()
			if strings.Contains(out, "CHILD-ERROR") {
				t.Fatalf("child error:\n%s\nstderr:\n%s", out, stderr.String())
			}
			if runErr == nil {
				t.Fatalf("child survived a SIGKILL at %s:\n%s", tc.point, out)
			}
			if !strings.Contains(out, "ACK setup") {
				t.Fatalf("child died before the workload was set up:\n%s", out)
			}

			st, err := Open(dir)
			if err != nil {
				t.Fatalf("store did not reopen after promote crash: %v", err)
			}
			defer st.Close()
			got := st.WriterEpoch()
			ok := false
			for _, e := range tc.allowed {
				ok = ok || got == e
			}
			if !ok {
				t.Fatalf("recovered writer epoch %d at %s, want one of %v", got, tc.point, tc.allowed)
			}
			// The acknowledged pre-crash debit survived.
			if spent := st.SpentEpsilon(); spent != 0.25 {
				t.Fatalf("recovered spent = %v, want 0.25", spent)
			}
			// Re-promotion works from whichever epoch recovery landed on,
			// and the store keeps taking appends.
			epoch, err := st.Promote("retry")
			if err != nil {
				t.Fatalf("re-promotion after crash: %v", err)
			}
			if epoch != got+1 {
				t.Fatalf("re-promotion granted epoch %d, want %d", epoch, got+1)
			}
			if err := st.AppendDebit(0.125, "rel-post"); err != nil {
				t.Fatalf("append after recovered promotion: %v", err)
			}
			st.Close()

			// The offline scrub agrees the directory is intact (a torn tail
			// is a warning, not corruption).
			report, err := Scrub(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !report.OK() {
				t.Fatalf("scrub found corruption after promote crash: %+v", report.Findings)
			}
		})
	}
}
