package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
)

// Crash-injection harness. The parent test re-executes this test binary
// as a child that runs a fixed ledger workload with a crash hook armed at
// one fault point; the hook SIGKILLs the child mid-operation — no
// deferred cleanup, no atexit, exactly a process crash. The child prints
// an ACK line only AFTER each store call returns (i.e. after the fsync
// that makes it durable). The parent then recovers the directory and
// checks the crash-safety contract at every fault point:
//
//   - every acknowledged debit is recovered (spent ε never under-counts);
//   - every acknowledged refund and commit is recovered (durable before
//     the caller was told about them);
//   - every acknowledged commit's artifact loads and matches its SHA;
//   - nothing recovered lies outside the child's op universe.
//
// Unacknowledged operations MAY be recovered (the crash landed between
// fsync and ACK) — that direction only over-counts spent ε, which is the
// safe failure mode for a privacy ledger.

const (
	crashChildEnv  = "PRIVTREE_STORE_CRASH_CHILD"
	crashDirEnv    = "PRIVTREE_STORE_CRASH_DIR"
	crashPointEnv  = "PRIVTREE_STORE_CRASH_POINT"
	crashHitEnv    = "PRIVTREE_STORE_CRASH_HIT"
	crashWorkloadN = 12
)

// childEps returns the (exactly representable) debit amount of op i, so
// float comparisons between parent and recovery are equality, not
// tolerance.
func childEps(i int) float64 { return float64(i+1) / 64 }

func childKey(i int) string { return fmt.Sprintf("rel-%d", i) }

func childEnvelope(i int) []byte {
	return []byte(fmt.Sprintf(`{"privtree_release":1,"kind":"spatial","payload":{"i":%d}}`, i))
}

// TestCrashInjectionHelper is the child body; it skips unless re-executed
// by TestCrashInjectionRecovery.
func TestCrashInjectionHelper(t *testing.T) {
	if os.Getenv(crashChildEnv) != "1" {
		t.Skip("crash-harness child process only")
	}
	dir := os.Getenv(crashDirEnv)
	point := os.Getenv(crashPointEnv)
	hit, _ := strconv.Atoi(os.Getenv(crashHitEnv))
	var seen atomic.Int64
	SetCrashHook(func(p string) {
		if p != point {
			return
		}
		if int(seen.Add(1)) == hit {
			// A real crash: no flushes, no cleanup, straight to SIGKILL.
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {}
		}
	})
	defer SetCrashHook(nil)

	st, err := Open(dir)
	if err != nil {
		fmt.Printf("CHILD-ERROR open: %v\n", err)
		os.Exit(1)
	}
	ack := func(format string, args ...any) {
		// os.Stdout is unbuffered: the line is in the parent's pipe before
		// the next store call can crash us.
		fmt.Fprintf(os.Stdout, format+"\n", args...)
	}
	for i := 0; i < crashWorkloadN; i++ {
		key, eps := childKey(i), childEps(i)
		if err := st.AppendDebit(eps, key); err != nil {
			fmt.Printf("CHILD-ERROR debit %d: %v\n", i, err)
			os.Exit(1)
		}
		ack("ACK debit %s %.17g", key, eps)
		if i%3 == 0 {
			env := childEnvelope(i)
			if err := st.CommitRelease(key, env); err != nil {
				fmt.Printf("CHILD-ERROR commit %d: %v\n", i, err)
				os.Exit(1)
			}
			sha := sha256.Sum256(env)
			ack("ACK commit %s %s", key, hex.EncodeToString(sha[:]))
		}
		if i == 7 {
			// A failed build's refund: durable before the error returns.
			if err := st.AppendRefund(eps, key); err != nil {
				fmt.Printf("CHILD-ERROR refund %d: %v\n", i, err)
				os.Exit(1)
			}
			ack("ACK refund %s %.17g", key, eps)
		}
		if i == 9 {
			if err := st.Compact(); err != nil {
				fmt.Printf("CHILD-ERROR compact: %v\n", err)
				os.Exit(1)
			}
			ack("ACK compact")
		}
	}
	fmt.Println("DONE")
}

// ackedOp is one operation the child acknowledged before dying.
type ackedOp struct {
	kind string // "debit", "refund", "commit"
	key  string
	eps  float64
	sha  string
}

func parseAcks(t *testing.T, out []byte) (acks []ackedOp, done bool) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "CHILD-ERROR"):
			t.Fatalf("child reported an unexpected store error: %s", line)
		case line == "DONE":
			done = true
		case line == "ACK compact":
		case strings.HasPrefix(line, "ACK "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed ACK line %q", line)
			}
			op := ackedOp{kind: fields[1], key: fields[2]}
			if op.kind == "commit" {
				op.sha = fields[3]
			} else {
				eps, err := strconv.ParseFloat(fields[3], 64)
				if err != nil {
					t.Fatalf("bad eps in ACK line %q: %v", line, err)
				}
				op.eps = eps
			}
			acks = append(acks, op)
		}
	}
	return acks, done
}

func TestCrashInjectionRecovery(t *testing.T) {
	if runtimeGOOS := os.Getenv("GOOS"); runtimeGOOS != "" && runtimeGOOS != "linux" {
		t.Skip("SIGKILL harness is POSIX-only")
	}
	for _, point := range CrashPoints {
		for _, hit := range []int{1, 4} {
			point, hit := point, hit
			t.Run(fmt.Sprintf("%s/hit%d", point, hit), func(t *testing.T) {
				dir := t.TempDir()
				cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashInjectionHelper$", "-test.v")
				cmd.Env = append(os.Environ(),
					crashChildEnv+"=1",
					crashDirEnv+"="+dir,
					crashPointEnv+"="+point,
					crashHitEnv+"="+strconv.Itoa(hit),
				)
				var stdout, stderr bytes.Buffer
				cmd.Stdout, cmd.Stderr = &stdout, &stderr
				err := cmd.Run()
				acks, done := parseAcks(t, stdout.Bytes())
				if err == nil && !done {
					t.Fatalf("child exited cleanly without finishing its workload\nstdout:\n%s\nstderr:\n%s",
						stdout.String(), stderr.String())
				}
				if err != nil {
					// The child must have died by our SIGKILL, not a panic
					// or test failure.
					ee, ok := err.(*exec.ExitError)
					if !ok || !ee.ProcessState.Exited() && ee.ProcessState.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
						t.Fatalf("child died abnormally: %v\nstdout:\n%s\nstderr:\n%s",
							err, stdout.String(), stderr.String())
					}
				}
				verifyRecovery(t, dir, acks)
			})
		}
	}
}

// verifyRecovery opens the crashed directory and checks the contract
// against the acknowledged operations.
func verifyRecovery(t *testing.T, dir string, acks []ackedOp) {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer st.Close()

	events, commits := st.Events(), st.Commits()
	type ledgerKey struct {
		kind EventKind
		key  string
	}
	recovered := make(map[ledgerKey]Event)
	for _, e := range events {
		recovered[ledgerKey{e.Kind, e.Key}] = e
	}
	commitByKey := make(map[string]Event)
	for _, c := range commits {
		commitByKey[c.Key] = c
	}

	ackedDebits, ackedRefunds := 0.0, 0.0
	for _, op := range acks {
		switch op.kind {
		case "debit":
			e, ok := recovered[ledgerKey{EventDebit, op.key}]
			if !ok {
				t.Fatalf("acknowledged debit %s FORGOTTEN by recovery (ε under-count)", op.key)
			}
			if e.Epsilon != op.eps {
				t.Fatalf("debit %s recovered with ε=%v, acknowledged ε=%v", op.key, e.Epsilon, op.eps)
			}
			ackedDebits += op.eps
		case "refund":
			e, ok := recovered[ledgerKey{EventRefund, op.key}]
			if !ok {
				t.Fatalf("acknowledged refund %s forgotten by recovery", op.key)
			}
			if e.Epsilon != op.eps {
				t.Fatalf("refund %s recovered with ε=%v, acknowledged ε=%v", op.key, e.Epsilon, op.eps)
			}
			ackedRefunds += op.eps
		case "commit":
			c, ok := commitByKey[op.key]
			if !ok {
				t.Fatalf("acknowledged commit %s forgotten by recovery", op.key)
			}
			if hex.EncodeToString(c.SHA[:]) != op.sha {
				t.Fatalf("commit %s recovered with sha %x, acknowledged %s", op.key, c.SHA, op.sha)
			}
			blob, err := st.LoadArtifact(c.SHA)
			if err != nil {
				t.Fatalf("acknowledged artifact %s unreadable after crash: %v", op.key, err)
			}
			if sha256.Sum256(blob) != c.SHA {
				t.Fatalf("artifact %s bytes do not match content address", op.key)
			}
		}
	}

	// Spent never under-counts what was acknowledged. (Refunds the child
	// issued but had not yet acknowledged can legitimately lower spent —
	// they were durable before any error would have been returned — so the
	// bound subtracts every refund the workload can issue.)
	maxRefund := childEps(7)
	if spent := st.SpentEpsilon(); spent < ackedDebits-math.Max(ackedRefunds, maxRefund)-1e-12 {
		t.Fatalf("recovered spent ε=%v under-counts acknowledged debits %v (refunds ≤ %v)",
			spent, ackedDebits, maxRefund)
	}

	// Recovery must not invent operations outside the child's universe.
	validKeys := make(map[string]bool, crashWorkloadN)
	for i := 0; i < crashWorkloadN; i++ {
		validKeys[childKey(i)] = true
	}
	for _, e := range events {
		if !validKeys[e.Key] {
			t.Fatalf("recovered event with unknown key %q", e.Key)
		}
	}
	for _, c := range commits {
		if !validKeys[c.Key] {
			t.Fatalf("recovered commit with unknown key %q", c.Key)
		}
	}
}
