package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func scrubFindings(t *testing.T, dir string) *ScrubReport {
	t.Helper()
	rep, err := Scrub(dir)
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	return rep
}

func hasFinding(rep *ScrubReport, severity, substr string) bool {
	for _, f := range rep.Findings {
		if f.Severity == severity && strings.Contains(f.Detail, substr) {
			return true
		}
	}
	return false
}

// TestScrubCleanStore proves a healthy store scrubs clean and the counts
// line up.
func TestScrubCleanStore(t *testing.T) {
	s, dir := openTestStore(t)
	if err := s.AppendDebit(0.5, "rel"); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitRelease("rel", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	rep := scrubFindings(t, dir)
	if !rep.OK() || len(rep.Findings) != 0 {
		t.Fatalf("clean store has findings: %+v", rep.Findings)
	}
	if rep.WALRecords != 2 || rep.Commits != 1 || rep.Artifacts != 1 {
		t.Fatalf("counts = %d records / %d commits / %d artifacts", rep.WALRecords, rep.Commits, rep.Artifacts)
	}
}

// TestScrubDetectsCorruption drives each corruption class and checks it
// is reported with the right severity, on hostile bytes, without panics.
func TestScrubDetectsCorruption(t *testing.T) {
	build := func(t *testing.T) string {
		s, dir := openTestStore(t)
		if err := s.AppendDebit(0.5, "rel"); err != nil {
			t.Fatal(err)
		}
		if err := s.CommitRelease("rel", []byte(`{"ok":true}`)); err != nil {
			t.Fatal(err)
		}
		s.Close()
		return dir
	}
	artifactOf := func(t *testing.T, dir string) string {
		ents, err := os.ReadDir(filepath.Join(dir, "artifacts"))
		if err != nil || len(ents) != 1 {
			t.Fatalf("artifacts dir: %v (%d entries)", err, len(ents))
		}
		return filepath.Join(dir, "artifacts", ents[0].Name())
	}

	t.Run("flipped WAL byte", func(t *testing.T) {
		dir := build(t)
		path := filepath.Join(dir, "ledger.wal")
		data, _ := os.ReadFile(path)
		data[len(data)-5] ^= 0x40
		os.WriteFile(path, data, 0o644)
		rep := scrubFindings(t, dir)
		if rep.OK() || !hasFinding(rep, "error", "CRC") {
			t.Fatalf("findings = %+v", rep.Findings)
		}
	})
	t.Run("torn tail is a warning", func(t *testing.T) {
		dir := build(t)
		path := filepath.Join(dir, "ledger.wal")
		data, _ := os.ReadFile(path)
		os.WriteFile(path, data[:len(data)-4], 0o644)
		rep := scrubFindings(t, dir)
		if !hasFinding(rep, "warn", "torn") {
			t.Fatalf("findings = %+v", rep.Findings)
		}
		// The torn frame was the commit; its artifact is still valid, so no
		// error-severity findings.
		if !rep.OK() {
			t.Fatalf("torn tail alone should scrub OK: %+v", rep.Findings)
		}
	})
	t.Run("corrupt artifact bytes", func(t *testing.T) {
		dir := build(t)
		os.WriteFile(artifactOf(t, dir), []byte(`{"ok":false}`), 0o644)
		rep := scrubFindings(t, dir)
		if rep.OK() || !hasFinding(rep, "error", "content address") {
			t.Fatalf("findings = %+v", rep.Findings)
		}
	})
	t.Run("missing artifact for commit", func(t *testing.T) {
		dir := build(t)
		os.Remove(artifactOf(t, dir))
		rep := scrubFindings(t, dir)
		if rep.OK() || !hasFinding(rep, "error", "missing artifact") {
			t.Fatalf("findings = %+v", rep.Findings)
		}
	})
	t.Run("orphan tmp file", func(t *testing.T) {
		dir := build(t)
		os.WriteFile(filepath.Join(dir, "artifacts", "x.json.tmp"), []byte("partial"), 0o644)
		rep := scrubFindings(t, dir)
		if !rep.OK() || !hasFinding(rep, "warn", "temp file") {
			t.Fatalf("findings = %+v", rep.Findings)
		}
	})
	t.Run("truncated WAL magic", func(t *testing.T) {
		dir := build(t)
		os.WriteFile(filepath.Join(dir, "ledger.wal"), []byte("PTW"), 0o644)
		rep := scrubFindings(t, dir)
		if rep.OK() || !hasFinding(rep, "error", "magic") {
			t.Fatalf("findings = %+v", rep.Findings)
		}
	})
	t.Run("corrupt snapshot", func(t *testing.T) {
		dir := build(t)
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte(`{"privtree_store_snapshot":1,`), 0o644)
		rep := scrubFindings(t, dir)
		if rep.OK() || !hasFinding(rep, "error", "JSON") {
			t.Fatalf("findings = %+v", rep.Findings)
		}
	})
	t.Run("corrupt FENCED marker", func(t *testing.T) {
		dir := build(t)
		os.WriteFile(filepath.Join(dir, "FENCED"), []byte("not-a-number"), 0o644)
		rep := scrubFindings(t, dir)
		if rep.OK() || !hasFinding(rep, "error", "FENCED") {
			t.Fatalf("findings = %+v", rep.Findings)
		}
	})
	t.Run("live store is refused", func(t *testing.T) {
		s, dir := openTestStore(t)
		defer s.Close()
		if _, err := Scrub(dir); err == nil {
			t.Fatal("Scrub of a locked store succeeded")
		}
	})
}
