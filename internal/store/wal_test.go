package store

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// walImage builds a valid WAL image from events (assigning sequence
// numbers 1..n) for the framing tests.
func walImage(events []Event) []byte {
	data := []byte(walMagic)
	for i := range events {
		e := events[i]
		if e.Seq == 0 {
			e.Seq = uint64(i + 1)
		}
		data = appendFrame(data, &e)
	}
	return data
}

func sampleEvents() []Event {
	sha := sha256.Sum256([]byte("envelope"))
	return []Event{
		{Kind: EventDebit, Epsilon: 0.5, Key: "mech=spatial eps=0.5", At: time.Unix(1, 2)},
		{Kind: EventRefund, Epsilon: 0.5, Key: "mech=spatial eps=0.5", At: time.Unix(3, 4)},
		{Kind: EventDebit, Epsilon: 0.25, Key: "mech=sequence eps=0.25", At: time.Unix(5, 6)},
		{Kind: EventCommit, Key: "mech=sequence eps=0.25", SHA: sha, At: time.Unix(7, 8)},
	}
}

func TestDecodeWALRoundTrip(t *testing.T) {
	events := sampleEvents()
	data := walImage(events)
	got, validLen := DecodeWAL(data)
	if validLen != int64(len(data)) {
		t.Fatalf("valid prefix %d, want whole image %d", validLen, len(data))
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i, e := range got {
		want := events[i]
		if e.Kind != want.Kind || e.Epsilon != want.Epsilon || e.Key != want.Key ||
			e.SHA != want.SHA || !e.At.Equal(want.At) || e.Seq != uint64(i+1) {
			t.Fatalf("event %d = %+v, want %+v", i, e, want)
		}
	}
}

// TestDecodeWALTruncationSweep is the byte-exact torn-write test: every
// possible truncation point of a valid WAL must recover cleanly to a
// prefix of the original records, never panic, and never invent a record.
func TestDecodeWALTruncationSweep(t *testing.T) {
	events := sampleEvents()
	data := walImage(events)
	// Record the byte offset at which each record becomes complete.
	completeAt := make([]int, 0, len(events))
	off := len(walMagic)
	for i := range events {
		e := events[i]
		e.Seq = uint64(i + 1)
		payload := appendEventPayload(nil, &e)
		off += recHeaderLen + len(payload)
		completeAt = append(completeAt, off)
	}
	for cut := 0; cut <= len(data); cut++ {
		got, validLen := DecodeWAL(data[:cut])
		wantN := 0
		for _, c := range completeAt {
			if cut >= c {
				wantN++
			}
		}
		if len(got) != wantN {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), wantN)
		}
		if validLen > int64(cut) {
			t.Fatalf("cut=%d: validLen %d beyond the image", cut, validLen)
		}
		if wantN > 0 && validLen != int64(completeAt[wantN-1]) {
			t.Fatalf("cut=%d: validLen %d, want %d", cut, validLen, completeAt[wantN-1])
		}
	}
}

func TestDecodeWALHostileFrames(t *testing.T) {
	base := walImage(sampleEvents())
	baseEvents, _ := DecodeWAL(base)

	t.Run("bad crc ends prefix", func(t *testing.T) {
		data := append([]byte(nil), base...)
		data[len(data)-1] ^= 0xff // corrupt last record's payload
		got, _ := DecodeWAL(data)
		if len(got) != len(baseEvents)-1 {
			t.Fatalf("recovered %d records, want %d", len(got), len(baseEvents)-1)
		}
	})
	t.Run("zero-length frame ends prefix", func(t *testing.T) {
		data := append([]byte(nil), base...)
		data = binary.LittleEndian.AppendUint32(data, 0)
		data = binary.LittleEndian.AppendUint32(data, 0)
		got, validLen := DecodeWAL(data)
		if len(got) != len(baseEvents) || validLen != int64(len(base)) {
			t.Fatalf("zero-length frame not rejected: %d records, validLen %d", len(got), validLen)
		}
	})
	t.Run("oversized frame ends prefix", func(t *testing.T) {
		data := append([]byte(nil), base...)
		data = binary.LittleEndian.AppendUint32(data, maxRecordPayload+1)
		data = binary.LittleEndian.AppendUint32(data, 0)
		data = append(data, make([]byte, 64)...)
		got, _ := DecodeWAL(data)
		if len(got) != len(baseEvents) {
			t.Fatalf("oversized frame not rejected: %d records", len(got))
		}
	})
	t.Run("duplicated record skipped", func(t *testing.T) {
		// Re-append record #3 (seq 3) then a fresh seq-5 record: the dup
		// must be skipped without ending the prefix, the tail still loads.
		events := sampleEvents()
		data := walImage(events)
		dup := events[2]
		dup.Seq = 3
		data = appendFrame(data, &dup)
		tail := Event{Seq: 5, Kind: EventDebit, Epsilon: 0.125, Key: "k", At: time.Unix(9, 9)}
		data = appendFrame(data, &tail)
		got, validLen := DecodeWAL(data)
		if len(got) != len(events)+1 || validLen != int64(len(data)) {
			t.Fatalf("dup handling wrong: %d records (want %d), validLen %d of %d",
				len(got), len(events)+1, validLen, len(data))
		}
		if got[len(got)-1].Seq != 5 {
			t.Fatalf("tail after dup lost: %+v", got[len(got)-1])
		}
		spent := 0.0
		for _, e := range got {
			if e.Kind == EventDebit {
				spent += e.Epsilon
			}
		}
		if spent != 0.5+0.25+0.125 {
			t.Fatalf("duplicated debit double-counted: spent=%v", spent)
		}
	})
	t.Run("malformed payloads end prefix", func(t *testing.T) {
		bad := []Event{
			{Seq: 9, Kind: EventKind(42), Epsilon: 1, Key: "k"},        // unknown kind
			{Seq: 9, Kind: EventDebit, Epsilon: math.NaN(), Key: "k"},  // NaN ε
			{Seq: 9, Kind: EventDebit, Epsilon: math.Inf(1), Key: "k"}, // inf ε
			{Seq: 9, Kind: EventDebit, Epsilon: -1, Key: "k"},          // negative ε
			{Seq: 9, Kind: EventDebit, Epsilon: 1, Key: ""},            // empty key
			{Seq: 9, Kind: EventCommit, Epsilon: 1, Key: "k"},          // commit with ε
		}
		for i, e := range bad {
			data := appendFrame(append([]byte(nil), base...), &e)
			got, validLen := DecodeWAL(data)
			if len(got) != len(baseEvents) || validLen != int64(len(base)) {
				t.Fatalf("bad record %d accepted: %d records, validLen %d", i, len(got), validLen)
			}
		}
	})
	t.Run("wrong magic", func(t *testing.T) {
		got, validLen := DecodeWAL([]byte("NOTAWAL\nxxxxxxxxxxxx"))
		if got != nil || validLen != 0 {
			t.Fatalf("bad magic accepted: %d records", len(got))
		}
	})
}

// TestOpenWALRepairsTornTail checks the file-level recovery contract: a
// torn append is truncated away on open and the log accepts new appends
// that extend the repaired prefix.
func TestOpenWALRepairsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.wal")
	w, events, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("fresh WAL has %d events", len(events))
	}
	for i := 0; i < 3; i++ {
		if err := w.append(&Event{Seq: w.nextSeq, Kind: EventDebit, Epsilon: 0.1, Key: "k", At: time.Now()}); err != nil {
			t.Fatal(err)
		}
		w.nextSeq++
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record in half.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, events2, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events2) != 2 {
		t.Fatalf("recovered %d events after torn tail, want 2", len(events2))
	}
	// The torn bytes must be gone so this append chains onto record 2.
	if err := w2.append(&Event{Seq: w2.nextSeq, Kind: EventDebit, Epsilon: 0.2, Key: "k2", At: time.Now()}); err != nil {
		t.Fatal(err)
	}
	w2.nextSeq++
	if err := w2.close(); err != nil {
		t.Fatal(err)
	}

	_, events3, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events3) != 3 || events3[2].Key != "k2" || events3[2].Seq != 3 {
		t.Fatalf("post-repair append lost: %+v", events3)
	}
}
