package store

import (
	"crypto/sha256"
	"encoding/binary"
	"hash/crc32"
	"testing"
	"time"
)

// appendFrameRaw frames an arbitrary (possibly malformed) payload with a
// valid length + CRC header.
func appendFrameRaw(data, payload []byte) []byte {
	data = binary.LittleEndian.AppendUint32(data, uint32(len(payload)))
	data = binary.LittleEndian.AppendUint32(data, crc32.Checksum(payload, castagnoli))
	return append(data, payload...)
}

// TestTraceRoundTrip proves trace IDs survive the full durability cycle:
// WAL append → reopen, then snapshot compaction → reopen.
func TestTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const trace = "0123456789abcdef0123456789abcdef"
	if err := s.AppendDebitTraced(0.5, "k1", trace); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRefundTraced(0.25, "k1", trace); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDebit(0.5, "k2"); err != nil { // untraced
		t.Fatal(err)
	}
	if err := s.CommitReleaseTraced("k2", []byte(`{"x":1}`), trace); err != nil {
		t.Fatal(err)
	}
	if got := s.LastSeq(); got != 4 {
		t.Fatalf("LastSeq = %d, want 4", got)
	}
	check := func(s *Store, stage string) {
		t.Helper()
		ev, cm := s.Events(), s.Commits()
		if len(ev) != 3 || len(cm) != 1 {
			t.Fatalf("%s: %d events, %d commits", stage, len(ev), len(cm))
		}
		if ev[0].Trace != trace || ev[1].Trace != trace {
			t.Fatalf("%s: traced events lost traces: %q %q", stage, ev[0].Trace, ev[1].Trace)
		}
		if ev[2].Trace != "" {
			t.Fatalf("%s: untraced event grew trace %q", stage, ev[2].Trace)
		}
		if cm[0].Trace != trace {
			t.Fatalf("%s: commit lost trace: %q", stage, cm[0].Trace)
		}
	}
	check(s, "live")

	// Reopen: WAL replay path.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	check(s, "wal replay")
	if got := s.LastSeq(); got != 4 {
		t.Fatalf("LastSeq after replay = %d, want 4", got)
	}

	// Compact + reopen: snapshot path.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	check(s, "snapshot")
}

// TestDecodeWALPreTraceRecords pins backward compatibility: frames
// encoded without the optional trace field (the pre-trace on-disk form)
// decode with an empty trace.
func TestDecodeWALPreTraceRecords(t *testing.T) {
	events := sampleEvents() // no traces → encoder omits the field
	data := walImage(events)
	got, validLen := DecodeWAL(data)
	if validLen != int64(len(data)) || len(got) != len(events) {
		t.Fatalf("decoded %d events over %d bytes, want %d over %d", len(got), validLen, len(events), len(data))
	}
	for i, e := range got {
		if e.Trace != "" {
			t.Fatalf("event %d invented trace %q", i, e.Trace)
		}
	}
}

func TestDecodeWALTracedFrames(t *testing.T) {
	sha := sha256.Sum256([]byte("env"))
	events := []Event{
		{Kind: EventDebit, Epsilon: 0.5, Key: "k", At: time.Unix(1, 0), Trace: "aaaa"},
		{Kind: EventCommit, Key: "k", SHA: sha, At: time.Unix(2, 0), Trace: "bbbb"},
	}
	data := walImage(events)
	got, validLen := DecodeWAL(data)
	if validLen != int64(len(data)) || len(got) != 2 {
		t.Fatalf("decode: %d events, %d/%d bytes", len(got), validLen, len(data))
	}
	if got[0].Trace != "aaaa" || got[1].Trace != "bbbb" {
		t.Fatalf("traces = %q, %q", got[0].Trace, got[1].Trace)
	}
	// A frame whose trace-length byte disagrees with the actual bytes
	// must end the valid prefix, not decode garbage.
	bad := events[0]
	payload := appendEventPayload(nil, &bad)
	payload[len(payload)-5]++ // corrupt traceLen (trace is last 4 bytes)
	img := []byte(walMagic)
	img = appendFrameRaw(img, payload)
	if ev, _ := DecodeWAL(img); len(ev) != 0 {
		t.Fatalf("malformed trace frame decoded: %+v", ev)
	}
}

func TestFsyncObserver(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var n int
	var total float64
	s.SetFsyncObserver(func(sec float64) { n++; total += sec })
	if err := s.AppendDebit(0.1, "k"); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitRelease("k", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("observer saw %d fsyncs, want 2", n)
	}
	if total < 0 {
		t.Fatalf("negative fsync time %v", total)
	}
}
