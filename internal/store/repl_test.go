package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTestStore(t *testing.T) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, dir
}

// TestEpochRecordRoundTrip proves an epoch grant survives the full
// durability cycle: append, recover from WAL, recover from snapshot.
func TestEpochRecordRoundTrip(t *testing.T) {
	s, dir := openTestStore(t)
	if got := s.WriterEpoch(); got != 0 {
		t.Fatalf("fresh store writer epoch = %d, want 0", got)
	}
	epoch, err := s.Promote("trace-1")
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if epoch != 1 {
		t.Fatalf("Promote granted %d, want 1", epoch)
	}
	if err := s.AppendDebit(0.5, "k"); err != nil {
		t.Fatalf("AppendDebit after promote: %v", err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := s2.WriterEpoch(); got != 1 {
		t.Fatalf("recovered writer epoch = %d, want 1", got)
	}
	eps := s2.Epochs()
	if len(eps) != 1 || eps[0].Epoch != 1 || eps[0].Trace != "trace-1" {
		t.Fatalf("recovered epochs = %+v", eps)
	}
	// Epoch grants must not leak into the ledger replay input.
	for _, e := range s2.Events() {
		if e.Kind == EventEpoch {
			t.Fatalf("Events() leaked an epoch record: %+v", e)
		}
	}
	if err := s2.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	s2.Close()

	s3, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer s3.Close()
	if got := s3.WriterEpoch(); got != 1 {
		t.Fatalf("post-compact writer epoch = %d, want 1", got)
	}
	if got := s3.SpentEpsilon(); got != 0.5 {
		t.Fatalf("post-compact spent = %v, want 0.5", got)
	}
}

// TestFenceRejectsAppendsDurably proves a fenced store rejects every
// mutation with ErrFenced, across restarts, and refuses to fence the live
// writer.
func TestFenceRejectsAppendsDurably(t *testing.T) {
	s, dir := openTestStore(t)
	if _, err := s.Promote(""); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if err := s.Fence(1); err == nil {
		t.Fatal("Fence(1) succeeded against the epoch-1 writer itself")
	}
	if err := s.Fence(2); err != nil {
		t.Fatalf("Fence(2): %v", err)
	}
	if err := s.Fence(2); err != nil {
		t.Fatalf("idempotent Fence(2): %v", err)
	}
	if err := s.AppendDebit(0.1, "k"); !errors.Is(err, ErrFenced) {
		t.Fatalf("AppendDebit on fenced store = %v, want ErrFenced", err)
	}
	if err := s.CommitRelease("k", []byte("{}")); !errors.Is(err, ErrFenced) {
		t.Fatalf("CommitRelease on fenced store = %v, want ErrFenced", err)
	}
	if _, err := s.Promote(""); !errors.Is(err, ErrFenced) {
		t.Fatalf("Promote on fenced store = %v, want ErrFenced", err)
	}
	if _, err := s.AppendReplicated([]byte{}); !errors.Is(err, ErrFenced) {
		t.Fatalf("AppendReplicated on fenced store = %v, want ErrFenced", err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen fenced store: %v", err)
	}
	defer s2.Close()
	if at, fenced := s2.FencedEpoch(); !fenced || at != 2 {
		t.Fatalf("recovered fence = (%d,%v), want (2,true)", at, fenced)
	}
	if err := s2.AppendDebit(0.1, "k"); !errors.Is(err, ErrFenced) {
		t.Fatalf("AppendDebit after reopen = %v, want ErrFenced", err)
	}
}

// TestFramesShipBitIdentically proves the ship/apply cycle: frames pulled
// from a primary apply to a replica with identical sequence numbers,
// events, spent ε, and — after artifact transfer — identical envelope
// bytes; and the replica's WAL file is a byte-identical copy.
func TestFramesShipBitIdentically(t *testing.T) {
	primary, pdir := openTestStore(t)
	if err := primary.AppendDebitTraced(0.5, "rel-a", "t1"); err != nil {
		t.Fatal(err)
	}
	envelope := []byte(`{"payload":"bytes"}`)
	if err := primary.CommitReleaseTraced("rel-a", envelope, "t1"); err != nil {
		t.Fatal(err)
	}
	if err := primary.AppendDebit(0.25, "rel-b"); err != nil {
		t.Fatal(err)
	}
	if err := primary.AppendRefund(0.25, "rel-b"); err != nil {
		t.Fatal(err)
	}

	replica, rdir := openTestStore(t)
	frames, last, err := primary.FramesSince(0, 0)
	if err != nil {
		t.Fatalf("FramesSince: %v", err)
	}
	if last != primary.LastSeq() {
		t.Fatalf("FramesSince last = %d, want %d", last, primary.LastSeq())
	}
	// Commits must be rejected until their artifacts are present.
	if _, err := replica.AppendReplicated(frames); err == nil {
		t.Fatal("AppendReplicated accepted a commit with no artifact on disk")
	}
	sha := sha256.Sum256(envelope)
	shaHex := hex.EncodeToString(sha[:])
	if replica.HasArtifact(shaHex) {
		t.Fatal("HasArtifact true before PutArtifact")
	}
	if err := replica.PutArtifact(shaHex, []byte("forged")); err == nil {
		t.Fatal("PutArtifact accepted bytes that do not match their address")
	}
	if err := replica.PutArtifact(shaHex, envelope); err != nil {
		t.Fatalf("PutArtifact: %v", err)
	}
	applied, err := replica.AppendReplicated(frames)
	if err != nil {
		t.Fatalf("AppendReplicated: %v", err)
	}
	if len(applied) != 4 {
		t.Fatalf("applied %d events, want 4", len(applied))
	}
	// Re-applying the same shipment is a no-op.
	if again, err := replica.AppendReplicated(frames); err != nil || again != nil {
		t.Fatalf("duplicate AppendReplicated = (%v, %v), want (nil, nil)", again, err)
	}
	if got, want := replica.SpentEpsilon(), primary.SpentEpsilon(); got != want {
		t.Fatalf("replica spent %v, primary spent %v", got, want)
	}
	if got, want := replica.LastSeq(), primary.LastSeq(); got != want {
		t.Fatalf("replica seq %v, primary seq %v", got, want)
	}
	blob, err := replica.ArtifactByAddr(shaHex)
	if err != nil || string(blob) != string(envelope) {
		t.Fatalf("replica artifact = (%q, %v), want envelope bytes", blob, err)
	}
	pwal, err := os.ReadFile(filepath.Join(pdir, "ledger.wal"))
	if err != nil {
		t.Fatal(err)
	}
	rwal, err := os.ReadFile(filepath.Join(rdir, "ledger.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if string(pwal) != string(rwal) {
		t.Fatal("replica WAL is not a byte-identical copy of the primary WAL")
	}

	// Shipping keeps working after the primary compacts its WAL away.
	if err := primary.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := primary.AppendDebit(0.1, "rel-c"); err != nil {
		t.Fatal(err)
	}
	frames2, _, err := primary.FramesSince(replica.LastSeq(), 0)
	if err != nil {
		t.Fatalf("FramesSince after compact: %v", err)
	}
	if _, err := replica.AppendReplicated(frames2); err != nil {
		t.Fatalf("AppendReplicated after compact: %v", err)
	}
	if got, want := replica.SpentEpsilon(), primary.SpentEpsilon(); got != want {
		t.Fatalf("post-compact replica spent %v, primary spent %v", got, want)
	}
}

// TestFramesSinceRespectsMaxBytes proves pagination: small maxBytes still
// makes progress one frame at a time and the pages concatenate to the
// full history.
func TestFramesSinceRespectsMaxBytes(t *testing.T) {
	s, _ := openTestStore(t)
	for i := 0; i < 10; i++ {
		if err := s.AppendDebit(0.1, fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	replica, _ := openTestStore(t)
	cursor := uint64(0)
	pulls := 0
	for cursor < s.LastSeq() {
		frames, last, err := s.FramesSince(cursor, 1) // absurdly small cap
		if err != nil {
			t.Fatalf("FramesSince(%d): %v", cursor, err)
		}
		if last <= cursor {
			t.Fatalf("no progress at cursor %d", cursor)
		}
		if _, err := replica.AppendReplicated(frames); err != nil {
			t.Fatalf("apply page at %d: %v", cursor, err)
		}
		cursor = last
		pulls++
	}
	if pulls != 10 {
		t.Fatalf("pulled %d pages, want 10 (one frame per page)", pulls)
	}
	if got, want := replica.SpentEpsilon(), s.SpentEpsilon(); got != want {
		t.Fatalf("replica spent %v, want %v", got, want)
	}
}

// TestAppendReplicatedRejectsHostileBatches covers the strict-validation
// contract: corrupt framing, epoch regressions, and garbage are rejected
// without applying anything.
func TestAppendReplicatedRejectsHostileBatches(t *testing.T) {
	primary, _ := openTestStore(t)
	if err := primary.AppendDebit(0.5, "k"); err != nil {
		t.Fatal(err)
	}
	frames, _, err := primary.FramesSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"truncated":   frames[:len(frames)-3],
		"flipped bit": append(append([]byte{}, frames[:len(frames)-1]...), frames[len(frames)-1]^0x01),
		"garbage":     []byte("not frames at all"),
	}
	for name, data := range cases {
		replica, _ := openTestStore(t)
		if _, err := replica.AppendReplicated(data); err == nil {
			t.Errorf("%s batch accepted", name)
		}
		if replica.LastSeq() != 0 || replica.SpentEpsilon() != 0 {
			t.Errorf("%s batch partially applied: seq=%d spent=%v", name, replica.LastSeq(), replica.SpentEpsilon())
		}
	}

	// An epoch regression (shipment grants an epoch <= the replica's) must
	// be rejected: it means the stream comes from a stale writer.
	regressor, _ := openTestStore(t)
	if _, err := regressor.Promote(""); err != nil {
		t.Fatal(err)
	}
	eframes, _, err := regressor.FramesSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	replica, _ := openTestStore(t)
	if _, err := replica.AppendReplicated(eframes); err != nil {
		t.Fatalf("first epoch shipment: %v", err)
	}
	// Hand-build a second store at epoch 1 whose grant would re-ship epoch
	// 1 at a later seq.
	stale, _ := openTestStore(t)
	if err := stale.AppendDebit(0.1, "pad1"); err != nil {
		t.Fatal(err)
	}
	if err := stale.AppendDebit(0.1, "pad2"); err != nil {
		t.Fatal(err)
	}
	if _, err := stale.Promote(""); err != nil {
		t.Fatal(err)
	}
	sframes, _, err := stale.FramesSince(replica.LastSeq(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replica.AppendReplicated(sframes); err == nil {
		t.Fatal("replica accepted an epoch-1 grant while already at epoch 1")
	}
}

// TestFailHookInjectsCleanErrors proves the error-returning fault mode: a
// failed append surfaces as ErrAppend, the store survives, and the seq is
// burned (over-count direction), never reused.
func TestFailHookInjectsCleanErrors(t *testing.T) {
	s, dir := openTestStore(t)
	defer SetFailHook(nil)

	for _, point := range []string{"wal.before_write", "wal.after_write"} {
		SetFailHook(func(p string) error {
			if p == point {
				return fmt.Errorf("injected ENOSPC at %s", p)
			}
			return nil
		})
		err := s.AppendDebit(0.3, "failing-"+point)
		if !errors.Is(err, ErrAppend) {
			t.Fatalf("%s: AppendDebit error = %v, want ErrAppend", point, err)
		}
		SetFailHook(nil)
		if err := s.AppendDebit(0.1, "ok-after-"+point); err != nil {
			t.Fatalf("append after injected failure at %s: %v", point, err)
		}
	}

	// wal.after_write models a failed fsync: the bytes are in the file, so
	// recovery may over-count the failed debit — but reopening must
	// succeed and spent ε must be at least the acknowledged debits.
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after injected failures: %v", err)
	}
	defer s2.Close()
	spent := s2.SpentEpsilon()
	if spent < 0.2 {
		t.Fatalf("recovered spent %v dropped an acknowledged debit", spent)
	}
	if spent > 0.2+0.3+0.3+1e-12 {
		t.Fatalf("recovered spent %v exceeds even the over-count bound", spent)
	}
	seen := map[uint64]bool{}
	for _, e := range s2.Events() {
		if seen[e.Seq] {
			t.Fatalf("sequence %d reused", e.Seq)
		}
		seen[e.Seq] = true
	}
}
