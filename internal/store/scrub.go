package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the offline integrity scrub behind
// `privtree verify <dir>`: a read-only sweep that proves (or disproves)
// every durability claim the store makes, byte by byte, without mutating
// anything. Unlike Open — which silently truncates a torn tail, because a
// recovering server must make progress — the scrubber REPORTS everything
// it finds and changes nothing, so an operator can decide whether a
// finding is a benign crash artifact or real corruption.

// Finding is one scrub observation. Severity "error" findings mean the
// store's integrity claims do not hold (corrupt frames, artifacts whose
// bytes do not hash to their name, commits pointing at missing
// artifacts); "warn" findings are benign-but-notable crash leftovers
// (torn tail, duplicate frames, orphan .tmp files).
type Finding struct {
	Severity string // "error" or "warn"
	Path     string // file the finding is about, relative to the store dir
	Detail   string
}

// ScrubReport is the result of one offline sweep.
type ScrubReport struct {
	Dir        string
	WALRecords int // valid records decoded from the WAL
	Commits    int // distinct committed releases (snapshot + WAL)
	Artifacts  int // artifact files verified
	Findings   []Finding
}

// OK reports whether the sweep found no error-severity findings (warnings
// do not fail a scrub: a torn tail is exactly what a crash is allowed to
// leave behind).
func (r *ScrubReport) OK() bool {
	for _, f := range r.Findings {
		if f.Severity == "error" {
			return false
		}
	}
	return true
}

func (r *ScrubReport) errf(path, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Severity: "error", Path: path, Detail: fmt.Sprintf(format, args...)})
}

func (r *ScrubReport) warnf(path, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Severity: "warn", Path: path, Detail: fmt.Sprintf(format, args...)})
}

// Scrub sweeps the store directory at dir offline: WAL framing (CRC,
// strict sequence order), snapshot integrity, every artifact's bytes
// against its content-address filename, and every commit record against
// an existing artifact. It takes the store's exclusive lock for the sweep
// — scrubbing a live store would race its appends — and releases it
// before returning. Scrub never modifies the directory.
func Scrub(dir string) (*ScrubReport, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	defer unlockDir(lock)

	r := &ScrubReport{Dir: dir}
	commitSHAs := map[string]string{} // hex sha -> commit key
	r.scrubWAL(dir, commitSHAs)
	r.scrubSnapshot(dir, commitSHAs)
	r.scrubFence(dir)
	present := r.scrubArtifacts(dir)
	for sha, key := range commitSHAs {
		if !present[sha] {
			r.errf("ledger.wal", "commit %q references missing artifact %s.json", key, sha)
		}
	}
	r.Commits = len(commitSHAs)
	return r, nil
}

// scrubWAL walks every frame strictly. It deliberately re-implements the
// frame walk instead of calling DecodeWAL: recovery stops at the first bad
// frame, but a scrub should classify it — and distinguish a torn tail
// (warn) from mid-file corruption (error) by whether any bytes follow.
func (r *ScrubReport) scrubWAL(dir string, commitSHAs map[string]string) {
	const name = "ledger.wal"
	data, err := os.ReadFile(filepath.Join(dir, name))
	if os.IsNotExist(err) {
		r.errf(name, "missing WAL file")
		return
	}
	if err != nil {
		r.errf(name, "unreadable: %v", err)
		return
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		r.errf(name, "bad or missing magic header")
		return
	}
	off := len(walMagic)
	lastSeq := uint64(0)
	for off < len(data) {
		rest := data[off:]
		if len(rest) < recHeaderLen {
			r.warnf(name, "torn frame header at offset %d (%d trailing bytes)", off, len(rest))
			return
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		if plen == 0 || plen > maxRecordPayload {
			r.errf(name, "frame at offset %d has payload length %d out of range (%d bytes follow)", off, plen, len(rest)-recHeaderLen)
			return
		}
		if len(rest) < recHeaderLen+int(plen) {
			r.warnf(name, "torn frame at offset %d: header promises %d payload bytes, file has %d", off, plen, len(rest)-recHeaderLen)
			return
		}
		payload := rest[recHeaderLen : recHeaderLen+int(plen)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			r.errf(name, "frame at offset %d fails its CRC", off)
			return
		}
		e, err := decodeEventPayload(payload)
		if err != nil {
			r.errf(name, "frame at offset %d: %v", off, err)
			return
		}
		switch {
		case e.Seq <= lastSeq:
			// A stale or duplicate frame is what a retried append after a
			// failed fsync leaves behind; recovery skips it by seq, so it is
			// notable but not corruption.
			r.warnf(name, "frame at offset %d re-appends seq %d (last good seq %d; skipped on recovery)", off, e.Seq, lastSeq)
		default:
			lastSeq = e.Seq
			r.WALRecords++
			if e.Kind == EventCommit {
				commitSHAs[hex.EncodeToString(e.SHA[:])] = e.Key
			}
		}
		off += recHeaderLen + int(plen)
	}
}

func (r *ScrubReport) scrubSnapshot(dir string, commitSHAs map[string]string) {
	const name = "snapshot.json"
	blob, err := os.ReadFile(filepath.Join(dir, name))
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		r.errf(name, "unreadable: %v", err)
		return
	}
	var snap snapshotFile
	if err := json.Unmarshal(blob, &snap); err != nil {
		r.errf(name, "corrupt JSON: %v", err)
		return
	}
	if snap.Version != snapshotVersion {
		r.errf(name, "unsupported snapshot version %d", snap.Version)
		return
	}
	// Re-run the strict snapshot restore against a throwaway store so the
	// scrub applies exactly the validation recovery would.
	probe := &Store{dir: dir, byKey: make(map[string]int)}
	if err := probe.loadSnapshot(); err != nil {
		r.errf(name, "%v", err)
		return
	}
	for _, c := range probe.commits {
		commitSHAs[hex.EncodeToString(c.SHA[:])] = c.Key
	}
}

func (r *ScrubReport) scrubFence(dir string) {
	probe := &Store{dir: dir}
	if err := probe.loadFence(); err != nil {
		r.errf("FENCED", "%v", err)
	}
}

// scrubArtifacts hashes every artifact file and returns the set of
// present, verified content addresses.
func (r *ScrubReport) scrubArtifacts(dir string) map[string]bool {
	present := map[string]bool{}
	sub := filepath.Join(dir, "artifacts")
	entries, err := os.ReadDir(sub)
	if os.IsNotExist(err) {
		r.errf("artifacts", "missing artifacts directory")
		return present
	}
	if err != nil {
		r.errf("artifacts", "unreadable: %v", err)
		return present
	}
	for _, ent := range entries {
		rel := filepath.Join("artifacts", ent.Name())
		if ent.IsDir() {
			r.warnf(rel, "unexpected directory inside artifacts/")
			continue
		}
		if strings.HasSuffix(ent.Name(), ".tmp") {
			r.warnf(rel, "orphan temp file (crash between write and rename; safe to delete)")
			continue
		}
		shaHex, ok := strings.CutSuffix(ent.Name(), ".json")
		if !ok || len(shaHex) != 64 {
			r.warnf(rel, "file name is not a sha256 content address")
			continue
		}
		want, err := parseSHA(shaHex)
		if err != nil {
			r.warnf(rel, "file name is not a sha256 content address")
			continue
		}
		blob, err := os.ReadFile(filepath.Join(sub, ent.Name()))
		if err != nil {
			r.errf(rel, "unreadable: %v", err)
			continue
		}
		if sha256.Sum256(blob) != want {
			r.errf(rel, "bytes do not hash to the file's content address")
			continue
		}
		present[shaHex] = true
		r.Artifacts++
	}
	return present
}
