package store

import (
	"crypto/sha256"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	env1 := []byte(`{"privtree_release":1,"kind":"spatial","payload":{}}`)
	env2 := []byte(`{"privtree_release":1,"kind":"sequence","payload":{}}`)
	if err := s.AppendDebit(0.5, "rel-a"); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitRelease("rel-a", env1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDebit(0.25, "rel-b"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRefund(0.25, "rel-b"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDebit(0.125, "rel-c"); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitRelease("rel-c", env2); err != nil {
		t.Fatal(err)
	}
	if got := s.SpentEpsilon(); got != 0.5+0.125 {
		t.Fatalf("spent = %v, want %v", got, 0.5+0.125)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.SpentEpsilon(); got != 0.5+0.125 {
		t.Fatalf("recovered spent = %v, want %v", got, 0.5+0.125)
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("recovered %d ledger events, want 4: %+v", len(events), events)
	}
	wantKinds := []EventKind{EventDebit, EventDebit, EventRefund, EventDebit}
	for i, e := range events {
		if e.Kind != wantKinds[i] {
			t.Fatalf("event %d kind = %s, want %s", i, e.Kind, wantKinds[i])
		}
	}
	commits := r.Commits()
	if len(commits) != 2 || commits[0].Key != "rel-a" || commits[1].Key != "rel-c" {
		t.Fatalf("recovered commits wrong: %+v", commits)
	}
	for i, want := range [][]byte{env1, env2} {
		blob, err := r.LoadArtifact(commits[i].SHA)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(want) {
			t.Fatalf("artifact %d bytes differ:\n got %s\nwant %s", i, blob, want)
		}
	}
	if r.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not positive after traffic")
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	env := []byte(`{"privtree_release":1,"kind":"spatial","payload":{"x":1}}`)
	for i := 0; i < 50; i++ {
		if err := s.AppendDebit(0.01, "spin"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CommitRelease("spin", env); err != nil {
		t.Fatal(err)
	}
	preWAL := fileSize(t, filepath.Join(dir, "ledger.wal"))
	spent := s.SpentEpsilon()

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	postWAL := fileSize(t, filepath.Join(dir, "ledger.wal"))
	if postWAL >= preWAL {
		t.Fatalf("compaction did not shrink the WAL: %d -> %d bytes", preWAL, postWAL)
	}
	if got := s.SpentEpsilon(); got != spent {
		t.Fatalf("compaction changed spent: %v -> %v", spent, got)
	}
	// Post-compaction appends land in the rotated WAL.
	if err := s.AppendDebit(0.5, "after"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.SpentEpsilon(); math.Abs(got-(spent+0.5)) > 1e-12 {
		t.Fatalf("recovered spent after compaction = %v, want %v", got, spent+0.5)
	}
	if n := len(r.Events()); n != 51 {
		t.Fatalf("recovered %d events, want 51", n)
	}
	commits := r.Commits()
	if len(commits) != 1 || commits[0].Key != "spin" {
		t.Fatalf("commit lost in compaction: %+v", commits)
	}
	if _, err := r.LoadArtifact(commits[0].SHA); err != nil {
		t.Fatal(err)
	}
}

// TestStoreStaleWALAfterSnapshot models a crash between the snapshot
// rename and the WAL rotate: the stale records must be skipped by the
// snapshot's seq cursor, not replayed on top of it.
func TestStoreStaleWALAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.AppendDebit(0.1, "k"); err != nil {
			t.Fatal(err)
		}
	}
	// Preserve the pre-rotate WAL, compact, then put the stale WAL back —
	// exactly the on-disk state of a crash after snapshot.after_rename.
	walPath := filepath.Join(dir, "ledger.wal")
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.SpentEpsilon(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("stale WAL records double-counted: spent = %v, want 1.0", got)
	}
	if n := len(r.Events()); n != 10 {
		t.Fatalf("recovered %d events, want 10", n)
	}
	// The next append must not collide with the snapshot's seq space.
	if err := r.AppendDebit(0.2, "fresh"); err != nil {
		t.Fatal(err)
	}
	if got := r.SpentEpsilon(); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("append after stale recovery: spent = %v, want 1.2", got)
	}
}

func TestStoreCommitIdempotentAndConflicting(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	env := []byte(`{"privtree_release":1}`)
	if err := s.CommitRelease("k", env); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitRelease("k", env); err != nil {
		t.Fatalf("idempotent re-commit rejected: %v", err)
	}
	if err := s.CommitRelease("k", []byte(`{"different":true}`)); err == nil {
		t.Fatal("conflicting commit for the same key accepted")
	}
	if n := len(s.Commits()); n != 1 {
		t.Fatalf("%d commits recorded, want 1", n)
	}
}

func TestStoreRejectsBadInputs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := s.AppendDebit(eps, "k"); err == nil {
			t.Fatalf("debit epsilon %v accepted", eps)
		}
		if err := s.AppendRefund(eps, "k"); err == nil {
			t.Fatalf("refund epsilon %v accepted", eps)
		}
	}
	if err := s.AppendDebit(0.5, ""); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.CommitRelease("k", nil); err == nil {
		t.Fatal("empty envelope accepted")
	}
}

func TestStoreDetectsArtifactTampering(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	env := []byte(`{"privtree_release":1,"kind":"spatial"}`)
	if err := s.CommitRelease("k", env); err != nil {
		t.Fatal(err)
	}
	sha := sha256.Sum256(env)
	path := filepath.Join(dir, "artifacts")
	entries, err := os.ReadDir(path)
	if err != nil || len(entries) != 1 {
		t.Fatalf("artifact dir: %v, %d entries", err, len(entries))
	}
	if err := os.WriteFile(filepath.Join(path, entries[0].Name()), []byte(`{"forged":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadArtifact(sha); err == nil {
		t.Fatal("tampered artifact loaded without error")
	}
}

// TestStoreExclusiveLock: two live stores over one directory would each
// recover the same spent ε and double-spend the budget, so the second
// Open must fail while the first holds the flock, and succeed after
// Close releases it.
func TestStoreExclusiveLock(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("second Open on a live store succeeded")
	}
	if err := s1.AppendDebit(0.1, "k"); err != nil {
		t.Fatalf("lock contention broke the first store: %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	defer s2.Close()
	if got := s2.SpentEpsilon(); got != 0.1 {
		t.Fatalf("recovered spent = %v, want 0.1", got)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
