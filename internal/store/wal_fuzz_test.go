package store

import (
	"math"
	"testing"
	"time"
)

// FuzzWALDecode throws arbitrary bytes at the recovery core. The
// properties under fuzz:
//
//  1. never panics, whatever the input;
//  2. the reported valid prefix is within the input and re-decoding
//     exactly that prefix yields the same records (idempotent recovery —
//     what openWAL's truncate-and-replay relies on);
//  3. every recovered record is well-formed: positive finite ε on
//     debits/refunds, non-empty key, strictly increasing seq;
//  4. appending a fresh record after the valid prefix extends the decode
//     by exactly that record (torn-tail repair leaves an appendable log).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte(walMagic))
	f.Add([]byte(""))
	f.Add([]byte("PTWAL\x00\x01\nגarbage"))
	valid := walImage(sampleEvents())
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	corrupt := append([]byte(nil), valid...)
	corrupt[len(walMagic)+9] ^= 0x40
	f.Add(corrupt)
	zero := append(append([]byte(nil), valid...), make([]byte, recHeaderLen)...)
	f.Add(zero)

	f.Fuzz(func(t *testing.T, data []byte) {
		events, validLen := DecodeWAL(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside input of %d bytes", validLen, len(data))
		}
		lastSeq := uint64(0)
		for i, e := range events {
			switch e.Kind {
			case EventDebit, EventRefund:
				if !(e.Epsilon > 0) || math.IsInf(e.Epsilon, 0) {
					t.Fatalf("record %d has unusable epsilon %v", i, e.Epsilon)
				}
			case EventCommit:
				if e.Epsilon != 0 {
					t.Fatalf("commit record %d carries epsilon %v", i, e.Epsilon)
				}
			default:
				t.Fatalf("record %d has unknown kind %d", i, e.Kind)
			}
			if e.Key == "" || len(e.Key) > maxKeyLen {
				t.Fatalf("record %d has bad key length %d", i, len(e.Key))
			}
			if e.Seq <= lastSeq {
				t.Fatalf("record %d seq %d not increasing past %d", i, e.Seq, lastSeq)
			}
			lastSeq = e.Seq
		}

		// Idempotent recovery over the valid prefix.
		again, againLen := DecodeWAL(data[:validLen])
		if againLen != validLen || len(again) != len(events) {
			t.Fatalf("re-decode of valid prefix: %d records / %d bytes, want %d / %d",
				len(again), againLen, len(events), validLen)
		}

		// The repaired log must accept appends.
		if validLen >= int64(len(walMagic)) {
			next := Event{Seq: lastSeq + 1, Kind: EventDebit, Epsilon: 0.5, Key: "appended", At: time.Unix(1, 1)}
			extended := appendFrame(append([]byte(nil), data[:validLen]...), &next)
			got, gotLen := DecodeWAL(extended)
			if gotLen != int64(len(extended)) || len(got) != len(events)+1 {
				t.Fatalf("append after repair not decodable: %d records / %d bytes", len(got), gotLen)
			}
			if last := got[len(got)-1]; last.Key != "appended" || last.Seq != lastSeq+1 {
				t.Fatalf("appended record mangled: %+v", last)
			}
		}
	})
}
