package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"time"
)

// This file implements the write-ahead log underneath Store: an
// append-only file of CRC-framed ledger events (debit, refund,
// release-commit). The framing is designed for sequential recovery over a
// possibly torn tail: every record is independently checksummed, carries a
// strictly increasing sequence number, and the first frame that fails any
// check marks the end of the valid prefix — recovery truncates the file
// there and appends continue from the last good offset. A record is only
// acknowledged to the caller after fsync, which is what lets Session
// promise "debit durable before the mechanism runs".
//
// On-disk layout:
//
//	file   := magic record*
//	magic  := "PTWAL\x00\x01\n"                      (8 bytes)
//	record := len(u32) crc(u32) payload              (little-endian)
//	payload:= seq(u64) kind(u8) at(i64, unix nanos)
//	          eps(f64) keyLen(u16) key [sha(32)]     (sha on commits only)
//	          [epoch(u64)]                           (epoch records only)
//	          [epoch(u64) batchseq(u64)]             (seal records only)
//	          [traceLen(u8) trace]                   (optional, all kinds)
//
// The CRC is crc32.Castagnoli over the payload. Zero-length frames,
// frames longer than maxRecordPayload, bad CRCs, malformed payloads
// (unknown kind, non-finite ε, empty key) and non-increasing sequence
// numbers all terminate the valid prefix; duplicated frames (a record
// re-appended after a retried write) are skipped by the seq check without
// ending recovery.
//
// The trailing trace field links the record to the request trace that
// produced it and is optional in both directions: records written before
// it existed decode with an empty trace, and untraced appends omit the
// field entirely, so the magic/version did not need to change.

// walMagic identifies a ledger WAL file and its format version.
const walMagic = "PTWAL\x00\x01\n"

// EventKind discriminates the WAL record types.
type EventKind uint8

const (
	// EventDebit records an ε spend, made durable before the mechanism
	// it pays for is allowed to run.
	EventDebit EventKind = 1
	// EventRefund records an ε refund for a build that failed after its
	// debit, made durable before the failure is returned to the caller.
	EventRefund EventKind = 2
	// EventCommit records that a release's wire envelope is durable in the
	// artifact store under SHA, keyed by the release fingerprint in Key.
	EventCommit EventKind = 3
	// EventEpoch records a writer-epoch bump: the store's owner was
	// promoted to the dataset's single budget-writer at Epoch. The record
	// rides the WAL (durable, CRC-framed, replicated by log shipping) so
	// every node that has the prefix knows the highest epoch ever granted,
	// which is what makes fencing a pure function of replicated state.
	EventEpoch EventKind = 4
	// EventSeal records that a streaming dataset sealed stream epoch Epoch
	// into the release whose fingerprint is Key, consuming ingest batches
	// up to BatchSeq. Seals carry no ε of their own (the sealed release's
	// debit and commit are separate records, appended before the seal), so
	// they never enter ledger replay; they exist so a restarted or
	// replicated node can re-derive the served sliding window — which
	// epochs are live, in order — as a pure function of the WAL prefix.
	EventSeal EventKind = 5
)

func (k EventKind) String() string {
	switch k {
	case EventDebit:
		return "debit"
	case EventRefund:
		return "refund"
	case EventCommit:
		return "commit"
	case EventEpoch:
		return "epoch"
	case EventSeal:
		return "seal"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recovered or appended WAL record.
type Event struct {
	// Seq is the record's strictly increasing sequence number.
	Seq uint64
	// Kind is the record type.
	Kind EventKind
	// At is the wall-clock append time.
	At time.Time
	// Epsilon is the budget moved by a debit or refund (always positive;
	// zero for commits).
	Epsilon float64
	// Key identifies the release the event belongs to (the release
	// fingerprint for Session traffic).
	Key string
	// SHA is the content address of the committed envelope (commits only).
	SHA [32]byte
	// Epoch is the writer epoch granted by an epoch record, or the stream
	// epoch index frozen by a seal record (zero otherwise; both start at 1).
	Epoch uint64
	// BatchSeq is the highest ingest batch sequence number consumed by a
	// seal record (seal records only; zero otherwise).
	BatchSeq uint64
	// Trace is the request trace ID that produced the event ("" for
	// untraced appends and for records written before the field existed).
	Trace string
}

const (
	recHeaderLen     = 8 // len(u32) + crc(u32)
	recFixedLen      = 8 + 1 + 8 + 8 + 2
	maxKeyLen        = 4096
	maxTraceLen      = 255 // the length prefix is one byte
	maxRecordPayload = recFixedLen + maxKeyLen + 32 + 1 + maxTraceLen
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendEventPayload encodes e into buf (reused across appends, so steady
// WAL traffic performs no per-record allocations beyond growth).
func appendEventPayload(buf []byte, e *Event) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
	buf = append(buf, byte(e.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.At.UnixNano()))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Epsilon))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Key)))
	buf = append(buf, e.Key...)
	if e.Kind == EventCommit {
		buf = append(buf, e.SHA[:]...)
	}
	if e.Kind == EventEpoch {
		buf = binary.LittleEndian.AppendUint64(buf, e.Epoch)
	}
	if e.Kind == EventSeal {
		buf = binary.LittleEndian.AppendUint64(buf, e.Epoch)
		buf = binary.LittleEndian.AppendUint64(buf, e.BatchSeq)
	}
	if e.Trace != "" {
		t := e.Trace
		if len(t) > maxTraceLen {
			t = t[:maxTraceLen]
		}
		buf = append(buf, byte(len(t)))
		buf = append(buf, t...)
	}
	return buf
}

// decodeEventPayload parses one record payload. It returns an error for
// any malformed payload; it never panics on hostile input.
func decodeEventPayload(p []byte) (Event, error) {
	var e Event
	if len(p) < recFixedLen {
		return e, fmt.Errorf("store: record payload too short (%d bytes)", len(p))
	}
	e.Seq = binary.LittleEndian.Uint64(p[0:8])
	e.Kind = EventKind(p[8])
	e.At = time.Unix(0, int64(binary.LittleEndian.Uint64(p[9:17])))
	e.Epsilon = math.Float64frombits(binary.LittleEndian.Uint64(p[17:25]))
	keyLen := int(binary.LittleEndian.Uint16(p[25:27]))
	rest := p[recFixedLen:]
	if keyLen == 0 || keyLen > maxKeyLen || keyLen > len(rest) {
		return e, fmt.Errorf("store: record key length %d out of range", keyLen)
	}
	e.Key = string(rest[:keyLen])
	rest = rest[keyLen:]
	switch e.Kind {
	case EventDebit, EventRefund:
		if !(e.Epsilon > 0) || math.IsInf(e.Epsilon, 0) {
			return e, fmt.Errorf("store: %s record has unusable epsilon %v", e.Kind, e.Epsilon)
		}
	case EventCommit:
		if len(rest) < 32 {
			return e, fmt.Errorf("store: commit record has %d sha bytes, want 32", len(rest))
		}
		copy(e.SHA[:], rest)
		rest = rest[32:]
		if e.Epsilon != 0 {
			return e, fmt.Errorf("store: commit record carries epsilon %v", e.Epsilon)
		}
	case EventEpoch:
		if len(rest) < 8 {
			return e, fmt.Errorf("store: epoch record has %d epoch bytes, want 8", len(rest))
		}
		e.Epoch = binary.LittleEndian.Uint64(rest[:8])
		rest = rest[8:]
		if e.Epoch == 0 {
			return e, fmt.Errorf("store: epoch record grants epoch 0")
		}
		if e.Epsilon != 0 {
			return e, fmt.Errorf("store: epoch record carries epsilon %v", e.Epsilon)
		}
	case EventSeal:
		if len(rest) < 16 {
			return e, fmt.Errorf("store: seal record has %d body bytes, want 16", len(rest))
		}
		e.Epoch = binary.LittleEndian.Uint64(rest[:8])
		e.BatchSeq = binary.LittleEndian.Uint64(rest[8:16])
		rest = rest[16:]
		if e.Epoch == 0 {
			return e, fmt.Errorf("store: seal record seals epoch 0")
		}
		if e.Epsilon != 0 {
			return e, fmt.Errorf("store: seal record carries epsilon %v", e.Epsilon)
		}
	default:
		return e, fmt.Errorf("store: unknown record kind %d", uint8(e.Kind))
	}
	// Optional trailing trace: absent on records written before the field
	// existed and on untraced appends.
	if len(rest) > 0 {
		traceLen := int(rest[0])
		if len(rest) != 1+traceLen {
			return e, fmt.Errorf("store: %s record has %d trace bytes, header says %d", e.Kind, len(rest)-1, traceLen)
		}
		e.Trace = string(rest[1:])
	}
	return e, nil
}

// appendFrame encodes e as one complete CRC-framed record (header +
// payload) appended to buf. The encoding is deterministic: re-framing a
// decoded Event yields the exact bytes that were (or will be) on disk,
// which is what lets replication re-ship frames out of memory and still
// promise bit-identical WAL prefixes on every node.
func appendFrame(buf []byte, e *Event) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, recHeaderLen)...)
	buf = appendEventPayload(buf, e)
	payload := buf[start+recHeaderLen:]
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:start+8], crc32.Checksum(payload, castagnoli))
	return buf
}

// ParseFrames parses a bare frame sequence (no magic header) and fails on
// ANY defect: a short or oversized frame, a bad CRC, a malformed payload,
// or trailing garbage. It is the strict sibling of DecodeWAL used on the
// replication receive path — a replica must refuse a corrupt shipment
// outright rather than silently apply a prefix of it — and by the offline
// scrubber. Sequence ordering is NOT checked here; the applier owns that.
func ParseFrames(data []byte) ([]Event, error) {
	var events []Event
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < recHeaderLen {
			return nil, fmt.Errorf("store: truncated frame header at offset %d (%d trailing bytes)", off, len(rest))
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		if plen == 0 || plen > maxRecordPayload {
			return nil, fmt.Errorf("store: frame at offset %d has payload length %d out of range", off, plen)
		}
		if len(rest) < recHeaderLen+int(plen) {
			return nil, fmt.Errorf("store: truncated frame at offset %d (want %d payload bytes, have %d)", off, plen, len(rest)-recHeaderLen)
		}
		payload := rest[recHeaderLen : recHeaderLen+int(plen)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return nil, fmt.Errorf("store: frame at offset %d fails CRC", off)
		}
		e, err := decodeEventPayload(payload)
		if err != nil {
			return nil, fmt.Errorf("store: frame at offset %d: %w", off, err)
		}
		events = append(events, e)
		off += recHeaderLen + int(plen)
	}
	return events, nil
}

// DecodeWAL parses a WAL image (magic + frames) and returns the longest
// valid prefix of records plus the byte offset where that prefix ends.
// It is the pure recovery core shared by openWAL and the fuzzer: hostile
// bytes — torn writes, bad CRCs, zero-length or oversized frames,
// malformed payloads, non-increasing sequence numbers — end the prefix
// (or, for exact duplicates, are skipped) without error or panic.
func DecodeWAL(data []byte) (events []Event, validLen int64) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return nil, 0
	}
	off := int64(len(walMagic))
	lastSeq := uint64(0)
	for {
		rest := data[off:]
		if len(rest) < recHeaderLen {
			return events, off
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		if plen == 0 || plen > maxRecordPayload {
			return events, off
		}
		if len(rest) < recHeaderLen+int(plen) {
			return events, off // torn tail
		}
		payload := rest[recHeaderLen : recHeaderLen+int(plen)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return events, off
		}
		e, err := decodeEventPayload(payload)
		if err != nil {
			return events, off
		}
		if e.Seq <= lastSeq {
			// A duplicated frame (same or older seq) is tolerated — replaying
			// it would double-count a debit — but it does not end the prefix:
			// the frames after it are still CRC-valid appends.
			off += int64(recHeaderLen) + int64(plen)
			continue
		}
		lastSeq = e.Seq
		events = append(events, e)
		off += int64(recHeaderLen) + int64(plen)
	}
}

// wal is the open write-ahead log file.
type wal struct {
	f       *os.File
	path    string
	size    int64
	nextSeq uint64
	buf     []byte // scratch frame buffer, reused across appends

	// fsyncObs, when set, receives each record fsync's duration in
	// seconds (the /metrics WAL-fsync histogram).
	fsyncObs func(seconds float64)
}

// openWAL opens (creating if absent) the WAL at path and recovers its
// valid record prefix. A torn or corrupt tail is truncated away so that
// subsequent appends extend the valid prefix. New files are created with
// the magic header and synced before use.
func openWAL(path string) (*wal, []Event, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &wal{f: f, path: path, nextSeq: 1}
	if len(data) == 0 {
		if _, err := f.Write([]byte(walMagic)); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		w.size = int64(len(walMagic))
		return w, nil, nil
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		f.Close()
		return nil, nil, fmt.Errorf("store: %s is not a privtree ledger WAL", path)
	}
	events, validLen := DecodeWAL(data)
	if validLen < int64(len(data)) {
		// Torn or corrupt tail (e.g. a crash mid-append): drop it so the
		// next append continues the valid prefix.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.size = validLen
	for _, e := range events {
		if e.Seq >= w.nextSeq {
			w.nextSeq = e.Seq + 1
		}
	}
	return w, events, nil
}

// append frames, writes, and fsyncs one record. The record is durable
// when append returns nil. On a write error the torn bytes are truncated
// away so the file's valid prefix is preserved for later appends.
func (w *wal) append(e *Event) error {
	w.buf = appendFrame(w.buf[:0], e)
	return w.appendRaw(w.buf)
}

// appendRaw writes and fsyncs pre-framed record bytes (one frame from
// append, or a validated batch from AppendReplicated). The bytes are
// durable when it returns nil. On a write error the torn bytes are
// truncated away so the file's valid prefix is preserved; on a sync error
// durability is unknown and the caller must treat the operation as failed
// (recovery tolerates the possibly-durable records — orphan debits only
// over-count spent ε, the safe direction, and duplicates re-appended after
// a retry are skipped by the seq check).
func (w *wal) appendRaw(frames []byte) error {
	start := w.size
	crash("wal.before_write")
	if err := failpoint("wal.before_write"); err != nil {
		// Injected clean failure: nothing was written.
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	n, err := w.f.Write(frames)
	if n > 0 {
		// The bytes are in the file whether or not the write (or the sync
		// below) reports success, so the in-memory size must advance NOW: a
		// later append must land after them, never over them.
		w.size += int64(n)
	}
	if err != nil {
		// Best effort: drop the torn bytes so the valid prefix survives.
		if w.f.Truncate(start) == nil {
			if _, serr := w.f.Seek(start, 0); serr == nil {
				w.size = start
			}
		}
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	crash("wal.after_write")
	if err := failpoint("wal.after_write"); err != nil {
		// Injected sync-path failure: the bytes are in the file but their
		// durability is unknown — exactly the ENOSPC/EIO shape. The caller
		// must fail the operation; the possibly-durable record can only
		// over-count spent ε on recovery.
		return fmt.Errorf("store: syncing WAL: %w", err)
	}
	syncStart := time.Now()
	if err := w.f.Sync(); err != nil {
		// The record's durability is unknown; the caller must treat the
		// operation as failed. Recovery tolerates the possibly-durable
		// record: an orphan debit only over-counts spent ε (safe direction).
		return fmt.Errorf("store: syncing WAL: %w", err)
	}
	if w.fsyncObs != nil {
		w.fsyncObs(time.Since(syncStart).Seconds())
	}
	crash("wal.after_sync")
	return nil
}

// rotate truncates the WAL back to its header after a snapshot has made
// every current record redundant. If the process dies between the
// snapshot rename and this truncate, the stale records survive but are
// skipped on recovery by the snapshot's sequence cursor.
func (w *wal) rotate() error {
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(len(walMagic)), 0); err != nil {
		return err
	}
	w.size = int64(len(walMagic))
	return nil
}

func (w *wal) close() error { return w.f.Close() }
