//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive, non-blocking flock on dir/LOCK. Two
// processes running the same store would each recover the same spent ε
// and then independently spend the remaining budget — up to 2× the
// configured total — and interleave appends over each other's frames;
// the lock turns that misconfiguration into a startup error. The lock is
// advisory (flock), which every cooperating store honors; it dies with
// the process, so a SIGKILL never wedges the directory.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is locked by another process (flock: %w)", dir, err)
	}
	return f, nil
}

func unlockDir(f *os.File) error {
	if f == nil {
		return nil
	}
	// Closing the descriptor releases the flock.
	return f.Close()
}
