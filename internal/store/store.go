// Package store gives privtree sessions crash-safe persistence: an
// append-only, fsync-on-debit write-ahead log of privacy-ledger events
// plus a content-addressed artifact store for release wire envelopes.
//
// Privacy argument. A privacy ledger that forgets a debit is an ε
// violation: sequential composition bounds the privacy loss of everything
// ever released about a dataset by the SUM of its debits, so an
// accountant that restarts empty lets an adversary who can bounce the
// process spend the budget again — unbounded ε. The store enforces the
// only safe ordering:
//
//   - a debit is durable (appended and fsynced) BEFORE the mechanism it
//     pays for runs, so no release can exist whose debit a crash forgets;
//   - a refund is durable BEFORE the build failure is returned, so budget
//     credited back in memory cannot silently out-live its justification;
//   - a release's envelope is durable (content-addressed file, then a
//     commit record) before the release is served as cached across
//     restarts, so a recovered cache hit re-publishes exactly the bytes
//     already paid for — post-processing, never a new spend.
//
// Crashes therefore only ever lose refunds and commits, never debits:
// recovered spent-ε is ≥ the ε of every acknowledged debit. The failure
// direction is over-counting (wasted budget), never under-counting
// (privacy violation).
//
// On disk a store directory holds:
//
//	ledger.wal      CRC-framed event log (see wal.go)
//	snapshot.json   compaction snapshot: events+commits up to a seq cursor
//	artifacts/      <sha256(envelope)>.json, written via tmp+fsync+rename
//
// Recovery is a single sequential pass: load the snapshot (if any), then
// replay WAL records with seq beyond the snapshot cursor; a torn tail is
// truncated. Compact folds the current state into a fresh snapshot and
// rotates the WAL.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrFenced marks every mutation rejected because a higher writer epoch
// exists: this store has durably ceded budget-writer authority and must
// never append again. Check with errors.Is.
var ErrFenced = errors.New("store: fenced by a higher writer epoch")

// ErrAppend marks a durable write (WAL append or artifact store) that
// failed for I/O reasons — ENOSPC, EIO, a torn disk. The operation did not
// complete; budget already debited for it may be over-counted on recovery
// (the safe direction) but is never silently leaked. Check with errors.Is;
// servers map it to 503 store_unavailable.
var ErrAppend = errors.New("store: durable write failed")

// CrashFunc is a fault-injection hook: tests install one with
// SetCrashHook and kill the process at a named fault point to prove the
// recovery invariants. The points sit at every durability boundary —
// before/after the WAL write, after its fsync, after the artifact temp
// write, after its rename, and between artifact durability and the
// commit record.
type CrashFunc func(point string)

var crashHook atomic.Pointer[CrashFunc]

// SetCrashHook installs f (nil to clear) as the process-wide fault-point
// hook. Production code never sets it; the hot path pays one atomic load.
func SetCrashHook(f CrashFunc) {
	if f == nil {
		crashHook.Store(nil)
		return
	}
	crashHook.Store(&f)
}

// CrashPoints enumerates every fault point, in the order they occur on
// the append/commit paths; the crash-injection tests iterate it.
var CrashPoints = []string{
	"wal.before_write",
	"wal.after_write",
	"wal.after_sync",
	"artifact.after_write",
	"artifact.after_rename",
	"commit.before_record",
	"snapshot.after_rename",
}

func crash(point string) {
	if f := crashHook.Load(); f != nil {
		(*f)(point)
	}
}

// FailFunc is the error-returning sibling of CrashFunc: instead of killing
// the process at a fault point, the hook makes the surrounding I/O report
// the returned error (ENOSPC-style), driving the clean-failure paths that
// SIGKILL injection cannot reach. Returning nil lets the operation
// proceed. Fail points reuse the CrashPoints names; the ones that matter
// are wal.before_write (nothing written), wal.after_write (bytes written,
// durability unknown — a failed fsync), artifact.after_write, and
// commit.before_record.
type FailFunc func(point string) error

var failHook atomic.Pointer[FailFunc]

// SetFailHook installs f (nil to clear) as the process-wide error
// injection hook. Production code never sets it; the hot path pays one
// atomic load.
func SetFailHook(f FailFunc) {
	if f == nil {
		failHook.Store(nil)
		return
	}
	failHook.Store(&f)
}

func failpoint(point string) error {
	if f := failHook.Load(); f != nil {
		return (*f)(point)
	}
	return nil
}

// Store is a crash-safe persistence root for one privacy ledger and its
// release artifacts. It is safe for concurrent use; every mutating call
// returns only after the mutation is durable.
type Store struct {
	mu   sync.Mutex
	dir  string
	wal  *wal
	lock *os.File // exclusive flock on dir/LOCK (nil on non-unix)

	closed      bool
	snapshotSeq uint64

	events  []Event // debits and refunds, replay order
	commits []Event // release commits, replay order
	epochs  []Event // writer-epoch grants, replay order
	seals   []Event // stream epoch seals, replay order
	byKey   map[string]int

	// writerEpoch is the highest epoch granted in the replicated history
	// (0 before any promotion). fencedAt, when non-zero, is the durable
	// fence: a writer at that epoch exists elsewhere and every local
	// mutation is rejected with ErrFenced.
	writerEpoch uint64
	fencedAt    uint64

	snapshotBytes int64
	artifactBytes int64
}

// epochKey is the WAL record key used for writer-epoch grants (records
// require a non-empty key; epoch records belong to the store, not to any
// release).
const epochKey = "writer-epoch"

const snapshotVersion = 1

// snapshot.json wire form. SHA is hex so the file stays greppable.
type snapshotFile struct {
	Version int         `json:"privtree_store_snapshot"`
	Seq     uint64      `json:"seq"`
	Events  []snapEvent `json:"events"`
	Commits []snapEvent `json:"commits"`
	Epochs  []snapEvent `json:"epochs,omitempty"`
	Seals   []snapEvent `json:"seals,omitempty"`
}

type snapEvent struct {
	Seq      uint64  `json:"seq"`
	Kind     string  `json:"kind"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	Key      string  `json:"key"`
	At       int64   `json:"at_unix_nano"`
	SHA      string  `json:"sha256,omitempty"`
	Epoch    uint64  `json:"epoch,omitempty"`
	BatchSeq uint64  `json:"batch_seq,omitempty"`
	Trace    string  `json:"trace,omitempty"`
}

// Open opens (creating if needed) the store rooted at dir and recovers
// its state: snapshot first, then the WAL's valid record prefix. The
// recovered events and commits are available from Events and Commits.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "artifacts"), 0o755); err != nil {
		return nil, err
	}
	// One process per store: concurrent writers would double-spend the
	// recovered budget and interleave frames over each other.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, lock: lock, byKey: make(map[string]int)}
	if err := s.loadSnapshot(); err != nil {
		unlockDir(lock)
		return nil, err
	}
	w, tail, err := openWAL(filepath.Join(dir, "ledger.wal"))
	if err != nil {
		unlockDir(lock)
		return nil, err
	}
	s.wal = w
	if w.nextSeq <= s.snapshotSeq {
		w.nextSeq = s.snapshotSeq + 1
	}
	for i := range tail {
		e := tail[i]
		if e.Seq <= s.snapshotSeq {
			continue // already folded into the snapshot before a rotate crash
		}
		s.apply(e)
	}
	if err := s.scanArtifacts(); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.loadFence(); err != nil {
		s.Close()
		return nil, err
	}
	// Make the directory entries themselves durable (first creation).
	if err := syncDir(dir); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// loadFence reads the durable FENCED marker, if any. The marker survives
// restarts by design: a fenced store stays fenced forever — reviving the
// old primary must never revive its write authority.
func (s *Store) loadFence() error {
	blob, err := os.ReadFile(filepath.Join(s.dir, "FENCED"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	epoch, perr := strconv.ParseUint(strings.TrimSpace(string(blob)), 10, 64)
	if perr != nil || epoch == 0 {
		return fmt.Errorf("store: corrupt FENCED marker in %s: %q", s.dir, strings.TrimSpace(string(blob)))
	}
	s.fencedAt = epoch
	return nil
}

// apply folds one recovered or appended event into the in-memory state.
// Epoch grants live in their own slice so Events() — the input to ledger
// replay — carries exactly the debit/refund history it always did.
func (s *Store) apply(e Event) {
	switch e.Kind {
	case EventCommit:
		if _, dup := s.byKey[e.Key]; dup {
			return // duplicated commit for a key: first one wins
		}
		s.commits = append(s.commits, e)
		s.byKey[e.Key] = len(s.commits) - 1
	case EventEpoch:
		s.epochs = append(s.epochs, e)
		if e.Epoch > s.writerEpoch {
			s.writerEpoch = e.Epoch
		}
	case EventSeal:
		s.seals = append(s.seals, e)
	default:
		s.events = append(s.events, e)
	}
}

func (s *Store) loadSnapshot() error {
	path := filepath.Join(s.dir, "snapshot.json")
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var snap snapshotFile
	if err := json.Unmarshal(blob, &snap); err != nil {
		return fmt.Errorf("store: corrupt snapshot %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("store: unsupported snapshot version %d", snap.Version)
	}
	restore := func(kind EventKind, rows []snapEvent) error {
		for _, r := range rows {
			e := Event{Seq: r.Seq, Epsilon: r.Epsilon, Key: r.Key, At: time.Unix(0, r.At), Trace: r.Trace}
			switch {
			case kind == EventCommit && r.Kind == "commit":
				sha, err := hex.DecodeString(r.SHA)
				if err != nil || len(sha) != 32 {
					return fmt.Errorf("store: snapshot commit %q has bad sha %q", r.Key, r.SHA)
				}
				copy(e.SHA[:], sha)
				e.Kind = EventCommit
			case kind == EventEpoch && r.Kind == "epoch":
				if r.Epoch == 0 {
					return fmt.Errorf("store: snapshot epoch row grants epoch 0")
				}
				e.Epoch = r.Epoch
				e.Kind = EventEpoch
			case kind == EventSeal && r.Kind == "seal":
				if r.Epoch == 0 {
					return fmt.Errorf("store: snapshot seal row seals epoch 0")
				}
				e.Epoch = r.Epoch
				e.BatchSeq = r.BatchSeq
				e.Kind = EventSeal
			case kind == EventDebit && r.Kind == "debit":
				e.Kind = EventDebit
			case kind == EventDebit && r.Kind == "refund":
				e.Kind = EventRefund
			default:
				return fmt.Errorf("store: snapshot row has unexpected kind %q", r.Kind)
			}
			if (e.Kind == EventDebit || e.Kind == EventRefund) && (!(e.Epsilon > 0) || math.IsInf(e.Epsilon, 0)) {
				return fmt.Errorf("store: snapshot %s row has unusable epsilon %v", r.Kind, r.Epsilon)
			}
			s.apply(e)
		}
		return nil
	}
	if err := restore(EventDebit, snap.Events); err != nil {
		return err
	}
	if err := restore(EventCommit, snap.Commits); err != nil {
		return err
	}
	if err := restore(EventEpoch, snap.Epochs); err != nil {
		return err
	}
	if err := restore(EventSeal, snap.Seals); err != nil {
		return err
	}
	s.snapshotSeq = snap.Seq
	s.snapshotBytes = int64(len(blob))
	return nil
}

// scanArtifacts totals the artifact bytes on disk (for the store-bytes
// gauge) without reading file contents.
func (s *Store) scanArtifacts() error {
	entries, err := os.ReadDir(filepath.Join(s.dir, "artifacts"))
	if err != nil {
		return err
	}
	s.artifactBytes = 0
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		fi, err := ent.Info()
		if err != nil {
			continue
		}
		s.artifactBytes += fi.Size()
	}
	return nil
}

// Events returns the recovered-plus-appended ledger events (debits and
// refunds) in order.
func (s *Store) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Commits returns the committed releases in commit order.
func (s *Store) Commits() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.commits))
	copy(out, s.commits)
	return out
}

// SpentEpsilon folds the event log into net spent ε, mirroring the
// ledger's clamp-at-zero refund arithmetic.
func (s *Store) SpentEpsilon() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	spent := 0.0
	for _, e := range s.events {
		switch e.Kind {
		case EventDebit:
			spent += e.Epsilon
		case EventRefund:
			spent -= e.Epsilon
			if spent < 0 {
				spent = 0
			}
		}
	}
	return spent
}

func (s *Store) appendLocked(e *Event) error {
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.dir)
	}
	if s.fencedAt != 0 {
		return fmt.Errorf("store: %s: writer epoch %d superseded by %d: %w", s.dir, s.writerEpoch, s.fencedAt, ErrFenced)
	}
	if e.Key == "" || len(e.Key) > maxKeyLen {
		return fmt.Errorf("store: record key must be 1..%d bytes, got %d", maxKeyLen, len(e.Key))
	}
	// The sequence number is burned even when the append FAILS: a record
	// whose fsync errored may still be durable, and if a retry reused its
	// seq the recovery's duplicate-skip would silently drop the retried —
	// acknowledged — record. A gap in the sequence is harmless (recovery
	// only requires strictly increasing); a collision under-counts ε.
	e.Seq = s.wal.nextSeq
	s.wal.nextSeq++
	if err := s.wal.append(e); err != nil {
		return fmt.Errorf("%w: %w", ErrAppend, err)
	}
	s.apply(*e)
	return nil
}

// AppendDebit makes an ε debit durable: the call returns only after the
// record is written and fsynced. Callers must invoke it BEFORE running
// the mechanism the debit pays for.
func (s *Store) AppendDebit(eps float64, key string) error {
	return s.AppendDebitTraced(eps, key, "")
}

// AppendDebitTraced is AppendDebit with the request trace ID persisted in
// the record, so recovered audit trails keep naming the request that
// spent each unit of ε across restarts.
func (s *Store) AppendDebitTraced(eps float64, key, trace string) error {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("store: debit epsilon must be positive and finite, got %v", eps)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(&Event{Kind: EventDebit, At: time.Now(), Epsilon: eps, Key: key, Trace: trace})
}

// AppendRefund makes an ε refund durable. Callers must invoke it BEFORE
// returning the build failure that justifies the refund.
func (s *Store) AppendRefund(eps float64, key string) error {
	return s.AppendRefundTraced(eps, key, "")
}

// AppendRefundTraced is AppendRefund with the request trace ID persisted
// in the record.
func (s *Store) AppendRefundTraced(eps float64, key, trace string) error {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("store: refund epsilon must be positive and finite, got %v", eps)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(&Event{Kind: EventRefund, At: time.Now(), Epsilon: eps, Key: key, Trace: trace})
}

// CommitRelease persists envelope in the content-addressed artifact
// store and then appends the commit record binding key (the release
// fingerprint) to the envelope's SHA-256. The artifact is durable before
// the record: a crash in between leaves an orphan file (harmless, and
// reclaimed by the next commit of the same content), never a record
// pointing at missing bytes.
func (s *Store) CommitRelease(key string, envelope []byte) error {
	return s.CommitReleaseTraced(key, envelope, "")
}

// CommitReleaseTraced is CommitRelease with the request trace ID
// persisted in the commit record.
func (s *Store) CommitReleaseTraced(key string, envelope []byte, trace string) error {
	if len(envelope) == 0 {
		return fmt.Errorf("store: refusing to commit empty envelope for %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.dir)
	}
	if i, ok := s.byKey[key]; ok {
		if s.commits[i].SHA != sha256.Sum256(envelope) {
			return fmt.Errorf("store: key %q already committed with different content", key)
		}
		return nil // idempotent re-commit
	}
	if s.fencedAt != 0 {
		return fmt.Errorf("store: %s: writer epoch %d superseded by %d: %w", s.dir, s.writerEpoch, s.fencedAt, ErrFenced)
	}
	sha, size, err := s.writeArtifact(envelope)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrAppend, err)
	}
	crash("commit.before_record")
	if err := failpoint("commit.before_record"); err != nil {
		return fmt.Errorf("%w: %w", ErrAppend, err)
	}
	if err := s.appendLocked(&Event{Kind: EventCommit, At: time.Now(), Key: key, SHA: sha, Trace: trace}); err != nil {
		return err
	}
	s.artifactBytes += size
	return nil
}

// writeArtifact stores blob as artifacts/<sha256>.json via the
// tmp → fsync → rename → dir-fsync dance, so a crash never leaves a
// partially written file under the final name. Returns the content
// address and the bytes newly added on disk (0 when deduplicated).
func (s *Store) writeArtifact(blob []byte) ([32]byte, int64, error) {
	sha := sha256.Sum256(blob)
	dir := filepath.Join(s.dir, "artifacts")
	final := filepath.Join(dir, hex.EncodeToString(sha[:])+".json")
	if _, err := os.Stat(final); err == nil {
		return sha, 0, nil // content-addressed: same name is same bytes
	}
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return sha, 0, err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return sha, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return sha, 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return sha, 0, err
	}
	crash("artifact.after_write")
	if err := failpoint("artifact.after_write"); err != nil {
		os.Remove(tmp)
		return sha, 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return sha, 0, err
	}
	crash("artifact.after_rename")
	if err := syncDir(dir); err != nil {
		return sha, 0, err
	}
	return sha, int64(len(blob)), nil
}

// LoadArtifact reads a committed envelope back by content address and
// verifies the bytes against it, so silent on-disk corruption surfaces
// as an error instead of a forged release.
func (s *Store) LoadArtifact(sha [32]byte) ([]byte, error) {
	path := filepath.Join(s.dir, "artifacts", hex.EncodeToString(sha[:])+".json")
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if sha256.Sum256(blob) != sha {
		return nil, fmt.Errorf("store: artifact %s fails its content hash", path)
	}
	return blob, nil
}

// Seals returns the stream epoch-seal records in replay order. Each seal
// binds one sealed stream epoch to the fingerprint (Key) of the release
// frozen for it and the highest ingest batch sequence it consumed; the
// served sliding window is a pure function of this history.
func (s *Store) Seals() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.seals))
	copy(out, s.seals)
	return out
}

// LastSealedEpoch returns the stream epoch of the most recent seal record
// (0 before any seal).
func (s *Store) LastSealedEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.seals) == 0 {
		return 0
	}
	return s.seals[len(s.seals)-1].Epoch
}

// AppendSeal makes a stream epoch seal durable: epoch is the 1-based
// stream epoch index being frozen, key is the fingerprint of the release
// built for it (whose debit and commit records must already be durable —
// the seal is the LAST record of a seal transaction, so a crash before it
// leaves a paid-for release outside the window, never a window entry
// without its ε), and batchSeq is the highest ingest batch sequence the
// epoch consumed. Seal epochs must be strictly increasing.
func (s *Store) AppendSeal(epoch, batchSeq uint64, key, trace string) error {
	if epoch == 0 {
		return fmt.Errorf("store: cannot seal epoch 0")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.seals); n > 0 && epoch <= s.seals[n-1].Epoch {
		return fmt.Errorf("store: seal epoch %d not after last sealed epoch %d", epoch, s.seals[n-1].Epoch)
	}
	return s.appendLocked(&Event{Kind: EventSeal, At: time.Now(), Key: key, Epoch: epoch, BatchSeq: batchSeq, Trace: trace})
}

// Epochs returns the writer-epoch grant records in replay order.
func (s *Store) Epochs() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.epochs))
	copy(out, s.epochs)
	return out
}

// WriterEpoch returns the highest writer epoch granted in the store's
// history (0 before any promotion).
func (s *Store) WriterEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writerEpoch
}

// FencedEpoch reports whether the store is fenced and, if so, the epoch of
// the writer that superseded it.
func (s *Store) FencedEpoch() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fencedAt, s.fencedAt != 0
}

// Promote grants this store the next writer epoch by appending a durable
// epoch record. The record rides the WAL like any other event — it is
// fsynced before Promote returns, replicated by log shipping, and replayed
// on recovery — so once a promotion is acknowledged every node that ever
// syncs past it knows a writer at that epoch exists. Returns the granted
// epoch. A fenced store cannot be promoted.
func (s *Store) Promote(trace string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: %s is closed", s.dir)
	}
	next := s.writerEpoch + 1
	e := &Event{Kind: EventEpoch, At: time.Now(), Key: epochKey, Epoch: next, Trace: trace}
	if err := s.appendLocked(e); err != nil {
		return 0, err
	}
	return next, nil
}

// Fence durably marks this store as superseded by a writer at epoch:
// every subsequent append (debit, refund, commit, promotion, replicated
// batch) is rejected with ErrFenced, across restarts. Fencing the live
// writer itself is refused — epoch must exceed the store's own writer
// epoch — so a confused or malicious fence request can never take down
// the node that actually holds the budget-writer role. Fence is
// idempotent and only ever raises the fence epoch.
func (s *Store) Fence(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.dir)
	}
	if epoch == 0 {
		return fmt.Errorf("store: cannot fence at epoch 0")
	}
	if epoch <= s.writerEpoch {
		return fmt.Errorf("store: refusing fence at epoch %d: this store holds writer epoch %d", epoch, s.writerEpoch)
	}
	if s.fencedAt >= epoch {
		return nil
	}
	final := filepath.Join(s.dir, "FENCED")
	tmp := final + ".tmp"
	blob := []byte(strconv.FormatUint(epoch, 10) + "\n")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.fencedAt = epoch
	return nil
}

// FramesSince re-frames every record with sequence number beyond afterSeq
// into shippable WAL frame bytes, up to roughly maxBytes (at least one
// frame is always returned when any record qualifies, so a pull always
// makes progress). It returns the frames and the sequence number of the
// last record included. Frames are re-encoded from the in-memory history
// rather than read from disk — the encoding is deterministic, so the bytes
// match what the WAL held before any compaction, and shipping keeps
// working after Compact rotates the log away.
func (s *Store) FramesSince(afterSeq uint64, maxBytes int) ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, fmt.Errorf("store: %s is closed", s.dir)
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	var pending []*Event
	for i := range s.events {
		if s.events[i].Seq > afterSeq {
			pending = append(pending, &s.events[i])
		}
	}
	for i := range s.commits {
		if s.commits[i].Seq > afterSeq {
			pending = append(pending, &s.commits[i])
		}
	}
	for i := range s.epochs {
		if s.epochs[i].Seq > afterSeq {
			pending = append(pending, &s.epochs[i])
		}
	}
	for i := range s.seals {
		if s.seals[i].Seq > afterSeq {
			pending = append(pending, &s.seals[i])
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].Seq < pending[j].Seq })
	var buf []byte
	last := afterSeq
	for _, e := range pending {
		mark := len(buf)
		buf = appendFrame(buf, e)
		if len(buf) > maxBytes && mark > 0 {
			buf = buf[:mark]
			break
		}
		last = e.Seq
	}
	return buf, last, nil
}

// AppendReplicated applies a batch of shipped WAL frames. The entire
// batch is validated before a single byte is written — strict framing
// (ParseFrames), monotonic epochs, and every commit's artifact already
// present on disk — then the accepted frames are appended to the local
// WAL verbatim, preserving the primary's sequence numbers, and fsynced as
// one batch. Frames at or below the local last sequence are skipped (a
// re-poll after a partial apply re-ships bytes the replica already has).
// Because the primary's frames are applied byte-for-byte at the same
// sequence numbers, a caught-up replica's WAL is a bit-identical prefix
// of the primary's history, and a promotion simply continues the same
// numbering. Returns the newly applied events in order.
func (s *Store) AppendReplicated(frames []byte) ([]Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: %s is closed", s.dir)
	}
	if s.fencedAt != 0 {
		return nil, fmt.Errorf("store: %s: writer epoch %d superseded by %d: %w", s.dir, s.writerEpoch, s.fencedAt, ErrFenced)
	}
	events, err := ParseFrames(frames)
	if err != nil {
		return nil, fmt.Errorf("store: rejecting replicated batch: %w", err)
	}
	lastSeq := s.wal.nextSeq - 1
	epoch := s.writerEpoch
	sealEpoch := uint64(0)
	if n := len(s.seals); n > 0 {
		sealEpoch = s.seals[n-1].Epoch
	}
	accepted := make([]Event, 0, len(events))
	for _, e := range events {
		if e.Seq <= lastSeq {
			continue // already applied (overlapping re-ship)
		}
		lastSeq = e.Seq
		switch e.Kind {
		case EventEpoch:
			if e.Epoch <= epoch {
				return nil, fmt.Errorf("store: rejecting replicated batch: epoch record grants %d but local writer epoch is already %d", e.Epoch, epoch)
			}
			epoch = e.Epoch
		case EventSeal:
			if e.Epoch <= sealEpoch {
				return nil, fmt.Errorf("store: rejecting replicated batch: seal record for epoch %d but local last sealed epoch is already %d", e.Epoch, sealEpoch)
			}
			sealEpoch = e.Epoch
		case EventCommit:
			if !s.hasArtifactLocked(e.SHA) {
				return nil, fmt.Errorf("store: rejecting replicated batch: commit %q references missing artifact %s (fetch artifacts before applying frames)", e.Key, hex.EncodeToString(e.SHA[:]))
			}
		}
		accepted = append(accepted, e)
	}
	if len(accepted) == 0 {
		return nil, nil
	}
	buf := make([]byte, 0, len(frames))
	for i := range accepted {
		buf = appendFrame(buf, &accepted[i])
	}
	if err := s.wal.appendRaw(buf); err != nil {
		// Durability of the batch is unknown; in-memory state is not
		// advanced, so the next poll re-ships the same frames. If the bytes
		// did land, recovery's duplicate-skip folds the re-append away.
		return nil, fmt.Errorf("%w: %w", ErrAppend, err)
	}
	for _, e := range accepted {
		s.apply(e)
	}
	s.wal.nextSeq = accepted[len(accepted)-1].Seq + 1
	return accepted, nil
}

// AddrString returns the hex content address for sha.
func AddrString(sha [32]byte) string { return hex.EncodeToString(sha[:]) }

// VerifyAddr reports whether blob hashes to the hex content address.
func VerifyAddr(shaHex string, blob []byte) bool {
	want, err := parseSHA(shaHex)
	if err != nil {
		return false
	}
	return sha256.Sum256(blob) == want
}

// parseSHA decodes a 64-hex-digit SHA-256 content address.
func parseSHA(hexStr string) ([32]byte, error) {
	var sha [32]byte
	raw, err := hex.DecodeString(hexStr)
	if err != nil || len(raw) != 32 {
		return sha, fmt.Errorf("store: %q is not a sha256 content address", hexStr)
	}
	copy(sha[:], raw)
	return sha, nil
}

func (s *Store) hasArtifactLocked(sha [32]byte) bool {
	path := filepath.Join(s.dir, "artifacts", hex.EncodeToString(sha[:])+".json")
	_, err := os.Stat(path)
	return err == nil
}

// HasArtifact reports whether the artifact with the given hex content
// address is present on disk.
func (s *Store) HasArtifact(shaHex string) bool {
	sha, err := parseSHA(shaHex)
	if err != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hasArtifactLocked(sha)
}

// PutArtifact stores blob under its hex content address, verifying the
// hash on receipt — a replica must never trust shipped artifact bytes
// without proving they are the bytes the commit record names.
func (s *Store) PutArtifact(shaHex string, blob []byte) error {
	want, err := parseSHA(shaHex)
	if err != nil {
		return err
	}
	if sha256.Sum256(blob) != want {
		return fmt.Errorf("store: artifact bytes do not hash to %s", shaHex)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.dir)
	}
	_, size, err := s.writeArtifact(blob)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrAppend, err)
	}
	s.artifactBytes += size
	return nil
}

// ArtifactByAddr loads a committed envelope by hex content address,
// verifying the bytes against it (the log-shipping artifact fetch path).
func (s *Store) ArtifactByAddr(shaHex string) ([]byte, error) {
	sha, err := parseSHA(shaHex)
	if err != nil {
		return nil, err
	}
	return s.LoadArtifact(sha)
}

// Compact folds the current state into a fresh snapshot and rotates the
// WAL. Recovery after a crash at any point is consistent: the snapshot
// becomes visible atomically (rename), and stale WAL records left by a
// crash before the rotate are skipped via the snapshot's seq cursor.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.dir)
	}
	snap := snapshotFile{Version: snapshotVersion, Seq: s.wal.nextSeq - 1}
	for _, e := range s.events {
		snap.Events = append(snap.Events, snapEvent{
			Seq: e.Seq, Kind: e.Kind.String(), Epsilon: e.Epsilon, Key: e.Key, At: e.At.UnixNano(),
			Trace: e.Trace})
	}
	for _, e := range s.commits {
		snap.Commits = append(snap.Commits, snapEvent{
			Seq: e.Seq, Kind: e.Kind.String(), Key: e.Key, At: e.At.UnixNano(),
			SHA: hex.EncodeToString(e.SHA[:]), Trace: e.Trace})
	}
	for _, e := range s.epochs {
		snap.Epochs = append(snap.Epochs, snapEvent{
			Seq: e.Seq, Kind: e.Kind.String(), Key: e.Key, At: e.At.UnixNano(),
			Epoch: e.Epoch, Trace: e.Trace})
	}
	for _, e := range s.seals {
		snap.Seals = append(snap.Seals, snapEvent{
			Seq: e.Seq, Kind: e.Kind.String(), Key: e.Key, At: e.At.UnixNano(),
			Epoch: e.Epoch, BatchSeq: e.BatchSeq, Trace: e.Trace})
	}
	blob, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	final := filepath.Join(s.dir, "snapshot.json")
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	crash("snapshot.after_rename")
	s.snapshotSeq = snap.Seq
	s.snapshotBytes = int64(len(blob))
	return s.wal.rotate()
}

// SizeBytes returns the store's on-disk footprint: WAL + snapshot +
// artifacts. It is the /metrics store-bytes gauge.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.size + s.snapshotBytes + s.artifactBytes
}

// LastSeq returns the highest WAL sequence number issued so far (0 on a
// fresh store). It is the /metrics WAL-seq gauge.
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.nextSeq - 1
}

// SetFsyncObserver installs fn (nil to clear) to receive the duration,
// in seconds, of every WAL fsync. The server points this at a latency
// histogram; fn runs on the append path under the store lock, so it must
// be cheap and must not call back into the store.
func (s *Store) SetFsyncObserver(fn func(seconds float64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal.fsyncObs = fn
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the WAL file handle. Close is idempotent; every
// acknowledged mutation is already durable, so Close never loses data.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.wal.close()
	if uerr := unlockDir(s.lock); err == nil {
		err = uerr
	}
	return err
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
