// Package store gives privtree sessions crash-safe persistence: an
// append-only, fsync-on-debit write-ahead log of privacy-ledger events
// plus a content-addressed artifact store for release wire envelopes.
//
// Privacy argument. A privacy ledger that forgets a debit is an ε
// violation: sequential composition bounds the privacy loss of everything
// ever released about a dataset by the SUM of its debits, so an
// accountant that restarts empty lets an adversary who can bounce the
// process spend the budget again — unbounded ε. The store enforces the
// only safe ordering:
//
//   - a debit is durable (appended and fsynced) BEFORE the mechanism it
//     pays for runs, so no release can exist whose debit a crash forgets;
//   - a refund is durable BEFORE the build failure is returned, so budget
//     credited back in memory cannot silently out-live its justification;
//   - a release's envelope is durable (content-addressed file, then a
//     commit record) before the release is served as cached across
//     restarts, so a recovered cache hit re-publishes exactly the bytes
//     already paid for — post-processing, never a new spend.
//
// Crashes therefore only ever lose refunds and commits, never debits:
// recovered spent-ε is ≥ the ε of every acknowledged debit. The failure
// direction is over-counting (wasted budget), never under-counting
// (privacy violation).
//
// On disk a store directory holds:
//
//	ledger.wal      CRC-framed event log (see wal.go)
//	snapshot.json   compaction snapshot: events+commits up to a seq cursor
//	artifacts/      <sha256(envelope)>.json, written via tmp+fsync+rename
//
// Recovery is a single sequential pass: load the snapshot (if any), then
// replay WAL records with seq beyond the snapshot cursor; a torn tail is
// truncated. Compact folds the current state into a fresh snapshot and
// rotates the WAL.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// CrashFunc is a fault-injection hook: tests install one with
// SetCrashHook and kill the process at a named fault point to prove the
// recovery invariants. The points sit at every durability boundary —
// before/after the WAL write, after its fsync, after the artifact temp
// write, after its rename, and between artifact durability and the
// commit record.
type CrashFunc func(point string)

var crashHook atomic.Pointer[CrashFunc]

// SetCrashHook installs f (nil to clear) as the process-wide fault-point
// hook. Production code never sets it; the hot path pays one atomic load.
func SetCrashHook(f CrashFunc) {
	if f == nil {
		crashHook.Store(nil)
		return
	}
	crashHook.Store(&f)
}

// CrashPoints enumerates every fault point, in the order they occur on
// the append/commit paths; the crash-injection tests iterate it.
var CrashPoints = []string{
	"wal.before_write",
	"wal.after_write",
	"wal.after_sync",
	"artifact.after_write",
	"artifact.after_rename",
	"commit.before_record",
	"snapshot.after_rename",
}

func crash(point string) {
	if f := crashHook.Load(); f != nil {
		(*f)(point)
	}
}

// Store is a crash-safe persistence root for one privacy ledger and its
// release artifacts. It is safe for concurrent use; every mutating call
// returns only after the mutation is durable.
type Store struct {
	mu   sync.Mutex
	dir  string
	wal  *wal
	lock *os.File // exclusive flock on dir/LOCK (nil on non-unix)

	closed      bool
	snapshotSeq uint64

	events  []Event // debits and refunds, replay order
	commits []Event // release commits, replay order
	byKey   map[string]int

	snapshotBytes int64
	artifactBytes int64
}

const snapshotVersion = 1

// snapshot.json wire form. SHA is hex so the file stays greppable.
type snapshotFile struct {
	Version int         `json:"privtree_store_snapshot"`
	Seq     uint64      `json:"seq"`
	Events  []snapEvent `json:"events"`
	Commits []snapEvent `json:"commits"`
}

type snapEvent struct {
	Seq     uint64  `json:"seq"`
	Kind    string  `json:"kind"`
	Epsilon float64 `json:"epsilon,omitempty"`
	Key     string  `json:"key"`
	At      int64   `json:"at_unix_nano"`
	SHA     string  `json:"sha256,omitempty"`
	Trace   string  `json:"trace,omitempty"`
}

// Open opens (creating if needed) the store rooted at dir and recovers
// its state: snapshot first, then the WAL's valid record prefix. The
// recovered events and commits are available from Events and Commits.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "artifacts"), 0o755); err != nil {
		return nil, err
	}
	// One process per store: concurrent writers would double-spend the
	// recovered budget and interleave frames over each other.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, lock: lock, byKey: make(map[string]int)}
	if err := s.loadSnapshot(); err != nil {
		unlockDir(lock)
		return nil, err
	}
	w, tail, err := openWAL(filepath.Join(dir, "ledger.wal"))
	if err != nil {
		unlockDir(lock)
		return nil, err
	}
	s.wal = w
	if w.nextSeq <= s.snapshotSeq {
		w.nextSeq = s.snapshotSeq + 1
	}
	for i := range tail {
		e := tail[i]
		if e.Seq <= s.snapshotSeq {
			continue // already folded into the snapshot before a rotate crash
		}
		s.apply(e)
	}
	if err := s.scanArtifacts(); err != nil {
		s.Close()
		return nil, err
	}
	// Make the directory entries themselves durable (first creation).
	if err := syncDir(dir); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// apply folds one recovered or appended event into the in-memory state.
func (s *Store) apply(e Event) {
	switch e.Kind {
	case EventCommit:
		if _, dup := s.byKey[e.Key]; dup {
			return // duplicated commit for a key: first one wins
		}
		s.commits = append(s.commits, e)
		s.byKey[e.Key] = len(s.commits) - 1
	default:
		s.events = append(s.events, e)
	}
}

func (s *Store) loadSnapshot() error {
	path := filepath.Join(s.dir, "snapshot.json")
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var snap snapshotFile
	if err := json.Unmarshal(blob, &snap); err != nil {
		return fmt.Errorf("store: corrupt snapshot %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("store: unsupported snapshot version %d", snap.Version)
	}
	restore := func(kind EventKind, rows []snapEvent) error {
		for _, r := range rows {
			e := Event{Seq: r.Seq, Epsilon: r.Epsilon, Key: r.Key, At: time.Unix(0, r.At), Trace: r.Trace}
			switch {
			case kind == EventCommit && r.Kind == "commit":
				sha, err := hex.DecodeString(r.SHA)
				if err != nil || len(sha) != 32 {
					return fmt.Errorf("store: snapshot commit %q has bad sha %q", r.Key, r.SHA)
				}
				copy(e.SHA[:], sha)
				e.Kind = EventCommit
			case kind != EventCommit && r.Kind == "debit":
				e.Kind = EventDebit
			case kind != EventCommit && r.Kind == "refund":
				e.Kind = EventRefund
			default:
				return fmt.Errorf("store: snapshot row has unexpected kind %q", r.Kind)
			}
			if e.Kind != EventCommit && (!(e.Epsilon > 0) || math.IsInf(e.Epsilon, 0)) {
				return fmt.Errorf("store: snapshot %s row has unusable epsilon %v", r.Kind, r.Epsilon)
			}
			s.apply(e)
		}
		return nil
	}
	if err := restore(EventDebit, snap.Events); err != nil {
		return err
	}
	if err := restore(EventCommit, snap.Commits); err != nil {
		return err
	}
	s.snapshotSeq = snap.Seq
	s.snapshotBytes = int64(len(blob))
	return nil
}

// scanArtifacts totals the artifact bytes on disk (for the store-bytes
// gauge) without reading file contents.
func (s *Store) scanArtifacts() error {
	entries, err := os.ReadDir(filepath.Join(s.dir, "artifacts"))
	if err != nil {
		return err
	}
	s.artifactBytes = 0
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		fi, err := ent.Info()
		if err != nil {
			continue
		}
		s.artifactBytes += fi.Size()
	}
	return nil
}

// Events returns the recovered-plus-appended ledger events (debits and
// refunds) in order.
func (s *Store) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Commits returns the committed releases in commit order.
func (s *Store) Commits() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.commits))
	copy(out, s.commits)
	return out
}

// SpentEpsilon folds the event log into net spent ε, mirroring the
// ledger's clamp-at-zero refund arithmetic.
func (s *Store) SpentEpsilon() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	spent := 0.0
	for _, e := range s.events {
		switch e.Kind {
		case EventDebit:
			spent += e.Epsilon
		case EventRefund:
			spent -= e.Epsilon
			if spent < 0 {
				spent = 0
			}
		}
	}
	return spent
}

func (s *Store) appendLocked(e *Event) error {
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.dir)
	}
	if e.Key == "" || len(e.Key) > maxKeyLen {
		return fmt.Errorf("store: record key must be 1..%d bytes, got %d", maxKeyLen, len(e.Key))
	}
	// The sequence number is burned even when the append FAILS: a record
	// whose fsync errored may still be durable, and if a retry reused its
	// seq the recovery's duplicate-skip would silently drop the retried —
	// acknowledged — record. A gap in the sequence is harmless (recovery
	// only requires strictly increasing); a collision under-counts ε.
	e.Seq = s.wal.nextSeq
	s.wal.nextSeq++
	if err := s.wal.append(e); err != nil {
		return err
	}
	s.apply(*e)
	return nil
}

// AppendDebit makes an ε debit durable: the call returns only after the
// record is written and fsynced. Callers must invoke it BEFORE running
// the mechanism the debit pays for.
func (s *Store) AppendDebit(eps float64, key string) error {
	return s.AppendDebitTraced(eps, key, "")
}

// AppendDebitTraced is AppendDebit with the request trace ID persisted in
// the record, so recovered audit trails keep naming the request that
// spent each unit of ε across restarts.
func (s *Store) AppendDebitTraced(eps float64, key, trace string) error {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("store: debit epsilon must be positive and finite, got %v", eps)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(&Event{Kind: EventDebit, At: time.Now(), Epsilon: eps, Key: key, Trace: trace})
}

// AppendRefund makes an ε refund durable. Callers must invoke it BEFORE
// returning the build failure that justifies the refund.
func (s *Store) AppendRefund(eps float64, key string) error {
	return s.AppendRefundTraced(eps, key, "")
}

// AppendRefundTraced is AppendRefund with the request trace ID persisted
// in the record.
func (s *Store) AppendRefundTraced(eps float64, key, trace string) error {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("store: refund epsilon must be positive and finite, got %v", eps)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(&Event{Kind: EventRefund, At: time.Now(), Epsilon: eps, Key: key, Trace: trace})
}

// CommitRelease persists envelope in the content-addressed artifact
// store and then appends the commit record binding key (the release
// fingerprint) to the envelope's SHA-256. The artifact is durable before
// the record: a crash in between leaves an orphan file (harmless, and
// reclaimed by the next commit of the same content), never a record
// pointing at missing bytes.
func (s *Store) CommitRelease(key string, envelope []byte) error {
	return s.CommitReleaseTraced(key, envelope, "")
}

// CommitReleaseTraced is CommitRelease with the request trace ID
// persisted in the commit record.
func (s *Store) CommitReleaseTraced(key string, envelope []byte, trace string) error {
	if len(envelope) == 0 {
		return fmt.Errorf("store: refusing to commit empty envelope for %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.dir)
	}
	if i, ok := s.byKey[key]; ok {
		if s.commits[i].SHA != sha256.Sum256(envelope) {
			return fmt.Errorf("store: key %q already committed with different content", key)
		}
		return nil // idempotent re-commit
	}
	sha, size, err := s.writeArtifact(envelope)
	if err != nil {
		return err
	}
	crash("commit.before_record")
	if err := s.appendLocked(&Event{Kind: EventCommit, At: time.Now(), Key: key, SHA: sha, Trace: trace}); err != nil {
		return err
	}
	s.artifactBytes += size
	return nil
}

// writeArtifact stores blob as artifacts/<sha256>.json via the
// tmp → fsync → rename → dir-fsync dance, so a crash never leaves a
// partially written file under the final name. Returns the content
// address and the bytes newly added on disk (0 when deduplicated).
func (s *Store) writeArtifact(blob []byte) ([32]byte, int64, error) {
	sha := sha256.Sum256(blob)
	dir := filepath.Join(s.dir, "artifacts")
	final := filepath.Join(dir, hex.EncodeToString(sha[:])+".json")
	if _, err := os.Stat(final); err == nil {
		return sha, 0, nil // content-addressed: same name is same bytes
	}
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return sha, 0, err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return sha, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return sha, 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return sha, 0, err
	}
	crash("artifact.after_write")
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return sha, 0, err
	}
	crash("artifact.after_rename")
	if err := syncDir(dir); err != nil {
		return sha, 0, err
	}
	return sha, int64(len(blob)), nil
}

// LoadArtifact reads a committed envelope back by content address and
// verifies the bytes against it, so silent on-disk corruption surfaces
// as an error instead of a forged release.
func (s *Store) LoadArtifact(sha [32]byte) ([]byte, error) {
	path := filepath.Join(s.dir, "artifacts", hex.EncodeToString(sha[:])+".json")
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if sha256.Sum256(blob) != sha {
		return nil, fmt.Errorf("store: artifact %s fails its content hash", path)
	}
	return blob, nil
}

// Compact folds the current state into a fresh snapshot and rotates the
// WAL. Recovery after a crash at any point is consistent: the snapshot
// becomes visible atomically (rename), and stale WAL records left by a
// crash before the rotate are skipped via the snapshot's seq cursor.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.dir)
	}
	snap := snapshotFile{Version: snapshotVersion, Seq: s.wal.nextSeq - 1}
	for _, e := range s.events {
		snap.Events = append(snap.Events, snapEvent{
			Seq: e.Seq, Kind: e.Kind.String(), Epsilon: e.Epsilon, Key: e.Key, At: e.At.UnixNano(),
			Trace: e.Trace})
	}
	for _, e := range s.commits {
		snap.Commits = append(snap.Commits, snapEvent{
			Seq: e.Seq, Kind: e.Kind.String(), Key: e.Key, At: e.At.UnixNano(),
			SHA: hex.EncodeToString(e.SHA[:]), Trace: e.Trace})
	}
	blob, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	final := filepath.Join(s.dir, "snapshot.json")
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	crash("snapshot.after_rename")
	s.snapshotSeq = snap.Seq
	s.snapshotBytes = int64(len(blob))
	return s.wal.rotate()
}

// SizeBytes returns the store's on-disk footprint: WAL + snapshot +
// artifacts. It is the /metrics store-bytes gauge.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.size + s.snapshotBytes + s.artifactBytes
}

// LastSeq returns the highest WAL sequence number issued so far (0 on a
// fresh store). It is the /metrics WAL-seq gauge.
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.nextSeq - 1
}

// SetFsyncObserver installs fn (nil to clear) to receive the duration,
// in seconds, of every WAL fsync. The server points this at a latency
// histogram; fn runs on the append path under the store lock, so it must
// be cheap and must not call back into the store.
func (s *Store) SetFsyncObserver(fn func(seconds float64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal.fsyncObs = fn
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the WAL file handle. Close is idempotent; every
// acknowledged mutation is already durable, so Close never loses data.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.wal.close()
	if uerr := unlockDir(s.lock); err == nil {
		err = uerr
	}
	return err
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
