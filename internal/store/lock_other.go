//go:build !unix

package store

import "os"

// Non-unix platforms get no inter-process store lock; single-process use
// remains correct, and the unix builds (the deployment targets) enforce
// exclusivity.
func lockDir(dir string) (*os.File, error) { return nil, nil }

func unlockDir(f *os.File) error { return nil }
