package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestRectContains(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1, 1})
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0.5, 0.5}, true},
		{Point{0, 0}, true},  // closed at Lo
		{Point{1, 1}, false}, // open at Hi
		{Point{0.999, 0}, true},
		{Point{-0.1, 0.5}, false},
		{Point{0.5}, false}, // wrong dims
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectVolume(t *testing.T) {
	r := NewRect(Point{0, 0, 0}, Point{2, 3, 4})
	if got := r.Volume(); got != 24 {
		t.Fatalf("volume = %v, want 24", got)
	}
	if got := UnitCube(5).Volume(); got != 1 {
		t.Fatalf("unit cube volume = %v", got)
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	b := NewRect(Point{1, 1}, Point{3, 3})
	inter, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected overlap")
	}
	if inter.Lo[0] != 1 || inter.Hi[0] != 2 || inter.Volume() != 1 {
		t.Fatalf("bad intersection %v", inter)
	}
	c := NewRect(Point{5, 5}, Point{6, 6})
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint rects reported overlapping")
	}
	// Touching edges share no volume (half-open).
	d := NewRect(Point{2, 0}, Point{3, 2})
	if a.Overlaps(d) {
		t.Fatal("edge-touching rects reported overlapping")
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := NewRect(Point{0, 0}, Point{4, 4})
	inner := NewRect(Point{1, 1}, Point{2, 2})
	if !outer.ContainsRect(inner) {
		t.Fatal("containment missed")
	}
	if inner.ContainsRect(outer) {
		t.Fatal("reverse containment claimed")
	}
	if !outer.ContainsRect(outer) {
		t.Fatal("self containment missed")
	}
}

func TestOverlapFraction(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{2, 2})
	q := NewRect(Point{1, 0}, Point{3, 2})
	if got := r.OverlapFraction(q); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("fraction = %v, want 0.5", got)
	}
	far := NewRect(Point{10, 10}, Point{11, 11})
	if got := r.OverlapFraction(far); got != 0 {
		t.Fatalf("disjoint fraction = %v", got)
	}
}

func TestNewRectPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("dimension mismatch did not panic")
			}
		}()
		NewRect(Point{0}, Point{1, 2})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("inverted interval did not panic")
			}
		}()
		NewRect(Point{2, 0}, Point{1, 1})
	}()
}

func TestCloneIndependence(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1, 1})
	c := r.Clone()
	c.Lo[0] = 0.5
	if r.Lo[0] != 0 {
		t.Fatal("clone aliases original")
	}
}

func TestFullBisectTilesParent(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4} {
		s := FullBisect{Dim: d}
		r := UnitCube(d)
		kids := s.Split(r, 0)
		if len(kids) != s.Fanout() || s.Fanout() != 1<<d {
			t.Fatalf("d=%d: %d children, fanout %d", d, len(kids), s.Fanout())
		}
		checkTiling(t, r, kids)
	}
}

func TestRoundRobinBisect(t *testing.T) {
	s := RoundRobinBisect{Dim: 4, PerStep: 2}
	if s.Fanout() != 4 {
		t.Fatalf("fanout = %d, want 4", s.Fanout())
	}
	r := UnitCube(4)
	kids := s.Split(r, 0)
	checkTiling(t, r, kids)
	// Depth 0 bisects axes 0,1 — axes 2,3 untouched.
	for _, k := range kids {
		if k.Side(2) != 1 || k.Side(3) != 1 {
			t.Fatalf("depth 0 split touched axes 2/3: %v", k)
		}
	}
	// Depth 1 bisects axes 2,3.
	kids1 := s.Split(r, 1)
	for _, k := range kids1 {
		if k.Side(0) != 1 || k.Side(1) != 1 {
			t.Fatalf("depth 1 split touched axes 0/1: %v", k)
		}
	}
}

func TestRoundRobinRotationCoversAllAxes(t *testing.T) {
	s := RoundRobinBisect{Dim: 4, PerStep: 1}
	seen := map[int]bool{}
	r := UnitCube(4)
	for depth := 0; depth < 4; depth++ {
		kids := s.Split(r, depth)
		for axis := 0; axis < 4; axis++ {
			if kids[0].Side(axis) == 0.5 {
				seen[axis] = true
			}
		}
	}
	if len(seen) != 4 {
		t.Fatalf("rotation covered %d/4 axes", len(seen))
	}
}

func TestGridSplit(t *testing.T) {
	s := GridSplit{Dim: 2, K: 8}
	if s.Fanout() != 64 {
		t.Fatalf("fanout = %d, want 64", s.Fanout())
	}
	r := UnitCube(2)
	kids := s.Split(r, 0)
	if len(kids) != 64 {
		t.Fatalf("%d children", len(kids))
	}
	checkTiling(t, r, kids)
}

// checkTiling verifies the children partition the parent: volumes sum and
// every sampled point lies in exactly one child.
func checkTiling(t *testing.T, parent Rect, kids []Rect) {
	t.Helper()
	vol := 0.0
	for _, k := range kids {
		vol += k.Volume()
		if !parent.ContainsRect(k) {
			t.Fatalf("child %v escapes parent %v", k, parent)
		}
	}
	if math.Abs(vol-parent.Volume()) > 1e-9 {
		t.Fatalf("children volume %v != parent %v", vol, parent.Volume())
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		p := make(Point, parent.Dims())
		for i := range p {
			p[i] = parent.Lo[i] + rng.Float64()*(parent.Hi[i]-parent.Lo[i])
		}
		owners := 0
		for _, k := range kids {
			if k.Contains(p) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("point %v owned by %d children", p, owners)
		}
	}
}

func TestSplitTilingProperty(t *testing.T) {
	// Property: for random sub-rectangles and any splitter, children tile.
	f := func(seed uint64, dimSel, splitSel uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		d := 1 + int(dimSel%4)
		lo := make(Point, d)
		hi := make(Point, d)
		for i := 0; i < d; i++ {
			a, b := rng.Float64()*10-5, rng.Float64()*10-5
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b+0.001
		}
		r := NewRect(lo, hi)
		var s Splitter
		switch splitSel % 3 {
		case 0:
			s = FullBisect{Dim: d}
		case 1:
			s = RoundRobinBisect{Dim: d, PerStep: 1 + int(seed%uint64(d))}
		default:
			s = GridSplit{Dim: d, K: 2 + int(seed%3)}
		}
		kids := s.Split(r, int(seed%5))
		vol := 0.0
		for _, k := range kids {
			vol += k.Volume()
		}
		return len(kids) == s.Fanout() && math.Abs(vol-r.Volume()) < 1e-6*(1+r.Volume())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitChildrenCoverBoundaryExactly(t *testing.T) {
	// The last slab along each axis must end exactly at the parent's Hi,
	// regardless of float round-off.
	r := NewRect(Point{0.1}, Point{0.7})
	kids := GridSplit{Dim: 1, K: 7}.Split(r, 0)
	if got := kids[len(kids)-1].Hi[0]; got != 0.7 {
		t.Fatalf("last child Hi = %v, want exactly 0.7", got)
	}
}

func TestCenter(t *testing.T) {
	r := NewRect(Point{0, 2}, Point{4, 6})
	c := r.Center()
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("center = %v", c)
	}
}
