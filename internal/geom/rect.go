// Package geom provides the d-dimensional geometry used by spatial
// decompositions: points, axis-aligned rectangles, and the node-splitting
// strategies that determine a decomposition tree's fanout.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a location in d-dimensional space.
type Point []float64

// Rect is a d-dimensional axis-aligned rectangle, closed at Lo and open at
// Hi along every axis ([lo, hi)), so the children of a split tile their
// parent exactly with no double counting on shared faces.
type Rect struct {
	Lo Point
	Hi Point
}

// NewRect returns the rectangle spanning [lo[i], hi[i]) on each axis. It
// panics if the slices disagree in length or any interval is inverted.
func NewRect(lo, hi Point) Rect {
	if len(lo) != len(hi) {
		panic("geom: NewRect dimension mismatch")
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("geom: NewRect inverted interval on axis %d: [%v, %v)", i, lo[i], hi[i]))
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// MakeRect is the non-panicking counterpart of NewRect for rectangles
// arriving from untrusted input (deserialized documents, HTTP bodies, CLI
// strings): mismatched or empty bound slices, non-finite coordinates, and
// inverted intervals are reported as errors. Empty intervals (lo == hi) are
// accepted — query rectangles may be empty; domains additionally need
// Validate.
func MakeRect(lo, hi Point) (Rect, error) {
	if err := CheckBounds(lo, hi, false); err != nil {
		return Rect{}, err
	}
	return Rect{Lo: lo, Hi: hi}, nil
}

// UnitCube returns [0,1)^d.
func UnitCube(d int) Rect {
	lo := make(Point, d)
	hi := make(Point, d)
	for i := range hi {
		hi[i] = 1
	}
	return Rect{Lo: lo, Hi: hi}
}

// Dims returns the dimensionality of the rectangle.
func (r Rect) Dims() int { return len(r.Lo) }

// CheckBounds is the shared validation for lo/hi coordinate pairs arriving
// from untrusted input (deserialized trees, HTTP query batches, CLI query
// strings): matching non-empty lengths, finite coordinates, and
// non-inverted intervals. strict additionally demands positive extent per
// axis (lo < hi), which domains need; query rectangles may be empty
// (lo == hi). It never panics.
func CheckBounds(lo, hi Point, strict bool) error {
	if len(lo) != len(hi) {
		return fmt.Errorf("geom: got %d lo and %d hi coordinates", len(lo), len(hi))
	}
	if len(lo) == 0 {
		return fmt.Errorf("geom: need at least one dimension")
	}
	for i := range lo {
		if math.IsNaN(lo[i]) || math.IsInf(lo[i], 0) || math.IsNaN(hi[i]) || math.IsInf(hi[i], 0) {
			return fmt.Errorf("geom: non-finite bound on axis %d: [%v, %v)", i, lo[i], hi[i])
		}
		if strict && !(lo[i] < hi[i]) {
			return fmt.Errorf("geom: empty interval on axis %d: [%v, %v)", i, lo[i], hi[i])
		}
		if lo[i] > hi[i] {
			return fmt.Errorf("geom: inverted interval on axis %d: [%v, %v)", i, lo[i], hi[i])
		}
	}
	return nil
}

// Validate reports whether r can serve as a decomposition domain: at least
// one dimension, matching Lo/Hi lengths, finite coordinates, and strictly
// positive extent on every axis (a zero-width axis would make every split
// degenerate and every volume zero).
func (r Rect) Validate() error { return CheckBounds(r.Lo, r.Hi, true) }

// Contains reports whether p lies inside r ([lo, hi) per axis).
func (r Rect) Contains(p Point) bool {
	if len(p) != len(r.Lo) {
		return false
	}
	for i := range p {
		if p[i] < r.Lo[i] || p[i] >= r.Hi[i] {
			return false
		}
	}
	return true
}

// Volume returns the product of side lengths.
func (r Rect) Volume() float64 {
	v := 1.0
	for i := range r.Lo {
		v *= r.Hi[i] - r.Lo[i]
	}
	return v
}

// Side returns the length of axis i.
func (r Rect) Side(i int) float64 { return r.Hi[i] - r.Lo[i] }

// Intersect returns the overlap of r and o and whether it is non-empty.
func (r Rect) Intersect(o Rect) (Rect, bool) {
	if r.Dims() != o.Dims() {
		return Rect{}, false
	}
	lo := make(Point, r.Dims())
	hi := make(Point, r.Dims())
	for i := range lo {
		lo[i] = max(r.Lo[i], o.Lo[i])
		hi[i] = min(r.Hi[i], o.Hi[i])
		if lo[i] >= hi[i] {
			return Rect{}, false
		}
	}
	return Rect{Lo: lo, Hi: hi}, true
}

// IntersectInto writes the overlap of r and o into dst, reusing dst's
// backing slices when they have sufficient capacity, and reports whether the
// overlap is non-empty. dst is left unchanged on an empty overlap. It is the
// allocation-free counterpart of Intersect for callers that need the
// intersection rectangle itself; paths that only need its size should use
// IntersectionVolume, which skips materialization entirely.
func (r Rect) IntersectInto(o Rect, dst *Rect) bool {
	d := r.Dims()
	if d != o.Dims() {
		return false
	}
	for i := 0; i < d; i++ {
		if max(r.Lo[i], o.Lo[i]) >= min(r.Hi[i], o.Hi[i]) {
			return false
		}
	}
	if cap(dst.Lo) < d || cap(dst.Hi) < d {
		dst.Lo = make(Point, d)
		dst.Hi = make(Point, d)
	}
	dst.Lo = dst.Lo[:d]
	dst.Hi = dst.Hi[:d]
	for i := 0; i < d; i++ {
		dst.Lo[i] = max(r.Lo[i], o.Lo[i])
		dst.Hi[i] = min(r.Hi[i], o.Hi[i])
	}
	return true
}

// IntersectionVolume returns |r ∩ o| without materializing the intersection
// rectangle; it is 0 when the rectangles are disjoint or dimensions
// disagree. It performs no allocation.
func (r Rect) IntersectionVolume(o Rect) float64 {
	if r.Dims() != o.Dims() {
		return 0
	}
	v := 1.0
	for i := range r.Lo {
		lo := max(r.Lo[i], o.Lo[i])
		hi := min(r.Hi[i], o.Hi[i])
		if lo >= hi {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Overlaps reports whether r and o share positive volume. It performs no
// allocation.
func (r Rect) Overlaps(o Rect) bool {
	if r.Dims() != o.Dims() {
		return false
	}
	for i := range r.Lo {
		if max(r.Lo[i], o.Lo[i]) >= min(r.Hi[i], o.Hi[i]) {
			return false
		}
	}
	return true
}

// ContainsRect reports whether o lies entirely within r.
func (r Rect) ContainsRect(o Rect) bool {
	if r.Dims() != o.Dims() {
		return false
	}
	for i := range r.Lo {
		if o.Lo[i] < r.Lo[i] || o.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// OverlapFraction returns |r ∩ o| / |r|, the fraction of r's volume covered
// by o. A zero-volume r yields 0. This is the uniformity weight used when a
// leaf partially intersects a query (Section 2.2 of the paper).
// It performs no allocation.
func (r Rect) OverlapFraction(o Rect) float64 {
	iv := r.IntersectionVolume(o)
	if iv == 0 {
		return 0
	}
	vol := r.Volume()
	if vol == 0 {
		return 0
	}
	return iv / vol
}

// MakeRects returns n d-dimensional rectangles whose Lo/Hi points all share
// one backing array, so a whole scratch buffer of rectangles costs a single
// allocation. The rectangles are zeroed; callers overwrite them via
// Splitter.SplitInto or IntersectInto.
func MakeRects(n, d int) []Rect {
	backing := make(Point, 2*n*d)
	out := make([]Rect, n)
	for i := range out {
		out[i].Lo = backing[2*i*d : (2*i+1)*d : (2*i+1)*d]
		out[i].Hi = backing[(2*i+1)*d : (2*i+2)*d : (2*i+2)*d]
	}
	return out
}

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point {
	c := make(Point, r.Dims())
	for i := range c {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Hi))
	copy(lo, r.Lo)
	copy(hi, r.Hi)
	return Rect{Lo: lo, Hi: hi}
}

// String renders the rectangle as [lo,hi)×[lo,hi)×…
func (r Rect) String() string {
	var b strings.Builder
	for i := range r.Lo {
		if i > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "[%.4g,%.4g)", r.Lo[i], r.Hi[i])
	}
	return b.String()
}
