package geom

import "fmt"

// Splitter turns a rectangle into the child rectangles of a decomposition
// tree node. Fanout must be constant over the tree for PrivTree's δ = λ·ln β
// parameterization to apply, so implementations report it up front.
//
// depth is the node's depth (root = 0); splitters that rotate through axes
// (round-robin) use it to decide which axes to bisect.
type Splitter interface {
	// Fanout returns β, the number of children produced by every split.
	Fanout() int
	// Split returns the child rectangles of r at the given depth. The
	// children must tile r exactly.
	Split(r Rect, depth int) []Rect
}

// FullBisect bisects every axis at once, producing 2^d children — the
// classical quadtree (d=2, β=4) and its 4-D analogue (β=16) used as
// PrivTree's default in the paper.
type FullBisect struct {
	Dim int
}

// Fanout returns 2^d.
func (s FullBisect) Fanout() int { return 1 << s.Dim }

// Split implements Splitter.
func (s FullBisect) Split(r Rect, depth int) []Rect {
	if r.Dims() != s.Dim {
		panic(fmt.Sprintf("geom: FullBisect dim %d applied to rect of dim %d", s.Dim, r.Dims()))
	}
	return bisectAxes(r, allAxes(s.Dim))
}

// RoundRobinBisect bisects k of the d axes per split, rotating which axes
// are bisected as depth grows, producing 2^k children. This realizes the
// β = 2^(d/2) and β = 2^(d/4) configurations of the paper's Figure 8
// ("PrivTree would split the dimensions of each node in a round robin
// fashion, with i dimensions being bisected each time").
type RoundRobinBisect struct {
	Dim     int // dimensionality d
	PerStep int // number of axes bisected per split (k)
}

// Fanout returns 2^k.
func (s RoundRobinBisect) Fanout() int { return 1 << s.PerStep }

// Split implements Splitter.
func (s RoundRobinBisect) Split(r Rect, depth int) []Rect {
	if r.Dims() != s.Dim {
		panic(fmt.Sprintf("geom: RoundRobinBisect dim %d applied to rect of dim %d", s.Dim, r.Dims()))
	}
	if s.PerStep <= 0 || s.PerStep > s.Dim {
		panic("geom: RoundRobinBisect PerStep must be in [1, Dim]")
	}
	axes := make([]int, s.PerStep)
	start := (depth * s.PerStep) % s.Dim
	for i := range axes {
		axes[i] = (start + i) % s.Dim
	}
	return bisectAxes(r, axes)
}

// GridSplit splits every axis into k equal parts at once, producing k^d
// children. Hierarchy (Qardaji et al.) uses k=8 on 2-D data for β=64.
type GridSplit struct {
	Dim int
	K   int
}

// Fanout returns k^d.
func (s GridSplit) Fanout() int {
	f := 1
	for i := 0; i < s.Dim; i++ {
		f *= s.K
	}
	return f
}

// Split implements Splitter.
func (s GridSplit) Split(r Rect, depth int) []Rect {
	if r.Dims() != s.Dim {
		panic(fmt.Sprintf("geom: GridSplit dim %d applied to rect of dim %d", s.Dim, r.Dims()))
	}
	if s.K < 2 {
		panic("geom: GridSplit K must be >= 2")
	}
	cells := []Rect{r.Clone()}
	for axis := 0; axis < s.Dim; axis++ {
		next := make([]Rect, 0, len(cells)*s.K)
		for _, c := range cells {
			next = append(next, splitAxisK(c, axis, s.K)...)
		}
		cells = next
	}
	return cells
}

func allAxes(d int) []int {
	axes := make([]int, d)
	for i := range axes {
		axes[i] = i
	}
	return axes
}

// bisectAxes halves r along each of the listed axes, producing 2^len(axes)
// children that tile r.
func bisectAxes(r Rect, axes []int) []Rect {
	out := []Rect{r.Clone()}
	for _, axis := range axes {
		next := make([]Rect, 0, len(out)*2)
		for _, c := range out {
			next = append(next, splitAxisK(c, axis, 2)...)
		}
		out = next
	}
	return out
}

// splitAxisK cuts r into k equal slabs along axis. The last slab's upper
// bound is set to r.Hi[axis] exactly so float round-off never leaves a gap.
func splitAxisK(r Rect, axis, k int) []Rect {
	out := make([]Rect, 0, k)
	lo, hi := r.Lo[axis], r.Hi[axis]
	step := (hi - lo) / float64(k)
	for i := 0; i < k; i++ {
		c := r.Clone()
		c.Lo[axis] = lo + float64(i)*step
		if i == k-1 {
			c.Hi[axis] = hi
		} else {
			c.Hi[axis] = lo + float64(i+1)*step
		}
		out = append(out, c)
	}
	return out
}
