package geom

import "fmt"

// Splitter turns a rectangle into the child rectangles of a decomposition
// tree node. Fanout must be constant over the tree for PrivTree's δ = λ·ln β
// parameterization to apply, so implementations report it up front.
//
// depth is the node's depth (root = 0); splitters that rotate through axes
// (round-robin) use it to decide which axes to bisect.
type Splitter interface {
	// Fanout returns β, the number of children produced by every split.
	Fanout() int
	// Split returns the child rectangles of r at the given depth. The
	// children must tile r exactly.
	Split(r Rect, depth int) []Rect
	// SplitInto writes the child rectangles of r into dst and returns
	// dst[:Fanout()]. When dst (typically from MakeRects) has enough
	// capacity — len(dst) ≥ Fanout() with d-dimensional points — no
	// allocation is performed; otherwise a fresh buffer is allocated.
	// The returned rectangles alias dst's backing storage and are only
	// valid until the next SplitInto with the same buffer.
	SplitInto(r Rect, depth int, dst []Rect) []Rect
}

// FullBisect bisects every axis at once, producing 2^d children — the
// classical quadtree (d=2, β=4) and its 4-D analogue (β=16) used as
// PrivTree's default in the paper.
type FullBisect struct {
	Dim int
}

// Fanout returns 2^d.
func (s FullBisect) Fanout() int { return 1 << s.Dim }

// Split implements Splitter.
func (s FullBisect) Split(r Rect, depth int) []Rect {
	return s.SplitInto(r, depth, nil)
}

// SplitInto implements Splitter without allocating when dst is adequate.
func (s FullBisect) SplitInto(r Rect, depth int, dst []Rect) []Rect {
	if r.Dims() != s.Dim {
		panic(fmt.Sprintf("geom: FullBisect dim %d applied to rect of dim %d", s.Dim, r.Dims()))
	}
	return bisectInto(r, 0, s.Dim, s.Dim, dst)
}

// RoundRobinBisect bisects k of the d axes per split, rotating which axes
// are bisected as depth grows, producing 2^k children. This realizes the
// β = 2^(d/2) and β = 2^(d/4) configurations of the paper's Figure 8
// ("PrivTree would split the dimensions of each node in a round robin
// fashion, with i dimensions being bisected each time").
type RoundRobinBisect struct {
	Dim     int // dimensionality d
	PerStep int // number of axes bisected per split (k)
}

// Fanout returns 2^k.
func (s RoundRobinBisect) Fanout() int { return 1 << s.PerStep }

// Split implements Splitter.
func (s RoundRobinBisect) Split(r Rect, depth int) []Rect {
	return s.SplitInto(r, depth, nil)
}

// SplitInto implements Splitter without allocating when dst is adequate.
func (s RoundRobinBisect) SplitInto(r Rect, depth int, dst []Rect) []Rect {
	if r.Dims() != s.Dim {
		panic(fmt.Sprintf("geom: RoundRobinBisect dim %d applied to rect of dim %d", s.Dim, r.Dims()))
	}
	if s.PerStep <= 0 || s.PerStep > s.Dim {
		panic("geom: RoundRobinBisect PerStep must be in [1, Dim]")
	}
	start := (depth * s.PerStep) % s.Dim
	return bisectInto(r, start, s.PerStep, s.Dim, dst)
}

// GridSplit splits every axis into k equal parts at once, producing k^d
// children. Hierarchy (Qardaji et al.) uses k=8 on 2-D data for β=64.
type GridSplit struct {
	Dim int
	K   int
}

// Fanout returns k^d.
func (s GridSplit) Fanout() int {
	f := 1
	for i := 0; i < s.Dim; i++ {
		f *= s.K
	}
	return f
}

// Split implements Splitter.
func (s GridSplit) Split(r Rect, depth int) []Rect {
	return s.SplitInto(r, depth, nil)
}

// SplitInto implements Splitter without allocating when dst is adequate.
// Children are ordered with axis 0 varying slowest (odometer order).
func (s GridSplit) SplitInto(r Rect, depth int, dst []Rect) []Rect {
	if r.Dims() != s.Dim {
		panic(fmt.Sprintf("geom: GridSplit dim %d applied to rect of dim %d", s.Dim, r.Dims()))
	}
	if s.K < 2 {
		panic("geom: GridSplit K must be >= 2")
	}
	n := s.Fanout()
	dst = ensureRects(dst, n, s.Dim)
	for j := 0; j < n; j++ {
		c := dst[j]
		// Decode j as base-K digits, axis 0 most significant.
		rem := j
		for axis := s.Dim - 1; axis >= 0; axis-- {
			cell := rem % s.K
			rem /= s.K
			lo, hi := r.Lo[axis], r.Hi[axis]
			step := (hi - lo) / float64(s.K)
			c.Lo[axis] = lo + float64(cell)*step
			if cell == s.K-1 {
				// Exact upper bound so float round-off never leaves a gap.
				c.Hi[axis] = hi
			} else {
				c.Hi[axis] = lo + float64(cell+1)*step
			}
		}
	}
	return dst
}

// bisectInto halves r along k axes starting at startAxis (mod d), writing
// the 2^k children into dst. Child j's bit for the i-th bisected axis is bit
// (k-1-i) of j — the first axis varies slowest, matching the historical
// generation order.
func bisectInto(r Rect, startAxis, k, d int, dst []Rect) []Rect {
	n := 1 << k
	dst = ensureRects(dst, n, d)
	for j := 0; j < n; j++ {
		c := dst[j]
		copy(c.Lo, r.Lo)
		copy(c.Hi, r.Hi)
		for i := 0; i < k; i++ {
			axis := (startAxis + i) % d
			lo, hi := r.Lo[axis], r.Hi[axis]
			mid := lo + (hi-lo)/2
			if j>>(k-1-i)&1 == 0 {
				c.Hi[axis] = mid
			} else {
				c.Lo[axis] = mid
			}
		}
	}
	return dst
}

// ensureRects returns dst[:n] when every entry can hold d-dimensional
// bounds without reallocating, and a fresh MakeRects(n, d) buffer otherwise.
func ensureRects(dst []Rect, n, d int) []Rect {
	if cap(dst) < n {
		return MakeRects(n, d)
	}
	dst = dst[:n]
	for i := range dst {
		if cap(dst[i].Lo) < d || cap(dst[i].Hi) < d {
			return MakeRects(n, d)
		}
		dst[i].Lo = dst[i].Lo[:d]
		dst[i].Hi = dst[i].Hi[:d]
	}
	return dst
}
