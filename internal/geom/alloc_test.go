package geom

import (
	"math"
	"testing"
)

// TestSplitIntoMatchesSplit pins the buffered splitters to the allocating
// ones: same children, same order, for every splitter family.
func TestSplitIntoMatchesSplit(t *testing.T) {
	cases := []struct {
		name string
		s    Splitter
		d    int
	}{
		{"FullBisect2", FullBisect{Dim: 2}, 2},
		{"FullBisect4", FullBisect{Dim: 4}, 4},
		{"RoundRobin4x2", RoundRobinBisect{Dim: 4, PerStep: 2}, 4},
		{"RoundRobin3x1", RoundRobinBisect{Dim: 3, PerStep: 1}, 3},
		{"Grid2x3", GridSplit{Dim: 2, K: 3}, 2},
	}
	for _, tc := range cases {
		r := NewRect(make(Point, tc.d), func() Point {
			hi := make(Point, tc.d)
			for i := range hi {
				hi[i] = float64(i + 1)
			}
			return hi
		}())
		buf := MakeRects(tc.s.Fanout(), tc.d)
		for depth := 0; depth < 5; depth++ {
			want := tc.s.Split(r, depth)
			got := tc.s.SplitInto(r, depth, buf)
			if len(got) != len(want) {
				t.Fatalf("%s depth %d: %d children via SplitInto, %d via Split", tc.name, depth, len(got), len(want))
			}
			for i := range want {
				for k := 0; k < tc.d; k++ {
					if got[i].Lo[k] != want[i].Lo[k] || got[i].Hi[k] != want[i].Hi[k] {
						t.Fatalf("%s depth %d child %d differs: %v vs %v", tc.name, depth, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSplitIntoZeroAllocs verifies the buffered split path never touches
// the heap once the scratch buffer exists.
func TestSplitIntoZeroAllocs(t *testing.T) {
	r := UnitCube(2)
	s := FullBisect{Dim: 2}
	buf := MakeRects(s.Fanout(), 2)
	if allocs := testing.AllocsPerRun(100, func() {
		buf = s.SplitInto(r, 0, buf)
	}); allocs != 0 {
		t.Fatalf("SplitInto allocated %v times with adequate buffer", allocs)
	}
}

func TestSplitIntoGrowsInadequateBuffer(t *testing.T) {
	r := UnitCube(3)
	s := FullBisect{Dim: 3}
	// nil buffer and an undersized one must both still produce 8 children.
	for _, buf := range [][]Rect{nil, MakeRects(2, 3), MakeRects(8, 1)} {
		kids := s.SplitInto(r, 0, buf)
		if len(kids) != 8 {
			t.Fatalf("%d children from inadequate buffer", len(kids))
		}
		checkTiling(t, r, kids)
	}
}

func TestIntersectionVolumeMatchesIntersect(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	cases := []Rect{
		NewRect(Point{1, 1}, Point{3, 3}),
		NewRect(Point{5, 5}, Point{6, 6}),
		NewRect(Point{2, 0}, Point{3, 2}), // edge touching: no volume
		NewRect(Point{-1, -1}, Point{5, 5}),
		a,
	}
	for _, o := range cases {
		want := 0.0
		if inter, ok := a.Intersect(o); ok {
			want = inter.Volume()
		}
		if got := a.IntersectionVolume(o); math.Abs(got-want) > 1e-12 {
			t.Fatalf("IntersectionVolume(%v) = %v, Intersect says %v", o, got, want)
		}
	}
}

func TestIntersectInto(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	b := NewRect(Point{1, 1}, Point{3, 3})
	var dst Rect
	if !a.IntersectInto(b, &dst) {
		t.Fatal("expected overlap")
	}
	if dst.Lo[0] != 1 || dst.Hi[0] != 2 || dst.Volume() != 1 {
		t.Fatalf("bad intersection %v", dst)
	}
	// Reuse: the same dst backing must be reused without allocation.
	if allocs := testing.AllocsPerRun(100, func() {
		a.IntersectInto(b, &dst)
	}); allocs != 0 {
		t.Fatalf("IntersectInto allocated %v times with warm buffer", allocs)
	}
	// Disjoint leaves dst untouched and reports false.
	far := NewRect(Point{10, 10}, Point{11, 11})
	if a.IntersectInto(far, &dst) {
		t.Fatal("disjoint rects reported overlapping")
	}
}

func TestQueryPredicatesZeroAlloc(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	b := NewRect(Point{1, 1}, Point{3, 3})
	if allocs := testing.AllocsPerRun(100, func() {
		_ = a.Overlaps(b)
		_ = a.OverlapFraction(b)
		_ = a.IntersectionVolume(b)
		_ = a.ContainsRect(b)
	}); allocs != 0 {
		t.Fatalf("query predicates allocated %v times", allocs)
	}
}

func TestMakeRectsSharedBacking(t *testing.T) {
	rs := MakeRects(4, 2)
	if len(rs) != 4 {
		t.Fatalf("MakeRects returned %d rects", len(rs))
	}
	for i := range rs {
		if len(rs[i].Lo) != 2 || len(rs[i].Hi) != 2 {
			t.Fatalf("rect %d has wrong dims", i)
		}
		rs[i].Lo[0] = float64(i)
		rs[i].Hi[1] = float64(i)
	}
	for i := range rs {
		if rs[i].Lo[0] != float64(i) || rs[i].Hi[1] != float64(i) {
			t.Fatal("MakeRects entries alias each other")
		}
	}
}
