// Package sequence provides the sequence-data substrate for PrivTree's
// Markov-model extension (Section 4): sequences over a finite alphabet,
// truncation at a maximum length l⊤, a differentially private quantile for
// choosing l⊤, exact substring counting, top-k frequent-string mining, and
// the length-distribution metrics used in Figure 7.
package sequence

import (
	"fmt"
	"strings"
)

// Symbol is one element of a sequence alphabet, encoded as a small int in
// [0, |I|). The special markers Start ($) and End (&) of the paper are NOT
// symbols; they are represented structurally (position 0 / termination).
type Symbol int

// Alphabet describes the symbol set I. Names are optional labels used only
// for display.
type Alphabet struct {
	Size  int
	Names []string
}

// NewAlphabet returns an alphabet of the given size with generated names.
func NewAlphabet(size int) Alphabet {
	names := make([]string, size)
	for i := range names {
		if size <= 26 {
			names[i] = string(rune('A' + i))
		} else {
			names[i] = fmt.Sprintf("s%d", i)
		}
	}
	return Alphabet{Size: size, Names: names}
}

// Name returns the display name of symbol x.
func (a Alphabet) Name(x Symbol) string {
	if int(x) >= 0 && int(x) < len(a.Names) {
		return a.Names[x]
	}
	return fmt.Sprintf("s%d", int(x))
}

// Seq is one sequence: an ordered list of symbols. Open reports whether the
// sequence was truncated (the paper's "open-ended" sequences, which lost
// their & marker); a closed sequence terminates with an implicit &.
type Seq struct {
	Syms []Symbol
	Open bool
}

// Len returns the number of symbols (excluding $ and &).
func (s Seq) Len() int { return len(s.Syms) }

// String renders the sequence with its markers, e.g. "$ABA&" or "$ABA"
// when open.
func (s Seq) String() string {
	var b strings.Builder
	b.WriteByte('$')
	for _, x := range s.Syms {
		fmt.Fprintf(&b, "%d", int(x))
		b.WriteByte(' ')
	}
	if !s.Open {
		b.WriteByte('&')
	}
	return b.String()
}

// Dataset is a collection of sequences over one alphabet.
type Dataset struct {
	Alphabet Alphabet
	Seqs     []Seq
}

// N returns the number of sequences.
func (d *Dataset) N() int { return len(d.Seqs) }

// AvgLen returns the mean sequence length.
func (d *Dataset) AvgLen() float64 {
	if len(d.Seqs) == 0 {
		return 0
	}
	total := 0
	for _, s := range d.Seqs {
		total += s.Len()
	}
	return float64(total) / float64(len(d.Seqs))
}

// MaxLen returns the maximum sequence length.
func (d *Dataset) MaxLen() int {
	m := 0
	for _, s := range d.Seqs {
		if s.Len() > m {
			m = s.Len()
		}
	}
	return m
}

// Truncate returns a copy of the dataset where every sequence longer than
// lTop keeps its first lTop symbols and becomes open-ended (loses &), per
// Section 4.2. The effective length of a closed sequence counts its & (so a
// closed sequence of lTop symbols is length lTop+1 > lTop and is NOT
// truncated — the paper truncates s = $x1…x_{l⊤}& to $x1…x_{l⊤}, i.e. only
// the marker is dropped). Sequences already within the bound are shared,
// not copied.
func (d *Dataset) Truncate(lTop int) (*Dataset, int) {
	out := &Dataset{Alphabet: d.Alphabet, Seqs: make([]Seq, len(d.Seqs))}
	truncated := 0
	for i, s := range d.Seqs {
		eff := s.Len()
		if !s.Open {
			eff++ // the & marker counts toward l⊤
		}
		if eff <= lTop {
			out.Seqs[i] = s
			continue
		}
		truncated++
		keep := lTop
		if keep > s.Len() {
			keep = s.Len()
		}
		out.Seqs[i] = Seq{Syms: s.Syms[:keep], Open: true}
	}
	return out, truncated
}

// EffectiveLen returns the sequence length counting & but not $, the
// quantity bounded by l⊤ in Theorem 4.1.
func (s Seq) EffectiveLen() int {
	if s.Open {
		return s.Len()
	}
	return s.Len() + 1
}

// LengthDistribution returns P[len = i] for i in [0, maxLen] as a dense
// probability vector (lengths beyond maxLen are clamped into the last
// bucket).
func (d *Dataset) LengthDistribution(maxLen int) []float64 {
	dist := make([]float64, maxLen+1)
	if len(d.Seqs) == 0 {
		return dist
	}
	for _, s := range d.Seqs {
		l := s.Len()
		if l > maxLen {
			l = maxLen
		}
		dist[l]++
	}
	for i := range dist {
		dist[i] /= float64(len(d.Seqs))
	}
	return dist
}

// TotalVariation returns the total variation distance between two discrete
// distributions: half the L1 distance. Vectors of different lengths are
// compared by zero-extending the shorter one.
func TotalVariation(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		var a, b float64
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		if a > b {
			sum += a - b
		} else {
			sum += b - a
		}
	}
	return sum / 2
}
