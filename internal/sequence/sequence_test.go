package sequence

import (
	"math"
	"testing"
	"testing/quick"

	"privtree/internal/dp"
)

func seqOf(xs ...int) Seq {
	syms := make([]Symbol, len(xs))
	for i, x := range xs {
		syms[i] = Symbol(x)
	}
	return Seq{Syms: syms}
}

func TestAlphabetNames(t *testing.T) {
	a := NewAlphabet(3)
	if a.Name(0) != "A" || a.Name(2) != "C" {
		t.Fatalf("names: %v %v", a.Name(0), a.Name(2))
	}
	big := NewAlphabet(30)
	if big.Name(27) != "s27" {
		t.Fatalf("big alphabet name: %v", big.Name(27))
	}
}

func TestEffectiveLen(t *testing.T) {
	closed := seqOf(1, 2, 3)
	if closed.EffectiveLen() != 4 {
		t.Fatalf("closed effective len = %d, want 4 (counts &)", closed.EffectiveLen())
	}
	open := Seq{Syms: closed.Syms, Open: true}
	if open.EffectiveLen() != 3 {
		t.Fatalf("open effective len = %d, want 3", open.EffectiveLen())
	}
}

func TestTruncate(t *testing.T) {
	d := &Dataset{Alphabet: NewAlphabet(2), Seqs: []Seq{
		seqOf(0, 1),          // effective 3 ≤ 4: untouched
		seqOf(0, 1, 0),       // effective 4 ≤ 4: untouched
		seqOf(0, 1, 0, 1),    // effective 5 > 4: marker dropped → open, 4 syms
		seqOf(0, 1, 0, 1, 0), // effective 6 > 4: cut to 4 syms, open
	}}
	out, truncated := d.Truncate(4)
	if truncated != 2 {
		t.Fatalf("truncated %d, want 2", truncated)
	}
	if out.Seqs[0].Open || out.Seqs[1].Open {
		t.Fatal("short sequences must stay closed")
	}
	if !out.Seqs[2].Open || out.Seqs[2].Len() != 4 {
		t.Fatalf("sequence 2 after truncation: %+v", out.Seqs[2])
	}
	if !out.Seqs[3].Open || out.Seqs[3].Len() != 4 {
		t.Fatalf("sequence 3 after truncation: %+v", out.Seqs[3])
	}
	// Original untouched.
	if d.Seqs[3].Len() != 5 || d.Seqs[3].Open {
		t.Fatal("Truncate mutated the input")
	}
}

func TestTruncateBoundsEffectiveLen(t *testing.T) {
	f := func(lens []uint8, lTopRaw uint8) bool {
		lTop := int(lTopRaw%30) + 1
		d := &Dataset{Alphabet: NewAlphabet(2)}
		for _, l := range lens {
			syms := make([]Symbol, int(l%60))
			d.Seqs = append(d.Seqs, Seq{Syms: syms})
		}
		out, _ := d.Truncate(lTop)
		for _, s := range out.Seqs {
			if s.EffectiveLen() > lTop {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAvgAndMaxLen(t *testing.T) {
	d := &Dataset{Seqs: []Seq{seqOf(0), seqOf(0, 1, 0)}}
	if d.AvgLen() != 2 {
		t.Fatalf("avg len = %v", d.AvgLen())
	}
	if d.MaxLen() != 3 {
		t.Fatalf("max len = %v", d.MaxLen())
	}
}

func TestLengthDistribution(t *testing.T) {
	d := &Dataset{Seqs: []Seq{seqOf(0), seqOf(0), seqOf(0, 1), seqOf(0, 1, 0, 1)}}
	dist := d.LengthDistribution(3)
	if dist[1] != 0.5 || dist[2] != 0.25 {
		t.Fatalf("dist = %v", dist)
	}
	// Length 4 clamps into bucket 3.
	if dist[3] != 0.25 {
		t.Fatalf("clamped bucket = %v", dist[3])
	}
}

func TestTotalVariation(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{1, 0}
	if got := TotalVariation(p, q); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("TV = %v, want 0.5", got)
	}
	if got := TotalVariation(p, p); got != 0 {
		t.Fatalf("TV self = %v", got)
	}
	// Different lengths: zero-extension.
	if got := TotalVariation([]float64{1}, []float64{0.5, 0.5}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("TV extended = %v", got)
	}
}

func TestTotalVariationProperties(t *testing.T) {
	f := func(a, b []uint8) bool {
		norm := func(xs []uint8) []float64 {
			out := make([]float64, len(xs))
			total := 0.0
			for i, x := range xs {
				out[i] = float64(x)
				total += out[i]
			}
			if total == 0 {
				return out
			}
			for i := range out {
				out[i] /= total
			}
			return out
		}
		p, q := norm(a), norm(b)
		tv := TotalVariation(p, q)
		sym := TotalVariation(q, p)
		return tv >= 0 && tv <= 1.0001 && math.Abs(tv-sym) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	cases := [][]Symbol{{}, {0}, {5}, {12, 0, 7}, {1, 11, 111}}
	for _, syms := range cases {
		got := ParseKey(Key(syms))
		if len(got) != len(syms) {
			t.Fatalf("round trip length: %v -> %v", syms, got)
		}
		for i := range syms {
			if got[i] != syms[i] {
				t.Fatalf("round trip: %v -> %v", syms, got)
			}
		}
	}
}

func TestKeyNoCollisions(t *testing.T) {
	// Multi-digit symbols must not collide: [1,2] vs [12].
	if Key([]Symbol{1, 2}) == Key([]Symbol{12}) {
		t.Fatal("key collision between [1 2] and [12]")
	}
}

func TestCountOccurrences(t *testing.T) {
	d := &Dataset{Alphabet: NewAlphabet(2), Seqs: []Seq{
		seqOf(0, 0, 1), // substrings: 0(×2), 1, 00, 01, 001
		seqOf(0, 1),    // 0, 1, 01
	}}
	counts := CountOccurrences(d, 3)
	check := func(key string, want int) {
		t.Helper()
		if counts[key] != want {
			t.Errorf("count[%s] = %d, want %d", key, counts[key], want)
		}
	}
	check(Key([]Symbol{0}), 3)
	check(Key([]Symbol{1}), 2)
	check(Key([]Symbol{0, 0}), 1)
	check(Key([]Symbol{0, 1}), 2)
	check(Key([]Symbol{0, 0, 1}), 1)
}

func TestCountOccurrencesRespectsMaxLen(t *testing.T) {
	d := &Dataset{Alphabet: NewAlphabet(2), Seqs: []Seq{seqOf(0, 1, 0, 1)}}
	counts := CountOccurrences(d, 2)
	for key := range counts {
		if len(ParseKey(key)) > 2 {
			t.Fatalf("counted string longer than maxLen: %s", key)
		}
	}
}

func TestTopKOrderingAndTies(t *testing.T) {
	d := &Dataset{Alphabet: NewAlphabet(3), Seqs: []Seq{
		seqOf(0, 0, 0, 1, 1, 2),
	}}
	top := TopK(d, 3, 2)
	if len(top) != 3 {
		t.Fatalf("topk returned %d", len(top))
	}
	if top[0].Count < top[1].Count || top[1].Count < top[2].Count {
		t.Fatalf("not sorted: %+v", top)
	}
	if int(top[0].Syms[0]) != 0 || top[0].Count != 3 {
		t.Fatalf("most frequent should be '0'×3: %+v", top[0])
	}
}

func TestPrecision(t *testing.T) {
	exact := []StringCount{{Syms: []Symbol{0}}, {Syms: []Symbol{1}}}
	got := []StringCount{{Syms: []Symbol{0}}, {Syms: []Symbol{2}}}
	if p := Precision(exact, got, 2); p != 0.5 {
		t.Fatalf("precision = %v", p)
	}
	if p := Precision(exact, exact, 2); p != 1 {
		t.Fatalf("self precision = %v", p)
	}
	if p := Precision(exact, nil, 2); p != 0 {
		t.Fatalf("empty precision = %v", p)
	}
	if p := Precision(exact, exact, 0); p != 0 {
		t.Fatalf("k=0 precision = %v", p)
	}
}

func TestExactLengthQuantile(t *testing.T) {
	d := &Dataset{Seqs: make([]Seq, 100)}
	for i := range d.Seqs {
		d.Seqs[i] = Seq{Syms: make([]Symbol, i+1)} // effective len i+2
	}
	q := ExactLengthQuantile(d, 0.95)
	if q < 94 || q > 98 {
		t.Fatalf("95%% quantile = %d, want ≈96", q)
	}
}

func TestPrivateLengthQuantileNearExact(t *testing.T) {
	d := &Dataset{Seqs: make([]Seq, 2000)}
	for i := range d.Seqs {
		d.Seqs[i] = Seq{Syms: make([]Symbol, 1+i%20)}
	}
	exact := ExactLengthQuantile(d, 0.95)
	rng := dp.NewRand(7)
	private := PrivateLengthQuantile(d, 0.95, 1.0, 40, rng)
	if math.Abs(float64(private-exact)) > 3 {
		t.Fatalf("private quantile %d too far from exact %d", private, exact)
	}
}

func TestTopKOfFloatDeterministicTies(t *testing.T) {
	counts := map[string]float64{"1": 5, "0": 5, "2": 5}
	a := TopKOfFloat(counts, 2)
	b := TopKOfFloat(counts, 2)
	for i := range a {
		if Key(a[i].Syms) != Key(b[i].Syms) {
			t.Fatal("tie-breaking not deterministic")
		}
	}
	if Key(a[0].Syms) != "0" {
		t.Fatalf("lexicographic tie-break violated: %v", a[0].Syms)
	}
}
