package sequence

import (
	"fmt"
	"math"
)

// Corpus is the columnar form of a sequence dataset: every symbol of every
// sequence lives in ONE shared slab, and each sequence is described by an
// (offset, length) header into it. Compared to Dataset's []Symbol-per-Seq
// layout this makes ingestion O(1) allocations instead of O(n), makes
// truncation a pure header update (no symbol is ever copied or moved), and
// lets the PST builder address prediction points as single slab indices.
//
// Slab layout: the slab carries one boundary sentinel (value |I|) before the
// first sequence and after every sequence's ORIGINAL extent. The sentinel
// doubles as the terminal marker &: a closed sequence's terminal prediction
// point is the sentinel slot itself, and a backward scan that runs off the
// front of a sequence lands on a sentinel, which is how the PST builder
// detects the $ boundary without per-sequence bounds checks. Truncation
// never moves sentinels — it only shrinks header lengths and marks the
// sequence open, so stale symbols between the new end and the sentinel are
// simply never addressed again.
type Corpus struct {
	Alphabet Alphabet
	syms     []Symbol
	heads    []seqHead
}

type seqHead struct {
	off  int32
	n    int32
	open bool
}

// NewCorpus ingests sequences over any int-like symbol type into columnar
// form, validating every symbol against the alphabet. It performs O(1)
// allocations regardless of the number of sequences.
func NewCorpus[S ~[]E, E ~int](a Alphabet, seqs []S) (*Corpus, error) {
	total := 1 // leading boundary sentinel
	for _, s := range seqs {
		total += len(s) + 1 // symbols + trailing sentinel
	}
	// Headers address the slab with int32 offsets (8 bytes per sequence
	// instead of 24); reject corpora beyond that address space instead of
	// silently wrapping offsets.
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("corpus of %d symbols exceeds the 2^31-1 slab limit", total)
	}
	c := &Corpus{
		Alphabet: a,
		syms:     make([]Symbol, 0, total),
		heads:    make([]seqHead, len(seqs)),
	}
	end := Symbol(a.Size)
	c.syms = append(c.syms, end)
	for i, s := range seqs {
		c.heads[i] = seqHead{off: int32(len(c.syms)), n: int32(len(s))}
		for _, x := range s {
			if int(x) < 0 || int(x) >= a.Size {
				return nil, fmt.Errorf("sequence %d symbol %d out of range [0,%d)", i, int(x), a.Size)
			}
			c.syms = append(c.syms, Symbol(x))
		}
		c.syms = append(c.syms, end)
	}
	return c, nil
}

// CorpusOfDataset converts a per-slice Dataset into columnar form,
// preserving open/closed flags. Symbols are assumed already validated.
func CorpusOfDataset(d *Dataset) *Corpus {
	total := 1
	for _, s := range d.Seqs {
		total += len(s.Syms) + 1
	}
	if total > math.MaxInt32 {
		// Internal conversion path (callers hold an in-memory Dataset that
		// is already validated); wrapping offsets would corrupt histograms
		// silently, so fail loudly instead.
		panic("sequence: corpus exceeds the 2^31-1 slab limit")
	}
	c := &Corpus{
		Alphabet: d.Alphabet,
		syms:     make([]Symbol, 0, total),
		heads:    make([]seqHead, len(d.Seqs)),
	}
	end := Symbol(d.Alphabet.Size)
	c.syms = append(c.syms, end)
	for i, s := range d.Seqs {
		c.heads[i] = seqHead{off: int32(len(c.syms)), n: int32(len(s.Syms)), open: s.Open}
		c.syms = append(c.syms, s.Syms...)
		c.syms = append(c.syms, end)
	}
	return c
}

// N returns the number of sequences.
func (c *Corpus) N() int { return len(c.heads) }

// Slab exposes the shared symbol slab. Treat it as read-only; positions are
// addressed via Head offsets.
func (c *Corpus) Slab() []Symbol { return c.syms }

// Head returns sequence i's slab offset, current length, and open flag.
func (c *Corpus) Head(i int) (off, n int32, open bool) {
	h := c.heads[i]
	return h.off, h.n, h.open
}

// Syms returns sequence i's symbols as a zero-copy window into the slab.
func (c *Corpus) Syms(i int) []Symbol {
	h := c.heads[i]
	return c.syms[h.off : h.off+h.n : h.off+h.n]
}

// Open reports whether sequence i is open-ended (truncated, no & marker).
func (c *Corpus) Open(i int) bool { return c.heads[i].open }

// Len returns sequence i's symbol count.
func (c *Corpus) Len(i int) int { return int(c.heads[i].n) }

// EffectiveLen returns sequence i's length counting & but not $ — the
// quantity bounded by l⊤ in Theorem 4.1.
func (c *Corpus) EffectiveLen(i int) int {
	h := c.heads[i]
	if h.open {
		return int(h.n)
	}
	return int(h.n) + 1
}

// MaxLen returns the maximum symbol count over all sequences.
func (c *Corpus) MaxLen() int {
	m := int32(0)
	for _, h := range c.heads {
		if h.n > m {
			m = h.n
		}
	}
	return int(m)
}

// PredictionPoints returns the total number of prediction points (one per
// symbol, plus the terminal slot of every closed sequence) — the size of
// the PST root's occurrence set.
func (c *Corpus) PredictionPoints() int {
	total := 0
	for _, h := range c.heads {
		total += int(h.n)
		if !h.open {
			total++
		}
	}
	return total
}

// Truncate bounds every sequence's effective length by lTop IN PLACE, per
// Section 4.2: a closed sequence of effective length > lTop keeps its first
// min(len, lTop) symbols and becomes open-ended (loses &). No symbol is
// copied — only headers change. It returns the number of sequences
// affected. It matches Dataset.Truncate exactly (see the property test).
func (c *Corpus) Truncate(lTop int) int {
	truncated := 0
	for i := range c.heads {
		h := &c.heads[i]
		eff := int(h.n)
		if !h.open {
			eff++
		}
		if eff <= lTop {
			continue
		}
		truncated++
		if int(h.n) > lTop {
			h.n = int32(lTop)
		}
		h.open = true
	}
	return truncated
}
