package sequence

import (
	"testing"

	"privtree/internal/dp"
)

func randomDataset(seed uint64, maxSeqs, maxLen, alphabet int) *Dataset {
	rng := dp.NewRand(seed)
	d := &Dataset{Alphabet: NewAlphabet(alphabet)}
	n := int(rng.Uint64() % uint64(maxSeqs+1))
	for i := 0; i < n; i++ {
		l := int(rng.Uint64() % uint64(maxLen+1))
		syms := make([]Symbol, l)
		for j := range syms {
			syms[j] = Symbol(rng.Uint64() % uint64(alphabet))
		}
		d.Seqs = append(d.Seqs, Seq{Syms: syms, Open: rng.Uint64()%4 == 0})
	}
	return d
}

// TestCorpusTruncateMatchesDataset is the columnar-invariant property test:
// in-place header truncation over the slab must agree with the old
// per-slice Truncate on random datasets — same truncation count, and per
// sequence the same surviving symbols and open flag.
func TestCorpusTruncateMatchesDataset(t *testing.T) {
	for trial := uint64(0); trial < 50; trial++ {
		d := randomDataset(1000+trial, 40, 12, 2+int(trial%5))
		lTop := 1 + int(trial%10)

		want, wantTruncated := d.Truncate(lTop)
		c := CorpusOfDataset(d)
		gotTruncated := c.Truncate(lTop)

		if gotTruncated != wantTruncated {
			t.Fatalf("trial %d: corpus truncated %d, dataset truncated %d", trial, gotTruncated, wantTruncated)
		}
		if c.N() != want.N() {
			t.Fatalf("trial %d: corpus N %d != dataset N %d", trial, c.N(), want.N())
		}
		for i, s := range want.Seqs {
			if c.Open(i) != s.Open {
				t.Fatalf("trial %d seq %d: open %v, want %v", trial, i, c.Open(i), s.Open)
			}
			got := c.Syms(i)
			if len(got) != len(s.Syms) {
				t.Fatalf("trial %d seq %d: len %d, want %d", trial, i, len(got), len(s.Syms))
			}
			for j := range got {
				if got[j] != s.Syms[j] {
					t.Fatalf("trial %d seq %d symbol %d: %d, want %d", trial, i, j, got[j], s.Syms[j])
				}
			}
			if c.EffectiveLen(i) != s.EffectiveLen() {
				t.Fatalf("trial %d seq %d: effective len %d, want %d", trial, i, c.EffectiveLen(i), s.EffectiveLen())
			}
			if c.EffectiveLen(i) > lTop {
				t.Fatalf("trial %d seq %d: effective len %d exceeds lTop %d", trial, i, c.EffectiveLen(i), lTop)
			}
		}
	}
}

func TestNewCorpusValidatesSymbols(t *testing.T) {
	a := NewAlphabet(3)
	if _, err := NewCorpus(a, [][]int{{0, 1, 2}, {2, 3}}); err == nil {
		t.Fatal("out-of-range symbol accepted")
	}
	if _, err := NewCorpus(a, [][]int{{-1}}); err == nil {
		t.Fatal("negative symbol accepted")
	}
	c, err := NewCorpus(a, [][]int{{0, 1}, {}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 || c.Len(0) != 2 || c.Len(1) != 0 || c.Len(2) != 1 {
		t.Fatalf("corpus shape wrong: N=%d", c.N())
	}
	// Freshly ingested sequences are closed.
	if c.Open(0) || c.EffectiveLen(0) != 3 {
		t.Fatalf("seq 0: open=%v effective=%d", c.Open(0), c.EffectiveLen(0))
	}
}

func TestCorpusPredictionPoints(t *testing.T) {
	d := &Dataset{Alphabet: NewAlphabet(2), Seqs: []Seq{
		{Syms: []Symbol{0, 1}},          // closed: 3 points
		{Syms: []Symbol{1}, Open: true}, // open: 1 point
		{Syms: nil},                     // closed empty: 1 point (the &)
	}}
	c := CorpusOfDataset(d)
	if got := c.PredictionPoints(); got != 5 {
		t.Fatalf("prediction points = %d, want 5", got)
	}
	if c.MaxLen() != 2 {
		t.Fatalf("max len = %d", c.MaxLen())
	}
}

// TestCorpusSlabBoundaries verifies the sentinel layout the PST builder
// relies on: a sentinel (value |I|) sits before the first sequence and at
// every sequence's original end, and Syms windows never include it.
func TestCorpusSlabBoundaries(t *testing.T) {
	c, err := NewCorpus(NewAlphabet(2), [][]int{{0, 1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	slab := c.Slab()
	end := Symbol(2)
	if slab[0] != end {
		t.Fatal("missing leading sentinel")
	}
	for i := 0; i < c.N(); i++ {
		off, n, _ := c.Head(i)
		if slab[off-1] != end {
			t.Fatalf("seq %d: no sentinel before offset %d", i, off)
		}
		if slab[off+n] != end {
			t.Fatalf("seq %d: no sentinel after end", i)
		}
		for _, s := range c.Syms(i) {
			if s >= end {
				t.Fatalf("seq %d window includes a sentinel", i)
			}
		}
	}
}
