package sequence

import (
	"sort"
	"strings"
)

// Key encodes a string (in the paper's sense: a contiguous run of symbols)
// as a map key. Symbols are comma-joined so multi-digit alphabets cannot
// collide.
func Key(syms []Symbol) string {
	var b strings.Builder
	for i, x := range syms {
		if i > 0 {
			b.WriteByte(',')
		}
		// Symbols are small ints; manual itoa avoids fmt in the hot loop.
		writeInt(&b, int(x))
	}
	return b.String()
}

func writeInt(b *strings.Builder, v int) {
	if v >= 10 {
		writeInt(b, v/10)
	}
	b.WriteByte(byte('0' + v%10))
}

// ParseKey inverts Key.
func ParseKey(k string) []Symbol {
	if k == "" {
		return nil
	}
	parts := strings.Split(k, ",")
	out := make([]Symbol, len(parts))
	for i, p := range parts {
		v := 0
		for _, c := range p {
			v = v*10 + int(c-'0')
		}
		out[i] = Symbol(v)
	}
	return out
}

// CountOccurrences returns, for every string of length in [1, maxLen], the
// number of times it appears as a substring across all sequences in d
// (counting every occurrence, as in Section 6.2's frequent-string task).
func CountOccurrences(d *Dataset, maxLen int) map[string]int {
	counts := make(map[string]int)
	for _, s := range d.Seqs {
		n := len(s.Syms)
		for i := 0; i < n; i++ {
			limit := maxLen
			if n-i < limit {
				limit = n - i
			}
			for l := 1; l <= limit; l++ {
				counts[Key(s.Syms[i:i+l])]++
			}
		}
	}
	return counts
}

// StringCount is a (string, occurrence-count) pair.
type StringCount struct {
	Syms  []Symbol
	Count float64
}

// TopK returns the k most frequent strings of length ≤ maxLen in d, ties
// broken lexicographically for determinism.
func TopK(d *Dataset, k, maxLen int) []StringCount {
	counts := CountOccurrences(d, maxLen)
	return TopKOf(counts, k)
}

// TopKOf returns the k largest entries of a count map (exact or estimated),
// ties broken lexicographically by key.
func TopKOf(counts map[string]int, k int) []StringCount {
	type kv struct {
		key   string
		count int
	}
	all := make([]kv, 0, len(counts))
	for key, c := range counts {
		all = append(all, kv{key, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].key < all[j].key
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]StringCount, k)
	for i := 0; i < k; i++ {
		out[i] = StringCount{Syms: ParseKey(all[i].key), Count: float64(all[i].count)}
	}
	return out
}

// TopKOfFloat is TopKOf for float-valued (noisy) count maps.
func TopKOfFloat(counts map[string]float64, k int) []StringCount {
	type kv struct {
		key   string
		count float64
	}
	all := make([]kv, 0, len(counts))
	for key, c := range counts {
		all = append(all, kv{key, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].key < all[j].key
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]StringCount, k)
	for i := 0; i < k; i++ {
		out[i] = StringCount{Syms: ParseKey(all[i].key), Count: all[i].count}
	}
	return out
}

// Precision returns |K ∩ A| / k where K is the exact top-k set and A the
// algorithm's answer (Section 6.2). Both slices may be shorter than k; the
// denominator is k regardless, matching the paper's metric.
func Precision(exact, got []StringCount, k int) float64 {
	if k == 0 {
		return 0
	}
	in := make(map[string]bool, len(exact))
	for _, sc := range exact {
		in[Key(sc.Syms)] = true
	}
	hit := 0
	for _, sc := range got {
		if in[Key(sc.Syms)] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}
