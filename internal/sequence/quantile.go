package sequence

import (
	"math/rand/v2"
	"sort"

	"privtree/internal/dp"
)

// PrivateLengthQuantile chooses l⊤ as a differentially private approximation
// of the q-quantile (e.g. 0.95) of the sequence lengths in d, following the
// paper's footnote 2 ("first identifying the 90% or 95% quantile of the
// sequence lengths, and then computing a differentially private version of
// the quantile" [Zeng et al.]).
//
// The mechanism is the exponential mechanism over candidate cutoffs
// t ∈ [1, maxCandidate]: quality(t) = −| #(len ≤ t) − q·n |, sensitivity 1.
// It consumes eps of budget.
func PrivateLengthQuantile(d *Dataset, q, eps float64, maxCandidate int, rng *rand.Rand) int {
	lengths := make([]int, len(d.Seqs))
	for i, s := range d.Seqs {
		lengths[i] = s.EffectiveLen()
	}
	return privateQuantileOfLengths(lengths, q, eps, maxCandidate, rng)
}

// PrivateLengthQuantileCorpus is PrivateLengthQuantile over columnar data.
func PrivateLengthQuantileCorpus(c *Corpus, q, eps float64, maxCandidate int, rng *rand.Rand) int {
	lengths := make([]int, c.N())
	for i := range lengths {
		lengths[i] = c.EffectiveLen(i)
	}
	return privateQuantileOfLengths(lengths, q, eps, maxCandidate, rng)
}

// privateQuantileOfLengths is the shared mechanism core; it sorts lengths
// in place.
func privateQuantileOfLengths(lengths []int, q, eps float64, maxCandidate int, rng *rand.Rand) int {
	if maxCandidate < 1 {
		maxCandidate = 1
	}
	sort.Ints(lengths)
	target := q * float64(len(lengths))

	scores := make([]float64, maxCandidate)
	for t := 1; t <= maxCandidate; t++ {
		// #(len <= t) via binary search on the sorted lengths.
		le := sort.SearchInts(lengths, t+1)
		diff := float64(le) - target
		if diff < 0 {
			diff = -diff
		}
		scores[t-1] = -diff
	}
	em := dp.ExponentialMechanism{Epsilon: eps, Sensitivity: 1}
	return em.Select(rng, scores) + 1
}

// ExactLengthQuantile returns the smallest t with #(effective len ≤ t) ≥ q·n.
// Used for non-private comparisons and tests.
func ExactLengthQuantile(d *Dataset, q float64) int {
	if len(d.Seqs) == 0 {
		return 1
	}
	lengths := make([]int, len(d.Seqs))
	for i, s := range d.Seqs {
		lengths[i] = s.EffectiveLen()
	}
	sort.Ints(lengths)
	idx := int(q*float64(len(lengths))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lengths) {
		idx = len(lengths) - 1
	}
	return lengths[idx]
}
