package stream

import (
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	good := Config{EpochEpsilon: 0.5, Window: 3, SealEvery: 100, Interval: time.Second}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{EpochEpsilon: 0, Window: 3},
		{EpochEpsilon: -1, Window: 3},
		{EpochEpsilon: 0.5, Window: 0},
		{EpochEpsilon: 0.5, Window: 1, SealEvery: -1},
		{EpochEpsilon: 0.5, Window: 1, Interval: -time.Second},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestDeriveSeedDeterministicAndDistinct(t *testing.T) {
	seen := make(map[uint64]uint64)
	for epoch := uint64(1); epoch <= 1000; epoch++ {
		s := DeriveSeed(42, epoch)
		if s2 := DeriveSeed(42, epoch); s2 != s {
			t.Fatalf("DeriveSeed not deterministic at epoch %d: %d vs %d", epoch, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: epochs %d and %d both derive %d", prev, epoch, s)
		}
		seen[s] = epoch
	}
	if DeriveSeed(1, 1) == DeriveSeed(2, 1) {
		t.Fatalf("distinct bases derived the same epoch-1 seed")
	}
}

func TestRingSlidingWindow(t *testing.T) {
	const w = 3
	const eps = 0.25
	r := NewRing(w)
	if r.LastIndex() != 0 || r.Len() != 0 || r.WindowEpsilon() != 0 {
		t.Fatalf("fresh ring not empty")
	}
	if !r.LastSealedAt().IsZero() {
		t.Fatalf("fresh ring has a seal time")
	}
	for i := uint64(1); i <= 7; i++ {
		e := Epoch{Index: i, ReleaseID: "r", Fingerprint: "fp", Epsilon: eps, SealedAt: time.Unix(int64(i), 0)}
		if err := r.Add(e); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
		// The live window never exceeds W epochs or W·ε_epoch.
		if got := r.Len(); got > w {
			t.Fatalf("after epoch %d: window holds %d > %d epochs", i, got, w)
		}
		if got, bound := r.WindowEpsilon(), float64(w)*eps; got > bound {
			t.Fatalf("after epoch %d: window ε %g exceeds %g", i, got, bound)
		}
		if got := r.LastIndex(); got != i {
			t.Fatalf("LastIndex = %d, want %d", got, i)
		}
	}
	live := r.Live()
	if len(live) != w {
		t.Fatalf("live window has %d epochs, want %d", len(live), w)
	}
	for j, e := range live {
		if want := uint64(5 + j); e.Index != want {
			t.Fatalf("live[%d].Index = %d, want %d (oldest epochs must age out)", j, e.Index, want)
		}
	}
	if got := r.LastSealedAt(); !got.Equal(time.Unix(7, 0)) {
		t.Fatalf("LastSealedAt = %v", got)
	}
	if err := r.Add(Epoch{Index: 7}); err == nil {
		t.Fatalf("non-increasing epoch accepted")
	}
	if err := r.Add(Epoch{Index: 3}); err == nil {
		t.Fatalf("stale epoch accepted")
	}
}

func TestRingZeroIndexRejected(t *testing.T) {
	r := NewRing(2)
	if err := r.Add(Epoch{Index: 0}); err == nil {
		t.Fatalf("epoch 0 accepted")
	}
}
