// Package stream implements the accounting core of continual release: a
// sliding window of sealed stream epochs with sequential-composition
// bookkeeping, and the per-epoch seed derivation that keeps every epoch's
// release fingerprint distinct.
//
// # The sliding-window composition argument
//
// Each sealed epoch e is released by one ordinary Session release that
// debits ε_epoch — durable-before-build, exactly like any other release.
// The served window at any moment is the last W sealed epochs; answering
// a query against the window is post-processing of those W releases (a
// sum of already-released range counts or frequencies), so by sequential
// composition the window's privacy cost is bounded by W·ε_epoch.
//
// Aged-out epochs leave the served window but their ε stays spent in the
// ledger: the TOTAL cost of everything ever released is Σ debits, which
// the session's budget bounds as always. The window bound is the per-
// moment guarantee (what the live dashboard reveals about recent data);
// the ledger bound is the lifetime guarantee. Both hold simultaneously,
// and both survive restarts because debits and seals are WAL records.
package stream

import (
	"fmt"
	"sync"
	"time"
)

// Config is a streaming dataset's epoch policy, fixed at registration.
type Config struct {
	// EpochEpsilon is the ε debited per sealed epoch; positive.
	EpochEpsilon float64
	// Window is W, the number of most-recent sealed epochs served by the
	// `latest` alias; at least 1. The live window's privacy cost is
	// bounded by Window·EpochEpsilon.
	Window int
	// SealEvery, when positive, auto-seals an epoch as soon as at least
	// this many records are pending. Zero disables size-triggered seals.
	SealEvery int
	// Interval, when positive, seals any non-empty pending buffer on a
	// timer. Zero disables timer-triggered seals.
	Interval time.Duration
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if !(c.EpochEpsilon > 0) {
		return fmt.Errorf("stream: epoch epsilon must be positive, got %g", c.EpochEpsilon)
	}
	if c.Window < 1 {
		return fmt.Errorf("stream: window must be >= 1, got %d", c.Window)
	}
	if c.SealEvery < 0 {
		return fmt.Errorf("stream: seal_every must be >= 0, got %d", c.SealEvery)
	}
	if c.Interval < 0 {
		return fmt.Errorf("stream: interval must be >= 0, got %s", c.Interval)
	}
	return nil
}

// DeriveSeed maps a stream's base seed and a 1-based epoch number to the
// epoch's release seed via a splitmix64-style mix. Distinct epochs get
// distinct seeds with overwhelming probability, which keeps every epoch's
// release fingerprint distinct — the fingerprint is what the WAL commit
// log, the session cache, and the seal records key on — while remaining a
// pure function of (base, epoch) so a restarted or replicated node
// re-derives the exact same release parameters.
func DeriveSeed(base, epoch uint64) uint64 {
	z := base + epoch*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Epoch is one sealed epoch in the served window.
type Epoch struct {
	// Index is the 1-based epoch number.
	Index uint64
	// ReleaseID is the serving-layer id of the epoch's release.
	ReleaseID string
	// Fingerprint is the epoch's release fingerprint (the WAL seal key).
	Fingerprint string
	// Records is the number of private records the epoch contains.
	Records int
	// Epsilon is the ε the epoch's release debited.
	Epsilon float64
	// SealedAt is the wall-clock seal time.
	SealedAt time.Time
}

// Ring is the sliding window of the last W sealed epochs. Seals push new
// epochs in and age the oldest out; readers see a consistent snapshot.
// It is safe for concurrent use.
type Ring struct {
	mu     sync.Mutex
	window int
	epochs []Epoch // oldest first, len <= window
}

// NewRing returns an empty ring serving a window of w epochs (w >= 1).
func NewRing(w int) *Ring {
	if w < 1 {
		w = 1
	}
	return &Ring{window: w}
}

// Window returns W, the ring's capacity in epochs.
func (r *Ring) Window() int { return r.window }

// Add appends a sealed epoch and ages out the oldest if the window is
// full. Epoch indices must be strictly increasing.
func (r *Ring) Add(e Epoch) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.epochs); n > 0 && e.Index <= r.epochs[n-1].Index {
		return fmt.Errorf("stream: epoch %d not after last sealed epoch %d", e.Index, r.epochs[n-1].Index)
	}
	if e.Index == 0 {
		return fmt.Errorf("stream: epoch index must be >= 1")
	}
	r.epochs = append(r.epochs, e)
	if len(r.epochs) > r.window {
		// Age out: shift rather than re-slice so aged-out epochs are not
		// pinned by the backing array.
		copy(r.epochs, r.epochs[1:])
		r.epochs = r.epochs[:r.window]
	}
	return nil
}

// Live returns a copy of the served window, oldest epoch first.
func (r *Ring) Live() []Epoch {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Epoch, len(r.epochs))
	copy(out, r.epochs)
	return out
}

// Len returns the number of epochs currently in the window.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.epochs)
}

// WindowEpsilon returns the summed ε of the epochs in the served window —
// by sequential composition, the privacy cost of everything the window
// currently reveals. It is bounded by Window()·ε_epoch by construction.
func (r *Ring) WindowEpsilon() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum float64
	for _, e := range r.epochs {
		sum += e.Epsilon
	}
	return sum
}

// LastIndex returns the newest sealed epoch number, 0 if none.
func (r *Ring) LastIndex() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.epochs); n > 0 {
		return r.epochs[n-1].Index
	}
	return 0
}

// LastSealedAt returns the newest epoch's seal time (zero time if none).
func (r *Ring) LastSealedAt() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.epochs); n > 0 {
		return r.epochs[n-1].SealedAt
	}
	return time.Time{}
}
