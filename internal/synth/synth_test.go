package synth

import (
	"math"
	"sort"
	"testing"

	"privtree/internal/dataset"
	"privtree/internal/dp"
)

func TestSpatialGeneratorsBasicContract(t *testing.T) {
	rng := dp.NewRand(1)
	cases := []struct {
		name string
		dim  int
	}{
		{"road", 2}, {"gowalla", 2}, {"nyc", 4}, {"beijing", 4},
	}
	for _, c := range cases {
		ds := SpatialByName(c.name, 5000, rng)
		if ds.N() != 5000 {
			t.Errorf("%s: n = %d", c.name, ds.N())
		}
		if ds.Dims() != c.dim {
			t.Errorf("%s: dims = %d, want %d", c.name, ds.Dims(), c.dim)
		}
		for _, p := range ds.Points {
			if !ds.Domain.Contains(p) {
				t.Fatalf("%s: point %v escapes the domain", c.name, p)
			}
		}
	}
}

func TestSpatialByNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown name did not panic")
		}
	}()
	SpatialByName("nope", 10, dp.NewRand(1))
}

// skewness measures the fraction of mass in the densest 5% of fine grid
// cells — the property that separates road/NYC from Gowalla/Beijing in the
// paper (line- and core-concentrated data leaves almost all cells empty).
func skewness(ds *dataset.Spatial, res int) float64 {
	counts := make(map[int]int)
	for _, p := range ds.Points {
		idx := 0
		for axis := 0; axis < ds.Dims(); axis++ {
			c := int(p[axis] * float64(res))
			if c >= res {
				c = res - 1
			}
			idx = idx*res + c
		}
		counts[idx]++
	}
	all := make([]int, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	total := 1
	for i := 0; i < ds.Dims(); i++ {
		total *= res
	}
	take := total / 20
	if take > len(all) {
		take = len(all)
	}
	sum := 0
	for i := 0; i < take; i++ {
		sum += all[i]
	}
	return float64(sum) / float64(ds.N())
}

func TestRoadMoreSkewedThanGowalla(t *testing.T) {
	rng := dp.NewRand(2)
	road := RoadLike(40000, rng)
	gowalla := GowallaLike(40000, rng)
	sRoad := skewness(road, 128)
	sGowalla := skewness(gowalla, 128)
	if sRoad <= sGowalla {
		t.Fatalf("road skew %v not above gowalla %v", sRoad, sGowalla)
	}
}

func TestNYCMoreSkewedThanBeijing(t *testing.T) {
	rng := dp.NewRand(3)
	nyc := NYCLike(30000, rng)
	beijing := BeijingLike(30000, rng)
	sNYC := skewness(nyc, 12)
	sBeijing := skewness(beijing, 12)
	if sNYC <= sBeijing {
		t.Fatalf("nyc skew %v not above beijing %v", sNYC, sBeijing)
	}
}

func TestTaxiDropoffCorrelation(t *testing.T) {
	// Most trips must be short: |dropoff − pickup| small for the majority.
	rng := dp.NewRand(4)
	nyc := NYCLike(20000, rng)
	short := 0
	for _, p := range nyc.Points {
		d := math.Hypot(p[2]-p[0], p[3]-p[1])
		if d < 0.2 {
			short++
		}
	}
	if frac := float64(short) / float64(nyc.N()); frac < 0.5 {
		t.Fatalf("only %v of trips are short; dropoffs not correlated", frac)
	}
}

func TestSpatialSpecsMatchTable2(t *testing.T) {
	specs := SpatialSpecs()
	if len(specs) != 4 {
		t.Fatalf("%d specs", len(specs))
	}
	want := map[string]int{"road": 1634165, "gowalla": 107091, "nyc": 98013, "beijing": 30000}
	for _, s := range specs {
		if want[s.Name] != s.N {
			t.Errorf("%s: N=%d, Table 2 says %d", s.Name, s.N, want[s.Name])
		}
	}
}

func TestSequenceGeneratorsBasicContract(t *testing.T) {
	rng := dp.NewRand(5)
	mooc := MoocLike(5000, rng)
	if mooc.Alphabet.Size != 7 {
		t.Fatalf("mooc |I| = %d", mooc.Alphabet.Size)
	}
	if mooc.N() != 5000 {
		t.Fatalf("mooc n = %d", mooc.N())
	}
	msnbc := MSNBCLike(5000, rng)
	if msnbc.Alphabet.Size != 17 {
		t.Fatalf("msnbc |I| = %d", msnbc.Alphabet.Size)
	}
	for _, s := range mooc.Seqs {
		if s.Len() == 0 {
			t.Fatal("mooc generated an empty sequence")
		}
		for _, x := range s.Syms {
			if int(x) < 0 || int(x) >= 7 {
				t.Fatalf("mooc symbol %d out of range", x)
			}
		}
	}
}

func TestSequenceMeanLengthsMatchTable3(t *testing.T) {
	rng := dp.NewRand(6)
	mooc := MoocLike(30000, rng)
	if avg := mooc.AvgLen(); math.Abs(avg-13.46) > 2.5 {
		t.Fatalf("mooc avg len %v, Table 3 says 13.46", avg)
	}
	msnbc := MSNBCLike(30000, rng)
	if avg := msnbc.AvgLen(); math.Abs(avg-4.75) > 1.2 {
		t.Fatalf("msnbc avg len %v, Table 3 says 4.75", avg)
	}
}

func TestSequenceByName(t *testing.T) {
	rng := dp.NewRand(7)
	if d := SequenceByName("mooc", 100, rng); d.Alphabet.Size != 7 {
		t.Fatal("mooc lookup broken")
	}
	if d := SequenceByName("msnbc", 100, rng); d.Alphabet.Size != 17 {
		t.Fatal("msnbc lookup broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown sequence name did not panic")
		}
	}()
	SequenceByName("nope", 10, rng)
}

func TestMarkovChainSampleRespectsMaxLen(t *testing.T) {
	rng := dp.NewRand(8)
	chain := skewedChain(5, 10, 0.4, rng)
	for i := 0; i < 500; i++ {
		s := chain.Sample(rng, 25)
		if s.Len() > 25 || s.Len() == 0 {
			t.Fatalf("sample length %d", s.Len())
		}
	}
}

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	a := RoadLike(1000, dp.NewRand(42))
	b := RoadLike(1000, dp.NewRand(42))
	for i := range a.Points {
		if a.Points[i][0] != b.Points[i][0] || a.Points[i][1] != b.Points[i][1] {
			t.Fatal("same seed produced different datasets")
		}
	}
}
