// Package synth generates the synthetic stand-ins for the paper's real
// datasets (Tables 2 and 3). Each generator is tuned to reproduce the
// property the corresponding experiment stresses — skewness for the spatial
// data, alphabet size / length distribution / Markov structure for the
// sequence data — as documented in DESIGN.md §4.
package synth

import (
	"math"
	"math/rand/v2"

	"privtree/internal/dataset"
	"privtree/internal/geom"
)

// SpatialSpec names a generator plus the scale it is built at.
type SpatialSpec struct {
	Name string
	Dim  int
	N    int
}

// Paper-scale cardinalities (Table 2). Experiments default to a scaled-down
// N for runtime; cmd/privtree-bench -full restores these.
const (
	RoadN    = 1634165
	GowallaN = 107091
	NYCN     = 98013
	BeijingN = 30000
)

// clampToDomain nudges a coordinate into [0, 1).
func clampToDomain(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return math.Nextafter(1, 0)
	}
	return x
}

// RoadLike synthesizes a highly skewed 2-D dataset in the spirit of the
// paper's road dataset (road junctions in two states): almost all mass lies
// on sparse 1-D line structures ("roads") clustered into two separated
// regions, with a faint uniform background. n points on [0,1)².
func RoadLike(n int, rng *rand.Rand) *dataset.Spatial {
	dom := geom.UnitCube(2)
	pts := make([]geom.Point, 0, n)

	// Two "states": disjoint rectangles hosting their own road networks.
	states := []geom.Rect{
		geom.NewRect(geom.Point{0.05, 0.55}, geom.Point{0.45, 0.95}),
		geom.NewRect(geom.Point{0.55, 0.05}, geom.Point{0.95, 0.45}),
	}
	type segment struct {
		a, b geom.Point
	}
	var segs []segment
	for _, st := range states {
		// A sparse network: a few long arterials plus many short streets.
		for i := 0; i < 12; i++ {
			a := randIn(st, rng)
			b := randIn(st, rng)
			segs = append(segs, segment{a, b})
		}
		for i := 0; i < 120; i++ {
			a := randIn(st, rng)
			ang := rng.Float64() * 2 * math.Pi
			l := 0.01 + 0.04*rng.Float64()
			b := geom.Point{
				clampToDomain(a[0] + l*math.Cos(ang)),
				clampToDomain(a[1] + l*math.Sin(ang)),
			}
			segs = append(segs, segment{a, b})
		}
	}
	background := n / 100 // 1% diffuse noise
	for i := 0; i < n-background; i++ {
		s := segs[rng.IntN(len(segs))]
		t := rng.Float64()
		jitter := 0.001
		p := geom.Point{
			clampToDomain(s.a[0] + t*(s.b[0]-s.a[0]) + jitter*rng.NormFloat64()),
			clampToDomain(s.a[1] + t*(s.b[1]-s.a[1]) + jitter*rng.NormFloat64()),
		}
		pts = append(pts, p)
	}
	for i := 0; i < background; i++ {
		pts = append(pts, geom.Point{rng.Float64(), rng.Float64()})
	}
	ds, err := dataset.NewSpatial(dom, pts)
	if err != nil {
		panic(err) // generator bug: all coordinates are clamped into Ω
	}
	return ds
}

// GowallaLike synthesizes a moderately skewed 2-D dataset in the spirit of
// Gowalla check-ins: ~40 Gaussian "city" blobs of varying weight over a
// broad uniform background.
func GowallaLike(n int, rng *rand.Rand) *dataset.Spatial {
	dom := geom.UnitCube(2)
	const cities = 40
	centers := make([]geom.Point, cities)
	sigmas := make([]float64, cities)
	weights := make([]float64, cities)
	totalW := 0.0
	for i := range centers {
		centers[i] = geom.Point{0.05 + 0.9*rng.Float64(), 0.05 + 0.9*rng.Float64()}
		sigmas[i] = 0.005 + 0.03*rng.Float64()
		// Zipf-ish city sizes: weight ∝ 1/(rank+1).
		weights[i] = 1 / float64(i+1)
		totalW += weights[i]
	}
	pts := make([]geom.Point, 0, n)
	background := n / 5 // 20% diffuse, matching the broad scatter in Fig. 4(b)
	for i := 0; i < n-background; i++ {
		c := sampleWeighted(weights, totalW, rng)
		pts = append(pts, geom.Point{
			clampToDomain(centers[c][0] + sigmas[c]*rng.NormFloat64()),
			clampToDomain(centers[c][1] + sigmas[c]*rng.NormFloat64()),
		})
	}
	for i := 0; i < background; i++ {
		pts = append(pts, geom.Point{rng.Float64(), rng.Float64()})
	}
	ds, err := dataset.NewSpatial(dom, pts)
	if err != nil {
		panic(err)
	}
	return ds
}

// NYCLike synthesizes a highly skewed 4-D dataset in the spirit of NYC taxi
// trips (pickup x,y + dropoff x,y): both endpoints concentrate in one small
// dense "Manhattan" core, with a secondary airport-like cluster and thin
// background.
func NYCLike(n int, rng *rand.Rand) *dataset.Spatial {
	dom := geom.UnitCube(4)
	core := geom.Point{0.35, 0.6}
	airport := geom.Point{0.8, 0.3}
	sample2 := func() (float64, float64) {
		u := rng.Float64()
		switch {
		case u < 0.75: // dense core, very tight
			return clampToDomain(core[0] + 0.02*rng.NormFloat64()),
				clampToDomain(core[1] + 0.03*rng.NormFloat64())
		case u < 0.9: // airport cluster
			return clampToDomain(airport[0] + 0.01*rng.NormFloat64()),
				clampToDomain(airport[1] + 0.01*rng.NormFloat64())
		default: // outer boroughs
			return rng.Float64(), rng.Float64()
		}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		px, py := sample2()
		dx, dy := correlatedDropoff(px, py, sample2, 0.04, rng)
		pts[i] = geom.Point{px, py, dx, dy}
	}
	ds, err := dataset.NewSpatial(dom, pts)
	if err != nil {
		panic(err)
	}
	return ds
}

// correlatedDropoff models the locality of taxi trips: most dropoffs land
// near the pickup (short rides dominate), concentrating the 4-D mass near
// the pickup-equals-dropoff diagonal exactly as real trip data does; the
// rest are independent destination draws.
func correlatedDropoff(px, py float64, sample2 func() (float64, float64), sigma float64, rng *rand.Rand) (float64, float64) {
	if rng.Float64() < 0.7 {
		return clampToDomain(px + sigma*rng.NormFloat64()),
			clampToDomain(py + sigma*rng.NormFloat64())
	}
	return sample2()
}

// BeijingLike synthesizes a less skewed 4-D dataset in the spirit of
// Beijing taxi trips: several comparable clusters with wider spread, so the
// mass is distributed more evenly than NYCLike.
func BeijingLike(n int, rng *rand.Rand) *dataset.Spatial {
	dom := geom.UnitCube(4)
	centers := []geom.Point{
		{0.3, 0.3}, {0.5, 0.6}, {0.7, 0.4}, {0.4, 0.75}, {0.65, 0.7},
	}
	sample2 := func() (float64, float64) {
		if rng.Float64() < 0.15 {
			return rng.Float64(), rng.Float64()
		}
		c := centers[rng.IntN(len(centers))]
		return clampToDomain(c[0] + 0.05*rng.NormFloat64()),
			clampToDomain(c[1] + 0.05*rng.NormFloat64())
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		px, py := sample2()
		dx, dy := correlatedDropoff(px, py, sample2, 0.08, rng)
		pts[i] = geom.Point{px, py, dx, dy}
	}
	ds, err := dataset.NewSpatial(dom, pts)
	if err != nil {
		panic(err)
	}
	return ds
}

func randIn(r geom.Rect, rng *rand.Rand) geom.Point {
	p := make(geom.Point, r.Dims())
	for i := range p {
		p[i] = r.Lo[i] + rng.Float64()*(r.Hi[i]-r.Lo[i])
	}
	return p
}

func sampleWeighted(w []float64, total float64, rng *rand.Rand) int {
	u := rng.Float64() * total
	for i, wi := range w {
		u -= wi
		if u <= 0 {
			return i
		}
	}
	return len(w) - 1
}

// SpatialByName returns the named generator's output at cardinality n:
// "road", "gowalla", "nyc", or "beijing". It panics on an unknown name.
func SpatialByName(name string, n int, rng *rand.Rand) *dataset.Spatial {
	switch name {
	case "road":
		return RoadLike(n, rng)
	case "gowalla":
		return GowallaLike(n, rng)
	case "nyc":
		return NYCLike(n, rng)
	case "beijing":
		return BeijingLike(n, rng)
	}
	panic("synth: unknown spatial dataset " + name)
}

// SpatialSpecs lists the four paper datasets with their full-scale
// cardinalities, in the order of Table 2.
func SpatialSpecs() []SpatialSpec {
	return []SpatialSpec{
		{Name: "road", Dim: 2, N: RoadN},
		{Name: "gowalla", Dim: 2, N: GowallaN},
		{Name: "nyc", Dim: 4, N: NYCN},
		{Name: "beijing", Dim: 4, N: BeijingN},
	}
}
