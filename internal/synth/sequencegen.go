package synth

import (
	"math/rand/v2"

	"privtree/internal/sequence"
)

// SequenceSpec names a sequence generator plus its scale.
type SequenceSpec struct {
	Name         string
	AlphabetSize int
	N            int
	LTop         int // the l⊤ used in the paper (Table 3)
}

// Paper-scale cardinalities (Table 3).
const (
	MoocN  = 80362
	MSNBCN = 989818
)

// MarkovChain is a ground-truth first-order chain used to synthesize
// behaviour sequences: Init[x] is the start distribution over symbols,
// Trans[x][y] the transition distribution, and Stop[x] the probability of
// terminating after emitting x.
type MarkovChain struct {
	K     int
	Init  []float64
	Trans [][]float64
	Stop  []float64
}

// Sample draws one sequence of length ≤ maxLen from the chain.
func (m *MarkovChain) Sample(rng *rand.Rand, maxLen int) sequence.Seq {
	var syms []sequence.Symbol
	cur := sampleDist(m.Init, rng)
	for {
		syms = append(syms, sequence.Symbol(cur))
		if len(syms) >= maxLen || rng.Float64() < m.Stop[cur] {
			return sequence.Seq{Syms: syms}
		}
		cur = sampleDist(m.Trans[cur], rng)
	}
}

// Generate draws n sequences.
func (m *MarkovChain) Generate(n, maxLen int, rng *rand.Rand) *sequence.Dataset {
	seqs := make([]sequence.Seq, n)
	for i := range seqs {
		seqs[i] = m.Sample(rng, maxLen)
	}
	return &sequence.Dataset{Alphabet: sequence.NewAlphabet(m.K), Seqs: seqs}
}

func sampleDist(d []float64, rng *rand.Rand) int {
	u := rng.Float64()
	for i, p := range d {
		u -= p
		if u <= 0 {
			return i
		}
	}
	return len(d) - 1
}

// skewedChain builds a chain where each state strongly prefers a few
// successors (so the data has learnable Markov structure, as user behaviour
// does) and termination probability targets the requested mean length.
func skewedChain(k int, meanLen float64, sticky float64, rng *rand.Rand) *MarkovChain {
	m := &MarkovChain{
		K:     k,
		Init:  make([]float64, k),
		Trans: make([][]float64, k),
		Stop:  make([]float64, k),
	}
	// Zipf-ish start distribution: early symbols dominate.
	total := 0.0
	for i := range m.Init {
		m.Init[i] = 1 / float64(i+1)
		total += m.Init[i]
	}
	for i := range m.Init {
		m.Init[i] /= total
	}
	for x := 0; x < k; x++ {
		row := make([]float64, k)
		// Preferred successors: the next symbol cyclically, itself, and one random.
		row[(x+1)%k] += sticky
		row[x] += sticky / 2
		row[rng.IntN(k)] += sticky / 4
		rest := 1 - (sticky + sticky/2 + sticky/4)
		for y := 0; y < k; y++ {
			row[y] += rest / float64(k)
		}
		m.Trans[x] = row
		// Geometric-ish termination around the target mean.
		m.Stop[x] = 1 / meanLen
	}
	return m
}

// MoocLike synthesizes a sequence dataset in the spirit of the mooc
// dataset: |I| = 7 behaviour categories, mean length ≈ 13.5.
func MoocLike(n int, rng *rand.Rand) *sequence.Dataset {
	chain := skewedChain(7, 13.46, 0.45, rng)
	return chain.Generate(n, 200, rng)
}

// MSNBCLike synthesizes a sequence dataset in the spirit of msnbc:
// |I| = 17 URL categories, short sequences (mean ≈ 4.75), heavy head.
func MSNBCLike(n int, rng *rand.Rand) *sequence.Dataset {
	chain := skewedChain(17, 4.75, 0.5, rng)
	return chain.Generate(n, 120, rng)
}

// SequenceByName returns the named generator's output at cardinality n:
// "mooc" or "msnbc". It panics on an unknown name.
func SequenceByName(name string, n int, rng *rand.Rand) *sequence.Dataset {
	switch name {
	case "mooc":
		return MoocLike(n, rng)
	case "msnbc":
		return MSNBCLike(n, rng)
	}
	panic("synth: unknown sequence dataset " + name)
}

// SequenceSpecs lists the two paper sequence datasets (Table 3).
func SequenceSpecs() []SequenceSpec {
	return []SequenceSpec{
		{Name: "mooc", AlphabetSize: 7, N: MoocN, LTop: 50},
		{Name: "msnbc", AlphabetSize: 17, N: MSNBCN, LTop: 20},
	}
}
