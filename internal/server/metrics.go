package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// metrics aggregates the server's operational counters. All fields are
// updated with atomics so handlers never contend on a lock for accounting.
type metrics struct {
	start time.Time

	requestsTotal atomic.Int64

	mu      sync.Mutex
	byRoute map[string]*atomic.Int64

	queriesAnswered  atomic.Int64
	queryNanos       atomic.Int64
	releasesBuilt    atomic.Int64
	releaseCacheHits atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), byRoute: make(map[string]*atomic.Int64)}
}

// routeCounter returns the request counter for a named route, creating it
// on first use (registration time), so request-path increments are lock-free.
func (m *metrics) routeCounter(name string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byRoute[name]
	if !ok {
		c = &atomic.Int64{}
		m.byRoute[name] = c
	}
	return c
}

// snapshotRoutes copies the per-route counters.
func (m *metrics) snapshotRoutes() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.byRoute))
	for name, c := range m.byRoute {
		out[name] = c.Load()
	}
	return out
}

// recordQueries accounts for a batch of answered queries.
func (m *metrics) recordQueries(n int, elapsed time.Duration) {
	m.queriesAnswered.Add(int64(n))
	m.queryNanos.Add(elapsed.Nanoseconds())
}

// uptime returns the time since the server started.
func (m *metrics) uptime() time.Duration { return time.Since(m.start) }

// queriesPerSecond returns the average query throughput over the server's
// lifetime (0 before any query).
func (m *metrics) queriesPerSecond() float64 {
	up := m.uptime().Seconds()
	if up <= 0 {
		return 0
	}
	return float64(m.queriesAnswered.Load()) / up
}
