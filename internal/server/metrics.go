package server

import (
	"errors"
	"sync"
	"time"

	"privtree/internal/obs"
	"privtree/internal/repl"
)

// qpsWindow is the sliding window behind the queries_per_second gauge. A
// lifetime average lies — a server idle for an hour reports near-zero
// throughput for the burst it is currently serving — so the rate covers
// only the trailing window; the lifetime total stays available as the
// privtree_queries_answered_total counter.
const qpsWindow = 30 * time.Second

// metrics is the server's instrumentation plane, re-based on
// internal/obs: every counter, gauge, and histogram lives in one named
// registry (served as Prometheus text on /metrics), handlers resolve
// their instruments once at registration time, and every hot-path
// observation is lock-free and allocation-free.
type metrics struct {
	start time.Time
	reg   *obs.Registry

	requestsTotal    *obs.Counter
	queriesAnswered  *obs.Counter
	queryNanos       *obs.Counter
	queryWindow      *obs.Window
	releasesBuilt    *obs.Counter
	releaseCacheHits *obs.Counter

	// Streaming plane: ingest traffic totals (batch/record counts are
	// API-traffic accounting, like the request counters), a trailing
	// ingest-rate window, and the epoch-seal counter.
	ingestBatches *obs.Counter
	ingestRecords *obs.Counter
	ingestWindow  *obs.Window
	sealsTotal    *obs.Counter

	// Overload observability: shedTotal counts requests bounced by a
	// saturated admission gate (HTTP 429), deadlineTotal counts requests
	// that died to a per-route deadline or client cancellation (503
	// deadline_exceeded), drainRejects counts requests refused during
	// shutdown (503 shutting_down). retryableTotal is their sum — every
	// response that told a well-behaved client "back off and retry".
	shedTotal      *obs.Counter
	deadlineTotal  *obs.Counter
	drainRejects   *obs.Counter
	retryableTotal *obs.Counter

	// walFsync times every WAL fsync across all datasets (the store's
	// fsync observer feeds it).
	walFsync *obs.Histogram

	// byRoute mirrors the per-route request counters for the /metricsz
	// JSON view. The obs registry is the source of truth (and is
	// race-free by construction); this map exists only because the JSON
	// shape predates it. Guarded by mu — routes register concurrently in
	// tests even though New wires them serially.
	mu      sync.Mutex
	byRoute map[string]*obs.Counter
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		start:   time.Now(),
		reg:     reg,
		byRoute: make(map[string]*obs.Counter),

		requestsTotal:    reg.Counter("privtree_requests_total", "HTTP requests received, all routes."),
		queriesAnswered:  reg.Counter("privtree_queries_answered_total", "Range-count and frequency queries answered."),
		queryNanos:       reg.Counter("privtree_query_nanos_total", "Cumulative nanoseconds spent answering query batches."),
		queryWindow:      obs.NewWindow(),
		releasesBuilt:    reg.Counter("privtree_releases_built_total", "Releases built (ε debited)."),
		releaseCacheHits: reg.Counter("privtree_release_cache_hits_total", "Release requests served from cache (no new debit)."),

		ingestBatches: reg.Counter("privtree_ingest_batches_total", "Ingest batches applied (duplicates excluded)."),
		ingestRecords: reg.Counter("privtree_ingest_records_total", "Records ingested into streaming datasets."),
		ingestWindow:  obs.NewWindow(),
		sealsTotal:    reg.Counter("privtree_stream_seals_total", "Stream epochs sealed and released."),

		shedTotal:      reg.Counter("privtree_shed_total", "Requests shed by a saturated admission gate (HTTP 429)."),
		deadlineTotal:  reg.Counter("privtree_deadline_exceeded_total", "Requests that died to a deadline or client cancellation."),
		drainRejects:   reg.Counter("privtree_draining_rejects_total", "Requests refused during shutdown."),
		retryableTotal: reg.Counter("privtree_retryable_errors_total", "All responses that told the client to back off and retry."),

		walFsync: reg.Histogram("privtree_wal_fsync_seconds", "WAL fsync latency, all datasets.", nil),
	}
	reg.GaugeFunc("privtree_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(m.start).Seconds() })
	reg.GaugeFunc("privtree_queries_per_second", "Query throughput over the trailing 30s window.",
		func() float64 { return m.queryWindow.Rate(qpsWindow) })
	reg.GaugeFunc("privtree_ingest_records_per_second", "Ingest throughput over the trailing 30s window.",
		func() float64 { return m.ingestWindow.Rate(qpsWindow) })
	obs.RegisterRuntimeMetrics(reg)
	return m
}

// routeInstruments returns the request counter and latency histogram for
// a named route, registering them on first use. Registration is
// get-or-create inside the obs registry, so concurrent handler setup can
// never race a scrape or lose a counter — the request path touches only
// the returned atomics.
func (m *metrics) routeInstruments(name string) (*obs.Counter, *obs.Histogram) {
	lbl := obs.Label{Name: "route", Value: name}
	c := m.reg.Counter("privtree_http_requests_total", "HTTP requests by route.", lbl)
	h := m.reg.Histogram("privtree_http_request_seconds", "HTTP request latency by route.", nil, lbl)
	m.mu.Lock()
	m.byRoute[name] = c
	m.mu.Unlock()
	return c, h
}

// snapshotRoutes copies the per-route counters (the /metricsz JSON view).
func (m *metrics) snapshotRoutes() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.byRoute))
	for name, c := range m.byRoute {
		out[name] = int64(c.Value())
	}
	return out
}

// stageHist returns the build-stage latency histogram for one named
// stage (debit, wal_debit, build, envelope, wal_commit); the create-
// release handler feeds it from the request trace's spans.
func (m *metrics) stageHist(stage string) *obs.Histogram {
	return m.reg.Histogram("privtree_build_stage_seconds", "Release build stage latency, from request traces.",
		nil, obs.Label{Name: "stage", Value: stage})
}

// registerDataset registers the per-dataset gauges. They are gauge
// functions over the dataset's own ledger and store — the authoritative
// state — so scrapes can never drift from the accounting.
func (m *metrics) registerDataset(d *Dataset) {
	lbl := obs.Label{Name: "dataset", Value: d.Name}
	led := d.Ledger
	m.reg.GaugeFunc("privtree_dataset_epsilon_total", "Configured total privacy budget.",
		func() float64 { return led.Total() }, lbl)
	m.reg.GaugeFunc("privtree_dataset_epsilon_spent", "Privacy budget consumed.",
		func() float64 { return led.Spent() }, lbl)
	m.reg.GaugeFunc("privtree_dataset_epsilon_remaining", "Privacy budget still available.",
		func() float64 { return led.Remaining() }, lbl)
	m.reg.GaugeFunc("privtree_dataset_releases", "Releases registered for the dataset.",
		func() float64 { return float64(d.NumReleases()) }, lbl)
	m.reg.GaugeFunc("privtree_dataset_store_bytes", "On-disk store footprint (0 without persistence).",
		func() float64 { return float64(d.StoreBytes()) }, lbl)
	m.reg.GaugeFunc("privtree_dataset_wal_seq", "Highest WAL sequence number issued (0 without persistence).",
		func() float64 { return float64(d.WALSeq()) }, lbl)
}

// registerReplicaDataset adds the shipping-progress gauges for one
// replicated dataset: the last primary WAL sequence applied locally, the
// record lag behind the last observed primary position, and — for
// streaming datasets — the epochs the replica's served window trails the
// primary's. Like every other dataset gauge, all are functions over the
// authoritative state.
func (m *metrics) registerReplicaDataset(d *Dataset, sy *repl.Syncer) {
	lbl := obs.Label{Name: "dataset", Value: d.Name}
	m.reg.GaugeFunc("privtree_replica_last_applied_seq", "Highest primary WAL sequence number applied locally.",
		func() float64 { return float64(d.WALSeq()) }, lbl)
	m.reg.GaugeFunc("privtree_replica_lag_records", "WAL records observed on the primary but not yet applied.",
		func() float64 { return float64(sy.Status()[d.Name].Lag()) }, lbl)
	if d.IsStream() {
		m.reg.GaugeFunc("privtree_replica_epochs_behind", "Sealed epochs observed on the primary but not yet in the local window.",
			func() float64 { return float64(d.epochsBehind(sy)) }, lbl)
	}
}

// registerStreamDataset adds the per-dataset streaming gauges. Pending
// counts acknowledged-but-unsealed records — derived from ingest API
// traffic, not from hidden data (contrast the undisclosed cardinality).
func (m *metrics) registerStreamDataset(d *Dataset) {
	lbl := obs.Label{Name: "dataset", Value: d.Name}
	st := d.stream
	m.reg.GaugeFunc("privtree_stream_last_epoch", "Newest sealed epoch in the served window.",
		func() float64 { return float64(st.ring.LastIndex()) }, lbl)
	m.reg.GaugeFunc("privtree_stream_window_epochs", "Sealed epochs currently served by the latest alias.",
		func() float64 { return float64(st.ring.Len()) }, lbl)
	m.reg.GaugeFunc("privtree_stream_window_epsilon", "Composed ε of the served window (≤ window × epoch ε).",
		func() float64 { return st.ring.WindowEpsilon() }, lbl)
	m.reg.GaugeFunc("privtree_stream_pending_records", "Acknowledged ingest records not yet sealed into an epoch.",
		func() float64 { return float64(st.pending()) }, lbl)
	m.reg.GaugeFunc("privtree_stream_seconds_since_seal", "Seconds since the newest epoch sealed (0 before the first).",
		func() float64 {
			at := st.ring.LastSealedAt()
			if at.IsZero() {
				return 0
			}
			return time.Since(at).Seconds()
		}, lbl)
}

// recordIngest accounts for one applied ingest batch.
func (m *metrics) recordIngest(records int) {
	m.ingestBatches.Inc()
	m.ingestRecords.Add(uint64(records))
	m.ingestWindow.Add(uint64(records))
}

// recordAdmissionReject accounts for a gate rejection by kind.
func (m *metrics) recordAdmissionReject(err error) {
	switch {
	case errors.Is(err, errShed):
		m.shedTotal.Inc()
	case errors.Is(err, errDraining):
		m.drainRejects.Inc()
	default:
		m.deadlineTotal.Inc()
	}
	m.retryableTotal.Inc()
}

// recordDeadlineHit accounts for a request that was admitted but died to
// its context (deadline or client disconnect) mid-work.
func (m *metrics) recordDeadlineHit() {
	m.deadlineTotal.Inc()
	m.retryableTotal.Inc()
}

// recordQueries accounts for a batch of answered queries: the lifetime
// counters plus the sliding throughput window.
func (m *metrics) recordQueries(n int, elapsed time.Duration) {
	m.queriesAnswered.Add(uint64(n))
	m.queryNanos.Add(uint64(elapsed.Nanoseconds()))
	m.queryWindow.Add(uint64(n))
}

// uptime returns the time since the server started.
func (m *metrics) uptime() time.Duration { return time.Since(m.start) }

// queriesPerSecond returns the sliding-window query throughput.
func (m *metrics) queriesPerSecond() float64 { return m.queryWindow.Rate(qpsWindow) }
