package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// metrics aggregates the server's operational counters. All fields are
// updated with atomics so handlers never contend on a lock for accounting.
type metrics struct {
	start time.Time

	requestsTotal atomic.Int64

	mu      sync.Mutex
	byRoute map[string]*atomic.Int64

	queriesAnswered  atomic.Int64
	queryNanos       atomic.Int64
	releasesBuilt    atomic.Int64
	releaseCacheHits atomic.Int64

	// Overload observability: shedTotal counts requests bounced by a
	// saturated admission gate (HTTP 429), deadlineTotal counts requests
	// that died to a per-route deadline or client cancellation (503
	// deadline_exceeded), drainRejects counts requests refused during
	// shutdown (503 shutting_down). retryableTotal is their sum — every
	// response that told a well-behaved client "back off and retry" —
	// so a dashboard can see retry pressure at a glance.
	shedTotal      atomic.Int64
	deadlineTotal  atomic.Int64
	drainRejects   atomic.Int64
	retryableTotal atomic.Int64
}

// recordAdmissionReject accounts for a gate rejection by kind.
func (m *metrics) recordAdmissionReject(err error) {
	switch {
	case errors.Is(err, errShed):
		m.shedTotal.Add(1)
	case errors.Is(err, errDraining):
		m.drainRejects.Add(1)
	default:
		m.deadlineTotal.Add(1)
	}
	m.retryableTotal.Add(1)
}

// recordDeadlineHit accounts for a request that was admitted but died to
// its context (deadline or client disconnect) mid-work.
func (m *metrics) recordDeadlineHit() {
	m.deadlineTotal.Add(1)
	m.retryableTotal.Add(1)
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), byRoute: make(map[string]*atomic.Int64)}
}

// routeCounter returns the request counter for a named route, creating it
// on first use (registration time), so request-path increments are lock-free.
func (m *metrics) routeCounter(name string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byRoute[name]
	if !ok {
		c = &atomic.Int64{}
		m.byRoute[name] = c
	}
	return c
}

// snapshotRoutes copies the per-route counters.
func (m *metrics) snapshotRoutes() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.byRoute))
	for name, c := range m.byRoute {
		out[name] = c.Load()
	}
	return out
}

// recordQueries accounts for a batch of answered queries.
func (m *metrics) recordQueries(n int, elapsed time.Duration) {
	m.queriesAnswered.Add(int64(n))
	m.queryNanos.Add(elapsed.Nanoseconds())
}

// uptime returns the time since the server started.
func (m *metrics) uptime() time.Duration { return time.Since(m.start) }

// queriesPerSecond returns the average query throughput over the server's
// lifetime (0 before any query).
func (m *metrics) queriesPerSecond() float64 {
	up := m.uptime().Seconds()
	if up <= 0 {
		return 0
	}
	return float64(m.queriesAnswered.Load()) / up
}
