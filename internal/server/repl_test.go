package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func errCode(t *testing.T, client *http.Client, method, url string, body any) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&envelope)
	return resp.StatusCode, envelope.Error.Code
}

// TestReplicationEndToEnd drives the whole replication plane in-process:
// a primary and a replica syncing from it, bit-identical read serving,
// read_only write rejection, catch-up readiness, promotion with fencing
// of the old primary, and continued writes on the promoted node.
func TestReplicationEndToEnd(t *testing.T) {
	primary := mustNew(t, Options{DataDir: t.TempDir(), Workers: 1})
	tsP := httptest.NewServer(primary)
	defer tsP.Close()
	client := tsP.Client()

	if code := doJSON(t, client, "POST", tsP.URL+"/v1/datasets", map[string]any{
		"name": "demo", "epsilon": 2.0,
		"synthetic": map[string]any{"generator": "road", "n": 3000, "seed": 42},
	}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}
	var rel1, rel2 releaseResponse
	if code := doJSON(t, client, "POST", tsP.URL+"/v1/datasets/demo/releases",
		map[string]any{"epsilon": 0.25, "seed": 7}, &rel1); code != http.StatusCreated {
		t.Fatalf("release 1: %d", code)
	}

	replica := mustNew(t, Options{
		DataDir: t.TempDir(), Workers: 1,
		ReplicaOf: tsP.URL, ReplicaPoll: 10 * time.Millisecond,
	})
	tsR := httptest.NewServer(replica)
	defer tsR.Close()

	// Readiness flips only after the first fully caught-up pass.
	waitUntil(t, "replica readiness", func() bool {
		resp, err := client.Get(tsR.URL + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	// The replicated dataset serves bit-identical artifacts and equal budgets.
	dP, _ := primary.Registry().Get("demo")
	dR, ok := replica.Registry().Get("demo")
	if !ok {
		t.Fatal("replica did not materialize dataset demo")
	}
	if got, want := dR.Ledger.Spent(), dP.Ledger.Spent(); got != want {
		t.Fatalf("replica spent %v, primary %v", got, want)
	}
	artP := fetchArtifact(t, client, tsP.URL+"/v1/datasets/demo/releases/"+rel1.Release.ID)
	artR := fetchArtifact(t, client, tsR.URL+"/v1/datasets/demo/releases/"+rel1.Release.ID)
	if !bytes.Equal(artP, artR) {
		t.Fatal("replicated artifact bytes differ from the primary's")
	}
	if got := queryOne(t, client, tsR.URL+"/v1/datasets/demo/releases/"+rel1.Release.ID+"/query"); got < 0 {
		t.Fatalf("replica query = %v", got)
	}

	// Writes are rejected with the structured read_only code.
	if status, code := errCode(t, client, "POST", tsR.URL+"/v1/datasets/demo/releases",
		map[string]any{"epsilon": 0.25, "seed": 9}); status != http.StatusForbidden || code != "read_only" {
		t.Fatalf("replica write = %d %q, want 403 read_only", status, code)
	}
	if status, code := errCode(t, client, "POST", tsR.URL+"/v1/datasets",
		map[string]any{"name": "x", "epsilon": 1.0, "points": [][]float64{{0.5, 0.5}}}); status != http.StatusForbidden || code != "read_only" {
		t.Fatalf("replica register = %d %q, want 403 read_only", status, code)
	}

	// A release created after the replica attached ships too.
	if code := doJSON(t, client, "POST", tsP.URL+"/v1/datasets/demo/releases",
		map[string]any{"epsilon": 0.5, "seed": 8}, &rel2); code != http.StatusCreated {
		t.Fatalf("release 2: %d", code)
	}
	waitUntil(t, "release 2 to replicate", func() bool { return dR.WALSeq() >= dP.WALSeq() })
	if !bytes.Equal(
		fetchArtifact(t, client, tsP.URL+"/v1/datasets/demo/releases/"+rel2.Release.ID),
		fetchArtifact(t, client, tsR.URL+"/v1/datasets/demo/releases/"+rel2.Release.ID)) {
		t.Fatal("second replicated artifact differs")
	}

	// Fencing the live writer is refused; epoch 0 is malformed.
	if status, code := errCode(t, client, "POST", tsP.URL+"/v1/admin/fence",
		map[string]any{"epoch": 0}); status != http.StatusBadRequest || code != "bad_request" {
		t.Fatalf("fence epoch 0 = %d %q", status, code)
	}

	// Promote the replica. The old primary is fenced (best-effort push,
	// so poll), the new primary accepts writes, and re-promotion is a
	// conflict.
	var promoted struct {
		Promoted     bool              `json:"promoted"`
		WriterEpochs map[string]uint64 `json:"writer_epochs"`
	}
	if code := doJSON(t, client, "POST", tsR.URL+"/v1/admin/promote", map[string]any{}, &promoted); code != http.StatusOK {
		t.Fatalf("promote: %d", code)
	}
	if !promoted.Promoted || promoted.WriterEpochs["demo"] != 1 {
		t.Fatalf("promotion response: %+v", promoted)
	}
	if status, code := errCode(t, client, "POST", tsR.URL+"/v1/admin/promote", map[string]any{}); status != http.StatusConflict || code != "conflict" {
		t.Fatalf("second promote = %d %q, want 409 conflict", status, code)
	}
	waitUntil(t, "old primary to be fenced", func() bool {
		_, fenced := dP.store.FencedEpoch()
		return fenced
	})
	if status, code := errCode(t, client, "POST", tsP.URL+"/v1/datasets/demo/releases",
		map[string]any{"epsilon": 0.125, "seed": 11}); status != http.StatusForbidden || code != "fenced" {
		t.Fatalf("fenced primary write = %d %q, want 403 fenced", status, code)
	}
	if status, code := errCode(t, client, "POST", tsP.URL+"/v1/datasets",
		map[string]any{"name": "y", "epsilon": 1.0, "points": [][]float64{{0.5, 0.5}}}); status != http.StatusForbidden || code != "fenced" {
		t.Fatalf("fenced primary register = %d %q, want 403 fenced", status, code)
	}

	// The promoted node is the budget-writer now: new releases debit its
	// ledger, continuing exactly where the acked history left off.
	var rel3 releaseResponse
	if code := doJSON(t, client, "POST", tsR.URL+"/v1/datasets/demo/releases",
		map[string]any{"epsilon": 0.25, "seed": 10}, &rel3); code != http.StatusCreated {
		t.Fatalf("post-promotion release: %d", code)
	}
	if got, want := dR.Ledger.Spent(), 1.0; got != want {
		t.Fatalf("promoted spent = %v, want %v", got, want)
	}
	// Readiness survives promotion; role flips to primary.
	var ready struct {
		Ready bool   `json:"ready"`
		Role  string `json:"role"`
	}
	if code := doJSON(t, client, "GET", tsR.URL+"/readyz", nil, &ready); code != http.StatusOK || ready.Role != "primary" {
		t.Fatalf("readyz after promotion = %d %+v", code, ready)
	}

	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaNotReadyWithDeadPrimary proves /readyz stays 503 not_ready
// while a replica has never completed a catch-up pass, and /healthz
// stays 200 — readiness and liveness are distinct signals.
func TestReplicaNotReadyWithDeadPrimary(t *testing.T) {
	replica := mustNew(t, Options{
		DataDir: t.TempDir(), Workers: 1,
		ReplicaOf: "http://127.0.0.1:1", ReplicaPoll: 5 * time.Millisecond,
	})
	defer replica.Close()
	ts := httptest.NewServer(replica)
	defer ts.Close()

	status, code := errCode(t, ts.Client(), "GET", ts.URL+"/readyz", nil)
	if status != http.StatusServiceUnavailable || code != "not_ready" {
		t.Fatalf("readyz = %d %q, want 503 not_ready", status, code)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
}

// TestReplicaRequiresDataDir proves the constructor refuses a replica
// without durable state.
func TestReplicaRequiresDataDir(t *testing.T) {
	if _, err := New(Options{ReplicaOf: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("New accepted -replica-of without a data dir")
	}
}
