package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"privtree/internal/dp"
	"privtree/internal/store"
)

// Error codes returned in the structured error envelope.
const (
	CodeBadRequest      = "bad_request"
	CodeNotFound        = "not_found"
	CodeConflict        = "conflict"
	CodeTooLarge        = "too_large"
	CodeBudgetExhausted = "budget_exhausted"
	CodeInternal        = "internal"

	// Overload-plane codes (see the admission gates in admission.go).
	// CodeOverloaded (429, with Retry-After) means the request was shed
	// before any work — and before any ledger traffic — so retrying it is
	// always safe. CodeDeadlineExceeded (503) means the per-route deadline
	// or the client's own cancellation fired; a release request that dies
	// mid-build has its debit refunded durably before this error is
	// written, so a retry pays at most one debit. CodeShuttingDown (503)
	// means the server is draining for shutdown.
	CodeOverloaded       = "overloaded"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeShuttingDown     = "shutting_down"

	// Replication-plane codes (see repl.go). CodeReadOnly (403) means the
	// node is a read replica and the write belongs on the primary.
	// CodeFenced (403) means a higher-epoch writer superseded this node;
	// its budget-mutating paths are durably disabled. CodeNotReady (503)
	// means the node is up but should not receive traffic yet (replica
	// catch-up, drain). CodeStoreUnavailable (503) means a durable write
	// failed — the debit may be over-counted, never leaked, so retrying is
	// safe for privacy (though it may spend fresh ε).
	CodeReadOnly         = "read_only"
	CodeFenced           = "fenced"
	CodeNotReady         = "not_ready"
	CodeStoreUnavailable = "store_unavailable"
)

// errInternal tags failures that are the server's fault, not the
// client's; writeErrorFrom maps them to HTTP 500.
var errInternal = errors.New("internal server error")

// APIError is the structured error every non-2xx response carries, wrapped
// in an {"error": ...} envelope. The budget-accounting fields are pointers
// so a budget_exhausted error always serializes all three — including a
// remaining ε of exactly 0, the most common rejection — while other codes
// omit them entirely.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Budget-accounting fields, set only for CodeBudgetExhausted.
	RequestedEpsilon *float64 `json:"requested_epsilon,omitempty"`
	RemainingEpsilon *float64 `json:"remaining_epsilon,omitempty"`
	TotalEpsilon     *float64 `json:"total_epsilon,omitempty"`
}

func (e *APIError) Error() string { return e.Message }

type errorEnvelope struct {
	Error *APIError `json:"error"`
}

// writeError emits the structured error envelope with the given status.
func writeError(w http.ResponseWriter, status int, apiErr *APIError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: apiErr})
}

// writeErrorFrom maps an arbitrary error to the envelope: ledger
// rejections become CodeBudgetExhausted (403) with the accounting fields
// filled in, context expiry becomes CodeDeadlineExceeded (503, retryable),
// server-side failures become CodeInternal (500), and everything else is
// the client's CodeBadRequest (400).
func writeErrorFrom(w http.ResponseWriter, err error) {
	var be *dp.BudgetError
	if errors.As(err, &be) {
		writeError(w, http.StatusForbidden, &APIError{
			Code:             CodeBudgetExhausted,
			Message:          be.Error(),
			RequestedEpsilon: &be.Requested,
			RemainingEpsilon: &be.Remaining,
			TotalEpsilon:     &be.Total,
		})
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		// Deadline hit or client gone. 503 + deadline_exceeded is the
		// retryable shape either way: when the client cancelled, nobody
		// reads the response; when the per-route deadline fired, the
		// client should back off and retry (any mid-build debit was
		// refunded durably before this line ran).
		writeError(w, http.StatusServiceUnavailable, &APIError{Code: CodeDeadlineExceeded, Message: err.Error()})
		return
	}
	if errors.Is(err, store.ErrFenced) {
		// Checked before ErrAppend: a fenced append wraps both sentinels,
		// and "another writer owns the budget" is the actionable signal.
		writeError(w, http.StatusForbidden, &APIError{Code: CodeFenced, Message: err.Error()})
		return
	}
	if errors.Is(err, store.ErrAppend) {
		// A durable write failed (disk full, I/O error). The ledger
		// over-counts the attempted debit — never leaks it — so the client
		// may retry; 503 marks the node, not the request, as the problem.
		writeError(w, http.StatusServiceUnavailable, &APIError{Code: CodeStoreUnavailable, Message: err.Error()})
		return
	}
	if errors.Is(err, errInternal) {
		writeError(w, http.StatusInternalServerError, &APIError{Code: CodeInternal, Message: err.Error()})
		return
	}
	writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: err.Error()})
}

// writeAdmissionError renders a gate rejection: shed load is 429
// `overloaded` with a Retry-After hint, shutdown is 503 `shutting_down`,
// and a deadline that fired while queued is 503 `deadline_exceeded`.
func writeAdmissionError(w http.ResponseWriter, err error, plane string) {
	switch {
	case errors.Is(err, errShed):
		// The hint is deliberately coarse: admission decisions are
		// instantaneous, so "soon" is one second — clients add jitter.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, &APIError{
			Code:    CodeOverloaded,
			Message: fmt.Sprintf("server: %s plane saturated (all slots and queue spots busy); retry with backoff", plane),
		})
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, &APIError{
			Code:    CodeShuttingDown,
			Message: "server: shutting down, not admitting new requests",
		})
	default:
		writeError(w, http.StatusServiceUnavailable, &APIError{Code: CodeDeadlineExceeded, Message: err.Error()})
	}
}
