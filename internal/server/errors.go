package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"privtree/internal/dp"
)

// Error codes returned in the structured error envelope.
const (
	CodeBadRequest      = "bad_request"
	CodeNotFound        = "not_found"
	CodeConflict        = "conflict"
	CodeTooLarge        = "too_large"
	CodeBudgetExhausted = "budget_exhausted"
	CodeInternal        = "internal"
)

// errInternal tags failures that are the server's fault, not the
// client's; writeErrorFrom maps them to HTTP 500.
var errInternal = errors.New("internal server error")

// APIError is the structured error every non-2xx response carries, wrapped
// in an {"error": ...} envelope. The budget-accounting fields are pointers
// so a budget_exhausted error always serializes all three — including a
// remaining ε of exactly 0, the most common rejection — while other codes
// omit them entirely.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Budget-accounting fields, set only for CodeBudgetExhausted.
	RequestedEpsilon *float64 `json:"requested_epsilon,omitempty"`
	RemainingEpsilon *float64 `json:"remaining_epsilon,omitempty"`
	TotalEpsilon     *float64 `json:"total_epsilon,omitempty"`
}

func (e *APIError) Error() string { return e.Message }

type errorEnvelope struct {
	Error *APIError `json:"error"`
}

// writeError emits the structured error envelope with the given status.
func writeError(w http.ResponseWriter, status int, apiErr *APIError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: apiErr})
}

// writeErrorFrom maps an arbitrary error to the envelope: ledger
// rejections become CodeBudgetExhausted (403) with the accounting fields
// filled in, server-side failures become CodeInternal (500), and
// everything else is the client's CodeBadRequest (400).
func writeErrorFrom(w http.ResponseWriter, err error) {
	var be *dp.BudgetError
	if errors.As(err, &be) {
		writeError(w, http.StatusForbidden, &APIError{
			Code:             CodeBudgetExhausted,
			Message:          be.Error(),
			RequestedEpsilon: &be.Requested,
			RemainingEpsilon: &be.Remaining,
			TotalEpsilon:     &be.Total,
		})
		return
	}
	if errors.Is(err, errInternal) {
		writeError(w, http.StatusInternalServerError, &APIError{Code: CodeInternal, Message: err.Error()})
		return
	}
	writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: err.Error()})
}
