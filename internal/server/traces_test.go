package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"privtree/internal/obs"
)

// These tests cover the flight-recorder plane: /v1/traces listing and
// lookup, inbound X-Trace-Id adoption, tail sampling (slow ingest kept,
// normal traffic downsampled), metrics exemplars resolving to retained
// traces, and end-to-end propagation of one client-supplied ID through
// the primary's recorder, the WAL, the audit plane, and a replica's
// artifact fetch.

// getTraces GETs a /v1/traces URL and decodes the listing.
func getTraces(t *testing.T, client *http.Client, url string) tracesResponse {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var out tracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// getTrace GETs one trace by ID, returning ok=false on 404.
func getTrace(t *testing.T, client *http.Client, base, id string) (traceJSON, bool) {
	t.Helper()
	resp, err := client.Get(base + "/v1/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return traceJSON{}, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s: status %d", id, resp.StatusCode)
	}
	var out traceJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, true
}

func spanNames(spans []spanJSON) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

func hasSpan(spans []spanJSON, name string) bool {
	for _, sp := range spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}

// TestTracesPlane drives real traffic through a keep-everything recorder
// and exercises the /v1/traces API: listing, filters, lookup by ID, and
// 404 on unknown IDs.
func TestTracesPlane(t *testing.T) {
	s := mustNew(t, Options{Workers: 1, DataDir: t.TempDir(), TraceSample: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets", map[string]any{
		"name": "flights", "epsilon": 1.0, "points": rows(testPoints(200)),
	}, nil); status != http.StatusCreated {
		t.Fatalf("register: status %d", status)
	}
	var rel struct {
		ReleaseID string `json:"release_id"`
	}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets/flights/releases",
		ReleaseParams{Epsilon: 0.25, Seed: 7}, &rel); status != http.StatusCreated {
		t.Fatalf("create release: status %d", status)
	}
	// One error-class request: a release against a missing dataset.
	doJSON(t, client, "POST", ts.URL+"/v1/datasets/nope/releases", ReleaseParams{Epsilon: 0.1}, nil)

	all := getTraces(t, client, ts.URL+"/v1/traces")
	if len(all.Traces) < 3 || all.Seen < uint64(len(all.Traces)) || all.Retained != all.Seen {
		t.Fatalf("keep-everything listing: %d traces, seen=%d retained=%d", len(all.Traces), all.Seen, all.Retained)
	}

	byRoute := getTraces(t, client, ts.URL+"/v1/traces?route=create_release&dataset=flights")
	if len(byRoute.Traces) != 1 {
		t.Fatalf("route+dataset filter matched %d traces, want 1", len(byRoute.Traces))
	}
	rec := byRoute.Traces[0]
	if rec.Status != http.StatusCreated || rec.Dataset != "flights" || !obs.ValidTraceID(rec.TraceID) {
		t.Fatalf("create_release record: %+v", rec)
	}
	for _, want := range []string{"debit", "wal_debit", "build", "envelope", "wal_commit"} {
		if !hasSpan(rec.Spans, want) {
			t.Fatalf("create_release trace missing span %q: %v", want, spanNames(rec.Spans))
		}
	}

	errs := getTraces(t, client, ts.URL+"/v1/traces?status=404")
	if len(errs.Traces) != 1 || errs.Traces[0].Retained != "error" || errs.Traces[0].Dataset != "nope" {
		t.Fatalf("status filter: %+v", errs.Traces)
	}

	got, ok := getTrace(t, client, ts.URL, rec.TraceID)
	if !ok || got.TraceID != rec.TraceID || got.Route != "create_release" {
		t.Fatalf("lookup by ID: %+v ok=%v", got, ok)
	}
	if _, ok := getTrace(t, client, ts.URL, "ffffffffffffffffffffffffffffffff"); ok {
		t.Fatal("unknown trace ID did not 404")
	}

	if resp, err := client.Get(ts.URL + "/v1/traces?limit=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad limit: status %d, want 400", resp.StatusCode)
		}
	}
}

// TestTraceHeaderAdoption pins the inbound half of propagation: a
// well-formed X-Trace-Id is adopted and echoed; a malformed one is
// replaced with a fresh ID.
func TestTraceHeaderAdoption(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, Options{}))
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Trace-Id", "feedface0123456789abcdef00000042")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "feedface0123456789abcdef00000042" {
		t.Fatalf("valid inbound ID not adopted: echoed %q", got)
	}

	req2, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req2.Header.Set("X-Trace-Id", `bad id with "quotes" and spaces`)
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Trace-Id"); !obs.ValidTraceID(got) || strings.Contains(got, " ") {
		t.Fatalf("malformed inbound ID produced echo %q, want fresh valid ID", got)
	}
}

// TestTailSamplingRetainsSlowIngest is the acceptance scenario: a burst
// of normal ingest batches is downsampled away while one forced-slow
// batch (its journal fsync path delayed) is retained, with the
// ingest.append / journal.fsync spans explaining where the time went.
func TestTailSamplingRetainsSlowIngest(t *testing.T) {
	s := mustNew(t, Options{
		Workers: 1, DataDir: t.TempDir(),
		TraceSlow:   30 * time.Millisecond,
		TraceSample: 100000, // normal traffic effectively never sampled here
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets", map[string]any{
		"name": "taxi", "epsilon": 4.0,
		"domain": map[string]any{"lo": []float64{0, 0}, "hi": []float64{1, 1}},
		"stream": map[string]any{"epoch_epsilon": 0.125, "window": 8, "seal_every": 1 << 20},
	}, nil); status != http.StatusCreated {
		t.Fatalf("register stream: status %d", status)
	}

	ingest := func(seq uint64, traceID string) {
		t.Helper()
		body := strings.NewReader(`{"batch_seq":` + strconv.FormatUint(seq, 10) +
			`,"points":[[0.1,0.2],[0.3,0.4]]}`)
		req, _ := http.NewRequest("POST", ts.URL+"/v1/datasets/taxi/ingest", body)
		req.Header.Set("Content-Type", "application/json")
		if traceID != "" {
			req.Header.Set("X-Trace-Id", traceID)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d", seq, resp.StatusCode)
		}
	}
	for seq := uint64(1); seq <= 20; seq++ {
		ingest(seq, "")
	}

	// Force one slow batch by stalling at the journal's pre-fsync
	// boundary — the delay lands inside the ingest.append span. The batch
	// is stamped with its own trace ID so the post-hoc lookup does not
	// depend on what else the sampler happened to keep (a loaded machine
	// can legitimately push a "normal" fsync over the slow threshold).
	const slowID = "forced-slow-ingest-batch"
	ingestCrashHook = func(point string) {
		if point == "journal.before_sync" {
			time.Sleep(45 * time.Millisecond)
		}
	}
	defer func() { ingestCrashHook = nil }()
	ingest(21, slowID)
	ingestCrashHook = nil

	rec, ok := getTrace(t, client, ts.URL, slowID)
	if !ok || rec.Retained != "slow" || rec.Dataset != "taxi" || rec.DurationMS < 40 {
		t.Fatalf("slow ingest record: ok=%v %+v", ok, rec)
	}
	// The fast batches were downsampled, not retained: nothing in the
	// recorder was kept by the 1-in-N sampler.
	got := getTraces(t, client, ts.URL+"/v1/traces?route=ingest")
	for _, r := range got.Traces {
		if r.Retained == "sample" {
			t.Fatalf("normal ingest batch retained despite 1-in-100000 sampling: %+v", r)
		}
	}
	for _, want := range []string{"ingest.append", "journal.fsync"} {
		if !hasSpan(rec.Spans, want) {
			t.Fatalf("slow ingest trace missing span %q: %v", want, spanNames(rec.Spans))
		}
	}
	// The spans also fed the stage histograms.
	samples := scrape(t, client, ts.URL)
	for _, stage := range []string{"ingest.append", "journal.fsync"} {
		s, ok := samples[`privtree_build_stage_seconds_count{stage=`+stage+`}`]
		if !ok || s.Value != 21 {
			t.Fatalf("stage %s histogram count = %+v, want 21 observations", stage, s)
		}
	}
}

// TestMetricsExemplars verifies /metrics carries OpenMetrics exemplars on
// latency-histogram buckets, that the strict parser accepts them, and
// that an exemplar's trace_id resolves against the flight recorder.
func TestMetricsExemplars(t *testing.T) {
	s := mustNew(t, Options{Workers: 1, DataDir: t.TempDir(), TraceSample: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets", map[string]any{
		"name": "exemplars", "epsilon": 1.0, "points": rows(testPoints(200)),
	}, nil); status != http.StatusCreated {
		t.Fatalf("register: status %d", status)
	}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets/exemplars/releases",
		ReleaseParams{Epsilon: 0.25, Seed: 7}, nil); status != http.StatusCreated {
		t.Fatalf("create release: status %d", status)
	}

	samples := scrape(t, client, ts.URL) // strict ParseText inside
	var exID string
	for _, smp := range samples {
		if smp.Exemplar == nil || !strings.HasSuffix(smp.Name, "_bucket") {
			continue
		}
		if smp.Name == "privtree_http_request_seconds_bucket" && smp.Labels["route"] == "create_release" {
			exID = smp.Exemplar.Labels["trace_id"]
			if !obs.ValidTraceID(exID) {
				t.Fatalf("exemplar trace_id %q not well-formed", exID)
			}
			if smp.Exemplar.Value <= 0 {
				t.Fatalf("exemplar value = %v, want the observed latency", smp.Exemplar.Value)
			}
		}
	}
	if exID == "" {
		t.Fatal("no exemplar found on the create_release latency histogram")
	}
	rec, ok := getTrace(t, client, ts.URL, exID)
	if !ok || rec.Route != "create_release" {
		t.Fatalf("exemplar trace_id %q did not resolve to the release trace (ok=%v rec=%+v)", exID, ok, rec)
	}
}

// TestTracePropagationEndToEnd follows ONE client-supplied X-Trace-Id
// across the cluster: adopted by the primary, retained in its flight
// recorder with the full release span breakdown, persisted in the WAL
// debit record (surfaced by /v1/datasets/{name}/audit), and — once the
// release ships — present on the replica as the artifact fetch's
// recorder entry.
func TestTracePropagationEndToEnd(t *testing.T) {
	primary := mustNew(t, Options{DataDir: t.TempDir(), Workers: 1, TraceSample: 1, TraceRetain: 4096})
	tsP := httptest.NewServer(primary)
	defer tsP.Close()
	client := tsP.Client()

	if code := doJSON(t, client, "POST", tsP.URL+"/v1/datasets", map[string]any{
		"name": "demo", "epsilon": 2.0,
		"synthetic": map[string]any{"generator": "road", "n": 2000, "seed": 42},
	}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}

	const traceID = "e2e0123456789abcdef0123456789abc"
	body := strings.NewReader(`{"epsilon":0.25,"seed":7}`)
	req, _ := http.NewRequest("POST", tsP.URL+"/v1/datasets/demo/releases", body)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", traceID)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("release: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != traceID {
		t.Fatalf("primary echoed %q, want the supplied ID", got)
	}

	// 1. Primary's flight recorder has the full span breakdown.
	rec, ok := getTrace(t, client, tsP.URL, traceID)
	if !ok || rec.Route != "create_release" || rec.Dataset != "demo" {
		t.Fatalf("primary recorder lookup: ok=%v rec=%+v", ok, rec)
	}
	for _, want := range []string{"debit", "build", "wal_commit"} {
		if !hasSpan(rec.Spans, want) {
			t.Fatalf("retained release trace missing span %q: %v", want, spanNames(rec.Spans))
		}
	}

	// 2. The WAL debit record carries the ID, surfaced by the audit plane.
	var audit struct {
		Entries []struct {
			Kind    string `json:"kind"`
			TraceID string `json:"trace_id"`
		} `json:"entries"`
	}
	if code := doJSON(t, client, "GET", tsP.URL+"/v1/datasets/demo/audit", nil, &audit); code != http.StatusOK {
		t.Fatalf("audit: %d", code)
	}
	found := false
	for _, e := range audit.Entries {
		if e.Kind == "debit" && e.TraceID == traceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("no debit audit entry carries trace %s: %+v", traceID, audit.Entries)
	}

	// 3. The replica's recorder sees the shipped artifact fetch under the
	// SAME ID (adopted from the WAL commit record it pulled).
	replica := mustNew(t, Options{
		DataDir: t.TempDir(), Workers: 1, TraceSample: 1, TraceRetain: 4096,
		ReplicaOf: tsP.URL, ReplicaPoll: 10 * time.Millisecond,
	})
	tsR := httptest.NewServer(replica)
	defer tsR.Close()
	var fetched traceJSON
	waitUntil(t, "artifact fetch to land in the replica's recorder", func() bool {
		got, ok := getTrace(t, client, tsR.URL, traceID)
		if ok {
			fetched = got
		}
		return ok
	})
	if fetched.Route != "repl.artifact_fetch" || fetched.Dataset != "demo" || !hasSpan(fetched.Spans, "repl.artifact_fetch") {
		t.Fatalf("replica recorder entry: %+v", fetched)
	}
	// The replica also retained its WAL pulls as first-class traces.
	pulls := getTraces(t, client, tsR.URL+"/v1/traces?route=repl.wal_pull")
	if len(pulls.Traces) == 0 || !hasSpan(pulls.Traces[0].Spans, "repl.wal_pull") {
		t.Fatalf("replica wal_pull traces: %+v", pulls.Traces)
	}
}
