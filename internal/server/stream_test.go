package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// streamRegisterBody is the canonical spatial streaming registration used
// across these tests: ε_epoch exactly representable, window of 2.
func streamRegisterBody(name string, extra map[string]any) map[string]any {
	spec := map[string]any{"epoch_epsilon": 0.125, "window": 2, "seed": 21}
	for k, v := range extra {
		spec[k] = v
	}
	return map[string]any{
		"name": name, "epsilon": 1.0,
		"domain": map[string]any{"lo": []float64{0, 0}, "hi": []float64{1, 1}},
		"stream": spec,
	}
}

// TestStreamEndToEnd is the subsystem's acceptance test: a streaming
// dataset is registered and fed across 5 epochs through real HTTP, and
//
//	(a) spent ε equals epochs-released × ε_epoch exactly, before and
//	    after restart recovery;
//	(b) the live window's composed ε never exceeds window × ε_epoch;
//	(c) the latest alias changes only at seal boundaries, and the
//	    recovered process serves it bit-identically.
func TestStreamEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, Options{DataDir: dir, Workers: 1})
	ts := httptest.NewServer(s)
	client := ts.Client()

	if code := doJSON(t, client, "POST", ts.URL+"/v1/datasets", streamRegisterBody("sw", nil), nil); code != 201 {
		t.Fatalf("register: HTTP %d", code)
	}

	digest := func() string {
		var out struct {
			Counts []float64 `json:"counts"`
		}
		code := doJSON(t, client, "POST", ts.URL+"/v1/datasets/sw/releases/latest/query",
			map[string]any{"queries": streamCrashQueries}, &out)
		if code != 200 {
			t.Fatalf("latest query: HTTP %d", code)
		}
		return fmt.Sprintf("%x", out.Counts)
	}
	state := func() (spent float64, st streamInfoJSON) {
		var info struct {
			EpsilonSpent float64         `json:"epsilon_spent"`
			Stream       *streamInfoJSON `json:"stream"`
		}
		if code := doJSON(t, client, "GET", ts.URL+"/v1/datasets/sw", nil, &info); code != 200 || info.Stream == nil {
			t.Fatalf("info: HTTP %d stream=%v", code, info.Stream)
		}
		return info.EpsilonSpent, *info.Stream
	}

	var lastDigest string
	seq := uint64(0)
	for epoch := uint64(1); epoch <= 5; epoch++ {
		// Two plain batches, then a sealing one. Between plain batches the
		// served latest must not move — releases change only at seals.
		for b := 0; b < 3; b++ {
			seq++
			var resp ingestResponse
			code := doJSON(t, client, "POST", ts.URL+"/v1/datasets/sw/ingest", map[string]any{
				"batch_seq": seq, "points": streamCrashBatch(seq), "seal": b == 2,
			}, &resp)
			if code != 200 {
				t.Fatalf("ingest %d: HTTP %d", seq, code)
			}
			if b < 2 && epoch > 1 && digest() != lastDigest {
				t.Fatalf("latest changed between seals (epoch %d batch %d)", epoch, b)
			}
			if b == 2 && !resp.Sealed {
				t.Fatalf("batch %d did not seal: %+v", seq, resp)
			}
		}
		spent, st := state()
		if want := float64(epoch) * 0.125; spent != want {
			t.Fatalf("after epoch %d: spent ε=%v, want exactly %v", epoch, spent, want)
		}
		if st.WindowEpsilon > 2*0.125 {
			t.Fatalf("after epoch %d: window ε=%v exceeds bound %v", epoch, st.WindowEpsilon, 2*0.125)
		}
		if epoch >= 2 && (st.WindowEpochs != 2 || st.WindowEpsilon != 0.25) {
			t.Fatalf("after epoch %d: window has %d epochs ε=%v, want 2 epochs ε=0.25 (aged epochs must drop)",
				epoch, st.WindowEpochs, st.WindowEpsilon)
		}
		if st.LastEpoch != epoch {
			t.Fatalf("last epoch %d, want %d", st.LastEpoch, epoch)
		}
		d := digest()
		if d == lastDigest {
			t.Fatalf("latest did not change at seal boundary %d", epoch)
		}
		lastDigest = d
	}
	spentBefore, stBefore := state()

	// Restart from the same directory: the recovered window, accounting,
	// and served latest must match exactly.
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustNew(t, Options{DataDir: dir, Workers: 1})
	defer s2.Close()
	ts = httptest.NewServer(s2)
	defer ts.Close()
	client = ts.Client()

	spentAfter, stAfter := state()
	if spentAfter != spentBefore {
		t.Fatalf("restart changed spent ε: %v → %v", spentBefore, spentAfter)
	}
	if stAfter.LastEpoch != stBefore.LastEpoch || stAfter.WindowEpochs != stBefore.WindowEpochs ||
		stAfter.WindowEpsilon != stBefore.WindowEpsilon {
		t.Fatalf("restart changed the window: %+v → %+v", stBefore, stAfter)
	}
	if d := digest(); d != lastDigest {
		t.Fatal("restart changed the served latest window")
	}

	// The ingest plane keeps working after recovery, with sequence
	// idempotency intact across the restart.
	var resp ingestResponse
	if code := doJSON(t, client, "POST", ts.URL+"/v1/datasets/sw/ingest", map[string]any{
		"batch_seq": seq, "points": streamCrashBatch(seq),
	}, &resp); code != 200 || !resp.Duplicate {
		t.Fatalf("replay of acked batch after restart: HTTP %d %+v", code, resp)
	}
	seq++
	if code := doJSON(t, client, "POST", ts.URL+"/v1/datasets/sw/ingest", map[string]any{
		"batch_seq": seq, "points": streamCrashBatch(seq), "seal": true,
	}, &resp); code != 200 || !resp.Sealed || resp.Epoch != 6 {
		t.Fatalf("post-restart seal: HTTP %d %+v", code, resp)
	}
	if spent, _ := state(); spent != 6*0.125 {
		t.Fatalf("post-restart spend: %v, want %v", spent, 6*0.125)
	}
}

// TestStreamIngestValidation locks the all-or-nothing contract of the
// ingest plane: malformed, out-of-domain, non-finite, or wrong-plane
// batches are rejected whole with HTTP 400 and change nothing.
func TestStreamIngestValidation(t *testing.T) {
	s := mustNew(t, Options{Workers: 1})
	defer s.Close()
	if code, err := streamCrashServe(s, "POST", "/v1/datasets", streamRegisterBody("sw", nil), nil); err != nil || code != 201 {
		t.Fatalf("register: %d %v", code, err)
	}
	if code, err := streamCrashServe(s, "POST", "/v1/datasets", map[string]any{
		"name": "seqs", "epsilon": 1.0, "alphabet": 4,
		"stream": map[string]any{"epoch_epsilon": 0.125, "window": 2, "max_length": 4},
	}, nil); err != nil || code != 201 {
		t.Fatalf("register sequence stream: %d %v", code, err)
	}
	// A plain (non-stream) dataset for the not-a-stream rejection.
	if code, err := streamCrashServe(s, "POST", "/v1/datasets", map[string]any{
		"name": "static", "epsilon": 1.0,
		"points": [][]float64{{0.1, 0.2}, {0.3, 0.4}},
	}, nil); err != nil || code != 201 {
		t.Fatalf("register static: %d %v", code, err)
	}

	rejected := []struct {
		name string
		path string
		body map[string]any
	}{
		{"wrong dims", "sw", map[string]any{"points": [][]float64{{0.5}}}},
		{"out of domain", "sw", map[string]any{"points": [][]float64{{0.5, 1.5}}}},
		{"empty without seal", "sw", map[string]any{"points": [][]float64{}}},
		{"strings to spatial", "sw", map[string]any{"strings": [][]int{{0, 1}}}},
		{"points to sequence", "seqs", map[string]any{"points": [][]float64{{0.5, 0.5}}}},
		{"symbol out of range", "seqs", map[string]any{"strings": [][]int{{0, 9}}}},
		{"not a stream", "static", map[string]any{"points": [][]float64{{0.5, 0.5}}}},
	}
	for _, tc := range rejected {
		// One bad row poisons the whole batch.
		if tc.name == "out of domain" {
			tc.body = map[string]any{"points": [][]float64{{0.25, 0.25}, {0.5, 1.5}}}
		}
		code, err := streamCrashServe(s, "POST", "/v1/datasets/"+tc.path+"/ingest", tc.body, nil)
		if err != nil || code != 400 {
			t.Fatalf("%s: HTTP %d err=%v, want 400", tc.name, code, err)
		}
	}

	// NaN/Inf cannot round-trip through encoding/json; send raw JSON with
	// an overflowing literal (decodes to +Inf in a lenient reader) and a
	// bare NaN token — both must reject without applying.
	for _, raw := range []string{
		`{"points":[[1e999,0.5]]}`,
		`{"points":[[NaN,0.5]]}`,
	} {
		req := httptest.NewRequest("POST", "/v1/datasets/sw/ingest", strings.NewReader(raw))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != 400 {
			t.Fatalf("raw %q: HTTP %d, want 400", raw, rec.Code)
		}
	}

	var info struct {
		Stream *streamInfoJSON `json:"stream"`
	}
	if _, err := streamCrashServe(s, "GET", "/v1/datasets/sw", nil, &info); err != nil {
		t.Fatal(err)
	}
	if info.Stream.Pending != 0 || info.Stream.LastEpoch != 0 {
		t.Fatalf("rejected batches left state behind: %+v", info.Stream)
	}

	// A streaming dataset's releases come from seals only.
	if code, _ := streamCrashServe(s, "POST", "/v1/datasets/sw/releases",
		map[string]any{"epsilon": 0.125}, nil); code != 400 {
		t.Fatalf("direct release on a stream: HTTP %d, want 400", code)
	}
	// A streaming registration starts empty: data sources are rejected.
	body := streamRegisterBody("sw2", nil)
	body["points"] = [][]float64{{0.5, 0.5}}
	if code, _ := streamCrashServe(s, "POST", "/v1/datasets", body, nil); code != 400 {
		t.Fatalf("stream registration with a data source: HTTP %d, want 400", code)
	}
	// Latest on an unsealed stream: nothing released yet.
	if code, _ := streamCrashServe(s, "GET", "/v1/datasets/sw/releases/latest", nil, nil); code != 404 {
		t.Fatalf("latest before any seal: HTTP %d, want 404", code)
	}
}

// TestStreamSealTriggers covers the two non-explicit seal triggers: the
// seal_every row threshold and the background interval timer.
func TestStreamSealTriggers(t *testing.T) {
	s := mustNew(t, Options{Workers: 1})
	defer s.Close()
	if code, err := streamCrashServe(s, "POST", "/v1/datasets",
		streamRegisterBody("bysize", map[string]any{"seal_every": 20}), nil); err != nil || code != 201 {
		t.Fatalf("register: %d %v", code, err)
	}

	var resp ingestResponse
	if _, err := streamCrashServe(s, "POST", "/v1/datasets/bysize/ingest",
		map[string]any{"points": streamCrashBatch(1)}, &resp); err != nil || resp.Sealed {
		t.Fatalf("10 rows sealed early: %+v err=%v", resp, err)
	}
	if _, err := streamCrashServe(s, "POST", "/v1/datasets/bysize/ingest",
		map[string]any{"points": streamCrashBatch(2)}, &resp); err != nil || !resp.Sealed || resp.Epoch != 1 {
		t.Fatalf("seal_every threshold did not seal: %+v err=%v", resp, err)
	}
	// An explicit empty seal with nothing pending is a no-op.
	if _, err := streamCrashServe(s, "POST", "/v1/datasets/bysize/ingest",
		map[string]any{"seal": true}, &resp); err != nil || resp.Sealed || resp.LastEpoch != 1 {
		t.Fatalf("empty seal was not a no-op: %+v err=%v", resp, err)
	}

	// Interval timer: epochs seal with no further requests.
	if code, err := streamCrashServe(s, "POST", "/v1/datasets",
		streamRegisterBody("bytime", map[string]any{"interval_ms": 20}), nil); err != nil || code != 201 {
		t.Fatalf("register timed stream: %d %v", code, err)
	}
	if _, err := streamCrashServe(s, "POST", "/v1/datasets/bytime/ingest",
		map[string]any{"points": streamCrashBatch(3)}, &resp); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var info struct {
			Stream *streamInfoJSON `json:"stream"`
		}
		if _, err := streamCrashServe(s, "GET", "/v1/datasets/bytime", nil, &info); err != nil {
			t.Fatal(err)
		}
		if info.Stream.LastEpoch >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval timer never sealed the pending epoch")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
