package server

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"privtree/internal/geom"
)

// This file is the allocation-lean codec of the batched query plane. The
// stock encoding/json path costs ~3 heap allocations per query (one slice
// header per decoded row plus encoder internals), which dominated the
// serving profile at 10k-query batches. Here the request body is read into
// a pooled buffer, converted to a string ONCE (so number literals are
// zero-copy substrings fed straight to strconv, keeping stdlib parsing
// semantics bit-for-bit), decoded into pooled flat column buffers with
// (offset) row headers — the same columnar discipline the sequence corpus
// uses — and the response is rendered into a pooled byte buffer with the
// exact float formatting rules of encoding/json. Steady-state cost: O(1)
// allocations per BATCH instead of O(1) per query.

// maxPooledScratchBytes caps how much buffer capacity a queryScratch may
// carry back into the pool: a rare giant batch (bodies can reach
// MaxBodyBytes) should not pin hundreds of MB behind ordinary traffic.
// The default 10k-query batch retains ~2 MB, comfortably under the cap.
const maxPooledScratchBytes = 32 << 20

// queryScratch is the reusable per-request working set of handleQuery. All
// buffers are grown on demand and retained across requests via sync.Pool.
type queryScratch struct {
	body   []byte    // raw request body
	flat   []float64 // rectangle coordinates, row-major
	offs   []int32   // row boundaries into flat (len rows+1)
	syms   []int     // string symbols
	soffs  []int32   // row boundaries into syms (len rows+1)
	rects  []geom.Rect
	counts []float64
	out    []byte // response buffer
}

// retainedBytes estimates the capacity a scratch would pin in the pool.
func (sc *queryScratch) retainedBytes() int {
	return cap(sc.body) + cap(sc.out) +
		8*(cap(sc.flat)+cap(sc.counts)+cap(sc.syms)) +
		4*(cap(sc.offs)+cap(sc.soffs)) +
		48*cap(sc.rects)
}

// readBody drains r into buf (reusing its capacity), translating the
// MaxBytesReader limit error for the caller.
func readBody(r *http.Request, buf []byte) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// errBatchTooLarge distinguishes a row-count overflow (HTTP 413) from a
// malformed document (HTTP 400).
var errBatchTooLarge = errors.New("batch exceeds the row limit")

// queryBatch is the decoded form of a query request: float rows (spatial)
// and/or int rows (sequence), columnar. A nil JSON value or an absent key
// leaves the corresponding present flag false, mirroring encoding/json's
// treatment of null into a slice.
type queryBatch struct {
	hasQueries bool
	hasStrings bool
}

// parseQueryBody decodes {"queries": [[...],...]} / {"strings": [[...],...]}
// into sc's pooled buffers. Unknown fields are rejected (a misspelled field
// silently ignored would surprise exactly like a misspelled release knob),
// and more than maxRows rows in either array aborts with errBatchTooLarge
// before buffering an unbounded batch.
func parseQueryBody(s string, sc *queryScratch, maxRows int) (queryBatch, error) {
	p := parser{s: s}
	var out queryBatch
	p.ws()
	if !p.eat('{') {
		return out, p.fail("expected an object")
	}
	p.ws()
	if p.eat('}') {
		return out, nil
	}
	for {
		key, err := p.key()
		if err != nil {
			return out, err
		}
		p.ws()
		if !p.eat(':') {
			return out, p.fail("expected ':' after field name")
		}
		switch key {
		case "queries":
			present, err := p.floatRows(sc, maxRows)
			if err != nil {
				return out, err
			}
			out.hasQueries = present
		case "strings":
			present, err := p.intRows(sc, maxRows)
			if err != nil {
				return out, err
			}
			out.hasStrings = present
		default:
			return out, fmt.Errorf("unknown field %q", key)
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if p.eat('}') {
			return out, nil
		}
		return out, p.fail("expected ',' or '}' in object")
	}
}

// parser is a minimal JSON reader specialized to the query envelope. It
// never allocates: tokens are substrings of the input.
type parser struct {
	s string
	i int
}

func (p *parser) fail(msg string) error {
	return fmt.Errorf("%s at offset %d", msg, p.i)
}

func (p *parser) ws() {
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *parser) eat(c byte) bool {
	if p.i < len(p.s) && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

// key reads an object key. Escape sequences are tolerated for scanning (the
// only accepted keys contain none, so an escaped key simply fails the
// field-name match).
func (p *parser) key() (string, error) {
	p.ws()
	if !p.eat('"') {
		return "", p.fail("expected a field name")
	}
	start := p.i
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case '\\':
			p.i += 2
		case '"':
			k := p.s[start:p.i]
			p.i++
			return k, nil
		default:
			p.i++
		}
	}
	return "", p.fail("unterminated field name")
}

// null consumes the literal null if present.
func (p *parser) null() bool {
	if len(p.s)-p.i >= 4 && p.s[p.i:p.i+4] == "null" {
		p.i += 4
		return true
	}
	return false
}

// floatRows parses [[numbers...],...] into sc.flat/sc.offs.
func (p *parser) floatRows(sc *queryScratch, maxRows int) (bool, error) {
	p.ws()
	if p.null() {
		return false, nil
	}
	if !p.eat('[') {
		return false, p.fail("expected an array of query rows")
	}
	sc.flat = sc.flat[:0]
	sc.offs = append(sc.offs[:0], 0)
	p.ws()
	if p.eat(']') {
		return true, nil
	}
	for {
		if len(sc.offs) > maxRows {
			return false, errBatchTooLarge
		}
		p.ws()
		if !p.eat('[') {
			return false, p.fail("expected a query row")
		}
		p.ws()
		if !p.eat(']') {
			for {
				p.ws()
				v, err := p.number()
				if err != nil {
					return false, err
				}
				sc.flat = append(sc.flat, v)
				p.ws()
				if p.eat(',') {
					continue
				}
				if p.eat(']') {
					break
				}
				return false, p.fail("expected ',' or ']' in query row")
			}
		}
		sc.offs = append(sc.offs, int32(len(sc.flat)))
		p.ws()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			return true, nil
		}
		return false, p.fail("expected ',' or ']' after query row")
	}
}

// intRows parses [[ints...],...] into sc.syms/sc.soffs.
func (p *parser) intRows(sc *queryScratch, maxRows int) (bool, error) {
	p.ws()
	if p.null() {
		return false, nil
	}
	if !p.eat('[') {
		return false, p.fail("expected an array of symbol rows")
	}
	sc.syms = sc.syms[:0]
	sc.soffs = append(sc.soffs[:0], 0)
	p.ws()
	if p.eat(']') {
		return true, nil
	}
	for {
		if len(sc.soffs) > maxRows {
			return false, errBatchTooLarge
		}
		p.ws()
		if !p.eat('[') {
			return false, p.fail("expected a symbol row")
		}
		p.ws()
		if !p.eat(']') {
			for {
				p.ws()
				v, err := p.integer()
				if err != nil {
					return false, err
				}
				sc.syms = append(sc.syms, v)
				p.ws()
				if p.eat(',') {
					continue
				}
				if p.eat(']') {
					break
				}
				return false, p.fail("expected ',' or ']' in symbol row")
			}
		}
		sc.soffs = append(sc.soffs, int32(len(sc.syms)))
		p.ws()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			return true, nil
		}
		return false, p.fail("expected ',' or ']' after symbol row")
	}
}

// number validates the JSON number grammar and hands the exact literal to
// strconv.ParseFloat, so values are bit-identical to encoding/json's (which
// uses the same parser). The literal is a substring — no allocation.
func (p *parser) number() (float64, error) {
	start := p.i
	s := p.s
	if p.i < len(s) && s[p.i] == '-' {
		p.i++
	}
	switch {
	case p.i < len(s) && s[p.i] == '0':
		p.i++
	case p.i < len(s) && s[p.i] >= '1' && s[p.i] <= '9':
		for p.i < len(s) && s[p.i] >= '0' && s[p.i] <= '9' {
			p.i++
		}
	default:
		return 0, p.fail("expected a number")
	}
	if p.i < len(s) && s[p.i] == '.' {
		p.i++
		if p.i >= len(s) || s[p.i] < '0' || s[p.i] > '9' {
			return 0, p.fail("malformed number fraction")
		}
		for p.i < len(s) && s[p.i] >= '0' && s[p.i] <= '9' {
			p.i++
		}
	}
	if p.i < len(s) && (s[p.i] == 'e' || s[p.i] == 'E') {
		p.i++
		if p.i < len(s) && (s[p.i] == '+' || s[p.i] == '-') {
			p.i++
		}
		if p.i >= len(s) || s[p.i] < '0' || s[p.i] > '9' {
			return 0, p.fail("malformed number exponent")
		}
		for p.i < len(s) && s[p.i] >= '0' && s[p.i] <= '9' {
			p.i++
		}
	}
	v, err := strconv.ParseFloat(s[start:p.i], 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s[start:p.i])
	}
	return v, nil
}

// integer parses a JSON integer literal (symbols may not be fractional;
// leading zeros are invalid JSON, exactly as in number()).
func (p *parser) integer() (int, error) {
	s := p.s
	neg := false
	if p.i < len(s) && s[p.i] == '-' {
		neg = true
		p.i++
	}
	start := p.i
	v := 0
	for p.i < len(s) && s[p.i] >= '0' && s[p.i] <= '9' {
		v = v*10 + int(s[p.i]-'0')
		if v > math.MaxInt32 {
			return 0, p.fail("symbol out of range")
		}
		p.i++
	}
	if p.i == start {
		return 0, p.fail("expected an integer symbol")
	}
	if p.i-start > 1 && s[start] == '0' {
		return 0, p.fail("leading zero in symbol")
	}
	if p.i < len(s) && (s[p.i] == '.' || s[p.i] == 'e' || s[p.i] == 'E') {
		return 0, p.fail("symbols must be integers")
	}
	if neg {
		v = -v
	}
	return v, nil
}

// buildRects validates the decoded float rows against a d-dimensional
// domain and materializes them as rectangles aliasing the flat buffer —
// zero copies, zero per-row allocations. Errors carry the offending row.
func buildRects(sc *queryScratch, d int) error {
	rows := len(sc.offs) - 1
	if cap(sc.rects) < rows {
		sc.rects = make([]geom.Rect, rows)
	}
	sc.rects = sc.rects[:rows]
	for i := 0; i < rows; i++ {
		a, b := int(sc.offs[i]), int(sc.offs[i+1])
		if b-a != 2*d {
			return fmt.Errorf("query %d has %d coordinates, want %d (lo..., hi...)", i, b-a, 2*d)
		}
		lo := sc.flat[a : a+d : a+d]
		hi := sc.flat[a+d : b : b]
		r, err := geom.MakeRect(lo, hi)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		sc.rects[i] = r
	}
	return nil
}

// checkSyms validates the decoded symbol rows against an alphabet.
func checkSyms(sc *queryScratch, alphabet int) error {
	for i := 0; i+1 < len(sc.soffs); i++ {
		for _, x := range sc.syms[sc.soffs[i]:sc.soffs[i+1]] {
			if x < 0 || x >= alphabet {
				return fmt.Errorf("string %d has symbol %d outside [0,%d)", i, x, alphabet)
			}
		}
	}
	return nil
}

// appendJSONFloat renders f exactly as encoding/json does (shortest
// round-trip form, 'e' notation outside [1e-6, 1e21), exponent zero-pad
// stripped). Non-finite values — unreachable from released artifacts —
// render as null rather than corrupting the document.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendQueryResponse renders the batched-query reply into buf.
func appendQueryResponse(buf []byte, releaseID string, counts []float64, elapsedNS int64) []byte {
	buf = append(buf, `{"release_id":`...)
	buf = strconv.AppendQuote(buf, releaseID)
	buf = append(buf, `,"counts":[`...)
	for i, c := range counts {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendJSONFloat(buf, c)
	}
	buf = append(buf, `],"queries":`...)
	buf = strconv.AppendInt(buf, int64(len(counts)), 10)
	buf = append(buf, `,"elapsed_ns":`...)
	buf = strconv.AppendInt(buf, elapsedNS, 10)
	buf = append(buf, '}')
	return buf
}
