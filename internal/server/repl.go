// Replication plane: the primary's log-shipping endpoints, the replica's
// applying side, and the failover controls. See internal/repl for the
// protocol and the single-budget-writer argument.
//
//	GET  /v1/repl/datasets                           replicated dataset listing
//	GET  /v1/repl/datasets/{name}/wal?from=N         CRC-framed WAL records after N
//	GET  /v1/repl/datasets/{name}/artifacts/{sha}    committed envelope by content address
//	POST /v1/admin/promote                           replica → primary (bumps writer epoch)
//	POST /v1/admin/fence                             durably fence below a writer epoch
//	GET  /readyz                                     readiness (distinct from /healthz liveness)
//
// A replica (Options.ReplicaOf) serves the full read plane — queries,
// batches, audit, artifact fetch, /metrics — from bit-identical
// replicated state, and rejects writes with a structured "read_only"
// error. Promotion stops the syncer, appends a durable epoch record to
// every dataset's WAL, and best-effort delivers a fence to the old
// primary; any later shipping request the stale node receives fences it
// durably as well.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"privtree/internal/obs"
	"privtree/internal/repl"
)

// replDatasetDoc mirrors repl.DatasetDoc (kept separate so the wire shape
// is owned by the handler that serves it).
type replDatasetDoc struct {
	Name         string          `json:"name"`
	CreatedAt    time.Time       `json:"created_at"`
	WriterEpoch  uint64          `json:"writer_epoch"`
	LastSeq      uint64          `json:"last_seq"`
	LastEpoch    uint64          `json:"last_epoch,omitempty"`
	Registration json.RawMessage `json:"registration"`
}

// handleReplDatasets serves the replicated-dataset listing: every
// store-backed dataset with its registration document verbatim, its
// writer epoch, and its last WAL sequence number.
func (s *Server) handleReplDatasets(w http.ResponseWriter, r *http.Request) {
	if s.opts.DataDir == "" {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
			Message: "replication requires a data dir (-data-dir)"})
		return
	}
	ds := s.registry.List()
	out := make([]replDatasetDoc, 0, len(ds))
	for _, d := range ds {
		if d.store == nil {
			continue // in-memory dataset: nothing durable to ship
		}
		blob, err := os.ReadFile(filepath.Join(s.datasetDir(d.Name), "dataset.json"))
		if err != nil {
			writeErrorFrom(w, fmt.Errorf("%w: reading registration for %q: %v", errInternal, d.Name, err))
			return
		}
		out = append(out, replDatasetDoc{
			Name:         d.Name,
			CreatedAt:    d.CreatedAt,
			WriterEpoch:  d.store.WriterEpoch(),
			LastSeq:      d.store.LastSeq(),
			LastEpoch:    d.store.LastSealedEpoch(),
			Registration: blob,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

// handleReplWAL serves CRC-framed WAL records after ?from=N, capped at
// ?max_bytes. The puller's X-Privtree-Min-Epoch header is the fencing
// trigger: a node asked for a stream below that epoch knows a newer
// writer exists, fences itself durably, and refuses.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	d, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if d.store == nil {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
			Message: fmt.Sprintf("dataset %q has no store; nothing to ship", d.Name)})
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
			Message: "from must be a WAL sequence number"})
		return
	}
	maxBytes := 0
	if v := r.URL.Query().Get("max_bytes"); v != "" {
		if maxBytes, err = strconv.Atoi(v); err != nil || maxBytes < 0 {
			writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
				Message: "max_bytes must be a non-negative integer"})
			return
		}
	}
	if epoch, fenced := d.store.FencedEpoch(); fenced {
		writeError(w, http.StatusForbidden, &APIError{Code: CodeFenced,
			Message: fmt.Sprintf("node fenced by writer epoch %d; its history may diverge and will not be shipped", epoch)})
		return
	}
	if h := r.Header.Get(repl.HeaderMinEpoch); h != "" {
		minEpoch, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
				Message: repl.HeaderMinEpoch + " must be a writer epoch"})
			return
		}
		if minEpoch > d.store.WriterEpoch() {
			// The puller has seen a newer writer than us: we are stale.
			// Fence durably BEFORE refusing, so a crashed-and-revived stale
			// primary stays dead.
			s.fenceAll(minEpoch)
			writeError(w, http.StatusForbidden, &APIError{Code: CodeFenced,
				Message: fmt.Sprintf("puller requires writer epoch >= %d, node holds %d; fenced", minEpoch, d.store.WriterEpoch())})
			return
		}
	}
	frames, last, err := d.store.WALFrames(from, maxBytes)
	if err != nil {
		writeErrorFrom(w, fmt.Errorf("%w: reading WAL frames: %v", errInternal, err))
		return
	}
	w.Header().Set(repl.HeaderWriterEpoch, strconv.FormatUint(d.store.WriterEpoch(), 10))
	w.Header().Set(repl.HeaderLastSeq, strconv.FormatUint(last, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(frames)
}

// handleReplArtifact serves one committed envelope by content address;
// the bytes are re-verified against the address before they leave.
func (s *Server) handleReplArtifact(w http.ResponseWriter, r *http.Request) {
	d, ok := s.lookup(w, r)
	if !ok {
		return
	}
	sha := r.PathValue("sha")
	if d.store == nil || !d.store.HasArtifact(sha) {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound,
			Message: fmt.Sprintf("dataset %q has no artifact %q", d.Name, sha)})
		return
	}
	blob, err := d.store.Artifact(sha)
	if err != nil {
		writeErrorFrom(w, fmt.Errorf("%w: loading artifact: %v", errInternal, err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(blob)
}

// fenceAll durably fences every store-backed dataset below epoch (best
// effort: stores already at or above the epoch refuse, which is correct —
// they ARE the newer writer) and flips the server's fenced flag so
// registrations are refused too.
func (s *Server) fenceAll(epoch uint64) {
	for _, d := range s.registry.List() {
		if d.store != nil {
			if err := d.store.Fence(epoch); err != nil {
				s.logger.Warn("fencing dataset failed", "dataset", d.Name, "epoch", epoch, "err", err)
			}
		}
	}
	s.fenced.Store(true)
}

// handleFence durably fences this node below the requested writer epoch.
// The request is refused outright when any local dataset already holds
// that epoch or higher — a stray or replayed fence request must never
// take down the live writer.
func (s *Server) handleFence(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Epoch uint64 `json:"epoch"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Epoch == 0 {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
			Message: "epoch must be a positive writer epoch"})
		return
	}
	s.regMu.Lock()
	defer s.regMu.Unlock()
	for _, d := range s.registry.List() {
		if d.store != nil && d.store.WriterEpoch() >= req.Epoch {
			writeError(w, http.StatusConflict, &APIError{Code: CodeConflict,
				Message: fmt.Sprintf("dataset %q holds writer epoch %d >= %d; refusing to fence the live writer",
					d.Name, d.store.WriterEpoch(), req.Epoch)})
			return
		}
	}
	s.fenceAll(req.Epoch)
	writeJSON(w, http.StatusOK, map[string]any{"fenced": true, "epoch": req.Epoch})
}

// handlePromote promotes a replica to primary: the syncer is stopped (no
// more frames can arrive mid-promotion), every dataset's store appends a
// durable epoch record granting it the next writer epoch, write handlers
// open up, and a fence at the new maximum epoch is delivered to the old
// primary best-effort. Promoting a node that is already primary is a
// conflict — so is promoting twice.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	// promoteMu, not regMu: stopping the syncer waits for a loop whose
	// Ensure takes regMu, so holding regMu here would deadlock. No
	// registrations can race — a replica rejects them as read_only until
	// the flip below, and the flip happens only after the syncer is gone.
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if !s.isReplica.Load() {
		writeError(w, http.StatusConflict, &APIError{Code: CodeConflict,
			Message: "node is already a primary"})
		return
	}
	s.stopSyncer()
	trace := obs.FromContext(r.Context()).ID()
	epochs := make(map[string]uint64)
	var maxEpoch uint64
	for _, d := range s.registry.List() {
		if d.store == nil {
			continue
		}
		epoch, err := d.store.Promote(trace)
		if err != nil {
			writeErrorFrom(w, fmt.Errorf("promoting dataset %q: %w", d.Name, err))
			return
		}
		epochs[d.Name] = epoch
		if epoch > maxEpoch {
			maxEpoch = epoch
		}
	}
	s.isReplica.Store(false)
	if old := s.opts.ReplicaOf; old != "" && maxEpoch > 0 {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := repl.NewClient(old, nil).Fence(ctx, maxEpoch); err != nil {
				s.logger.Warn("best-effort fence of old primary failed (it will self-fence on first shipping contact)",
					"primary", old, "epoch", maxEpoch, "err", err)
			}
		}()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"promoted": true, "writer_epochs": epochs, "was_replica_of": s.opts.ReplicaOf,
	})
}

// handleReady serves GET /readyz: whether this node should receive
// traffic, as opposed to /healthz's "is the process up". A replica is
// not ready until its first fully caught-up sync pass (the latch never
// clears — degraded reads during a later primary outage are the point);
// a draining server is not ready; a fenced node still serves reads and
// stays ready.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	role := "primary"
	if s.isReplica.Load() {
		role = "replica"
	}
	switch {
	case s.buildGate.draining.Load() || s.batchGate.draining.Load():
		writeError(w, http.StatusServiceUnavailable, &APIError{Code: CodeNotReady,
			Message: "draining for shutdown"})
	case role == "replica" && s.syncer != nil && !s.syncer.CaughtUp():
		writeError(w, http.StatusServiceUnavailable, &APIError{Code: CodeNotReady,
			Message: fmt.Sprintf("replica catching up from %s", s.syncer.Primary())})
	default:
		doc := map[string]any{"ready": true, "role": role}
		if streams := s.streamStaleness(); len(streams) > 0 {
			doc["streams"] = streams
		}
		writeJSON(w, http.StatusOK, doc)
	}
}

// streamStaleness summarizes every streaming dataset's serving freshness
// for /readyz: the newest sealed epoch, seconds since it sealed, and —
// on replicas — how many epochs the local window trails the primary's
// advertised seal position.
func (s *Server) streamStaleness() map[string]any {
	var out map[string]any
	replica := s.isReplica.Load()
	for _, d := range s.registry.List() {
		if d.stream == nil {
			continue
		}
		doc := map[string]any{"last_epoch": d.stream.ring.LastIndex()}
		if at := d.stream.ring.LastSealedAt(); !at.IsZero() {
			doc["seconds_since_seal"] = time.Since(at).Seconds()
		}
		if replica && s.syncer != nil {
			doc["epochs_behind"] = d.epochsBehind(s.syncer)
		}
		if out == nil {
			out = make(map[string]any)
		}
		out[d.Name] = doc
	}
	return out
}

// epochsBehind returns how many sealed epochs the primary has advertised
// beyond this node's local seal position (0 when caught up or not
// replicating).
func (d *Dataset) epochsBehind(sy *repl.Syncer) uint64 {
	if d.store == nil || sy == nil {
		return 0
	}
	primary := sy.Status()[d.Name].PrimaryEpoch
	local := d.store.LastSealedEpoch()
	if primary <= local {
		return 0
	}
	return primary - local
}

// writeReadOnly rejects a write on a replica with the structured
// read_only error naming the primary.
func (s *Server) writeReadOnly(w http.ResponseWriter) {
	writeError(w, http.StatusForbidden, &APIError{Code: CodeReadOnly,
		Message: fmt.Sprintf("this node is a read replica of %s; send writes to the primary", s.opts.ReplicaOf)})
}

// replicaDataset adapts a *Dataset to repl.Replica: the applying side of
// log shipping.
type replicaDataset struct{ d *Dataset }

func (r replicaDataset) LastSeq() uint64                        { return r.d.store.LastSeq() }
func (r replicaDataset) WriterEpoch() uint64                    { return r.d.store.WriterEpoch() }
func (r replicaDataset) HasArtifact(sha string) bool            { return r.d.store.HasArtifact(sha) }
func (r replicaDataset) PutArtifact(sha string, b []byte) error { return r.d.store.PutArtifact(sha, b) }

// ApplyFrames applies shipped WAL frames verbatim through the session —
// which validates, persists, and replays them into the ledger — then
// registers any newly committed releases in the serving maps, exactly as
// restart recovery does, so the replica serves them bit-identically.
func (r replicaDataset) ApplyFrames(frames []byte) error {
	restored, err := r.d.session.ApplyReplicated(frames)
	if err != nil {
		return err
	}
	for _, rr := range restored {
		if err := r.d.restoreRelease(rr.Release, rr.At); err != nil {
			return fmt.Errorf("registering replicated release: %w", err)
		}
	}
	if r.d.stream != nil {
		// Shipped seal records advance the replica's served window. The
		// member releases were restored just above (artifacts are fetched
		// before frames are applied), so every fingerprint resolves.
		if err := r.d.stream.refresh(r.d); err != nil {
			return fmt.Errorf("refreshing stream window: %w", err)
		}
	}
	return nil
}

// replicaTarget implements repl.Target over the server's registry:
// Ensure materializes a dataset the first time the primary's listing
// advertises it, persisting the primary's registration bytes verbatim.
type replicaTarget struct{ s *Server }

func (t replicaTarget) Ensure(doc repl.DatasetDoc) (repl.Replica, error) {
	s := t.s
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if d, ok := s.registry.Get(doc.Name); ok {
		if d.store == nil {
			return nil, fmt.Errorf("dataset %q exists without a store; cannot replicate into it", doc.Name)
		}
		return replicaDataset{d}, nil
	}
	var pd persistedDataset
	if err := json.Unmarshal(doc.Registration, &pd); err != nil {
		return nil, fmt.Errorf("dataset %q: corrupt registration document: %w", doc.Name, err)
	}
	if pd.Version != datasetFileVersion {
		return nil, fmt.Errorf("dataset %q: unsupported dataset file version %d", doc.Name, pd.Version)
	}
	if pd.Request.Name != doc.Name {
		return nil, fmt.Errorf("dataset %q: registration document names %q", doc.Name, pd.Request.Name)
	}
	d, err := s.buildDataset(&pd.Request)
	if err != nil {
		return nil, fmt.Errorf("dataset %q: rebuilding from registration: %w", doc.Name, err)
	}
	d.CreatedAt = pd.CreatedAt
	dsDir := s.datasetDir(d.Name)
	// The primary's bytes, not a re-marshaling: a restart of this replica
	// must recover exactly the document the primary registered.
	if err := writeDatasetBlob(dsDir, doc.Registration); err != nil {
		return nil, fmt.Errorf("dataset %q: persisting registration: %w", doc.Name, err)
	}
	if err := d.AttachStore(filepath.Join(dsDir, "store")); err != nil {
		os.RemoveAll(dsDir)
		return nil, fmt.Errorf("dataset %q: %w", doc.Name, err)
	}
	if err := s.registry.Insert(d); err != nil {
		d.Close()
		os.RemoveAll(dsDir)
		return nil, err
	}
	s.datasetRegistered(d)
	return replicaDataset{d}, nil
}

// startSyncer begins continuous log shipping from Options.ReplicaOf.
func (s *Server) startSyncer() {
	httpc := s.opts.ReplicaHTTP
	if httpc == nil {
		timeout := s.opts.ReplicaTimeout
		if timeout <= 0 {
			timeout = 30 * time.Second
		}
		httpc = &http.Client{Timeout: timeout}
	}
	s.syncer = repl.NewSyncer(s.opts.ReplicaOf, replicaTarget{s}, repl.Options{
		Interval:   s.opts.ReplicaPoll,
		HTTPClient: httpc,
		Logger:     s.logger,
		// Shipping operations land in the replica's own flight recorder
		// and stage histograms; an artifact fetch arrives under the
		// originating release's trace ID, so the X-Trace-Id a client saw
		// on the primary resolves here too.
		TraceHook: func(dataset, op string, tr *obs.Trace, start time.Time, dur time.Duration, err error) {
			status := http.StatusOK
			if err != nil {
				status = http.StatusBadGateway
			}
			s.recorder.Record(tr, op, dataset, status, start, dur)
			s.metrics.stageHist(op).Observe(dur.Seconds())
		},
	})
	// Datasets recovered from disk before the syncer existed (a replica
	// restart) get their shipping gauges here; later ones get them in
	// datasetRegistered as Ensure inserts them.
	for _, d := range s.registry.List() {
		s.metrics.registerReplicaDataset(d, s.syncer)
	}
	s.metrics.reg.GaugeFunc("privtree_replica_caught_up",
		"1 after the replica's first fully caught-up sync pass (latches).",
		func() float64 {
			if s.syncer.CaughtUp() {
				return 1
			}
			return 0
		})
	ctx, cancel := context.WithCancel(context.Background())
	s.syncCancel = cancel
	s.syncDone = make(chan struct{})
	go func() {
		defer close(s.syncDone)
		s.syncer.Run(ctx)
	}()
}

// stopSyncer cancels the shipping loop and waits for it to exit, so no
// frame application can race a promotion or shutdown. Idempotent and
// safe under concurrent promote/Close.
func (s *Server) stopSyncer() {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.syncCancel == nil {
		return
	}
	s.syncCancel()
	<-s.syncDone
	s.syncCancel = nil
}
