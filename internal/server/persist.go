// Dataset persistence for privtreed's -data-dir mode. Layout:
//
//	<DataDir>/datasets/<name>/dataset.json   registration request + created_at
//	<DataDir>/datasets/<name>/store/         the session's WAL + artifacts
//
// dataset.json replays the original registration on startup (synthetic
// sources regenerate deterministically from their seed; inline sources
// are stored verbatim — the raw data already lives inside the server's
// trust boundary, that is the privacy model of registration). The store
// directory is owned by internal/store via the session: it recovers
// spent ε, the audit trail, and every committed release envelope.
//
// Ordering: dataset.json is written (tmp → fsync → rename → dir fsync)
// and the store attached BEFORE the dataset becomes visible in the
// registry, so no client can spend ε against a dataset whose ledger
// would not survive a crash.
package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

const datasetFileVersion = 1

// persistedDataset is the dataset.json document.
type persistedDataset struct {
	Version   int             `json:"privtreed_dataset"`
	CreatedAt time.Time       `json:"created_at"`
	Request   registerRequest `json:"request"`
}

// datasetDir returns the persistence directory for a dataset name (names
// are pre-validated by ValidateName, so they are path-safe by
// construction).
func (s *Server) datasetDir(name string) string {
	return filepath.Join(s.opts.DataDir, "datasets", name)
}

// writeDatasetFile durably records the registration request: tmp write,
// fsync, rename, directory fsync. After a crash either the complete file
// exists or none does.
func writeDatasetFile(dsDir string, req *registerRequest, createdAt time.Time) error {
	blob, err := json.Marshal(persistedDataset{
		Version:   datasetFileVersion,
		CreatedAt: createdAt,
		Request:   *req,
	})
	if err != nil {
		return err
	}
	return writeDatasetBlob(dsDir, blob)
}

// writeDatasetBlob durably writes already-marshaled dataset.json bytes.
// Replicas use it directly so the registration document they persist is
// byte-identical to the primary's, not a re-marshaling of it.
func writeDatasetBlob(dsDir string, blob []byte) error {
	if err := os.MkdirAll(dsDir, 0o755); err != nil {
		return err
	}
	final := filepath.Join(dsDir, "dataset.json")
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(dsDir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// loadDataDir recovers every persisted dataset at startup: replay the
// registration, attach the store (which restores the ledger and the
// committed releases), and insert. Recovery is strict — a dataset that
// cannot be restored fails startup rather than silently serving with a
// forgotten budget.
func (s *Server) loadDataDir() error {
	if s.opts.DataDir == "" {
		return nil
	}
	root := filepath.Join(s.opts.DataDir, "datasets")
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil // fresh data dir
	}
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		name := ent.Name()
		blob, err := os.ReadFile(filepath.Join(root, name, "dataset.json"))
		if err != nil {
			return fmt.Errorf("server: recovering dataset %q: %w", name, err)
		}
		var pd persistedDataset
		if err := json.Unmarshal(blob, &pd); err != nil {
			return fmt.Errorf("server: recovering dataset %q: corrupt dataset.json: %w", name, err)
		}
		if pd.Version != datasetFileVersion {
			return fmt.Errorf("server: recovering dataset %q: unsupported dataset file version %d", name, pd.Version)
		}
		if pd.Request.Name != name {
			return fmt.Errorf("server: recovering dataset %q: dataset.json names %q", name, pd.Request.Name)
		}
		d, err := s.buildDataset(&pd.Request)
		if err != nil {
			return fmt.Errorf("server: recovering dataset %q: %w", name, err)
		}
		d.CreatedAt = pd.CreatedAt
		if err := d.AttachStore(filepath.Join(root, name, "store")); err != nil {
			return fmt.Errorf("server: recovering dataset %q: %w", name, err)
		}
		if err := s.registry.Insert(d); err != nil {
			d.Close()
			return err
		}
		s.datasetRegistered(d)
	}
	return nil
}
