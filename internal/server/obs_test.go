package server

import (
	"bytes"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"privtree/internal/obs"
)

// These tests cover the observability plane: /metrics serves strictly
// valid Prometheus text with the promised families, every metric name
// follows the privtree_* convention, requests carry trace IDs end to
// end, release builds leave a full span record behind them, and the
// audit endpoint explains every unit of spent ε.

// scrape GETs /metrics and parses it with the strict exposition parser,
// returning the samples indexed by series key.
func scrape(t *testing.T, client *http.Client, base string) map[string]obs.Sample {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want text exposition 0.0.4", ct)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics is not strictly valid exposition text: %v", err)
	}
	out := make(map[string]obs.Sample, len(samples))
	for _, s := range samples {
		out[s.SeriesKey()] = s
	}
	return out
}

// obsTestServer starts a persistent server with one dataset ("watched",
// ε=1.0) and one built release, exercising register, create_release, and
// query so every layer has observed traffic.
func obsTestServer(t *testing.T) (*Server, *httptest.Server, string) {
	t.Helper()
	s := mustNew(t, Options{Workers: 1, DataDir: t.TempDir()})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	client := ts.Client()
	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets", map[string]any{
		"name": "watched", "epsilon": 1.0, "points": rows(testPoints(300)),
	}, nil); status != http.StatusCreated {
		t.Fatalf("register: status %d", status)
	}
	var rel struct {
		ReleaseID string `json:"release_id"`
	}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets/watched/releases",
		ReleaseParams{Epsilon: 0.25, Seed: 7}, &rel); status != http.StatusCreated {
		t.Fatalf("create release: status %d", status)
	}
	doJSON(t, client, "POST", ts.URL+"/v1/datasets/watched/releases/"+rel.ReleaseID+"/query",
		map[string]any{"queries": [][]float64{{0, 0, 1, 1}, {0, 0, 0.5, 0.5}}}, nil)
	return s, ts, rel.ReleaseID
}

// TestMetricsExposition scrapes the full /metrics document through the
// strict parser and checks the promised families are present with sane
// values: per-route traffic, per-dataset ε accounting, build-stage
// spans, WAL fsync timings, and Go runtime stats.
func TestMetricsExposition(t *testing.T) {
	_, ts, _ := obsTestServer(t)
	samples := scrape(t, ts.Client(), ts.URL)

	get := func(key string) float64 {
		t.Helper()
		s, ok := samples[key]
		if !ok {
			t.Fatalf("exposition missing series %q", key)
		}
		return s.Value
	}

	if got := get(`privtree_http_requests_total{route=create_release}`); got != 1 {
		t.Fatalf("create_release requests = %v, want 1", got)
	}
	if got := get(`privtree_http_request_seconds_count{route=query}`); got != 1 {
		t.Fatalf("query latency observations = %v, want 1", got)
	}
	if got := get(`privtree_queries_answered_total`); got != 2 {
		t.Fatalf("queries_answered_total = %v, want 2", got)
	}
	if got := get(`privtree_dataset_epsilon_total{dataset=watched}`); got != 1.0 {
		t.Fatalf("dataset ε total = %v, want 1", got)
	}
	spent := get(`privtree_dataset_epsilon_spent{dataset=watched}`)
	if math.Abs(spent-0.25) > 1e-12 {
		t.Fatalf("dataset ε spent = %v, want 0.25", spent)
	}
	remaining := get(`privtree_dataset_epsilon_remaining{dataset=watched}`)
	if math.Abs(spent+remaining-1.0) > 1e-12 {
		t.Fatalf("spent (%v) + remaining (%v) != total 1", spent, remaining)
	}
	if got := get(`privtree_dataset_releases{dataset=watched}`); got != 1 {
		t.Fatalf("dataset releases = %v, want 1", got)
	}
	if got := get(`privtree_dataset_store_bytes{dataset=watched}`); got <= 0 {
		t.Fatalf("store bytes = %v, want > 0 with persistence", got)
	}
	if got := get(`privtree_dataset_wal_seq{dataset=watched}`); got < 2 {
		t.Fatalf("wal seq = %v, want >= 2 (debit + commit)", got)
	}
	// One persisted release = at least two fsyncs (debit, commit).
	if got := get(`privtree_wal_fsync_seconds_count`); got < 2 {
		t.Fatalf("wal fsync count = %v, want >= 2", got)
	}
	// Every release-build stage left a latency observation.
	for _, stage := range []string{"debit", "wal_debit", "build", "envelope", "wal_commit"} {
		key := `privtree_build_stage_seconds_count{stage=` + stage + `}`
		if got := get(key); got != 1 {
			t.Fatalf("build stage %q observations = %v, want 1", stage, got)
		}
	}
	// Runtime stats rode along.
	if got := get(`privtree_go_goroutines`); got <= 0 {
		t.Fatalf("goroutines gauge = %v, want > 0", got)
	}
	if got := get(`privtree_go_heap_alloc_bytes`); got <= 0 {
		t.Fatalf("heap alloc gauge = %v, want > 0", got)
	}
	if got := get(`privtree_uptime_seconds`); got < 0 {
		t.Fatalf("uptime = %v, want >= 0", got)
	}
}

// TestMetricNameConvention vets every registered metric name against the
// project naming rule: privtree_ prefix, lower-snake body.
func TestMetricNameConvention(t *testing.T) {
	s, _, _ := obsTestServer(t)
	re := regexp.MustCompile(`^privtree_[a-z0-9_]+$`)
	names := s.metrics.reg.Names()
	if len(names) == 0 {
		t.Fatal("registry has no metrics")
	}
	for _, name := range names {
		if !re.MatchString(name) {
			t.Errorf("metric %q violates ^privtree_[a-z0-9_]+$", name)
		}
	}
}

// TestTraceHeader asserts every response carries a fresh 32-hex
// X-Trace-Id.
func TestTraceHeader(t *testing.T) {
	_, ts, _ := obsTestServer(t)
	hexID := regexp.MustCompile(`^[0-9a-f]{32}$`)
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Trace-Id")
		if !hexID.MatchString(id) {
			t.Fatalf("X-Trace-Id = %q, want 32 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("trace ID %q repeated across requests", id)
		}
		seen[id] = true
	}
}

// TestAuditEndpoint checks that /v1/datasets/{name}/audit explains every
// unit of spent ε: WAL-sequenced entries whose debits (net of refunds)
// sum to the spent gauge, each carrying the trace ID of the request that
// caused it.
func TestAuditEndpoint(t *testing.T) {
	_, ts, _ := obsTestServer(t)
	client := ts.Client()

	// A second release adds a second debit+commit pair to the trail.
	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets/watched/releases",
		ReleaseParams{Epsilon: 0.1, Seed: 8}, nil); status != http.StatusCreated {
		t.Fatalf("second release: status %d", status)
	}

	var audit struct {
		Dataset          string  `json:"dataset"`
		EpsilonSpent     float64 `json:"epsilon_spent"`
		EpsilonRemaining float64 `json:"epsilon_remaining"`
		WALSeq           uint64  `json:"wal_seq"`
		Entries          []struct {
			Seq     uint64  `json:"seq"`
			Kind    string  `json:"kind"`
			Epsilon float64 `json:"epsilon"`
			Key     string  `json:"key"`
			TraceID string  `json:"trace_id"`
			SHA     string  `json:"sha256"`
		} `json:"entries"`
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/datasets/watched/audit", nil, &audit); status != http.StatusOK {
		t.Fatalf("audit: status %d", status)
	}
	if audit.Dataset != "watched" {
		t.Fatalf("audit dataset = %q", audit.Dataset)
	}
	if len(audit.Entries) != 4 {
		t.Fatalf("audit entries = %d, want 4 (2× debit + 2× commit)", len(audit.Entries))
	}
	hexID := regexp.MustCompile(`^[0-9a-f]{32}$`)
	var net float64
	var lastSeq uint64
	kinds := map[string]int{}
	for _, e := range audit.Entries {
		kinds[e.Kind]++
		if e.Seq == 0 || e.Seq <= lastSeq {
			t.Fatalf("audit entries not strictly WAL-ordered: seq %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Kind == "debit" || e.Kind == "refund" {
			net += e.Epsilon // refunds arrive negated
			if !hexID.MatchString(e.TraceID) {
				t.Fatalf("%s entry seq %d trace_id = %q, want 32 hex", e.Kind, e.Seq, e.TraceID)
			}
		}
		if e.Kind == "commit" {
			if len(e.SHA) != 64 {
				t.Fatalf("commit entry seq %d sha256 = %q, want 64 hex", e.Seq, e.SHA)
			}
			if e.Key == "" {
				t.Fatalf("commit entry seq %d missing release key", e.Seq)
			}
		}
	}
	if kinds["debit"] != 2 || kinds["commit"] != 2 {
		t.Fatalf("audit kinds = %v, want 2 debits and 2 commits", kinds)
	}
	if math.Abs(net-audit.EpsilonSpent) > 1e-12 {
		t.Fatalf("audit debit sum %v != reported spent ε %v", net, audit.EpsilonSpent)
	}
	if audit.WALSeq != lastSeq {
		t.Fatalf("audit wal_seq = %d, want last entry seq %d", audit.WALSeq, lastSeq)
	}

	// Cross-check the trail against the metrics plane: the audit's net
	// debits must equal the scraped spent-ε gauge exactly.
	samples := scrape(t, client, ts.URL)
	gauge, ok := samples[`privtree_dataset_epsilon_spent{dataset=watched}`]
	if !ok {
		t.Fatal("exposition missing spent-ε gauge")
	}
	if math.Abs(net-gauge.Value) > 1e-12 {
		t.Fatalf("audit debit sum %v != /metrics spent-ε gauge %v", net, gauge.Value)
	}
}

// TestAuditWithoutPersistence checks the in-memory fallback: no WAL
// sequence numbers, but the debit history is still explained.
func TestAuditWithoutPersistence(t *testing.T) {
	s := mustNew(t, Options{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	doJSON(t, client, "POST", ts.URL+"/v1/datasets", map[string]any{
		"name": "mem", "epsilon": 1.0, "points": rows(testPoints(200)),
	}, nil)
	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets/mem/releases",
		ReleaseParams{Epsilon: 0.5, Seed: 1}, nil); status != http.StatusCreated {
		t.Fatalf("release: status %d", status)
	}
	var audit struct {
		EpsilonSpent float64 `json:"epsilon_spent"`
		WALSeq       uint64  `json:"wal_seq"`
		Entries      []struct {
			Seq     uint64  `json:"seq"`
			Kind    string  `json:"kind"`
			Epsilon float64 `json:"epsilon"`
			TraceID string  `json:"trace_id"`
		} `json:"entries"`
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/datasets/mem/audit", nil, &audit); status != http.StatusOK {
		t.Fatalf("audit: status %d", status)
	}
	if audit.WALSeq != 0 {
		t.Fatalf("in-memory wal_seq = %d, want 0", audit.WALSeq)
	}
	var net float64
	for _, e := range audit.Entries {
		if e.Seq != 0 {
			t.Fatalf("in-memory audit entry has WAL seq %d", e.Seq)
		}
		net += e.Epsilon
	}
	if math.Abs(net-audit.EpsilonSpent) > 1e-12 {
		t.Fatalf("audit debit sum %v != spent ε %v", net, audit.EpsilonSpent)
	}
}

// TestMetricszWireCompat asserts the JSON view keeps its pre-Prometheus
// shape (the fields the old /metrics served) at the new path.
func TestMetricszWireCompat(t *testing.T) {
	_, ts, _ := obsTestServer(t)
	var doc map[string]any
	if status := doJSON(t, ts.Client(), "GET", ts.URL+"/metricsz", nil, &doc); status != http.StatusOK {
		t.Fatalf("/metricsz: status %d", status)
	}
	for _, key := range []string{
		"uptime_seconds", "requests_total", "requests_by_route",
		"queries_answered", "queries_per_second", "query_nanos_total",
		"releases_built", "release_cache_hits",
		"datasets", "builds_in_flight", "batches_in_flight",
		"shed_total", "deadline_exceeded_total", "draining_rejects_total",
		"retryable_errors_total", "store_bytes_total",
	} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("/metricsz missing %q", key)
		}
	}
	byRoute, ok := doc["requests_by_route"].(map[string]any)
	if !ok {
		t.Fatalf("requests_by_route = %T, want object", doc["requests_by_route"])
	}
	if v, ok := byRoute["create_release"].(float64); !ok || v != 1 {
		t.Fatalf("requests_by_route[create_release] = %v, want 1", byRoute["create_release"])
	}
}

// TestSlowRequestLog drives a request through a nanosecond slow-request
// threshold and checks the structured log line: route, status, and the
// request's trace ID (matching the X-Trace-Id the client saw).
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s := mustNew(t, Options{Workers: 1, SlowRequest: time.Nanosecond, Logger: logger})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	line := buf.String()
	if !strings.Contains(line, `"msg":"slow request"`) {
		t.Fatalf("slow-request log missing, got: %q", line)
	}
	for _, want := range []string{`"route":"healthz"`, `"status":200`, `"trace":"` + id + `"`} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow-request log missing %s, got: %q", want, line)
		}
	}
}
