package server

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// queryChunk is how many queries one goroutine claims at a time from a
// batch. Work-stealing at chunk granularity keeps workers balanced when
// query costs vary (deep trees answer small rectangles faster than large
// ones) while amortizing the atomic increment.
const queryChunk = 256

// minParallelBatch is the batch size below which fan-out overhead exceeds
// the win and the batch is answered inline.
const minParallelBatch = 512

// answerBatchInto fans fn(i) over the batch [0, len(out)) using up to
// `workers` goroutines (0 = GOMAXPROCS), collecting results in order into
// the caller-provided (typically pooled) slice, so the serving hot path
// allocates nothing per batch beyond goroutine startup. fn must be safe
// for concurrent use — both release artifact types are immutable after
// construction, so RangeCount / EstimateFrequency qualify.
func answerBatchInto(out []float64, workers int, fn func(i int) float64) {
	n := len(out)
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || n < minParallelBatch {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return
	}
	if maxW := (n + queryChunk - 1) / queryChunk; workers > maxW {
		workers = maxW
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				end := int(next.Add(queryChunk))
				start := end - queryChunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					out[i] = fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
