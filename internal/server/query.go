package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"privtree"
	"privtree/internal/geom"
)

// queryChunk is how many queries one goroutine claims at a time from a
// batch. Work-stealing at chunk granularity keeps workers balanced when
// query costs vary (deep trees answer small rectangles faster than large
// ones) while amortizing the atomic increment.
const queryChunk = 256

// minParallelBatch is the batch size below which fan-out overhead exceeds
// the win and the batch is answered inline.
const minParallelBatch = 512

// answerBatch fans fn(i) over the batch [0, n) using up to `workers`
// goroutines (0 = GOMAXPROCS) and collects results in order. fn must be
// safe for concurrent use — both release artifact types are immutable after
// construction, so RangeCount / EstimateFrequency qualify.
func answerBatch(n, workers int, fn func(i int) float64) []float64 {
	out := make([]float64, n)
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || n < minParallelBatch {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	if maxW := (n + queryChunk - 1) / queryChunk; workers > maxW {
		workers = maxW
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				end := int(next.Add(queryChunk))
				start := end - queryChunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					out[i] = fn(i)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// parseRects converts flat lo...hi coordinate rows into validated query
// rectangles over a d-dimensional domain. It never panics on hostile
// input: dimension mismatches, non-finite coordinates and inverted
// intervals are reported with the offending row index.
func parseRects(rows [][]float64, d int) ([]geom.Rect, error) {
	out := make([]geom.Rect, len(rows))
	for i, row := range rows {
		if len(row) != 2*d {
			return nil, fmt.Errorf("query %d has %d coordinates, want %d (lo..., hi...)", i, len(row), 2*d)
		}
		if err := geom.CheckBounds(row[:d], row[d:], false); err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = geom.Rect{Lo: row[:d], Hi: row[d:]}
	}
	return out, nil
}

// parseStrings validates sequence-frequency queries against an alphabet.
func parseStrings(rows [][]int, alphabet int) ([]privtree.Sequence, error) {
	out := make([]privtree.Sequence, len(rows))
	for i, row := range rows {
		for _, x := range row {
			if x < 0 || x >= alphabet {
				return nil, fmt.Errorf("string %d has symbol %d outside [0,%d)", i, x, alphabet)
			}
		}
		out[i] = privtree.Sequence(row)
	}
	return out, nil
}
