package server

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// queryChunk is how many queries one goroutine claims at a time from a
// batch. Work-stealing at chunk granularity keeps workers balanced when
// query costs vary (deep trees answer small rectangles faster than large
// ones) while amortizing the atomic increment — and bounds how much work
// a worker does between context checks, so a disconnected client's batch
// is abandoned within one chunk.
const queryChunk = 256

// minParallelBatch is the batch size below which fan-out overhead exceeds
// the win and the batch is answered inline.
const minParallelBatch = 512

// answerBatchInto fans fn(i) over the batch [0, len(out)) using up to
// `workers` goroutines (0 = GOMAXPROCS), collecting results in order into
// the caller-provided (typically pooled) slice, so the serving hot path
// allocates nothing per batch beyond goroutine startup. fn must be safe
// for concurrent use — both release artifact types are immutable after
// construction, so RangeCount / EstimateFrequency qualify.
func answerBatchInto(out []float64, workers int, fn func(i int) float64) {
	_ = answerBatchCtx(context.Background(), out, workers, fn)
}

// answerBatchCtx is answerBatchInto under a request context: every worker
// re-checks ctx between chunks and abandons its remaining chunks when the
// deadline fires or the client disconnects, so a dead batch stops burning
// CPU within one chunk per worker. Returns ctx.Err() when the batch was
// abandoned (out then holds partial garbage and must not be served) and
// nil when every entry was answered. Uncancellable contexts skip the
// checks entirely — the hot path is unchanged.
func answerBatchCtx(ctx context.Context, out []float64, workers int, fn func(i int) float64) error {
	n := len(out)
	cancellable := ctx.Done() != nil
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || n < minParallelBatch {
		for start := 0; start < n; start += queryChunk {
			if cancellable {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			end := start + queryChunk
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				out[i] = fn(i)
			}
		}
		return nil
	}
	if maxW := (n + queryChunk - 1) / queryChunk; workers > maxW {
		workers = maxW
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if cancellable && ctx.Err() != nil {
					return
				}
				end := int(next.Add(queryChunk))
				start := end - queryChunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					out[i] = fn(i)
				}
			}
		}()
	}
	wg.Wait()
	if cancellable {
		return ctx.Err()
	}
	return nil
}
