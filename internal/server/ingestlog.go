package server

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"privtree"
	"privtree/internal/obs"
)

// The ingest journal makes acknowledged-but-unsealed ingest batches
// crash-safe: a batch's frame is fsynced BEFORE the ingest response is
// written, so a restarted primary replays exactly the acknowledged
// pending buffer (batches already inside a sealed epoch are filtered by
// the seal record's batch sequence). The format mirrors the store WAL's
// discipline — length + CRC framing, torn-tail truncation on open —
// without its replication machinery: the journal is primary-local state
// and is reset (not shipped) once its batches are sealed.
//
// Layout: an 8-byte magic, then frames of
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//
// where payload is
//
//	u64 batchSeq | u8 kind | u32 rows | body
//	kind 1 (points):    u16 dims, then rows·dims float64 bits
//	kind 2 (sequences): rows × ( u32 n, then n × u32 symbols )

const (
	ingestJournalMagic = "PTJRN\x00\x01\n"
	journalKindPoints  = 1
	journalKindSeqs    = 2

	// maxJournalPayload bounds a single frame so a corrupt length field
	// cannot trigger a huge allocation on replay.
	maxJournalPayload = 1 << 28
)

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// ingestCrashHook, when non-nil, runs at the named durability boundaries
// of a journal append ("journal.before_sync", "journal.after_sync").
// Crash-injection tests point it at a process killer.
var ingestCrashHook func(point string)

// journalRec is one decoded journal frame.
type journalRec struct {
	seq  uint64
	pts  []privtree.Point
	seqs []privtree.Sequence
}

// ingestJournal is an open, append-only journal file. Callers serialize
// access (the dataset stream mutex).
type ingestJournal struct {
	f   *os.File
	buf []byte // reusable frame-encode buffer
}

// openIngestJournal opens (creating if needed) the journal at path and
// replays its valid frame prefix. A torn or corrupt tail — the signature
// of a crash mid-append — is truncated away; anything after the first
// bad frame was never acknowledged.
func openIngestJournal(path string) (*ingestJournal, []journalRec, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, nil, fmt.Errorf("server: opening ingest journal: %w", err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("server: reading ingest journal: %w", err)
	}
	if len(raw) == 0 {
		if _, err := f.Write([]byte(ingestJournalMagic)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: initializing ingest journal: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: initializing ingest journal: %w", err)
		}
		return &ingestJournal{f: f}, nil, nil
	}
	if len(raw) < len(ingestJournalMagic) || string(raw[:len(ingestJournalMagic)]) != ingestJournalMagic {
		f.Close()
		return nil, nil, fmt.Errorf("server: %s is not an ingest journal", path)
	}
	var (
		recs    []journalRec
		off     = len(ingestJournalMagic)
		lastSeq uint64
	)
	for off < len(raw) {
		if len(raw)-off < 8 {
			break // torn header
		}
		plen := binary.LittleEndian.Uint32(raw[off:])
		crc := binary.LittleEndian.Uint32(raw[off+4:])
		if plen > maxJournalPayload || len(raw)-off-8 < int(plen) {
			break // torn or corrupt payload
		}
		payload := raw[off+8 : off+8+int(plen)]
		if crc32.Checksum(payload, journalCRC) != crc {
			break // torn write
		}
		rec, err := decodeJournalPayload(payload)
		if err != nil || rec.seq <= lastSeq {
			break // corrupt or out-of-order: never acknowledged past here
		}
		recs = append(recs, rec)
		lastSeq = rec.seq
		off += 8 + int(plen)
	}
	if off < len(raw) {
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: truncating torn ingest journal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: truncating torn ingest journal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("server: seeking ingest journal: %w", err)
	}
	return &ingestJournal{f: f}, recs, nil
}

func decodeJournalPayload(p []byte) (journalRec, error) {
	var rec journalRec
	if len(p) < 13 {
		return rec, fmt.Errorf("short payload")
	}
	rec.seq = binary.LittleEndian.Uint64(p)
	kind := p[8]
	rows := int(binary.LittleEndian.Uint32(p[9:]))
	body := p[13:]
	switch kind {
	case journalKindPoints:
		if len(body) < 2 {
			return rec, fmt.Errorf("short points body")
		}
		dims := int(binary.LittleEndian.Uint16(body))
		body = body[2:]
		if dims < 1 || rows < 0 || len(body) != rows*dims*8 {
			return rec, fmt.Errorf("points body size mismatch")
		}
		flat := make([]float64, rows*dims)
		for i := range flat {
			flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
		}
		rec.pts = make([]privtree.Point, rows)
		for r := 0; r < rows; r++ {
			rec.pts[r] = privtree.Point(flat[r*dims : (r+1)*dims : (r+1)*dims])
		}
	case journalKindSeqs:
		// Bound the allocation by the bytes actually present (each row
		// needs at least its 4-byte length header) before trusting rows —
		// a hostile count must not pre-allocate gigabytes.
		if rows < 0 || len(body) < rows*4 {
			return rec, fmt.Errorf("sequence body size mismatch")
		}
		rec.seqs = make([]privtree.Sequence, 0, rows)
		for r := 0; r < rows; r++ {
			if len(body) < 4 {
				return rec, fmt.Errorf("short sequence header")
			}
			n := int(binary.LittleEndian.Uint32(body))
			body = body[4:]
			if n < 0 || len(body) < n*4 {
				return rec, fmt.Errorf("sequence body size mismatch")
			}
			syms := make([]int, n)
			for i := 0; i < n; i++ {
				syms[i] = int(int32(binary.LittleEndian.Uint32(body[i*4:])))
			}
			body = body[n*4:]
			rec.seqs = append(rec.seqs, privtree.Sequence(syms))
		}
		if len(body) != 0 {
			return rec, fmt.Errorf("trailing sequence bytes")
		}
	default:
		return rec, fmt.Errorf("unknown journal record kind %d", kind)
	}
	return rec, nil
}

// Append encodes one batch as a frame, writes it, and fsyncs before
// returning — the durability barrier the ingest handler relies on before
// acknowledging the batch. Exactly one of pts/seqs is non-empty. The
// fsync is recorded as a journal.fsync span on tr (nil-safe), since it
// dominates ingest latency on spinning disks and saturated devices.
func (j *ingestJournal) Append(seq uint64, pts []privtree.Point, seqs []privtree.Sequence, tr *obs.Trace) error {
	j.buf = j.buf[:0]
	var payload []byte
	payload = binary.LittleEndian.AppendUint64(nil, seq)
	if len(pts) > 0 {
		payload = append(payload, journalKindPoints)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(pts)))
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(pts[0])))
		for _, p := range pts {
			for _, c := range p {
				payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(c))
			}
		}
	} else {
		payload = append(payload, journalKindSeqs)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(seqs)))
		for _, sq := range seqs {
			payload = binary.LittleEndian.AppendUint32(payload, uint32(len(sq)))
			for _, sym := range sq {
				payload = binary.LittleEndian.AppendUint32(payload, uint32(sym))
			}
		}
	}
	if len(payload) > maxJournalPayload {
		return fmt.Errorf("server: ingest batch exceeds journal frame limit")
	}
	frame := binary.LittleEndian.AppendUint32(j.buf, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, journalCRC))
	frame = append(frame, payload...)
	j.buf = frame[:0]
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("server: appending ingest journal: %w", err)
	}
	if h := ingestCrashHook; h != nil {
		h("journal.before_sync")
	}
	fsync := tr.Begin("journal.fsync")
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("server: syncing ingest journal: %w", err)
	}
	fsync.End()
	if h := ingestCrashHook; h != nil {
		h("journal.after_sync")
	}
	return nil
}

// Reset truncates the journal back to its magic — called only when every
// journaled batch is inside a sealed (durably recorded) epoch, so replay
// after the reset reconstructs the same (empty) pending buffer.
func (j *ingestJournal) Reset() error {
	if err := j.f.Truncate(int64(len(ingestJournalMagic))); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	_, err := j.f.Seek(int64(len(ingestJournalMagic)), io.SeekStart)
	return err
}

// Close releases the journal's file handle. Idempotent.
func (j *ingestJournal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
