package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"privtree"
)

// doJSON posts (or gets) against the test server and decodes the reply.
func doJSON(t *testing.T, client *http.Client, method, url string, body any, out any) (status int) {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(blob)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding reply: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// mustNew builds a server for tests, failing on (startup-recovery) error.
func mustNew(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testPoints generates a clustered 2-D dataset.
func testPoints(n int) []privtree.Point {
	rng := rand.New(rand.NewPCG(7, 9))
	pts := make([]privtree.Point, n)
	for i := range pts {
		if i%3 == 0 {
			pts[i] = privtree.Point{rng.Float64(), rng.Float64()}
		} else {
			x := 0.35 + 0.05*rng.NormFloat64()
			y := 0.65 + 0.05*rng.NormFloat64()
			pts[i] = privtree.Point{clamp01(x), clamp01(y)}
		}
	}
	return pts
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return 0.999999
	}
	return x
}

// TestServerEndToEnd is the subsystem's acceptance test: register a
// dataset, spend budget across releases until exhaustion, answer a
// 10k-query batch against a released tree, and verify that the over-budget
// release is rejected with the structured budget error.
func TestServerEndToEnd(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, Options{}))
	defer ts.Close()
	client := ts.Client()

	// 1. Register: 20k points, total budget ε = 1.0.
	pts := testPoints(20_000)
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = p
	}
	var reg struct {
		Name             string  `json:"name"`
		Kind             Kind    `json:"kind"`
		N                int     `json:"n"`
		EpsilonRemaining float64 `json:"epsilon_remaining"`
	}
	status := doJSON(t, client, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "taxi", "epsilon": 1.0, "points": rows}, &reg)
	if status != http.StatusCreated {
		t.Fatalf("register returned %d", status)
	}
	if reg.N != len(pts) || reg.Kind != KindSpatial || reg.EpsilonRemaining != 1.0 {
		t.Fatalf("unexpected register reply: %+v", reg)
	}

	// Duplicate registration must 409.
	status = doJSON(t, client, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "taxi", "epsilon": 1.0, "points": rows}, nil)
	if status != http.StatusConflict {
		t.Fatalf("duplicate register returned %d, want 409", status)
	}

	// 2. Spend the budget across three releases: 0.4 + 0.4 + 0.2 = ε.
	type relResp struct {
		ID               string  `json:"release_id"`
		Cached           bool    `json:"cached"`
		Nodes            int     `json:"nodes"`
		EpsilonRemaining float64 `json:"epsilon_remaining"`
	}
	var first relResp
	for i, eps := range []float64{0.4, 0.4, 0.2} {
		var rel relResp
		status = doJSON(t, client, "POST", ts.URL+"/v1/datasets/taxi/releases",
			map[string]any{"epsilon": eps, "seed": i + 1}, &rel)
		if status != http.StatusCreated {
			t.Fatalf("release %d returned %d", i, status)
		}
		if rel.Cached || rel.Nodes == 0 {
			t.Fatalf("release %d: %+v", i, rel)
		}
		if i == 0 {
			first = rel
		}
	}

	// 3. The ledger is now exhausted: the next release must be rejected
	// with the structured budget error.
	var rejected struct {
		Error *APIError `json:"error"`
	}
	status = doJSON(t, client, "POST", ts.URL+"/v1/datasets/taxi/releases",
		map[string]any{"epsilon": 0.05, "seed": 99}, &rejected)
	if status != http.StatusForbidden {
		t.Fatalf("over-budget release returned %d, want 403", status)
	}
	if rejected.Error == nil || rejected.Error.Code != CodeBudgetExhausted {
		t.Fatalf("over-budget release error: %+v", rejected.Error)
	}
	if rejected.Error.RequestedEpsilon == nil || *rejected.Error.RequestedEpsilon != 0.05 ||
		rejected.Error.TotalEpsilon == nil || *rejected.Error.TotalEpsilon != 1.0 {
		t.Fatalf("budget arithmetic missing from error: %+v", rejected.Error)
	}
	// remaining_epsilon must be present even when it is exactly 0 — the
	// most common rejection is a fully spent ledger.
	if rejected.Error.RemainingEpsilon == nil || *rejected.Error.RemainingEpsilon > 1e-9 {
		t.Fatalf("remaining_epsilon absent or wrong: %+v", rejected.Error.RemainingEpsilon)
	}

	// 4. Re-requesting an already-purchased release is a cache hit and
	// does NOT debit the exhausted ledger.
	var again relResp
	status = doJSON(t, client, "POST", ts.URL+"/v1/datasets/taxi/releases",
		map[string]any{"epsilon": 0.4, "seed": 1}, &again)
	if status != http.StatusOK || !again.Cached || again.ID != first.ID {
		t.Fatalf("cached release: status %d, %+v (want id %s)", status, again, first.ID)
	}

	// 5. Answer a 10k-query batch against the first release.
	const nq = 10_000
	qrng := rand.New(rand.NewPCG(3, 4))
	queries := make([][]float64, nq)
	for i := range queries {
		lox, loy := qrng.Float64()*0.8, qrng.Float64()*0.8
		queries[i] = []float64{lox, loy, lox + 0.2, loy + 0.2}
	}
	var qresp struct {
		Counts  []float64 `json:"counts"`
		Queries int       `json:"queries"`
	}
	status = doJSON(t, client, "POST", ts.URL+"/v1/datasets/taxi/releases/"+first.ID+"/query",
		map[string]any{"queries": queries}, &qresp)
	if status != http.StatusOK {
		t.Fatalf("batch query returned %d", status)
	}
	if qresp.Queries != nq || len(qresp.Counts) != nq {
		t.Fatalf("batch query answered %d/%d", qresp.Queries, len(qresp.Counts))
	}

	// The batch answers must agree with a direct in-process rebuild of the
	// same release (same seed ⇒ identical tree).
	tree, err := privtree.BuildSpatial(privtree.UnitCube(2), pts, 0.4, privtree.SpatialOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, nq / 2, nq - 1} {
		q := queries[i]
		want := tree.RangeCount(privtree.NewRect(privtree.Point{q[0], q[1]}, privtree.Point{q[2], q[3]}))
		if qresp.Counts[i] != want {
			t.Fatalf("query %d: server %v, local %v", i, qresp.Counts[i], want)
		}
	}

	// 6. Fetching the artifact must yield the library's versioned wire
	// envelope, loadable through privtree.Decode into a release that
	// answers identically and records its provenance.
	var artResp struct {
		Artifact json.RawMessage `json:"artifact"`
	}
	status = doJSON(t, client, "GET", ts.URL+"/v1/datasets/taxi/releases/"+first.ID, nil, &artResp)
	if status != http.StatusOK {
		t.Fatalf("get release returned %d", status)
	}
	restored, err := privtree.Decode(artResp.Artifact)
	if err != nil {
		t.Fatalf("artifact is not the library wire envelope: %v", err)
	}
	if restored.Kind() != privtree.KindSpatial || restored.Mechanism() != "spatial" ||
		restored.Epsilon() != 0.4 || restored.Seed() != 1 {
		t.Fatalf("envelope lost release provenance: kind=%s mech=%s eps=%v seed=%d",
			restored.Kind(), restored.Mechanism(), restored.Epsilon(), restored.Seed())
	}
	q0 := privtree.NewRect(privtree.Point{queries[0][0], queries[0][1]}, privtree.Point{queries[0][2], queries[0][3]})
	if got, want := restored.RangeCount(q0), qresp.Counts[0]; got != want {
		t.Fatalf("artifact answers differently: %v vs %v", got, want)
	}

	// 7a. The exact cardinality is disclosed only in the registration
	// acknowledgment: the dataset objects served by list/get/metrics must
	// not carry an "n" field.
	for path, extract := range map[string]string{
		"/v1/datasets":      "datasets",
		"/v1/datasets/taxi": "",
		"/metricsz":         "datasets",
	} {
		var doc map[string]any
		if status := doJSON(t, client, "GET", ts.URL+path, nil, &doc); status != http.StatusOK {
			t.Fatalf("%s returned %d", path, status)
		}
		objs := []any{doc}
		if extract != "" {
			objs = doc[extract].([]any)
		}
		for _, o := range objs {
			if _, leaked := o.(map[string]any)["n"]; leaked {
				t.Fatalf("%s leaks the exact dataset cardinality", path)
			}
		}
	}

	// 7. Metrics reflect the traffic.
	var m metricsResponse
	if status = doJSON(t, client, "GET", ts.URL+"/metricsz", nil, &m); status != http.StatusOK {
		t.Fatalf("metrics returned %d", status)
	}
	if m.QueriesAnswered != nq {
		t.Fatalf("metrics queries_answered = %d, want %d", m.QueriesAnswered, nq)
	}
	if m.ReleasesBuilt != 3 || m.ReleaseCacheHits != 1 {
		t.Fatalf("metrics releases: built %d, cache hits %d", m.ReleasesBuilt, m.ReleaseCacheHits)
	}
	if len(m.Datasets) != 1 || m.Datasets[0].EpsilonRemaining > 1e-9 {
		t.Fatalf("metrics datasets: %+v", m.Datasets)
	}

	// 8. Health endpoint.
	var h struct {
		Status string `json:"status"`
	}
	if status = doJSON(t, client, "GET", ts.URL+"/healthz", nil, &h); status != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", status, h)
	}
}

// TestServerSequenceDataset exercises the sequence pipeline end to end:
// register sequences, release a model, answer frequency queries.
func TestServerSequenceDataset(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, Options{}))
	defer ts.Close()
	client := ts.Client()

	rng := rand.New(rand.NewPCG(11, 12))
	seqs := make([][]int, 5000)
	for i := range seqs {
		n := 1 + rng.IntN(8)
		s := make([]int, n)
		cur := rng.IntN(5)
		for j := range s {
			s[j] = cur
			cur = (cur + 1) % 5
		}
		seqs[i] = s
	}

	status := doJSON(t, client, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "clicks", "epsilon": 2.0, "alphabet": 5, "sequences": seqs}, nil)
	if status != http.StatusCreated {
		t.Fatalf("register returned %d", status)
	}

	var rel struct {
		ID    string `json:"release_id"`
		Kind  Kind   `json:"kind"`
		Nodes int    `json:"nodes"`
	}
	status = doJSON(t, client, "POST", ts.URL+"/v1/datasets/clicks/releases",
		map[string]any{"epsilon": 1.0, "seed": 3, "max_length": 10}, &rel)
	if status != http.StatusCreated || rel.Kind != KindSequence || rel.Nodes == 0 {
		t.Fatalf("release: %d %+v", status, rel)
	}

	var qresp struct {
		Counts []float64 `json:"counts"`
	}
	status = doJSON(t, client, "POST", ts.URL+"/v1/datasets/clicks/releases/"+rel.ID+"/query",
		map[string]any{"strings": [][]int{{0}, {0, 1}, {4, 0}}}, &qresp)
	if status != http.StatusOK || len(qresp.Counts) != 3 {
		t.Fatalf("frequency batch: %d %+v", status, qresp)
	}

	// Wrong query type for the release kind.
	status = doJSON(t, client, "POST", ts.URL+"/v1/datasets/clicks/releases/"+rel.ID+"/query",
		map[string]any{"queries": [][]float64{{0, 0, 1, 1}}}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("rectangle query on sequence release returned %d", status)
	}
}

// TestServerSyntheticAndCSV covers the two remaining ingestion paths.
func TestServerSyntheticAndCSV(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, Options{}))
	defer ts.Close()
	client := ts.Client()

	status := doJSON(t, client, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "demo", "epsilon": 1.0,
			"synthetic": map[string]any{"generator": "road", "n": 5000, "seed": 42}}, nil)
	if status != http.StatusCreated {
		t.Fatalf("synthetic register returned %d", status)
	}

	var csv strings.Builder
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&csv, "%f,%f\n", rng.Float64(), rng.Float64())
	}
	var reg struct {
		N    int `json:"n"`
		Dims int `json:"dims"`
	}
	status = doJSON(t, client, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "csvdata", "epsilon": 0.5, "csv": csv.String()}, &reg)
	if status != http.StatusCreated || reg.N != 1000 || reg.Dims != 2 {
		t.Fatalf("csv register: %d %+v", status, reg)
	}

	// Unknown generator is a 400, not a panic.
	status = doJSON(t, client, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "nope", "epsilon": 1.0,
			"synthetic": map[string]any{"generator": "mars", "n": 100}}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown generator returned %d", status)
	}
}

// TestServerRejectsBadRequests covers the validation surface.
func TestServerRejectsBadRequests(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, Options{MaxBatch: 100}))
	defer ts.Close()
	client := ts.Client()

	cases := []struct {
		name string
		body any
		want int
	}{
		{"no source", map[string]any{"name": "a", "epsilon": 1.0}, http.StatusBadRequest},
		{"two sources", map[string]any{"name": "a", "epsilon": 1.0, "points": [][]float64{{0.5, 0.5}},
			"csv": "0.5,0.5\n"}, http.StatusBadRequest},
		{"bad name", map[string]any{"name": "../etc", "epsilon": 1.0, "points": [][]float64{{0.5, 0.5}}}, http.StatusBadRequest},
		{"zero epsilon", map[string]any{"name": "a", "epsilon": 0, "points": [][]float64{{0.5, 0.5}}}, http.StatusBadRequest},
		{"point outside domain", map[string]any{"name": "a", "epsilon": 1.0, "points": [][]float64{{1.5, 0.5}}}, http.StatusBadRequest},
		{"bad kind", map[string]any{"name": "a", "epsilon": 1.0, "kind": "tabular", "points": [][]float64{{0.5, 0.5}}}, http.StatusBadRequest},
		{"inverted domain", map[string]any{"name": "a", "epsilon": 1.0, "points": [][]float64{{0.5, 0.5}},
			"domain": map[string]any{"lo": []float64{1, 1}, "hi": []float64{0, 0}}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets", c.body, nil); status != c.want {
				t.Fatalf("got %d, want %d", status, c.want)
			}
		})
	}

	// Missing dataset / release → 404.
	if status := doJSON(t, client, "GET", ts.URL+"/v1/datasets/ghost", nil, nil); status != http.StatusNotFound {
		t.Fatalf("missing dataset returned %d", status)
	}
	doJSON(t, client, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "real", "epsilon": 1.0, "points": [][]float64{{0.5, 0.5}}}, nil)
	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets/real/releases/r9/query",
		map[string]any{"queries": [][]float64{{0, 0, 1, 1}}}, nil); status != http.StatusNotFound {
		t.Fatalf("missing release returned %d", status)
	}

	// Invalid release params → 400, and the failed attempt must not leak
	// budget (debit is refunded).
	var rel struct {
		ID string `json:"release_id"`
	}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets/real/releases",
		map[string]any{"epsilon": 0.5, "fanout": 3}, nil); status != http.StatusBadRequest {
		t.Fatalf("bad fanout returned %d", status)
	}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets/real/releases",
		map[string]any{"epsilon": 1.0, "seed": 1}, &rel); status != http.StatusCreated {
		t.Fatalf("full-budget release after refund returned %d (budget leaked by failed release?)", status)
	}

	// A misspelled release knob must be rejected, not silently dropped —
	// otherwise the client spends irreversible ε on default parameters.
	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets/real/releases",
		map[string]any{"epsilon": 0.5, "maxdepth": 3}, nil); status != http.StatusBadRequest {
		t.Fatalf("unknown release field returned %d", status)
	}

	// Malformed queries → 400; oversized batch → 413. (Non-finite
	// coordinates cannot cross the JSON layer; buildRects rejecting them is
	// covered by TestBuildRectsRejectsHostileRows.)
	for _, q := range [][]float64{{0, 0, 1}, {1, 1, 0, 0}, {}} {
		if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets/real/releases/"+rel.ID+"/query",
			map[string]any{"queries": [][]float64{q}}, nil); status != http.StatusBadRequest {
			t.Fatalf("malformed query %v returned %d", q, status)
		}
	}
	big := make([][]float64, 101)
	for i := range big {
		big[i] = []float64{0, 0, 1, 1}
	}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/datasets/real/releases/"+rel.ID+"/query",
		map[string]any{"queries": big}, nil); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch returned %d", status)
	}
}

// TestServerConcurrentReleaseSingleDebit races many identical release
// requests: exactly one build may debit the ledger; everyone else must get
// the cached artifact. Run with -race this also proves the registry and
// ledger are data-race free under concurrent traffic.
func TestServerConcurrentReleaseSingleDebit(t *testing.T) {
	srv := mustNew(t, Options{})
	reg := srv.Registry()
	d, err := reg.AddSpatial("conc", privtree.UnitCube(2), testPoints(5000), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			_, _, err := d.Release(ReleaseParams{Epsilon: 0.25, Seed: 7}, 1)
			errs <- err
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	if spent := d.Ledger.Spent(); spent != 0.25 {
		t.Fatalf("ledger spent %v after %d identical requests, want one debit of 0.25", spent, goroutines)
	}
	if rels := d.Releases(); len(rels) != 1 {
		t.Fatalf("%d releases created, want 1", len(rels))
	}
}

// TestBuildRectsRejectsHostileRows covers coordinates a hostile client can
// put on the wire: the serving path's rectangle validation must reject
// them with the offending row index, never panic.
func TestBuildRectsRejectsHostileRows(t *testing.T) {
	load := func(sc *queryScratch, rows [][]float64) {
		sc.flat = sc.flat[:0]
		sc.offs = append(sc.offs[:0], 0)
		for _, row := range rows {
			sc.flat = append(sc.flat, row...)
			sc.offs = append(sc.offs, int32(len(sc.flat)))
		}
	}
	bad := [][][]float64{
		{{0, 0, 1}},               // arity
		{{1, 1, 0, 0}},            // inverted
		{{0, 0, 1, math.NaN()}},   // NaN
		{{0, 0, math.Inf(1), 1}},  // +Inf
		{{math.Inf(-1), 0, 1, 1}}, // -Inf
	}
	var sc queryScratch
	for i, rows := range bad {
		load(&sc, rows)
		if err := buildRects(&sc, 2); err == nil {
			t.Errorf("hostile rows %d accepted", i)
		}
	}
	load(&sc, [][]float64{{0, 0, 1, 1}, {0.2, 0.2, 0.4, 0.9}})
	if err := buildRects(&sc, 2); err != nil {
		t.Fatalf("valid rows rejected: %v", err)
	}
	if len(sc.rects) != 2 || sc.rects[1].Lo[0] != 0.2 {
		t.Fatalf("rects not materialized: %+v", sc.rects)
	}
}

// TestAnswerBatchMatchesSerial checks the fan-out path returns exactly the
// serial answers in order.
func TestAnswerBatchMatchesSerial(t *testing.T) {
	tree, err := privtree.BuildSpatial(privtree.UnitCube(2), testPoints(20000), 1.0, privtree.SpatialOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(8, 9))
	rects := make([]privtree.Rect, 4000)
	for i := range rects {
		lo := privtree.Point{rng.Float64() * 0.7, rng.Float64() * 0.7}
		rects[i] = privtree.NewRect(lo, privtree.Point{lo[0] + 0.25, lo[1] + 0.25})
	}
	serial := make([]float64, len(rects))
	answerBatchInto(serial, 1, func(i int) float64 { return tree.RangeCount(rects[i]) })
	parallel := make([]float64, len(rects))
	for _, workers := range []int{2, 4, 8, 0} {
		answerBatchInto(parallel, workers, func(i int) float64 { return tree.RangeCount(rects[i]) })
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("workers=%d: query %d diverged: %v vs %v", workers, i, serial[i], parallel[i])
			}
		}
	}
}
