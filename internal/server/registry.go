package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"time"

	"privtree"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// Kind distinguishes the two release pipelines a dataset can feed.
type Kind string

const (
	KindSpatial  Kind = "spatial"
	KindSequence Kind = "sequence"
)

// Dataset is one registered private dataset: the raw data (never exposed),
// its privacy-budget ledger, and the cache of releases already paid for.
//
// The zero-trust boundary runs through this struct: handlers may hand out
// anything derived from `releases` (each entry was bought from the ledger)
// but never the raw points or sequences.
type Dataset struct {
	Name      string
	Kind      Kind
	CreatedAt time.Time

	// Spatial payload (Kind == KindSpatial).
	domain geom.Rect
	points []privtree.Point

	// Sequence payload (Kind == KindSequence).
	alphabet int
	seqs     []privtree.Sequence

	// Ledger is the dataset's ε accountant; every release debits it.
	Ledger *dp.Ledger

	// mu guards the release cache; builds run OUTSIDE it so queries and
	// metadata reads never stall behind a slow mechanism. pending marks
	// cache keys whose build is in flight (the channel closes when the
	// build finishes), so two identical concurrent requests cannot
	// double-spend: the second waits and takes the cache hit.
	mu       sync.RWMutex
	releases map[string]*Release
	byKey    map[string]string
	pending  map[string]chan struct{}
	nextID   int
}

// N returns the dataset cardinality (points or sequences).
func (d *Dataset) N() int {
	if d.Kind == KindSpatial {
		return len(d.points)
	}
	return len(d.seqs)
}

// Dims returns the spatial dimensionality (0 for sequence datasets).
func (d *Dataset) Dims() int {
	if d.Kind == KindSpatial {
		return d.domain.Dims()
	}
	return 0
}

// ReleaseParams are the client-settable knobs of one release. Together with
// the dataset they fully determine the released artifact (builds are pure
// functions of data, params and seed), which is what makes the release
// cache sound: a repeated request is the *same* release, not a new one.
type ReleaseParams struct {
	// Epsilon is the privacy budget this release debits. Required.
	Epsilon float64 `json:"epsilon"`
	// Seed fixes the mechanism's randomness; 0 picks the library default.
	Seed uint64 `json:"seed"`

	// Spatial knobs (mirror privtree.SpatialOptions).
	Fanout             int     `json:"fanout,omitempty"`
	Theta              float64 `json:"theta,omitempty"`
	TreeBudgetFraction float64 `json:"tree_budget_fraction,omitempty"`
	MaxDepth           int     `json:"max_depth,omitempty"`
	AffectedLeaves     int     `json:"affected_leaves,omitempty"`

	// Sequence knobs (mirror privtree.SequenceOptions).
	MaxLength int `json:"max_length,omitempty"`
}

// key is the release-cache key: every parameter that influences the
// artifact, in a fixed order.
func (p ReleaseParams) key() string {
	return fmt.Sprintf("eps=%g seed=%d fanout=%d theta=%g frac=%g depth=%d leaves=%d maxlen=%d",
		p.Epsilon, p.Seed, p.Fanout, p.Theta, p.TreeBudgetFraction, p.MaxDepth, p.AffectedLeaves, p.MaxLength)
}

// Release is one purchased differentially private artifact. Tree/Model are
// immutable after construction, so queries read them without locking.
type Release struct {
	ID        string        `json:"release_id"`
	Kind      Kind          `json:"kind"`
	Params    ReleaseParams `json:"params"`
	CreatedAt time.Time     `json:"created_at"`
	Nodes     int           `json:"nodes"`
	Height    int           `json:"height,omitempty"`

	tree     *privtree.SpatialTree
	model    *privtree.SequenceModel
	artifact json.RawMessage
}

// Artifact returns the release in the library's public wire format (the
// same JSON shape serialize.go defines for SpatialTree / SequenceModel).
// The bytes are marshaled once at build time — releases are immutable —
// so repeated fetches cost a slice copy, not a tree walk.
func (r *Release) Artifact() json.RawMessage { return r.artifact }

// Release returns the cached release for p, or builds one: the ledger is
// debited and the cache key claimed atomically, then the mechanism runs
// outside the lock (concurrent queries and metadata reads proceed), and on
// mechanism failure the debit is refunded (sound because nothing was
// published). The boolean reports a cache hit, which never debits —
// handing out the same artifact twice is post-processing of one release
// and costs no extra privacy. A request arriving while an identical build
// is in flight waits for it and takes the cache hit rather than
// double-spending.
//
// workers bounds the build parallelism (0 = GOMAXPROCS).
func (d *Dataset) Release(p ReleaseParams, workers int) (*Release, bool, error) {
	key := p.key()
	note := "release " + key
	var done chan struct{}
	for {
		d.mu.Lock()
		if id, ok := d.byKey[key]; ok {
			rel := d.releases[id]
			d.mu.Unlock()
			return rel, true, nil
		}
		if ch, ok := d.pending[key]; ok {
			// An identical build is in flight: wait for it and re-check.
			// (If it fails, the loop claims the key and tries afresh.)
			d.mu.Unlock()
			<-ch
			continue
		}
		// Claim the key: debit inside the lock so the exhaustion check and
		// the claim are one atomic step.
		if err := d.Ledger.Spend(p.Epsilon, note); err != nil {
			d.mu.Unlock()
			return nil, false, err
		}
		done = make(chan struct{})
		d.pending[key] = done
		d.mu.Unlock()
		break
	}

	rel, err := d.build(p, workers)
	if err != nil {
		// Refund before waking waiters, so a retrying waiter sees the
		// credited ledger.
		d.Ledger.Refund(p.Epsilon, note)
	}
	d.mu.Lock()
	delete(d.pending, key)
	if err == nil {
		d.nextID++
		rel.ID = fmt.Sprintf("r%d", d.nextID)
		rel.Params = p
		rel.Kind = d.Kind
		rel.CreatedAt = time.Now()
		d.releases[rel.ID] = rel
		d.byKey[key] = rel.ID
	}
	d.mu.Unlock()
	close(done)
	if err != nil {
		return nil, false, err
	}
	return rel, false, nil
}

// build runs the mechanism for p against the raw data and marshals the
// wire-format artifact once, so later fetches never re-walk the tree.
func (d *Dataset) build(p ReleaseParams, workers int) (*Release, error) {
	switch d.Kind {
	case KindSpatial:
		tree, err := privtree.BuildSpatial(d.domain, d.points, p.Epsilon, privtree.SpatialOptions{
			Fanout:             p.Fanout,
			Theta:              p.Theta,
			TreeBudgetFraction: p.TreeBudgetFraction,
			MaxDepth:           p.MaxDepth,
			AffectedLeaves:     p.AffectedLeaves,
			Seed:               p.Seed,
			Workers:            workers,
		})
		if err != nil {
			return nil, err
		}
		blob, err := json.Marshal(tree)
		if err != nil {
			return nil, fmt.Errorf("%w: marshaling release artifact: %v", errInternal, err)
		}
		return &Release{tree: tree, artifact: blob, Nodes: tree.Nodes(), Height: tree.Height()}, nil
	case KindSequence:
		model, err := privtree.BuildSequenceModel(d.alphabet, d.seqs, p.Epsilon, privtree.SequenceOptions{
			MaxLength: p.MaxLength,
			Seed:      p.Seed,
			Workers:   workers,
		})
		if err != nil {
			return nil, err
		}
		blob, err := json.Marshal(model)
		if err != nil {
			return nil, fmt.Errorf("%w: marshaling release artifact: %v", errInternal, err)
		}
		return &Release{model: model, artifact: blob, Nodes: model.Nodes()}, nil
	}
	return nil, fmt.Errorf("%w: unknown dataset kind %q", errInternal, d.Kind)
}

// GetRelease returns a release by id.
func (d *Dataset) GetRelease(id string) (*Release, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.releases[id]
	return r, ok
}

// NumReleases returns the release count without copying the cache (for
// list/metrics views, which are polled).
func (d *Dataset) NumReleases() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.releases)
}

// Releases returns the dataset's releases sorted by id creation order.
func (d *Dataset) Releases() []*Release {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*Release, 0, len(d.releases))
	for _, r := range d.releases {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedAt.Before(out[j].CreatedAt) })
	return out
}

// nameRE constrains dataset names to something path- and log-safe.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

// ValidateName reports whether name is acceptable as a dataset name. It is
// cheap; callers ingesting large payloads should run it before touching
// the data.
func ValidateName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("server: invalid dataset name %q (want %s)", name, nameRE)
	}
	return nil
}

// Registry is the concurrent-safe set of datasets a server owns.
type Registry struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{datasets: make(map[string]*Dataset)}
}

// newDataset initializes the bookkeeping shared by both kinds.
func newDataset(name string, kind Kind, epsilon float64) (*Dataset, error) {
	ledger, err := dp.NewLedger(epsilon)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Name:      name,
		Kind:      kind,
		CreatedAt: time.Now(),
		Ledger:    ledger,
		releases:  make(map[string]*Release),
		byKey:     make(map[string]string),
		pending:   make(map[string]chan struct{}),
	}, nil
}

// AddSpatial registers a spatial dataset under a total privacy budget. The
// data is validated eagerly (domain shape, points inside the domain) so
// that a later release can only fail on release parameters.
func (r *Registry) AddSpatial(name string, domain geom.Rect, points []privtree.Point, epsilon float64) (*Dataset, error) {
	if err := domain.Validate(); err != nil {
		return nil, fmt.Errorf("server: invalid domain: %w", err)
	}
	for i, p := range points {
		if len(p) != domain.Dims() {
			return nil, fmt.Errorf("server: point %d has dim %d, domain has dim %d", i, len(p), domain.Dims())
		}
		if !domain.Contains(p) {
			return nil, fmt.Errorf("server: point %d outside domain", i)
		}
	}
	d, err := newDataset(name, KindSpatial, epsilon)
	if err != nil {
		return nil, err
	}
	d.domain = domain
	d.points = points
	return d, r.insert(d)
}

// AddSequence registers a sequence dataset under a total privacy budget.
func (r *Registry) AddSequence(name string, alphabet int, seqs []privtree.Sequence, epsilon float64) (*Dataset, error) {
	if alphabet < 1 {
		return nil, fmt.Errorf("server: alphabet size must be >= 1, got %d", alphabet)
	}
	for i, s := range seqs {
		for _, x := range s {
			if x < 0 || x >= alphabet {
				return nil, fmt.Errorf("server: sequence %d has symbol %d outside [0,%d)", i, x, alphabet)
			}
		}
	}
	d, err := newDataset(name, KindSequence, epsilon)
	if err != nil {
		return nil, err
	}
	d.alphabet = alphabet
	d.seqs = seqs
	return d, r.insert(d)
}

// ErrExists reports a dataset-name collision; handlers map it to HTTP 409.
var ErrExists = errors.New("dataset already registered")

func (r *Registry) insert(d *Dataset) error {
	if err := ValidateName(d.Name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.datasets[d.Name]; exists {
		return fmt.Errorf("server: dataset %q: %w", d.Name, ErrExists)
	}
	r.datasets[d.Name] = d
	return nil
}

// Get returns a dataset by name.
func (r *Registry) Get(name string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.datasets[name]
	return d, ok
}

// List returns all datasets sorted by name.
func (r *Registry) List() []*Dataset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Dataset, 0, len(r.datasets))
	for _, d := range r.datasets {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.datasets)
}
