package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"privtree"
	"privtree/internal/geom"
)

// Kind distinguishes the release pipelines a dataset can feed. It is the
// library's ReleaseKind: the server is a thin tenancy layer over the
// public Mechanism/Release/Session API.
type Kind = privtree.ReleaseKind

const (
	KindSpatial  = privtree.KindSpatial
	KindSequence = privtree.KindSequence
)

// Dataset is one registered private dataset: the raw data (wrapped in a
// privtree.Data, never exposed) and its privtree.Session, which owns the
// privacy-budget ledger and the cache of releases already paid for.
//
// The zero-trust boundary runs through this struct: handlers may hand out
// anything derived from `releases` (each entry was bought from the
// session's ledger) but never the raw points or sequences.
type Dataset struct {
	Name      string
	Kind      Kind
	CreatedAt time.Time

	// data wraps the raw payload; session owns the ε ledger and dedup
	// cache (debit-before-build, refund-on-failure, cache hits free).
	data    *privtree.Data
	session *privtree.Session

	// store is the session's crash-safe persistence root (nil when the
	// server runs without a data dir), kept for the store-bytes gauge.
	store *privtree.Store

	// Ledger is the session's ε accountant, exposed for budget reporting.
	Ledger *privtree.Ledger

	// stream is the continual-release state of a streaming dataset (nil
	// for ordinary frozen datasets): the pending ingest buffer, the
	// sliding window of sealed epochs, and the durable ingest journal.
	// See stream.go.
	stream *datasetStream

	// mu guards the release-ID bookkeeping. Builds and ledger traffic run
	// in the session, outside this lock, so queries and metadata reads
	// never stall behind a slow mechanism.
	mu       sync.RWMutex
	releases map[string]*Release
	byKey    map[string]string
	nextID   int
}

// IsStream reports whether the dataset is a streaming dataset (registered
// with a stream spec, fed by POST .../ingest, served via the `latest`
// window alias).
func (d *Dataset) IsStream() bool { return d.stream != nil }

// N returns the dataset cardinality (points or sequences).
func (d *Dataset) N() int { return d.data.N() }

// Dims returns the spatial dimensionality (0 for sequence datasets).
func (d *Dataset) Dims() int { return d.data.Dims() }

// alphabet returns the sequence alphabet size (0 for spatial datasets).
func (d *Dataset) alphabet() int { return d.data.Alphabet() }

// AttachStore opens (creating if needed) the crash-safe store at dir,
// attaches it to the dataset's session — recovering spent ε, the audit
// trail, and every committed release — and registers the recovered
// releases under fresh sequential IDs in their original commit order, so
// a restarted server serves them under the same r1, r2, … names. Must be
// called before the dataset receives traffic.
func (d *Dataset) AttachStore(dir string) error {
	st, err := privtree.OpenStore(dir)
	if err != nil {
		return err
	}
	if err := d.session.WithStore(st); err != nil {
		st.Close()
		return err
	}
	d.store = st
	for _, rr := range d.session.Restored() {
		if err := d.restoreRelease(rr.Release, rr.At); err != nil {
			return fmt.Errorf("server: dataset %q: restoring release: %w", d.Name, err)
		}
	}
	if d.stream != nil {
		// The WAL's seal records plus the ingest journal reconstruct the
		// exact streaming state: served window, next epoch, last applied
		// batch, and the unsealed pending buffer.
		if err := d.stream.recover(d, filepath.Join(dir, "..", "ingest.log")); err != nil {
			return fmt.Errorf("server: dataset %q: recovering stream: %w", d.Name, err)
		}
	}
	return nil
}

// restoreRelease registers one recovered release: the persisted envelope
// bytes are served verbatim (bit-identical across the restart), metadata
// is rebuilt from the release's own provenance, and the ID continues the
// r<N> sequence in commit order.
func (d *Dataset) restoreRelease(rel *privtree.Release, at time.Time) error {
	blob, err := rel.Envelope()
	if err != nil {
		return err
	}
	p := rel.Params()
	out := &Release{
		Kind: rel.Kind(),
		Params: ReleaseParams{
			Epsilon:            rel.Epsilon(),
			Seed:               p.Seed,
			Fanout:             p.Fanout,
			Theta:              p.Theta,
			TreeBudgetFraction: p.TreeBudgetFraction,
			MaxDepth:           p.MaxDepth,
			AffectedLeaves:     p.AffectedLeaves,
			MaxLength:          p.MaxLength,
		},
		CreatedAt: at,
		artifact:  blob,
	}
	if t, ok := rel.Spatial(); ok {
		out.tree = t
		out.Nodes, out.Height = t.Nodes(), t.Height()
	}
	if m, ok := rel.Sequence(); ok {
		out.model = m
		out.Nodes = m.Nodes()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.byKey[rel.Fingerprint()]; dup {
		return fmt.Errorf("duplicate fingerprint %q in store", rel.Fingerprint())
	}
	d.nextID++
	out.ID = fmt.Sprintf("r%d", d.nextID)
	d.releases[out.ID] = out
	d.byKey[rel.Fingerprint()] = out.ID
	return nil
}

// StoreBytes returns the dataset's on-disk store footprint (0 without
// persistence); /metrics exports it per dataset.
func (d *Dataset) StoreBytes() int64 {
	if d.store == nil {
		return 0
	}
	return d.store.SizeBytes()
}

// WALSeq returns the highest WAL sequence number the dataset's store has
// issued (0 without persistence); /metrics exports it per dataset, and
// audit entries reference these numbers.
func (d *Dataset) WALSeq() uint64 {
	if d.store == nil {
		return 0
	}
	return d.store.LastSeq()
}

// Audit returns the dataset's ε audit plane: every ledger debit, refund,
// and release commit with its WAL sequence number and originating trace
// ID, in WAL order. For store-backed datasets the rows survive restarts.
func (d *Dataset) Audit() []privtree.AuditEntry { return d.session.Audit() }

// Close releases the dataset's store and ingest journal (if any).
// Idempotent; all acknowledged state is already durable.
func (d *Dataset) Close() error {
	if d.stream != nil {
		d.stream.close()
	}
	return d.session.Close()
}

// ReleaseParams are the client-settable knobs of one release: ε plus the
// library's Params union. Together with the dataset they fully determine
// the released artifact (builds are pure functions of data, params and
// seed), which is what makes the release cache sound: a repeated request
// is the *same* release, not a new one. Knobs that do not apply to the
// dataset's mechanism are rejected — a silently ignored knob would spend
// irreversible ε on the wrong artifact.
type ReleaseParams struct {
	// Epsilon is the privacy budget this release debits. Required.
	Epsilon float64 `json:"epsilon"`
	// Seed fixes the mechanism's randomness; 0 picks the library default.
	Seed uint64 `json:"seed"`

	// Spatial knobs (mirror privtree.SpatialOptions).
	Fanout             int     `json:"fanout,omitempty"`
	Theta              float64 `json:"theta,omitempty"`
	TreeBudgetFraction float64 `json:"tree_budget_fraction,omitempty"`
	MaxDepth           int     `json:"max_depth,omitempty"`
	AffectedLeaves     int     `json:"affected_leaves,omitempty"`

	// Sequence knobs (mirror privtree.SequenceOptions).
	MaxLength int `json:"max_length,omitempty"`
}

// mechanism instantiates the registry mechanism this dataset's releases
// run: the full Params union is handed to the library, which validates the
// applicable knobs and rejects non-zero inapplicable ones.
func (p ReleaseParams) mechanism(kind Kind, workers int) (*privtree.Mechanism, error) {
	return privtree.NewMechanism(string(kind), privtree.Params{
		Seed:               p.Seed,
		Fanout:             p.Fanout,
		Theta:              p.Theta,
		TreeBudgetFraction: p.TreeBudgetFraction,
		MaxDepth:           p.MaxDepth,
		AffectedLeaves:     p.AffectedLeaves,
		MaxLength:          p.MaxLength,
		Workers:            workers,
	})
}

// Release is one purchased differentially private artifact. The payloads
// are immutable after construction, so queries read them without locking.
type Release struct {
	ID        string        `json:"release_id"`
	Kind      Kind          `json:"kind"`
	Params    ReleaseParams `json:"params"`
	CreatedAt time.Time     `json:"created_at"`
	Nodes     int           `json:"nodes"`
	Height    int           `json:"height,omitempty"`

	tree     *privtree.SpatialTree
	model    *privtree.SequenceModel
	artifact json.RawMessage
}

// Artifact returns the release in the library's versioned wire envelope
// (the JSON shape privtree.Decode loads). The bytes are marshaled once at
// build time — releases are immutable — so repeated fetches cost a slice
// copy, not a tree walk.
func (r *Release) Artifact() json.RawMessage { return r.artifact }

// Release returns the cached release for p, or builds one through the
// dataset's session: the session debits its ledger before the mechanism
// runs, serves requests with parameters already purchased from cache
// without a new debit (re-publishing released bytes is post-processing),
// refunds the debit when the mechanism fails, and guarantees concurrent
// identical requests debit exactly once. The boolean reports a cache hit.
//
// workers bounds the build parallelism (0 = GOMAXPROCS).
func (d *Dataset) Release(p ReleaseParams, workers int) (*Release, bool, error) {
	return d.ReleaseContext(context.Background(), p, workers)
}

// ReleaseContext is Release under a request context: when ctx is
// cancelled or its deadline passes mid-build, the build is abandoned and
// its debit refunded — durably, when the dataset has a store — before the
// error returns (see privtree.Session.ReleaseContext). A client that
// times out and retries the identical request pays at most one debit:
// either the cancelled attempt was refunded, or it completed server-side
// and the retry is a cache hit.
func (d *Dataset) ReleaseContext(ctx context.Context, p ReleaseParams, workers int) (*Release, bool, error) {
	rel, _, cached, err := d.releaseData(ctx, d.data, p, workers)
	return rel, cached, err
}

// releaseData runs one release of data — the dataset's frozen Data, or
// one sealed stream epoch — through the session and registers it in the
// serving maps. It additionally returns the release fingerprint, which
// the streaming plane writes into the WAL seal record so a recovered
// node can resolve the served window back to its member releases.
func (d *Dataset) releaseData(ctx context.Context, data *privtree.Data, p ReleaseParams, workers int) (*Release, string, bool, error) {
	m, err := p.mechanism(d.Kind, workers)
	if err != nil {
		return nil, "", false, err
	}
	rel, cached, err := d.session.ReleaseContext(ctx, m, data, p.Epsilon)
	if err != nil {
		return nil, "", false, err
	}
	key := rel.Fingerprint()

	// The session's verdict is authoritative for the cached flag: under a
	// concurrent identical request, the waiter that took the session cache
	// hit may register the ID first, but the builder still debited.
	d.mu.RLock()
	if id, known := d.byKey[key]; known {
		out := d.releases[id]
		d.mu.RUnlock()
		return out, key, cached, nil
	}
	d.mu.RUnlock()

	// First sighting of this fingerprint: take the release's cached
	// envelope — the SAME bytes the session persisted (if a store is
	// attached), so the artifact endpoint, the store, and a post-restart
	// recovery all serve bit-identical JSON.
	blob, err := rel.Envelope()
	if err != nil {
		return nil, "", false, fmt.Errorf("%w: marshaling release artifact: %v", errInternal, err)
	}
	out := &Release{
		Kind:      d.Kind,
		Params:    p,
		CreatedAt: time.Now(),
		artifact:  blob,
	}
	if t, ok := rel.Spatial(); ok {
		out.tree = t
		out.Nodes, out.Height = t.Nodes(), t.Height()
	}
	if mdl, ok := rel.Sequence(); ok {
		out.model = mdl
		out.Nodes = mdl.Nodes()
	}

	d.mu.Lock()
	if id, raced := d.byKey[key]; raced {
		// A concurrent identical request registered it first.
		prev := d.releases[id]
		d.mu.Unlock()
		return prev, key, cached, nil
	}
	d.nextID++
	out.ID = fmt.Sprintf("r%d", d.nextID)
	d.releases[out.ID] = out
	d.byKey[key] = out.ID
	d.mu.Unlock()
	return out, key, cached, nil
}

// releaseByFingerprint resolves a release fingerprint (the key a WAL seal
// record carries) to its registered release.
func (d *Dataset) releaseByFingerprint(fp string) (*Release, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byKey[fp]
	if !ok {
		return nil, false
	}
	r, ok := d.releases[id]
	return r, ok
}

// GetRelease returns a release by id.
func (d *Dataset) GetRelease(id string) (*Release, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.releases[id]
	return r, ok
}

// NumReleases returns the release count without copying the cache (for
// list/metrics views, which are polled).
func (d *Dataset) NumReleases() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.releases)
}

// Releases returns the dataset's releases sorted by id creation order.
func (d *Dataset) Releases() []*Release {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*Release, 0, len(d.releases))
	for _, r := range d.releases {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedAt.Before(out[j].CreatedAt) })
	return out
}

// nameRE constrains dataset names to something path- and log-safe.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

// ValidateName reports whether name is acceptable as a dataset name. It is
// cheap; callers ingesting large payloads should run it before touching
// the data.
func ValidateName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("server: invalid dataset name %q (want %s)", name, nameRE)
	}
	return nil
}

// Registry is the concurrent-safe set of datasets a server owns.
type Registry struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{datasets: make(map[string]*Dataset)}
}

// newDataset initializes the bookkeeping shared by both kinds: a session
// holding the total budget, wrapped around the validated data.
func newDataset(name string, kind Kind, data *privtree.Data, epsilon float64) (*Dataset, error) {
	session, err := privtree.NewSession(epsilon)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Name:      name,
		Kind:      kind,
		CreatedAt: time.Now(),
		data:      data,
		session:   session,
		Ledger:    session.Ledger(),
		releases:  make(map[string]*Release),
		byKey:     make(map[string]string),
	}, nil
}

// NewSpatialDataset builds (without registering) a spatial dataset under
// a total privacy budget. The data is validated eagerly (domain shape,
// points inside the domain) so that a later release can only fail on
// release parameters. Attach persistence with AttachStore, then register
// with Insert.
func (r *Registry) NewSpatialDataset(name string, domain geom.Rect, points []privtree.Point, epsilon float64) (*Dataset, error) {
	data, err := privtree.NewSpatialData(domain, points)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return newDataset(name, KindSpatial, data, epsilon)
}

// NewSequenceDataset builds (without registering) a sequence dataset
// under a total privacy budget.
func (r *Registry) NewSequenceDataset(name string, alphabet int, seqs []privtree.Sequence, epsilon float64) (*Dataset, error) {
	data, err := privtree.NewSequenceData(alphabet, seqs)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return newDataset(name, KindSequence, data, epsilon)
}

// AddSpatial builds and registers a spatial dataset (in-memory only; the
// server's registration path splits build from Insert so it can attach
// persistence in between).
func (r *Registry) AddSpatial(name string, domain geom.Rect, points []privtree.Point, epsilon float64) (*Dataset, error) {
	d, err := r.NewSpatialDataset(name, domain, points, epsilon)
	if err != nil {
		return nil, err
	}
	return d, r.Insert(d)
}

// AddSequence builds and registers a sequence dataset (in-memory only).
func (r *Registry) AddSequence(name string, alphabet int, seqs []privtree.Sequence, epsilon float64) (*Dataset, error) {
	d, err := r.NewSequenceDataset(name, alphabet, seqs, epsilon)
	if err != nil {
		return nil, err
	}
	return d, r.Insert(d)
}

// ErrExists reports a dataset-name collision; handlers map it to HTTP 409.
var ErrExists = errors.New("dataset already registered")

// Insert registers a built dataset under its name.
func (r *Registry) Insert(d *Dataset) error { return r.insert(d) }

// Close closes every dataset's store, returning the first error.
func (r *Registry) Close() error {
	var first error
	for _, d := range r.List() {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (r *Registry) insert(d *Dataset) error {
	if err := ValidateName(d.Name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.datasets[d.Name]; exists {
		return fmt.Errorf("server: dataset %q: %w", d.Name, ErrExists)
	}
	r.datasets[d.Name] = d
	return nil
}

// Get returns a dataset by name.
func (r *Registry) Get(name string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.datasets[name]
	return d, ok
}

// List returns all datasets sorted by name.
func (r *Registry) List() []*Dataset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Dataset, 0, len(r.datasets))
	for _, d := range r.datasets {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.datasets)
}
