package server

import (
	"net/http"
	"strconv"
	"time"

	"privtree/internal/obs"
)

// The trace plane: read-only views over the flight recorder, so an
// operator holding an X-Trace-Id from a response header, a slow-request
// log line, an exemplar, or an audit entry can pull the full span
// breakdown after the fact. Trace data is operational metadata (routes,
// durations, span names) — it never contains raw records or query
// answers, so the plane is readable on replicas and fenced nodes alike.

// traceJSON is the wire shape of one retained trace.
type traceJSON struct {
	TraceID    string     `json:"trace_id"`
	Route      string     `json:"route"`
	Dataset    string     `json:"dataset,omitempty"`
	Status     int        `json:"status"`
	Start      time.Time  `json:"start"`
	DurationMS float64    `json:"duration_ms"`
	Retained   string     `json:"retained"`
	Spans      []spanJSON `json:"spans,omitempty"`
}

type spanJSON struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

type tracesResponse struct {
	Traces []traceJSON `json:"traces"`
	// Seen/Retained expose the tail sampler's behavior: how many
	// completed requests were considered and how many were kept.
	Seen     uint64 `json:"seen"`
	Retained uint64 `json:"retained"`
}

func traceToJSON(rec obs.TraceRecord) traceJSON {
	out := traceJSON{
		TraceID:    rec.TraceID,
		Route:      rec.Route,
		Dataset:    rec.Dataset,
		Status:     rec.Status,
		Start:      rec.Start.UTC(),
		DurationMS: float64(rec.Dur) / float64(time.Millisecond),
		Retained:   rec.Retained,
	}
	for _, sp := range rec.Spans {
		out.Spans = append(out.Spans, spanJSON{Name: sp.Name, DurationMS: float64(sp.Dur) / float64(time.Millisecond)})
	}
	return out
}

// handleListTraces serves GET /v1/traces: retained traces, newest
// first, filterable by route, dataset, status, and min_duration_ms;
// limit bounds the page (default 100).
func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: "limit must be a positive integer"})
			return
		}
		limit = n
	}
	var status int
	if v := q.Get("status"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 100 || n > 599 {
			writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: "status must be an HTTP status code"})
			return
		}
		status = n
	}
	var minDur time.Duration
	if v := q.Get("min_duration_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: "min_duration_ms must be a non-negative number"})
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	route, dataset := q.Get("route"), q.Get("dataset")
	recs := s.recorder.Snapshot(limit, func(rec *obs.TraceRecord) bool {
		if route != "" && rec.Route != route {
			return false
		}
		if dataset != "" && rec.Dataset != dataset {
			return false
		}
		if status != 0 && rec.Status != status {
			return false
		}
		if rec.Dur < minDur {
			return false
		}
		return true
	})
	resp := tracesResponse{Traces: make([]traceJSON, 0, len(recs))}
	for _, rec := range recs {
		resp.Traces = append(resp.Traces, traceToJSON(rec))
	}
	resp.Seen, resp.Retained = s.recorder.Counts()
	writeJSON(w, http.StatusOK, resp)
}

// handleGetTrace serves GET /v1/traces/{id}: one retained trace by its
// X-Trace-Id.
func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.recorder.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound,
			Message: "no retained trace with that ID (it may have been evicted or sampled out)"})
		return
	}
	writeJSON(w, http.StatusOK, traceToJSON(rec))
}
