package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// FuzzIngestDecode throws arbitrary bytes at the full ingest plane — the
// pooled columnar decoder, validation, and the apply path — against live
// spatial and sequence streaming datasets. The properties under fuzz:
//
//  1. no input panics the handler, however hostile, truncated, or
//     numerically degenerate (NaN/Inf coordinates, overflowing
//     integers, mismatched row shapes);
//  2. batches never partially apply: a rejected request leaves the
//     pending epoch buffer exactly as it was, and an accepted one grows
//     it by exactly the acknowledged row count (all-or-nothing);
//  3. the journal payload decoder never panics on arbitrary bytes (its
//     openIngestJournal caller relies on error returns, not recovery).
func FuzzIngestDecode(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"points":[[0.5,0.5]]}`,
		`{"batch_seq":3,"points":[[0.1,0.2],[0.3,0.4]],"seal":true}`,
		`{"strings":[[0,1,2],[3]]}`,
		`{"points":[[1e999,0.5]]}`,                  // +Inf coordinate
		`{"points":[[0.5]]}`,                        // wrong dimensionality
		`{"points":[[-0.5,0.5]]}`,                   // outside the domain
		`{"points":[[0.5,0.5]],"strings":[[1]]}`,    // both planes at once
		`{"strings":[[99]]}`,                        // symbol out of alphabet
		`{"batch_seq":18446744073709551615,"seal"`,  // truncated mid-key
		`{"batch_seq":01,"points":[[0.5,0.5]]}`,     // leading zero
		`{"batch_seq":1.5,"points":[[0.5,0.5]]}`,    // float sequence
		`{"seal":true}`,                             // bare seal, no rows
		`{"unknown":1}`,                             // unknown field
		`{"points":[[0.5,0.5],]}`,                   // trailing comma
		`{"points":[["0.5","0.5"]]}`,                // strings where floats go
		"\x00\xff\xfe",                              // not JSON at all
		`{"points":[[0.30000000000000004,0.7e-1]]}`, // fussy floats
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	s, err := New(Options{Workers: 1, MaxBatch: 256})
	if err != nil {
		f.Fatal(err)
	}
	defer s.Close()
	reg := func(body map[string]any) {
		blob, _ := json.Marshal(body)
		req := httptest.NewRequest("POST", "/v1/datasets", bytes.NewReader(blob))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != 201 {
			f.Fatalf("register: %d %s", rec.Code, rec.Body.String())
		}
	}
	// Huge budgets: a fuzzer-crafted valid {"seal":true} batch seals for
	// real, and the run must not die to budget exhaustion.
	reg(map[string]any{
		"name": "fz-spatial", "epsilon": 1e18,
		"domain": map[string]any{"lo": []float64{0, 0}, "hi": []float64{1, 1}},
		"stream": map[string]any{"epoch_epsilon": 0.125, "window": 2, "seed": 11},
	})
	reg(map[string]any{
		"name": "fz-seq", "epsilon": 1e18, "alphabet": 8,
		"stream": map[string]any{"epoch_epsilon": 0.125, "window": 2, "seed": 12, "max_length": 6},
	})
	targets := []string{"fz-spatial", "fz-seq"}

	pending := func(name string) int {
		req := httptest.NewRequest("GET", "/v1/datasets/"+name, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		var info struct {
			Stream *streamInfoJSON `json:"stream"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil || info.Stream == nil {
			f.Fatalf("dataset info %s: %v", name, err)
		}
		return info.Stream.Pending
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := decodeJournalPayload(data); err != nil {
			_ = err // hostile payloads must error, never panic
		}
		for _, name := range targets {
			before := pending(name)
			req := httptest.NewRequest("POST", "/v1/datasets/"+name+"/ingest", bytes.NewReader(data))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			after := pending(name)
			if rec.Code != 200 {
				if after != before {
					t.Fatalf("%s: rejected batch (HTTP %d) PARTIALLY APPLIED: pending %d → %d\nbody: %q",
						name, rec.Code, before, after, data)
				}
				continue
			}
			var resp ingestResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("%s: undecodable 200 ack: %v", name, err)
			}
			if resp.Sealed || resp.SealError != "" {
				// A seal (or failed seal retaining a frozen epoch) moves rows
				// out of / keeps them in pending legitimately; the invariant
				// below only holds for plain appends.
				continue
			}
			if resp.Duplicate && resp.Applied != 0 {
				t.Fatalf("%s: duplicate ack claims %d rows applied", name, resp.Applied)
			}
			if after != before+resp.Applied {
				t.Fatalf("%s: acked %d rows but pending moved %d → %d (partial apply)\nbody: %q",
					name, resp.Applied, before, after, data)
			}
		}
	})
}
