package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"privtree"
	"privtree/internal/faultnet"
	"privtree/internal/store"
)

// Replication chaos sweep: a child-process primary, an in-process replica
// pulling through a seeded fault-injection proxy (resets, truncations,
// one-way partitions, throttling, latency), then a SIGKILL of the primary
// in the middle of a debit's WAL append, a promotion, and continued
// service. The end-to-end contract being proven:
//
//   - the promoted node's spent ε equals the acknowledged debits EXACTLY
//     (the killed, unacknowledged debit never ships — the primary dies
//     holding it);
//   - every acknowledged envelope refetches from the promoted node
//     bit-identically and decodes via privtree.Decode;
//   - the revived old primary over-counts (keeps the orphan debit), and
//     fencing rejects its writes permanently.

const (
	replChaosChildEnv   = "PRIVTREE_REPL_CHAOS_CHILD"
	replChaosDirEnv     = "PRIVTREE_REPL_CHAOS_DIR"
	replChaosTriggerEnv = "PRIVTREE_REPL_CHAOS_TRIGGER"
)

// TestReplChaosChild is the child body: a real primary on a loopback
// port, with a SIGKILL armed at the WAL append fsync point that fires
// once the parent creates the trigger file — so the parent controls
// exactly which debit dies mid-append.
func TestReplChaosChild(t *testing.T) {
	if os.Getenv(replChaosChildEnv) != "1" {
		t.Skip("chaos-harness child process only")
	}
	dir := os.Getenv(replChaosDirEnv)
	trigger := os.Getenv(replChaosTriggerEnv)
	if trigger != "" {
		store.SetCrashHook(func(point string) {
			if point != "wal.after_sync" {
				return
			}
			if _, err := os.Stat(trigger); err == nil {
				_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
				select {}
			}
		})
		defer store.SetCrashHook(nil)
	}
	s, err := New(Options{DataDir: dir, Workers: 1})
	if err != nil {
		fmt.Printf("CHILD-ERROR new: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("CHILD-ERROR listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR http://%s\n", ln.Addr())
	_ = http.Serve(ln, s) // runs until the parent kills the process
}

// startChaosPrimary re-executes the test binary as a primary child and
// returns its process and base URL once it is listening.
func startChaosPrimary(t *testing.T, dir, trigger string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestReplChaosChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		replChaosChildEnv+"=1",
		replChaosDirEnv+"="+dir,
		replChaosTriggerEnv+"="+trigger,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "ADDR ") {
				addrCh <- strings.TrimPrefix(line, "ADDR ")
			}
			if strings.HasPrefix(line, "CHILD-ERROR") {
				fmt.Fprintf(os.Stderr, "chaos primary: %s\n", line)
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("chaos primary never reported its address")
		return nil, ""
	}
}

// primaryLastSeq reads the primary's advertised WAL sequence for dataset
// over the shipping protocol (hitting the child directly, no faults).
func primaryLastSeq(client *http.Client, base, dataset string) (uint64, bool) {
	resp, err := client.Get(base + "/v1/repl/datasets")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	var out struct {
		Datasets []struct {
			Name    string `json:"name"`
			LastSeq uint64 `json:"last_seq"`
		} `json:"datasets"`
	}
	if json.NewDecoder(resp.Body).Decode(&out) != nil {
		return 0, false
	}
	for _, d := range out.Datasets {
		if d.Name == dataset {
			return d.LastSeq, true
		}
	}
	return 0, false
}

func TestReplicationChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes and runs a multi-second chaos schedule")
	}
	dirP := t.TempDir()
	trigger := filepath.Join(t.TempDir(), "kill-on-next-debit")
	cmd, primaryURL := startChaosPrimary(t, dirP, trigger)
	childDone := make(chan error, 1)
	go func() { childDone <- cmd.Wait() }()
	var killedChild atomic.Bool
	defer func() {
		if !killedChild.Load() {
			_ = cmd.Process.Kill()
			<-childDone
		}
	}()
	client := &http.Client{Timeout: 30 * time.Second}

	if code := doJSON(t, client, "POST", primaryURL+"/v1/datasets", map[string]any{
		"name": "chaos", "epsilon": 4.0,
		"synthetic": map[string]any{"generator": "road", "n": 3000, "seed": 5},
	}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}

	// The replica pulls through the fault proxy; keep-alives off so every
	// shipping request rolls a fresh fault from the seeded schedule. The
	// 2s client timeout is what unwedges one-way partitions.
	proxy, err := faultnet.New(strings.TrimPrefix(primaryURL, "http://"), faultnet.Options{
		Seed: 77, LatencyProb: 0.1, ResetProb: 0.15, TruncateProb: 0.15,
		PartitionProb: 0.08, ThrottleProb: 0.07, ThrottleBytesPerSec: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	replica := mustNew(t, Options{
		DataDir: t.TempDir(), Workers: 1,
		ReplicaOf: "http://" + proxy.Addr(), ReplicaPoll: 10 * time.Millisecond,
		ReplicaHTTP: &http.Client{
			Transport: &http.Transport{DisableKeepAlives: true},
			Timeout:   2 * time.Second,
		},
	})
	tsR := httptest.NewServer(replica)
	defer tsR.Close()
	defer replica.Close()

	// Drive acknowledged releases against the primary (direct, no faults
	// — the chaos is on the replication link). Record exactly what was
	// acknowledged: only those debits may count on the promoted node.
	type acked struct {
		id       string
		eps      float64
		envelope []byte
	}
	var ackedReleases []acked
	ackedEps := 0.0
	for i := 0; i < 8; i++ {
		eps := float64(i+1) / 64
		var rel releaseResponse
		if code := doJSON(t, client, "POST", primaryURL+"/v1/datasets/chaos/releases",
			map[string]any{"epsilon": eps, "seed": 100 + i}, &rel); code != http.StatusCreated {
			t.Fatalf("release %d: %d", i, code)
		}
		env := fetchArtifact(t, client, primaryURL+"/v1/datasets/chaos/releases/"+rel.Release.ID)
		ackedReleases = append(ackedReleases, acked{id: rel.Release.ID, eps: eps, envelope: env})
		ackedEps += eps
	}

	// Let the schedule hurt: keep polling until the proxy has injected at
	// least one reset, one truncation, and one one-way partition into the
	// replication stream (the syncer must survive all of them).
	waitUntil(t, "chaos faults to fire", func() bool {
		c := proxy.Counts()
		return c.Reset >= 1 && c.Truncate >= 1 && c.Partition >= 1
	})

	// Quiesce: the replica must be exactly caught up before the kill, so
	// "acked debits" and "shipped debits" coincide.
	var dR *Dataset
	waitUntil(t, "replica to fully catch up", func() bool {
		d, ok := replica.Registry().Get("chaos")
		if !ok {
			return false
		}
		dR = d
		last, ok := primaryLastSeq(client, primaryURL, "chaos")
		return ok && d.WALSeq() == last && d.Ledger.Spent() == ackedEps
	})

	// Arm the kill and send one more release: its debit fsyncs, the
	// SIGKILL lands inside the append, and the client never gets an ack.
	if err := os.WriteFile(trigger, []byte("armed\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	killEps := 1.0 / 32
	resp, err := client.Post(primaryURL+"/v1/datasets/chaos/releases", "application/json",
		strings.NewReader(fmt.Sprintf(`{"epsilon":%g,"seed":999}`, killEps)))
	if err == nil {
		if resp.StatusCode == http.StatusCreated {
			t.Fatal("the killing release was acknowledged; the crash hook did not fire")
		}
		resp.Body.Close()
	}
	select {
	case <-childDone:
		killedChild.Store(true)
	case <-time.After(30 * time.Second):
		t.Fatal("primary child did not die after the armed debit")
	}

	// Failover: promote the replica and verify the exactness contract.
	var promoted struct {
		Promoted     bool              `json:"promoted"`
		WriterEpochs map[string]uint64 `json:"writer_epochs"`
	}
	if code := doJSON(t, client, "POST", tsR.URL+"/v1/admin/promote", map[string]any{}, &promoted); code != http.StatusOK {
		t.Fatalf("promote: %d", code)
	}
	if !promoted.Promoted || promoted.WriterEpochs["chaos"] != 1 {
		t.Fatalf("promotion response: %+v", promoted)
	}
	if got := dR.Ledger.Spent(); got != ackedEps {
		t.Fatalf("promoted node spent ε = %v, want exactly the acked %v", got, ackedEps)
	}

	// Every acknowledged envelope is served bit-identically by the
	// promoted node and decodes as a release.
	for _, a := range ackedReleases {
		env := fetchArtifact(t, client, tsR.URL+"/v1/datasets/chaos/releases/"+a.id)
		if !bytes.Equal(env, a.envelope) {
			t.Fatalf("release %s: replicated envelope differs from the acknowledged bytes", a.id)
		}
		if _, err := privtree.Decode(env); err != nil {
			t.Fatalf("release %s: replicated envelope does not decode: %v", a.id, err)
		}
	}

	// Service continues: the promoted node is the budget-writer.
	for i := 0; i < 2; i++ {
		if code := doJSON(t, client, "POST", tsR.URL+"/v1/datasets/chaos/releases",
			map[string]any{"epsilon": 1.0 / 16, "seed": 200 + i}, nil); code != http.StatusCreated {
			t.Fatalf("post-failover release %d: %d", i, code)
		}
	}
	if got, want := dR.Ledger.Spent(), ackedEps+2.0/16; got != want {
		t.Fatalf("spent after failover writes = %v, want %v", got, want)
	}

	// Revive the old primary from its data dir. It recovers the orphan
	// debit (over-count — the safe direction), and fencing shuts its
	// write plane down for good.
	if err := os.Remove(trigger); err != nil {
		t.Fatal(err)
	}
	cmd2, revivedURL := startChaosPrimary(t, dirP, "")
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	var info struct {
		EpsilonSpent float64 `json:"epsilon_spent"`
	}
	if code := doJSON(t, client, "GET", revivedURL+"/v1/datasets/chaos", nil, &info); code != http.StatusOK {
		t.Fatalf("revived primary dataset: %d", code)
	}
	if want := ackedEps + killEps; info.EpsilonSpent != want {
		t.Fatalf("revived primary spent ε = %v, want %v (acked + orphan debit)", info.EpsilonSpent, want)
	}
	if code := doJSON(t, client, "POST", revivedURL+"/v1/admin/fence",
		map[string]any{"epoch": promoted.WriterEpochs["chaos"]}, nil); code != http.StatusOK {
		t.Fatalf("fencing revived primary: %d", code)
	}
	if status, code := errCode(t, client, "POST", revivedURL+"/v1/datasets/chaos/releases",
		map[string]any{"epsilon": 0.125, "seed": 300}); status != http.StatusForbidden || code != "fenced" {
		t.Fatalf("revived primary write = %d %q, want 403 fenced", status, code)
	}
}
