package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"privtree"
)

// TestServerRestartResumesState is the end-to-end acceptance check for
// -data-dir: a full register → release → query lifecycle, a shutdown,
// and a second server over the same directory that must resume with
// identical budget state, the same release IDs, bit-identical envelope
// bytes, and cache hits (no re-debit) for already-purchased parameters.
func TestServerRestartResumesState(t *testing.T) {
	dataDir := t.TempDir()

	srv1 := mustNew(t, Options{DataDir: dataDir, Workers: 1})
	ts1 := httptest.NewServer(srv1)
	client := ts1.Client()

	// Register one inline-points dataset and one synthetic dataset.
	var reg registerResponse
	if code := doJSON(t, client, "POST", ts1.URL+"/v1/datasets", map[string]any{
		"name": "inline", "epsilon": 1.0, "points": ptsAsRows(testPoints(3000)),
	}, &reg); code != http.StatusCreated {
		t.Fatalf("register inline: %d", code)
	}
	if code := doJSON(t, client, "POST", ts1.URL+"/v1/datasets", map[string]any{
		"name": "synth", "epsilon": 2.0,
		"synthetic": map[string]any{"generator": "road", "n": 5000, "seed": 42},
	}, &reg); code != http.StatusCreated {
		t.Fatalf("register synth: %d", code)
	}

	// Two releases on "inline", one on "synth"; a failed release on
	// "inline" (unrealizable fanout) exercises the durable refund.
	var rel1, rel2, rel3 releaseResponse
	if code := doJSON(t, client, "POST", ts1.URL+"/v1/datasets/inline/releases",
		map[string]any{"epsilon": 0.25, "seed": 7}, &rel1); code != http.StatusCreated {
		t.Fatalf("release 1: %d", code)
	}
	if code := doJSON(t, client, "POST", ts1.URL+"/v1/datasets/inline/releases",
		map[string]any{"epsilon": 0.25, "seed": 8}, &rel2); code != http.StatusCreated {
		t.Fatalf("release 2: %d", code)
	}
	if code := doJSON(t, client, "POST", ts1.URL+"/v1/datasets/inline/releases",
		map[string]any{"epsilon": 0.125, "seed": 7, "fanout": 8}, nil); code == http.StatusCreated {
		t.Fatal("unrealizable fanout released")
	}
	if code := doJSON(t, client, "POST", ts1.URL+"/v1/datasets/synth/releases",
		map[string]any{"epsilon": 0.5, "seed": 9}, &rel3); code != http.StatusCreated {
		t.Fatalf("release 3: %d", code)
	}

	d1, _ := srv1.Registry().Get("inline")
	spentInline := d1.Ledger.Spent()
	histLen := len(d1.Ledger.History())
	artifact1 := fetchArtifact(t, client, ts1.URL+"/v1/datasets/inline/releases/"+rel1.Release.ID)
	artifact2 := fetchArtifact(t, client, ts1.URL+"/v1/datasets/inline/releases/"+rel2.Release.ID)
	queryBefore := queryOne(t, client, ts1.URL+"/v1/datasets/inline/releases/"+rel1.Release.ID+"/query")

	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// ---- restart ----
	srv2 := mustNew(t, Options{DataDir: dataDir, Workers: 1})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	client2 := ts2.Client()

	if n := srv2.Registry().Len(); n != 2 {
		t.Fatalf("recovered %d datasets, want 2", n)
	}
	d1b, ok := srv2.Registry().Get("inline")
	if !ok {
		t.Fatal("dataset inline lost")
	}
	if got := d1b.Ledger.Spent(); got != spentInline {
		t.Fatalf("recovered spent = %v, want %v", got, spentInline)
	}
	if got := len(d1b.Ledger.History()); got != histLen {
		t.Fatalf("recovered audit trail has %d entries, want %d", got, histLen)
	}
	if got := d1b.Ledger.Total(); got != 1.0 {
		t.Fatalf("recovered total budget = %v, want 1.0", got)
	}

	// Same release IDs, bit-identical artifacts.
	for _, c := range []struct {
		id   string
		want []byte
	}{{rel1.Release.ID, artifact1}, {rel2.Release.ID, artifact2}} {
		got := fetchArtifact(t, client2, ts2.URL+"/v1/datasets/inline/releases/"+c.id)
		if !bytes.Equal(got, c.want) {
			t.Fatalf("artifact %s not bit-identical across restart", c.id)
		}
		if _, err := privtree.Decode(got); err != nil {
			t.Fatalf("recovered artifact %s does not decode: %v", c.id, err)
		}
	}

	// Queries over the recovered release answer identically.
	if after := queryOne(t, client2, ts2.URL+"/v1/datasets/inline/releases/"+rel1.Release.ID+"/query"); after != queryBefore {
		t.Fatalf("recovered release answers %v, before restart %v", after, queryBefore)
	}

	// Re-requesting purchased parameters is a cache hit with no debit.
	var hit releaseResponse
	if code := doJSON(t, client2, "POST", ts2.URL+"/v1/datasets/inline/releases",
		map[string]any{"epsilon": 0.25, "seed": 7}, &hit); code != http.StatusOK {
		t.Fatalf("cached release after restart: %d, want 200", code)
	}
	if !hit.Cached || hit.Release.ID != rel1.Release.ID {
		t.Fatalf("restart lost the cache: cached=%v id=%s want %s", hit.Cached, hit.Release.ID, rel1.Release.ID)
	}
	if got := d1b.Ledger.Spent(); got != spentInline {
		t.Fatalf("cache hit after restart re-debited: %v -> %v", spentInline, got)
	}

	// The budget carries over: inline has 0.5 left of 1.0.
	var fresh releaseResponse
	if code := doJSON(t, client2, "POST", ts2.URL+"/v1/datasets/inline/releases",
		map[string]any{"epsilon": 0.5, "seed": 11}, &fresh); code != http.StatusCreated {
		t.Fatalf("fresh release after restart: %d", code)
	}
	if code := doJSON(t, client2, "POST", ts2.URL+"/v1/datasets/inline/releases",
		map[string]any{"epsilon": 0.25, "seed": 12}, nil); code != http.StatusForbidden {
		t.Fatalf("over-budget release after restart: %d, want 403", code)
	}

	// Store-bytes gauges are live.
	var met metricsResponse
	if code := doJSON(t, client2, "GET", ts2.URL+"/metricsz", nil, &met); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if met.StoreBytesTotal <= 0 {
		t.Fatalf("store_bytes_total = %d, want > 0", met.StoreBytesTotal)
	}
	for _, di := range met.Datasets {
		if di.StoreBytes <= 0 {
			t.Fatalf("dataset %s store_bytes = %d, want > 0", di.Name, di.StoreBytes)
		}
		if di.EpsilonRemaining < 0 {
			t.Fatalf("dataset %s remaining ε negative", di.Name)
		}
	}
}

// TestServerRestartSurvivesBudgetAttack bounces the server and tries to
// spend the whole budget again — the exact attack the WAL exists to stop.
func TestServerRestartSurvivesBudgetAttack(t *testing.T) {
	dataDir := t.TempDir()
	srv1 := mustNew(t, Options{DataDir: dataDir, Workers: 1})
	d, err := srv1.Registry().AddSpatial("victim", privtree.UnitCube(2), testPoints(1000), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Programmatic registration bypasses the HTTP persistence path, so
	// attach the store the way the handler would.
	t.Cleanup(func() { srv1.Close() })
	if err := writeDatasetFile(srv1.datasetDir("victim"), &registerRequest{
		Name: "victim", Epsilon: 0.5, Points: ptsAsRows(testPoints(1000)),
	}, d.CreatedAt); err != nil {
		t.Fatal(err)
	}
	if err := d.AttachStore(filepath.Join(srv1.datasetDir("victim"), "store")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Release(ReleaseParams{Epsilon: 0.5, Seed: 3}, 1); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := mustNew(t, Options{DataDir: dataDir, Workers: 1})
	defer srv2.Close()
	d2, ok := srv2.Registry().Get("victim")
	if !ok {
		t.Fatal("victim dataset lost")
	}
	if _, _, err := d2.Release(ReleaseParams{Epsilon: 0.5, Seed: 99}, 1); err == nil {
		t.Fatal("restart forgot the spent budget: second 0.5 release accepted")
	}
	if got := d2.Ledger.Remaining(); got != 0 {
		t.Fatalf("remaining after exhausting restart = %v, want 0", got)
	}
}

// TestLoadDataDirRejectsCorruptState ensures recovery is strict: a
// mangled dataset.json must fail startup, not silently serve a dataset
// with a forgotten ledger.
func TestLoadDataDirRejectsCorruptState(t *testing.T) {
	dataDir := t.TempDir()
	srv1 := mustNew(t, Options{DataDir: dataDir})
	ts := httptest.NewServer(srv1)
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/datasets", map[string]any{
		"name": "ds", "epsilon": 1.0, "points": ptsAsRows(testPoints(100)),
	}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}
	ts.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dataDir, "datasets", "ds", "dataset.json")
	if err := os.WriteFile(path, []byte(`{"privtreed_dataset":1,"request":{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{DataDir: dataDir}); err == nil {
		t.Fatal("corrupt dataset.json accepted at startup")
	}
}

// TestSequenceDatasetRestart covers the second release pipeline:
// sequence datasets and their models round-trip the restart too.
func TestSequenceDatasetRestart(t *testing.T) {
	dataDir := t.TempDir()
	seqs := make([][]int, 200)
	for i := range seqs {
		seqs[i] = []int{i % 5, (i + 1) % 5, (i + 2) % 5}
	}
	srv1 := mustNew(t, Options{DataDir: dataDir, Workers: 1})
	ts1 := httptest.NewServer(srv1)
	if code := doJSON(t, ts1.Client(), "POST", ts1.URL+"/v1/datasets", map[string]any{
		"name": "clicks", "epsilon": 1.0, "alphabet": 5, "sequences": seqs,
	}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}
	var rel releaseResponse
	if code := doJSON(t, ts1.Client(), "POST", ts1.URL+"/v1/datasets/clicks/releases",
		map[string]any{"epsilon": 0.5, "seed": 4}, &rel); code != http.StatusCreated {
		t.Fatalf("release: %d", code)
	}
	artifact := fetchArtifact(t, ts1.Client(), ts1.URL+"/v1/datasets/clicks/releases/"+rel.Release.ID)
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := mustNew(t, Options{DataDir: dataDir, Workers: 1})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	got := fetchArtifact(t, ts2.Client(), ts2.URL+"/v1/datasets/clicks/releases/"+rel.Release.ID)
	if !bytes.Equal(got, artifact) {
		t.Fatal("sequence artifact not bit-identical across restart")
	}
	// The recovered model answers frequency queries.
	var qr struct {
		Counts []float64 `json:"counts"`
	}
	if code := doJSON(t, ts2.Client(), "POST",
		ts2.URL+"/v1/datasets/clicks/releases/"+rel.Release.ID+"/query",
		map[string]any{"strings": [][]int{{0, 1}}}, &qr); code != http.StatusOK {
		t.Fatalf("query on recovered sequence release: %d", code)
	}
	if len(qr.Counts) != 1 {
		t.Fatalf("got %d counts, want 1", len(qr.Counts))
	}
}

func ptsAsRows(pts []privtree.Point) [][]float64 {
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = []float64(p)
	}
	return rows
}

func fetchArtifact(t *testing.T, client *http.Client, url string) []byte {
	t.Helper()
	var out struct {
		Artifact json.RawMessage `json:"artifact"`
	}
	if code := doJSON(t, client, "GET", url, nil, &out); code != http.StatusOK {
		t.Fatalf("GET %s: %d", url, code)
	}
	return out.Artifact
}

func queryOne(t *testing.T, client *http.Client, url string) float64 {
	t.Helper()
	var out struct {
		Counts []float64 `json:"counts"`
	}
	if code := doJSON(t, client, "POST", url,
		map[string]any{"queries": [][]float64{{0.1, 0.1, 0.6, 0.7}}}, &out); code != http.StatusOK {
		t.Fatalf("query: %d", code)
	}
	if len(out.Counts) != 1 {
		t.Fatalf("got %d counts, want 1", len(out.Counts))
	}
	return out.Counts[0]
}
