package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"privtree/internal/store"
)

// TestDebitAppendFailureIsSafe drives the ENOSPC-style failure path end
// to end: when the debit's WAL append fails, the client gets a structured
// 503 store_unavailable, and the budget direction is always safe — a
// failure after the bytes hit the file over-counts on restart (the orphan
// debit is replayed), a failure before anything was written costs
// nothing. Neither case ever leaks budget.
func TestDebitAppendFailureIsSafe(t *testing.T) {
	defer store.SetFailHook(nil)
	dir := t.TempDir()
	s := mustNew(t, Options{DataDir: dir, Workers: 1})
	ts := httptest.NewServer(s)
	client := ts.Client()

	if code := doJSON(t, client, "POST", ts.URL+"/v1/datasets", map[string]any{
		"name": "demo", "epsilon": 2.0,
		"synthetic": map[string]any{"generator": "road", "n": 2000, "seed": 1},
	}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}
	d, _ := s.Registry().Get("demo")

	// Failure AFTER the write: the record is in the file but durability is
	// unknown — the live server refunds in memory and fails the request.
	store.SetFailHook(func(point string) error {
		if point == "wal.after_write" {
			return errors.New("no space left on device")
		}
		return nil
	})
	if status, code := errCode(t, client, "POST", ts.URL+"/v1/datasets/demo/releases",
		map[string]any{"epsilon": 0.25, "seed": 7}); status != http.StatusServiceUnavailable || code != "store_unavailable" {
		t.Fatalf("failed debit = %d %q, want 503 store_unavailable", status, code)
	}
	if got := d.Ledger.Spent(); got != 0 {
		t.Fatalf("live spent after refused debit = %v, want 0 (refunded in memory)", got)
	}

	// Failure BEFORE the write: nothing landed, same client-visible error.
	store.SetFailHook(func(point string) error {
		if point == "wal.before_write" {
			return errors.New("no space left on device")
		}
		return nil
	})
	if status, code := errCode(t, client, "POST", ts.URL+"/v1/datasets/demo/releases",
		map[string]any{"epsilon": 0.25, "seed": 8}); status != http.StatusServiceUnavailable || code != "store_unavailable" {
		t.Fatalf("failed debit = %d %q, want 503 store_unavailable", status, code)
	}
	store.SetFailHook(nil)

	// The disk recovered: the same client retry now succeeds and spends
	// fresh budget.
	var rel releaseResponse
	if code := doJSON(t, client, "POST", ts.URL+"/v1/datasets/demo/releases",
		map[string]any{"epsilon": 0.25, "seed": 7}, &rel); code != http.StatusCreated {
		t.Fatalf("retry after recovery: %d", code)
	}
	if got := d.Ledger.Spent(); got != 0.25 {
		t.Fatalf("live spent = %v, want 0.25", got)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with the same data dir. The after_write failure left its
	// debit bytes in the WAL with no refund, so recovery over-counts it:
	// spent = 0.25 orphan + 0.25 acked. The before_write failure left
	// nothing. Over-counting is the safe direction; leaking (spent below
	// the acked 0.25) would be a privacy violation.
	s2 := mustNew(t, Options{DataDir: dir, Workers: 1})
	defer s2.Close()
	d2, ok := s2.Registry().Get("demo")
	if !ok {
		t.Fatal("restart lost dataset demo")
	}
	if got := d2.Ledger.Spent(); got != 0.5 {
		t.Fatalf("recovered spent = %v, want 0.5 (0.25 acked + 0.25 orphan over-count)", got)
	}
}
