// Streaming ingestion and continual release (see internal/stream for the
// sliding-window composition argument). A dataset registered with a
// stream spec starts empty and grows through POST .../ingest; records
// accumulate in a pending privtree.Stream buffer (journaled durably
// before they are acknowledged) until a seal — explicit, size-triggered,
// or timer-triggered — freezes them into one epoch:
//
//  1. the epoch's Data is released through the ordinary session path
//     with per-epoch derived params (debit durable BEFORE the build,
//     commit durable after it, exactly like any release);
//  2. a WAL seal record binds epoch → release fingerprint → last ingest
//     batch, durable BEFORE the seal is acknowledged — so the WAL prefix
//     alone reconstructs the served window and spent ε on any restarted
//     or replicated node;
//  3. the epoch enters the sliding window ring, aging out the oldest
//     epoch beyond W.
//
// Crash anywhere in that transaction and the retry is idempotent: the
// epoch's params fingerprint is a pure function of (base seed, epoch), so
// a re-seal after a crash between commit and seal record is served from
// the params-fingerprint cache with no second debit. The same dedup makes
// timer re-releases free: an unchanged (empty-pending) tick is skipped
// outright, and a repeated seal of the same epoch is a cache hit.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"privtree"
	"privtree/internal/geom"
	"privtree/internal/obs"
	"privtree/internal/stream"
)

// streamSpec is the registration form of a streaming dataset: the epoch
// policy plus the per-epoch release knobs. It rides inside dataset.json,
// so a restarted node (and every replica, which receives the registration
// document verbatim) derives identical epoch parameters.
type streamSpec struct {
	// EpochEpsilon is the ε each sealed epoch's release debits. Required.
	EpochEpsilon float64 `json:"epoch_epsilon"`
	// Window is W, the number of most-recent epochs the `latest` alias
	// serves; the live window is bounded by W·EpochEpsilon. Required.
	Window int `json:"window"`
	// SealEvery auto-seals as soon as this many records are pending
	// (0 = no size trigger).
	SealEvery int `json:"seal_every,omitempty"`
	// IntervalMS seals any non-empty pending buffer on a timer
	// (0 = no timer).
	IntervalMS int64 `json:"interval_ms,omitempty"`

	// Per-epoch release knobs: the ReleaseParams union minus epsilon
	// (EpochEpsilon is the spend). Seed is a BASE seed; epoch e releases
	// with DeriveSeed(Seed, e), so every epoch's fingerprint is distinct
	// and reproducible.
	Seed               uint64  `json:"seed,omitempty"`
	Fanout             int     `json:"fanout,omitempty"`
	Theta              float64 `json:"theta,omitempty"`
	TreeBudgetFraction float64 `json:"tree_budget_fraction,omitempty"`
	MaxDepth           int     `json:"max_depth,omitempty"`
	AffectedLeaves     int     `json:"affected_leaves,omitempty"`
	MaxLength          int     `json:"max_length,omitempty"`
}

// config converts the wire spec to the internal/stream policy.
func (sp *streamSpec) config() stream.Config {
	return stream.Config{
		EpochEpsilon: sp.EpochEpsilon,
		Window:       sp.Window,
		SealEvery:    sp.SealEvery,
		Interval:     time.Duration(sp.IntervalMS) * time.Millisecond,
	}
}

// datasetStream is the runtime streaming state of one dataset. mu
// serializes ingest application and sealing — the epoch boundary must be
// exact — while queries read only the ring snapshot and immutable
// releases, never this lock.
type datasetStream struct {
	spec     streamSpec
	cfg      stream.Config
	domain   geom.Rect // spatial streams: the fixed ingest domain
	alphabet int       // sequence streams: the fixed symbol alphabet

	mu        sync.Mutex
	buf       *privtree.Stream // pending, unsealed records
	ring      *stream.Ring     // served window of sealed epochs
	nextEpoch uint64           // next epoch to seal (last sealed + 1)
	lastBatch uint64           // highest applied ingest batch sequence
	journal   *ingestJournal   // durable pending-buffer journal (nil in-memory)

	// frozen is an epoch consumed from buf whose seal transaction has not
	// completed (release or seal-record append failed); it is retried on
	// the next seal trigger. frozenBatch is lastBatch at freeze time.
	frozen      *privtree.Data
	frozenN     int
	frozenBatch uint64

	stopCh   chan struct{} // closes to stop the seal timer
	stopOnce sync.Once

	// Ingest-rate instrumentation, read by the metrics plane.
	batches atomic.Uint64
	records atomic.Uint64
}

// newDatasetStream builds the streaming state for a just-registered (or
// recovering) dataset.
func newDatasetStream(spec streamSpec, kind Kind, domain geom.Rect, alphabet int) (*datasetStream, error) {
	cfg := spec.config()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("server: invalid stream spec: %w", err)
	}
	var buf *privtree.Stream
	var err error
	switch kind {
	case KindSpatial:
		buf, err = privtree.NewSpatialStream(domain)
	default:
		buf, err = privtree.NewSequenceStream(alphabet)
	}
	if err != nil {
		return nil, err
	}
	return &datasetStream{
		spec:      spec,
		cfg:       cfg,
		domain:    domain,
		alphabet:  alphabet,
		buf:       buf,
		ring:      stream.NewRing(cfg.Window),
		nextEpoch: 1,
		stopCh:    make(chan struct{}),
	}, nil
}

// validateBatch screens an ingest batch in full before any durable
// effect: dimensionality, finiteness (JSON cannot carry NaN, but the
// journal replay path can see anything, and Contains would silently pass
// NaN through its comparisons), domain membership, and alphabet range.
// privtree.Stream re-validates on append; this pass exists so the
// journal-then-apply sequence cannot fail halfway.
func (st *datasetStream) validateBatch(pts []privtree.Point, seqs []privtree.Sequence) error {
	dims := st.domain.Dims()
	for i, p := range pts {
		if len(p) != dims {
			return fmt.Errorf("point %d has %d coordinates, want %d", i, len(p), dims)
		}
		for _, c := range p {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("point %d has a non-finite coordinate", i)
			}
		}
		if !st.domain.Contains(p) {
			return fmt.Errorf("point %d lies outside the stream domain", i)
		}
	}
	for i, sq := range seqs {
		for _, sym := range sq {
			if sym < 0 || sym >= st.alphabet {
				return fmt.Errorf("string %d has symbol %d outside [0,%d)", i, sym, st.alphabet)
			}
		}
	}
	return nil
}

// epochParams derives epoch e's release parameters: the spec's knobs,
// ε = EpochEpsilon, and a seed mixed from the base seed and the epoch
// number — a pure function, so a restarted or replicated node re-derives
// the exact same release fingerprint.
func (st *datasetStream) epochParams(epoch uint64) ReleaseParams {
	sp := st.spec
	return ReleaseParams{
		Epsilon:            sp.EpochEpsilon,
		Seed:               stream.DeriveSeed(sp.Seed, epoch),
		Fanout:             sp.Fanout,
		Theta:              sp.Theta,
		TreeBudgetFraction: sp.TreeBudgetFraction,
		MaxDepth:           sp.MaxDepth,
		AffectedLeaves:     sp.AffectedLeaves,
		MaxLength:          sp.MaxLength,
	}
}

// close stops the seal timer and releases the journal.
func (st *datasetStream) close() {
	st.stopOnce.Do(func() { close(st.stopCh) })
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.journal != nil {
		st.journal.Close()
		st.journal = nil
	}
}

// pending returns the unsealed record count (frozen epoch included: those
// records are consumed but not yet served).
func (st *datasetStream) pending() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.buf.Pending() + st.frozenN
}

// recover rebuilds the streaming state after a restart (or on a replica's
// first attach): the WAL's seal records reconstruct the served window,
// the next epoch number, and the last sealed batch sequence; the ingest
// journal then replays every acknowledged-but-unsealed batch into the
// pending buffer. journalPath == "" skips the journal (in-memory mode).
func (st *datasetStream) recover(d *Dataset, journalPath string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.refreshLocked(d); err != nil {
		return err
	}
	if journalPath == "" {
		return nil
	}
	j, recs, err := openIngestJournal(journalPath)
	if err != nil {
		return err
	}
	st.journal = j
	for _, rec := range recs {
		if rec.seq <= st.lastBatch {
			continue // already inside a sealed epoch
		}
		if err := st.applyLocked(rec.pts, rec.seqs); err != nil {
			return fmt.Errorf("replaying ingest journal batch %d: %w", rec.seq, err)
		}
		st.lastBatch = rec.seq
	}
	return nil
}

// refresh folds any seal records not yet reflected in the ring into the
// served window — the replica-side path, called after each ApplyFrames.
func (st *datasetStream) refresh(d *Dataset) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.refreshLocked(d)
}

func (st *datasetStream) refreshLocked(d *Dataset) error {
	for _, sl := range d.session.Seals() {
		if sl.Epoch < st.nextEpoch {
			continue
		}
		rel, ok := d.releaseByFingerprint(sl.Fingerprint)
		if !ok {
			// A seal record is appended only after its release commit is
			// durable, and replicas fetch artifacts before applying frames,
			// so an unresolvable fingerprint is corruption, not a race.
			return fmt.Errorf("seal for epoch %d names unknown release fingerprint %q", sl.Epoch, sl.Fingerprint)
		}
		if err := st.ring.Add(stream.Epoch{
			Index: sl.Epoch, ReleaseID: rel.ID, Fingerprint: sl.Fingerprint,
			Epsilon: st.cfg.EpochEpsilon, SealedAt: sl.At,
		}); err != nil {
			return err
		}
		st.nextEpoch = sl.Epoch + 1
		if sl.BatchSeq > st.lastBatch {
			st.lastBatch = sl.BatchSeq
		}
	}
	return nil
}

// applyLocked appends one validated batch to the pending buffer.
func (st *datasetStream) applyLocked(pts []privtree.Point, seqs []privtree.Sequence) error {
	if len(pts) > 0 {
		if err := st.buf.AppendPoints(pts); err != nil {
			return err
		}
	}
	if len(seqs) > 0 {
		if err := st.buf.AppendSequences(seqs); err != nil {
			return err
		}
	}
	return nil
}

// windowReleases resolves the current served window to its member
// releases, oldest epoch first.
func (d *Dataset) windowReleases() ([]*Release, []stream.Epoch) {
	live := d.stream.ring.Live()
	rels := make([]*Release, 0, len(live))
	for _, e := range live {
		if r, ok := d.releaseByFingerprint(e.Fingerprint); ok {
			rels = append(rels, r)
		}
	}
	return rels, live
}

// sealStream runs one epoch-seal transaction (see the file comment for
// the ordering argument). It returns privtree.ErrEmptyEpoch when nothing
// is pending — the caller skips the epoch rather than spending ε on a
// release of nothing. On any other error the frozen epoch is retained and
// the next trigger retries the transaction idempotently.
func (s *Server) sealStream(ctx context.Context, d *Dataset) (*Release, uint64, error) {
	st := d.stream
	st.mu.Lock()
	defer st.mu.Unlock()
	return s.sealStreamLocked(ctx, d)
}

func (s *Server) sealStreamLocked(ctx context.Context, d *Dataset) (*Release, uint64, error) {
	st := d.stream
	if st.frozen == nil {
		if st.buf.Pending() == 0 {
			return nil, 0, privtree.ErrEmptyEpoch
		}
		data, err := st.buf.Seal()
		if err != nil {
			return nil, 0, err
		}
		st.frozen, st.frozenN, st.frozenBatch = data, data.N(), st.lastBatch
	}
	epoch := st.nextEpoch
	tr := obs.FromContext(ctx)
	spanBase := tr.SpanCount()
	rel, fp, _, err := d.releaseData(ctx, st.frozen, st.epochParams(epoch), s.opts.Workers)
	// Everything the release transaction recorded past spanBase (debit,
	// wal_debit, build, envelope, wal_commit on a fresh release; nothing
	// on a fingerprint-cache hit) is re-attributed to seal.* stage
	// histograms — "seal.build" and "create_release build" are different
	// latency populations and must not share a series.
	for _, sp := range tr.Spans()[spanBase:] {
		s.metrics.stageHist("seal." + sp.Name).Observe(sp.Dur.Seconds())
	}
	if err != nil {
		return nil, 0, err
	}
	trace := tr.ID()
	walStart := time.Now()
	err = d.session.AppendSeal(epoch, st.frozenBatch, fp, trace)
	tr.Add("seal.wal", walStart, time.Since(walStart))
	s.metrics.stageHist("seal.wal").Observe(time.Since(walStart).Seconds())
	if err != nil {
		// The release is paid and committed but the seal record is not
		// durable: the epoch is NOT in the served window and the client was
		// not acked. The retry re-runs the release as a fingerprint-cache
		// hit (no second debit) and re-appends the seal.
		return nil, 0, err
	}
	if err := st.ring.Add(stream.Epoch{
		Index: epoch, ReleaseID: rel.ID, Fingerprint: fp, Records: st.frozenN,
		Epsilon: st.cfg.EpochEpsilon, SealedAt: time.Now(),
	}); err != nil {
		return nil, 0, err
	}
	st.nextEpoch = epoch + 1
	st.frozen, st.frozenN, st.frozenBatch = nil, 0, 0
	if st.journal != nil && st.buf.Pending() == 0 {
		// Space reclamation only: every journaled batch is now ≤ the sealed
		// batch sequence, so replay would skip them all anyway. When later
		// batches raced in during a retried seal the journal is left alone;
		// a future empty-pending seal reclaims it.
		if err := st.journal.Reset(); err != nil {
			s.logger.Warn("ingest journal reset failed (replay stays correct; space not reclaimed)",
				"dataset", d.Name, "err", err)
		}
	}
	s.metrics.sealsTotal.Inc()
	return rel, epoch, nil
}

// runSealTimer is the continual-release scheduler for one streaming
// dataset: every Interval it seals whatever is pending. Unchanged (empty)
// epochs are skipped — the served window, and therefore every `latest`
// answer, changes only at seal boundaries. The timer runs on replicas too
// but stays dormant until promotion flips the node to primary.
func (s *Server) runSealTimer(d *Dataset) {
	t := time.NewTicker(d.stream.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-d.stream.stopCh:
			return
		case <-t.C:
			if s.isReplica.Load() || s.fenced.Load() {
				continue
			}
			// Timer seals have no HTTP request to trace, so they get their
			// own trace and flight-recorder entry — a 900ms background seal
			// must be as look-up-able as a slow release. Empty ticks are not
			// recorded: an idle stream would otherwise flood the sample slots.
			tr := obs.NewTrace()
			start := time.Now()
			_, _, err := s.sealStream(obs.NewContext(context.Background(), tr), d)
			if errors.Is(err, privtree.ErrEmptyEpoch) {
				continue
			}
			status := http.StatusOK
			if err != nil {
				status = http.StatusInternalServerError
				s.logger.Warn("timer seal failed; will retry next tick",
					"dataset", d.Name, "trace", tr.ID(), "err", err)
			}
			s.recorder.Record(tr, "seal_timer", d.Name, status, start, time.Since(start))
		}
	}
}
