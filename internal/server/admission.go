package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission control for the two expensive planes — release builds and
// batched queries. Each plane gets a gate: a bounded semaphore of
// concurrency slots plus a small bounded wait queue. A request that finds
// all slots busy parks in the queue (bounded, so memory is bounded);
// a request that finds the queue full too is shed immediately with a
// structured 429 `overloaded` and a Retry-After hint — the server
// degrades by refusing crisply instead of wedging behind unbounded
// goroutine pileups. Queued waiters respect the request context, so a
// client that times out (or a per-route deadline that fires) leaves the
// queue without consuming a slot.

// errShed reports that a gate shed the request: all slots busy AND the
// wait queue full. Handlers map it to HTTP 429 `overloaded`.
var errShed = errors.New("server: overloaded, retry later")

// errDraining reports that the server is shutting down and admits no new
// work. Handlers map it to HTTP 503 `shutting_down`.
var errDraining = errors.New("server: shutting down, not admitting new requests")

// gate is one plane's admission controller.
type gate struct {
	slots    chan struct{} // buffered semaphore: len == busy slots
	maxQueue int64

	queued   atomic.Int64 // waiters parked beyond the slots
	inflight atomic.Int64 // admitted, not yet released (the /metrics gauge)
	draining atomic.Bool
}

// newGate returns a gate with `limit` concurrency slots and a wait queue
// of `queue` requests beyond them.
func newGate(limit, queue int) *gate {
	return &gate{slots: make(chan struct{}, limit), maxQueue: int64(queue)}
}

// acquire admits the request or rejects it: errShed when the plane is
// saturated (slots and queue both full), errDraining during shutdown, or
// ctx.Err() when the caller's deadline fires while queued. On nil return
// the caller owns one slot and must call release exactly once.
func (g *gate) acquire(ctx context.Context) error {
	if g.draining.Load() {
		return errDraining
	}
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		return nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return errShed
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		if g.draining.Load() {
			// Drain began while this request was queued: bounce it rather
			// than extend the drain window.
			<-g.slots
			return errDraining
		}
		g.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an acquired slot.
func (g *gate) release() {
	g.inflight.Add(-1)
	<-g.slots
}

// Inflight returns the number of admitted, unreleased requests.
func (g *gate) Inflight() int64 { return g.inflight.Load() }

// drain stops admitting new requests and waits (bounded by deadline) for
// the in-flight ones to release their slots. Reports whether the plane
// drained completely.
func (g *gate) drain(deadline time.Time) bool {
	g.draining.Store(true)
	for {
		if g.inflight.Load() == 0 && g.queued.Load() == 0 {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}
